module anondyn

go 1.24
