package anondyn

import (
	"errors"
	"fmt"
)

// AdversaryFactory names a parametric adversary constructor so sweeps
// can instantiate a fresh, independently seeded adversary per run.
// Factories for the built-in adversaries are resolved by name through
// ParseAdversaryFactory; the struct stays open so callers can sweep
// custom constructors too.
type AdversaryFactory struct {
	// Name labels the axis value in cell results and reports.
	Name string
	// New builds the adversary for one run of the given cell with the
	// run's seed. It must return a fresh value per call. The cell
	// carries n and f, so degree-parametric constructors can track the
	// thresholds (crashdeg, byzdeg) across the sweep.
	New func(c Cell, seed int64) Adversary
	// Check, when non-nil, rejects cells the adversary is undefined on
	// (fig1 needs n=3, isolate needs victim < n). Grid.Run reports the
	// error before any run starts.
	Check func(c Cell) error
}

// CompleteFactory is the trivial always-complete-graph factory — the
// default adversary axis of a Grid.
func CompleteFactory() AdversaryFactory {
	return AdversaryFactory{Name: "complete", New: func(Cell, int64) Adversary { return Complete() }}
}

// Variant is an optional extra sweep axis: a named Scenario override
// applied to every run of its cells, after the cell's base scenario is
// assembled and before Grid.Mutate runs. It is how one sweep compares
// protocol variants — quorum overrides, piggyback windows, algorithm
// swaps — on otherwise identical cells (experiments E2/E6/E7/E8).
type Variant struct {
	// Name labels the variant in cell results and reports.
	Name string
	// Apply adjusts one run's scenario; nil is a no-op.
	Apply func(s *Scenario)
}

// Cell is one point of a sweep grid: the cross product of the axes
// minus whatever Skip rejects.
type Cell struct {
	N         int
	F         int
	Eps       float64
	Algorithm Algo
	Adversary AdversaryFactory
	// Variant is the zero Variant unless the Grid declares a Variants
	// axis.
	Variant Variant
}

// Grid declares a scenario matrix: every combination of the axis
// values is one cell, and each cell is measured over SeedsPerCell
// independent seeded runs. Run executes the whole matrix on the batch
// harness and produces one aggregate row per cell.
//
// Unset axes default to a single neutral value (F=0, ε=1e-3, AlgoDAC,
// the complete-graph adversary); Ns is the only mandatory axis.
type Grid struct {
	// Ns are the network sizes (mandatory).
	Ns []int
	// Fs are the fault bounds (nil → {0}).
	Fs []int
	// Epss are the ε values (nil → {1e-3}).
	Epss []float64
	// Algorithms are the protocols (nil → {AlgoDAC}).
	Algorithms []Algo
	// Adversaries are the adversary constructors (nil → complete graph).
	Adversaries []AdversaryFactory
	// Variants are the scenario-override axis values (nil → one no-op
	// variant).
	Variants []Variant
	// SeedsPerCell is the Monte-Carlo width per cell (< 1 → 1).
	SeedsPerCell int
	// BaseSeed offsets the global seed sequence; run j of cell i uses
	// seed BaseSeed + i·SeedsPerCell + j.
	BaseSeed int64

	// MaxRounds caps each run (0 = engine default).
	MaxRounds int
	// AccountBandwidth tallies wire bytes per run.
	AccountBandwidth bool
	// Inputs generates each run's input vector (nil → RandomInputs).
	Inputs func(n int, seed int64) []float64
	// Skip, when non-nil, drops cells (e.g. inadmissible n/f pairs)
	// from the cross product.
	Skip func(c Cell) bool
	// Mutate, when non-nil, adjusts each run's assembled Scenario —
	// the hook for crash schedules, Byzantine strategies, overrides.
	Mutate func(s *Scenario, c Cell, seed int64)
}

// CellResult is one aggregate row of a sweep: the cell's coordinates
// plus the streaming BatchStats aggregate over its seeds.
type CellResult struct {
	N         int     `json:"n"`
	F         int     `json:"f"`
	Eps       float64 `json:"eps"`
	Algorithm string  `json:"algorithm"`
	Adversary string  `json:"adversary"`
	Variant   string  `json:"variant,omitempty"`
	BatchReport
}

// Cells enumerates the matrix in axis order (Ns outermost, Variants
// innermost), applying defaults and the Skip filter.
func (g Grid) Cells() []Cell {
	fs := g.Fs
	if len(fs) == 0 {
		fs = []int{0}
	}
	epss := g.Epss
	if len(epss) == 0 {
		epss = []float64{1e-3}
	}
	algos := g.Algorithms
	if len(algos) == 0 {
		algos = []Algo{AlgoDAC}
	}
	advs := g.Adversaries
	if len(advs) == 0 {
		advs = []AdversaryFactory{CompleteFactory()}
	}
	variants := g.Variants
	if len(variants) == 0 {
		variants = []Variant{{}}
	}
	var cells []Cell
	for _, n := range g.Ns {
		for _, f := range fs {
			for _, eps := range epss {
				for _, algo := range algos {
					for _, adv := range advs {
						for _, v := range variants {
							c := Cell{N: n, F: f, Eps: eps, Algorithm: algo, Adversary: adv, Variant: v}
							if g.Skip != nil && g.Skip(c) {
								continue
							}
							cells = append(cells, c)
						}
					}
				}
			}
		}
	}
	return cells
}

// scenario assembles one run of one cell: base fields from the cell,
// then the variant override, then the Mutate hook (so experiment hooks
// see the variant-adjusted scenario).
func (g Grid) scenario(c Cell, seed int64) Scenario {
	inputs := g.Inputs
	if inputs == nil {
		inputs = RandomInputs
	}
	s := Scenario{
		N: c.N, F: c.F, Eps: c.Eps,
		Algorithm:        c.Algorithm,
		Inputs:           inputs(c.N, seed),
		Adversary:        c.Adversary.New(c, seed),
		Seed:             seed,
		MaxRounds:        g.MaxRounds,
		AccountBandwidth: g.AccountBandwidth,
	}
	if c.Variant.Apply != nil {
		c.Variant.Apply(&s)
	}
	if g.Mutate != nil {
		g.Mutate(&s, c, seed)
	}
	return s
}

// RunEach executes the sweep and delivers every run's Result — cells
// in Cells() order, seeds ascending within a cell — from a single
// goroutine, alongside the cell it belongs to and the run's global
// batch index. It is the per-run form of Run, for callers that need
// more than the BatchStats aggregate (per-run trackers, custom
// tables); all cells' runs are flattened into one batch so the pool
// stays saturated across cell boundaries.
func (g Grid) RunEach(opts BatchOptions, each func(c Cell, cell, run int, seed int64, res *Result) error) error {
	return g.RunSlice(0, g.Runs(), opts, each)
}

// Runs returns the total number of runs the sweep comprises —
// len(Cells()) × max(SeedsPerCell, 1) — the index space RunEach
// flattens the matrix into (cells in Cells() order, seeds ascending
// within a cell).
func (g Grid) Runs() int {
	per := g.SeedsPerCell
	if per < 1 {
		per = 1
	}
	return len(g.Cells()) * per
}

// RunSlice executes the contiguous global run-index range [lo, hi) of
// the flattened sweep — the shard form of RunEach, used by distributed
// workers to execute one slice of a matrix. Deliveries arrive in run
// order from a single goroutine; run j of the slice is global run
// lo+j, i.e. seed BaseSeed+lo+j of cell (lo+j)/SeedsPerCell. Every
// cell of the grid is checked before any run starts, so a slice fails
// on exactly the sweeps the full run would reject.
func (g Grid) RunSlice(lo, hi int, opts BatchOptions, each func(c Cell, cell, run int, seed int64, res *Result) error) error {
	cells := g.Cells()
	if len(cells) == 0 {
		return errors.New("anondyn: empty sweep grid (set Grid.Ns)")
	}
	for _, c := range cells {
		if c.Adversary.Check != nil {
			if err := c.Adversary.Check(c); err != nil {
				return fmt.Errorf("anondyn: sweep cell n=%d f=%d adversary %s: %w",
					c.N, c.F, c.Adversary.Name, err)
			}
		}
	}
	per := g.SeedsPerCell
	if per < 1 {
		per = 1
	}
	if lo < 0 || hi > len(cells)*per || lo > hi {
		return fmt.Errorf("anondyn: sweep slice [%d,%d) out of range for %d runs", lo, hi, len(cells)*per)
	}
	seeds := make([]int64, hi-lo)
	for j := range seeds {
		seeds[j] = g.BaseSeed + int64(lo+j)
	}
	err := RunManyStream(seeds,
		func(seed int64) Scenario {
			i := int(seed-g.BaseSeed) / per
			return g.scenario(cells[i], seed)
		},
		SinkFunc(func(index int, seed int64, res *Result) error {
			run := lo + index
			return each(cells[run/per], run/per, run, seed, res)
		}),
		opts)
	if err != nil {
		return fmt.Errorf("anondyn: sweep: %w", err)
	}
	return nil
}

// SeriesPerCell runs the first seed of every cell once with a
// RangeSeries attached and returns each cell's per-round convergence
// curve (range after each round), in Cells() order — the data behind
// the HTML report's per-cell charts. It is a separate sequential pass
// so the sweep's own Monte-Carlo runs stay observer-free and keep their
// fused fast paths; one extra run per cell is cheap next to
// SeedsPerCell runs. Any Series a Mutate hook installs is replaced for
// this pass.
func (g Grid) SeriesPerCell() ([][]float64, error) {
	cells := g.Cells()
	per := g.SeedsPerCell
	if per < 1 {
		per = 1
	}
	out := make([][]float64, len(cells))
	for i, c := range cells {
		seed := g.BaseSeed + int64(i*per)
		s := g.scenario(c, seed)
		series := NewRangeSeries()
		s.Series = series
		if _, err := s.Run(); err != nil {
			return nil, fmt.Errorf("anondyn: sweep series cell %d: %w", i, err)
		}
		out[i] = series.Series()
	}
	return out, nil
}

// Run executes the sweep: every cell's runs stream into the cell's
// BatchStats and the returned rows are in Cells() order, bit-identical
// across worker counts.
func (g Grid) Run(opts BatchOptions) ([]CellResult, error) {
	cells := g.Cells()
	stats := make([]*BatchStats, len(cells))
	for i, c := range cells {
		stats[i] = &BatchStats{Eps: c.Eps}
	}
	err := g.RunEach(opts, func(_ Cell, cell, run int, seed int64, res *Result) error {
		return stats[cell].Consume(run, seed, res)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]CellResult, len(cells))
	for i, c := range cells {
		rows[i] = CellResult{
			N: c.N, F: c.F, Eps: c.Eps,
			Algorithm:   c.Algorithm.String(),
			Adversary:   c.Adversary.Name,
			Variant:     c.Variant.Name,
			BatchReport: stats[i].Report(),
		}
	}
	return rows, nil
}
