package anondyn

import (
	"errors"
	"fmt"
)

// AdversaryFactory names a parametric adversary constructor so sweeps
// can instantiate a fresh, independently seeded adversary per run.
type AdversaryFactory struct {
	// Name labels the axis value in cell results and reports.
	Name string
	// New builds the adversary for one run of size n with the run's
	// seed. It must return a fresh value per call.
	New func(n int, seed int64) Adversary
}

// CompleteFactory is the trivial always-complete-graph factory — the
// default adversary axis of a Grid.
func CompleteFactory() AdversaryFactory {
	return AdversaryFactory{Name: "complete", New: func(int, int64) Adversary { return Complete() }}
}

// Cell is one point of a sweep grid: the cross product of the axes
// minus whatever Skip rejects.
type Cell struct {
	N         int
	F         int
	Eps       float64
	Algorithm Algo
	Adversary AdversaryFactory
}

// Grid declares a scenario matrix: every combination of the axis
// values is one cell, and each cell is measured over SeedsPerCell
// independent seeded runs. Run executes the whole matrix on the batch
// harness and produces one aggregate row per cell.
//
// Unset axes default to a single neutral value (F=0, ε=1e-3, AlgoDAC,
// the complete-graph adversary); Ns is the only mandatory axis.
type Grid struct {
	// Ns are the network sizes (mandatory).
	Ns []int
	// Fs are the fault bounds (nil → {0}).
	Fs []int
	// Epss are the ε values (nil → {1e-3}).
	Epss []float64
	// Algorithms are the protocols (nil → {AlgoDAC}).
	Algorithms []Algo
	// Adversaries are the adversary constructors (nil → complete graph).
	Adversaries []AdversaryFactory
	// SeedsPerCell is the Monte-Carlo width per cell (< 1 → 1).
	SeedsPerCell int
	// BaseSeed offsets the global seed sequence; run j of cell i uses
	// seed BaseSeed + i·SeedsPerCell + j.
	BaseSeed int64

	// MaxRounds caps each run (0 = engine default).
	MaxRounds int
	// AccountBandwidth tallies wire bytes per run.
	AccountBandwidth bool
	// Inputs generates each run's input vector (nil → RandomInputs).
	Inputs func(n int, seed int64) []float64
	// Skip, when non-nil, drops cells (e.g. inadmissible n/f pairs)
	// from the cross product.
	Skip func(c Cell) bool
	// Mutate, when non-nil, adjusts each run's assembled Scenario —
	// the hook for crash schedules, Byzantine strategies, overrides.
	Mutate func(s *Scenario, c Cell, seed int64)
}

// CellResult is one aggregate row of a sweep: the cell's coordinates
// plus the streaming BatchStats aggregate over its seeds.
type CellResult struct {
	N         int     `json:"n"`
	F         int     `json:"f"`
	Eps       float64 `json:"eps"`
	Algorithm string  `json:"algorithm"`
	Adversary string  `json:"adversary"`
	BatchReport
}

// Cells enumerates the matrix in axis order (Ns outermost, Adversaries
// innermost), applying defaults and the Skip filter.
func (g Grid) Cells() []Cell {
	fs := g.Fs
	if len(fs) == 0 {
		fs = []int{0}
	}
	epss := g.Epss
	if len(epss) == 0 {
		epss = []float64{1e-3}
	}
	algos := g.Algorithms
	if len(algos) == 0 {
		algos = []Algo{AlgoDAC}
	}
	advs := g.Adversaries
	if len(advs) == 0 {
		advs = []AdversaryFactory{CompleteFactory()}
	}
	var cells []Cell
	for _, n := range g.Ns {
		for _, f := range fs {
			for _, eps := range epss {
				for _, algo := range algos {
					for _, adv := range advs {
						c := Cell{N: n, F: f, Eps: eps, Algorithm: algo, Adversary: adv}
						if g.Skip != nil && g.Skip(c) {
							continue
						}
						cells = append(cells, c)
					}
				}
			}
		}
	}
	return cells
}

// scenario assembles one run of one cell.
func (g Grid) scenario(c Cell, seed int64) Scenario {
	inputs := g.Inputs
	if inputs == nil {
		inputs = RandomInputs
	}
	s := Scenario{
		N: c.N, F: c.F, Eps: c.Eps,
		Algorithm:        c.Algorithm,
		Inputs:           inputs(c.N, seed),
		Adversary:        c.Adversary.New(c.N, seed),
		Seed:             seed,
		MaxRounds:        g.MaxRounds,
		AccountBandwidth: g.AccountBandwidth,
	}
	if g.Mutate != nil {
		g.Mutate(&s, c, seed)
	}
	return s
}

// Run executes the sweep: all cells' runs are flattened into one batch
// so the pool stays saturated across cell boundaries, and each result
// streams into its cell's BatchStats. The returned rows are in Cells()
// order and bit-identical across worker counts.
func (g Grid) Run(opts BatchOptions) ([]CellResult, error) {
	cells := g.Cells()
	if len(cells) == 0 {
		return nil, errors.New("anondyn: empty sweep grid (set Grid.Ns)")
	}
	per := g.SeedsPerCell
	if per < 1 {
		per = 1
	}
	stats := make([]*BatchStats, len(cells))
	for i, c := range cells {
		stats[i] = &BatchStats{Eps: c.Eps}
	}
	seeds := Seeds(len(cells)*per, g.BaseSeed)
	err := RunManyStream(seeds,
		func(seed int64) Scenario {
			i := int(seed-g.BaseSeed) / per
			return g.scenario(cells[i], seed)
		},
		SinkFunc(func(index int, _ int64, res *Result) error {
			return stats[index/per].Consume(index, seeds[index], res)
		}),
		opts)
	if err != nil {
		return nil, fmt.Errorf("anondyn: sweep: %w", err)
	}
	rows := make([]CellResult, len(cells))
	for i, c := range cells {
		rows[i] = CellResult{
			N: c.N, F: c.F, Eps: c.Eps,
			Algorithm:   c.Algorithm.String(),
			Adversary:   c.Adversary.Name,
			BatchReport: stats[i].Report(),
		}
	}
	return rows, nil
}
