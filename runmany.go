package anondyn

import (
	"anondyn/internal/analysis"
)

// MultiResult aggregates a batch of seeded runs of one scenario family
// (the Monte-Carlo companion to Scenario.Run; experiment E10 is built
// from the same pattern).
type MultiResult struct {
	// Results holds each run's outcome, indexed by batch position.
	Results []*Result
	// Seeds holds the seed that produced each result.
	Seeds []int64
}

// RunMany executes the scenario produced by mk(seed) for each seed and
// collects the results. mk must return a fresh Scenario per call —
// adversaries and strategies hold RNG state and must not be shared
// between runs — and is invoked concurrently for distinct seeds: the
// batch runs on a GOMAXPROCS worker pool, with results ordered by
// batch position exactly as the sequential loop produced them. Large
// batches that only need aggregates should use RunManyStream with a
// BatchStats sink instead of retaining every Result.
func RunMany(seeds []int64, mk func(seed int64) Scenario) (*MultiResult, error) {
	sink := NewRetainSink(len(seeds))
	if err := RunManyStream(seeds, mk, sink, BatchOptions{}); err != nil {
		return nil, err
	}
	return sink.MultiResult(), nil
}

// Seeds returns 0, 1, …, n−1 offset by base — the conventional seed
// batch for RunMany.
func Seeds(n int, base int64) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// DecidedAll reports whether every run decided.
func (m *MultiResult) DecidedAll() bool {
	for _, r := range m.Results {
		if !r.Decided {
			return false
		}
	}
	return true
}

// DecidedCount returns how many runs decided.
func (m *MultiResult) DecidedCount() int {
	count := 0
	for _, r := range m.Results {
		if r.Decided {
			count++
		}
	}
	return count
}

// Rounds summarizes the round counts of the decided runs.
func (m *MultiResult) Rounds() analysis.Summary {
	var rounds []float64
	for _, r := range m.Results {
		if r.Decided {
			rounds = append(rounds, float64(r.Rounds))
		}
	}
	return analysis.Summarize(rounds)
}

// Violations counts decided runs that broke validity or ε-agreement.
func (m *MultiResult) Violations(eps float64) int {
	count := 0
	for _, r := range m.Results {
		if !r.Decided {
			continue
		}
		if !r.Valid() || !r.EpsAgreement(eps) {
			count++
		}
	}
	return count
}

// Summary is a re-export of the analysis summary type for RunMany users.
type Summary = analysis.Summary
