// Command impossibility walks through the paper's necessity proofs
// (§VI) as executable demonstrations:
//
//  1. Theorem 9, part 1 — with only (1, ⌊n/2⌋−1)-dynaDegree the real
//     DAC never terminates, and any algorithm that does terminate
//     (modeled by lowering the quorum by one) is forced into
//     disagreement by the two-group adversary.
//  2. Theorem 10 — the Byzantine construction: two groups overlapping in
//     3f nodes, with the middle f nodes equivocating one input value to
//     each side. Validity forces group A towards 0 and group B towards
//     1; real DBAC stalls rather than err.
package main

import (
	"fmt"
	"log"

	"anondyn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := crashNecessity(); err != nil {
		return err
	}
	fmt.Println()
	return byzantineNecessity()
}

func crashNecessity() error {
	const (
		n   = 7
		eps = 1e-3
	)
	fmt.Printf("— Theorem 9, part 1: n=%d, split into isolated halves (degree %d < ⌊n/2⌋=%d)\n",
		n, n/2-1, n/2)
	fmt.Println("  first ⌈n/2⌉ nodes have input 0, the rest input 1")

	// The real DAC: quorum ⌊n/2⌋+1 can never be met inside a half.
	res, err := anondyn.Scenario{
		N: n, F: 0, Eps: eps,
		Algorithm: anondyn.AlgoDAC,
		Unchecked: true,
		Inputs:    anondyn.SplitInputs(n, (n+1)/2),
		Adversary: anondyn.Halves(n),
		MaxRounds: 1000,
	}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("  DAC with the paper quorum %d: decided=%v after %d rounds (correct refusal: termination is impossible)\n",
		n/2+1, res.Decided, res.Rounds)
	if res.Decided {
		return fmt.Errorf("impossibility: DAC decided below the threshold")
	}

	// A hypothetical algorithm that settles for ⌊n/2⌋ states terminates
	// — and the groups decide 0 and 1.
	eager, err := anondyn.Scenario{
		N: n, F: 0, Eps: eps,
		Algorithm:      anondyn.AlgoDAC,
		QuorumOverride: n / 2,
		Unchecked:      true,
		Inputs:         anondyn.SplitInputs(n, (n+1)/2),
		Adversary:      anondyn.Halves(n),
		MaxRounds:      1000,
	}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("  hypothetical quorum-%d algorithm: decided=%v, output range %.3g → ε-agreement %v\n",
		n/2, eager.Decided, eager.OutputRange(), eager.EpsAgreement(eps))
	if !eager.Decided || eager.EpsAgreement(eps) {
		return fmt.Errorf("impossibility: the eager variant did not exhibit disagreement")
	}
	fmt.Println("  ⇒ any terminating algorithm at this degree violates ε-agreement")
	return nil
}

func byzantineNecessity() error {
	const (
		n   = 16
		f   = 3
		eps = 1e-3
	)
	split, err := anondyn.NewByzSplit(n, f)
	if err != nil {
		return err
	}
	fmt.Printf("— Theorem 10: n=%d f=%d, two groups overlapping in 3f nodes, per-round degree %d = ⌊(n+3f)/2⌋−1\n",
		n, f, split.Degree())
	fmt.Printf("  Byzantine middle nodes show input 0 to group A and 1 to group B\n")
	fmt.Printf("  (anonymity + local ports make the equivocation undetectable — no reliable broadcast, §VI-C)\n")

	// Real DBAC refuses (stalls).
	res, err := anondyn.Scenario{
		N: n, F: f, Eps: eps,
		Algorithm:    anondyn.AlgoDBAC,
		PEndOverride: 12,
		Unchecked:    true,
		Inputs:       split.Inputs(),
		Adversary:    split.Adversary(),
		Byzantine:    split.Byzantine(),
		MaxRounds:    500,
	}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("  DBAC with the paper quorum %d: decided=%v after %d rounds (correct refusal)\n",
		anondyn.ByzDegree(n, f)+1, res.Decided, res.Rounds)
	if res.Decided {
		return fmt.Errorf("impossibility: DBAC decided below the threshold")
	}

	// The terminating variant splits exactly as the proof predicts.
	eager, err := anondyn.Scenario{
		N: n, F: f, Eps: eps,
		Algorithm:      anondyn.AlgoDBAC,
		QuorumOverride: anondyn.ByzDegree(n, f),
		PEndOverride:   12,
		Unchecked:      true,
		Inputs:         split.Inputs(),
		Adversary:      split.Adversary(),
		Byzantine:      split.Byzantine(),
		MaxRounds:      500,
	}.Run()
	if err != nil {
		return err
	}
	aOut, bOut := 0.0, 0.0
	for _, v := range split.AReceivers() {
		aOut += eager.Outputs[v] / float64(len(split.AReceivers()))
	}
	for _, v := range split.BReceivers() {
		bOut += eager.Outputs[v] / float64(len(split.BReceivers()))
	}
	fmt.Printf("  hypothetical quorum-%d algorithm: decided=%v\n",
		anondyn.ByzDegree(n, f), eager.Decided)
	fmt.Printf("    group A (validity forces 0): mean output %.4f\n", aOut)
	fmt.Printf("    group B (validity forces 1): mean output %.4f\n", bOut)
	fmt.Printf("    range %.3g → ε-agreement %v\n", eager.OutputRange(), eager.EpsAgreement(eps))
	if !eager.Decided || eager.EpsAgreement(eps) {
		return fmt.Errorf("impossibility: the eager DBAC variant did not exhibit disagreement")
	}
	fmt.Println("  ⇒ n ≤ 5f or degree < ⌊(n+3f)/2⌋ makes Byzantine approximate consensus impossible")
	return nil
}
