// Command byzantine runs DBAC in the connected-vehicle setting the
// paper motivates: 11 vehicles negotiate a common platoon speed while
// two of them are compromised. One compromised vehicle equivocates —
// claiming a low speed to the front half and a high speed to the back
// half, which anonymity makes undetectable (no reliable broadcast is
// possible, §VI-C) — and the other sprays random plausible-looking
// values. The message adversary only guarantees the Theorem 10 degree
// ⌊(n+3f)/2⌋ per round, from rotating neighbor sets.
package main

import (
	"fmt"
	"log"
	"sort"

	"anondyn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n   = 11
		f   = 2
		eps = 1e-3
	)
	byz := map[int]anondyn.Strategy{
		4: anondyn.Equivocator(0, 1), // two-faced speed claims
		9: anondyn.RandomNoise(13),   // plausible garbage
	}
	tracker := anondyn.NewPhaseTracker()
	res, err := anondyn.Scenario{
		N: n, F: f, Eps: eps,
		Algorithm:    anondyn.AlgoDBAC,
		PEndOverride: 14, // ≈ log2(1/ε) + slack; Equation 6's bound is loose (see EXPERIMENTS.md E5)
		Inputs:       anondyn.RandomInputs(n, 99),
		Adversary:    anondyn.Rotating(anondyn.ByzDegree(n, f)),
		Byzantine:    byz,
		Tracker:      tracker,
		RandomPorts:  true,
		Seed:         42,
	}.Run()
	if err != nil {
		return err
	}

	fmt.Printf("connected vehicles: n=%d, f=%d Byzantine, ε=%g\n", n, f, eps)
	fmt.Printf("required dynaDegree: ⌊(n+3f)/2⌋ = %d; quorum per phase: %d values\n\n",
		anondyn.ByzDegree(n, f), anondyn.ByzDegree(n, f)+1)

	ids := make([]int, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  vehicle %2d decided %.6f in round %d\n", id, res.Outputs[id], res.DecideRound[id])
	}
	fmt.Printf("  (vehicles 4 and 9 are Byzantine: no output)\n\n")

	fmt.Printf("rounds: %d   range: %.2g   ε-agreement: %v\n",
		res.Rounds, res.OutputRange(), res.EpsAgreement(eps))
	fmt.Printf("validity (inside fault-free input hull despite equivocation): %v\n", res.Valid())

	fmt.Println("\nper-phase contraction of the fault-free range:")
	for p := 1; p <= tracker.MaxPhase() && p <= 8; p++ {
		prev, cur := tracker.Range(p-1), tracker.Range(p)
		ratio := 0.0
		if prev > 0 {
			ratio = cur / prev
		}
		fmt.Printf("  phase %2d: range %.6f (×%.3f; Theorem 7 bound ×%.6f)\n",
			p, cur, ratio, 1.0-1.0/float64(uint64(1)<<n))
	}

	if !res.Decided || !res.Valid() {
		return fmt.Errorf("byzantine: run failed (decided=%v valid=%v)", res.Decided, res.Valid())
	}
	return nil
}
