// Package specs embeds the repository's committed sweep definitions.
// Every experiment matrix in internal/experiments is backed by one of
// these files — the YAML is the source of truth for the cells an
// experiment runs — and the CI specs job smoke-runs each file on every
// commit (dynabench -spec-dir examples/specs -seeds 1), so a committed
// scenario can never rot.
package specs

import (
	"embed"
	"sort"
)

//go:embed *.yaml stress/*.yaml
var files embed.FS

// Names returns the committed spec filenames, sorted. Storm specs live
// in the stress/ subdirectory and are named with that prefix
// ("stress/cascading-failure.yaml").
func Names() []string {
	var names []string
	for _, dir := range []string{".", "stress"} {
		entries, err := files.ReadDir(dir)
		if err != nil {
			panic(err) // embedded directories always read
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			if dir != "." {
				name = dir + "/" + name
			}
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Read returns one committed spec by filename.
func Read(name string) ([]byte, error) {
	return files.ReadFile(name)
}
