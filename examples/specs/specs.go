// Package specs embeds the repository's committed sweep definitions.
// Every experiment matrix in internal/experiments is backed by one of
// these files — the YAML is the source of truth for the cells an
// experiment runs — and the CI specs job smoke-runs each file on every
// commit (dynabench -spec-dir examples/specs -seeds 1), so a committed
// scenario can never rot.
package specs

import (
	"embed"
	"sort"
)

//go:embed *.yaml
var files embed.FS

// Names returns the committed spec filenames, sorted.
func Names() []string {
	entries, err := files.ReadDir(".")
	if err != nil {
		panic(err) // embed.FS root always reads
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// Read returns one committed spec by filename.
func Read(name string) ([]byte, error) {
	return files.ReadFile(name)
}
