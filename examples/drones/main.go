// Command drones runs the paper's motivating scenario (§I): a team of
// drones agreeing on a common cruise speed over a flaky wireless
// network. Links appear and disappear every round (interference,
// attenuation, mobility), two drones crash mid-flight, and nobody has —
// or needs — a global identity: the MAC layer only gives each drone
// local ports for its neighbors.
//
// The swarm runs DAC. The mission needs the speeds to agree within
// 0.1 m/s; speeds are scaled from [5 m/s, 25 m/s] to [0,1] as §II-C
// prescribes.
package main

import (
	"fmt"
	"log"
	"sort"

	"anondyn"
)

const (
	nDrones  = 9
	fBudget  = 4 // tolerate up to 4 crashed drones
	minSpeed = 5.0
	maxSpeed = 25.0
	// Agreement within 0.1 m/s over a 20 m/s span → ε = 0.005.
	speedTolerance = 0.1
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Each drone's preferred speed in m/s (its sensor/battery-derived
	// input); the spread is deliberately wide.
	prefs := []float64{7.5, 24.0, 12.0, 18.5, 5.0, 21.0, 9.0, 15.5, 23.0}
	inputs := make([]float64, nDrones)
	for i, p := range prefs {
		inputs[i] = (p - minSpeed) / (maxSpeed - minSpeed)
	}
	eps := speedTolerance / (maxSpeed - minSpeed)

	// The wireless network: every block of 3 rounds, each drone hears at
	// least ⌊n/2⌋ = 4 distinct neighbors (the Theorem 9 threshold), with
	// 10% extra random links; which neighbors and in which round is up
	// to the interference (i.e. the adversary).
	adv := anondyn.RandomDegree(3, anondyn.CrashDegree(nDrones), 0.10, 2026)

	tracker := anondyn.NewPhaseTracker()
	res, err := anondyn.Scenario{
		N: nDrones, F: fBudget, Eps: eps,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    inputs,
		Adversary: adv,
		Crashes: map[int]anondyn.Crash{
			3: anondyn.CrashAt(5),         // battery failure after round 5
			7: anondyn.CrashPartial(9, 0), // mid-broadcast crash: only drone 0 hears the last message
		},
		Tracker:     tracker,
		RandomPorts: true, // MAC-layer ports are arbitrary per drone
		Seed:        7,
		KeepTrace:   true,
	}.Run()
	if err != nil {
		return err
	}

	fmt.Printf("drone swarm: %d drones, up to %d crashes, ε=%.4f (%.1f m/s over [%g,%g] m/s)\n",
		nDrones, fBudget, eps, speedTolerance, minSpeed, maxSpeed)
	fmt.Printf("network: %s\n\n", adv.Name())

	ids := make([]int, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		speed := minSpeed + res.Outputs[id]*(maxSpeed-minSpeed)
		status := "ok"
		if id == 3 || id == 7 {
			status = "decided before crash"
		}
		fmt.Printf("  drone %d: agreed speed %.3f m/s (round %2d, %s)\n",
			id, speed, res.DecideRound[id], status)
	}

	fmt.Printf("\nrounds: %d, messages delivered: %d, lost to interference: %d\n",
		res.Rounds, res.MessagesDelivered, res.MessagesLost)
	fmt.Printf("ε-agreement: %v   validity (within preference hull): %v\n",
		res.EpsAgreement(eps), res.Valid())
	fmt.Printf("phases used: %d (p_end=%d)\n", tracker.MaxPhase(), anondyn.PEndDAC(eps))
	// The adversary guarantees D per aligned 3-round block; sliding
	// windows therefore carry the guarantee at T = 2·3−1 = 5.
	fmt.Printf("the network provided (5-round windows): D=%d distinct neighbors (threshold %d)\n",
		anondyn.MaxDynaDegree(res.Trace, res.FaultFree, 5), anondyn.CrashDegree(nDrones))

	if !res.Decided {
		return fmt.Errorf("drones: swarm failed to agree")
	}
	return nil
}
