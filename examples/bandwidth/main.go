// Command bandwidth demonstrates the §VII bandwidth/convergence
// trade-off on links with a hard byte budget. Three protocols negotiate
// the same value over the same dynamic network, but the radio only
// carries 24 bytes per message:
//
//   - DBAC (K=0): ~8-byte messages, always fits;
//   - DBAC piggybacking K=2 old states: ~17 bytes, still fits, and
//     recovers same-phase updates when receivers lag;
//   - FullInfo (the unlimited-bandwidth simulation): messages grow with
//     every phase and stop fitting after a few rounds — the run starves.
//
// The §II-A model allows O(log n) bits per link per round; this example
// shows what happens to designs that ignore the budget.
package main

import (
	"fmt"
	"log"

	"anondyn"
)

const (
	n        = 11
	f        = 2
	eps      = 1e-3
	linkCap  = 24 // bytes per message per link
	maxDrift = 14 // phase budget for the DBAC family
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("per-link budget: %d bytes; n=%d, f=%d Byzantine-tolerant configuration\n\n", linkCap, n, f)

	type row struct {
		name string
		algo anondyn.Algo
		k    int
		ff   int
		pEnd int
	}
	rows := []row{
		{"DBAC (K=0)", anondyn.AlgoDBAC, 0, f, maxDrift},
		{"DBAC+piggyback K=2", anondyn.AlgoDBACPiggyback, 2, f, maxDrift},
		{"DBAC+piggyback K=8", anondyn.AlgoDBACPiggyback, 8, f, maxDrift},
		{"FullInfo", anondyn.AlgoFullInfo, 0, 0, 0},
	}
	anyStalled := false
	for _, r := range rows {
		adv := anondyn.Rotating(anondyn.ByzDegree(n, f))
		if r.algo == anondyn.AlgoFullInfo {
			adv = anondyn.Rotating(anondyn.CrashDegree(n))
		}
		res, err := anondyn.Scenario{
			N: n, F: r.ff, Eps: eps,
			Algorithm:        r.algo,
			PiggybackWindow:  r.k,
			PEndOverride:     r.pEnd,
			Inputs:           anondyn.SpreadInputs(n),
			Adversary:        adv,
			MaxRounds:        400,
			MaxMessageBytes:  linkCap,
			AccountBandwidth: true,
		}.Run()
		if err != nil {
			return err
		}
		avg := 0.0
		if res.MessagesDelivered > 0 {
			avg = float64(res.BytesDelivered) / float64(res.MessagesDelivered)
		}
		status := fmt.Sprintf("decided in %d rounds, range %.2g", res.Rounds, res.OutputRange())
		if !res.Decided {
			status = fmt.Sprintf("STALLED after %d rounds (%d messages exceeded the link budget)",
				res.Rounds, res.MessagesOversized)
			anyStalled = true
		}
		fmt.Printf("%-22s avg %5.1f bytes/msg — %s\n", r.name, avg, status)
	}

	fmt.Println("\nmoral: the K window must be sized to the link; with K·~5+8 bytes ≤ budget")
	fmt.Println("the piggyback extension improves worst-case convergence without starving the radio.")
	if !anyStalled {
		return fmt.Errorf("bandwidth: expected at least one starved protocol")
	}
	return nil
}
