// Command quickstart runs the paper's headline scenario in its smallest
// interesting form: DAC among n=7 nodes, f=2 of which crash mid-run,
// under a rotating message adversary that gives every node exactly
// ⌊n/2⌋ = 3 incoming links per round — the minimum dynaDegree at which
// Theorem 9 says crash-tolerant approximate consensus is possible at
// all.
package main

import (
	"fmt"
	"log"
	"sort"

	"anondyn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n   = 7
		f   = 2
		eps = 1e-3
	)
	tracker := anondyn.NewPhaseTracker()
	s := anondyn.Scenario{
		N:         n,
		F:         f,
		Eps:       eps,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.SpreadInputs(n), // 0, 1/6, …, 1
		Adversary: anondyn.Rotating(anondyn.CrashDegree(n)),
		Crashes: map[int]anondyn.Crash{
			1: anondyn.CrashAt(3),            // clean crash after round 3
			4: anondyn.CrashPartial(6, 2, 5), // round-6 broadcast reaches only nodes 2 and 5
		},
		Tracker:   tracker,
		KeepTrace: true,
	}

	res, err := s.Run()
	if err != nil {
		return err
	}

	fmt.Printf("DAC, n=%d f=%d ε=%g, adversary=rotating(d=%d)\n", n, f, eps, anondyn.CrashDegree(n))
	fmt.Printf("p_end = %d phases (Equation 2)\n\n", anondyn.PEndDAC(eps))

	nodes := make([]int, 0, len(res.Outputs))
	for node := range res.Outputs {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		fmt.Printf("  node %d decided %.6f in round %d\n", node, res.Outputs[node], res.DecideRound[node])
	}

	fmt.Printf("\nall fault-free decided: %v (in %d rounds)\n", res.Decided, res.Rounds)
	fmt.Printf("output range: %.2g (ε-agreement: %v, validity: %v)\n",
		res.OutputRange(), res.EpsAgreement(eps), res.Valid())

	// The stability property the run actually provided, measured on the
	// recorded trace (Definition 1).
	ff := res.FaultFree
	fmt.Printf("\ntrace satisfies (1,D)-dynaDegree up to D=%d (threshold ⌊n/2⌋=%d)\n",
		anondyn.MaxDynaDegree(res.Trace, ff, 1), anondyn.CrashDegree(n))

	// Per-phase convergence: the range of V(p) halves each phase
	// (Theorem 3's rate-1/2 guarantee).
	fmt.Println("\nphase  |V(p)|  range(V(p))")
	for p := 0; p <= tracker.MaxPhase() && p <= 6; p++ {
		fmt.Printf("  %2d     %2d     %.6f\n", p, tracker.Count(p), tracker.Range(p))
	}
	if !res.Decided {
		return fmt.Errorf("quickstart: run did not decide")
	}
	return nil
}
