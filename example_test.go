package anondyn_test

import (
	"fmt"

	"anondyn"
)

// ExampleScenario runs the smallest meaningful configuration: DAC among
// five nodes on the benign complete-graph adversary. One phase per
// round, range halving each phase — Theorem 3 at its friendliest.
func ExampleScenario() {
	res, err := anondyn.Scenario{
		N: 5, F: 2, Eps: 0.01,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.SpreadInputs(5), // 0, 0.25, 0.5, 0.75, 1
		Adversary: anondyn.Complete(),
	}.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("decided:", res.Decided)
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("ε-agreement:", res.EpsAgreement(0.01))
	fmt.Println("validity:", res.Valid())
	// Output:
	// decided: true
	// rounds: 7
	// ε-agreement: true
	// validity: true
}

// ExampleScenario_impossibility reproduces Theorem 9's necessity
// direction: below the ⌊n/2⌋ dynaDegree threshold the real DAC refuses
// to terminate.
func ExampleScenario_impossibility() {
	res, err := anondyn.Scenario{
		N: 6, Eps: 0.01,
		Algorithm: anondyn.AlgoDAC,
		Unchecked: true,
		Inputs:    anondyn.SplitInputs(6, 3),
		Adversary: anondyn.Halves(6), // (1, 2)-dynaDegree < ⌊6/2⌋
		MaxRounds: 100,
	}.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("decided:", res.Decided)
	// Output:
	// decided: false
}
