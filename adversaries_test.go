package anondyn_test

import (
	"strings"
	"testing"

	"anondyn"
)

func TestFacadeAdversaryConstructors(t *testing.T) {
	cases := []struct {
		name string
		adv  anondyn.Adversary
	}{
		{"complete", anondyn.Complete()},
		{"fig1", anondyn.Fig1()},
		{"rotating", anondyn.Rotating(2)},
		{"randomDegree", anondyn.RandomDegree(2, 3, 0.1, 1)},
		{"halves", anondyn.Halves(6)},
		{"splitGroups", anondyn.SplitGroups(6, []int{0, 1}, []int{2, 3})},
		{"clustered", anondyn.Clustered(3)},
		{"starve", anondyn.Starve(2)},
		{"isolate", anondyn.Isolate(0)},
		{"chaseMin", anondyn.ChaseMin()},
		{"probabilistic", anondyn.Probabilistic(0.5, 1)},
		{"static", anondyn.Static("ring", anondyn.RingGraph(5))},
		{"periodic", anondyn.Periodic("p", anondyn.CompleteGraph(4), anondyn.NewEdgeSet(4))},
	}
	for _, tc := range cases {
		if tc.adv == nil {
			t.Errorf("%s: nil adversary", tc.name)
			continue
		}
		if tc.adv.Name() == "" {
			t.Errorf("%s: empty name", tc.name)
		}
	}
}

func TestFacadeConstructorsPanicOnBadArgs(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"rotating(0)", func() { anondyn.Rotating(0) }},
		{"randomDegree(block=0)", func() { anondyn.RandomDegree(0, 1, 0, 1) }},
		{"halves(1)", func() { anondyn.Halves(1) }},
		{"splitGroups overlap", func() { anondyn.SplitGroups(4, []int{0}, []int{0}) }},
		{"clustered(0)", func() { anondyn.Clustered(0) }},
		{"starve(0)", func() { anondyn.Starve(0) }},
		{"isolate(-1)", func() { anondyn.Isolate(-1) }},
		{"probabilistic(2)", func() { anondyn.Probabilistic(2, 1) }},
		{"periodic empty", func() { anondyn.Periodic("x") }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestFacadeGraphHelpers(t *testing.T) {
	if g := anondyn.CompleteGraph(5); g.Len() != 20 {
		t.Errorf("CompleteGraph(5) has %d edges", g.Len())
	}
	if g := anondyn.RingGraph(5); g.Len() != 5 {
		t.Errorf("RingGraph(5) has %d edges", g.Len())
	}
	if g := anondyn.StarGraph(5, 0); g.Len() != 8 {
		t.Errorf("StarGraph(5,0) has %d edges", g.Len())
	}
	g := anondyn.NewEdgeSet(3)
	g.Add(0, 1)
	if !g.Has(0, 1) {
		t.Error("NewEdgeSet broken")
	}
}

func TestFacadeStrategies(t *testing.T) {
	for _, s := range []anondyn.Strategy{
		anondyn.Silent(), anondyn.Extremist(1), anondyn.Equivocator(0, 1),
		anondyn.SplitBrain(func(int) bool { return true }, 0, 1),
		anondyn.RandomNoise(1), anondyn.Laggard(0.5), anondyn.Mimic(0),
	} {
		if s == nil || s.Name() == "" {
			t.Errorf("bad strategy %v", s)
		}
	}
}

func TestFacadeByzSplit(t *testing.T) {
	bs, err := anondyn.NewByzSplit(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Degree() != 11 {
		t.Errorf("Degree = %d, want 11", bs.Degree())
	}
	if len(bs.Byzantine()) != 3 {
		t.Errorf("Byzantine count = %d", len(bs.Byzantine()))
	}
	inputs := bs.Inputs()
	if len(inputs) != 16 || inputs[0] != 0 || inputs[15] != 1 {
		t.Errorf("Inputs = %v", inputs)
	}
	if len(bs.AReceivers()) == 0 || len(bs.BReceivers()) == 0 {
		t.Error("receiver groups empty")
	}
	if !strings.Contains(bs.Adversary().Name(), "byzSplit") {
		t.Errorf("adversary name = %q", bs.Adversary().Name())
	}
	if _, err := anondyn.NewByzSplit(3, 1); err == nil {
		t.Error("n < 3f+1 accepted")
	}
}

func TestFacadeDynaDegreeHelpers(t *testing.T) {
	tr := anondyn.Trace{anondyn.CompleteGraph(4), anondyn.NewEdgeSet(4)}
	ff := []int{0, 1, 2, 3}
	if !anondyn.SatisfiesDynaDegree(tr, ff, 2, 3) {
		t.Error("(2,3) should hold")
	}
	if anondyn.SatisfiesDynaDegree(tr, ff, 1, 1) {
		t.Error("(1,1) should fail (empty round)")
	}
	if got := anondyn.MaxDynaDegree(tr, ff, 2); got != 3 {
		t.Errorf("MaxDynaDegree = %d", got)
	}
	if got := anondyn.MinTForDegree(tr, ff, 3); got != 2 {
		t.Errorf("MinTForDegree = %d", got)
	}
}

func TestScenarioFloodMin(t *testing.T) {
	res, err := anondyn.Scenario{
		N:         5,
		Algorithm: anondyn.AlgoFloodMin,
		Inputs:    anondyn.SplitInputs(5, 1),
		Adversary: anondyn.Complete(),
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || res.OutputRange() != 0 {
		t.Errorf("decided=%v range=%g", res.Decided, res.OutputRange())
	}
	for _, v := range res.Outputs {
		if v != 0 {
			t.Errorf("output %g, want the global min 0", v)
		}
	}
}

func TestScenarioLinkBandwidth(t *testing.T) {
	res, err := anondyn.Scenario{
		N: 7, F: 0, Eps: 1e-2,
		Algorithm: anondyn.AlgoFullInfo,
		Inputs:    anondyn.SpreadInputs(7),
		Adversary: anondyn.Complete(),
		LinkBandwidth: func(from, to int) int {
			return 12 // fits roughly one history entry
		},
		MaxRounds: 50,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided {
		t.Error("FullInfo decided through 12-byte links")
	}
	if res.MessagesOversized == 0 {
		t.Error("no oversized drops")
	}
}

// TestParseAdversaryFactory pins the registry grammar every sweep
// surface (CLI flags, spec files) resolves through.
func TestParseAdversaryFactory(t *testing.T) {
	cell := anondyn.Cell{N: 9, F: 2}
	cases := []struct {
		spec string
		want string // adversary Name() substring
	}{
		{"complete", "complete"},
		{"halves", "split"},
		{"chasemin", "chaseMin"},
		{"rotating:3", "rotating(d=3)"},
		{"rotating:crashdeg", "rotating(d=4)"}, // ⌊9/2⌋
		{"starve:byzdeg", "starve(d=7)"},       // ⌊(9+6)/2⌋
		{"clustered:4", "clustered(T=4)"},
		{"er:0.25", "er(p=0.25)"},
		{"random:4,crashdeg,0.05", "randomDegree(B=4,D=4"},
		{"random:2,3", "randomDegree(B=2,D=3,extra=0.05)"},
		{"isolate:2", "isolate(2)"},
		{"starveperiod:4", "periodic"},
	}
	for _, tc := range cases {
		f, err := anondyn.ParseAdversaryFactory(tc.spec)
		if err != nil {
			t.Errorf("ParseAdversaryFactory(%q): %v", tc.spec, err)
			continue
		}
		if f.Name != tc.spec {
			t.Errorf("factory name = %q, want the spec %q", f.Name, tc.spec)
		}
		if got := f.New(cell, 1).Name(); !strings.Contains(got, tc.want) {
			t.Errorf("%q built %q, want *%q*", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{"", "warp", "rotating:x", "random:1", "er:zz",
		"complete:3", "starveperiod:0", "random:1,2,3,4,5"} {
		if _, err := anondyn.ParseAdversaryFactory(bad); err == nil {
			t.Errorf("ParseAdversaryFactory(%q) accepted", bad)
		}
	}
}

// TestFactoryPinnedSeeds: an explicit seed argument decouples the
// adversary stream from the run seed.
func TestFactoryPinnedSeeds(t *testing.T) {
	trace := func(spec string, seed int64) []*anondyn.EdgeSet {
		t.Helper()
		f, err := anondyn.ParseAdversaryFactory(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := anondyn.Scenario{
			N: 5, Eps: 1e-3,
			Algorithm: anondyn.AlgoDAC,
			Inputs:    anondyn.SpreadInputs(5),
			Adversary: f.New(anondyn.Cell{N: 5}, seed),
			KeepTrace: true,
			MaxRounds: 10000,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	equalTraces := func(a, b []*anondyn.EdgeSet) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if !equalTraces(trace("er:0.5,77", 1), trace("er:0.5,77", 2)) {
		t.Error("pinned-seed factory drew different streams for different run seeds")
	}
	if equalTraces(trace("er:0.5", 1), trace("er:0.5", 2)) {
		t.Error("run-seeded factory drew identical streams for different run seeds")
	}
}

// TestRegisterAdversaryFactory: third-party registrations resolve and
// duplicates are rejected loudly.
func TestRegisterAdversaryFactory(t *testing.T) {
	anondyn.RegisterAdversaryFactory("testring", func(arg string) (anondyn.AdversaryFactory, error) {
		return anondyn.AdversaryFactory{New: func(c anondyn.Cell, _ int64) anondyn.Adversary {
			return anondyn.Static("testring", anondyn.RingGraph(c.N))
		}}, nil
	})
	f, err := anondyn.ParseAdversaryFactory("testring")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.New(anondyn.Cell{N: 4}, 0).Name(); !strings.Contains(got, "testring") {
		t.Errorf("custom factory built %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	anondyn.RegisterAdversaryFactory("complete", nil)
}
