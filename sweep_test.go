package anondyn_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"anondyn"
)

func TestGridCellsDefaultsAndSkip(t *testing.T) {
	g := anondyn.Grid{Ns: []int{5, 7, 9}}
	cells := g.Cells()
	if len(cells) != 3 {
		t.Fatalf("%d cells, want 3 (unset axes default to one value)", len(cells))
	}
	c := cells[0]
	if c.F != 0 || c.Eps != 1e-3 || c.Algorithm != anondyn.AlgoDAC || c.Adversary.Name != "complete" {
		t.Errorf("defaults not applied: %+v", c)
	}

	g.Fs = []int{0, 2}
	g.Skip = func(c anondyn.Cell) bool { return c.N < 2*c.F+1 }
	cells = g.Cells()
	// n=5,7,9 × f=0,2; no pair is inadmissible for these sizes.
	if len(cells) != 6 {
		t.Fatalf("%d cells, want 6", len(cells))
	}
	g.Ns = []int{3, 7}
	if got := len(g.Cells()); got != 3 {
		t.Errorf("skip kept %d cells, want 3 (n=3,f=2 dropped)", got)
	}
}

func TestGridRunAggregatesPerCell(t *testing.T) {
	g := anondyn.Grid{
		Ns:           []int{5, 7},
		Algorithms:   []anondyn.Algo{anondyn.AlgoDAC},
		SeedsPerCell: 4,
		BaseSeed:     100,
		MaxRounds:    2000,
	}
	rows, err := g.Run(anondyn.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Runs != 4 || r.Decided != 4 || r.Violations != 0 {
			t.Errorf("cell n=%d: runs/decided/violations = %d/%d/%d",
				r.N, r.Runs, r.Decided, r.Violations)
		}
		if r.Rounds.N != 4 || r.Rounds.Min < 1 {
			t.Errorf("cell n=%d rounds summary = %+v", r.N, r.Rounds)
		}
		if r.Algorithm != "DAC" || r.Adversary != "complete" {
			t.Errorf("cell labels = %q/%q", r.Algorithm, r.Adversary)
		}
	}
}

// TestGridRunDeterministic: sweep rows are bit-identical across worker
// counts.
func TestGridRunDeterministic(t *testing.T) {
	g := anondyn.Grid{
		Ns:   []int{5, 7},
		Epss: []float64{1e-2, 1e-3},
		Adversaries: []anondyn.AdversaryFactory{
			anondyn.CompleteFactory(),
			{Name: "er(0.5)", New: func(_ int, seed int64) anondyn.Adversary {
				return anondyn.Probabilistic(0.5, seed)
			}},
		},
		SeedsPerCell: 3,
		MaxRounds:    5000,
	}
	base, err := g.Run(anondyn.BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 8 {
		t.Fatalf("%d rows, want 8", len(base))
	}
	for _, workers := range []int{2, 8} {
		rows, err := g.Run(anondyn.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rows, base) {
			t.Errorf("workers=%d sweep differs from sequential", workers)
		}
	}
}

func TestGridRunEmpty(t *testing.T) {
	if _, err := (anondyn.Grid{}).Run(anondyn.BatchOptions{}); err == nil {
		t.Error("empty grid accepted")
	}
}

// TestCellResultJSON pins the report shape the CLIs emit.
func TestCellResultJSON(t *testing.T) {
	g := anondyn.Grid{Ns: []int{5}, SeedsPerCell: 2}
	rows, err := g.Run(anondyn.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"n", "f", "eps", "algorithm", "adversary", "runs", "decided", "violations", "rounds", "output_range"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("report row missing %q: %s", key, data)
		}
	}
}
