package anondyn_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"anondyn"
)

func TestGridCellsDefaultsAndSkip(t *testing.T) {
	g := anondyn.Grid{Ns: []int{5, 7, 9}}
	cells := g.Cells()
	if len(cells) != 3 {
		t.Fatalf("%d cells, want 3 (unset axes default to one value)", len(cells))
	}
	c := cells[0]
	if c.F != 0 || c.Eps != 1e-3 || c.Algorithm != anondyn.AlgoDAC || c.Adversary.Name != "complete" {
		t.Errorf("defaults not applied: %+v", c)
	}

	g.Fs = []int{0, 2}
	g.Skip = func(c anondyn.Cell) bool { return c.N < 2*c.F+1 }
	cells = g.Cells()
	// n=5,7,9 × f=0,2; no pair is inadmissible for these sizes.
	if len(cells) != 6 {
		t.Fatalf("%d cells, want 6", len(cells))
	}
	g.Ns = []int{3, 7}
	if got := len(g.Cells()); got != 3 {
		t.Errorf("skip kept %d cells, want 3 (n=3,f=2 dropped)", got)
	}
}

func TestGridRunAggregatesPerCell(t *testing.T) {
	g := anondyn.Grid{
		Ns:           []int{5, 7},
		Algorithms:   []anondyn.Algo{anondyn.AlgoDAC},
		SeedsPerCell: 4,
		BaseSeed:     100,
		MaxRounds:    2000,
	}
	rows, err := g.Run(anondyn.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Runs != 4 || r.Decided != 4 || r.Violations != 0 {
			t.Errorf("cell n=%d: runs/decided/violations = %d/%d/%d",
				r.N, r.Runs, r.Decided, r.Violations)
		}
		if r.Rounds.N != 4 || r.Rounds.Min < 1 {
			t.Errorf("cell n=%d rounds summary = %+v", r.N, r.Rounds)
		}
		if r.Algorithm != "DAC" || r.Adversary != "complete" {
			t.Errorf("cell labels = %q/%q", r.Algorithm, r.Adversary)
		}
	}
}

// TestGridRunDeterministic: sweep rows are bit-identical across worker
// counts.
func TestGridRunDeterministic(t *testing.T) {
	g := anondyn.Grid{
		Ns:   []int{5, 7},
		Epss: []float64{1e-2, 1e-3},
		Adversaries: []anondyn.AdversaryFactory{
			anondyn.CompleteFactory(),
			{Name: "er(0.5)", New: func(_ anondyn.Cell, seed int64) anondyn.Adversary {
				return anondyn.Probabilistic(0.5, seed)
			}},
		},
		SeedsPerCell: 3,
		MaxRounds:    5000,
	}
	base, err := g.Run(anondyn.BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 8 {
		t.Fatalf("%d rows, want 8", len(base))
	}
	for _, workers := range []int{2, 8} {
		rows, err := g.Run(anondyn.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rows, base) {
			t.Errorf("workers=%d sweep differs from sequential", workers)
		}
	}
}

func TestGridRunEmpty(t *testing.T) {
	if _, err := (anondyn.Grid{}).Run(anondyn.BatchOptions{}); err == nil {
		t.Error("empty grid accepted")
	}
}

// TestCellResultJSON pins the report shape the CLIs emit.
func TestCellResultJSON(t *testing.T) {
	g := anondyn.Grid{Ns: []int{5}, SeedsPerCell: 2}
	rows, err := g.Run(anondyn.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"n", "f", "eps", "algorithm", "adversary", "runs", "decided", "violations", "rounds", "output_range"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("report row missing %q: %s", key, data)
		}
	}
}

// TestGridVariantsAxis: the variants axis multiplies cells, labels
// rows, and applies its scenario override per run.
func TestGridVariantsAxis(t *testing.T) {
	g := anondyn.Grid{
		Ns: []int{6},
		Adversaries: func() []anondyn.AdversaryFactory {
			f, err := anondyn.ParseAdversaryFactory("halves")
			if err != nil {
				t.Fatal(err)
			}
			return []anondyn.AdversaryFactory{f}
		}(),
		Variants: []anondyn.Variant{
			{Name: "paper"},
			{Name: "eager", Apply: func(s *anondyn.Scenario) {
				s.QuorumOverride = s.N / 2
				s.Unchecked = true
			}},
		},
		Inputs:    func(n int, _ int64) []float64 { return anondyn.SplitInputs(n, n/2) },
		MaxRounds: 200,
	}
	rows, err := g.Run(anondyn.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (one per variant)", len(rows))
	}
	if rows[0].Variant != "paper" || rows[1].Variant != "eager" {
		t.Fatalf("variant labels = %q, %q", rows[0].Variant, rows[1].Variant)
	}
	// The split adversary stalls the paper quorum; the eager override
	// terminates (and disagrees) — the variant must actually apply.
	if rows[0].Decided != 0 {
		t.Errorf("paper variant decided %d runs below the threshold", rows[0].Decided)
	}
	if rows[1].Decided != 1 {
		t.Errorf("eager variant decided %d runs, want 1", rows[1].Decided)
	}
}

// TestGridRunEachOrderAndCells: per-run delivery is deterministic and
// carries the right cell coordinates.
func TestGridRunEachOrderAndCells(t *testing.T) {
	g := anondyn.Grid{
		Ns:           []int{5, 7},
		SeedsPerCell: 3,
		BaseSeed:     10,
		MaxRounds:    2000,
	}
	var gotRuns []int
	var gotSeeds []int64
	err := g.RunEach(anondyn.BatchOptions{Workers: 4},
		func(c anondyn.Cell, cell, run int, seed int64, res *anondyn.Result) error {
			if wantN := []int{5, 7}[cell]; c.N != wantN {
				t.Errorf("run %d delivered cell n=%d, want %d", run, c.N, wantN)
			}
			if cell != run/3 {
				t.Errorf("run %d mapped to cell %d", run, cell)
			}
			gotRuns = append(gotRuns, run)
			gotSeeds = append(gotSeeds, seed)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range gotRuns {
		if run != i {
			t.Fatalf("delivery %d was run %d (order not deterministic)", i, run)
		}
		if gotSeeds[i] != int64(10+i) {
			t.Fatalf("run %d used seed %d, want %d", i, gotSeeds[i], 10+i)
		}
	}
	if len(gotRuns) != 6 {
		t.Fatalf("delivered %d runs, want 6", len(gotRuns))
	}
}

// TestGridAdversaryCheck: a factory's Check rejects the sweep before
// any run starts.
func TestGridAdversaryCheck(t *testing.T) {
	f, err := anondyn.ParseAdversaryFactory("fig1")
	if err != nil {
		t.Fatal(err)
	}
	g := anondyn.Grid{Ns: []int{7}, Adversaries: []anondyn.AdversaryFactory{f}}
	if _, err := g.Run(anondyn.BatchOptions{}); err == nil {
		t.Error("fig1 at n=7 ran")
	}
}
