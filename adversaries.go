package anondyn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"anondyn/internal/adversary"
	"anondyn/internal/fault"
	"anondyn/internal/network"
)

// Adversary constructors. Each returns a ready-to-use message adversary;
// constructors whose parameters can be invalid panic on programmer error
// (they are configuration, not runtime input — prefer failing loudly at
// scenario build time).

// Complete returns the benign adversary that delivers every link every
// round ((1, n−1)-dynaDegree).
func Complete() Adversary { return adversary.NewComplete() }

// Fig1 returns the paper's Figure 1 adversary on 3 nodes: empty graphs
// in odd rounds, the 0↔1, 1↔2 links in even rounds. It satisfies
// (2,1)-dynaDegree but not (1,1)-dynaDegree.
func Fig1() Adversary { return adversary.NewFig1() }

// Rotating returns the adversary that gives every node exactly d
// incoming links per round from a rotating neighbor window
// ((1, d)-dynaDegree with maximal neighbor churn).
func Rotating(d int) Adversary {
	a, err := adversary.NewRotating(d)
	if err != nil {
		panic(err)
	}
	return a
}

// RandomDegree returns the randomized adversary guaranteeing, in every
// aligned block of `block` rounds, d distinct incoming neighbors per
// node, plus each extra link with probability extra per round.
func RandomDegree(block, d int, extra float64, seed int64) Adversary {
	a, err := adversary.NewRandomDegree(block, d, extra, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// Halves returns the Theorem 9 split adversary: two forever-isolated
// complete halves, (1, ⌊n/2⌋−1)-dynaDegree.
func Halves(n int) Adversary {
	a, err := adversary.NewHalves(n)
	if err != nil {
		panic(err)
	}
	return a
}

// SplitGroups returns the adversary isolating the given disjoint groups
// (complete within, silent across).
func SplitGroups(n int, groups ...[]int) Adversary {
	a, err := adversary.NewSplitGroups(n, groups...)
	if err != nil {
		panic(err)
	}
	return a
}

// Clustered returns the adaptive adversary that keeps value-sorted
// halves isolated and delivers a complete round only every period-th
// round (worst-case rounds ≈ T·p_end shape).
func Clustered(period int) Adversary {
	a, err := adversary.NewClustered(period)
	if err != nil {
		panic(err)
	}
	return a
}

// Starve returns the adaptive adversary that feeds every node only its d
// closest-valued peers each round.
func Starve(d int) Adversary {
	a, err := adversary.NewStarve(d)
	if err != nil {
		panic(err)
	}
	return a
}

// Isolate returns the Corollary 1 adversary: the complete graph minus
// the victim's outgoing links — every receiver misses exactly one
// message per round ((1, n−2)-dynaDegree), yet the victim's input never
// propagates.
func Isolate(victim int) Adversary {
	a, err := adversary.NewIsolate(victim)
	if err != nil {
		panic(err)
	}
	return a
}

// ChaseMin returns the adaptive Corollary 1 adversary that suppresses,
// each round, the outgoing links of a current minimum-value holder.
func ChaseMin() Adversary { return adversary.NewChaseMin() }

// Probabilistic returns the §VII random adversary: each directed link
// is present independently with probability p, redrawn every round.
func Probabilistic(p float64, seed int64) Adversary {
	a, err := adversary.NewProbabilistic(p, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// SparseProbabilistic returns the sparse-native variant of Probabilistic:
// the same per-round Erdős–Rényi distribution rendered with
// geometric-skip sampling in O(pn²) RNG draws instead of n(n−1) — the
// adversary behind the `er2:<p>` registry name. Its RNG stream is a
// versioned contract distinct from the legacy `er` stream: identical
// (p, seed) pairs reproduce identical er2 traces forever, but not the
// traces `er` draws from that seed.
func SparseProbabilistic(p float64, seed int64) Adversary {
	a, err := adversary.NewSparseProbabilistic(p, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// Static wraps a fixed graph as an adversary.
func Static(name string, g *EdgeSet) Adversary { return adversary.NewStatic(name, g) }

// Periodic cycles through the given edge sets round-robin.
func Periodic(name string, sets ...*EdgeSet) Adversary {
	a, err := adversary.NewPeriodic(name, sets...)
	if err != nil {
		panic(err)
	}
	return a
}

// Adversary factory registry. Every sweep surface — the -advs /
// -adversary CLI flags and the declarative spec files — resolves
// adversaries through one grammar:
//
//	complete | halves | chasemin | fig1
//	isolate:<victim>
//	rotating:<d> | clustered:<T> | starve:<d>
//	er:<p>[,<seed>] | er2:<p>[,<seed>]
//	random:<B>,<D>[,<extra>[,<seed>]]
//	starveperiod:<T>
//
// Degree arguments (<d>, <D>) accept the symbolic values "crashdeg"
// (⌊n/2⌋, the DAC threshold) and "byzdeg" (⌊(n+3f)/2⌋, the DBAC
// threshold), resolved per cell so one axis entry tracks the threshold
// across network sizes. Randomized adversaries draw from the run seed
// unless the spec pins an explicit seed.
//
// er and er2 draw the same per-round Erdős–Rényi distribution but are
// distinct, individually stable RNG stream contracts: er is the legacy
// dense one-uniform-per-pair draw (kept byte-compatible so committed
// specs and pinned seeds keep reproducing their exact graphs), er2 is
// the geometric-skip sparse sampler whose cost scales with p·n² — use
// it for large sparse networks. A spec that switches between them
// changes its graphs, never its graph distribution.

// factoryParser builds a factory from the argument part of a
// "name:arg" spec.
type factoryParser func(arg string) (AdversaryFactory, error)

var factoryRegistry = map[string]factoryParser{}

func init() {
	registerBuiltinFactories()
}

// RegisterAdversaryFactory installs a parser for a sweep adversary
// name, making it resolvable by every CLI flag and spec file. It
// panics on a duplicate name (registration is configuration).
func RegisterAdversaryFactory(name string, parse func(arg string) (AdversaryFactory, error)) {
	if _, dup := factoryRegistry[name]; dup {
		panic(fmt.Sprintf("anondyn: adversary factory %q already registered", name))
	}
	factoryRegistry[name] = parse
}

// AdversaryFactoryNames returns the registered sweep adversary names,
// sorted — the vocabulary of the -advs flag and spec files.
func AdversaryFactoryNames() []string {
	names := make([]string, 0, len(factoryRegistry))
	for name := range factoryRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseAdversaryFactory resolves a sweep adversary spec string into a
// seedable factory via the registry.
func ParseAdversaryFactory(spec string) (AdversaryFactory, error) {
	name, arg, _ := strings.Cut(spec, ":")
	parse, ok := factoryRegistry[name]
	if !ok {
		return AdversaryFactory{}, fmt.Errorf("anondyn: unknown adversary %q (known: %s)",
			spec, strings.Join(AdversaryFactoryNames(), ", "))
	}
	f, err := parse(arg)
	if err != nil {
		return AdversaryFactory{}, fmt.Errorf("anondyn: adversary %q: %w", spec, err)
	}
	f.Name = spec
	return f, nil
}

// degreeArg parses an adversary degree argument: an integer literal or
// one of the symbolic per-cell thresholds.
func degreeArg(tok string) (func(c Cell) int, error) {
	switch tok {
	case "crashdeg":
		return func(c Cell) int { return CrashDegree(c.N) }, nil
	case "byzdeg":
		return func(c Cell) int { return ByzDegree(c.N, c.F) }, nil
	}
	d, err := strconv.Atoi(tok)
	if err != nil {
		return nil, fmt.Errorf("degree %q is neither an integer nor crashdeg/byzdeg", tok)
	}
	return func(Cell) int { return d }, nil
}

// noArg wraps a parameterless constructor as a factory parser.
func noArg(mk func(c Cell) Adversary) factoryParser {
	return func(arg string) (AdversaryFactory, error) {
		if arg != "" {
			return AdversaryFactory{}, fmt.Errorf("takes no argument (got %q)", arg)
		}
		return AdversaryFactory{New: func(c Cell, _ int64) Adversary { return mk(c) }}, nil
	}
}

func registerBuiltinFactories() {
	RegisterAdversaryFactory("complete", noArg(func(Cell) Adversary { return Complete() }))
	RegisterAdversaryFactory("halves", noArg(func(c Cell) Adversary { return Halves(c.N) }))
	RegisterAdversaryFactory("chasemin", noArg(func(Cell) Adversary { return ChaseMin() }))
	RegisterAdversaryFactory("fig1", func(arg string) (AdversaryFactory, error) {
		if arg != "" {
			return AdversaryFactory{}, fmt.Errorf("takes no argument (got %q)", arg)
		}
		return AdversaryFactory{
			New: func(Cell, int64) Adversary { return Fig1() },
			Check: func(c Cell) error {
				if c.N != 3 {
					return fmt.Errorf("fig1 is defined on exactly 3 nodes (got n=%d)", c.N)
				}
				return nil
			},
		}, nil
	})
	RegisterAdversaryFactory("isolate", func(arg string) (AdversaryFactory, error) {
		victim, err := strconv.Atoi(arg)
		if err != nil {
			return AdversaryFactory{}, fmt.Errorf("isolate needs a victim node: %v", err)
		}
		return AdversaryFactory{
			New: func(Cell, int64) Adversary { return Isolate(victim) },
			Check: func(c Cell) error {
				if victim < 0 || victim >= c.N {
					return fmt.Errorf("victim %d out of range for n=%d", victim, c.N)
				}
				return nil
			},
		}, nil
	})
	RegisterAdversaryFactory("rotating", degreeFactory(func(d int) Adversary { return Rotating(d) }))
	RegisterAdversaryFactory("starve", degreeFactory(func(d int) Adversary { return Starve(d) }))
	RegisterAdversaryFactory("clustered", func(arg string) (AdversaryFactory, error) {
		period, err := strconv.Atoi(arg)
		if err != nil {
			return AdversaryFactory{}, fmt.Errorf("clustered needs an integer period: %v", err)
		}
		return AdversaryFactory{New: func(Cell, int64) Adversary { return Clustered(period) }}, nil
	})
	RegisterAdversaryFactory("er", func(arg string) (AdversaryFactory, error) {
		parts := strings.Split(arg, ",")
		if len(parts) < 1 || len(parts) > 2 {
			return AdversaryFactory{}, fmt.Errorf("er wants er:<p>[,<seed>]")
		}
		p, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return AdversaryFactory{}, fmt.Errorf("er needs a probability: %v", err)
		}
		fixed, hasFixed, err := optionalSeed(parts, 1)
		if err != nil {
			return AdversaryFactory{}, err
		}
		return AdversaryFactory{New: func(_ Cell, seed int64) Adversary {
			if hasFixed {
				seed = fixed
			}
			return Probabilistic(p, seed)
		}}, nil
	})
	RegisterAdversaryFactory("er2", func(arg string) (AdversaryFactory, error) {
		parts := strings.Split(arg, ",")
		if len(parts) < 1 || len(parts) > 2 {
			return AdversaryFactory{}, fmt.Errorf("er2 wants er2:<p>[,<seed>]")
		}
		p, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return AdversaryFactory{}, fmt.Errorf("er2 needs a probability: %v", err)
		}
		fixed, hasFixed, err := optionalSeed(parts, 1)
		if err != nil {
			return AdversaryFactory{}, err
		}
		return AdversaryFactory{New: func(_ Cell, seed int64) Adversary {
			if hasFixed {
				seed = fixed
			}
			return SparseProbabilistic(p, seed)
		}}, nil
	})
	RegisterAdversaryFactory("random", func(arg string) (AdversaryFactory, error) {
		parts := strings.Split(arg, ",")
		if len(parts) < 2 || len(parts) > 4 {
			return AdversaryFactory{}, fmt.Errorf("random wants random:<B>,<D>[,<extra>[,<seed>]]")
		}
		block, err := strconv.Atoi(parts[0])
		if err != nil {
			return AdversaryFactory{}, fmt.Errorf("block %q: %v", parts[0], err)
		}
		degree, err := degreeArg(parts[1])
		if err != nil {
			return AdversaryFactory{}, err
		}
		extra := 0.05
		if len(parts) >= 3 {
			if extra, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return AdversaryFactory{}, fmt.Errorf("extra-link probability %q: %v", parts[2], err)
			}
		}
		fixed, hasFixed, err := optionalSeed(parts, 3)
		if err != nil {
			return AdversaryFactory{}, err
		}
		return AdversaryFactory{New: func(c Cell, seed int64) Adversary {
			if hasFixed {
				seed = fixed
			}
			return RandomDegree(block, degree(c), extra, seed)
		}}, nil
	})
	RegisterAdversaryFactory("starveperiod", func(arg string) (AdversaryFactory, error) {
		period, err := strconv.Atoi(arg)
		if err != nil || period < 1 {
			return AdversaryFactory{}, fmt.Errorf("starveperiod needs a period ≥ 1 (got %q)", arg)
		}
		return AdversaryFactory{New: func(c Cell, _ int64) Adversary {
			// T−1 empty rounds, then one complete round: every phase
			// needs a full period (experiment E4, §VII worst case).
			sets := make([]*EdgeSet, period)
			for i := 0; i < period-1; i++ {
				sets[i] = NewEdgeSet(c.N)
			}
			sets[period-1] = CompleteGraph(c.N)
			return Periodic(fmt.Sprintf("starve%d", period), sets...)
		}}, nil
	})
}

// degreeFactory builds the parser for single-degree-argument
// constructors (rotating, starve).
func degreeFactory(mk func(d int) Adversary) factoryParser {
	return func(arg string) (AdversaryFactory, error) {
		degree, err := degreeArg(arg)
		if err != nil {
			return AdversaryFactory{}, err
		}
		return AdversaryFactory{New: func(c Cell, _ int64) Adversary { return mk(degree(c)) }}, nil
	}
}

// optionalSeed reads parts[i] as a pinned adversary seed when present.
func optionalSeed(parts []string, i int) (seed int64, ok bool, err error) {
	if len(parts) <= i {
		return 0, false, nil
	}
	seed, err = strconv.ParseInt(parts[i], 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("seed %q: %v", parts[i], err)
	}
	return seed, true, nil
}

// Graph construction helpers (re-exports from the network layer).

// NewEdgeSet returns an empty directed edge set over n nodes.
func NewEdgeSet(n int) *EdgeSet { return network.NewEdgeSet(n) }

// CompleteGraph returns the complete directed graph on n nodes.
func CompleteGraph(n int) *EdgeSet { return network.Complete(n) }

// RingGraph returns the directed cycle on n nodes.
func RingGraph(n int) *EdgeSet { return network.Ring(n) }

// StarGraph returns the bidirectional star with the given hub.
func StarGraph(n, hub int) *EdgeSet { return network.Star(n, hub) }

// SatisfiesDynaDegree checks Definition 1 on a recorded trace: every
// window of T consecutive rounds gives every listed fault-free node ≥ D
// distinct incoming neighbors.
func SatisfiesDynaDegree(tr Trace, faultFree []int, t, d int) bool {
	return network.SatisfiesDynaDegree(tr, faultFree, t, d)
}

// MaxDynaDegree returns the largest D for which the trace satisfies
// (T, D)-dynaDegree.
func MaxDynaDegree(tr Trace, faultFree []int, t int) int {
	return network.MaxDynaDegree(tr, faultFree, t)
}

// MinTForDegree returns the smallest T for which the trace satisfies
// (T, D)-dynaDegree, or 0 if none.
func MinTForDegree(tr Trace, faultFree []int, d int) int {
	return network.MinTForDegree(tr, faultFree, d)
}

// Prior stability properties (§II-B), for comparing what a trace
// provides against the conditions of earlier work.

// EveryRoundRooted reports the rooted-spanning-tree property of
// [10],[17],[38]: every round's graph has a node reaching all others.
func EveryRoundRooted(tr Trace) bool { return network.EveryRoundRooted(tr) }

// TIntervalConnected reports the T-interval connectivity of [22]: every
// T-round window keeps a stable strongly-connected subgraph.
func TIntervalConnected(tr Trace, t int) bool { return network.TIntervalConnected(tr, t) }

// Byzantine strategy constructors.

// Silent returns the Byzantine strategy that never sends.
func Silent() Strategy { return fault.Silent{} }

// Extremist returns the Byzantine strategy claiming the given value at a
// far-future phase to everyone.
func Extremist(value float64) Strategy { return fault.Extremist{Value: value} }

// Equivocator returns the two-faced strategy: low to the lower half of
// receiver IDs, high to the upper half.
func Equivocator(low, high float64) Strategy { return fault.Equivocator{Low: low, High: high} }

// SplitBrain returns the Theorem 10 equivocation: valueA towards
// receivers selected by inA, valueB towards the rest.
func SplitBrain(inA func(receiver int) bool, valueA, valueB float64) Strategy {
	return fault.SplitBrain{InA: inA, ValueA: valueA, ValueB: valueB}
}

// RandomNoise returns the strategy sending plausible random values.
func RandomNoise(seed int64) Strategy { return fault.NewRandomNoise(seed) }

// Laggard returns the strategy replaying phase-0 state forever.
func Laggard(value float64) Strategy { return fault.Laggard{Value: value} }

// Mimic returns the strategy copying the public state of a fault-free
// node.
func Mimic(target int) Strategy { return fault.Mimic{Target: target} }

// ByzSplit bundles the full Theorem 10 construction for n, f: the
// adversary, the Byzantine node set with their SplitBrain strategies,
// and the inputs. See Scenario usage in examples/impossibility.
type ByzSplit struct {
	layout *adversary.ByzSplitLayout
}

// NewByzSplit computes the Theorem 10 layout (requires n ≥ 3f+1, f ≥ 1).
func NewByzSplit(n, f int) (*ByzSplit, error) {
	l, err := adversary.NewByzSplitLayout(n, f)
	if err != nil {
		return nil, err
	}
	return &ByzSplit{layout: l}, nil
}

// Adversary returns the two-group message adversary of the construction.
func (b *ByzSplit) Adversary() Adversary { return b.layout.Adversary() }

// Byzantine returns the node→strategy map: every Byzantine node
// equivocates input 0 towards A-receivers and 1 towards B-receivers.
func (b *ByzSplit) Byzantine() map[int]Strategy {
	m := make(map[int]Strategy, len(b.layout.Byzantine))
	for _, i := range b.layout.Byzantine {
		m[i] = fault.SplitBrain{InA: b.layout.SendsToA, ValueA: 0, ValueB: 1}
	}
	return m
}

// Inputs returns the construction's input vector (0 for the low block, 1
// for the high block).
func (b *ByzSplit) Inputs() []float64 {
	in := make([]float64, b.layout.N)
	for i := range in {
		in[i] = b.layout.Input(i)
	}
	return in
}

// AReceivers returns the fault-free nodes hearing only group A (forced
// towards 0); BReceivers those hearing only group B (forced towards 1).
func (b *ByzSplit) AReceivers() []int { return b.layout.AReceivers }

// BReceivers returns the group-B-facing fault-free nodes.
func (b *ByzSplit) BReceivers() []int { return b.layout.BReceivers }

// Degree returns the per-round in-degree every fault-free node gets —
// exactly one below the ⌊(n+3f)/2⌋ threshold of Theorem 10.
func (b *ByzSplit) Degree() int { return b.layout.MinFaultFreeDegree() }
