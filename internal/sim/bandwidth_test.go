package sim

import (
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/baseline"
	"anondyn/internal/core"
)

func fullInfoProcs(t *testing.T, n int, eps float64) []core.Process {
	t.Helper()
	procs := make([]core.Process, n)
	for i := 0; i < n; i++ {
		fi, err := baseline.NewFullInfo(n, i, spread(n)[i], eps)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = fi
	}
	return procs
}

func TestBandwidthCapDropsOversized(t *testing.T) {
	// FullInfo messages grow with the phase count; a tight cap must
	// eventually drop them all and stall the run.
	n := 7
	cfg := Config{
		N:               n,
		Procs:           fullInfoProcs(t, n, 1e-3),
		Adversary:       adversary.NewComplete(),
		MaxMessageBytes: 16, // fits ~2 phases of history
		MaxRounds:       60,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.Decided {
		t.Error("FullInfo decided under a 16-byte link cap")
	}
	if res.MessagesOversized == 0 {
		t.Error("no oversized drops recorded")
	}
}

func TestBandwidthCapTransparentForSmallMessages(t *testing.T) {
	// Plain DAC messages always fit: a cap must change nothing.
	n := 7
	mk := func(cap int) *Result {
		cfg := Config{
			N:               n,
			Procs:           dacProcs(t, n, 8, spread(n)),
			Adversary:       adversary.NewComplete(),
			MaxMessageBytes: cap,
		}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run()
	}
	uncapped, capped := mk(0), mk(10)
	if capped.MessagesOversized != 0 {
		t.Errorf("DAC messages dropped: %d", capped.MessagesOversized)
	}
	if uncapped.Rounds != capped.Rounds || !capped.Decided {
		t.Errorf("cap changed a fitting run: %d vs %d rounds", uncapped.Rounds, capped.Rounds)
	}
	for node, v := range uncapped.Outputs {
		if capped.Outputs[node] != v {
			t.Errorf("node %d output changed under a transparent cap", node)
		}
	}
}

func TestLinkBandwidthHeterogeneous(t *testing.T) {
	// §VII: per-link budgets. All links wide except those into node 0,
	// which are too narrow for FullInfo histories: node 0 stops hearing
	// anything once histories outgrow its links, while the rest of the
	// network keeps converging.
	n := 7
	cfg := Config{
		N:         n,
		Procs:     fullInfoProcs(t, n, 1e-2),
		Adversary: adversary.NewComplete(),
		LinkBandwidth: func(from, to int) int {
			if to == 0 {
				return 10 // fits only a history-free message
			}
			return 0 // unlimited
		},
		MaxRounds: 50,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.MessagesOversized == 0 {
		t.Fatal("narrow links dropped nothing")
	}
	// Node 0 must be stuck at a low phase; the others decided.
	if _, ok := res.Outputs[0]; ok {
		t.Error("node 0 decided despite starved links")
	}
	decided := 0
	for node := 1; node < n; node++ {
		if _, ok := res.Outputs[node]; ok {
			decided++
		}
	}
	if decided != n-1 {
		t.Errorf("%d of %d wide-link nodes decided", decided, n-1)
	}
}

func TestLinkBandwidthOverridesUniformCap(t *testing.T) {
	// A generous per-link function must win over a tiny uniform cap.
	n := 5
	cfg := Config{
		N:               n,
		Procs:           dacProcs(t, n, 4, spread(n)),
		Adversary:       adversary.NewComplete(),
		MaxMessageBytes: 1, // would drop everything…
		LinkBandwidth:   func(from, to int) int { return 0 },
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided || res.MessagesOversized != 0 {
		t.Errorf("per-link override ignored: decided=%v drops=%d", res.Decided, res.MessagesOversized)
	}
}

func TestBandwidthCapEngineEquivalence(t *testing.T) {
	mk := func() Config {
		return Config{
			N:               7,
			Procs:           fullInfoProcs(t, 7, 1e-2),
			Adversary:       adversary.NewComplete(),
			MaxMessageBytes: 24,
			MaxRounds:       40,
		}
	}
	seq, conc := runBoth(t, mk)
	assertSameResult(t, seq, conc)
	if seq.MessagesOversized == 0 {
		t.Error("equivalence test vacuous: no drops happened")
	}
}
