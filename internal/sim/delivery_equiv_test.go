package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/network"
	"anondyn/internal/trace"
)

// TestDeliveryEquivalenceProperty is the round loop's oracle test:
// across randomized sparse, dense and faulted scenarios, the fast paths
// — word-wise in-neighbor gather, lazy/incremental view maintenance,
// and the O(1) fault-free lost count — must together produce
// byte-identical Results (trace, MessagesLost/Delivered/Oversized,
// BytesDelivered, outputs) AND an identical per-delivery event stream
// (delivery order is visible through the recorder) compared to the
// retained reference implementations (Engine.referenceRound: port-loop
// gather, eager per-round view refresh, word-wise lost count).
func TestDeliveryEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Sizes straddle the 64-bit word boundary on purpose: the word-wise
	// path must be exact in the multi-word regime too.
	for trial := 0; trial < 60; trial++ {
		n := []int{3, 7, 13, 33, 63, 64, 65, 70}[rng.Intn(8)]
		seed := rng.Int63()
		cfg := func() Config { return randomDeliveryConfig(t, n, seed) }

		refCfg, refRec := cfg(), trace.NewRecorder()
		refCfg.Hooks.Recorder = refRec
		refEng, err := NewEngine(refCfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		refEng.referenceRound = true
		ref := refEng.RunRounds(25)

		wwCfg, wwRec := cfg(), trace.NewRecorder()
		wwCfg.Hooks.Recorder = wwRec
		// Half the trials force the CSR scratch: the sparse gather paths
		// (InList fast branch, CSR-backed InNeighborsInto, sparse
		// OutMissing lost count) must match the reference byte-for-byte
		// in the faulted/ported/shuffled regime too. The Recorder keeps
		// these runs sequential, so the parallel loop is pinned by the
		// bare pair below.
		wwCfg.ForceCSR = trial%2 == 0
		wwEng, err := NewEngine(wwCfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ww := wwEng.RunRounds(25)

		assertEqualResults(t, ref, ww, "trial %d (n=%d, seed=%d) recorded pair", trial, n, seed)
		refEvents, wwEvents := refRec.Events(), wwRec.Events()
		if !reflect.DeepEqual(refEvents, wwEvents) {
			for i := range refEvents {
				if i >= len(wwEvents) || !reflect.DeepEqual(refEvents[i], wwEvents[i]) {
					t.Fatalf("trial %d (n=%d, seed=%d): event streams diverge at %d:\nref %v\nww  %v",
						trial, n, seed, i, trace.Describe(refEvents[i]), describeAt(wwEvents, i))
				}
			}
			t.Fatalf("trial %d: ww stream has %d extra events", trial, len(wwEvents)-len(refEvents))
		}

		// Third run: no Recorder, no bandwidth accounting. This is the
		// only shape that arms the fused fast paths (fastGather and the
		// direct-deliver core fire exactly when nothing observes
		// deliveries), so it must be pinned against the reference too —
		// through Results, since there is no event stream to compare.
		bareRef := cfg()
		bareRef.AccountBandwidth = false
		bareRefEng, err := NewEngine(bareRef)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bareRefEng.referenceRound = true
		bareWW := cfg()
		bareWW.AccountBandwidth = false
		// Random CSR/parallel knobs: in this shape the direct-deliver
		// core, the sequential CSR scatter round and the receiver-
		// parallel round all arm (depending on the drawn faults, ports
		// and shuffling), each of which must reproduce the reference
		// delivery stream exactly.
		bareWW.ForceCSR = rng.Intn(2) == 0
		bareWW.RoundWorkers = []int{0, -1, 2, 3, 5}[rng.Intn(5)]
		bareWWEng, err := NewEngine(bareWW)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rr, ww := bareRefEng.RunRounds(25), bareWWEng.RunRounds(25)
		assertEqualResults(t, rr, ww, "trial %d (n=%d, seed=%d, csr=%v, workers=%d) bare pair",
			trial, n, seed, bareWW.ForceCSR, bareWW.RoundWorkers)
		bareWWEng.Close()
	}
}

// assertEqualResults compares two Results for byte-identity, comparing
// the kept traces through EdgeSet.Equal first: the same round graph may
// legitimately live in different representations (dense vs CSR), which
// reflect.DeepEqual on the internals would misreport as divergence.
func assertEqualResults(t *testing.T, ref, got *Result, format string, args ...any) {
	t.Helper()
	if len(ref.Trace) != len(got.Trace) {
		t.Fatalf(format+": trace length %d vs %d", append(args, len(ref.Trace), len(got.Trace))...)
	}
	for i := range ref.Trace {
		if !ref.Trace[i].Equal(got.Trace[i]) || !got.Trace[i].Equal(ref.Trace[i]) {
			t.Fatalf(format+": round %d edge sets differ", append(args, i)...)
		}
	}
	refBody, gotBody := *ref, *got
	refBody.Trace, gotBody.Trace = nil, nil
	if !reflect.DeepEqual(&refBody, &gotBody) {
		t.Fatalf(format+": Results diverge\nref %+v\ngot %+v", append(args, &refBody, &gotBody)...)
	}
}

func describeAt(events []trace.Event, i int) string {
	if i >= len(events) {
		return "<missing>"
	}
	return trace.Describe(events[i])
}

// randomDeliveryConfig draws one scenario from the property test's
// distribution: sparse/dense adversaries, optional crashes (clean,
// silent and partial), optional Byzantine senders, random port
// numberings, delivery shuffling, bandwidth accounting and per-link
// caps. Everything is a deterministic function of (n, seed) so both
// engines see identical configurations.
func randomDeliveryConfig(t *testing.T, n int, seed int64) Config {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	var adv adversary.Adversary
	switch rng.Intn(7) {
	case 0:
		adv = adversary.NewComplete()
	case 1:
		p := []float64{0.05, 0.3, 0.9}[rng.Intn(3)]
		a, err := adversary.NewProbabilistic(p, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		adv = a
	case 2:
		a, err := adversary.NewRotating(1 + rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		adv = a
	case 3:
		// Sparse-native sampler: the geometric-skip draw must be exact
		// through the whole round loop, not just in isolation.
		p := []float64{0.02, 0.1, 0.5}[rng.Intn(3)]
		a, err := adversary.NewSparseProbabilistic(p, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		adv = a
	case 4:
		// Adaptive adversaries read the view's snapshots every round:
		// they gate the incremental view maintenance against the eager
		// reference refresh.
		a, err := adversary.NewClustered(1 + rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		adv = a
	case 5:
		a, err := adversary.NewStarve(1 + rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		adv = a
	default:
		a, err := adversary.NewIsolate(rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		adv = a
	}

	crashes := fault.Schedule{}
	byz := map[int]fault.Strategy{}
	if n >= 7 {
		perm := rng.Perm(n)
		faulty := perm[:rng.Intn(3)]
		for i, node := range faulty {
			switch {
			case rng.Intn(2) == 0:
				// RandomNoise reads receiver phases off the view — it
				// gates the incremental snapshots even under oblivious
				// adversaries.
				strat := []fault.Strategy{
					fault.Silent{},
					fault.Extremist{Value: 1},
					fault.Equivocator{Low: 0, High: 1},
					fault.NewRandomNoise(rng.Int63()),
				}[rng.Intn(4)]
				byz[node] = strat
			case i%2 == 0:
				crashes[node] = fault.CrashPartial(rng.Intn(6), perm[len(faulty):][:rng.Intn(3)]...)
			default:
				crashes[node] = fault.CrashAt(rng.Intn(6))
			}
		}
	}

	procs := make([]core.Process, n)
	for i := 0; i < n; i++ {
		if _, isByz := byz[i]; isByz {
			continue
		}
		d, err := core.NewDACPhases(n, i, 1<<20, rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = d
	}

	cfg := Config{
		N:                n,
		F:                len(crashes) + len(byz),
		Procs:            procs,
		Byzantine:        byz,
		Crashes:          crashes,
		Adversary:        adv,
		MaxRounds:        1 << 20,
		AccountBandwidth: true,
		KeepTrace:        true,
	}
	if rng.Intn(2) == 0 {
		cfg.Ports = network.RandomPorts(n, rng)
	}
	if rng.Intn(2) == 0 {
		cfg.ShuffleDelivery = true
		cfg.ShuffleSeed = rng.Int63()
	}
	if rng.Intn(3) == 0 {
		cfg.MaxMessageBytes = 1 + rng.Intn(4) // small enough to clip some messages
	}
	return cfg
}

// TestEnginePortsRecycledAcrossReset: the engine-owned identity
// numberings — and with them the dense PortOf cache the delivery core
// leans on — must be reused verbatim by a same-size Reset, and must
// still be a bijection afterwards.
func TestEnginePortsRecycledAcrossReset(t *testing.T) {
	mk := func() Config {
		return Config{N: 9, Procs: dacProcs(t, 9, 10, spread(9)), Adversary: adversary.NewComplete()}
	}
	eng, err := NewEngine(mk())
	if err != nil {
		t.Fatal(err)
	}
	before := eng.ports
	eng.Run()
	if err := eng.Reset(mk()); err != nil {
		t.Fatal(err)
	}
	if &eng.ports[0] != &before[0] {
		t.Error("same-n Reset rebuilt the engine-owned ports")
	}
	for v := 0; v < 9; v++ {
		numbering := eng.ports[v]
		if !numbering.IsIdentity() {
			t.Fatalf("default numbering for %d lost its identity flag", v)
		}
		for u := 0; u < 9; u++ {
			if numbering.PortOf(u) != u || numbering.Node(u) != u {
				t.Fatalf("recycled PortOf broken at receiver %d, sender %d", v, u)
			}
		}
	}
	// A different n must rebuild rather than reuse stale numberings.
	cfg := mk()
	cfg.N = 5
	cfg.Procs = dacProcs(t, 5, 10, spread(5))
	if err := eng.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if got := eng.ports[0].N(); got != 5 {
		t.Fatalf("resized Reset kept %d-node numberings", got)
	}
}

// TestDeliveryEquivalenceAcrossReset drives one recycled engine pair
// through several scenarios, flipping nothing but the gather
// implementation: Engine.Reset must preserve the equivalence (scratch
// reuse may not leak state between runs).
func TestDeliveryEquivalenceAcrossReset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var refEng, wwEng *Engine
	for trial := 0; trial < 12; trial++ {
		n := []int{5, 9, 70}[rng.Intn(3)]
		seed := rng.Int63()
		refCfg, wwCfg := randomDeliveryConfig(t, n, seed), randomDeliveryConfig(t, n, seed)
		// Flip representation and worker count across Resets on the SAME
		// engine: a recycled scratch in the wrong representation must be
		// rebuilt, a resized worker pool re-created, with no state leak.
		wwCfg.ForceCSR = rng.Intn(2) == 0
		wwCfg.RoundWorkers = []int{0, 2, 4}[rng.Intn(3)]
		var err error
		if refEng == nil {
			if refEng, err = NewEngine(refCfg); err != nil {
				t.Fatal(err)
			}
			refEng.referenceRound = true
			if wwEng, err = NewEngine(wwCfg); err != nil {
				t.Fatal(err)
			}
		} else {
			if err = refEng.Reset(refCfg); err != nil {
				t.Fatal(err)
			}
			if err = wwEng.Reset(wwCfg); err != nil {
				t.Fatal(err)
			}
		}
		ref, ww := refEng.RunRounds(20), wwEng.RunRounds(20)
		assertEqualResults(t, ref, ww, "trial %d (n=%d, seed=%d, csr=%v, workers=%d) recycled pair",
			trial, n, seed, wwCfg.ForceCSR, wwCfg.RoundWorkers)
	}
	wwEng.Close()
}
