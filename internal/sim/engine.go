package sim

import (
	"anondyn/internal/core"
	"anondyn/internal/network"
	"anondyn/internal/trace"
	"anondyn/internal/wire"
)

// Engine is the deterministic sequential executor. One instance runs one
// execution; it is not safe for concurrent use.
type Engine struct {
	cfg       Config
	maxRounds int
	ports     network.Ports

	round   int
	view    *execView
	decided map[int]bool
	result  Result

	// scratch reused across rounds
	broadcasts  []core.Message
	hasBcast    []bool
	byzMsgs     map[int][]*core.Message
	deliveries  []core.Delivery
	roundValues map[int]float64
}

// NewEngine validates the configuration and prepares an execution.
func NewEngine(cfg Config) (*Engine, error) {
	maxRounds, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	ports := cfg.Ports
	if ports == nil {
		ports = network.IdentityPorts(cfg.N)
	}
	e := &Engine{
		cfg:        cfg,
		maxRounds:  maxRounds,
		ports:      ports,
		decided:    make(map[int]bool, cfg.N),
		broadcasts: make([]core.Message, cfg.N),
		hasBcast:   make([]bool, cfg.N),
		byzMsgs:    make(map[int][]*core.Message, len(cfg.Byzantine)),
	}
	e.view = newExecView(cfg)
	e.result = Result{
		Outputs:     make(map[int]float64, cfg.N),
		DecideRound: make(map[int]int, cfg.N),
		Inputs:      make(map[int]float64, cfg.N),
		FaultFree:   cfg.FaultFree(),
	}
	for i, p := range cfg.Procs {
		if p != nil {
			e.result.Inputs[i] = p.Value()
		}
	}
	// A degenerate network (or pEnd = 0) can decide at construction.
	for i, p := range cfg.Procs {
		if p != nil {
			e.noteDecision(i, p, 0)
		}
	}
	return e, nil
}

// Run executes rounds until every fault-free node has decided or the
// round budget is exhausted, and returns the result.
func (e *Engine) Run() *Result {
	for e.round < e.maxRounds && !e.allDecided() {
		e.Step()
	}
	e.result.Rounds = e.round
	e.result.Decided = e.allDecided()
	return &e.result
}

// RunRounds executes exactly k further rounds (regardless of decisions)
// and returns the running result. Useful for convergence measurements
// that outlive the first decision.
func (e *Engine) RunRounds(k int) *Result {
	for i := 0; i < k; i++ {
		e.Step()
	}
	e.result.Rounds = e.round
	e.result.Decided = e.allDecided()
	return &e.result
}

// Round returns the number of rounds executed so far.
func (e *Engine) Round() int { return e.round }

// Proc exposes a node's Process for inspection (nil for Byzantine IDs).
func (e *Engine) Proc(i int) core.Process { return e.cfg.Procs[i] }

// Step executes one synchronous round.
func (e *Engine) Step() {
	t := e.round
	e.view.refresh(t)

	// (1) The adversary chooses E(t) (it may read start-of-round state).
	edges := e.cfg.Adversary.Edges(t, e.view)
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(trace.Event{Kind: trace.KindRound, Round: t, Edges: edges.Edges()})
	}
	if e.cfg.KeepTrace {
		e.result.Trace = append(e.result.Trace, edges.Clone())
	}

	// (2) Broadcasts. Crash-scheduled nodes still broadcast in their
	// crash round (possibly reaching only a subset); Byzantine nodes
	// produce per-receiver messages.
	for i := 0; i < e.cfg.N; i++ {
		e.hasBcast[i] = false
		if strat, byz := e.cfg.Byzantine[i]; byz {
			e.byzMsgs[i] = strat.Messages(t, i, e.view)
			continue
		}
		if !e.cfg.Crashes.Alive(t, i) {
			continue
		}
		e.broadcasts[i] = e.cfg.Procs[i].Broadcast()
		e.hasBcast[i] = true
		if e.cfg.Recorder != nil {
			m := e.broadcasts[i]
			e.cfg.Recorder.Record(trace.Event{
				Kind: trace.KindBroadcast, Round: t, Node: i, Value: m.Value, Phase: m.Phase,
			})
		}
		if c, ok := e.cfg.Crashes[i]; ok && c.Round == t && e.cfg.Recorder != nil {
			e.cfg.Recorder.Record(trace.Event{Kind: trace.KindCrash, Round: t, Node: i})
		}
	}

	// (3) Deliveries, per receiver in node order, per sender in the
	// receiver's port order — fully deterministic.
	for v := 0; v < e.cfg.N; v++ {
		if _, byz := e.cfg.Byzantine[v]; byz {
			continue
		}
		// A node receives in round t only if it survives the whole
		// round: its crash round delivers nothing to it.
		if !e.cfg.Crashes.FullyAlive(t, v) {
			continue
		}
		e.deliveries = e.deliveries[:0]
		numbering := e.ports[v]
		for port := 0; port < e.cfg.N; port++ {
			u := numbering.Node(port)
			if u == v || !edges.Has(u, v) {
				continue
			}
			m, ok := e.outgoing(t, u, v)
			if !ok {
				continue // sender silent towards v (crashed, partial, or Byzantine nil)
			}
			if limit := e.cfg.linkCap(u, v); limit > 0 && wire.Size(m) > limit {
				e.result.MessagesOversized++
				continue // the link cannot carry a message this large
			}
			e.deliveries = append(e.deliveries, core.Delivery{Port: port, Msg: m})
		}
		if e.cfg.ShuffleDelivery {
			shuffleDeliveries(e.deliveries, e.cfg.ShuffleSeed, t, v)
		}
		e.result.MessagesDelivered += len(e.deliveries)
		proc := e.cfg.Procs[v]
		for _, d := range e.deliveries {
			if e.cfg.AccountBandwidth {
				e.result.BytesDelivered += wire.Size(d.Msg)
			}
			if e.cfg.Recorder != nil {
				e.cfg.Recorder.Record(trace.Event{
					Kind: trace.KindDeliver, Round: t, Node: v, Port: d.Port,
					Value: d.Msg.Value, Phase: d.Msg.Phase,
				})
			}
			before := proc.Phase()
			proc.Deliver(d)
			if after := proc.Phase(); after != before {
				e.notePhase(v, before, after, proc.Value(), t)
			}
		}
		proc.EndRound()
		e.noteDecision(v, proc, t)
	}

	// Count adversary-suppressed messages: alive sender, no link.
	for u := 0; u < e.cfg.N; u++ {
		if !e.aliveSender(t, u) {
			continue
		}
		e.result.MessagesLost += e.cfg.N - 1 - edges.OutDegree(u)
	}

	e.notifyRoundEnd(t)
	e.round++
}

// notifyRoundEnd feeds the optional RoundObserver extension.
func (e *Engine) notifyRoundEnd(t int) {
	ro, ok := e.cfg.Observer.(RoundObserver)
	if !ok {
		return
	}
	if e.roundValues == nil {
		e.roundValues = make(map[int]float64, e.cfg.N)
	}
	for k := range e.roundValues {
		delete(e.roundValues, k)
	}
	for i, p := range e.cfg.Procs {
		if p == nil || !e.cfg.Crashes.Alive(t+1, i) {
			continue
		}
		e.roundValues[i] = p.Value()
	}
	ro.OnRoundEnd(t, e.roundValues)
}

// outgoing resolves the message sender u directs at receiver v in round
// t, honoring Byzantine per-receiver choice and crash partial delivery.
func (e *Engine) outgoing(t, u, v int) (core.Message, bool) {
	if msgs, byz := e.byzMsgs[u]; byz {
		if _, isByz := e.cfg.Byzantine[u]; isByz {
			if m := msgs[v]; m != nil {
				return *m, true
			}
			return core.Message{}, false
		}
	}
	if !e.hasBcast[u] {
		return core.Message{}, false
	}
	if c, ok := e.cfg.Crashes[u]; ok && c.Round == t && !c.AllowsFinalDelivery(v) {
		return core.Message{}, false
	}
	return e.broadcasts[u], true
}

func (e *Engine) aliveSender(t, u int) bool {
	if _, byz := e.cfg.Byzantine[u]; byz {
		return true
	}
	return e.cfg.Crashes.Alive(t, u)
}

func (e *Engine) notePhase(node, from, to int, value float64, round int) {
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnPhaseEnter(node, from, to, value, round)
	}
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(trace.Event{
			Kind: trace.KindPhase, Round: round, Node: node,
			FromPhase: from, Phase: to, Value: value,
		})
	}
}

func (e *Engine) noteDecision(node int, proc core.Process, round int) {
	if e.decided[node] {
		return
	}
	v, ok := proc.Output()
	if !ok {
		return
	}
	e.decided[node] = true
	e.result.Outputs[node] = v
	e.result.DecideRound[node] = round
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnDecide(node, v, round)
	}
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(trace.Event{Kind: trace.KindDecide, Round: round, Node: node, Value: v})
	}
}

func (e *Engine) allDecided() bool {
	for _, i := range e.result.FaultFree {
		if !e.decided[i] {
			return false
		}
	}
	return true
}
