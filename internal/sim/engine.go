package sim

import (
	"math/bits"
	"runtime"
	"sync"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/metrics"
	"anondyn/internal/network"
	"anondyn/internal/trace"
	"anondyn/internal/wire"
)

// Engine is the deterministic sequential executor. One instance runs one
// execution; it is not safe for concurrent use. Engines are recyclable:
// Reset reconfigures an instance for a fresh execution while reusing
// every allocation of the previous one, which is what makes Monte-Carlo
// batches cheap (see CompiledScenario and the harness worker pool).
//
// All per-node bookkeeping is dense (slices indexed by node ID, sized
// cfg.N) rather than map-based, and the per-round edge set is written
// into an engine-owned scratch set whenever the adversary implements
// adversary.InPlace — so a steady-state round allocates nothing at all
// (asserted by TestSteadyStateRoundAllocs and the bench suite). Maps
// appear only in the exported Result, materialized once per run.
type Engine struct {
	cfg       Config
	maxRounds int
	ports     network.Ports
	ownPorts  bool // ports were engine-built identity numberings (reusable)

	round int
	view  *execView

	// dense per-node execution state, sized cfg.N
	isByz       []bool
	byzStrats   []fault.Strategy
	decided     []bool
	outputs     []float64
	decideRound []int
	inputs      []float64
	faultFree   []int
	crashRound  []int         // crash round, or neverCrashes — no map on the hot path
	crashInfo   []fault.Crash // partial-delivery detail for crash-scheduled nodes

	// scratch reused across rounds
	broadcasts []core.Message
	hasBcast   []bool
	bcastSize  []int // wire.Size per broadcast, computed once per round
	byzMsgs    [][]*core.Message
	scratch    []recvScratch        // per-worker receiver scratch; scratch[0] serves the sequential loop
	seq        [1]recvScratch       // fixed backing for the sequential scratch — no slice-header alloc per build
	flat       []core.Delivery      // sender-major scatter buffer (sequential CSR direct rounds)
	cursor     []int32              // per-receiver write cursor over flat, seeded from the in-CSR starts
	bulk       []core.BulkDeliverer // per-node DeliverAll seam, probed once per Reset (nil: plain Deliver)
	recvMask   []uint64             // word-wise mask of round-t-eligible receivers
	edges      *network.EdgeSet     // engine-owned E(t) for InPlace adversaries
	inPlace    adversary.InPlace    // non-nil when the adversary has the fast path
	hooks      Hooks                // effective hooks: cfg.Hooks with the deprecated fields folded in
	roundObs   RoundObserver        // the effective Observer's optional round hook, cached
	needSize   bool                 // any consumer of wire sizes configured
	hasCap     bool                 // any per-link byte budget configured

	// receiver-parallel round state (see parallel.go)
	workers   int        // resolved Config.RoundWorkers for this run
	parRounds bool       // shard the receiver loop across the pool
	pool      *roundPool // persistent pool; created on the first parallel round
	wg        sync.WaitGroup

	// dense RoundObserver scratch, reused across rounds
	rvValues  []float64
	rvRunning []bool

	// lazy-view bookkeeping: viewSkip means nothing in this configuration
	// ever reads the view's snapshots (oblivious adversary, no Byzantine
	// strategies), so the per-round state capture is skipped entirely.
	// Otherwise the view is maintained incrementally — a full refresh on
	// the first Step, then only the snapshots that changed: each processed
	// node re-snapped at the end of its round, crash flags flipped from
	// the precomputed schedule. Both replace the former O(n) eager
	// refresh per round, the last per-round cost that scaled with n
	// rather than with the edge count.
	viewSkip   bool
	viewInit   bool
	crashSched []int // nodes with a scheduled crash, for flag flips

	// lostFast marks configurations where the suppressed-message count
	// degenerates to n(n−1) − delivered: no Byzantine nodes, no crashes,
	// no link caps — every sender broadcasts, every receiver is eligible,
	// every present link delivers. O(1) instead of the word-wise mask
	// fold, which at n=4097 is the difference between touching 64·n words
	// and none.
	lostFast bool

	// fastGather additionally rules out bandwidth accounting: every
	// in-neighbor then delivers its broadcast unconditionally. Combined
	// with allIdentity (every numbering is the identity bijection,
	// checked once per Reset) the gather fuses: it scans the receiver's
	// in-row bitmap words straight into the delivery buffer, skipping
	// the intermediate neighbor list, outgoing()'s fault checks and the
	// cap/size branches per delivery.
	fastGather  bool
	allIdentity bool

	// directDeliver is the fully fused round core: with fastGather,
	// identity ports everywhere, no delivery shuffling and no
	// Observer/Recorder, nothing between the edge bitmap and the
	// algorithm needs the delivery buffer — each in-row bit becomes a
	// Deliver call on the spot, in the same ascending order the buffered
	// path produces.
	directDeliver bool

	// trackPhases is false when neither an Observer nor a Recorder is
	// configured: phase transitions then have no consumer, and the
	// delivery loop skips the two Phase() probes per delivery — at
	// n=1025/p=8/n that is ~16k interface calls per round feeding a no-op.
	trackPhases bool

	// referenceRound switches the round loop to the retained reference
	// implementations: the original O(n)-per-receiver port-loop gather,
	// the eager full view refresh, and the word-wise lost count. Every
	// fast path must be bit-for-bit equivalent to the reference —
	// TestDeliveryEquivalenceProperty flips this flag to prove it. Never
	// set outside tests.
	referenceRound bool

	result Result // counters accumulate here; finish() materializes maps
}

// NewEngine validates the configuration and prepares an execution.
func NewEngine(cfg Config) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset reconfigures the engine to execute cfg from round zero,
// recycling the previous execution's allocations whenever the network
// size matches. A Reset engine is indistinguishable from a fresh
// NewEngine(cfg) one — the recycle tests assert byte-identical Results —
// so a batch worker can run thousands of seeds on one instance.
func (e *Engine) Reset(cfg Config) error {
	maxRounds, err := cfg.validate()
	if err != nil {
		return err
	}
	n := cfg.N
	sameN := e.broadcasts != nil && len(e.broadcasts) == n
	e.cfg = cfg
	e.maxRounds = maxRounds
	e.round = 0

	switch {
	case cfg.Ports != nil:
		e.ports = cfg.Ports
		e.ownPorts = false
	case sameN && e.ownPorts:
		// keep the identity numberings built for the previous run
	default:
		e.ports = network.IdentityPorts(n)
		e.ownPorts = true
	}

	if sameN {
		for i := 0; i < n; i++ {
			e.isByz[i] = false
			e.byzStrats[i] = nil
			e.decided[i] = false
			e.outputs[i] = 0
			e.decideRound[i] = 0
			e.inputs[i] = 0
			e.hasBcast[i] = false
			e.bcastSize[i] = 0
			e.byzMsgs[i] = nil // drop last run's slices: nothing stale survives
		}
		e.crashSched = e.crashSched[:0]
	} else {
		e.isByz = make([]bool, n)
		e.byzStrats = make([]fault.Strategy, n)
		e.decided = make([]bool, n)
		e.outputs = make([]float64, n)
		e.decideRound = make([]int, n)
		e.inputs = make([]float64, n)
		e.broadcasts = make([]core.Message, n)
		e.hasBcast = make([]bool, n)
		e.bcastSize = make([]int, n)
		e.byzMsgs = make([][]*core.Message, n)
		e.crashRound = make([]int, n)
		e.crashInfo = make([]fault.Crash, n)
		// Max in-degree is n−1: buffers sized up front so a later
		// record-degree round can never regrow them (steady rounds stay
		// at 0 allocs). scratch[0] serves the sequential loop; ensurePool
		// extends the slice for parallel rounds.
		e.seq[0] = recvScratch{
			deliveries: make([]core.Delivery, 0, n),
			inbuf:      make([]int, 0, n),
		}
		e.scratch = e.seq[:]
		e.flat = nil
		e.cursor = nil
		e.bulk = make([]core.BulkDeliverer, n)
		e.crashSched = nil
		e.recvMask = make([]uint64, network.MaskWords(n))
		e.rvValues = make([]float64, n)
		e.rvRunning = make([]bool, n)
		e.edges = nil
		e.view = nil
	}
	for i, strat := range cfg.Byzantine {
		e.isByz[i] = true
		e.byzStrats[i] = strat
	}
	fillCrashState(e.crashRound, e.crashInfo, cfg.Crashes)
	for i := 0; i < n; i++ {
		if e.crashRound[i] != neverCrashes {
			e.crashSched = append(e.crashSched, i)
		}
	}
	e.viewSkip = adversary.IsOblivious(cfg.Adversary) && len(cfg.Byzantine) == 0
	e.viewInit = false
	e.lostFast = len(cfg.Byzantine) == 0 && len(cfg.Crashes) == 0 &&
		cfg.MaxMessageBytes == 0 && cfg.LinkBandwidth == nil
	e.fastGather = e.lostFast && !cfg.AccountBandwidth
	// The Metrics sink deliberately does not join this gate: metrics tap
	// the round from outside and must never change path selection, so a
	// metrics-enabled run takes bit-for-bit the same route as a disabled
	// one (pinned by the parity property tests).
	e.hooks = cfg.Hooks
	e.trackPhases = e.hooks.Observer != nil || e.hooks.Recorder != nil
	e.allIdentity = true
	for _, numbering := range e.ports {
		if !numbering.IsIdentity() {
			e.allIdentity = false
			break
		}
	}
	e.directDeliver = e.fastGather && e.allIdentity &&
		!cfg.ShuffleDelivery && !e.trackPhases
	// Probe each Process for the DeliverAll seam once per run, never per
	// round: the delivery loops hand a receiver its whole in-edge batch
	// in one dynamic call when its algorithm supports it.
	for i, p := range cfg.Procs {
		if p != nil {
			e.bulk[i], _ = p.(core.BulkDeliverer)
		} else {
			e.bulk[i] = nil
		}
	}
	workers := cfg.RoundWorkers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	e.workers = workers
	// Observer/Recorder callbacks are ordered streams; those
	// configurations keep the sequential loop regardless of the knob.
	e.parRounds = workers > 1 && !e.trackPhases

	if ip, ok := cfg.Adversary.(adversary.InPlace); ok {
		e.inPlace = ip
		// The engine-owned scratch follows the density regime: CSR past
		// the size threshold (or when forced), the bit-matrix below it. A
		// recycled scratch in the wrong representation — including one a
		// FillComplete converted to dense mid-run — is rebuilt.
		wantSparse := cfg.ForceCSR || n >= network.SparseThreshold
		if e.edges == nil || e.edges.IsSparse() != wantSparse {
			if wantSparse {
				e.edges = network.NewEdgeSetSparse(n)
			} else {
				e.edges = network.NewEdgeSet(n)
			}
		}
	} else {
		e.inPlace = nil
	}
	e.roundObs, _ = e.hooks.Observer.(RoundObserver)
	e.needSize = cfg.AccountBandwidth || cfg.MaxMessageBytes > 0 || cfg.LinkBandwidth != nil
	e.hasCap = cfg.MaxMessageBytes > 0 || cfg.LinkBandwidth != nil

	if e.view == nil {
		e.view = newExecView(&e.cfg, e.isByz)
	} else {
		e.view.reset(&e.cfg, e.isByz)
	}

	e.faultFree = cfg.FaultFree()
	e.result = Result{}
	for i, p := range cfg.Procs {
		if p != nil {
			e.inputs[i] = p.Value()
		}
	}
	// A degenerate network (or pEnd = 0) can decide at construction.
	for i, p := range cfg.Procs {
		if p != nil {
			e.noteDecision(i, p, 0)
		}
	}
	return nil
}

// Run executes rounds until every fault-free node has decided or the
// round budget is exhausted, and returns the result. The Result is
// detached from the engine: a later Reset or further rounds never
// mutate it, so batch sinks may retain it while the engine is recycled.
func (e *Engine) Run() *Result {
	for e.round < e.maxRounds && !e.allDecided() {
		e.Step()
	}
	return e.finish()
}

// RunRounds executes exactly k further rounds (regardless of decisions)
// and returns the running result. Useful for convergence measurements
// that outlive the first decision. Each call returns a fresh snapshot;
// earlier snapshots are not updated by later rounds.
func (e *Engine) RunRounds(k int) *Result {
	for i := 0; i < k; i++ {
		e.Step()
	}
	return e.finish()
}

// finish materializes the exported Result from the dense execution
// state: one map build per run, none per round.
func (e *Engine) finish() *Result {
	n := e.cfg.N
	res := e.result // counters and trace by value
	res.Rounds = e.round
	res.Decided = e.allDecided()
	res.FaultFree = e.faultFree
	res.Outputs = make(map[int]float64, n)
	res.DecideRound = make(map[int]int, n)
	res.Inputs = make(map[int]float64, n)
	for i := 0; i < n; i++ {
		if e.decided[i] {
			res.Outputs[i] = e.outputs[i]
			res.DecideRound[i] = e.decideRound[i]
		}
		if e.cfg.Procs[i] != nil {
			res.Inputs[i] = e.inputs[i]
		}
	}
	return &res
}

// Round returns the number of rounds executed so far.
func (e *Engine) Round() int { return e.round }

// Proc exposes a node's Process for inspection (nil for Byzantine IDs).
func (e *Engine) Proc(i int) core.Process { return e.cfg.Procs[i] }

// roundEdges resolves E(t): the engine-owned scratch set for InPlace
// adversaries, the adversary's own allocation otherwise.
func (e *Engine) roundEdges(t int) *network.EdgeSet {
	if e.inPlace != nil {
		e.inPlace.EdgesInto(t, e.view, e.edges)
		return e.edges
	}
	return e.cfg.Adversary.Edges(t, e.view)
}

// refreshView brings the state window up to date for round t. The eager
// full refresh is the reference semantics; the lazy modes below are
// equivalent because every Process.Broadcast implementation is a pure
// read — a node's public state at the start of round t is exactly its
// state after EndRound of the last round it was processed in, which the
// delivery loop captures as it goes. The concurrent engine has used the
// same end-of-round capture since its introduction; the property test
// pins both against the eager reference.
func (e *Engine) refreshView(t int) {
	switch {
	case e.referenceRound:
		e.view.refresh(t)
	case e.viewSkip:
		// Oblivious adversary, no Byzantine strategies: no snapshot is
		// ever read, so none is taken.
	case !e.viewInit:
		e.view.refresh(t)
		e.viewInit = true
	default:
		// Processed nodes were re-snapped at the end of the previous
		// round; byz markers are constant; crashed nodes keep their
		// frozen state. Only crash flags can still flip.
		e.view.round = t
		for _, i := range e.crashSched {
			if t > e.crashRound[i] {
				e.view.snaps[i].Crashed = true
			}
		}
	}
}

// Step executes one synchronous round.
func (e *Engine) Step() {
	t := e.round
	e.refreshView(t)

	// (1) The adversary chooses E(t) (it may read start-of-round state).
	edges := e.roundEdges(t)
	if e.hooks.Recorder != nil {
		e.hooks.Recorder.Record(trace.Event{Kind: trace.KindRound, Round: t, Edges: edges.Edges()})
	}
	if e.cfg.KeepTrace {
		e.result.Trace = append(e.result.Trace, edges.Clone())
	}

	// (2) Broadcasts. Crash-scheduled nodes still broadcast in their
	// crash round (possibly reaching only a subset); Byzantine nodes
	// produce per-receiver messages, overwriting last round's slices so
	// nothing stale is ever consulted.
	for i := 0; i < e.cfg.N; i++ {
		e.hasBcast[i] = false
		if e.isByz[i] {
			e.byzMsgs[i] = e.byzStrats[i].Messages(t, i, e.view)
			continue
		}
		if t > e.crashRound[i] {
			continue
		}
		m := e.cfg.Procs[i].Broadcast()
		e.broadcasts[i] = m
		e.hasBcast[i] = true
		if e.needSize {
			// One Size per broadcast per round; deliveries reuse it.
			e.bcastSize[i] = wire.Size(m)
		}
		if e.hooks.Recorder != nil {
			e.hooks.Recorder.Record(trace.Event{
				Kind: trace.KindBroadcast, Round: t, Node: i, Value: m.Value, Phase: m.Phase,
			})
		}
		if e.hooks.Recorder != nil && e.crashRound[i] == t {
			e.hooks.Recorder.Record(trace.Event{Kind: trace.KindCrash, Round: t, Node: i})
		}
	}

	// (3) Deliveries, per receiver in node order, per sender in the
	// receiver's port order — fully deterministic. The gather walks the
	// edge set's in-neighbor structure (bitmap or CSR row), so its cost
	// scales with the receiver's actual in-degree, not n. Three
	// executions of the same per-receiver semantics: the parallel round
	// shards contiguous receiver ranges over the pool, the sequential
	// CSR direct round scatters sender-major into per-receiver slices,
	// and everything else runs deliverRange over the full range.
	liveView := !e.viewSkip && !e.referenceRound
	sparse := edges.IsSparse()
	var roundDelivered int
	switch {
	case e.parRounds && !e.referenceRound:
		var bytes, oversized int
		roundDelivered, bytes, oversized = e.parallelRound(t, edges, liveView, sparse)
		e.result.BytesDelivered += bytes
		e.result.MessagesOversized += oversized
	case sparse && e.directDeliver && !e.referenceRound && edges.Len() <= scatterMaxEdges:
		roundDelivered = e.scatterRound(t, edges, liveView)
	default:
		s := &e.scratch[0]
		s.delivered, s.bytes, s.oversized = 0, 0, 0
		e.deliverRange(t, 0, e.cfg.N, edges, s, liveView, sparse)
		roundDelivered = s.delivered
		e.result.BytesDelivered += s.bytes
		e.result.MessagesOversized += s.oversized
	}
	e.result.MessagesDelivered += roundDelivered

	// Count adversary-suppressed messages: alive sender, receiver able
	// to receive in round t, no link. Receivers that cannot receive —
	// Byzantine nodes, or nodes not fully alive through the round — are
	// excluded: a missing link toward them suppresses nothing. With no
	// Byzantine nodes, no crashes and no link caps, every one of the
	// n(n−1) potential messages either delivered or was suppressed, so
	// the count is a subtraction; otherwise one word-wise mask of the
	// eligible receivers replaces the former O(n²) faulted fallback.
	var roundLost int
	if e.lostFast && !e.referenceRound {
		roundLost = e.cfg.N*(e.cfg.N-1) - roundDelivered
	} else {
		roundLost = countLost(t, e.cfg.N, e.isByz, e.crashRound, edges, e.recvMask)
	}
	e.result.MessagesLost += roundLost

	e.notifyRoundEnd(t)
	if e.hooks.Metrics != nil {
		e.emitRound(t, roundDelivered, roundLost)
	}
	e.round++
}

// emitRound feeds the metrics sink one RoundSample: counters from the
// round just executed plus an O(n) convergence scan (running nodes,
// decided count, value range). The scan runs only when a sink is
// attached, and the sample is a stack value handed to the interface by
// value — a metrics-enabled round still allocates nothing (asserted by
// TestSteadyRoundAllocBudgetMetrics).
func (e *Engine) emitRound(t, delivered, lost int) {
	s := metrics.RoundSample{Round: t, Delivered: delivered, Lost: lost}
	var lo, hi float64
	for i, p := range e.cfg.Procs {
		if p == nil {
			continue
		}
		if e.decided[i] {
			s.Decided++
		}
		if t+1 > e.crashRound[i] {
			continue
		}
		v := p.Value()
		if s.Running == 0 {
			lo, hi = v, v
		} else {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		s.Running++
	}
	if s.Running > 0 {
		s.Range = hi - lo
	}
	e.hooks.Metrics.RoundDone(s)
}

// deliverRange processes receivers [lo, hi): gather (or fused direct
// delivery), algorithm calls, end-of-round bookkeeping. It is the
// shared round core of the sequential loop (the full range) and the
// parallel round (contiguous sub-ranges on pool workers): receivers
// are independent within a round — everything cross-receiver it
// touches is either frozen for the round (edges, broadcasts, byzMsgs,
// crash state) or indexed by the receiver (decided/outputs/
// decideRound, view snapshots) — so disjoint ranges compose to exactly
// the sequential result, in the same per-receiver delivery order.
// Counters accumulate into the range's own scratch; the caller folds
// them into the Result.
func (e *Engine) deliverRange(t, lo, hi int, edges *network.EdgeSet, s *recvScratch, liveView, sparse bool) {
	direct := e.directDeliver && !e.referenceRound
	delivered := 0
	for v := lo; v < hi; v++ {
		if e.isByz[v] {
			continue
		}
		// A node receives in round t only if it survives the whole
		// round: its crash round delivers nothing to it.
		if t >= e.crashRound[v] {
			continue
		}
		proc := e.cfg.Procs[v]
		switch {
		case direct && e.bulk[v] != nil:
			// Fused core with the DeliverAll seam: batch the receiver's
			// whole in-edge slice and hand it over in ONE dynamic call —
			// the fold inside dispatches statically. Same senders, same
			// ascending order as the per-edge path.
			ds := s.deliveries[:0]
			if sparse {
				for _, u := range edges.InList(v) {
					ds = append(ds, core.Delivery{Port: int(u), Msg: e.broadcasts[u]})
				}
			} else {
				base := 0
				for _, w := range edges.InRow(v) {
					for w != 0 {
						u := base + bits.TrailingZeros64(w)
						w &= w - 1
						ds = append(ds, core.Delivery{Port: u, Msg: e.broadcasts[u]})
					}
					base += 64
				}
			}
			s.deliveries = ds
			delivered += len(ds)
			e.bulk[v].DeliverAll(ds)
		case direct:
			// Fused per-edge core for algorithms without the seam: each
			// in-edge becomes a Deliver call on the spot, with no
			// intermediate Delivery written.
			if sparse {
				for _, u := range edges.InList(v) {
					proc.Deliver(core.Delivery{Port: int(u), Msg: e.broadcasts[u]})
					delivered++
				}
			} else {
				base := 0
				for _, w := range edges.InRow(v) {
					for w != 0 {
						u := base + bits.TrailingZeros64(w)
						w &= w - 1
						proc.Deliver(core.Delivery{Port: u, Msg: e.broadcasts[u]})
						delivered++
					}
					base += 64
				}
			}
		default:
			s.deliveries = s.deliveries[:0]
			if e.referenceRound {
				e.gatherPortLoop(t, v, edges, s)
			} else {
				e.gatherInNeighbors(t, v, edges, s, sparse)
			}
			if e.cfg.ShuffleDelivery {
				shuffleDeliveries(s.deliveries, e.cfg.ShuffleSeed, t, v)
			}
			delivered += len(s.deliveries)
			if e.trackPhases {
				// Observer/Recorder configured: sequential-only (parRounds
				// excludes it), per-delivery probes interleaved.
				for _, d := range s.deliveries {
					if e.hooks.Recorder != nil {
						e.hooks.Recorder.Record(trace.Event{
							Kind: trace.KindDeliver, Round: t, Node: v, Port: d.Port,
							Value: d.Msg.Value, Phase: d.Msg.Phase,
						})
					}
					before := proc.Phase()
					proc.Deliver(d)
					if after := proc.Phase(); after != before {
						e.notePhase(v, before, after, proc.Value(), t)
					}
				}
			} else if b := e.bulk[v]; b != nil {
				b.DeliverAll(s.deliveries)
			} else {
				for _, d := range s.deliveries {
					proc.Deliver(d)
				}
			}
		}
		proc.EndRound()
		e.noteDecision(v, proc, t)
		if liveView {
			// End-of-round state IS the start-of-next-round snapshot:
			// nothing mutates the process until its next Deliver.
			e.view.snaps[v] = core.Snap(proc)
		}
	}
	s.delivered += delivered
}

// scatterMaxEdges bounds the rounds that take the sender-major scatter:
// the flat buffer holds one Delivery (48 B) per edge, and past roughly
// a quarter-million edges it outgrows the last-level cache — the
// scatter's random writes then cost more than the per-receiver gather's
// random broadcast reads (measured: the crossover sits between the
// n=16385 and n=65537 er2 rows of BenchmarkEngineRound). Above the
// bound the direct CSR round falls back to deliverRange's per-receiver
// InList gather, which touches only a receiver-sized buffer.
const scatterMaxEdges = 1 << 18

// scatterRound is the sequential CSR direct round: instead of gathering
// per receiver (one random broadcast read per edge), it walks the
// senders once and scatters each broadcast down its out-row into a
// flat sender-major delivery buffer partitioned by the in-CSR row
// starts — then hands every receiver its contiguous in-edge slice in
// one DeliverAll (or a per-edge fold for algorithms without the seam).
// Reachable only under directDeliver (no faults, identity ports, no
// shuffle, no observers), so every node is alive and Port == sender ID;
// each receiver's slice comes out in ascending sender order because the
// scatter's outer loop ascends, matching the gather paths bit-for-bit.
func (e *Engine) scatterRound(t int, edges *network.EdgeSet, liveView bool) int {
	n := e.cfg.N
	inStarts, _ := edges.InCSR()
	outStarts, outIDs := edges.OutCSR()
	total := int(outStarts[n])
	if cap(e.flat) < total {
		// Same headroom discipline as the sparse edge log: a later
		// record-edge round within 25% of the high-water mark keeps
		// steady rounds allocation-free.
		e.flat = make([]core.Delivery, 0, total+total/4)
	}
	flat := e.flat[:total]
	if cap(e.cursor) < n {
		e.cursor = make([]int32, n)
	}
	cursor := e.cursor[:n]
	copy(cursor, inStarts[:n])
	for u := 0; u < n; u++ {
		m := e.broadcasts[u]
		for _, v := range outIDs[outStarts[u]:outStarts[u+1]] {
			c := cursor[v]
			flat[c] = core.Delivery{Port: u, Msg: m}
			cursor[v] = c + 1
		}
	}
	for v := 0; v < n; v++ {
		proc := e.cfg.Procs[v]
		ds := flat[inStarts[v]:inStarts[v+1]]
		if b := e.bulk[v]; b != nil {
			b.DeliverAll(ds)
		} else {
			for i := range ds {
				proc.Deliver(ds[i])
			}
		}
		proc.EndRound()
		e.noteDecision(v, proc, t)
		if liveView {
			e.view.snaps[v] = core.Snap(proc)
		}
	}
	e.flat = flat
	return total
}

// gatherInNeighbors is the delivery core: it iterates only v's actual
// in-neighbors off the edge set's transposed structure — the bitmap
// in-row dense, the CSR in-list sparse, both O(in-degree) — maps each
// sender to v's local port in O(1), and restores the documented
// ascending-port delivery order — bit-for-bit the order the reference
// port loop produces, because ports are a bijection. Under the default
// identity numbering ascending node order already IS ascending port
// order and the sort is skipped entirely.
func (e *Engine) gatherInNeighbors(t, v int, edges *network.EdgeSet, s *recvScratch, sparse bool) {
	if e.fastGather && e.allIdentity {
		// No Byzantine senders, no crashes, no caps, no bandwidth
		// accounting, identity ports: every in-neighbor delivers its
		// broadcast at port == node ID, already in ascending order —
		// outgoing()'s per-sender checks are all statically true.
		if sparse {
			for _, u := range edges.InList(v) {
				s.deliveries = append(s.deliveries, core.Delivery{Port: int(u), Msg: e.broadcasts[u]})
			}
			return
		}
		base := 0
		for _, w := range edges.InRow(v) {
			for w != 0 {
				u := base + bits.TrailingZeros64(w)
				w &= w - 1
				s.deliveries = append(s.deliveries, core.Delivery{Port: u, Msg: e.broadcasts[u]})
			}
			base += 64
		}
		return
	}
	numbering := e.ports[v]
	s.inbuf = edges.InNeighborsInto(v, s.inbuf[:0])
	for _, u := range s.inbuf {
		m, size, ok := e.outgoing(t, u, v)
		if !ok {
			continue // sender silent towards v (crashed, partial, or Byzantine nil)
		}
		if e.hasCap {
			if limit := e.cfg.linkCap(u, v); limit > 0 && size > limit {
				s.oversized++
				continue // the link cannot carry a message this large
			}
		}
		s.deliveries = append(s.deliveries, core.Delivery{Port: numbering.PortOf(u), Msg: *m})
		if e.cfg.AccountBandwidth {
			s.bytes += size
		}
	}
	if !numbering.IsIdentity() {
		sortDeliveriesByPort(s.deliveries)
	}
}

// gatherPortLoop is the retained reference implementation: walk all n
// ports in ascending order and probe the edge set per sender. Kept
// solely as the equivalence oracle for the word-wise path (see
// referenceRound); it is not reachable in production configurations.
func (e *Engine) gatherPortLoop(t, v int, edges *network.EdgeSet, s *recvScratch) {
	numbering := e.ports[v]
	for port := 0; port < e.cfg.N; port++ {
		u := numbering.Node(port)
		if u == v || !edges.Has(u, v) {
			continue
		}
		m, size, ok := e.outgoing(t, u, v)
		if !ok {
			continue
		}
		if limit := e.cfg.linkCap(u, v); limit > 0 && size > limit {
			s.oversized++
			continue
		}
		s.deliveries = append(s.deliveries, core.Delivery{Port: port, Msg: *m})
		if e.cfg.AccountBandwidth {
			s.bytes += size
		}
	}
}

// notifyRoundEnd feeds the optional RoundObserver extension through a
// dense, engine-owned RoundValues view: no map rebuild, no hashing, no
// allocation — the observer path is as allocation-stable as the rest of
// the round loop.
func (e *Engine) notifyRoundEnd(t int) {
	if e.roundObs == nil {
		return
	}
	for i, p := range e.cfg.Procs {
		running := p != nil && t+1 <= e.crashRound[i]
		e.rvRunning[i] = running
		if running {
			e.rvValues[i] = p.Value()
		} else {
			e.rvValues[i] = 0
		}
	}
	e.roundObs.OnRoundEnd(t, RoundValues{values: e.rvValues, running: e.rvRunning})
}

// outgoing resolves the message sender u directs at receiver v in round
// t, honoring Byzantine per-receiver choice and crash partial delivery.
// The message comes back as a pointer into the engine's round scratch
// (one copy into the Delivery, not two); size is the wire-format
// length, valid only when the configuration needs sizes (bandwidth
// accounting or link caps) — broadcast sizes come from the
// once-per-round pass, Byzantine per-receiver messages are sized here
// (each is delivered at most once per round).
func (e *Engine) outgoing(t, u, v int) (m *core.Message, size int, ok bool) {
	if e.isByz[u] {
		mp := e.byzMsgs[u][v]
		if mp == nil {
			return nil, 0, false
		}
		if e.needSize {
			size = wire.Size(*mp)
		}
		return mp, size, true
	}
	if !e.hasBcast[u] {
		return nil, 0, false
	}
	if e.crashRound[u] == t && !e.crashInfo[u].AllowsFinalDelivery(v) {
		return nil, 0, false
	}
	return &e.broadcasts[u], e.bcastSize[u], true
}

func (e *Engine) notePhase(node, from, to int, value float64, round int) {
	if e.hooks.Observer != nil {
		e.hooks.Observer.OnPhaseEnter(node, from, to, value, round)
	}
	if e.hooks.Recorder != nil {
		e.hooks.Recorder.Record(trace.Event{
			Kind: trace.KindPhase, Round: round, Node: node,
			FromPhase: from, Phase: to, Value: value,
		})
	}
}

func (e *Engine) noteDecision(node int, proc core.Process, round int) {
	if e.decided[node] {
		return
	}
	v, ok := proc.Output()
	if !ok {
		return
	}
	e.decided[node] = true
	e.outputs[node] = v
	e.decideRound[node] = round
	if e.hooks.Observer != nil {
		e.hooks.Observer.OnDecide(node, v, round)
	}
	if e.hooks.Recorder != nil {
		e.hooks.Recorder.Record(trace.Event{Kind: trace.KindDecide, Round: round, Node: node, Value: v})
	}
}

func (e *Engine) allDecided() bool {
	for _, i := range e.faultFree {
		if !e.decided[i] {
			return false
		}
	}
	return true
}
