package sim

import (
	"reflect"
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/network"
)

// resetCase builds one fresh Config per call; adversaries and processes
// carry state and must never be shared between runs.
type resetCase struct {
	name string
	mk   func(t *testing.T) Config
}

func resetCases() []resetCase {
	return []resetCase{
		{"dac-rotating-crash", func(t *testing.T) Config {
			rot, err := adversary.NewRotating(4)
			if err != nil {
				t.Fatal(err)
			}
			return Config{
				N:         9,
				Procs:     dacProcs(t, 9, 8, spread(9)),
				Adversary: rot,
				Crashes:   fault.Schedule{2: fault.CrashPartial(3, 0, 1)},
			}
		}},
		{"dac-er-shuffle", func(t *testing.T) Config {
			er, err := adversary.NewProbabilistic(0.5, 77)
			if err != nil {
				t.Fatal(err)
			}
			return Config{
				N:               9,
				Procs:           dacProcs(t, 9, 8, spread(9)),
				Adversary:       er,
				ShuffleDelivery: true,
				ShuffleSeed:     5,
				MaxRounds:       4000,
			}
		}},
		{"dbac-byzantine-ports", func(t *testing.T) Config {
			byz := map[int]fault.Strategy{3: fault.Extremist{Value: 1}}
			return Config{
				N:         11,
				F:         2,
				Procs:     dbacProcs(t, 11, 2, 6, spread(11), byz),
				Byzantine: byz,
				Adversary: adversary.NewComplete(),
				Ports:     network.RandomPorts(11, newRand(9)),
			}
		}},
		{"dac-bandwidth-capped", func(t *testing.T) Config {
			return Config{
				N:                7,
				Procs:            dacProcs(t, 7, 6, spread(7)),
				Adversary:        adversary.NewComplete(),
				AccountBandwidth: true,
				MaxMessageBytes:  16,
			}
		}},
	}
}

func sameResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: results differ:\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestEngineResetMatchesFresh: an engine Reset onto a configuration must
// reproduce a fresh engine's Result bit for bit — including when the
// Reset follows an unrelated run that dirtied every piece of scratch.
func TestEngineResetMatchesFresh(t *testing.T) {
	for _, tc := range resetCases() {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := NewEngine(tc.mk(t))
			if err != nil {
				t.Fatal(err)
			}
			want := fresh.Run()

			// Dirty an engine with a different-shaped run first.
			eng, err := NewEngine(Config{
				N:         5,
				Procs:     dacProcs(t, 5, 4, spread(5)),
				Adversary: adversary.NewComplete(),
			})
			if err != nil {
				t.Fatal(err)
			}
			eng.Run()
			if err := eng.Reset(tc.mk(t)); err != nil {
				t.Fatal(err)
			}
			sameResult(t, want, eng.Run(), "reset after different-n run")

			// Same-shape recycle (the batch worker's steady state).
			if err := eng.Reset(tc.mk(t)); err != nil {
				t.Fatal(err)
			}
			sameResult(t, want, eng.Run(), "reset after same-n run")
		})
	}
}

// TestEngineResetRejectsInvalid: a failed Reset must surface the
// configuration error a fresh construction would.
func TestEngineResetRejectsInvalid(t *testing.T) {
	eng, err := NewEngine(Config{
		N:         5,
		Procs:     dacProcs(t, 5, 4, spread(5)),
		Adversary: adversary.NewComplete(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(Config{N: 3}); err == nil {
		t.Fatal("Reset accepted a config with no adversary and no procs")
	}
}

// TestResultDetachedFromEngine: a Result returned by Run must not change
// when the engine is recycled — batch sinks retain Results while the
// worker's engine moves on to the next seed.
func TestResultDetachedFromEngine(t *testing.T) {
	mk := func(input float64) Config {
		in := spread(7)
		in[0] = input
		return Config{
			N:         7,
			Procs:     dacProcs(t, 7, 6, in),
			Adversary: adversary.NewComplete(),
		}
	}
	eng, err := NewEngine(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	first := eng.Run()
	snapshot := *first
	outputs := make(map[int]float64, len(first.Outputs))
	for k, v := range first.Outputs {
		outputs[k] = v
	}

	if err := eng.Reset(mk(1)); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if first.Rounds != snapshot.Rounds || first.Decided != snapshot.Decided {
		t.Error("recycling mutated a retained Result's counters")
	}
	if !reflect.DeepEqual(first.Outputs, outputs) {
		t.Error("recycling mutated a retained Result's outputs")
	}
}

// TestSteadyStateRoundAllocs is the allocation budget of the tentpole:
// a steady-state DAC round allocates nothing, on both the benign
// complete graph and the §VII probabilistic adversary.
func TestSteadyStateRoundAllocs(t *testing.T) {
	const n = 9
	// A huge pEnd keeps every node busy forever: rounds stay steady-state.
	bigProcs := func() []core.Process {
		procs := make([]core.Process, n)
		for i := 0; i < n; i++ {
			d, err := core.NewDACPhases(n, i, 1<<20, spread(n)[i])
			if err != nil {
				t.Fatal(err)
			}
			procs[i] = d
		}
		return procs
	}
	cases := map[string]func() adversary.Adversary{
		"complete": func() adversary.Adversary { return adversary.NewComplete() },
		"er": func() adversary.Adversary {
			a, err := adversary.NewProbabilistic(0.5, 3)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
	}
	for name, mkAdv := range cases {
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(Config{
				N:         n,
				Procs:     bigProcs(),
				Adversary: mkAdv(),
				MaxRounds: 1 << 30,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng.RunRounds(32) // warm the delivery scratch
			avg := testing.AllocsPerRun(100, eng.Step)
			if avg != 0 {
				t.Errorf("steady-state round allocated %g times, want 0", avg)
			}
		})
	}
}
