package sim

import (
	"anondyn/internal/core"
)

// execView is the start-of-round state window handed to adversaries and
// Byzantine strategies. It satisfies both adversary.View and fault.View
// (structurally identical interfaces). It points at the engine's own
// Config and Byzantine flags so engine recycling re-targets it without
// reallocating the snapshot buffer.
type execView struct {
	cfg   *Config
	isByz []bool
	round int
	snaps []core.Snapshot
}

func newExecView(cfg *Config, isByz []bool) *execView {
	v := &execView{snaps: make([]core.Snapshot, cfg.N)}
	v.reset(cfg, isByz)
	return v
}

// reset re-targets the view for a fresh execution, reusing the snapshot
// buffer when the network size is unchanged.
func (v *execView) reset(cfg *Config, isByz []bool) {
	v.cfg = cfg
	v.isByz = isByz
	v.round = 0
	if len(v.snaps) != cfg.N {
		v.snaps = make([]core.Snapshot, cfg.N)
	} else {
		clear(v.snaps)
	}
}

// refresh captures every node's public state at the start of round t.
// Crashed nodes keep their last observed value/phase with Crashed set;
// Byzantine nodes expose only the Byzantine flag (their "state" is
// whatever they choose to claim).
func (v *execView) refresh(t int) {
	v.round = t
	for i := 0; i < v.cfg.N; i++ {
		if v.isByz[i] {
			v.snaps[i] = core.Snapshot{Byzantine: true}
			continue
		}
		p := v.cfg.Procs[i]
		s := core.Snap(p)
		s.Crashed = !v.cfg.Crashes.Alive(t, i)
		v.snaps[i] = s
	}
}

// N implements adversary.View and fault.View.
func (v *execView) N() int { return v.cfg.N }

// Snapshot implements adversary.View and fault.View.
func (v *execView) Snapshot(i int) core.Snapshot { return v.snaps[i] }
