package sim

import "math/rand"

// newRand returns a deterministic RNG for test port numberings.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
