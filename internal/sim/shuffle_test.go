package sim

import (
	"math"
	"reflect"
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
)

// TestShuffleOrderInsensitivity: the model leaves intra-round arrival
// order unspecified, so every delivery permutation must preserve the
// correctness properties (exact outputs may differ — DAC advances
// mid-round — but termination, validity and ε-agreement may not).
func TestShuffleOrderInsensitivity(t *testing.T) {
	n := 9
	eps := math.Pow(0.5, 8)
	for seed := int64(0); seed < 12; seed++ {
		rot, err := adversary.NewRotating(4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			N:               n,
			Procs:           dacProcs(t, n, 8, spread(n)),
			Adversary:       rot,
			ShuffleDelivery: true,
			ShuffleSeed:     seed,
		}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := eng.Run()
		if !res.Decided {
			t.Fatalf("seed %d: undecided", seed)
		}
		if !res.Valid() {
			t.Errorf("seed %d: validity violated", seed)
		}
		if !res.EpsAgreement(eps) {
			t.Errorf("seed %d: range %g > %g", seed, res.OutputRange(), eps)
		}
	}
}

// TestShuffleDeterministicPerSeed: same seed → identical execution.
func TestShuffleDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) map[int]float64 {
		cfg := Config{
			N:               7,
			Procs:           dacProcs(t, 7, 8, spread(7)),
			Adversary:       adversary.NewComplete(),
			ShuffleDelivery: true,
			ShuffleSeed:     seed,
		}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := eng.Run()
		if !res.Decided {
			t.Fatal("undecided")
		}
		return res.Outputs
	}
	a, b := run(5), run(5)
	if !reflect.DeepEqual(a, b) {
		t.Error("same shuffle seed produced different executions")
	}
	c := run(6)
	same := reflect.DeepEqual(a, c)
	// Different seeds usually differ, but don't hard-require it (the
	// complete graph is fairly order-tolerant); just log.
	if same {
		t.Logf("seeds 5 and 6 coincided — acceptable, order-tolerant schedule")
	}
}

// TestShuffleEngineEquivalence: the concurrent engine applies the same
// deterministic permutations.
func TestShuffleEngineEquivalence(t *testing.T) {
	mk := func() Config {
		rot, err := adversary.NewRotating(3)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			N:               7,
			Procs:           dacProcs(t, 7, 8, spread(7)),
			Adversary:       rot,
			ShuffleDelivery: true,
			ShuffleSeed:     99,
		}
	}
	seq, conc := runBoth(t, mk)
	assertSameResult(t, seq, conc)
}

func TestShuffleDeliveriesHelper(t *testing.T) {
	mkDs := func() []core.Delivery {
		ds := make([]core.Delivery, 8)
		for i := range ds {
			ds[i] = core.Delivery{Port: i}
		}
		return ds
	}
	a, b := mkDs(), mkDs()
	shuffleDeliveries(a, 1, 3, 4)
	shuffleDeliveries(b, 1, 3, 4)
	if !reflect.DeepEqual(a, b) {
		t.Error("same (seed,round,node) gave different permutations")
	}
	c := mkDs()
	shuffleDeliveries(c, 1, 3, 5) // different node
	if reflect.DeepEqual(a, c) {
		t.Error("different node gave the same permutation (stream collision)")
	}
	// Single-element and empty slices are no-ops.
	one := []core.Delivery{{Port: 0}}
	shuffleDeliveries(one, 1, 0, 0)
	shuffleDeliveries(nil, 1, 0, 0)
}
