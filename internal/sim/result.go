package sim

import (
	"math"

	"anondyn/internal/network"
)

// Result summarizes one execution.
type Result struct {
	// Rounds is the number of rounds executed (the run stops as soon as
	// every fault-free node has decided, or at MaxRounds).
	Rounds int
	// Decided reports whether every fault-free node produced an output
	// within the round budget.
	Decided bool
	// Outputs maps node ID → output for every non-Byzantine node that
	// decided (crash-scheduled nodes may decide before crashing and then
	// appear here too).
	Outputs map[int]float64
	// DecideRound maps node ID → the round in which it decided.
	DecideRound map[int]int
	// Inputs maps node ID → initial value for every non-Byzantine node
	// (captured at engine construction; used by the validity checker).
	Inputs map[int]float64
	// FaultFree is the set H of the execution.
	FaultFree []int

	// MessagesDelivered counts messages actually delivered over E(t)
	// links (self-deliveries are internal to the algorithms and not
	// counted); MessagesLost counts messages suppressed by the adversary
	// (sender alive, link absent).
	MessagesDelivered int
	MessagesLost      int
	// MessagesOversized counts messages dropped by the per-link
	// bandwidth budget (Config.MaxMessageBytes).
	MessagesOversized int
	// BytesDelivered is the wire-format volume of delivered messages
	// when Config.AccountBandwidth is set.
	BytesDelivered int

	// Trace holds E(t) per round when Config.KeepTrace is set.
	Trace network.Trace
}

// OutputRange returns max−min over the fault-free outputs, the quantity
// ε-agreement bounds. Nodes that did not decide make the range +Inf.
func (r *Result) OutputRange() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, node := range r.FaultFree {
		v, ok := r.Outputs[node]
		if !ok {
			return math.Inf(1)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return 0 // no fault-free nodes: vacuous
	}
	return hi - lo
}

// EpsAgreement reports whether the fault-free outputs are within eps of
// each other (Definition 3(iii)).
func (r *Result) EpsAgreement(eps float64) bool { return r.OutputRange() <= eps }

// Valid reports Definition 3(ii): every fault-free output lies within
// the convex hull of the non-Byzantine inputs.
func (r *Result) Valid() bool {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range r.Inputs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if len(r.Inputs) == 0 {
		return true
	}
	const slack = 1e-12 // floating-point midpoints can graze the hull edge
	for _, node := range r.FaultFree {
		v, ok := r.Outputs[node]
		if !ok {
			continue
		}
		if v < lo-slack || v > hi+slack {
			return false
		}
	}
	return true
}
