package sim

import (
	"runtime"

	"anondyn/internal/core"
	"anondyn/internal/network"
)

// recvScratch is one receiver-loop worker's private scratch: the
// delivery and in-neighbor gather buffers plus the round counters that
// would otherwise contend on the shared Result. The sequential loop
// uses scratch[0]; parallel rounds give every pool worker its own
// entry, engine-owned and reused across rounds so the steady state
// allocates nothing.
type recvScratch struct {
	deliveries []core.Delivery
	inbuf      []int // in-neighbor gather buffer (delivery core)
	delivered  int
	bytes      int
	oversized  int
}

// roundTask is one contiguous receiver range of one round, handed to a
// pool worker. Everything a worker touches through it is either frozen
// for the round or private to the task's scratch — see deliverRange.
type roundTask struct {
	e        *Engine
	t        int
	lo, hi   int
	edges    *network.EdgeSet
	s        *recvScratch
	liveView bool
	sparse   bool
}

// roundPool is the persistent worker pool behind Config.RoundWorkers.
// Workers block on the task channel between rounds; the pool survives
// Reset (Monte-Carlo batches pay the goroutine spawn once, not per
// run) and is re-created only when the resolved worker count changes.
type roundPool struct {
	tasks chan roundTask
	size  int
}

func newRoundPool(size int) *roundPool {
	p := &roundPool{tasks: make(chan roundTask, size), size: size}
	for i := 0; i < size; i++ {
		// Workers capture only the channel, never the pool struct, so an
		// engine dropped without Close leaves the pool unreachable and
		// the finalizer below can release the goroutines.
		go poolWorker(p.tasks)
	}
	runtime.SetFinalizer(p, func(p *roundPool) { close(p.tasks) })
	return p
}

func poolWorker(tasks <-chan roundTask) {
	for task := range tasks {
		task.e.deliverRange(task.t, task.lo, task.hi, task.edges, task.s, task.liveView, task.sparse)
		task.e.wg.Done()
	}
}

// Close releases the engine's parallel-round workers. Idempotent, and
// optional — a dropped engine's pool is reclaimed by a finalizer — but
// deterministic for callers that want the goroutines gone now. The
// engine stays usable: a later parallel round re-creates the pool.
func (e *Engine) Close() {
	if e.pool != nil {
		runtime.SetFinalizer(e.pool, nil)
		close(e.pool.tasks)
		e.pool = nil
	}
}

// ensurePool sizes the pool and the per-worker scratch for this run's
// worker count and network size. Steady rounds re-enter with
// everything already sized and allocate nothing.
func (e *Engine) ensurePool() {
	k := e.workers
	if e.pool != nil && e.pool.size != k {
		e.Close()
	}
	if e.pool == nil {
		e.pool = newRoundPool(k)
	}
	for len(e.scratch) < k {
		e.scratch = append(e.scratch, recvScratch{})
	}
	n := e.cfg.N
	for i := 0; i < k; i++ {
		s := &e.scratch[i]
		if cap(s.deliveries) < n {
			s.deliveries = make([]core.Delivery, 0, n) // max in-degree is n−1
		}
		if cap(s.inbuf) < n {
			s.inbuf = make([]int, 0, n)
		}
	}
}

// parallelRound shards the receiver loop into contiguous ranges across
// the pool and folds the per-worker counters after the join. The
// per-receiver work is deliverRange — identical to the sequential
// loop — and every written location is owned by exactly one worker
// (receiver-indexed state by the range split, counters by the
// per-worker scratch), so the result is bit-for-bit the sequential
// one: integer counter sums are order-independent, and per-receiver
// delivery order never crosses a range boundary.
func (e *Engine) parallelRound(t int, edges *network.EdgeSet, liveView, sparse bool) (delivered, bytes, oversized int) {
	e.ensurePool()
	if sparse {
		edges.InCSR() // force the CSR build before workers read it concurrently
	}
	k := e.workers
	n := e.cfg.N
	e.wg.Add(k)
	for i := 0; i < k; i++ {
		s := &e.scratch[i]
		s.delivered, s.bytes, s.oversized = 0, 0, 0
		e.pool.tasks <- roundTask{
			e: e, t: t, lo: i * n / k, hi: (i + 1) * n / k,
			edges: edges, s: s, liveView: liveView, sparse: sparse,
		}
	}
	e.wg.Wait()
	for i := 0; i < k; i++ {
		s := &e.scratch[i]
		delivered += s.delivered
		bytes += s.bytes
		oversized += s.oversized
	}
	return delivered, bytes, oversized
}
