// Package sim executes the synchronous-round protocol of §II-A: in every
// round the message adversary picks E(t), every alive node broadcasts,
// Byzantine nodes emit per-receiver messages, and deliveries reach each
// receiver tagged with its local port. Two engines share the semantics:
// a deterministic sequential engine and a goroutine-per-node concurrent
// engine with a round barrier; they produce identical results.
package sim

import (
	"errors"
	"fmt"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/metrics"
	"anondyn/internal/network"
	"anondyn/internal/trace"
)

// DefaultMaxRounds bounds runs whose configuration forgets to; protocols
// below their dynaDegree threshold legitimately never terminate, and the
// engine must not spin forever on them.
const DefaultMaxRounds = 100_000

// ErrConfig reports an invalid engine configuration.
var ErrConfig = errors.New("sim: invalid configuration")

// Observer receives state-transition callbacks during a run. Callbacks
// fire on the engine's goroutine; implementations must be fast and must
// not call back into the engine.
type Observer interface {
	// OnPhaseEnter fires when a node's phase changes from `from` to `to`
	// (to > from; a DAC jump can skip several phases at once — per
	// Definition 6 the skipped phases take the same value). value is the
	// node's state on entering phase `to`.
	OnPhaseEnter(node, from, to int, value float64, round int)
	// OnDecide fires once per node when it produces its output.
	OnDecide(node int, value float64, round int)
}

// RoundObserver is an optional extension of Observer: when the
// configured Observer also implements it, the engines call OnRoundEnd
// after every round with the post-round state values of the nodes that
// are still running (fault-free and not-yet-crashed; Byzantine indices
// are absent). Used for round-resolution convergence curves (the F1
// figure series).
type RoundObserver interface {
	// OnRoundEnd receives the round index and a dense view of the
	// running nodes' values; the view's backing storage is reused
	// across calls and must not be retained.
	OnRoundEnd(round int, values RoundValues)
}

// RoundValues is the dense view OnRoundEnd receives: per-node values
// plus a running mask, backed by engine-owned slices that are
// overwritten every round. It replaces the map the hook used to get —
// observers iterate in deterministic ascending node order with no
// hashing on the engine's hot path. Callers needing a snapshot must
// copy what they read before returning.
type RoundValues struct {
	values  []float64
	running []bool
}

// MakeRoundValues builds a standalone view over caller-owned slices —
// for tests and adapters that feed observers outside an engine. values
// and running must have equal length; running[i] marks node i as one of
// the round's running nodes.
func MakeRoundValues(values []float64, running []bool) RoundValues {
	if len(values) != len(running) {
		panic(fmt.Sprintf("sim: RoundValues over %d values but %d running flags", len(values), len(running)))
	}
	return RoundValues{values: values, running: running}
}

// N returns the network size the view spans.
func (rv RoundValues) N() int { return len(rv.values) }

// Len counts the running nodes in the view.
func (rv RoundValues) Len() int {
	count := 0
	for _, r := range rv.running {
		if r {
			count++
		}
	}
	return count
}

// Value returns node i's post-round value and whether the node is
// running this round (false for crashed and Byzantine nodes).
func (rv RoundValues) Value(i int) (float64, bool) {
	if !rv.running[i] {
		return 0, false
	}
	return rv.values[i], true
}

// Range calls fn for every running node in ascending node order.
func (rv RoundValues) Range(fn func(node int, value float64)) {
	for i, r := range rv.running {
		if r {
			fn(i, rv.values[i])
		}
	}
}

// Hooks is the single registration surface for everything that watches
// an execution. Each field is independently optional and nil-safe: the
// zero value observes nothing and costs nothing on the hot path.
//
// Dispatch is by optional interface: an Observer that also implements
// RoundObserver additionally receives OnRoundEnd. The Metrics sink is
// deliberately NOT part of the trackPhases gating — attaching it never
// changes which code path the engines select, so enabling metrics can
// never perturb results (pinned by the parity property tests).
type Hooks struct {
	// Observer receives phase/decide callbacks (and OnRoundEnd when it
	// also implements RoundObserver).
	Observer Observer
	// Recorder receives the execution event log.
	Recorder *trace.Recorder
	// Metrics receives one RoundSample per round, at the end of the
	// round, from whichever engine runs the execution.
	Metrics metrics.Sink
}

// Config describes one execution.
type Config struct {
	// N is the network size; F the declared fault bound (used only for
	// validation and diagnostics — algorithms receive their own copy).
	N int
	F int

	// Procs holds the state machine of every non-Byzantine node,
	// indexed by node ID. Entries at Byzantine indices must be nil and
	// vice versa.
	Procs []core.Process

	// Byzantine maps node IDs to their behavior. Byzantine nodes have no
	// Process; they exist only as message sources.
	Byzantine map[int]fault.Strategy

	// Crashes schedules crash faults (crash model only; a node may not
	// be both Byzantine and crash-scheduled).
	Crashes fault.Schedule

	// Adversary picks E(t) each round. Required.
	Adversary adversary.Adversary

	// Ports holds each node's local numbering; nil defaults to identity
	// numberings. The correctness of the algorithms must be independent
	// of this choice (asserted by tests).
	Ports network.Ports

	// MaxRounds caps the run; 0 means DefaultMaxRounds.
	MaxRounds int

	// Hooks registers everything that watches the execution: observer,
	// recorder, and metrics sink. See Hooks.
	Hooks Hooks

	// AccountBandwidth enables wire-format byte accounting for delivered
	// messages (experiment E8); it costs an encode-size pass per
	// delivery.
	AccountBandwidth bool

	// MaxMessageBytes, when > 0, enforces a uniform per-link bandwidth
	// budget: a message whose wire encoding exceeds the cap is dropped
	// by the link and counted in Result.MessagesOversized. This models
	// the §VII remark on bandwidth-constrained links: plain DAC/DBAC
	// messages always fit, history-carrying ones (FullInfo, large
	// piggyback windows) may not (experiment E11).
	MaxMessageBytes int

	// LinkBandwidth, when non-nil, gives each directed link its own
	// byte budget (§VII: "when each link has different bandwidth
	// constraints"); a return value ≤ 0 means unlimited for that link.
	// It takes precedence over MaxMessageBytes.
	LinkBandwidth func(from, to int) int

	// ShuffleDelivery randomizes the order in which each receiver
	// processes one round's deliveries (default: ascending port). The
	// permutation is a deterministic function of ShuffleSeed, the round
	// and the receiver, so runs remain reproducible. The model leaves
	// intra-round arrival order unspecified; correctness must not
	// depend on it (asserted by the order-insensitivity tests).
	ShuffleDelivery bool
	// ShuffleSeed seeds the delivery permutations.
	ShuffleSeed int64

	// KeepTrace retains the per-round edge sets in the Result for
	// offline dynaDegree verification.
	KeepTrace bool

	// RoundWorkers shards the sequential engine's receiver loop across a
	// persistent worker pool: 0 (or 1) keeps the loop sequential, -1
	// resolves to GOMAXPROCS, any other positive count is honored as
	// given (capped at N). Delivery order, observer semantics and every
	// Result field are bit-for-bit identical to the sequential loop —
	// receivers are independent within a round, so contiguous receiver
	// ranges run concurrently with engine-owned per-worker scratch.
	// Configurations with an Observer or Recorder run sequentially
	// regardless (their callbacks are ordered streams).
	RoundWorkers int

	// ForceCSR forces the engine-owned per-round edge scratch into the
	// sparse CSR representation regardless of N (the default switches at
	// network.SparseThreshold). Representation never affects results —
	// the equivalence property tests flip this flag to prove it.
	ForceCSR bool
}

// validate checks the invariants shared by both engines and returns the
// effective MaxRounds.
func (c *Config) validate() (int, error) {
	if c.N < 1 {
		return 0, fmt.Errorf("%w: n=%d", ErrConfig, c.N)
	}
	if c.Adversary == nil {
		return 0, fmt.Errorf("%w: nil adversary", ErrConfig)
	}
	if len(c.Procs) != c.N {
		return 0, fmt.Errorf("%w: %d procs for n=%d", ErrConfig, len(c.Procs), c.N)
	}
	for i, p := range c.Procs {
		_, byz := c.Byzantine[i]
		if byz && p != nil {
			return 0, fmt.Errorf("%w: node %d is Byzantine but has a Process", ErrConfig, i)
		}
		if !byz && p == nil {
			return 0, fmt.Errorf("%w: node %d has no Process and is not Byzantine", ErrConfig, i)
		}
	}
	for i := range c.Byzantine {
		if i < 0 || i >= c.N {
			return 0, fmt.Errorf("%w: Byzantine node %d out of range", ErrConfig, i)
		}
		if _, crash := c.Crashes[i]; crash {
			return 0, fmt.Errorf("%w: node %d is both Byzantine and crash-scheduled", ErrConfig, i)
		}
	}
	if c.Crashes != nil {
		if err := c.Crashes.Validate(c.N, len(c.Crashes)); err != nil {
			return 0, err
		}
	}
	if len(c.Byzantine)+len(c.Crashes) > c.F && c.F > 0 {
		return 0, fmt.Errorf("%w: %d faulty nodes exceed f=%d", ErrConfig,
			len(c.Byzantine)+len(c.Crashes), c.F)
	}
	if c.Ports != nil && len(c.Ports) != c.N {
		return 0, fmt.Errorf("%w: %d port numberings for n=%d", ErrConfig, len(c.Ports), c.N)
	}
	max := c.MaxRounds
	if max <= 0 {
		max = DefaultMaxRounds
	}
	return max, nil
}

// shuffleDeliveries permutes one receiver's round deliveries with a
// permutation derived deterministically from (seed, round, node): a
// Fisher–Yates walk over a splitmix64 stream, so the engine's hot loop
// pays no RNG allocation.
func shuffleDeliveries(ds []core.Delivery, seed int64, round, node int) {
	if len(ds) < 2 {
		return
	}
	// splitmix-style stream selector so nearby (round, node) pairs get
	// unrelated permutations.
	z := uint64(seed) ^ (uint64(round)+1)*0x9e3779b97f4a7c15 ^ (uint64(node)+1)*0xbf58476d1ce4e5b9
	for i := len(ds) - 1; i > 0; i-- {
		z += 0x9e3779b97f4a7c15
		x := z
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		j := int(x % uint64(i+1))
		ds[i], ds[j] = ds[j], ds[i]
	}
}

// linkCap resolves the byte budget of one directed link: per-link
// overrides first, then the uniform cap; ≤ 0 means unlimited.
func (c *Config) linkCap(from, to int) int {
	if c.LinkBandwidth != nil {
		return c.LinkBandwidth(from, to)
	}
	return c.MaxMessageBytes
}

// FaultFree lists the nodes that are neither Byzantine nor
// crash-scheduled, in ascending order — the set H whose outputs the
// consensus properties constrain.
func (c *Config) FaultFree() []int {
	var ff []int
	for i := 0; i < c.N; i++ {
		if _, byz := c.Byzantine[i]; byz {
			continue
		}
		if _, crash := c.Crashes[i]; crash {
			continue
		}
		ff = append(ff, i)
	}
	return ff
}
