package sim

import (
	"errors"
	"math"
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/network"
)

// dacProcs builds n DAC nodes with the given inputs and explicit phase
// budget, using identity self-ports.
func dacProcs(t *testing.T, n, pEnd int, inputs []float64) []core.Process {
	t.Helper()
	procs := make([]core.Process, n)
	for i := 0; i < n; i++ {
		d, err := core.NewDACPhases(n, i, pEnd, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = d
	}
	return procs
}

// dbacProcs builds DBAC nodes, leaving nil entries at Byzantine IDs.
func dbacProcs(t *testing.T, n, f, pEnd int, inputs []float64, byz map[int]fault.Strategy) []core.Process {
	t.Helper()
	procs := make([]core.Process, n)
	for i := 0; i < n; i++ {
		if _, isByz := byz[i]; isByz {
			continue
		}
		d, err := core.NewDBACPhases(n, f, i, pEnd, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = d
	}
	return procs
}

func spread(n int) []float64 {
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i) / float64(n-1)
	}
	return in
}

func TestEngineDACCompleteGraph(t *testing.T) {
	n := 7
	cfg := Config{
		N:         n,
		Procs:     dacProcs(t, n, 10, spread(n)),
		Adversary: adversary.NewComplete(),
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided {
		t.Fatal("did not decide on the complete graph")
	}
	// Complete graph: one phase per round, so exactly pEnd rounds.
	if res.Rounds != 10 {
		t.Errorf("rounds = %d, want 10", res.Rounds)
	}
	if !res.EpsAgreement(math.Pow(0.5, 10)) {
		t.Errorf("range %g exceeds (1/2)^10", res.OutputRange())
	}
	if !res.Valid() {
		t.Error("validity violated")
	}
	if len(res.FaultFree) != n {
		t.Errorf("fault-free = %v", res.FaultFree)
	}
}

func TestEngineDACWithCrashes(t *testing.T) {
	n := 7 // f = 3 allowed; crash 3 nodes
	cfg := Config{
		N:     n,
		F:     3,
		Procs: dacProcs(t, n, 10, spread(n)),
		Crashes: fault.Schedule{
			0: fault.CrashAt(2),
			3: fault.CrashSilent(4),
			6: fault.CrashPartial(1, 2, 4),
		},
		Adversary: adversary.NewComplete(),
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided {
		t.Fatal("crash run did not decide")
	}
	if !res.Valid() {
		t.Error("validity violated under crashes")
	}
	if !res.EpsAgreement(1e-3) {
		t.Errorf("ε-agreement violated: range %g", res.OutputRange())
	}
	for _, ff := range res.FaultFree {
		if ff == 0 || ff == 3 || ff == 6 {
			t.Errorf("crashed node %d listed fault-free", ff)
		}
	}
}

func TestEngineCrashRoundSemantics(t *testing.T) {
	// Node 0 crashes in round 0 with delivery restricted to node 1 on a
	// complete graph: node 1 must count it, node 2 must not.
	n := 3
	procs := dacProcs(t, n, 1, []float64{0, 0.5, 1})
	cfg := Config{
		N:         n,
		F:         1,
		Procs:     procs,
		Crashes:   fault.Schedule{0: fault.CrashPartial(0, 1)},
		Adversary: adversary.NewComplete(),
		MaxRounds: 1,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	// After round 0: node 1 heard node 0 (value 0) and node 2 (value 1)
	// → quorum 2 reached on first delivery (port order: node 0 first):
	// {0.5, 0} → v = 0.25, phase 1.
	if got := procs[1].Phase(); got != 1 {
		t.Errorf("node 1 phase = %d, want 1", got)
	}
	if got := procs[1].Value(); got != 0.25 {
		t.Errorf("node 1 value = %g, want 0.25 (heard crashing node first)", got)
	}
	// Node 2 heard only node 1 (0.5): quorum 2 = self + node1 → phase 1,
	// v = (0.5+1)/2 = 0.75 — it must NOT have heard node 0.
	if got := procs[2].Value(); got != 0.75 {
		t.Errorf("node 2 value = %g, want 0.75 (crash partial leaked?)", got)
	}
	// The crashed node receives nothing in its crash round and stays put.
	if got := procs[0].Phase(); got != 0 {
		t.Errorf("crashed node phase = %d, want 0", got)
	}
}

func TestEngineDACSplitNeverDecides(t *testing.T) {
	// Theorem 9 shape: halves split, below-threshold degree → DAC can
	// never assemble a quorum and must not decide within any budget.
	n := 6
	halves, err := adversary.NewHalves(n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		N:         n,
		Procs:     dacProcs(t, n, 5, spread(n)),
		Adversary: halves,
		MaxRounds: 300,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.Decided {
		t.Error("DAC decided under a sub-threshold split adversary")
	}
	if res.Rounds != 300 {
		t.Errorf("rounds = %d, want the full 300 budget", res.Rounds)
	}
	if !math.IsInf(res.OutputRange(), 1) {
		t.Error("output range should be +Inf when nodes are undecided")
	}
}

func TestEngineDBACWithByzantine(t *testing.T) {
	n, f := 11, 2
	byz := map[int]fault.Strategy{
		4: fault.Equivocator{Low: 0, High: 1},
		9: fault.Extremist{Value: 1},
	}
	cfg := Config{
		N:         n,
		F:         f,
		Procs:     dbacProcs(t, n, f, 12, spread(n), byz),
		Byzantine: byz,
		Adversary: adversary.NewComplete(),
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided {
		t.Fatal("DBAC did not decide under Byzantine attack")
	}
	if !res.Valid() {
		t.Errorf("validity violated: outputs %v", res.Outputs)
	}
	if res.OutputRange() > 0.01 {
		t.Errorf("range %g too wide after 12 phases", res.OutputRange())
	}
	// Byzantine nodes never appear in outputs or fault-free set.
	if _, ok := res.Outputs[4]; ok {
		t.Error("Byzantine node has an output")
	}
	for _, ff := range res.FaultFree {
		if ff == 4 || ff == 9 {
			t.Error("Byzantine node listed fault-free")
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	n := 5
	good := func() Config {
		return Config{
			N:         n,
			Procs:     dacProcs(t, n, 3, spread(n)),
			Adversary: adversary.NewComplete(),
		}
	}
	if _, err := NewEngine(good()); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}

	c := good()
	c.Adversary = nil
	if _, err := NewEngine(c); !errors.Is(err, ErrConfig) {
		t.Error("nil adversary accepted")
	}

	c = good()
	c.Procs = c.Procs[:3]
	if _, err := NewEngine(c); !errors.Is(err, ErrConfig) {
		t.Error("short procs accepted")
	}

	c = good()
	c.Procs[2] = nil
	if _, err := NewEngine(c); !errors.Is(err, ErrConfig) {
		t.Error("nil proc without Byzantine accepted")
	}

	c = good()
	c.Byzantine = map[int]fault.Strategy{2: fault.Silent{}}
	if _, err := NewEngine(c); !errors.Is(err, ErrConfig) {
		t.Error("Byzantine node with a Process accepted")
	}

	c = good()
	c.Byzantine = map[int]fault.Strategy{2: fault.Silent{}}
	c.Procs[2] = nil
	c.Crashes = fault.Schedule{2: fault.CrashAt(0)}
	if _, err := NewEngine(c); !errors.Is(err, ErrConfig) {
		t.Error("node both Byzantine and crashed accepted")
	}

	c = good()
	c.F = 1
	c.Crashes = fault.Schedule{0: fault.CrashAt(0), 1: fault.CrashAt(0)}
	if _, err := NewEngine(c); err == nil {
		t.Error("crashes exceeding f accepted")
	}
}

func TestEnginePortNumberingInvariance(t *testing.T) {
	// Port numberings are local and arbitrary (§II-A): exact outputs may
	// shift (a numbering permutes delivery order, and DAC advances
	// mid-round on quorum), but every correctness property must hold
	// under every numbering.
	n := 7
	eps := math.Pow(0.5, 8)
	for seed := int64(0); seed < 8; seed++ {
		var ports network.Ports
		if seed > 0 {
			ports = network.RandomPorts(n, newRand(seed))
		}
		cfg := Config{
			N:         n,
			Procs:     dacProcs(t, n, 8, spread(n)),
			Adversary: adversary.NewComplete(),
			Ports:     ports,
		}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := eng.Run()
		if !res.Decided {
			t.Fatalf("seed %d: undecided", seed)
		}
		if !res.Valid() {
			t.Errorf("seed %d: validity violated", seed)
		}
		if !res.EpsAgreement(eps) {
			t.Errorf("seed %d: range %g > %g", seed, res.OutputRange(), eps)
		}
		if res.Rounds != 8 {
			t.Errorf("seed %d: rounds = %d, want 8 (complete graph, one phase/round)", seed, res.Rounds)
		}
	}
}

func TestEngineMessageAccounting(t *testing.T) {
	n := 4
	cfg := Config{
		N:         n,
		Procs:     dacProcs(t, n, 2, spread(n)),
		Adversary: adversary.NewStatic("ring", network.Ring(n)),
		MaxRounds: 3,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.RunRounds(3)
	// Ring: n delivered per round; n(n-1) − n = n(n−2) suppressed.
	wantDelivered := 3 * n
	if res.MessagesDelivered != wantDelivered {
		t.Errorf("delivered = %d, want %d", res.MessagesDelivered, wantDelivered)
	}
	wantLost := 3 * n * (n - 2)
	if res.MessagesLost != wantLost {
		t.Errorf("lost = %d, want %d", res.MessagesLost, wantLost)
	}
}

// TestEngineMessageAccountingUnderCrash pins MessagesLost under a crash
// schedule: a missing link toward a node that cannot receive in round t
// (its crash round or later) is not adversary suppression. Ring on n=4
// with node 2 crashing cleanly at round 1, over rounds t=0..3:
//
//	t=0: every node sends, every node receives — 4×(3−1) = 8 lost
//	t=1: node 2 still sends but no longer receives — 6 lost
//	t≥2: senders {0,1,3} toward receivers {0,1,3} — 4 lost per round
//
// The former accounting charged N−1−OutDegree regardless of receiver
// state (28 over the same rounds).
func TestEngineMessageAccountingUnderCrash(t *testing.T) {
	n := 4
	cfg := Config{
		N:         n,
		Procs:     dacProcs(t, n, 8, spread(n)),
		Adversary: adversary.NewStatic("ring", network.Ring(n)),
		Crashes:   fault.Schedule{2: fault.CrashAt(1)},
		MaxRounds: 8,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.RunRounds(4)
	if want := 8 + 6 + 4 + 4; res.MessagesLost != want {
		t.Errorf("lost = %d, want %d", res.MessagesLost, want)
	}
	// Deliveries shrink in step: 4 (all edges), then 3 (2→3 still
	// carries the final broadcast), then 2 per round.
	if want := 4 + 3 + 2 + 2; res.MessagesDelivered != want {
		t.Errorf("delivered = %d, want %d", res.MessagesDelivered, want)
	}
}

func TestEngineBandwidthAccounting(t *testing.T) {
	n := 4
	cfg := Config{
		N:                n,
		Procs:            dacProcs(t, n, 2, spread(n)),
		Adversary:        adversary.NewComplete(),
		AccountBandwidth: true,
		MaxRounds:        2,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.RunRounds(2)
	if res.BytesDelivered <= 0 {
		t.Error("no bytes accounted")
	}
	// Plain DAC messages are tiny: ≤ 8 bytes each at these magnitudes.
	if res.BytesDelivered > res.MessagesDelivered*8 {
		t.Errorf("bytes/message = %g implausibly large",
			float64(res.BytesDelivered)/float64(res.MessagesDelivered))
	}
}

func TestEngineKeepTrace(t *testing.T) {
	n := 5
	cfg := Config{
		N:         n,
		Procs:     dacProcs(t, n, 3, spread(n)),
		Adversary: adversary.NewComplete(),
		KeepTrace: true,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if len(res.Trace) != res.Rounds {
		t.Fatalf("trace length %d != rounds %d", len(res.Trace), res.Rounds)
	}
	if !network.SatisfiesDynaDegree(res.Trace, res.FaultFree, 1, n-1) {
		t.Error("complete-graph trace should satisfy (1, n−1)")
	}
}

func TestEngineMaxRoundsDefault(t *testing.T) {
	cfg := Config{
		N:         2,
		Procs:     dacProcs(t, 2, 1, []float64{0, 1}),
		Adversary: adversary.NewStatic("empty", network.NewEdgeSet(2)),
		MaxRounds: 50,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.Decided {
		t.Error("decided with no communication and quorum 2")
	}
	if res.Rounds != 50 {
		t.Errorf("rounds = %d, want 50", res.Rounds)
	}
}
