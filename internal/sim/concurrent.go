package sim

import (
	"sync"

	"anondyn/internal/core"
	"anondyn/internal/network"
	"anondyn/internal/trace"
	"anondyn/internal/wire"
)

// ConcurrentEngine executes the same synchronous-round semantics as
// Engine with one goroutine per non-Byzantine node and a two-phase round
// barrier (broadcast collection, then delivery processing). Per-node
// delivery sequences are identical to the sequential engine's, so for
// any configuration the two engines produce identical Results — the
// equivalence tests assert it. Its purpose is twofold: it demonstrates
// the algorithms are driven purely through the Process interface with no
// hidden shared state, and it exercises them under the race detector.
type ConcurrentEngine struct {
	cfg       Config
	maxRounds int
	ports     network.Ports

	round   int
	view    *execView
	snaps   []core.Snapshot
	decided map[int]bool
	result  Result

	cmds    []chan nodeCmd
	replies chan nodeReply
	wg      sync.WaitGroup
	started bool
}

type cmdKind int

const (
	cmdBroadcast cmdKind = iota + 1
	cmdDeliver
)

type nodeCmd struct {
	kind       cmdKind
	deliveries []core.Delivery
}

type transition struct {
	from, to int
	value    float64
}

type nodeReply struct {
	node        int
	msg         core.Message
	transitions []transition
	output      float64
	hasOutput   bool
	snap        core.Snapshot
}

// NewConcurrentEngine validates the configuration and prepares the
// goroutine-per-node execution. Call Close (or finish Run) to release
// the workers.
func NewConcurrentEngine(cfg Config) (*ConcurrentEngine, error) {
	maxRounds, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	ports := cfg.Ports
	if ports == nil {
		ports = network.IdentityPorts(cfg.N)
	}
	e := &ConcurrentEngine{
		cfg:       cfg,
		maxRounds: maxRounds,
		ports:     ports,
		snaps:     make([]core.Snapshot, cfg.N),
		decided:   make(map[int]bool, cfg.N),
		replies:   make(chan nodeReply, cfg.N),
		cmds:      make([]chan nodeCmd, cfg.N),
	}
	e.view = newExecView(cfg)
	e.result = Result{
		Outputs:     make(map[int]float64, cfg.N),
		DecideRound: make(map[int]int, cfg.N),
		Inputs:      make(map[int]float64, cfg.N),
		FaultFree:   cfg.FaultFree(),
	}
	for i, p := range cfg.Procs {
		if p == nil {
			continue
		}
		e.result.Inputs[i] = p.Value()
		e.snaps[i] = core.Snap(p)
		if v, ok := p.Output(); ok {
			e.noteDecision(i, v, 0)
		}
	}
	return e, nil
}

// Run executes rounds until all fault-free nodes decide or the budget is
// exhausted, shuts the workers down, and returns the result.
func (e *ConcurrentEngine) Run() *Result {
	e.start()
	for e.round < e.maxRounds && !e.allDecided() {
		e.step()
	}
	e.Close()
	e.result.Rounds = e.round
	e.result.Decided = e.allDecided()
	return &e.result
}

// Close terminates the worker goroutines. Idempotent.
func (e *ConcurrentEngine) Close() {
	if !e.started {
		return
	}
	for i, ch := range e.cmds {
		if ch != nil {
			close(ch)
			e.cmds[i] = nil
		}
	}
	e.wg.Wait()
	e.started = false
}

func (e *ConcurrentEngine) start() {
	if e.started {
		return
	}
	e.started = true
	for i := 0; i < e.cfg.N; i++ {
		if _, byz := e.cfg.Byzantine[i]; byz {
			continue
		}
		ch := make(chan nodeCmd, 1)
		e.cmds[i] = ch
		e.wg.Add(1)
		go e.worker(i, e.cfg.Procs[i], ch)
	}
}

// worker owns one Process: all algorithm calls for the node happen on
// this goroutine, mirroring a real deployment where each device runs its
// own protocol stack.
func (e *ConcurrentEngine) worker(node int, proc core.Process, cmds <-chan nodeCmd) {
	defer e.wg.Done()
	for cmd := range cmds {
		switch cmd.kind {
		case cmdBroadcast:
			e.replies <- nodeReply{node: node, msg: proc.Broadcast()}
		case cmdDeliver:
			var trs []transition
			for _, d := range cmd.deliveries {
				before := proc.Phase()
				proc.Deliver(d)
				if after := proc.Phase(); after != before {
					trs = append(trs, transition{from: before, to: after, value: proc.Value()})
				}
			}
			proc.EndRound()
			out, ok := proc.Output()
			e.replies <- nodeReply{
				node: node, transitions: trs,
				output: out, hasOutput: ok, snap: core.Snap(proc),
			}
		}
	}
}

func (e *ConcurrentEngine) step() {
	t := e.round

	// (1) Start-of-round view for the adversary and Byzantine nodes,
	// from the snapshots gathered at the end of the previous round.
	for i := 0; i < e.cfg.N; i++ {
		if _, byz := e.cfg.Byzantine[i]; byz {
			e.view.snaps[i] = core.Snapshot{Byzantine: true}
			continue
		}
		s := e.snaps[i]
		s.Crashed = !e.cfg.Crashes.Alive(t, i)
		e.view.snaps[i] = s
	}
	e.view.round = t

	edges := e.cfg.Adversary.Edges(t, e.view)
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(trace.Event{Kind: trace.KindRound, Round: t, Edges: edges.Edges()})
	}
	if e.cfg.KeepTrace {
		e.result.Trace = append(e.result.Trace, edges.Clone())
	}

	byzMsgs := make(map[int][]*core.Message, len(e.cfg.Byzantine))
	for i, strat := range e.cfg.Byzantine {
		byzMsgs[i] = strat.Messages(t, i, e.view)
	}

	// (2) Broadcast barrier.
	broadcasts := make([]core.Message, e.cfg.N)
	hasBcast := make([]bool, e.cfg.N)
	pending := 0
	for i := 0; i < e.cfg.N; i++ {
		if e.cmds[i] == nil || !e.cfg.Crashes.Alive(t, i) {
			continue
		}
		e.cmds[i] <- nodeCmd{kind: cmdBroadcast}
		pending++
	}
	for ; pending > 0; pending-- {
		r := <-e.replies
		broadcasts[r.node] = r.msg
		hasBcast[r.node] = true
	}
	if e.cfg.Recorder != nil {
		for i := 0; i < e.cfg.N; i++ {
			if hasBcast[i] {
				e.cfg.Recorder.Record(trace.Event{
					Kind: trace.KindBroadcast, Round: t, Node: i,
					Value: broadcasts[i].Value, Phase: broadcasts[i].Phase,
				})
			}
			if c, ok := e.cfg.Crashes[i]; ok && c.Round == t {
				e.cfg.Recorder.Record(trace.Event{Kind: trace.KindCrash, Round: t, Node: i})
			}
		}
	}

	// (3) Build per-receiver delivery sequences (identical order to the
	// sequential engine: ascending port).
	for v := 0; v < e.cfg.N; v++ {
		if e.cmds[v] == nil || !e.cfg.Crashes.FullyAlive(t, v) {
			continue
		}
		var ds []core.Delivery
		numbering := e.ports[v]
		for port := 0; port < e.cfg.N; port++ {
			u := numbering.Node(port)
			if u == v || !edges.Has(u, v) {
				continue
			}
			var m core.Message
			if msgs, byz := byzMsgs[u]; byz {
				if msgs[v] == nil {
					continue
				}
				m = *msgs[v]
			} else {
				if !hasBcast[u] {
					continue
				}
				if c, ok := e.cfg.Crashes[u]; ok && c.Round == t && !c.AllowsFinalDelivery(v) {
					continue
				}
				m = broadcasts[u]
			}
			if limit := e.cfg.linkCap(u, v); limit > 0 && wire.Size(m) > limit {
				e.result.MessagesOversized++
				continue
			}
			ds = append(ds, core.Delivery{Port: port, Msg: m})
		}
		if e.cfg.ShuffleDelivery {
			shuffleDeliveries(ds, e.cfg.ShuffleSeed, t, v)
		}
		e.result.MessagesDelivered += len(ds)
		if e.cfg.AccountBandwidth {
			for _, d := range ds {
				e.result.BytesDelivered += wire.Size(d.Msg)
			}
		}
		if e.cfg.Recorder != nil {
			for _, d := range ds {
				e.cfg.Recorder.Record(trace.Event{
					Kind: trace.KindDeliver, Round: t, Node: v, Port: d.Port,
					Value: d.Msg.Value, Phase: d.Msg.Phase,
				})
			}
		}
		e.cmds[v] <- nodeCmd{kind: cmdDeliver, deliveries: ds}
		pending++
	}

	// (4) Delivery barrier: collect replies, then apply callbacks in
	// ascending node order for deterministic observer streams.
	replies := make([]*nodeReply, e.cfg.N)
	for ; pending > 0; pending-- {
		r := <-e.replies
		rr := r
		replies[r.node] = &rr
	}
	for v := 0; v < e.cfg.N; v++ {
		r := replies[v]
		if r == nil {
			continue
		}
		e.snaps[v] = r.snap
		for _, tr := range r.transitions {
			if e.cfg.Observer != nil {
				e.cfg.Observer.OnPhaseEnter(v, tr.from, tr.to, tr.value, t)
			}
			if e.cfg.Recorder != nil {
				e.cfg.Recorder.Record(trace.Event{
					Kind: trace.KindPhase, Round: t, Node: v,
					FromPhase: tr.from, Phase: tr.to, Value: tr.value,
				})
			}
		}
		if r.hasOutput {
			e.noteDecision(v, r.output, t)
		}
	}

	// Adversary-suppressed message accounting (alive sender, no link).
	for u := 0; u < e.cfg.N; u++ {
		if _, byz := e.cfg.Byzantine[u]; !byz && !e.cfg.Crashes.Alive(t, u) {
			continue
		}
		e.result.MessagesLost += e.cfg.N - 1 - edges.OutDegree(u)
	}

	if ro, ok := e.cfg.Observer.(RoundObserver); ok {
		values := make(map[int]float64, e.cfg.N)
		for i := 0; i < e.cfg.N; i++ {
			if e.cmds[i] == nil || !e.cfg.Crashes.Alive(t+1, i) {
				continue
			}
			values[i] = e.snaps[i].Value
		}
		ro.OnRoundEnd(t, values)
	}

	e.round++
}

func (e *ConcurrentEngine) noteDecision(node int, v float64, round int) {
	if e.decided[node] {
		return
	}
	e.decided[node] = true
	e.result.Outputs[node] = v
	e.result.DecideRound[node] = round
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnDecide(node, v, round)
	}
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(trace.Event{Kind: trace.KindDecide, Round: round, Node: node, Value: v})
	}
}

func (e *ConcurrentEngine) allDecided() bool {
	for _, i := range e.result.FaultFree {
		if !e.decided[i] {
			return false
		}
	}
	return true
}
