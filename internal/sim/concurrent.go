package sim

import (
	"sync"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/metrics"
	"anondyn/internal/network"
	"anondyn/internal/trace"
	"anondyn/internal/wire"
)

// ConcurrentEngine executes the same synchronous-round semantics as
// Engine with one goroutine per non-Byzantine node and a two-phase round
// barrier (broadcast collection, then delivery processing). Per-node
// delivery sequences are identical to the sequential engine's, so for
// any configuration the two engines produce identical Results — the
// equivalence tests assert it. Its purpose is twofold: it demonstrates
// the algorithms are driven purely through the Process interface with no
// hidden shared state, and it exercises them under the race detector.
//
// Like Engine it keeps per-node state dense and reuses its round
// scratch — per-receiver delivery buffers, Byzantine message slots,
// reply slots — across rounds: the round barriers guarantee a worker is
// done with its buffers before the controller refills them.
type ConcurrentEngine struct {
	cfg       Config
	maxRounds int
	ports     network.Ports
	ownPorts  bool // ports were engine-built identity numberings (reusable)

	round int
	view  *execView
	snaps []core.Snapshot

	isByz       []bool
	decided     []bool
	outputs     []float64
	decideRound []int
	inputs      []float64
	faultFree   []int
	crashRound  []int         // crash round, or neverCrashes — no map on the hot path
	crashInfo   []fault.Crash // partial-delivery detail for crash-scheduled nodes

	// round scratch reused across rounds
	broadcasts []core.Message
	hasBcast   []bool
	bcastSize  []int
	byzMsgs    [][]*core.Message
	delivBufs  [][]core.Delivery // per-receiver, refilled once per round
	replies    chan nodeReply
	replyBufs  []nodeReply // per-node landing slot for the delivery barrier
	hasReply   []bool
	inbuf      []int    // in-neighbor gather buffer (delivery core)
	recvMask   []uint64 // word-wise mask of round-t-eligible receivers
	edges      *network.EdgeSet
	inPlace    adversary.InPlace
	hooks      Hooks // effective hooks: cfg.Hooks with the deprecated fields folded in
	needSize   bool
	hasCap     bool
	viewSkip   bool // oblivious adversary, no byz: snapshots never read
	lostFast   bool // no byz/crashes/caps: lost = n(n−1) − delivered

	// trackPhases is false when neither an Observer nor a Recorder is
	// configured; workers then skip the two Phase() probes per delivery,
	// matching the sequential engine's gate. Set before start(), read-only
	// afterwards, so workers race-freely share it.
	trackPhases bool

	// dense RoundObserver scratch, reused across rounds
	rvValues  []float64
	rvRunning []bool

	cmds    []chan nodeCmd
	wg      sync.WaitGroup
	started bool

	result Result
}

type cmdKind int

const (
	cmdBroadcast cmdKind = iota + 1
	cmdDeliver
)

type nodeCmd struct {
	kind       cmdKind
	deliveries []core.Delivery
}

type transition struct {
	from, to int
	value    float64
}

type nodeReply struct {
	node        int
	msg         core.Message
	transitions []transition
	output      float64
	hasOutput   bool
	snap        core.Snapshot
}

// NewConcurrentEngine validates the configuration and prepares the
// goroutine-per-node execution. Call Close (or finish Run) to release
// the workers.
func NewConcurrentEngine(cfg Config) (*ConcurrentEngine, error) {
	e := &ConcurrentEngine{}
	if err := e.Reset(cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset reconfigures the engine to execute cfg from round zero,
// recycling the previous execution's allocations whenever the network
// size matches — the same discipline as the sequential Engine, so batch
// drivers can reuse one instance across seeds. Workers of a previous
// execution are shut down first (they own the old run's processes);
// Run or Step spawns fresh ones.
func (e *ConcurrentEngine) Reset(cfg Config) error {
	maxRounds, err := cfg.validate()
	if err != nil {
		return err
	}
	e.Close()
	n := cfg.N
	sameN := e.broadcasts != nil && len(e.broadcasts) == n
	e.cfg = cfg
	e.maxRounds = maxRounds
	e.round = 0
	e.result = Result{}

	switch {
	case cfg.Ports != nil:
		e.ports = cfg.Ports
		e.ownPorts = false
	case sameN && e.ownPorts:
		// keep the identity numberings built for the previous run
	default:
		e.ports = network.IdentityPorts(n)
		e.ownPorts = true
	}

	if sameN {
		for i := 0; i < n; i++ {
			e.snaps[i] = core.Snapshot{}
			e.isByz[i] = false
			e.decided[i] = false
			e.outputs[i] = 0
			e.decideRound[i] = 0
			e.inputs[i] = 0
			e.hasBcast[i] = false
			e.bcastSize[i] = 0
			e.byzMsgs[i] = nil // drop last run's slices: nothing stale survives
			e.replyBufs[i] = nodeReply{}
			e.hasReply[i] = false
			if e.delivBufs[i] != nil {
				e.delivBufs[i] = e.delivBufs[i][:0] // keep the backing arrays
			}
		}
	} else {
		e.snaps = make([]core.Snapshot, n)
		e.isByz = make([]bool, n)
		e.decided = make([]bool, n)
		e.outputs = make([]float64, n)
		e.decideRound = make([]int, n)
		e.inputs = make([]float64, n)
		e.broadcasts = make([]core.Message, n)
		e.hasBcast = make([]bool, n)
		e.bcastSize = make([]int, n)
		e.byzMsgs = make([][]*core.Message, n)
		e.delivBufs = make([][]core.Delivery, n)
		e.replyBufs = make([]nodeReply, n)
		e.hasReply = make([]bool, n)
		e.inbuf = make([]int, 0, n)
		e.recvMask = make([]uint64, network.MaskWords(n))
		e.rvValues = make([]float64, n)
		e.rvRunning = make([]bool, n)
		e.crashRound = make([]int, n)
		e.crashInfo = make([]fault.Crash, n)
		e.replies = make(chan nodeReply, n)
		e.cmds = make([]chan nodeCmd, n)
		e.edges = nil
		e.view = nil
	}
	fillCrashState(e.crashRound, e.crashInfo, cfg.Crashes)
	for i := range cfg.Byzantine {
		e.isByz[i] = true
	}
	if ip, ok := cfg.Adversary.(adversary.InPlace); ok {
		e.inPlace = ip
		// Same density-regime scratch choice as the sequential engine:
		// CSR past the size threshold or when forced, bit-matrix below.
		wantSparse := cfg.ForceCSR || n >= network.SparseThreshold
		if e.edges == nil || e.edges.IsSparse() != wantSparse {
			if wantSparse {
				e.edges = network.NewEdgeSetSparse(n)
			} else {
				e.edges = network.NewEdgeSet(n)
			}
		}
	} else {
		e.inPlace = nil
	}
	e.needSize = cfg.AccountBandwidth || cfg.MaxMessageBytes > 0 || cfg.LinkBandwidth != nil
	e.hasCap = cfg.MaxMessageBytes > 0 || cfg.LinkBandwidth != nil
	e.viewSkip = adversary.IsOblivious(cfg.Adversary) && len(cfg.Byzantine) == 0
	e.lostFast = len(cfg.Byzantine) == 0 && len(cfg.Crashes) == 0 && !e.hasCap
	// Metrics stay out of the gate — same no-perturbation rule as the
	// sequential engine.
	e.hooks = cfg.Hooks
	e.trackPhases = e.hooks.Observer != nil || e.hooks.Recorder != nil
	if e.view == nil {
		e.view = newExecView(&e.cfg, e.isByz)
	} else {
		e.view.reset(&e.cfg, e.isByz)
	}
	e.faultFree = cfg.FaultFree()
	for i, p := range cfg.Procs {
		if p == nil {
			continue
		}
		e.inputs[i] = p.Value()
		e.snaps[i] = core.Snap(p)
		if v, ok := p.Output(); ok {
			e.noteDecision(i, v, 0)
		}
	}
	return nil
}

// Run executes rounds until all fault-free nodes decide or the budget is
// exhausted, shuts the workers down, and returns the result. The Result
// is detached: further engine use never mutates it.
func (e *ConcurrentEngine) Run() *Result {
	e.start()
	for e.round < e.maxRounds && !e.allDecided() {
		e.step()
	}
	e.Close()
	return e.finish()
}

// Step executes one synchronous round, spawning the node workers on
// first use. Callers driving rounds manually (steady-state probes,
// alloc-budget tests) should Close the engine when done.
func (e *ConcurrentEngine) Step() {
	e.start()
	e.step()
}

// Round returns the number of rounds executed so far.
func (e *ConcurrentEngine) Round() int { return e.round }

// finish mirrors Engine.finish: one map materialization per run.
func (e *ConcurrentEngine) finish() *Result {
	n := e.cfg.N
	res := e.result
	res.Rounds = e.round
	res.Decided = e.allDecided()
	res.FaultFree = e.faultFree
	res.Outputs = make(map[int]float64, n)
	res.DecideRound = make(map[int]int, n)
	res.Inputs = make(map[int]float64, n)
	for i := 0; i < n; i++ {
		if e.decided[i] {
			res.Outputs[i] = e.outputs[i]
			res.DecideRound[i] = e.decideRound[i]
		}
		if e.cfg.Procs[i] != nil {
			res.Inputs[i] = e.inputs[i]
		}
	}
	return &res
}

// Close terminates the worker goroutines. Idempotent.
func (e *ConcurrentEngine) Close() {
	if !e.started {
		return
	}
	for i, ch := range e.cmds {
		if ch != nil {
			close(ch)
			e.cmds[i] = nil
		}
	}
	e.wg.Wait()
	e.started = false
}

func (e *ConcurrentEngine) start() {
	if e.started {
		return
	}
	e.started = true
	for i := 0; i < e.cfg.N; i++ {
		if e.isByz[i] {
			continue
		}
		ch := make(chan nodeCmd, 1)
		e.cmds[i] = ch
		e.wg.Add(1)
		go e.worker(i, e.cfg.Procs[i], ch)
	}
}

// worker owns one Process: all algorithm calls for the node happen on
// this goroutine, mirroring a real deployment where each device runs its
// own protocol stack. The transitions buffer is worker-owned and reused
// across rounds; the controller finishes reading it before the next
// command is issued (delivery barrier), so the reuse is race-free.
func (e *ConcurrentEngine) worker(node int, proc core.Process, cmds <-chan nodeCmd) {
	defer e.wg.Done()
	var trs []transition
	for cmd := range cmds {
		switch cmd.kind {
		case cmdBroadcast:
			e.replies <- nodeReply{node: node, msg: proc.Broadcast()}
		case cmdDeliver:
			trs = trs[:0]
			if e.trackPhases {
				for _, d := range cmd.deliveries {
					before := proc.Phase()
					proc.Deliver(d)
					if after := proc.Phase(); after != before {
						trs = append(trs, transition{from: before, to: after, value: proc.Value()})
					}
				}
			} else {
				// Transitions feed only Observer/Recorder; with neither
				// configured the Phase() probes are pure waste.
				for _, d := range cmd.deliveries {
					proc.Deliver(d)
				}
			}
			proc.EndRound()
			out, ok := proc.Output()
			e.replies <- nodeReply{
				node: node, transitions: trs,
				output: out, hasOutput: ok, snap: core.Snap(proc),
			}
		}
	}
}

func (e *ConcurrentEngine) step() {
	t := e.round

	// (1) Start-of-round view for the adversary and Byzantine nodes,
	// from the snapshots gathered at the end of the previous round.
	// Skipped entirely when nothing in the configuration reads the
	// snapshots (oblivious adversary, no Byzantine strategies) — the
	// same lazy-view gate as the sequential engine.
	if !e.viewSkip {
		for i := 0; i < e.cfg.N; i++ {
			if e.isByz[i] {
				e.view.snaps[i] = core.Snapshot{Byzantine: true}
				continue
			}
			s := e.snaps[i]
			s.Crashed = t > e.crashRound[i]
			e.view.snaps[i] = s
		}
		e.view.round = t
	}

	var edges *network.EdgeSet
	if e.inPlace != nil {
		e.inPlace.EdgesInto(t, e.view, e.edges)
		edges = e.edges
	} else {
		edges = e.cfg.Adversary.Edges(t, e.view)
	}
	if e.hooks.Recorder != nil {
		e.hooks.Recorder.Record(trace.Event{Kind: trace.KindRound, Round: t, Edges: edges.Edges()})
	}
	if e.cfg.KeepTrace {
		e.result.Trace = append(e.result.Trace, edges.Clone())
	}

	for i, strat := range e.cfg.Byzantine {
		e.byzMsgs[i] = strat.Messages(t, i, e.view)
	}

	// (2) Broadcast barrier.
	pending := 0
	for i := 0; i < e.cfg.N; i++ {
		e.hasBcast[i] = false
		if e.cmds[i] == nil || t > e.crashRound[i] {
			continue
		}
		e.cmds[i] <- nodeCmd{kind: cmdBroadcast}
		pending++
	}
	for ; pending > 0; pending-- {
		r := <-e.replies
		e.broadcasts[r.node] = r.msg
		e.hasBcast[r.node] = true
		if e.needSize {
			e.bcastSize[r.node] = wire.Size(r.msg)
		}
	}
	if e.hooks.Recorder != nil {
		for i := 0; i < e.cfg.N; i++ {
			if e.hasBcast[i] {
				e.hooks.Recorder.Record(trace.Event{
					Kind: trace.KindBroadcast, Round: t, Node: i,
					Value: e.broadcasts[i].Value, Phase: e.broadcasts[i].Phase,
				})
			}
			if c, ok := e.cfg.Crashes[i]; ok && c.Round == t {
				e.hooks.Recorder.Record(trace.Event{Kind: trace.KindCrash, Round: t, Node: i})
			}
		}
	}

	// (3) Build per-receiver delivery sequences (identical order to the
	// sequential engine: ascending port), into buffers reused across
	// rounds — the delivery barrier below guarantees the worker is done
	// with its buffer before the next round refills it. As in the
	// sequential engine, the gather iterates only actual in-neighbors
	// off the edge set's transposed bitmap, then restores port order.
	roundDelivered := 0
	for v := 0; v < e.cfg.N; v++ {
		if e.cmds[v] == nil || t >= e.crashRound[v] {
			continue
		}
		ds := e.delivBufs[v][:0]
		numbering := e.ports[v]
		e.inbuf = edges.InNeighborsInto(v, e.inbuf[:0])
		for _, u := range e.inbuf {
			var m core.Message
			size := 0
			if e.isByz[u] {
				mp := e.byzMsgs[u][v]
				if mp == nil {
					continue
				}
				m = *mp
				if e.needSize {
					size = wire.Size(m)
				}
			} else {
				if !e.hasBcast[u] {
					continue
				}
				if e.crashRound[u] == t && !e.crashInfo[u].AllowsFinalDelivery(v) {
					continue
				}
				m = e.broadcasts[u]
				size = e.bcastSize[u]
			}
			if e.hasCap {
				if limit := e.cfg.linkCap(u, v); limit > 0 && size > limit {
					e.result.MessagesOversized++
					continue
				}
			}
			ds = append(ds, core.Delivery{Port: numbering.PortOf(u), Msg: m})
			if e.cfg.AccountBandwidth {
				e.result.BytesDelivered += size
			}
		}
		if !numbering.IsIdentity() {
			sortDeliveriesByPort(ds)
		}
		if e.cfg.ShuffleDelivery {
			shuffleDeliveries(ds, e.cfg.ShuffleSeed, t, v)
		}
		e.delivBufs[v] = ds
		roundDelivered += len(ds)
		if e.hooks.Recorder != nil {
			for _, d := range ds {
				e.hooks.Recorder.Record(trace.Event{
					Kind: trace.KindDeliver, Round: t, Node: v, Port: d.Port,
					Value: d.Msg.Value, Phase: d.Msg.Phase,
				})
			}
		}
		e.cmds[v] <- nodeCmd{kind: cmdDeliver, deliveries: ds}
		pending++
	}

	// (4) Delivery barrier: collect replies, then apply callbacks in
	// ascending node order for deterministic observer streams.
	for i := range e.hasReply {
		e.hasReply[i] = false
	}
	for ; pending > 0; pending-- {
		r := <-e.replies
		e.replyBufs[r.node] = r
		e.hasReply[r.node] = true
	}
	for v := 0; v < e.cfg.N; v++ {
		if !e.hasReply[v] {
			continue
		}
		r := &e.replyBufs[v]
		e.snaps[v] = r.snap
		for _, tr := range r.transitions {
			if e.hooks.Observer != nil {
				e.hooks.Observer.OnPhaseEnter(v, tr.from, tr.to, tr.value, t)
			}
			if e.hooks.Recorder != nil {
				e.hooks.Recorder.Record(trace.Event{
					Kind: trace.KindPhase, Round: t, Node: v,
					FromPhase: tr.from, Phase: tr.to, Value: tr.value,
				})
			}
		}
		if r.hasOutput {
			e.noteDecision(v, r.output, t)
		}
	}

	// Adversary-suppressed message accounting (alive sender, receiver
	// able to receive in round t, no link) — the same fast path and
	// word-wise mask fold as the sequential engine, so both report
	// identical counts.
	e.result.MessagesDelivered += roundDelivered
	var roundLost int
	if e.lostFast {
		roundLost = e.cfg.N*(e.cfg.N-1) - roundDelivered
	} else {
		roundLost = countLost(t, e.cfg.N, e.isByz, e.crashRound, edges, e.recvMask)
	}
	e.result.MessagesLost += roundLost

	if ro, ok := e.hooks.Observer.(RoundObserver); ok {
		for i := 0; i < e.cfg.N; i++ {
			running := e.cmds[i] != nil && t+1 <= e.crashRound[i]
			e.rvRunning[i] = running
			if running {
				e.rvValues[i] = e.snaps[i].Value
			} else {
				e.rvValues[i] = 0
			}
		}
		ro.OnRoundEnd(t, RoundValues{values: e.rvValues, running: e.rvRunning})
	}

	if e.hooks.Metrics != nil {
		e.emitRound(t, roundDelivered, roundLost)
	}
	e.round++
}

// emitRound mirrors Engine.emitRound over the end-of-round snapshots:
// same sample semantics, so both engines feed a sink identical series
// for identical configurations.
func (e *ConcurrentEngine) emitRound(t, delivered, lost int) {
	s := metrics.RoundSample{Round: t, Delivered: delivered, Lost: lost}
	var lo, hi float64
	for i := 0; i < e.cfg.N; i++ {
		if e.cfg.Procs[i] == nil {
			continue
		}
		if e.decided[i] {
			s.Decided++
		}
		if t+1 > e.crashRound[i] {
			continue
		}
		v := e.snaps[i].Value
		if s.Running == 0 {
			lo, hi = v, v
		} else {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		s.Running++
	}
	if s.Running > 0 {
		s.Range = hi - lo
	}
	e.hooks.Metrics.RoundDone(s)
}

func (e *ConcurrentEngine) noteDecision(node int, v float64, round int) {
	if e.decided[node] {
		return
	}
	e.decided[node] = true
	e.outputs[node] = v
	e.decideRound[node] = round
	if e.hooks.Observer != nil {
		e.hooks.Observer.OnDecide(node, v, round)
	}
	if e.hooks.Recorder != nil {
		e.hooks.Recorder.Record(trace.Event{Kind: trace.KindDecide, Round: round, Node: node, Value: v})
	}
}

func (e *ConcurrentEngine) allDecided() bool {
	for _, i := range e.faultFree {
		if !e.decided[i] {
			return false
		}
	}
	return true
}
