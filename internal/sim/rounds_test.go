package sim

import (
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/fault"
	"anondyn/internal/network"
)

// TestAdversarySeesMonotonicRounds: the engines must consult the
// adversary exactly once per round with strictly increasing round
// numbers — stateful adversaries (RandomDegree, Probabilistic) rely on
// it.
func TestAdversarySeesMonotonicRounds(t *testing.T) {
	var rounds []int
	spy := adversaryFunc(func(round int, view adversary.View) *network.EdgeSet {
		rounds = append(rounds, round)
		return network.Complete(view.N())
	})
	cfg := Config{
		N:         5,
		Procs:     dacProcs(t, 5, 4, spread(5)),
		Adversary: spy,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if len(rounds) != res.Rounds {
		t.Fatalf("adversary consulted %d times for %d rounds", len(rounds), res.Rounds)
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("round sequence broken at index %d: got %d", i, r)
		}
	}
}

// TestRoundObserverValues: the optional per-round hook sees exactly the
// running (non-crashed, non-Byzantine) nodes with their post-round
// values.
type roundSpy struct {
	observerLog
	perRound []map[int]float64
}

func (r *roundSpy) OnRoundEnd(round int, values RoundValues) {
	cp := make(map[int]float64, values.Len())
	values.Range(func(node int, v float64) { cp[node] = v })
	r.perRound = append(r.perRound, cp)
}

func TestRoundObserverValues(t *testing.T) {
	n := 5
	spy := &roundSpy{observerLog: *newObserverLog()}
	cfg := Config{
		N:         n,
		F:         2,
		Procs:     dacProcs(t, n, 4, spread(n)),
		Crashes:   fault.Schedule{1: fault.CrashAt(1)},
		Adversary: adversary.NewComplete(),
		Hooks:     Hooks{Observer: spy},
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(3)
	if len(spy.perRound) != 3 {
		t.Fatalf("round hook fired %d times, want 3", len(spy.perRound))
	}
	// Round 0: everyone running.
	if len(spy.perRound[0]) != n {
		t.Errorf("round 0 values = %d nodes, want %d", len(spy.perRound[0]), n)
	}
	// Round 1 onwards: node 1 is gone.
	for r := 1; r < 3; r++ {
		if _, ok := spy.perRound[r][1]; ok {
			t.Errorf("round %d still reports the crashed node", r)
		}
		if len(spy.perRound[r]) != n-1 {
			t.Errorf("round %d values = %d nodes, want %d", r, len(spy.perRound[r]), n-1)
		}
	}
}
