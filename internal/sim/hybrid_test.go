package sim

import (
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/fault"
)

// The paper's fault model is hybrid: "up to f nodes may suffer crash or
// Byzantine faults" (§I) — both kinds may appear in one execution as
// long as their total stays within f. A crash is a strict special case
// of Byzantine behavior, so DBAC must tolerate any mix.

func TestDBACHybridCrashAndByzantine(t *testing.T) {
	n, f := 16, 3
	byz := map[int]fault.Strategy{
		4:  fault.Equivocator{Low: 0, High: 1},
		11: fault.Extremist{Value: 0},
	}
	crashes := fault.Schedule{7: fault.CrashAt(2)} // 2 Byzantine + 1 crash = f
	cfg := Config{
		N:         n,
		F:         f,
		Procs:     dbacProcs(t, n, f, 14, spread(n), byz),
		Byzantine: byz,
		Crashes:   crashes,
		Adversary: adversary.NewComplete(),
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided {
		t.Fatal("DBAC undecided under a hybrid crash+Byzantine pattern within f")
	}
	if !res.Valid() {
		t.Errorf("validity violated: %v", res.Outputs)
	}
	if res.OutputRange() > 1e-3 {
		t.Errorf("range %g too wide after 14 phases", res.OutputRange())
	}
	// The crash-scheduled node is excluded from H.
	for _, ff := range res.FaultFree {
		if ff == 7 || ff == 4 || ff == 11 {
			t.Errorf("faulty node %d in the fault-free set", ff)
		}
	}
}

func TestDBACHybridAtRotatingThreshold(t *testing.T) {
	// The harder setting: only the threshold degree per round, faults
	// mixed. DBAC's termination proof needs ⌊(n+3f)/2⌋ fault-free-
	// reachable senders per window; the rotating adversary provides
	// links from ALL nodes over time, crashed ones contributing nothing
	// — the quorum still fills because ⌊(n+3f)/2⌋+1 counts self and the
	// rotation keeps cycling fresh fault-free senders.
	n, f := 16, 3
	byz := map[int]fault.Strategy{
		0: fault.NewRandomNoise(5),
		8: fault.Equivocator{Low: 0, High: 1},
	}
	crashes := fault.Schedule{15: fault.CrashSilent(0)}
	rot, err := adversary.NewRotating((n + 3*f) / 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		N:         n,
		F:         f,
		Procs:     dbacProcs(t, n, f, 14, spread(n), byz),
		Byzantine: byz,
		Crashes:   crashes,
		Adversary: rot,
		MaxRounds: 3000,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided {
		t.Fatal("DBAC undecided at the rotating threshold with hybrid faults")
	}
	if !res.Valid() || res.OutputRange() > 1e-3 {
		t.Errorf("valid=%v range=%g", res.Valid(), res.OutputRange())
	}
}

func TestEngineStepAPIs(t *testing.T) {
	n := 5
	cfg := Config{
		N:         n,
		Procs:     dacProcs(t, n, 6, spread(n)),
		Adversary: adversary.NewComplete(),
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Round() != 0 {
		t.Errorf("initial Round = %d", eng.Round())
	}
	eng.Step()
	if eng.Round() != 1 {
		t.Errorf("Round after one Step = %d", eng.Round())
	}
	res := eng.RunRounds(2)
	if eng.Round() != 3 || res.Rounds != 3 {
		t.Errorf("Round = %d, res.Rounds = %d, want 3", eng.Round(), res.Rounds)
	}
	if eng.Proc(0) == nil || eng.Proc(0).Phase() != 3 {
		t.Errorf("Proc(0) phase = %v, want 3 (one phase per complete round)", eng.Proc(0).Phase())
	}
	// Run continues from where stepping left off.
	final := eng.Run()
	if final.Rounds != 6 || !final.Decided {
		t.Errorf("final: rounds=%d decided=%v", final.Rounds, final.Decided)
	}
}
