package sim

import (
	"math"
	"slices"

	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/network"
)

// neverCrashes marks nodes without a scheduled crash in the dense
// crash-round arrays: every round index compares below it, so the
// alive checks need no special case.
const neverCrashes = math.MaxInt

// fillCrashState flattens a crash schedule into dense per-node arrays —
// the round loop and the per-delivery partial-crash check never probe
// the schedule map. rounds[i] holds node i's crash round (neverCrashes
// when unscheduled): "alive in t" is t ≤ rounds[i], "fully alive
// through t" is t < rounds[i], matching fault.Schedule's semantics.
func fillCrashState(rounds []int, info []fault.Crash, s fault.Schedule) {
	for i := range rounds {
		rounds[i] = neverCrashes
		info[i] = fault.Crash{}
	}
	for node, c := range s {
		rounds[node] = c.Round
		info[node] = c
	}
}

// Shared pieces of the word-wise delivery core, used identically by the
// sequential and the concurrent engine so the two stay bit-for-bit
// equivalent.

// sortDeliveriesByPort restores the documented ascending-port delivery
// order after a node-order in-neighbor gather. Ports within one
// receiver's round are distinct (the numbering is a bijection), so the
// sorted order is unique — identical to what the reference port loop
// produces. slices.SortFunc is allocation-free, keeping the steady
// round at 0 allocs even under non-identity numberings.
func sortDeliveriesByPort(ds []core.Delivery) {
	slices.SortFunc(ds, func(a, b core.Delivery) int { return a.Port - b.Port })
}

// countLost computes one round's adversary-suppressed message count
// word-wise: first a bitmap of the receivers able to receive in round t
// (not Byzantine, fully alive through the round), then, per alive
// sender, a popcount of the mask bits its out-row does not cover. This
// replaces the former O(n²) Has-probe fallback for faulted
// configurations; mask must be MaskWords(n) words and is overwritten.
func countLost(t, n int, isByz []bool, crashRound []int, edges *network.EdgeSet, mask []uint64) int {
	clear(mask)
	for v := 0; v < n; v++ {
		if isByz[v] || t >= crashRound[v] {
			continue
		}
		mask[v/64] |= 1 << (uint(v) % 64)
	}
	lost := 0
	for u := 0; u < n; u++ {
		// A sender counts while it is Byzantine or still alive at the
		// start of round t (its crash round still broadcasts).
		if !isByz[u] && t > crashRound[u] {
			continue
		}
		miss := edges.OutMissing(u, mask)
		if mask[u/64]&(1<<(uint(u)%64)) != 0 {
			miss-- // (u, u) is never a link; u "missing" itself is no loss
		}
		lost += miss
	}
	return lost
}
