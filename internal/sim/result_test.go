package sim

import (
	"math"
	"testing"
)

func TestResultOutputRange(t *testing.T) {
	r := Result{
		FaultFree: []int{0, 1, 2},
		Outputs:   map[int]float64{0: 0.2, 1: 0.5, 2: 0.4},
	}
	if got := r.OutputRange(); math.Abs(got-0.3) > 1e-15 {
		t.Errorf("range = %g, want 0.3", got)
	}
	if !r.EpsAgreement(0.3) {
		t.Error("EpsAgreement(0.3) = false at range 0.3")
	}
	if r.EpsAgreement(0.29) {
		t.Error("EpsAgreement(0.29) = true at range 0.3")
	}
}

func TestResultOutputRangeUndecided(t *testing.T) {
	r := Result{
		FaultFree: []int{0, 1},
		Outputs:   map[int]float64{0: 0.2},
	}
	if !math.IsInf(r.OutputRange(), 1) {
		t.Error("missing output should make the range +Inf")
	}
	if r.EpsAgreement(10) {
		t.Error("ε-agreement with an undecided node")
	}
}

func TestResultOutputRangeNoFaultFree(t *testing.T) {
	r := Result{}
	if got := r.OutputRange(); got != 0 {
		t.Errorf("vacuous range = %g, want 0", got)
	}
}

func TestResultValid(t *testing.T) {
	r := Result{
		FaultFree: []int{0, 1},
		Inputs:    map[int]float64{0: 0.2, 1: 0.8, 2: 0.5},
		Outputs:   map[int]float64{0: 0.2, 1: 0.8},
	}
	if !r.Valid() {
		t.Error("hull-boundary outputs rejected")
	}
	r.Outputs[1] = 0.81
	if r.Valid() {
		t.Error("output above the hull accepted")
	}
	r.Outputs[1] = 0.8
	r.Outputs[0] = 0.19
	if r.Valid() {
		t.Error("output below the hull accepted")
	}
}

func TestResultValidIgnoresUndecided(t *testing.T) {
	r := Result{
		FaultFree: []int{0, 1},
		Inputs:    map[int]float64{0: 0.4, 1: 0.6},
		Outputs:   map[int]float64{0: 0.5},
	}
	if !r.Valid() {
		t.Error("undecided node should not break validity")
	}
}

func TestResultValidEmptyInputs(t *testing.T) {
	r := Result{FaultFree: []int{0}, Outputs: map[int]float64{0: 0.5}}
	if !r.Valid() {
		t.Error("no recorded inputs: validity is vacuous")
	}
}
