package sim

import (
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/network"
	"anondyn/internal/trace"
)

// perReceiverProbe is a Byzantine strategy that records exactly which
// receivers were offered messages, to verify the engine's intersection
// of Byzantine output with the adversary's edge set.
type perReceiverProbe struct {
	offered map[int]int // receiver → count
}

func (p *perReceiverProbe) Name() string { return "probe" }

func (p *perReceiverProbe) Messages(round, self int, view fault.View) []*core.Message {
	out := make([]*core.Message, view.N())
	for i := range out {
		if i == self {
			continue
		}
		out[i] = &core.Message{Value: 0.5, Phase: 1 << 20}
		p.offered[i]++
	}
	return out
}

// countingProc counts deliveries per port; a minimal Process.
type countingProc struct {
	n        int
	perPort  []int
	received int
}

func newCountingProc(n int) *countingProc { return &countingProc{n: n, perPort: make([]int, n)} }

func (c *countingProc) Broadcast() core.Message { return core.Message{Value: 0.5} }
func (c *countingProc) Deliver(d core.Delivery) {
	c.perPort[d.Port]++
	c.received++
}
func (c *countingProc) EndRound()               {}
func (c *countingProc) Output() (float64, bool) { return 0, false }
func (c *countingProc) Phase() int              { return 0 }
func (c *countingProc) Value() float64          { return 0.5 }

func TestByzantineMessagesRespectEdgeSet(t *testing.T) {
	// Byzantine node 0 offers messages to everyone, but the adversary's
	// graph is a ring: only 0→1 exists, so only node 1 may receive it.
	n := 4
	probe := &perReceiverProbe{offered: make(map[int]int)}
	procs := make([]core.Process, n)
	counters := make([]*countingProc, n)
	for i := 1; i < n; i++ {
		counters[i] = newCountingProc(n)
		procs[i] = counters[i]
	}
	cfg := Config{
		N:         n,
		F:         1,
		Procs:     procs,
		Byzantine: map[int]fault.Strategy{0: probe},
		Adversary: adversary.NewStatic("ring", network.Ring(n)),
		MaxRounds: 3,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(3)
	// Node 1 heard node 0 (port 0) every round; nobody else did.
	if got := counters[1].perPort[0]; got != 3 {
		t.Errorf("node 1 received %d messages from the Byzantine node, want 3", got)
	}
	for i := 2; i < n; i++ {
		if counters[i].perPort[0] != 0 {
			t.Errorf("node %d received Byzantine messages without a link", i)
		}
	}
	// The strategy offered to everyone regardless — the engine must not
	// leak those offers past E(t).
	if probe.offered[2] != 3 {
		t.Errorf("probe bookkeeping broken: %v", probe.offered)
	}
}

func TestByzantineNilEntriesSilent(t *testing.T) {
	n := 3
	procs := make([]core.Process, n)
	counters := make([]*countingProc, n)
	for i := 1; i < n; i++ {
		counters[i] = newCountingProc(n)
		procs[i] = counters[i]
	}
	cfg := Config{
		N:         n,
		F:         1,
		Procs:     procs,
		Byzantine: map[int]fault.Strategy{0: fault.Silent{}},
		Adversary: adversary.NewComplete(),
		MaxRounds: 2,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(2)
	for i := 1; i < n; i++ {
		if counters[i].perPort[0] != 0 {
			t.Errorf("node %d heard a silent Byzantine node", i)
		}
	}
	// The fault-free nodes still hear each other.
	if counters[1].perPort[2] != 2 || counters[2].perPort[1] != 2 {
		t.Error("fault-free traffic disturbed")
	}
}

func TestViewExposesFlags(t *testing.T) {
	// An adaptive adversary must see Crashed/Byzantine flags and
	// current values.
	n := 4
	var sawByz, sawCrash bool
	spy := adversaryFunc(func(round int, view adversary.View) *network.EdgeSet {
		if view.Snapshot(0).Byzantine {
			sawByz = true
		}
		if round >= 2 && view.Snapshot(1).Crashed {
			sawCrash = true
		}
		return network.Complete(n)
	})
	procs := make([]core.Process, n)
	for i := 1; i < n; i++ {
		d, err := core.NewDACPhases(n, i, 50, float64(i)/3)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = d
	}
	cfg := Config{
		N:         n,
		F:         2,
		Procs:     procs,
		Byzantine: map[int]fault.Strategy{0: fault.Silent{}},
		Crashes:   fault.Schedule{1: fault.CrashAt(1)},
		Adversary: spy,
		MaxRounds: 4,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(4)
	if !sawByz {
		t.Error("adversary never saw the Byzantine flag")
	}
	if !sawCrash {
		t.Error("adversary never saw the crash flag")
	}
}

// adversaryFunc adapts a function to the Adversary interface.
type adversaryFunc func(round int, view adversary.View) *network.EdgeSet

func (adversaryFunc) Name() string { return "func" }
func (f adversaryFunc) Edges(t int, view adversary.View) *network.EdgeSet {
	return f(t, view)
}

func TestRecorderEventStream(t *testing.T) {
	n := 3
	rec := trace.NewRecorder()
	cfg := Config{
		N:         n,
		Procs:     dacProcs(t, n, 2, []float64{0, 0.5, 1}),
		Adversary: adversary.NewComplete(),
		Hooks:     Hooks{Recorder: rec},
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided {
		t.Fatal("undecided")
	}
	counts := map[trace.Kind]int{}
	for _, e := range rec.Events() {
		counts[e.Kind]++
	}
	if counts[trace.KindRound] != res.Rounds {
		t.Errorf("round events = %d, want %d", counts[trace.KindRound], res.Rounds)
	}
	if counts[trace.KindBroadcast] != res.Rounds*n {
		t.Errorf("broadcast events = %d, want %d", counts[trace.KindBroadcast], res.Rounds*n)
	}
	if counts[trace.KindDeliver] != res.MessagesDelivered {
		t.Errorf("deliver events = %d, want %d", counts[trace.KindDeliver], res.MessagesDelivered)
	}
	if counts[trace.KindDecide] != n {
		t.Errorf("decide events = %d, want %d", counts[trace.KindDecide], n)
	}
	if counts[trace.KindPhase] == 0 {
		t.Error("no phase events recorded")
	}
}

// TestObserverSeesMultiPhaseJump: a DAC jump across several phases must
// surface as one OnPhaseEnter with to−from > 1.
func TestObserverSeesMultiPhaseJump(t *testing.T) {
	n := 5
	// Node 0 starts at phase 0; node 1 is pre-advanced to phase 3 by
	// feeding it quorums outside the engine.
	ahead, err := core.NewDACPhases(n, 1, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		deliverQuorum(ahead, n, p, 0.5)
	}
	if ahead.Phase() != 3 {
		t.Fatalf("setup: phase = %d, want 3", ahead.Phase())
	}
	behind, err := core.NewDACPhases(n, 0, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	obs := newObserverLog()
	procs := make([]core.Process, n)
	procs[0] = behind
	procs[1] = ahead
	for i := 2; i < n; i++ {
		d, err := core.NewDACPhases(n, i, 10, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = d
	}
	cfg := Config{
		N:         n,
		Procs:     procs,
		Adversary: adversary.NewStatic("toZero", linkInto(n, 0, 1)),
		Hooks:     Hooks{Observer: obs},
		MaxRounds: 1,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	// Node 0 heard only node 1 (phase 3): it must have jumped 0→3.
	trs := obs.phases[0]
	if len(trs) != 3 || trs[0] != 0 || trs[1] != 3 {
		t.Errorf("node 0 transitions = %v, want one 0→3 jump", trs)
	}
}

// deliverQuorum walks a DAC node one phase forward with uniform values.
func deliverQuorum(d *core.DAC, n, phase int, v float64) {
	for port := 0; port < n; port++ {
		if d.Phase() != phase {
			return
		}
		d.Deliver(core.Delivery{Port: port, Msg: core.Message{Value: v, Phase: phase}})
	}
}

// linkInto builds a graph with the single link from→to.
func linkInto(n, to, from int) *network.EdgeSet {
	e := network.NewEdgeSet(n)
	e.Add(from, to)
	return e
}
