package sim

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"anondyn/internal/adversary"
	"anondyn/internal/fault"
	"anondyn/internal/network"
)

// buildPair constructs two identical configurations (fresh Process
// instances, fresh adversaries from the same factory) for the two
// engines.
func buildPair(t *testing.T, mk func() Config) (Config, Config) {
	t.Helper()
	return mk(), mk()
}

// assertSameResult compares everything that must match between engines.
func assertSameResult(t *testing.T, seq, conc *Result) {
	t.Helper()
	if seq.Decided != conc.Decided {
		t.Fatalf("Decided: seq %v, conc %v", seq.Decided, conc.Decided)
	}
	if seq.Rounds != conc.Rounds {
		t.Errorf("Rounds: seq %d, conc %d", seq.Rounds, conc.Rounds)
	}
	if !reflect.DeepEqual(seq.Outputs, conc.Outputs) {
		t.Errorf("Outputs differ:\nseq  %v\nconc %v", seq.Outputs, conc.Outputs)
	}
	if !reflect.DeepEqual(seq.DecideRound, conc.DecideRound) {
		t.Errorf("DecideRound differ:\nseq  %v\nconc %v", seq.DecideRound, conc.DecideRound)
	}
	if seq.MessagesDelivered != conc.MessagesDelivered {
		t.Errorf("MessagesDelivered: seq %d, conc %d", seq.MessagesDelivered, conc.MessagesDelivered)
	}
	if seq.MessagesLost != conc.MessagesLost {
		t.Errorf("MessagesLost: seq %d, conc %d", seq.MessagesLost, conc.MessagesLost)
	}
	if seq.MessagesOversized != conc.MessagesOversized {
		t.Errorf("MessagesOversized: seq %d, conc %d", seq.MessagesOversized, conc.MessagesOversized)
	}
	if seq.BytesDelivered != conc.BytesDelivered {
		t.Errorf("BytesDelivered: seq %d, conc %d", seq.BytesDelivered, conc.BytesDelivered)
	}
}

func runBoth(t *testing.T, mk func() Config) (*Result, *Result) {
	t.Helper()
	seqCfg, concCfg := buildPair(t, mk)
	seqEng, err := NewEngine(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := seqEng.Run()
	concEng, err := NewConcurrentEngine(concCfg)
	if err != nil {
		t.Fatal(err)
	}
	conc := concEng.Run()
	return seq, conc
}

func TestEquivalenceDACRotating(t *testing.T) {
	mk := func() Config {
		rot, err := adversary.NewRotating(3)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			N:                7,
			Procs:            dacProcs(t, 7, 10, spread(7)),
			Adversary:        rot,
			AccountBandwidth: true,
		}
	}
	seq, conc := runBoth(t, mk)
	assertSameResult(t, seq, conc)
	if !seq.Decided {
		t.Error("scenario never decided — equivalence test vacuous")
	}
}

func TestEquivalenceDACCrashesRandomPorts(t *testing.T) {
	mk := func() Config {
		rd, err := adversary.NewRandomDegree(2, 3, 0.1, 4242)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			N:     7,
			F:     2,
			Procs: dacProcs(t, 7, 8, spread(7)),
			Crashes: fault.Schedule{
				2: fault.CrashPartial(3, 0, 5),
				5: fault.CrashSilent(6),
			},
			Adversary: rd,
			Ports:     network.RandomPorts(7, newRand(17)),
		}
	}
	seq, conc := runBoth(t, mk)
	assertSameResult(t, seq, conc)
	if !seq.Decided {
		t.Error("scenario never decided — equivalence test vacuous")
	}
}

func TestEquivalenceDBACByzantine(t *testing.T) {
	mk := func() Config {
		byz := map[int]fault.Strategy{
			3:  fault.Equivocator{Low: 0, High: 1},
			10: fault.NewRandomNoise(555),
		}
		return Config{
			N:         11,
			F:         2,
			Procs:     dbacProcs(t, 11, 2, 10, spread(11), byz),
			Byzantine: byz,
			Adversary: adversary.NewComplete(),
		}
	}
	seq, conc := runBoth(t, mk)
	assertSameResult(t, seq, conc)
	if !seq.Decided {
		t.Error("scenario never decided — equivalence test vacuous")
	}
}

func TestEquivalenceAdaptiveClustered(t *testing.T) {
	mk := func() Config {
		cl, err := adversary.NewClustered(3)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			N:         9,
			Procs:     dacProcs(t, 9, 6, spread(9)),
			Adversary: cl,
			MaxRounds: 400,
		}
	}
	seq, conc := runBoth(t, mk)
	assertSameResult(t, seq, conc)
	if !seq.Decided {
		t.Error("scenario never decided — equivalence test vacuous")
	}
}

func TestEquivalenceUndecidedRun(t *testing.T) {
	mk := func() Config {
		halves, err := adversary.NewHalves(6)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			N:         6,
			Procs:     dacProcs(t, 6, 4, spread(6)),
			Adversary: halves,
			MaxRounds: 40,
		}
	}
	seq, conc := runBoth(t, mk)
	assertSameResult(t, seq, conc)
	if seq.Decided {
		t.Error("split scenario should not decide")
	}
}

// observerLog records callbacks for cross-engine comparison. Within a
// round the concurrent engine groups transitions by node, so we compare
// per-node sequences, which must match exactly.
type observerLog struct {
	phases  map[int][]int
	decides map[int]float64
}

func newObserverLog() *observerLog {
	return &observerLog{phases: make(map[int][]int), decides: make(map[int]float64)}
}

func (o *observerLog) OnPhaseEnter(node, from, to int, value float64, round int) {
	o.phases[node] = append(o.phases[node], from, to, round)
}

func (o *observerLog) OnDecide(node int, value float64, round int) {
	o.decides[node] = value
}

func TestEquivalenceObserverStreams(t *testing.T) {
	mkWith := func(obs Observer) Config {
		rot, err := adversary.NewRotating(4)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			N:         9,
			Procs:     dacProcs(t, 9, 6, spread(9)),
			Adversary: rot,
			Hooks:     Hooks{Observer: obs},
		}
	}
	seqObs, concObs := newObserverLog(), newObserverLog()
	seqEng, err := NewEngine(mkWith(seqObs))
	if err != nil {
		t.Fatal(err)
	}
	seqEng.Run()
	concEng, err := NewConcurrentEngine(mkWith(concObs))
	if err != nil {
		t.Fatal(err)
	}
	concEng.Run()
	if !reflect.DeepEqual(seqObs.phases, concObs.phases) {
		t.Error("per-node phase transition streams differ between engines")
	}
	if !reflect.DeepEqual(seqObs.decides, concObs.decides) {
		t.Error("decide callbacks differ between engines")
	}
}

func TestConcurrentEngineNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cfg := Config{
			N:         7,
			Procs:     dacProcs(t, 7, 5, spread(7)),
			Adversary: adversary.NewComplete(),
		}
		eng, err := NewConcurrentEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res := eng.Run(); !res.Decided {
			t.Fatal("undecided")
		}
	}
	// Give exiting workers a moment, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after — workers leaked", before, runtime.NumGoroutine())
}

func TestConcurrentEngineCloseIdempotent(t *testing.T) {
	cfg := Config{
		N:         3,
		Procs:     dacProcs(t, 3, 2, []float64{0, 0.5, 1}),
		Adversary: adversary.NewComplete(),
	}
	eng, err := NewConcurrentEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided {
		t.Error("undecided")
	}
	eng.Close()
	eng.Close()
}

func TestConcurrentMatchesTheoreticalContraction(t *testing.T) {
	// Concurrent engine, complete graph: same optimal-rate result as the
	// sequential engine’s Theorem 3 behavior.
	cfg := Config{
		N:         9,
		Procs:     dacProcs(t, 9, 10, spread(9)),
		Adversary: adversary.NewComplete(),
	}
	eng, err := NewConcurrentEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided || res.Rounds != 10 {
		t.Fatalf("rounds = %d decided = %v, want 10, true", res.Rounds, res.Decided)
	}
	if res.OutputRange() > math.Pow(0.5, 10) {
		t.Errorf("range %g exceeds (1/2)^10", res.OutputRange())
	}
}
