package core

import "fmt"

// DAC is Algorithm 1 — Dynamic Approximate Consensus — the paper's
// crash-tolerant algorithm. It is correct when n ≥ 2f+1 and the dynamic
// graph satisfies (T, ⌊n/2⌋)-dynaDegree for some finite T (§IV), and it
// converges with the optimal rate 1/2 per phase (Remark 1).
//
// A node keeps only its state value v, the phase index p, the extremes
// v_min/v_max of the phase-p states seen so far, and an n-bit vector R
// marking the ports already counted for phase p. Two transition rules:
//
//   - jump (lines 5–8): a message from a higher phase q > p is adopted
//     wholesale — v ← v_j, p ← q — avoiding any need to retransmit old
//     phases under message loss;
//   - quorum (lines 12–15): after collecting ⌊n/2⌋+1 distinct phase-p
//     states (self included), v ← (v_min+v_max)/2 and p ← p+1.
//
// The node outputs v the first time p reaches pEnd (Equation 2) and then
// keeps broadcasting ⟨v, pEnd⟩ forever so that slower nodes can still
// jump; its phase never exceeds pEnd.
type DAC struct {
	n      int
	pEnd   int
	quorum int
	noJump bool // ablation only: disable lines 5–8 (see NewDACNoJumpPhases)

	v    float64
	p    int
	vmin float64
	vmax float64
	r    []uint64 // R as a bitset: bit port set — phase-p state received from port
	nr   int      // |R|: number of set bits in r

	selfPort int

	decided  bool
	decision float64

	// stats, exposed for analysis
	jumps   int
	quorums int
}

var _ Process = (*DAC)(nil)

// NewDAC builds a DAC node.
//
// n is the network size (known to every node, §II-A); selfPort is the
// port index this node uses for itself in its local numbering; input is
// the node's initial value in [0,1]; eps is the agreement parameter ε.
func NewDAC(n, selfPort int, input, eps float64) (*DAC, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrResilience, n)
	}
	if selfPort < 0 || selfPort >= n {
		return nil, fmt.Errorf("core: self port %d out of range [0,%d)", selfPort, n)
	}
	if err := ValidateInput(input); err != nil {
		return nil, err
	}
	if err := ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	d := &DAC{
		n:        n,
		pEnd:     PEndDAC(eps),
		quorum:   CrashQuorum(n),
		v:        input,
		vmin:     input,
		vmax:     input,
		// A bitset, not []bool: with n nodes each holding an n-entry R
		// vector the per-node ~n bytes would put the whole population at
		// Θ(n²) — a gigabyte-scale footprint at n≥6·10⁴. Bits cut it 8×
		// and make RESET a word-wise clear.
		r:        make([]uint64, (n+63)/64),
		selfPort: selfPort,
	}
	d.r[selfPort>>6] = 1 << (uint(selfPort) & 63)
	d.nr = 1
	d.maybeDecide()
	return d, nil
}

// NewDACPhases builds a DAC node with an explicit output phase instead of
// one derived from ε. Used by convergence experiments that want to watch
// the range contract for a fixed number of phases.
func NewDACPhases(n, selfPort, pEnd int, input float64) (*DAC, error) {
	if pEnd < 0 {
		return nil, fmt.Errorf("core: negative pEnd %d", pEnd)
	}
	d, err := NewDAC(n, selfPort, input, 0.5) // placeholder ε, pEnd overridden below
	if err != nil {
		return nil, err
	}
	d.pEnd = pEnd
	d.decided = false
	d.maybeDecide()
	return d, nil
}

// Broadcast implements Process (Algorithm 1 line 2).
func (d *DAC) Broadcast() Message { return Message{Value: d.v, Phase: d.p} }

// Deliver implements Process (Algorithm 1 lines 4–15).
func (d *DAC) Deliver(dl Delivery) {
	m := dl.Msg
	switch {
	case m.Phase > d.p:
		if d.noJump {
			break // ablation: future states are discarded
		}
		// Jump: copy the future state (lines 5–8).
		d.v = m.Value
		d.p = m.Phase
		if d.p > d.pEnd {
			d.p = d.pEnd // peers never exceed pEnd; defensive clamp
		}
		d.jumps++
		d.reset()
	case m.Phase == d.p:
		// New same-phase state (lines 9–11).
		if w := dl.Port >> 6; d.r[w]&(1<<(uint(dl.Port)&63)) == 0 {
			d.r[w] |= 1 << (uint(dl.Port) & 63)
			d.nr++
			d.store(m.Value)
		}
	}
	// Quorum check (lines 12–15) runs after every processed message.
	if d.p < d.pEnd && d.nr >= d.quorum {
		d.v = (d.vmin + d.vmax) / 2
		d.p++
		d.quorums++
		d.reset()
	}
	d.maybeDecide()
}

// EndRound implements Process; DAC is edge-triggered.
func (d *DAC) EndRound() {}

// Output implements Process (line 16–17).
func (d *DAC) Output() (float64, bool) { return d.decision, d.decided }

// Phase implements Process.
func (d *DAC) Phase() int { return d.p }

// Value implements Process.
func (d *DAC) Value() float64 { return d.v }

// Jumps reports how many times this node took the jump rule (analysis).
func (d *DAC) Jumps() int { return d.jumps }

// Quorums reports how many times this node advanced by quorum (analysis).
func (d *DAC) Quorums() int { return d.quorums }

// PEnd reports the node's output phase.
func (d *DAC) PEnd() int { return d.pEnd }

// Quorum reports the number of distinct same-phase states (self
// included) that triggers a phase advance.
func (d *DAC) Quorum() int { return d.quorum }

// NewDACNoJumpPhases builds the jump-rule ablation of DAC: messages from
// higher phases are discarded instead of adopted (Algorithm 1 lines 5–8
// removed). §IV introduces the jump rule precisely so that nodes need
// not retransmit old-phase states under message loss; without it, any
// adversary that staggers quorums strands slow nodes in phases nobody
// broadcasts anymore — experiment E12 measures the resulting deadlock.
// Ablation only; production users want NewDAC.
func NewDACNoJumpPhases(n, selfPort, pEnd int, input float64) (*DAC, error) {
	d, err := NewDACPhases(n, selfPort, pEnd, input)
	if err != nil {
		return nil, err
	}
	d.noJump = true
	return d, nil
}

// NewDACCustom builds a DAC node with an explicit output phase AND an
// explicit quorum, without enforcing the paper's resilience bound. It
// exists solely for the necessity experiments (E2/E3), which model
// hypothetical algorithms that terminate below the ⌊n/2⌋+1 quorum — and
// then demonstrably violate agreement, exactly as Theorem 9 predicts.
// Production users want NewDAC.
func NewDACCustom(n, selfPort, pEnd, quorum int, input float64) (*DAC, error) {
	if pEnd < 0 {
		return nil, fmt.Errorf("core: negative pEnd %d", pEnd)
	}
	if quorum < 1 || quorum > n {
		return nil, fmt.Errorf("core: quorum %d out of range [1,%d]", quorum, n)
	}
	d, err := NewDAC(n, selfPort, input, 0.5) // placeholder ε; overridden below
	if err != nil {
		return nil, err
	}
	d.pEnd = pEnd
	d.quorum = quorum
	d.decided = false
	d.maybeDecide()
	return d, nil
}

// Reinit implements Reinitializer: return to the freshly-constructed
// state with a new input, keeping n, pEnd, quorum, the self port and
// the ablation flag. Mirrors NewDAC's initialization exactly.
func (d *DAC) Reinit(input float64) {
	d.v = input
	d.p = 0
	d.vmin = input
	d.vmax = input
	clear(d.r)
	d.r[d.selfPort>>6] = 1 << (uint(d.selfPort) & 63)
	d.nr = 1
	d.decided = false
	d.decision = 0
	d.jumps = 0
	d.quorums = 0
	d.maybeDecide()
}

// reset is RESET() of Algorithm 1: clear R except the self entry and
// collapse the phase-p extremes onto the current value.
func (d *DAC) reset() {
	clear(d.r)
	d.r[d.selfPort>>6] = 1 << (uint(d.selfPort) & 63)
	d.nr = 1
	d.vmin = d.v
	d.vmax = d.v
}

// store is STORE(v_j) of Algorithm 1.
func (d *DAC) store(v float64) {
	if v < d.vmin {
		d.vmin = v
	} else if v > d.vmax {
		d.vmax = v
	}
}

func (d *DAC) maybeDecide() {
	if !d.decided && d.p >= d.pEnd {
		d.decided = true
		d.decision = d.v
	}
}
