package core

import (
	"reflect"
	"testing"
)

// driveSequence feeds a fixed delivery schedule to a process and records
// the externally visible trajectory.
func driveSequence(p Process) []Snapshot {
	msgs := []Delivery{
		{Port: 1, Msg: Message{Value: 0.2, Phase: 0}},
		{Port: 2, Msg: Message{Value: 0.9, Phase: 0}},
		{Port: 3, Msg: Message{Value: 0.4, Phase: 1}},
		{Port: 1, Msg: Message{Value: 0.5, Phase: 1}},
		{Port: 4, Msg: Message{Value: 0.6, Phase: 2}},
		{Port: 2, Msg: Message{Value: 0.1, Phase: 2}},
	}
	var out []Snapshot
	for round := 0; round < 4; round++ {
		p.Broadcast()
		for _, d := range msgs {
			p.Deliver(d)
			out = append(out, Snap(p))
		}
		p.EndRound()
	}
	return out
}

// TestDACReinitMatchesFresh: a Reinit DAC must be indistinguishable from
// a newly constructed one on an identical delivery schedule — including
// after the recycled instance was driven through jumps and quorums.
func TestDACReinitMatchesFresh(t *testing.T) {
	recycled, err := NewDACPhases(5, 0, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	driveSequence(recycled) // dirty every field
	recycled.Reinit(0.3)

	fresh, err := NewDACPhases(5, 0, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := driveSequence(recycled), driveSequence(fresh); !reflect.DeepEqual(got, want) {
		t.Errorf("reinit trajectory diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if recycled.Jumps() != fresh.Jumps() || recycled.Quorums() != fresh.Quorums() {
		t.Errorf("stats not reset: jumps %d/%d quorums %d/%d",
			recycled.Jumps(), fresh.Jumps(), recycled.Quorums(), fresh.Quorums())
	}
}

// TestDBACReinitMatchesFresh is the DBAC counterpart.
func TestDBACReinitMatchesFresh(t *testing.T) {
	recycled, err := NewDBACPhases(6, 1, 0, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	driveSequence(recycled)
	recycled.Reinit(0.2)

	fresh, err := NewDBACPhases(6, 1, 0, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := driveSequence(recycled), driveSequence(fresh); !reflect.DeepEqual(got, want) {
		t.Errorf("reinit trajectory diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestReinitImmediateDecision: Reinit with pEnd 0 must re-decide at
// construction time, exactly like the constructor.
func TestReinitImmediateDecision(t *testing.T) {
	d, err := NewDACPhases(3, 0, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d.Reinit(0.9)
	v, ok := d.Output()
	if !ok || v != 0.9 {
		t.Fatalf("Output after Reinit with pEnd=0: (%g, %v), want (0.9, true)", v, ok)
	}
}
