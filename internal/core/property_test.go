package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDeliverySequence drives a Process with an arbitrary message
// stream and checks the state-machine invariants that hold regardless of
// what the network or Byzantine senders do:
//
//  1. the phase is non-decreasing and never exceeds pEnd;
//  2. the state value stays inside the convex hull of the input and all
//     delivered values (both algorithms only copy or average);
//  3. once decided, the output never changes.
func checkStateMachineInvariants(t *testing.T, build func() (Process, int), seed int64) {
	t.Helper()
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(seed))}
	property := func(rawPorts []uint8, rawVals []uint16, rawPhases []uint8) bool {
		p, pEnd := build()
		lo, hi := p.Value(), p.Value()
		lastPhase := p.Phase()
		var out float64
		var decided bool
		steps := len(rawPorts)
		if len(rawVals) < steps {
			steps = len(rawVals)
		}
		if len(rawPhases) < steps {
			steps = len(rawPhases)
		}
		for i := 0; i < steps; i++ {
			port := int(rawPorts[i]) % 6
			val := float64(rawVals[i]) / 65535
			phase := int(rawPhases[i]) % (pEnd + 3) // includes beyond-pEnd claims
			if val < lo {
				lo = val
			}
			if val > hi {
				hi = val
			}
			p.Deliver(Delivery{Port: port, Msg: Message{Value: val, Phase: phase}})

			if p.Phase() < lastPhase {
				t.Logf("phase regressed %d → %d", lastPhase, p.Phase())
				return false
			}
			lastPhase = p.Phase()
			if p.Phase() > pEnd {
				t.Logf("phase %d exceeded pEnd %d", p.Phase(), pEnd)
				return false
			}
			const slack = 1e-12
			if v := p.Value(); v < lo-slack || v > hi+slack {
				t.Logf("value %g escaped hull [%g,%g]", v, lo, hi)
				return false
			}
			if v, ok := p.Output(); ok {
				if decided && v != out {
					t.Logf("output changed %g → %g", out, v)
					return false
				}
				decided, out = true, v
			} else if decided {
				t.Log("decision retracted")
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestDACStateMachineInvariants(t *testing.T) {
	checkStateMachineInvariants(t, func() (Process, int) {
		d, err := NewDACPhases(6, 0, 5, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return d, 5
	}, 42)
}

func TestDBACStateMachineInvariants(t *testing.T) {
	checkStateMachineInvariants(t, func() (Process, int) {
		d, err := NewDBACPhases(6, 1, 0, 5, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return d, 5
	}, 43)
}

func TestDBACPiggybackStateMachineInvariants(t *testing.T) {
	for _, k := range []int{0, 1, 3} {
		checkStateMachineInvariants(t, func() (Process, int) {
			d, err := NewDBACPiggybackPhases(6, 1, 0, k, 5, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			return d, 5
		}, 44+int64(k))
	}
}

// TestDACLockStepQuickConvergence: for random inputs, a fault-free
// lock-step full mesh must satisfy validity and contract at rate ≤ 1/2
// per phase (Theorem 3 with the benign adversary).
func TestDACLockStepQuickConvergence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	property := func(raw [5]uint16) bool {
		n := 5
		const phases = 6
		inputs := make([]float64, n)
		lo, hi := 1.0, 0.0
		for i, r := range raw {
			inputs[i] = float64(r) / 65535
			lo = math.Min(lo, inputs[i])
			hi = math.Max(hi, inputs[i])
		}
		nodes := make([]*DAC, n)
		for i := range nodes {
			d, err := NewDACPhases(n, i, phases, inputs[i])
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = d
		}
		for round := 0; round < phases; round++ {
			msgs := make([]Message, n)
			for i, d := range nodes {
				msgs[i] = d.Broadcast()
			}
			for i, d := range nodes {
				for j := range nodes {
					if j != i {
						d.Deliver(Delivery{Port: j, Msg: msgs[j]})
					}
				}
			}
		}
		vlo, vhi := math.Inf(1), math.Inf(-1)
		for _, d := range nodes {
			v, ok := d.Output()
			if !ok {
				return false
			}
			if v < lo-1e-12 || v > hi+1e-12 {
				return false // validity violated
			}
			vlo = math.Min(vlo, v)
			vhi = math.Max(vhi, v)
		}
		return vhi-vlo <= (hi-lo)*math.Pow(0.5, phases)+1e-12
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
