package core

import (
	"strings"
	"testing"
)

func TestMessageString(t *testing.T) {
	s := Message{Value: 0.25, Phase: 7}.String()
	if !strings.Contains(s, "0.25") || !strings.Contains(s, "7") {
		t.Errorf("String() = %q", s)
	}
}

func TestSnap(t *testing.T) {
	d, err := NewDACPhases(5, 0, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	snap := Snap(d)
	if snap.Phase != 0 || snap.Value != 0.5 || snap.Decided {
		t.Errorf("snap = %+v", snap)
	}
	// Walk to pEnd and re-snap.
	deliver(d, 1, 0.5, 0)
	deliver(d, 2, 0.5, 0)
	deliver(d, 1, 0.5, 1)
	deliver(d, 2, 0.5, 1)
	snap = Snap(d)
	if snap.Phase != 2 || !snap.Decided {
		t.Errorf("snap after deciding = %+v", snap)
	}
	if snap.Crashed || snap.Byzantine {
		t.Error("Snap must not invent fault flags")
	}
}
