package core

import "fmt"

// HistEntry is one piggybacked older state ⟨v, p⟩ carried alongside the
// current state in the §VII bandwidth/convergence trade-off extension.
type HistEntry struct {
	Value float64
	Phase int
}

// DBACPiggyback is the §VII extension of DBAC: each broadcast carries the
// node's current state plus its states from up to K previous phases.
//
// The paper leaves the construction open ("DBAC can improve the
// convergence rate by piggybacking a limited set of old messages"); the
// design implemented here (documented in DESIGN.md) is:
//
//   - a sender remembers the state value it held in each of its last K
//     phases and piggybacks those ⟨v, q⟩ pairs;
//   - a receiver in phase p prefers the entry with phase exactly p when
//     one is present — so as long as the phase skew between sender and
//     receiver is ≤ K, every value used in an update comes from the
//     receiver's own phase, recovering the classical same-phase analysis
//     (rate 1/2) of reliable-channel algorithms;
//   - when the sender is more than K phases ahead, the receiver falls
//     back to plain DBAC behavior and uses the sender's current value
//     (phase ≥ p, admissible by Algorithm 2's rule).
//
// K = 0 degenerates to exactly DBAC. With unlimited K this is the
// full-information simulation the paper sketches.
type DBACPiggyback struct {
	inner *DBAC
	k     int

	// hist[q mod (k+1)] is the state this node held in phase q; a ring
	// indexed by phase so only the last k+1 phases are retained.
	hist      []HistEntry
	exact     int // deliveries satisfied by a same-phase entry (analysis)
	fallbacks int // deliveries that fell back to the current value
}

var _ Process = (*DBACPiggyback)(nil)

// NewDBACPiggyback builds a piggybacking DBAC node with window k ≥ 0.
func NewDBACPiggyback(n, f, selfPort, k int, input, eps float64) (*DBACPiggyback, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative piggyback window %d", k)
	}
	inner, err := NewDBAC(n, f, selfPort, input, eps)
	if err != nil {
		return nil, err
	}
	return newPB(inner, k), nil
}

// NewDBACPiggybackPhases is the explicit-phase-budget variant (see
// NewDBACPhases).
func NewDBACPiggybackPhases(n, f, selfPort, k, pEnd int, input float64) (*DBACPiggyback, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative piggyback window %d", k)
	}
	inner, err := NewDBACPhases(n, f, selfPort, pEnd, input)
	if err != nil {
		return nil, err
	}
	return newPB(inner, k), nil
}

func newPB(inner *DBAC, k int) *DBACPiggyback {
	pb := &DBACPiggyback{
		inner: inner,
		k:     k,
		hist:  make([]HistEntry, k+1),
	}
	for i := range pb.hist {
		pb.hist[i] = HistEntry{Phase: -1} // unset
	}
	pb.hist[0] = HistEntry{Value: inner.v, Phase: 0}
	return pb
}

// Broadcast implements Process: the current state plus up to K prior
// phase states in the History field.
func (pb *DBACPiggyback) Broadcast() Message {
	m := pb.inner.Broadcast()
	if pb.k == 0 {
		return m
	}
	p := pb.inner.p
	hist := make([]HistEntry, 0, pb.k)
	for q := p - 1; q >= 0 && q >= p-pb.k; q-- {
		e := pb.hist[q%(pb.k+1)]
		if e.Phase == q {
			hist = append(hist, e)
		}
	}
	m.History = hist
	return m
}

// Deliver implements Process, preferring the same-phase piggybacked entry.
func (pb *DBACPiggyback) Deliver(dl Delivery) {
	p := pb.inner.p
	m := dl.Msg
	if m.Phase < p {
		// Sender behind us and no usable entry: every history phase is
		// even older. Plain DBAC would ignore this message too.
		pb.forward(dl)
		return
	}
	if m.Phase == p || pb.inner.r[dl.Port] {
		// Current value already has the receiver's phase, or the port is
		// already counted — plain DBAC handles both cases correctly.
		if m.Phase == p && !pb.inner.r[dl.Port] {
			pb.exact++
		}
		pb.forward(dl)
		return
	}
	// Sender is ahead: look for the entry matching our phase exactly.
	for _, e := range m.History {
		if e.Phase == p {
			pb.exact++
			pb.forward(Delivery{Port: dl.Port, Msg: Message{Value: e.Value, Phase: e.Phase}})
			return
		}
	}
	// Skew exceeds K: fall back to the sender's current value.
	pb.fallbacks++
	pb.forward(dl)
}

// forward hands a (possibly rewritten) delivery to the inner DBAC and
// refreshes the history ring after any phase advance.
func (pb *DBACPiggyback) forward(dl Delivery) {
	before := pb.inner.p
	pb.inner.Deliver(Delivery{Port: dl.Port, Msg: Message{Value: dl.Msg.Value, Phase: dl.Msg.Phase}})
	if pb.inner.p != before {
		pb.hist[pb.inner.p%(pb.k+1)] = HistEntry{Value: pb.inner.v, Phase: pb.inner.p}
	}
}

// EndRound implements Process.
func (pb *DBACPiggyback) EndRound() {}

// Output implements Process.
func (pb *DBACPiggyback) Output() (float64, bool) { return pb.inner.Output() }

// Phase implements Process.
func (pb *DBACPiggyback) Phase() int { return pb.inner.Phase() }

// Value implements Process.
func (pb *DBACPiggyback) Value() float64 { return pb.inner.Value() }

// Window reports the piggyback window K.
func (pb *DBACPiggyback) Window() int { return pb.k }

// ExactDeliveries reports deliveries resolved with a same-phase value.
func (pb *DBACPiggyback) ExactDeliveries() int { return pb.exact }

// FallbackDeliveries reports deliveries that used an ahead-phase value.
func (pb *DBACPiggyback) FallbackDeliveries() int { return pb.fallbacks }
