// Package core implements the paper's primary contribution: the DAC and
// DBAC approximate-consensus algorithms for anonymous dynamic networks
// (Zhang & Tseng, ICDCS 2024), together with the state-machine interface
// that the simulation engines drive.
//
// Nodes are anonymous: a message carries only a state value and a phase
// index. Receivers distinguish senders exclusively through their local
// port numbering, which the network layer supplies with each delivery.
package core

import "fmt"

// Message is the only unit of communication in the model: the tuple
// ⟨v, p⟩ broadcast by a node in every round (Algorithm 1/2, line 2).
// The sender identity is deliberately absent — anonymity is a property of
// the model, and the receiving port is attached by the network layer at
// delivery time, never by the sender.
type Message struct {
	// Value is the sender's current state value, in [0,1] for fault-free
	// nodes (inputs are scaled per §II-C).
	Value float64
	// Phase is the sender's current phase index p.
	Phase int
	// History optionally carries the sender's states from recent earlier
	// phases (the §VII bandwidth/convergence trade-off extension and the
	// full-information baseline). Plain DAC/DBAC leave it nil — their
	// messages stay within the O(log n)-bit budget. Receivers must treat
	// the slice as read-only.
	History []HistEntry
}

// String renders the message the way the paper writes it.
func (m Message) String() string {
	return fmt.Sprintf("⟨v=%.6g, p=%d⟩", m.Value, m.Phase)
}

// Delivery is a message tagged with the receiver-local port it arrived on.
// Ports are the receiver's private bijection over the node set (§II-A);
// two receivers may use different ports for the same sender, so a port is
// meaningless outside the receiving node.
type Delivery struct {
	// Port is the receiver-local port number in [0, n), identifying the
	// incoming link the message arrived on. The underlying communication
	// layer is authenticated: a Byzantine sender cannot forge the port.
	Port int
	// Msg is the received message.
	Msg Message
}
