package core

import (
	"testing"
)

func TestPiggybackValidation(t *testing.T) {
	if _, err := NewDBACPiggyback(6, 1, 0, -1, 0.5, 0.1); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewDBACPiggyback(5, 1, 0, 2, 0.5, 0.1); err == nil {
		t.Error("n=5f accepted")
	}
	if _, err := NewDBACPiggyback(6, 1, 0, 2, 0.5, 0.1); err != nil {
		t.Errorf("valid construction rejected: %v", err)
	}
}

func TestPiggybackZeroWindowMatchesDBAC(t *testing.T) {
	// K=0 must behave byte-for-byte like plain DBAC on any delivery
	// sequence.
	pb, err := NewDBACPiggybackPhases(6, 1, 0, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDBACPhases(6, 1, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	seq := []struct {
		port  int
		value float64
		phase int
	}{
		{1, 0.1, 0}, {2, 0.9, 0}, {3, 0.4, 1}, {4, 0.6, 0},
		{1, 0.2, 1}, {2, 0.8, 1}, {3, 0.5, 2}, {5, 0.55, 1},
		{4, 0.45, 2}, {1, 0.5, 2}, {2, 0.5, 2}, {5, 0.5, 3},
	}
	for i, d := range seq {
		pb.Deliver(Delivery{Port: d.port, Msg: Message{Value: d.value, Phase: d.phase}})
		db.Deliver(Delivery{Port: d.port, Msg: Message{Value: d.value, Phase: d.phase}})
		if pb.Phase() != db.Phase() || pb.Value() != db.Value() {
			t.Fatalf("step %d: pb (p=%d,v=%g) diverged from dbac (p=%d,v=%g)",
				i, pb.Phase(), pb.Value(), db.Phase(), db.Value())
		}
	}
	bm := pb.Broadcast()
	if len(bm.History) != 0 {
		t.Errorf("K=0 broadcast carries history (%d entries)", len(bm.History))
	}
}

func TestPiggybackBroadcastCarriesHistory(t *testing.T) {
	pb, err := NewDBACPiggybackPhases(6, 1, 0, 3, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Walk two phases.
	for phase := 0; phase < 2; phase++ {
		for port := 1; port <= 4; port++ {
			pb.Deliver(Delivery{Port: port, Msg: Message{Value: 0.5, Phase: phase}})
		}
	}
	if pb.Phase() != 2 {
		t.Fatalf("setup: phase = %d, want 2", pb.Phase())
	}
	m := pb.Broadcast()
	if m.Phase != 2 {
		t.Errorf("broadcast phase = %d, want 2", m.Phase)
	}
	if len(m.History) != 2 {
		t.Fatalf("history length = %d, want 2 (phases 1 and 0)", len(m.History))
	}
	if m.History[0].Phase != 1 || m.History[1].Phase != 0 {
		t.Errorf("history phases = %d,%d, want 1,0", m.History[0].Phase, m.History[1].Phase)
	}
	if m.History[1].Value != 0.5 {
		t.Errorf("phase-0 history value = %g, want the initial 0.5", m.History[1].Value)
	}
}

func TestPiggybackPrefersSamePhaseEntry(t *testing.T) {
	// Receiver at phase 0; sender claims phase 2 with current value 0.9
	// but history entry (phase 0, 0.1). With K ≥ skew the receiver must
	// use 0.1, not 0.9.
	pb, err := NewDBACPiggybackPhases(6, 1, 0, 2, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ahead := Message{
		Value: 0.9, Phase: 2,
		History: []HistEntry{{Value: 0.2, Phase: 1}, {Value: 0.1, Phase: 0}},
	}
	pb.Deliver(Delivery{Port: 1, Msg: ahead})
	if pb.ExactDeliveries() != 1 {
		t.Fatalf("exact deliveries = %d, want 1", pb.ExactDeliveries())
	}
	// Fill the quorum with three more phase-0 values.
	for port := 2; port <= 4; port++ {
		pb.Deliver(Delivery{Port: port, Msg: Message{Value: 0.5, Phase: 0}})
	}
	if pb.Phase() != 1 {
		t.Fatalf("phase = %d, want 1", pb.Phase())
	}
	// Multiset {0.5(self), 0.1, 0.5, 0.5, 0.5}: Rlow={0.1,0.5}→0.5;
	// Rhigh={0.5,0.5}→0.5 → v=0.5. Had it used 0.9: Rhigh={0.9,0.5},
	// min 0.5 — same… pick values that separate: rerun with distinct
	// fills below.
	pb2, err := NewDBACPiggybackPhases(6, 1, 0, 2, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pb2.Deliver(Delivery{Port: 1, Msg: ahead})
	pb2.Deliver(Delivery{Port: 2, Msg: Message{Value: 0.3, Phase: 0}})
	pb2.Deliver(Delivery{Port: 3, Msg: Message{Value: 0.3, Phase: 0}})
	pb2.Deliver(Delivery{Port: 4, Msg: Message{Value: 0.3, Phase: 0}})
	// Used entry 0.1: multiset {0.5, 0.1, .3, .3, .3}: Rlow={0.1,0.3}→
	// max .3; Rhigh={0.5,0.3}→min .3 → v=0.3. Used current 0.9 instead:
	// {0.5, 0.9, .3,.3,.3}: Rlow={.3,.3}→.3; Rhigh={.9,.5}→.5 → v=0.4.
	if got := pb2.Value(); got != 0.3 {
		t.Errorf("value = %g, want 0.3 (same-phase entry not used)", got)
	}
}

func TestPiggybackFallbackWhenSkewExceedsWindow(t *testing.T) {
	pb, err := NewDBACPiggybackPhases(6, 1, 0, 1, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Sender at phase 5 with window 1: history has only phase 4 — no
	// phase-0 entry, so the receiver must fall back to the current
	// value (phase ≥ 0 is admissible DBAC behavior).
	far := Message{Value: 0.9, Phase: 5, History: []HistEntry{{Value: 0.8, Phase: 4}}}
	pb.Deliver(Delivery{Port: 1, Msg: far})
	if pb.FallbackDeliveries() != 1 {
		t.Errorf("fallbacks = %d, want 1", pb.FallbackDeliveries())
	}
	for port := 2; port <= 4; port++ {
		pb.Deliver(Delivery{Port: port, Msg: Message{Value: 0.5, Phase: 0}})
	}
	if pb.Phase() != 1 {
		t.Errorf("phase = %d, want 1 (fallback must count towards quorum)", pb.Phase())
	}
}

func TestPiggybackIgnoresBehindSender(t *testing.T) {
	pb, err := NewDBACPiggybackPhases(6, 1, 0, 2, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Advance pb to phase 1 first.
	for port := 1; port <= 4; port++ {
		pb.Deliver(Delivery{Port: port, Msg: Message{Value: 0.5, Phase: 0}})
	}
	if pb.Phase() != 1 {
		t.Fatal("setup failed")
	}
	behind := Message{Value: 0.0, Phase: 0}
	pb.Deliver(Delivery{Port: 1, Msg: behind})
	// Port 1 must not be counted at phase 1: three more ports needed.
	pb.Deliver(Delivery{Port: 2, Msg: Message{Value: 0.5, Phase: 1}})
	pb.Deliver(Delivery{Port: 3, Msg: Message{Value: 0.5, Phase: 1}})
	pb.Deliver(Delivery{Port: 4, Msg: Message{Value: 0.5, Phase: 1}})
	if pb.Phase() != 1 {
		t.Fatal("behind-sender message counted towards quorum")
	}
	pb.Deliver(Delivery{Port: 5, Msg: Message{Value: 0.5, Phase: 1}})
	if pb.Phase() != 2 {
		t.Errorf("phase = %d, want 2", pb.Phase())
	}
}

func TestPiggybackWindowAccessor(t *testing.T) {
	pb, err := NewDBACPiggyback(6, 1, 0, 4, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Window() != 4 {
		t.Errorf("Window() = %d, want 4", pb.Window())
	}
}
