package core

import (
	"math"
	"testing"
)

// deliver is a test helper for feeding a message from a port.
func deliver(p Process, port int, value float64, phase int) {
	p.Deliver(Delivery{Port: port, Msg: Message{Value: value, Phase: phase}})
}

func TestNewDACValidation(t *testing.T) {
	if _, err := NewDAC(0, 0, 0.5, 0.1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewDAC(5, 5, 0.5, 0.1); err == nil {
		t.Error("selfPort out of range accepted")
	}
	if _, err := NewDAC(5, -1, 0.5, 0.1); err == nil {
		t.Error("negative selfPort accepted")
	}
	if _, err := NewDAC(5, 0, 1.5, 0.1); err == nil {
		t.Error("input > 1 accepted")
	}
	if _, err := NewDAC(5, 0, 0.5, 0); err == nil {
		t.Error("eps = 0 accepted")
	}
	if _, err := NewDAC(5, 0, 0.5, 0.1); err != nil {
		t.Errorf("valid construction rejected: %v", err)
	}
}

func TestDACInitialState(t *testing.T) {
	d, err := NewDAC(5, 2, 0.25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Phase(); got != 0 {
		t.Errorf("initial phase = %d, want 0", got)
	}
	if got := d.Value(); got != 0.25 {
		t.Errorf("initial value = %g, want 0.25", got)
	}
	if _, decided := d.Output(); decided {
		t.Error("decided at construction with pEnd > 0")
	}
	m := d.Broadcast()
	if m.Value != 0.25 || m.Phase != 0 {
		t.Errorf("broadcast = %v, want ⟨0.25, 0⟩", m)
	}
}

func TestDACQuorumAdvance(t *testing.T) {
	// n=5: quorum ⌊5/2⌋+1 = 3 (self + 2 distinct ports).
	d, err := NewDAC(5, 0, 0.5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.0, 0)
	if d.Phase() != 0 {
		t.Fatalf("advanced with 2/3 quorum")
	}
	deliver(d, 2, 1.0, 0)
	if d.Phase() != 1 {
		t.Fatalf("phase = %d after quorum, want 1", d.Phase())
	}
	// v ← (min+max)/2 over {0.5, 0.0, 1.0} = (0+1)/2.
	if got := d.Value(); got != 0.5 {
		t.Errorf("value = %g, want 0.5", got)
	}
	if d.Quorums() != 1 || d.Jumps() != 0 {
		t.Errorf("quorums=%d jumps=%d, want 1,0", d.Quorums(), d.Jumps())
	}
}

func TestDACDuplicatePortIgnored(t *testing.T) {
	d, err := NewDAC(5, 0, 0.5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.0, 0)
	deliver(d, 1, 0.9, 0) // same port, same phase: line 9 guard
	if d.Phase() != 0 {
		t.Fatal("duplicate port counted towards quorum")
	}
	deliver(d, 2, 1.0, 0)
	if d.Phase() != 1 {
		t.Fatal("did not advance after a genuine second port")
	}
	// The duplicate's value must not have entered the extremes:
	// midpoint of {0.5, 0.0, 1.0} = 0.5, not of {…,0.9}.
	if got := d.Value(); got != 0.5 {
		t.Errorf("value = %g, want 0.5 (duplicate stored?)", got)
	}
}

func TestDACSelfCounted(t *testing.T) {
	// n=1: quorum is 1, the node is alone and already has itself, so it
	// must walk to pEnd without any delivery as soon as messages trigger
	// checks. With no deliveries at all it stays put (DAC is
	// edge-triggered) — the engine's EndRound does not advance phases.
	d, err := NewDAC(3, 1, 0.5, 0.5) // quorum 2
	if err != nil {
		t.Fatal(err)
	}
	// One other port suffices: self (port 1) + port 0.
	deliver(d, 0, 0.5, 0)
	if d.Phase() != 1 {
		t.Errorf("phase = %d, want 1 (self must count)", d.Phase())
	}
}

func TestDACSelfPortDeliveryIgnored(t *testing.T) {
	// A (buggy or malicious) delivery arriving on the node's own port
	// must not double-count: R[self] is already 1.
	d, err := NewDAC(5, 0, 0.5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 0, 0.0, 0) // self port
	deliver(d, 0, 0.0, 0)
	if d.Phase() != 0 {
		t.Error("self-port deliveries advanced the phase")
	}
}

func TestDACJump(t *testing.T) {
	d, err := NewDAC(5, 0, 0.5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 3, 0.75, 4)
	if d.Phase() != 4 {
		t.Fatalf("phase = %d after jump, want 4", d.Phase())
	}
	if d.Value() != 0.75 {
		t.Errorf("value = %g after jump, want 0.75 (copied)", d.Value())
	}
	if d.Jumps() != 1 {
		t.Errorf("jumps = %d, want 1", d.Jumps())
	}
	// R must have been reset: two fresh ports advance to phase 5.
	deliver(d, 1, 0.7, 4)
	deliver(d, 2, 0.8, 4)
	if d.Phase() != 5 {
		t.Errorf("phase = %d, want 5 (reset after jump)", d.Phase())
	}
	// Midpoint over {0.75, 0.7, 0.8}.
	if got := d.Value(); got != 0.75 {
		t.Errorf("value = %g, want 0.75", got)
	}
}

func TestDACStaleMessageIgnored(t *testing.T) {
	d, err := NewDAC(5, 0, 0.5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 3, 0.75, 4) // jump to 4
	deliver(d, 1, 0.0, 2)  // stale: phase 2 < 4
	if d.Phase() != 4 {
		t.Error("stale message changed phase")
	}
	if d.Value() != 0.75 {
		t.Error("stale message changed value")
	}
}

func TestDACOutputAtPEnd(t *testing.T) {
	eps := 0.25 // pEnd = 2
	d, err := NewDAC(3, 0, 0.0, eps)
	if err != nil {
		t.Fatal(err)
	}
	if d.PEnd() != 2 {
		t.Fatalf("pEnd = %d, want 2", d.PEnd())
	}
	deliver(d, 1, 1.0, 0) // quorum (2): phase 1, v = 0.5
	if _, ok := d.Output(); ok {
		t.Fatal("decided before pEnd")
	}
	deliver(d, 1, 0.5, 1) // quorum: phase 2, v = 0.5
	v, ok := d.Output()
	if !ok {
		t.Fatal("not decided at pEnd")
	}
	if v != 0.5 {
		t.Errorf("output = %g, want 0.5", v)
	}
	// The decision is frozen even if state keeps evolving.
	deliver(d, 2, 0.9, 2)
	if v2, _ := d.Output(); v2 != v {
		t.Errorf("output changed after deciding: %g → %g", v, v2)
	}
}

func TestDACPhaseNeverExceedsPEnd(t *testing.T) {
	d, err := NewDAC(3, 0, 0.5, 0.5) // pEnd = 1
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.5, 0)
	if d.Phase() != 1 {
		t.Fatalf("phase = %d, want 1", d.Phase())
	}
	// More quorums at pEnd must not push the phase further.
	deliver(d, 1, 0.4, 1)
	deliver(d, 2, 0.6, 1)
	if d.Phase() != 1 {
		t.Errorf("phase = %d advanced beyond pEnd", d.Phase())
	}
	// Defensive clamp: a (protocol-violating) message claiming a phase
	// beyond pEnd cannot drag us past it.
	deliver(d, 2, 0.6, 99)
	if d.Phase() > 1 {
		t.Errorf("phase = %d exceeded pEnd via jump", d.Phase())
	}
}

func TestDACJumpToExactlyPEndDecides(t *testing.T) {
	d, err := NewDAC(5, 0, 0.5, 0.25) // pEnd = 2
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.123, 2)
	v, ok := d.Output()
	if !ok {
		t.Fatal("jump to pEnd did not decide")
	}
	if v != 0.123 {
		t.Errorf("output = %g, want the copied 0.123", v)
	}
}

func TestNewDACPhases(t *testing.T) {
	d, err := NewDACPhases(5, 0, 7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.PEnd() != 7 {
		t.Errorf("pEnd = %d, want 7", d.PEnd())
	}
	if _, ok := d.Output(); ok {
		t.Error("decided at construction")
	}
	d0, err := NewDACPhases(5, 0, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d0.Output(); !ok || v != 0.5 {
		t.Errorf("pEnd=0 node: output (%g,%v), want (0.5,true)", v, ok)
	}
	if _, err := NewDACPhases(5, 0, -1, 0.5); err == nil {
		t.Error("negative pEnd accepted")
	}
}

func TestNewDACCustomQuorum(t *testing.T) {
	// Quorum 2 on n=5 advances after a single foreign port.
	d, err := NewDACCustom(5, 0, 3, 2, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 4, 1.0, 0)
	if d.Phase() != 1 {
		t.Errorf("phase = %d with custom quorum 2, want 1", d.Phase())
	}
	if d.Value() != 0.5 {
		t.Errorf("value = %g, want 0.5", d.Value())
	}
	if _, err := NewDACCustom(5, 0, 3, 0, 0.5); err == nil {
		t.Error("quorum 0 accepted")
	}
	if _, err := NewDACCustom(5, 0, 3, 6, 0.5); err == nil {
		t.Error("quorum > n accepted")
	}
}

func TestDACConvergenceRateHalf(t *testing.T) {
	// Lock-step full-mesh simulation of 5 DAC nodes entirely in-package:
	// every phase, everyone hears everyone, so range must halve exactly
	// (the extremes average towards the midpoint of the full multiset —
	// quorum = 3 of 5, worst case per Claim 2 still ≤ 1/2 here because
	// delivery is complete).
	n := 5
	inputs := []float64{0, 0.25, 0.5, 0.75, 1}
	nodes := make([]*DAC, n)
	for i := range nodes {
		d, err := NewDACPhases(n, i, 8, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = d
	}
	rangeOf := func() float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, d := range nodes {
			lo = math.Min(lo, d.Value())
			hi = math.Max(hi, d.Value())
		}
		return hi - lo
	}
	prev := rangeOf()
	for round := 0; round < 8; round++ {
		msgs := make([]Message, n)
		for i, d := range nodes {
			msgs[i] = d.Broadcast()
		}
		for i, d := range nodes {
			for j := range nodes {
				if j != i {
					d.Deliver(Delivery{Port: j, Msg: msgs[j]})
				}
			}
		}
		cur := rangeOf()
		if prev > 1e-12 && cur > prev/2+1e-12 {
			t.Fatalf("round %d: range %g → %g contracted slower than 1/2", round, prev, cur)
		}
		prev = cur
	}
	if prev > math.Pow(0.5, 8) {
		t.Errorf("final range %g exceeds (1/2)^8", prev)
	}
}
