package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBoundedLowKeepsSmallest(t *testing.T) {
	b := newBoundedLow(3)
	for _, v := range []float64{0.9, 0.1, 0.5, 0.7, 0.3, 0.2} {
		b.add(v)
	}
	// 3 smallest of the stream are {0.1, 0.2, 0.3}; max(Rlow) = 0.3.
	if got := b.max(); got != 0.3 {
		t.Errorf("max(Rlow) = %g, want 0.3", got)
	}
	if b.len() != 3 {
		t.Errorf("len = %d, want 3", b.len())
	}
}

func TestBoundedHighKeepsLargest(t *testing.T) {
	b := newBoundedHigh(3)
	for _, v := range []float64{0.9, 0.1, 0.5, 0.7, 0.3, 0.2} {
		b.add(v)
	}
	// 3 largest are {0.5, 0.7, 0.9}; min(Rhigh) = 0.5.
	if got := b.min(); got != 0.5 {
		t.Errorf("min(Rhigh) = %g, want 0.5", got)
	}
}

func TestBoundedDuplicatesCountWithMultiplicity(t *testing.T) {
	b := newBoundedLow(2)
	b.add(0.5)
	b.add(0.5)
	b.add(0.9)
	if got := b.max(); got != 0.5 {
		t.Errorf("max(Rlow) = %g, want 0.5 (multiset semantics)", got)
	}
}

func TestBoundedClear(t *testing.T) {
	b := newBoundedLow(2)
	b.add(0.1)
	b.add(0.2)
	b.clear()
	if b.len() != 0 {
		t.Errorf("len after clear = %d, want 0", b.len())
	}
	b.add(0.7)
	if got := b.max(); got != 0.7 {
		t.Errorf("max after refill = %g, want 0.7", got)
	}
}

func TestBoundedUnderfilled(t *testing.T) {
	lo := newBoundedLow(4)
	lo.add(0.3)
	lo.add(0.6)
	if got := lo.max(); got != 0.6 {
		t.Errorf("underfilled max = %g, want 0.6", got)
	}
	hi := newBoundedHigh(4)
	hi.add(0.3)
	hi.add(0.6)
	if got := hi.min(); got != 0.3 {
		t.Errorf("underfilled min = %g, want 0.3", got)
	}
}

// TestBoundedQuick property: after any stream of values, max(Rlow)
// equals the k-th smallest of the stream (counting multiplicity) and
// min(Rhigh) the k-th largest — Algorithm 2's r_{f+1} and
// r_{|R|−f} selectors.
func TestBoundedQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(1)),
	}
	property := func(raw []uint16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw)%4 + 1
		lo := newBoundedLow(k)
		hi := newBoundedHigh(k)
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) / 65535
			lo.add(vals[i])
			hi.add(vals[i])
		}
		sort.Float64s(vals)
		kk := k
		if kk > len(vals) {
			kk = len(vals)
		}
		wantLow := vals[kk-1]
		wantHigh := vals[len(vals)-kk]
		return lo.max() == wantLow && hi.min() == wantHigh
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
