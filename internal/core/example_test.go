package core_test

import (
	"fmt"

	"anondyn/internal/core"
)

// ExampleDAC drives Algorithm 1 by hand: a 5-node network where this
// node (self port 0) hears two peers, completing the ⌊n/2⌋+1 = 3 quorum
// and advancing one phase with the midpoint update.
func ExampleDAC() {
	node, err := core.NewDAC(5, 0, 0.5, 0.25) // input 0.5, ε = 0.25 → p_end = 2
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("broadcast:", node.Broadcast())

	node.Deliver(core.Delivery{Port: 1, Msg: core.Message{Value: 0.0, Phase: 0}})
	node.Deliver(core.Delivery{Port: 2, Msg: core.Message{Value: 1.0, Phase: 0}})
	fmt.Println("phase:", node.Phase(), "value:", node.Value())

	// A message from a future phase makes the node jump.
	node.Deliver(core.Delivery{Port: 3, Msg: core.Message{Value: 0.4375, Phase: 2}})
	out, decided := node.Output()
	fmt.Println("decided:", decided, "output:", out)
	// Output:
	// broadcast: ⟨v=0.5, p=0⟩
	// phase: 1 value: 0.5
	// decided: true output: 0.4375
}

// ExampleDBAC shows Algorithm 2's trimmed update: with f = 1, the
// single extreme (Byzantine) value cannot drag the new state outside
// the honest range.
func ExampleDBAC() {
	node, err := core.NewDBACPhases(6, 1, 0, 10, 0.5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	node.Deliver(core.Delivery{Port: 1, Msg: core.Message{Value: 0.4, Phase: 0}})
	node.Deliver(core.Delivery{Port: 2, Msg: core.Message{Value: 0.6, Phase: 0}})
	node.Deliver(core.Delivery{Port: 3, Msg: core.Message{Value: 0.5, Phase: 0}})
	node.Deliver(core.Delivery{Port: 4, Msg: core.Message{Value: 1.0, Phase: 99}}) // Byzantine
	fmt.Println("phase:", node.Phase())
	fmt.Printf("value: %.2f (the Byzantine 1.0 was trimmed)\n", node.Value())
	// Output:
	// phase: 1
	// value: 0.55 (the Byzantine 1.0 was trimmed)
}
