package core

import (
	"errors"
	"math"
	"testing"
)

func TestCrashQuorum(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {6, 4}, {7, 4}, {100, 51}, {101, 51},
	}
	for _, tt := range tests {
		if got := CrashQuorum(tt.n); got != tt.want {
			t.Errorf("CrashQuorum(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestByzQuorum(t *testing.T) {
	tests := []struct {
		n, f, want int
	}{
		{6, 1, 5},   // ⌊9/2⌋+1
		{11, 2, 9},  // ⌊17/2⌋+1
		{16, 3, 13}, // ⌊25/2⌋+1
		{21, 4, 17}, // ⌊33/2⌋+1
		{5, 0, 3},   // degenerates to ⌊n/2⌋+1
	}
	for _, tt := range tests {
		if got := ByzQuorum(tt.n, tt.f); got != tt.want {
			t.Errorf("ByzQuorum(%d,%d) = %d, want %d", tt.n, tt.f, got, tt.want)
		}
	}
}

func TestDegreeThresholds(t *testing.T) {
	if got := CrashDegree(7); got != 3 {
		t.Errorf("CrashDegree(7) = %d, want 3", got)
	}
	if got := CrashDegree(8); got != 4 {
		t.Errorf("CrashDegree(8) = %d, want 4", got)
	}
	if got := ByzDegree(11, 2); got != 8 {
		t.Errorf("ByzDegree(11,2) = %d, want 8", got)
	}
	// Quorum is always threshold+1: the node's own value tops up the
	// D incoming neighbors.
	for n := 1; n <= 40; n++ {
		if CrashQuorum(n) != CrashDegree(n)+1 {
			t.Errorf("n=%d: CrashQuorum %d != CrashDegree+1 %d", n, CrashQuorum(n), CrashDegree(n)+1)
		}
		for f := 0; 5*f+1 <= n; f++ {
			if ByzQuorum(n, f) != ByzDegree(n, f)+1 {
				t.Errorf("n=%d f=%d: ByzQuorum %d != ByzDegree+1 %d", n, f, ByzQuorum(n, f), ByzDegree(n, f)+1)
			}
		}
	}
}

func TestPEndDAC(t *testing.T) {
	tests := []struct {
		eps  float64
		want int
	}{
		{0.5, 1}, {0.25, 2}, {0.1, 4}, {1e-3, 10}, {1e-6, 20}, {1, 0}, {2, 0},
	}
	for _, tt := range tests {
		if got := PEndDAC(tt.eps); got != tt.want {
			t.Errorf("PEndDAC(%g) = %d, want %d", tt.eps, got, tt.want)
		}
	}
	// (1/2)^pEnd ≤ ε must hold (Equation 2's defining property).
	for _, eps := range []float64{0.7, 0.3, 0.01, 1e-4, 1e-9} {
		p := PEndDAC(eps)
		if math.Pow(0.5, float64(p)) > eps {
			t.Errorf("eps=%g: (1/2)^%d > eps", eps, p)
		}
	}
}

func TestPEndDBAC(t *testing.T) {
	// The defining property of Equation 6: (1−2⁻ⁿ)^pEnd ≤ ε.
	for _, tt := range []struct {
		eps float64
		n   int
	}{{0.5, 6}, {1e-3, 6}, {1e-3, 11}, {0.01, 8}} {
		p := PEndDBAC(tt.eps, tt.n)
		rate := 1 - math.Pow(2, -float64(tt.n))
		if math.Pow(rate, float64(p)) > tt.eps {
			t.Errorf("eps=%g n=%d: rate^%d > eps", tt.eps, tt.n, p)
		}
		// And p is minimal.
		if p > 0 && math.Pow(rate, float64(p-1)) <= tt.eps {
			t.Errorf("eps=%g n=%d: pEnd %d not minimal", tt.eps, tt.n, p)
		}
	}
	if got := PEndDBAC(1, 10); got != 0 {
		t.Errorf("PEndDBAC(1,10) = %d, want 0", got)
	}
	// Large n must not overflow into nonsense.
	if got := PEndDBAC(1e-3, 400); got <= 0 {
		t.Errorf("PEndDBAC(1e-3,400) = %d, want a large positive value", got)
	}
}

func TestValidateCrash(t *testing.T) {
	if err := ValidateCrash(3, 1); err != nil {
		t.Errorf("ValidateCrash(3,1) = %v, want nil", err)
	}
	if err := ValidateCrash(2, 1); !errors.Is(err, ErrResilience) {
		t.Errorf("ValidateCrash(2,1) = %v, want ErrResilience", err)
	}
	if err := ValidateCrash(0, 0); !errors.Is(err, ErrResilience) {
		t.Errorf("ValidateCrash(0,0) = %v, want ErrResilience", err)
	}
	if err := ValidateCrash(5, -1); !errors.Is(err, ErrResilience) {
		t.Errorf("ValidateCrash(5,-1) = %v, want ErrResilience", err)
	}
}

func TestValidateByz(t *testing.T) {
	if err := ValidateByz(6, 1); err != nil {
		t.Errorf("ValidateByz(6,1) = %v, want nil", err)
	}
	if err := ValidateByz(5, 1); !errors.Is(err, ErrResilience) {
		t.Errorf("ValidateByz(5,1) = %v, want ErrResilience", err)
	}
	if err := ValidateByz(10, 2); !errors.Is(err, ErrResilience) {
		t.Errorf("ValidateByz(10,2) = %v, want ErrResilience", err)
	}
}

func TestValidateEpsilonAndInput(t *testing.T) {
	for _, eps := range []float64{0, -1, 1, 2, math.NaN()} {
		if err := ValidateEpsilon(eps); err == nil {
			t.Errorf("ValidateEpsilon(%g) = nil, want error", eps)
		}
	}
	for _, eps := range []float64{0.5, 1e-9, 0.999} {
		if err := ValidateEpsilon(eps); err != nil {
			t.Errorf("ValidateEpsilon(%g) = %v, want nil", eps, err)
		}
	}
	for _, x := range []float64{-0.01, 1.01, math.NaN()} {
		if err := ValidateInput(x); !errors.Is(err, ErrInput) {
			t.Errorf("ValidateInput(%g) = %v, want ErrInput", x, err)
		}
	}
	for _, x := range []float64{0, 0.5, 1} {
		if err := ValidateInput(x); err != nil {
			t.Errorf("ValidateInput(%g) = %v, want nil", x, err)
		}
	}
}
