package core

// BulkDeliverer is an optional Process extension: a receiver that can
// consume one round's deliveries as a single slice. The engines probe
// for it once per Reset and hand each receiver its whole in-edge batch
// in ONE dynamic call per round instead of one per edge — at sparse
// scale the per-edge interface dispatch is a measurable floor (~14 ns)
// that this seam amortizes, because the inner Deliver calls dispatch
// statically on the concrete type.
//
// The contract is fold equivalence: DeliverAll(ds) must leave the
// process in exactly the state that calling Deliver(ds[0]),
// Deliver(ds[1]), … in slice order would — asserted for every
// implementation by the property tests. The slice is engine-owned
// scratch; implementations must not retain it.
type BulkDeliverer interface {
	DeliverAll(ds []Delivery)
}

// DeliverAll implements BulkDeliverer as the in-order fold of Deliver;
// the inner calls dispatch statically on *DAC.
func (d *DAC) DeliverAll(ds []Delivery) {
	for i := range ds {
		d.Deliver(ds[i])
	}
}

// DeliverAll implements BulkDeliverer as the in-order fold of Deliver;
// the inner calls dispatch statically on *DBAC.
func (d *DBAC) DeliverAll(ds []Delivery) {
	for i := range ds {
		d.Deliver(ds[i])
	}
}

// DeliverAll implements BulkDeliverer as the in-order fold of Deliver;
// the inner calls dispatch statically on *DBACPiggyback (and from there
// on the inner *DBAC).
func (pb *DBACPiggyback) DeliverAll(ds []Delivery) {
	for i := range ds {
		pb.Deliver(ds[i])
	}
}

var (
	_ BulkDeliverer = (*DAC)(nil)
	_ BulkDeliverer = (*DBAC)(nil)
	_ BulkDeliverer = (*DBACPiggyback)(nil)
)
