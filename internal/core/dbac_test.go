package core

import (
	"math"
	"testing"
)

func TestNewDBACValidation(t *testing.T) {
	if _, err := NewDBAC(5, 1, 0, 0.5, 0.1); err == nil {
		t.Error("n=5f accepted")
	}
	if _, err := NewDBAC(6, 1, 6, 0.5, 0.1); err == nil {
		t.Error("selfPort out of range accepted")
	}
	if _, err := NewDBAC(6, 1, 0, -0.5, 0.1); err == nil {
		t.Error("negative input accepted")
	}
	if _, err := NewDBAC(6, 1, 0, 0.5, 1); err == nil {
		t.Error("eps=1 accepted")
	}
	if _, err := NewDBAC(6, 1, 0, 0.5, 0.1); err != nil {
		t.Errorf("valid construction rejected: %v", err)
	}
}

func TestDBACQuorumAdvance(t *testing.T) {
	// n=6, f=1: quorum ⌊9/2⌋+1 = 5 (self + 4 ports).
	d, err := NewDBACPhases(6, 1, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Quorum() != 5 {
		t.Fatalf("quorum = %d, want 5", d.Quorum())
	}
	deliver(d, 1, 0.0, 0)
	deliver(d, 2, 1.0, 0)
	deliver(d, 3, 0.25, 0)
	if d.Phase() != 0 {
		t.Fatal("advanced with 4/5")
	}
	deliver(d, 4, 0.75, 0)
	if d.Phase() != 1 {
		t.Fatalf("phase = %d, want 1", d.Phase())
	}
	// Received multiset {0.5(self), 0, 1, 0.25, 0.75}; f+1 = 2 lowest =
	// {0, 0.25}, 2 highest = {0.75, 1}. v ← (max(Rlow)+min(Rhigh))/2 =
	// (0.25+0.75)/2 = 0.5.
	if got := d.Value(); got != 0.5 {
		t.Errorf("value = %g, want 0.5", got)
	}
}

func TestDBACTrimsExtremes(t *testing.T) {
	// A single Byzantine extreme value cannot drag the update outside
	// the fault-free range: with f=1 the trim removes the 1 lowest and 1
	// highest received value.
	d, err := NewDBACPhases(6, 1, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.4, 0)
	deliver(d, 2, 0.6, 0)
	deliver(d, 3, 0.5, 0)
	deliver(d, 4, 1.0, 5) // Byzantine: extreme value, inflated phase
	if d.Phase() != 1 {
		t.Fatalf("phase = %d, want 1", d.Phase())
	}
	// Multiset {0.5, 0.4, 0.6, 0.5, 1.0}: Rlow={0.4,0.5}→max 0.5;
	// Rhigh={0.6,1.0}→min 0.6; v = 0.55 ∈ [0.4, 0.6].
	if got := d.Value(); math.Abs(got-0.55) > 1e-12 {
		t.Errorf("value = %g, want 0.55", got)
	}
	if got := d.Value(); got < 0.4 || got > 0.6 {
		t.Errorf("value %g escaped the fault-free interval [0.4,0.6]", got)
	}
}

func TestDBACAcceptsHigherPhase(t *testing.T) {
	// Messages from phase ≥ p count (Algorithm 2 line 5) — unlike DAC
	// there is no jump, but ahead values fill the quorum.
	d, err := NewDBACPhases(6, 1, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.5, 3)
	deliver(d, 2, 0.5, 7)
	deliver(d, 3, 0.5, 1)
	deliver(d, 4, 0.5, 2)
	if d.Phase() != 1 {
		t.Errorf("phase = %d, want 1 (higher-phase messages count)", d.Phase())
	}
}

func TestDBACNeverJumps(t *testing.T) {
	d, err := NewDBACPhases(6, 1, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.9, 9)
	if d.Phase() != 0 {
		t.Errorf("phase = %d, want 0 (DBAC must not jump)", d.Phase())
	}
	if d.Value() != 0.5 {
		t.Errorf("value = %g changed before quorum", d.Value())
	}
}

func TestDBACRejectsStaleAndDuplicates(t *testing.T) {
	d, err := NewDBACPhases(6, 1, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Advance to phase 1.
	for port := 1; port <= 4; port++ {
		deliver(d, port, 0.5, 0)
	}
	if d.Phase() != 1 {
		t.Fatal("setup failed")
	}
	deliver(d, 1, 0.0, 0) // stale phase
	deliver(d, 2, 0.0, 1)
	deliver(d, 2, 0.0, 1) // duplicate port
	deliver(d, 2, 0.0, 2) // still same port
	// Counted so far at phase 1: self + port 2 = 2 of 5.
	deliver(d, 3, 1.0, 1)
	deliver(d, 4, 1.0, 1)
	if d.Phase() != 1 {
		t.Fatal("advanced on 4/5 (stale or duplicate counted)")
	}
	deliver(d, 5, 1.0, 1)
	if d.Phase() != 2 {
		t.Errorf("phase = %d, want 2", d.Phase())
	}
}

func TestDBACSelfValueInMultiset(t *testing.T) {
	// After a phase advance, the node's own new value must seed
	// Rlow/Rhigh (DESIGN.md clarification): with quorum 5 and only 4
	// foreign low values, the self value is what max(Rlow)/min(Rhigh)
	// computations see as the fifth.
	d, err := NewDBACPhases(6, 1, 0, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for port := 1; port <= 4; port++ {
		deliver(d, port, 0.0, 0)
	}
	// Multiset {1(self), 0, 0, 0, 0}: Rlow max = 0, Rhigh = {0, 1} min
	// = 0 → v = 0. Without the self store, Rhigh would be {0,0} and the
	// result the same — so probe the opposite side too.
	if got := d.Value(); got != 0 {
		t.Fatalf("value = %g, want 0", got)
	}
	// Now at phase 1 with v=0; feed 4 high values: multiset
	// {0(self), 1, 1, 1, 1}: Rlow = {0,1} → max 1? No: Rlow keeps the 2
	// smallest = {0, 1} → max(Rlow) = 1, min(Rhigh)=1 → v = 1 — if the
	// self value were missing, Rlow = {1,1} and still v = 1. The
	// distinguishing case needs mixed values:
	for port := 1; port <= 3; port++ {
		deliver(d, port, 0.8, 1)
	}
	deliver(d, 4, 0.2, 1)
	// Multiset {0(self), 0.8, 0.8, 0.8, 0.2}: sorted {0, .2, .8, .8, .8}
	// Rlow = {0, 0.2} → max 0.2; Rhigh = {0.8, 0.8} → min 0.8;
	// v = 0.5. Without the self store: {.2,.8,.8,.8} → Rlow max .8,
	// v = 0.8 — the test separates the two.
	if got := d.Value(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("value = %g, want 0.5 (self value missing from multiset?)", got)
	}
}

func TestDBACOutputFreezes(t *testing.T) {
	d, err := NewDBACPhases(6, 1, 0, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for port := 1; port <= 4; port++ {
		deliver(d, port, 0.5, 0)
	}
	v, ok := d.Output()
	if !ok {
		t.Fatal("not decided at pEnd=1")
	}
	for port := 1; port <= 4; port++ {
		deliver(d, port, 1.0, 1)
	}
	if v2, _ := d.Output(); v2 != v {
		t.Errorf("output moved after deciding: %g → %g", v, v2)
	}
	if d.Phase() != 1 {
		t.Errorf("phase = %d advanced beyond pEnd", d.Phase())
	}
}

func TestNewDBACCustom(t *testing.T) {
	// n = 5f is rejected by NewDBAC but allowed by the necessity-
	// experiment constructor.
	d, err := NewDBACCustom(10, 2, 0, 5, 8, 0.5)
	if err != nil {
		t.Fatalf("custom constructor rejected n=5f: %v", err)
	}
	if d.Quorum() != 8 {
		t.Errorf("quorum = %d, want 8", d.Quorum())
	}
	if _, err := NewDBACCustom(10, 2, 0, 5, 11, 0.5); err == nil {
		t.Error("quorum > n accepted")
	}
	if _, err := NewDBACCustom(10, 10, 0, 5, 8, 0.5); err == nil {
		t.Error("f ≥ n accepted")
	}
}

func TestDBACEquationSixPEnd(t *testing.T) {
	d, err := NewDBAC(6, 1, 0, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.PEnd(), PEndDBAC(0.01, 6); got != want {
		t.Errorf("pEnd = %d, want Equation 6's %d", got, want)
	}
}

func TestDBACLockStepConvergence(t *testing.T) {
	// 6 fault-free DBAC nodes (f=1 budget, zero actual faults) in
	// lock-step full mesh: the observed range must contract and end
	// within the fault-free input hull.
	n, f := 6, 1
	inputs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	nodes := make([]*DBAC, n)
	for i := range nodes {
		d, err := NewDBACPhases(n, f, i, 20, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = d
	}
	for round := 0; round < 20; round++ {
		msgs := make([]Message, n)
		for i, d := range nodes {
			msgs[i] = d.Broadcast()
		}
		for i, d := range nodes {
			for j := range nodes {
				if j != i {
					d.Deliver(Delivery{Port: j, Msg: msgs[j]})
				}
			}
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, d := range nodes {
		v := d.Value()
		if v < 0 || v > 1 {
			t.Errorf("value %g escaped input hull", v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo > 1e-4 {
		t.Errorf("range after 20 lock-step phases = %g, want ≤ 1e-4", hi-lo)
	}
}
