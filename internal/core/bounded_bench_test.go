package core

import (
	"math/rand"
	"sort"
	"testing"
)

// The DESIGN.md ablation: R_low/R_high as bounded flat slices (what
// Algorithm 2's STORE implements) versus the naive "keep everything,
// sort, index" alternative. The bounded variant is what limited
// bandwidth forces on the algorithm; these benchmarks quantify what it
// also saves computationally per phase.

func benchValues(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	return vals
}

func BenchmarkBoundedStore(b *testing.B) {
	for _, f := range []int{1, 4, 16} {
		vals := benchValues(256)
		b.Run(quorumName(f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lo := newBoundedLow(f + 1)
				hi := newBoundedHigh(f + 1)
				for _, v := range vals {
					lo.add(v)
					hi.add(v)
				}
				if lo.max() < 0 || hi.min() > 1 {
					b.Fatal("impossible extremes")
				}
			}
		})
	}
}

func BenchmarkFullSortStore(b *testing.B) {
	for _, f := range []int{1, 4, 16} {
		vals := benchValues(256)
		b.Run(quorumName(f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				all := make([]float64, 0, len(vals))
				all = append(all, vals...)
				sort.Float64s(all)
				maxLow := all[f]
				minHigh := all[len(all)-f-1]
				if maxLow < 0 || minHigh > 1 {
					b.Fatal("impossible extremes")
				}
			}
		})
	}
}

func quorumName(f int) string {
	switch f {
	case 1:
		return "f=1"
	case 4:
		return "f=4"
	default:
		return "f=16"
	}
}

// BenchmarkDACDeliver measures the per-message cost of the DAC state
// machine at a realistic size.
func BenchmarkDACDeliver(b *testing.B) {
	n := 25
	d, err := NewDACPhases(n, 0, 1<<30, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	vals := benchValues(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port := i%(n-1) + 1
		d.Deliver(Delivery{Port: port, Msg: Message{Value: vals[port], Phase: d.Phase()}})
	}
}

// BenchmarkDBACDeliver measures the per-message cost of the DBAC state
// machine (bounded multiset maintenance included).
func BenchmarkDBACDeliver(b *testing.B) {
	n, f := 25, 4
	d, err := NewDBACPhases(n, f, 0, 1<<30, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	vals := benchValues(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port := i%(n-1) + 1
		d.Deliver(Delivery{Port: port, Msg: Message{Value: vals[port], Phase: d.Phase()}})
	}
}
