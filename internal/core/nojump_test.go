package core

import "testing"

func TestDACNoJumpIgnoresFutureStates(t *testing.T) {
	d, err := NewDACNoJumpPhases(5, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.9, 7)
	if d.Phase() != 0 {
		t.Errorf("phase = %d, want 0 (ablation must not jump)", d.Phase())
	}
	if d.Value() != 0.5 {
		t.Errorf("value = %g, want untouched 0.5", d.Value())
	}
	if d.Jumps() != 0 {
		t.Errorf("jumps = %d, want 0", d.Jumps())
	}
	// Same-phase quorum still works.
	deliver(d, 1, 0.4, 0)
	deliver(d, 2, 0.6, 0)
	if d.Phase() != 1 {
		t.Errorf("phase = %d, want 1 (quorum path intact)", d.Phase())
	}
}

func TestDACNoJumpStrandsBehindQuorum(t *testing.T) {
	// The deadlock in miniature: the node needs 3 distinct phase-0
	// states, but only two senders remain at phase 0 — everyone else
	// has moved on and their messages are discarded.
	d, err := NewDACNoJumpPhases(5, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	deliver(d, 1, 0.4, 0)
	for round := 0; round < 50; round++ {
		deliver(d, 2, 0.6, 3)
		deliver(d, 3, 0.7, 4)
		deliver(d, 4, 0.8, 5)
	}
	if d.Phase() != 0 {
		t.Errorf("phase = %d, want 0 (stranded)", d.Phase())
	}
	// A real DAC in the same position jumps immediately.
	real, err := NewDACPhases(5, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	deliver(real, 2, 0.6, 3)
	if real.Phase() != 3 {
		t.Errorf("real DAC phase = %d, want 3", real.Phase())
	}
}

func TestDACNoJumpValidation(t *testing.T) {
	if _, err := NewDACNoJumpPhases(5, 0, -1, 0.5); err == nil {
		t.Error("negative pEnd accepted")
	}
	if _, err := NewDACNoJumpPhases(5, 9, 3, 0.5); err == nil {
		t.Error("bad selfPort accepted")
	}
}
