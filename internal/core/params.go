package core

import (
	"errors"
	"fmt"
	"math"
)

// Model-level errors shared by the algorithm constructors.
var (
	// ErrResilience reports an (n, f) pair outside the algorithm's
	// resilience bound (n ≥ 2f+1 for DAC, n ≥ 5f+1 for DBAC).
	ErrResilience = errors.New("core: (n, f) violates the resilience bound")
	// ErrEpsilon reports a non-positive or ≥ range-width ε.
	ErrEpsilon = errors.New("core: epsilon must be in (0, 1)")
	// ErrInput reports an input value outside the scaled range [0, 1].
	ErrInput = errors.New("core: input must lie in [0, 1]")
)

// CrashQuorum is the number of same-phase states (including the node's
// own) that lets a DAC node advance a phase: ⌊n/2⌋ + 1 (Algorithm 1,
// line 12).
func CrashQuorum(n int) int { return n/2 + 1 }

// ByzQuorum is the number of phase-≥p states (including the node's own)
// that lets a DBAC node advance a phase: ⌊(n+3f)/2⌋ + 1 (Algorithm 2,
// line 8).
func ByzQuorum(n, f int) int { return (n+3*f)/2 + 1 }

// CrashDegree is the dynaDegree D required by DAC: ⌊n/2⌋ (Theorem 9 —
// necessary — and §IV — sufficient).
func CrashDegree(n int) int { return n / 2 }

// ByzDegree is the dynaDegree D required by DBAC: ⌊(n+3f)/2⌋
// (Theorem 10 and §V).
func ByzDegree(n, f int) int { return (n + 3*f) / 2 }

// PEndDAC is the output phase for DAC: p_end = log_{1/2}(ε) rounded up,
// i.e. the smallest p with (1/2)^p ≤ ε (Equation 2). Inputs span at most
// [0,1], so after p_end phases the fault-free range is ≤ ε.
func PEndDAC(eps float64) int {
	if eps >= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(1 / eps)))
}

// PEndDBAC is the output phase for DBAC: p_end = log ε / log(1 − 2⁻ⁿ)
// rounded up (Equation 6). The bound is loose (the proof contracts by
// only 1−2⁻ⁿ per phase); for n beyond ~25 it overflows any practical
// round budget, which is why RunConfig allows an explicit phase override
// for measurement runs (EXPERIMENTS.md, E5).
func PEndDBAC(eps float64, n int) int {
	if eps >= 1 {
		return 0
	}
	rate := 1 - math.Pow(2, -float64(n))
	p := math.Log(eps) / math.Log(rate)
	if math.IsInf(p, 0) || p > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(math.Ceil(p))
}

// ValidateCrash checks the DAC preconditions n ≥ 2f+1, f ≥ 0, n ≥ 1.
func ValidateCrash(n, f int) error {
	if n < 1 || f < 0 {
		return fmt.Errorf("%w: n=%d f=%d", ErrResilience, n, f)
	}
	if n < 2*f+1 {
		return fmt.Errorf("%w: DAC needs n ≥ 2f+1, got n=%d f=%d", ErrResilience, n, f)
	}
	return nil
}

// ValidateByz checks the DBAC preconditions n ≥ 5f+1, f ≥ 0, n ≥ 1.
func ValidateByz(n, f int) error {
	if n < 1 || f < 0 {
		return fmt.Errorf("%w: n=%d f=%d", ErrResilience, n, f)
	}
	if n < 5*f+1 {
		return fmt.Errorf("%w: DBAC needs n ≥ 5f+1, got n=%d f=%d", ErrResilience, n, f)
	}
	return nil
}

// ValidateEpsilon checks ε ∈ (0, 1).
func ValidateEpsilon(eps float64) error {
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("%w: got %g", ErrEpsilon, eps)
	}
	return nil
}

// ValidateInput checks x ∈ [0, 1] (inputs are scaled, §II-C).
func ValidateInput(x float64) error {
	if math.IsNaN(x) || x < 0 || x > 1 {
		return fmt.Errorf("%w: got %g", ErrInput, x)
	}
	return nil
}
