package core

// boundedLow keeps the k smallest values it has been given, counting
// multiplicity. It implements R_low of Algorithm 2 (STORE, lines 18–21):
// a new value is appended while fewer than k are held; afterwards it
// displaces the current maximum when smaller.
//
// k = f+1 is tiny in every realistic configuration, so a flat slice with
// linear scans beats a heap on both allocation and constant factors; the
// micro-benchmarks in bounded_bench_test.go pin this down.
type boundedLow struct {
	k    int
	vals []float64
}

func newBoundedLow(k int) boundedLow {
	return boundedLow{k: k, vals: make([]float64, 0, k)}
}

func (b *boundedLow) add(v float64) {
	if len(b.vals) < b.k {
		b.vals = append(b.vals, v)
		return
	}
	mi := b.maxIndex()
	if v < b.vals[mi] {
		b.vals[mi] = v
	}
}

// max returns the largest held value — max(R_low), the (f+1)-st smallest
// value received overall once the list is full.
func (b *boundedLow) max() float64 { return b.vals[b.maxIndex()] }

func (b *boundedLow) maxIndex() int {
	mi := 0
	for i := 1; i < len(b.vals); i++ {
		if b.vals[i] > b.vals[mi] {
			mi = i
		}
	}
	return mi
}

func (b *boundedLow) len() int { return len(b.vals) }

func (b *boundedLow) clear() { b.vals = b.vals[:0] }

// boundedHigh keeps the k largest values — R_high of Algorithm 2
// (STORE, lines 22–25).
type boundedHigh struct {
	k    int
	vals []float64
}

func newBoundedHigh(k int) boundedHigh {
	return boundedHigh{k: k, vals: make([]float64, 0, k)}
}

func (b *boundedHigh) add(v float64) {
	if len(b.vals) < b.k {
		b.vals = append(b.vals, v)
		return
	}
	mi := b.minIndex()
	if v > b.vals[mi] {
		b.vals[mi] = v
	}
}

// min returns the smallest held value — min(R_high), the (f+1)-st largest
// value received overall once the list is full.
func (b *boundedHigh) min() float64 { return b.vals[b.minIndex()] }

func (b *boundedHigh) minIndex() int {
	mi := 0
	for i := 1; i < len(b.vals); i++ {
		if b.vals[i] < b.vals[mi] {
			mi = i
		}
	}
	return mi
}

func (b *boundedHigh) len() int { return len(b.vals) }

func (b *boundedHigh) clear() { b.vals = b.vals[:0] }
