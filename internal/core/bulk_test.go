package core

import (
	"math/rand"
	"testing"
)

// TestDeliverAllFoldEquivalenceProperty is the BulkDeliverer contract:
// for random delivery streams chopped into random chunks, DeliverAll on
// one instance must track Deliver-one-at-a-time on a twin instance
// through every observable after every chunk — including jump/quorum
// phase transitions landing mid-chunk.
func TestDeliverAllFoldEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type pair struct {
		name       string
		bulk, step Process
	}
	mkPairs := func(n, f int, input float64) []pair {
		mk := func(build func() (Process, error)) Process {
			p, err := build()
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		dacA := mk(func() (Process, error) { return NewDACPhases(n, 0, 6, input) })
		dacB := mk(func() (Process, error) { return NewDACPhases(n, 0, 6, input) })
		dbacA := mk(func() (Process, error) { return NewDBACPhases(n, f, 0, 6, input) })
		dbacB := mk(func() (Process, error) { return NewDBACPhases(n, f, 0, 6, input) })
		pbA := mk(func() (Process, error) { return NewDBACPiggybackPhases(n, f, 0, 2, 6, input) })
		pbB := mk(func() (Process, error) { return NewDBACPiggybackPhases(n, f, 0, 2, 6, input) })
		return []pair{
			{"DAC", dacA, dacB},
			{"DBAC", dbacA, dbacB},
			{"DBACPiggyback", pbA, pbB},
		}
	}
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(60)
		f := rng.Intn(1 + (n-1)/5)
		input := rng.Float64()
		for _, pr := range mkPairs(n, f, input) {
			bulk, ok := pr.bulk.(BulkDeliverer)
			if !ok {
				t.Fatalf("%s does not implement BulkDeliverer", pr.name)
			}
			for round := 0; round < 30; round++ {
				chunk := make([]Delivery, rng.Intn(n))
				maxPhase := pr.step.Phase() + 3
				for i := range chunk {
					hist := []HistEntry(nil)
					if rng.Intn(3) == 0 {
						hist = []HistEntry{{Value: rng.Float64(), Phase: rng.Intn(maxPhase + 1)}}
					}
					chunk[i] = Delivery{
						Port: 1 + rng.Intn(n-1), // port 0 is self, never delivered by engines
						Msg: Message{
							Value:   rng.Float64(),
							Phase:   rng.Intn(maxPhase + 1),
							History: hist,
						},
					}
				}
				bulk.DeliverAll(chunk)
				for i := range chunk {
					pr.step.Deliver(chunk[i])
				}
				pr.bulk.EndRound()
				pr.step.EndRound()
				if got, want := pr.bulk.Broadcast(), pr.step.Broadcast(); got.Value != want.Value || got.Phase != want.Phase {
					t.Fatalf("trial %d %s round %d: Broadcast ⟨%v,%d⟩ vs ⟨%v,%d⟩",
						trial, pr.name, round, got.Value, got.Phase, want.Value, want.Phase)
				}
				if got, want := pr.bulk.Phase(), pr.step.Phase(); got != want {
					t.Fatalf("trial %d %s round %d: Phase %d vs %d", trial, pr.name, round, got, want)
				}
				if got, want := pr.bulk.Value(), pr.step.Value(); got != want {
					t.Fatalf("trial %d %s round %d: Value %v vs %v", trial, pr.name, round, got, want)
				}
				gv, gok := pr.bulk.Output()
				wv, wok := pr.step.Output()
				if gv != wv || gok != wok {
					t.Fatalf("trial %d %s round %d: Output (%v,%v) vs (%v,%v)",
						trial, pr.name, round, gv, gok, wv, wok)
				}
			}
		}
	}
}
