package core

import "fmt"

// DBAC is Algorithm 2 — Dynamic Byzantine Approximate Consensus. It is
// correct when n ≥ 5f+1 and the dynamic graph satisfies
// (T, ⌊(n+3f)/2⌋)-dynaDegree (§V), with per-phase convergence rate at
// most 1 − 2⁻ⁿ (Theorem 7).
//
// Unlike DAC, nodes never skip phases. A node in phase p counts every
// first message per port whose phase is ≥ p; once ⌊(n+3f)/2⌋+1 ports are
// counted (self included) it updates to the midpoint of the (f+1)-st
// lowest and (f+1)-st highest values collected, which keeps the new state
// inside the fault-free interval no matter what the ≤ f Byzantine values
// were (Lemma 5).
type DBAC struct {
	n      int
	f      int
	pEnd   int
	quorum int

	v float64
	p int

	r    []bool // r[port] — port already counted for the current phase
	nr   int
	low  boundedLow  // f+1 smallest received values this phase
	high boundedHigh // f+1 largest received values this phase

	selfPort int

	decided  bool
	decision float64

	quorums int
}

var _ Process = (*DBAC)(nil)

// NewDBAC builds a DBAC node for a system of n nodes with at most f
// Byzantine faults, agreement parameter eps, and initial value input.
func NewDBAC(n, f, selfPort int, input, eps float64) (*DBAC, error) {
	if err := ValidateByz(n, f); err != nil {
		return nil, err
	}
	if selfPort < 0 || selfPort >= n {
		return nil, fmt.Errorf("core: self port %d out of range [0,%d)", selfPort, n)
	}
	if err := ValidateInput(input); err != nil {
		return nil, err
	}
	if err := ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	return newDBACWithPEnd(n, f, selfPort, input, PEndDBAC(eps, n))
}

// NewDBACPhases builds a DBAC node that outputs after an explicit number
// of phases instead of the (extremely loose) Equation-6 bound. Used by
// measurement runs (E5, E8) that stop once the observed range is ≤ ε.
func NewDBACPhases(n, f, selfPort, pEnd int, input float64) (*DBAC, error) {
	if err := ValidateByz(n, f); err != nil {
		return nil, err
	}
	if selfPort < 0 || selfPort >= n {
		return nil, fmt.Errorf("core: self port %d out of range [0,%d)", selfPort, n)
	}
	if err := ValidateInput(input); err != nil {
		return nil, err
	}
	if pEnd < 0 {
		return nil, fmt.Errorf("core: negative pEnd %d", pEnd)
	}
	return newDBACWithPEnd(n, f, selfPort, input, pEnd)
}

func newDBACWithPEnd(n, f, selfPort int, input float64, pEnd int) (*DBAC, error) {
	d := &DBAC{
		n:        n,
		f:        f,
		pEnd:     pEnd,
		quorum:   ByzQuorum(n, f),
		v:        input,
		r:        make([]bool, n),
		low:      newBoundedLow(f + 1),
		high:     newBoundedHigh(f + 1),
		selfPort: selfPort,
	}
	// Reliable self-delivery: the node's own state is always among the
	// values it counts (R[i]=1) and collects (see DESIGN.md §2 on the
	// pseudo-code clarification).
	d.r[selfPort] = true
	d.nr = 1
	d.low.add(input)
	d.high.add(input)
	d.maybeDecide()
	return d, nil
}

// Broadcast implements Process (Algorithm 2 line 2).
func (d *DBAC) Broadcast() Message { return Message{Value: d.v, Phase: d.p} }

// Deliver implements Process (Algorithm 2 lines 4–11).
func (d *DBAC) Deliver(dl Delivery) {
	m := dl.Msg
	if m.Phase >= d.p && !d.r[dl.Port] {
		d.r[dl.Port] = true
		d.nr++
		d.low.add(m.Value)
		d.high.add(m.Value)
	}
	if d.p < d.pEnd && d.nr >= d.quorum {
		d.v = (d.low.max() + d.high.min()) / 2
		d.p++
		d.quorums++
		d.reset()
	}
	d.maybeDecide()
}

// EndRound implements Process; DBAC is edge-triggered.
func (d *DBAC) EndRound() {}

// Output implements Process (lines 12–13).
func (d *DBAC) Output() (float64, bool) { return d.decision, d.decided }

// Phase implements Process.
func (d *DBAC) Phase() int { return d.p }

// Value implements Process.
func (d *DBAC) Value() float64 { return d.v }

// Quorums reports how many phase advances this node has made (analysis).
func (d *DBAC) Quorums() int { return d.quorums }

// PEnd reports the node's output phase.
func (d *DBAC) PEnd() int { return d.pEnd }

// Quorum reports the number of distinct counted states (self included)
// that triggers a phase advance.
func (d *DBAC) Quorum() int { return d.quorum }

// NewDBACCustom builds a DBAC node with explicit output phase and
// quorum, without enforcing n ≥ 5f+1. It exists solely for the necessity
// experiment (E6), which models hypothetical algorithms that terminate
// below the ⌊(n+3f)/2⌋+1 quorum and then violate agreement, as Theorem
// 10 predicts. Production users want NewDBAC.
func NewDBACCustom(n, f, selfPort, pEnd, quorum int, input float64) (*DBAC, error) {
	if n < 1 || f < 0 || f >= n {
		return nil, fmt.Errorf("%w: n=%d f=%d", ErrResilience, n, f)
	}
	if selfPort < 0 || selfPort >= n {
		return nil, fmt.Errorf("core: self port %d out of range [0,%d)", selfPort, n)
	}
	if err := ValidateInput(input); err != nil {
		return nil, err
	}
	if pEnd < 0 {
		return nil, fmt.Errorf("core: negative pEnd %d", pEnd)
	}
	if quorum < 1 || quorum > n {
		return nil, fmt.Errorf("core: quorum %d out of range [1,%d]", quorum, n)
	}
	d, err := newDBACWithPEnd(n, f, selfPort, input, pEnd)
	if err != nil {
		return nil, err
	}
	d.quorum = quorum
	return d, nil
}

// Reinit implements Reinitializer: return to the freshly-constructed
// state with a new input, keeping n, f, pEnd, quorum and the self port.
// Mirrors newDBACWithPEnd's initialization exactly.
func (d *DBAC) Reinit(input float64) {
	d.v = input
	d.p = 0
	for i := range d.r {
		d.r[i] = false
	}
	d.r[d.selfPort] = true
	d.nr = 1
	d.low.clear()
	d.high.clear()
	d.low.add(input)
	d.high.add(input)
	d.decided = false
	d.decision = 0
	d.quorums = 0
	d.maybeDecide()
}

// reset is RESET() of Algorithm 2, plus the self-delivery store.
func (d *DBAC) reset() {
	for i := range d.r {
		d.r[i] = false
	}
	d.r[d.selfPort] = true
	d.nr = 1
	d.low.clear()
	d.high.clear()
	d.low.add(d.v)
	d.high.add(d.v)
}

func (d *DBAC) maybeDecide() {
	if !d.decided && d.p >= d.pEnd {
		d.decided = true
		d.decision = d.v
	}
}
