package core

// Process is the deterministic state machine a fault-free (or
// crash-faulty, until it crashes) node runs. The simulation engine drives
// it with the synchronous-round protocol of §II-A:
//
//  1. Broadcast() is called once at the top of each round; the returned
//     message is handed to the message adversary for delivery.
//  2. Deliver() is called once per message that the adversary's edge set
//     E(t) actually delivers this round, tagged with the receiver-local
//     port. Self-delivery is NOT routed through Deliver — the algorithms
//     model the reliable self-channel internally (R[i]=1, own-value
//     stores), exactly as Algorithm 1/2 initialize it.
//  3. EndRound() is called after all deliveries of the round.
//
// Implementations must be deterministic functions of their input and the
// delivery sequence; the model admits only deterministic algorithms.
type Process interface {
	// Broadcast returns the message ⟨v, p⟩ this node sends in the current
	// round (Algorithm 1/2, line 2).
	Broadcast() Message

	// Deliver processes one received message (the body of the for-each
	// loop, Algorithm 1 lines 4–15 / Algorithm 2 lines 4–11).
	Deliver(d Delivery)

	// EndRound marks the end of the communication round. DAC/DBAC are
	// edge-triggered and do nothing here, but baselines that gather a
	// whole round's messages before updating need the hook.
	EndRound()

	// Output reports whether the node has decided (reached p_end) and, if
	// so, the decided value. Once decided, the value never changes even
	// though the node keeps participating in the protocol.
	Output() (float64, bool)

	// Phase exposes the node's current phase index p_i (for adversaries,
	// metrics, and invariant checkers; adversaries in the model may read
	// node states, §II-A).
	Phase() int

	// Value exposes the node's current state value v_i (same purpose).
	Value() float64
}

// Reinitializer is the optional recycling extension of Process: Reinit
// returns the node to its freshly-constructed state with a new input,
// keeping its structural parameters (n, pEnd, quorum, self port). It
// lets compiled scenarios reuse one set of processes across a whole
// Monte-Carlo batch instead of reallocating them per seed; a Reinit
// process must be indistinguishable from a newly constructed one (the
// recycle tests assert byte-identical executions).
type Reinitializer interface {
	Reinit(input float64)
}

// Snapshot is a read-only view of a process's public state, handed to
// adaptive adversaries and recorded in traces.
type Snapshot struct {
	// Phase is the node's phase index at the start of the round.
	Phase int
	// Value is the node's state value at the start of the round.
	Value float64
	// Decided reports whether the node has produced its output.
	Decided bool
	// Crashed reports whether the node has crashed (crash-fault model).
	Crashed bool
	// Byzantine reports whether the node is Byzantine in this execution.
	Byzantine bool
}

// Snap captures a Snapshot from any Process.
func Snap(p Process) Snapshot {
	_, decided := p.Output()
	return Snapshot{Phase: p.Phase(), Value: p.Value(), Decided: decided}
}
