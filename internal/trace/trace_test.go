package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindRound, Round: 0, Edges: [][2]int{{0, 1}, {1, 2}}},
		{Kind: KindBroadcast, Round: 0, Node: 0, Value: 0.5, Phase: 0},
		{Kind: KindDeliver, Round: 0, Node: 1, Port: 0, Value: 0.5, Phase: 0},
		{Kind: KindPhase, Round: 0, Node: 1, FromPhase: 0, Phase: 1, Value: 0.25},
		{Kind: KindCrash, Round: 1, Node: 2},
		{Kind: KindDecide, Round: 3, Node: 1, Value: 0.25},
	}
}

func TestRecorderKeepsAll(t *testing.T) {
	r := NewRecorder()
	for _, e := range sampleEvents() {
		r.Record(e)
	}
	if r.Len() != len(sampleEvents()) {
		t.Errorf("Len = %d, want %d", r.Len(), len(sampleEvents()))
	}
	if !reflect.DeepEqual(r.Events(), sampleEvents()) {
		t.Error("recorded events differ")
	}
}

func TestFilteredRecorder(t *testing.T) {
	r := NewFiltered(KindRound, KindDecide)
	for _, e := range sampleEvents() {
		r.Record(e)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	for _, e := range r.Events() {
		if e.Kind != KindRound && e.Kind != KindDecide {
			t.Errorf("kept event of kind %q", e.Kind)
		}
	}
}

func TestRoundEvents(t *testing.T) {
	r := NewRecorder()
	for _, e := range sampleEvents() {
		r.Record(e)
	}
	rounds := r.RoundEvents()
	if len(rounds) != 1 || rounds[0].Round != 0 {
		t.Errorf("RoundEvents = %v", rounds)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	// One line per event.
	if got := strings.Count(buf.String(), "\n"); got != len(sampleEvents()) {
		t.Errorf("lines = %d, want %d", got, len(sampleEvents()))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sampleEvents()) {
		t.Errorf("round trip mismatch:\nwrote %v\nread  %v", sampleEvents(), back)
	}
}

func TestReadJSONLCorrupt(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"round"}` + "\n{bogus\n")); err == nil {
		t.Error("corrupt stream accepted")
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	events, err := ReadJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("events = %v, want none", events)
	}
}

func TestDescribeCoversKinds(t *testing.T) {
	for _, e := range sampleEvents() {
		s := Describe(e)
		if s == "" {
			t.Errorf("empty description for %q", e.Kind)
		}
		if !strings.Contains(s, "r000") {
			t.Errorf("description %q missing round marker", s)
		}
	}
	if s := Describe(Event{Kind: Kind("custom"), Round: 2}); !strings.Contains(s, "custom") {
		t.Errorf("unknown kind description %q", s)
	}
}
