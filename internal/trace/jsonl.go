package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL serializes events as JSON Lines: one event object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines event stream.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return events, nil
			}
			return nil, fmt.Errorf("trace: decode event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}
