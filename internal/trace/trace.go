// Package trace records executions of the simulation engine as a
// structured event log, serializes them as JSON Lines, and can replay a
// recorded adversary so that any execution — including ones driven by
// adaptive adversaries and RNG — can be re-run deterministically.
package trace

import (
	"fmt"

	"anondyn/internal/core"
)

// Kind enumerates event types.
type Kind string

// Event kinds, in the order they occur within a round.
const (
	KindRound     Kind = "round"     // adversary picked E(t)
	KindBroadcast Kind = "broadcast" // node emitted its round message
	KindDeliver   Kind = "deliver"   // message delivered to a receiver
	KindPhase     Kind = "phase"     // node advanced (or jumped) phases
	KindCrash     Kind = "crash"     // node crashed
	KindDecide    Kind = "decide"    // node produced its output
)

// Event is one entry of the execution log. Fields are a union across
// kinds; unused fields stay at their zero values and are omitted from
// the JSON encoding.
type Event struct {
	Kind  Kind `json:"kind"`
	Round int  `json:"round"`
	// Node is the acting node (sender for broadcast, receiver for
	// deliver, the advancing/crashing/deciding node otherwise).
	Node int `json:"node,omitempty"`
	// Edges lists E(t) for round events.
	Edges [][2]int `json:"edges,omitempty"`
	// Port is the receiver-local port for deliver events.
	Port int `json:"port,omitempty"`
	// Value/Phase carry message or state payloads.
	Value float64 `json:"value,omitempty"`
	Phase int     `json:"phase,omitempty"`
	// FromPhase is the pre-transition phase for phase events.
	FromPhase int `json:"fromPhase,omitempty"`
}

// Recorder accumulates events. The zero value records everything; use
// NewFiltered to keep only selected kinds (delivery events dominate log
// volume on long runs).
type Recorder struct {
	events []Event
	keep   map[Kind]bool // nil = keep all
}

// NewRecorder returns a recorder that keeps every event.
func NewRecorder() *Recorder { return &Recorder{} }

// NewFiltered returns a recorder that keeps only the listed kinds.
func NewFiltered(kinds ...Kind) *Recorder {
	keep := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		keep[k] = true
	}
	return &Recorder{keep: keep}
}

// Record appends an event if its kind passes the filter.
func (r *Recorder) Record(e Event) {
	if r.keep != nil && !r.keep[e.Kind] {
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded log (shared slice; callers must not
// mutate).
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// RoundEvents extracts just the per-round edge sets, in round order.
func (r *Recorder) RoundEvents() []Event {
	var rounds []Event
	for _, e := range r.events {
		if e.Kind == KindRound {
			rounds = append(rounds, e)
		}
	}
	return rounds
}

// Describe renders a compact human-readable form of an event.
func Describe(e Event) string {
	switch e.Kind {
	case KindRound:
		return fmt.Sprintf("r%04d round  |E|=%d", e.Round, len(e.Edges))
	case KindBroadcast:
		return fmt.Sprintf("r%04d bcast  node=%d %s", e.Round, e.Node, core.Message{Value: e.Value, Phase: e.Phase})
	case KindDeliver:
		return fmt.Sprintf("r%04d deliv  node=%d port=%d %s", e.Round, e.Node, e.Port, core.Message{Value: e.Value, Phase: e.Phase})
	case KindPhase:
		return fmt.Sprintf("r%04d phase  node=%d %d→%d v=%.6g", e.Round, e.Node, e.FromPhase, e.Phase, e.Value)
	case KindCrash:
		return fmt.Sprintf("r%04d crash  node=%d", e.Round, e.Node)
	case KindDecide:
		return fmt.Sprintf("r%04d decide node=%d v=%.6g", e.Round, e.Node, e.Value)
	default:
		return fmt.Sprintf("r%04d %s node=%d", e.Round, e.Kind, e.Node)
	}
}
