package trace

import (
	"fmt"

	"anondyn/internal/adversary"
	"anondyn/internal/network"
)

// Replay is a message adversary reconstructed from a recorded event log:
// it re-issues the exact per-round edge sets of the original execution.
// Replaying a run of a deterministic algorithm with the same inputs,
// ports, and fault behavior reproduces it bit for bit — asserted by the
// replay tests.
type Replay struct {
	n    int
	sets []*network.EdgeSet
}

// NewReplay builds a replay adversary from a log containing round events
// for rounds 0, 1, 2, … in order.
func NewReplay(n int, events []Event) (*Replay, error) {
	r := &Replay{n: n}
	for _, e := range events {
		if e.Kind != KindRound {
			continue
		}
		if e.Round != len(r.sets) {
			return nil, fmt.Errorf("trace: round event %d out of order (want %d)", e.Round, len(r.sets))
		}
		es := network.NewEdgeSet(n)
		for _, pair := range e.Edges {
			es.Add(pair[0], pair[1])
		}
		r.sets = append(r.sets, es)
	}
	if len(r.sets) == 0 {
		return nil, fmt.Errorf("trace: no round events to replay")
	}
	return r, nil
}

// Name identifies the adversary.
func (r *Replay) Name() string { return fmt.Sprintf("replay(%d rounds)", len(r.sets)) }

// Edges returns the recorded E(t). Rounds beyond the recording reuse the
// final set, which keeps post-decision rounds well-defined. The view is
// unused: a replay is oblivious by construction.
func (r *Replay) Edges(t int, _ adversary.View) *network.EdgeSet {
	if t < len(r.sets) {
		return r.sets[t]
	}
	return r.sets[len(r.sets)-1]
}

// Oblivious implements adversary.Oblivious: the view is never read, the
// recorded sets are a pure function of the round number.
func (r *Replay) Oblivious() bool { return true }

// Replay deliberately does not implement adversary.InPlace: it returns
// recorded sets by pointer, which the engine's fallback path consumes
// without allocating or copying.
var (
	_ adversary.Adversary = (*Replay)(nil)
	_ adversary.Oblivious = (*Replay)(nil)
)

// Rounds reports how many rounds were recorded.
func (r *Replay) Rounds() int { return len(r.sets) }

// Trace exposes the recorded edge sets as a network.Trace for offline
// analysis (dynaDegree checking of a finished run).
func (r *Replay) Trace() network.Trace {
	tr := make(network.Trace, len(r.sets))
	copy(tr, r.sets)
	return tr
}
