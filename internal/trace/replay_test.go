package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/network"
	"anondyn/internal/sim"
	"anondyn/internal/trace"
)

func TestNewReplayValidation(t *testing.T) {
	if _, err := trace.NewReplay(3, nil); err == nil {
		t.Error("empty log accepted")
	}
	outOfOrder := []trace.Event{
		{Kind: trace.KindRound, Round: 1, Edges: nil},
	}
	if _, err := trace.NewReplay(3, outOfOrder); err == nil {
		t.Error("out-of-order rounds accepted")
	}
}

func TestReplayEdges(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRound, Round: 0, Edges: [][2]int{{0, 1}}},
		{Kind: trace.KindBroadcast, Round: 0, Node: 0}, // non-round events skipped
		{Kind: trace.KindRound, Round: 1, Edges: [][2]int{{1, 2}, {2, 0}}},
	}
	r, err := trace.NewReplay(3, events)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds() != 2 {
		t.Fatalf("Rounds = %d, want 2", r.Rounds())
	}
	e0 := r.Edges(0, adversary.SizeView(3))
	if !e0.Has(0, 1) || e0.Len() != 1 {
		t.Error("round 0 edges wrong")
	}
	e1 := r.Edges(1, adversary.SizeView(3))
	if !e1.Has(1, 2) || !e1.Has(2, 0) {
		t.Error("round 1 edges wrong")
	}
	// Beyond the recording: reuse the final set.
	if got := r.Edges(7, adversary.SizeView(3)); !got.Equal(e1) {
		t.Error("post-recording rounds should replay the final set")
	}
	tr := r.Trace()
	if len(tr) != 2 || !tr[0].Equal(e0) {
		t.Error("Trace() mismatch")
	}
}

// TestReplayReproducesExecution: record a full randomized run, then
// re-run the deterministic algorithm against the replayed adversary and
// demand identical outputs and decision rounds.
func TestReplayReproducesExecution(t *testing.T) {
	n := 7
	mkProcs := func() []core.Process {
		procs := make([]core.Process, n)
		for i := 0; i < n; i++ {
			d, err := core.NewDACPhases(n, i, 8, float64(i)/float64(n-1))
			if err != nil {
				t.Fatal(err)
			}
			procs[i] = d
		}
		return procs
	}
	rd, err := adversary.NewRandomDegree(2, 3, 0.15, 777)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	eng, err := sim.NewEngine(sim.Config{
		N:         n,
		Procs:     mkProcs(),
		Adversary: rd,
		Hooks:     sim.Hooks{Recorder: rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := eng.Run()
	if !orig.Decided {
		t.Fatal("original run undecided")
	}

	replay, err := trace.NewReplay(n, rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := sim.NewEngine(sim.Config{
		N:         n,
		Procs:     mkProcs(),
		Adversary: replay,
	})
	if err != nil {
		t.Fatal(err)
	}
	rerun := eng2.Run()
	if !reflect.DeepEqual(orig.Outputs, rerun.Outputs) {
		t.Errorf("outputs differ:\norig  %v\nrerun %v", orig.Outputs, rerun.Outputs)
	}
	if !reflect.DeepEqual(orig.DecideRound, rerun.DecideRound) {
		t.Error("decide rounds differ")
	}
	if orig.Rounds != rerun.Rounds {
		t.Errorf("rounds: orig %d, rerun %d", orig.Rounds, rerun.Rounds)
	}
}

// TestReplaySurvivesJSONL: the replay still works after serializing the
// log to JSONL and back.
func TestReplaySurvivesJSONL(t *testing.T) {
	a := adversary.NewFig1()
	rec := trace.NewRecorder()
	for round := 0; round < 6; round++ {
		rec.Record(trace.Event{Kind: trace.KindRound, Round: round, Edges: a.Edges(round, adversary.SizeView(3)).Edges()})
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReplay(3, events)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		want := a.Edges(round, adversary.SizeView(3))
		if got := r.Edges(round, adversary.SizeView(3)); !got.Equal(want) {
			t.Errorf("round %d: replayed edges differ", round)
		}
	}
	tr := r.Trace()
	if !network.SatisfiesDynaDegree(tr, []int{0, 1, 2}, 2, 1) {
		t.Error("replayed Figure 1 lost its (2,1)-dynaDegree")
	}
}
