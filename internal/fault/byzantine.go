package fault

import (
	"fmt"
	"math/rand"

	"anondyn/internal/core"
)

// View is the read-only execution state a Byzantine strategy may consult
// (Byzantine nodes know everything the adversary knows).
type View interface {
	N() int
	Snapshot(i int) core.Snapshot
}

// Strategy produces a Byzantine node's per-receiver messages for a round.
// Byzantine nodes may equivocate — send different messages to different
// receivers — because port numberings are local and receivers cannot
// compare notes about sender identities (§VI-C). They cannot, however,
// forge the port their message arrives on: the channel is authenticated.
type Strategy interface {
	// Name identifies the strategy in traces and tables.
	Name() string
	// Messages returns the message for each receiver in [0, n); a nil
	// entry means "send nothing to that receiver this round". Entries
	// for receivers outside the adversary's edge set are dropped by the
	// engine regardless.
	Messages(round, self int, view View) []*core.Message
}

// uniform broadcasts one message to everyone; helper for the strategies
// below.
func uniform(n int, m core.Message) []*core.Message {
	out := make([]*core.Message, n)
	for i := range out {
		mm := m
		out[i] = &mm
	}
	return out
}

// Silent never sends anything — a Byzantine node indistinguishable from
// an early crash.
type Silent struct{}

// Name implements Strategy.
func (Silent) Name() string { return "silent" }

// Messages implements Strategy.
func (Silent) Messages(round, self int, view View) []*core.Message {
	return make([]*core.Message, view.N())
}

// Extremist always claims an extreme value at a far-future phase, the
// strongest uniform attack against trimmed averaging: the claimed phase
// is always ≥ the receiver's, so the value is always counted.
type Extremist struct {
	// Value is the claimed state value (typically 0 or 1).
	Value float64
}

// Name implements Strategy.
func (e Extremist) Name() string { return fmt.Sprintf("extremist(%g)", e.Value) }

// Messages implements Strategy.
func (e Extremist) Messages(round, self int, view View) []*core.Message {
	return uniform(view.N(), core.Message{Value: e.Value, Phase: int(^uint(0) >> 2)})
}

// Equivocator sends value Low to the lower half of receiver IDs and High
// to the upper half, both at a far-future phase — the generic two-faced
// attack.
type Equivocator struct {
	Low, High float64
}

// Name implements Strategy.
func (e Equivocator) Name() string { return fmt.Sprintf("equivocator(%g|%g)", e.Low, e.High) }

// Messages implements Strategy.
func (e Equivocator) Messages(round, self int, view View) []*core.Message {
	n := view.N()
	out := make([]*core.Message, n)
	phase := int(^uint(0) >> 2)
	for i := 0; i < n; i++ {
		v := e.Low
		if i >= n/2 {
			v = e.High
		}
		out[i] = &core.Message{Value: v, Phase: phase}
	}
	return out
}

// SplitBrain is the Theorem 10 equivocation: behave towards one receiver
// group as if the input were ValueA and towards everyone else as if it
// were ValueB. InA decides group membership per receiver.
type SplitBrain struct {
	InA    func(receiver int) bool
	ValueA float64
	ValueB float64
}

// Name implements Strategy.
func (s SplitBrain) Name() string { return fmt.Sprintf("splitBrain(%g|%g)", s.ValueA, s.ValueB) }

// Messages implements Strategy.
func (s SplitBrain) Messages(round, self int, view View) []*core.Message {
	n := view.N()
	out := make([]*core.Message, n)
	phase := int(^uint(0) >> 2)
	for i := 0; i < n; i++ {
		v := s.ValueB
		if s.InA != nil && s.InA(i) {
			v = s.ValueA
		}
		out[i] = &core.Message{Value: v, Phase: phase}
	}
	return out
}

// RandomNoise sends every receiver an independently random value in
// [0, 1] and a random phase within a window above the receiver's phase —
// plausible-looking garbage.
type RandomNoise struct {
	rng *rand.Rand

	// scratch reused across rounds by Messages. Receivers may retain the
	// returned pointers only within the round, which the engine contract
	// guarantees (messages are consumed during delivery).
	msgs []core.Message
	out  []*core.Message
}

// NewRandomNoise builds the strategy with its own deterministic stream.
func NewRandomNoise(seed int64) *RandomNoise {
	return &RandomNoise{rng: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the stream to the state of a fresh instance built with
// this seed (the Reseeder contract compiled scenarios use to recycle
// strategies across Monte-Carlo runs).
func (r *RandomNoise) Reseed(seed int64) {
	r.rng = rand.New(rand.NewSource(seed))
}

// Name implements Strategy.
func (*RandomNoise) Name() string { return "randomNoise" }

// Messages implements Strategy. The returned slice and the messages it
// points into are owned by the strategy and overwritten on the next
// call; the engine consumes them within the round, so no per-round
// allocation is needed. The RNG draw order (value, then phase offset,
// per receiver in ID order) is unchanged from the allocating version,
// so seeds render identical noise.
func (r *RandomNoise) Messages(round, self int, view View) []*core.Message {
	n := view.N()
	if cap(r.msgs) < n {
		r.msgs = make([]core.Message, n)
		r.out = make([]*core.Message, n)
	}
	r.msgs = r.msgs[:n]
	r.out = r.out[:n]
	for i := 0; i < n; i++ {
		recvPhase := view.Snapshot(i).Phase
		r.msgs[i] = core.Message{
			Value: r.rng.Float64(),
			Phase: recvPhase + r.rng.Intn(3),
		}
		r.out[i] = &r.msgs[i]
	}
	return r.out
}

// Laggard replays stale protocol state: it sends its genuine-looking
// value but with a phase far behind every receiver, so correct algorithms
// must ignore it. Useful for checking that stale messages are filtered.
type Laggard struct {
	Value float64
}

// Name implements Strategy.
func (l Laggard) Name() string { return fmt.Sprintf("laggard(%g)", l.Value) }

// Messages implements Strategy.
func (l Laggard) Messages(round, self int, view View) []*core.Message {
	return uniform(view.N(), core.Message{Value: l.Value, Phase: 0})
}

// Mimic copies the public state of a chosen fault-free node, making the
// Byzantine node look perfectly honest — the null attack baseline.
type Mimic struct {
	Target int
}

// Name implements Strategy.
func (m Mimic) Name() string { return fmt.Sprintf("mimic(%d)", m.Target) }

// Messages implements Strategy.
func (m Mimic) Messages(round, self int, view View) []*core.Message {
	snap := view.Snapshot(m.Target)
	return uniform(view.N(), core.Message{Value: snap.Value, Phase: snap.Phase})
}
