// Package fault implements the node-fault half of the paper's hybrid
// fault model (§II-A): crash schedules for the DAC setting and pluggable
// Byzantine behaviors for the DBAC setting.
package fault

import (
	"fmt"
	"sort"
)

// Crash describes when and how one node crashes. A node crashing in
// round r broadcasts in round r to only the listed subset of receivers
// (intersected with the adversary's edge set E(r)) and is silent from
// round r+1 on — the classical "crash mid-broadcast" semantics.
type Crash struct {
	// Round is the crash round (0-based). The node behaves correctly in
	// all rounds before it.
	Round int
	// DeliverTo optionally restricts which receivers may still get the
	// final round-Round broadcast; nil means the final broadcast is
	// delivered to every out-neighbor in E(Round) (a "clean" crash at
	// the end of round Round), while an empty non-nil slice means the
	// node crashes before sending anything in round Round.
	DeliverTo []int
}

// AllowsFinalDelivery reports whether the crashing node's round-Round
// broadcast may reach the given receiver.
func (c Crash) AllowsFinalDelivery(receiver int) bool {
	if c.DeliverTo == nil {
		return true
	}
	for _, r := range c.DeliverTo {
		if r == receiver {
			return true
		}
	}
	return false
}

// Schedule maps node IDs to their crash descriptions. Nodes absent from
// the map never crash.
type Schedule map[int]Crash

// CrashAt returns a schedule entry for a clean crash at the end of the
// given round.
func CrashAt(round int) Crash { return Crash{Round: round} }

// CrashSilent returns a crash that suppresses even the final broadcast.
func CrashSilent(round int) Crash { return Crash{Round: round, DeliverTo: []int{}} }

// CrashPartial returns a crash whose final broadcast reaches only the
// listed receivers.
func CrashPartial(round int, deliverTo ...int) Crash {
	if deliverTo == nil {
		deliverTo = []int{}
	}
	return Crash{Round: round, DeliverTo: deliverTo}
}

// Validate checks the schedule against a network of n nodes and fault
// budget f.
func (s Schedule) Validate(n, f int) error {
	if len(s) > f {
		return fmt.Errorf("fault: %d crashes scheduled but f=%d", len(s), f)
	}
	for node, c := range s {
		if node < 0 || node >= n {
			return fmt.Errorf("fault: crash node %d out of range [0,%d)", node, n)
		}
		if c.Round < 0 {
			return fmt.Errorf("fault: node %d crash round %d negative", node, c.Round)
		}
		for _, r := range c.DeliverTo {
			if r < 0 || r >= n {
				return fmt.Errorf("fault: node %d final-delivery target %d out of range", node, r)
			}
		}
	}
	return nil
}

// Alive reports whether a node still broadcasts in the given round
// (crashing nodes still broadcast — possibly partially — in their crash
// round).
func (s Schedule) Alive(round, node int) bool {
	c, ok := s[node]
	if !ok {
		return true
	}
	return round <= c.Round
}

// FullyAlive reports whether the node is fault-free through the round,
// with no partial-delivery caveat.
func (s Schedule) FullyAlive(round, node int) bool {
	c, ok := s[node]
	if !ok {
		return true
	}
	return round < c.Round
}

// Nodes returns the crashing node IDs in ascending order.
func (s Schedule) Nodes() []int {
	nodes := make([]int, 0, len(s))
	for n := range s {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}
