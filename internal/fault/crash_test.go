package fault

import (
	"reflect"
	"testing"
)

func TestCrashConstructors(t *testing.T) {
	c := CrashAt(5)
	if c.Round != 5 || c.DeliverTo != nil {
		t.Errorf("CrashAt = %+v", c)
	}
	s := CrashSilent(3)
	if s.Round != 3 || s.DeliverTo == nil || len(s.DeliverTo) != 0 {
		t.Errorf("CrashSilent = %+v", s)
	}
	p := CrashPartial(2, 1, 4)
	if p.Round != 2 || !reflect.DeepEqual(p.DeliverTo, []int{1, 4}) {
		t.Errorf("CrashPartial = %+v", p)
	}
	// No receivers given still means "deliver to nobody", not "all".
	p0 := CrashPartial(2)
	if p0.DeliverTo == nil {
		t.Error("CrashPartial() must not degrade to a clean crash")
	}
}

func TestAllowsFinalDelivery(t *testing.T) {
	if !CrashAt(0).AllowsFinalDelivery(7) {
		t.Error("clean crash must deliver to everyone")
	}
	if CrashSilent(0).AllowsFinalDelivery(7) {
		t.Error("silent crash must deliver to nobody")
	}
	p := CrashPartial(0, 2, 5)
	if !p.AllowsFinalDelivery(2) || !p.AllowsFinalDelivery(5) {
		t.Error("partial crash must deliver to listed receivers")
	}
	if p.AllowsFinalDelivery(3) {
		t.Error("partial crash delivered to unlisted receiver")
	}
}

func TestScheduleAlive(t *testing.T) {
	s := Schedule{1: CrashAt(3)}
	// A crashing node still broadcasts in its crash round…
	if !s.Alive(3, 1) {
		t.Error("node must broadcast in its crash round")
	}
	if s.Alive(4, 1) {
		t.Error("node alive after crash round")
	}
	// …but is not fully alive through that round.
	if s.FullyAlive(3, 1) {
		t.Error("FullyAlive in the crash round")
	}
	if !s.FullyAlive(2, 1) {
		t.Error("not FullyAlive before the crash round")
	}
	if !s.Alive(100, 0) || !s.FullyAlive(100, 0) {
		t.Error("unscheduled node must be alive forever")
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{0: CrashAt(1), 1: CrashAt(2)}).Validate(5, 2); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := (Schedule{0: CrashAt(1), 1: CrashAt(2)}).Validate(5, 1); err == nil {
		t.Error("over-budget schedule accepted")
	}
	if err := (Schedule{7: CrashAt(1)}).Validate(5, 3); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := (Schedule{0: CrashAt(-1)}).Validate(5, 3); err == nil {
		t.Error("negative round accepted")
	}
	if err := (Schedule{0: CrashPartial(1, 9)}).Validate(5, 3); err == nil {
		t.Error("out-of-range delivery target accepted")
	}
}

func TestScheduleNodes(t *testing.T) {
	s := Schedule{4: CrashAt(0), 1: CrashAt(2), 3: CrashAt(1)}
	if got, want := s.Nodes(), []int{1, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("Nodes = %v, want %v", got, want)
	}
}
