package fault

import (
	"testing"

	"anondyn/internal/core"
)

// testView is a fault.View with fixed snapshots.
type testView []core.Snapshot

func (v testView) N() int                       { return len(v) }
func (v testView) Snapshot(i int) core.Snapshot { return v[i] }

func flatView(n int) testView {
	return make(testView, n)
}

func TestSilent(t *testing.T) {
	msgs := Silent{}.Messages(0, 2, flatView(5))
	if len(msgs) != 5 {
		t.Fatalf("len = %d, want 5", len(msgs))
	}
	for i, m := range msgs {
		if m != nil {
			t.Errorf("receiver %d got a message from a silent node", i)
		}
	}
}

func TestExtremist(t *testing.T) {
	msgs := Extremist{Value: 1}.Messages(3, 0, flatView(4))
	for i, m := range msgs {
		if m == nil {
			t.Fatalf("receiver %d got nothing", i)
		}
		if m.Value != 1 {
			t.Errorf("receiver %d value = %g, want 1", i, m.Value)
		}
		// The claimed phase must dominate any real phase so the value is
		// always counted by DBAC's pj ≥ pi rule.
		if m.Phase < 1<<20 {
			t.Errorf("claimed phase %d too small to dominate", m.Phase)
		}
	}
}

func TestEquivocatorSplitsByHalf(t *testing.T) {
	msgs := Equivocator{Low: 0, High: 1}.Messages(0, 0, flatView(6))
	for i := 0; i < 3; i++ {
		if msgs[i].Value != 0 {
			t.Errorf("low receiver %d got %g", i, msgs[i].Value)
		}
	}
	for i := 3; i < 6; i++ {
		if msgs[i].Value != 1 {
			t.Errorf("high receiver %d got %g", i, msgs[i].Value)
		}
	}
}

func TestSplitBrain(t *testing.T) {
	s := SplitBrain{
		InA:    func(r int) bool { return r%2 == 0 },
		ValueA: 0.1,
		ValueB: 0.9,
	}
	msgs := s.Messages(0, 1, flatView(4))
	if msgs[0].Value != 0.1 || msgs[2].Value != 0.1 {
		t.Error("A-receivers got the wrong face")
	}
	if msgs[1].Value != 0.9 || msgs[3].Value != 0.9 {
		t.Error("B-receivers got the wrong face")
	}
	// nil InA means everyone sees ValueB.
	all := SplitBrain{ValueA: 0.1, ValueB: 0.9}.Messages(0, 1, flatView(3))
	for i, m := range all {
		if m.Value != 0.9 {
			t.Errorf("receiver %d = %g, want 0.9", i, m.Value)
		}
	}
}

func TestRandomNoiseDeterministicPerSeed(t *testing.T) {
	a := NewRandomNoise(42)
	b := NewRandomNoise(42)
	view := flatView(5)
	for round := 0; round < 3; round++ {
		ma := a.Messages(round, 0, view)
		mb := b.Messages(round, 0, view)
		for i := range ma {
			if ma[i].Value != mb[i].Value || ma[i].Phase != mb[i].Phase {
				t.Fatalf("round %d receiver %d differs across same-seed instances", round, i)
			}
		}
	}
}

func TestRandomNoiseValuesInRange(t *testing.T) {
	r := NewRandomNoise(7)
	view := make(testView, 6)
	for i := range view {
		view[i] = core.Snapshot{Phase: 3}
	}
	for round := 0; round < 10; round++ {
		for i, m := range r.Messages(round, 0, view) {
			if m.Value < 0 || m.Value > 1 {
				t.Fatalf("receiver %d value %g outside [0,1]", i, m.Value)
			}
			if m.Phase < 3 || m.Phase > 5 {
				t.Fatalf("receiver %d phase %d outside receiver+[0,2]", i, m.Phase)
			}
		}
	}
}

func TestLaggard(t *testing.T) {
	msgs := Laggard{Value: 0.3}.Messages(9, 0, flatView(3))
	for _, m := range msgs {
		if m.Phase != 0 || m.Value != 0.3 {
			t.Errorf("laggard sent %v, want phase-0 0.3", m)
		}
	}
}

func TestMimic(t *testing.T) {
	view := testView{
		{Value: 0.7, Phase: 4},
		{},
	}
	msgs := Mimic{Target: 0}.Messages(0, 1, view)
	for _, m := range msgs {
		if m.Value != 0.7 || m.Phase != 4 {
			t.Errorf("mimic sent %v, want target's ⟨0.7, 4⟩", m)
		}
	}
}

func TestStrategyNames(t *testing.T) {
	strategies := []Strategy{
		Silent{}, Extremist{Value: 1}, Equivocator{Low: 0, High: 1},
		SplitBrain{}, NewRandomNoise(1), Laggard{}, Mimic{Target: 2},
	}
	seen := make(map[string]bool)
	for _, s := range strategies {
		name := s.Name()
		if name == "" {
			t.Errorf("%T has empty name", s)
		}
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
	}
}
