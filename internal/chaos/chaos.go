// Package chaos is the generated-fleet and failure-storm layer: a
// declarative Stress block (the spec format's optional `stress`
// section) describes a templated node fleet with correlation groups, a
// schedule of chaos events — crashes, crash storms, Byzantine casts,
// correlated group outages, cascading failures, partitions and
// starvation windows — and a set of survival assertions. The package
// compiles that description onto the existing Scenario machinery: a
// per-run Storm materializes the events into the fault layer's crash
// schedules and Byzantine strategy maps plus an adversary wrapper for
// the connectivity events, and after the runs the assertions evaluate
// against the aggregate rows into pass/fail Verdicts for the report.
//
// Every draw comes from the dedicated chaos stream (see StreamVersion):
// a storm is a pure function of (spec, run seed), so the same committed
// spec at the same seed reproduces byte-identical reports — locally and
// sharded over a dynagrid fleet — exactly like any other sweep.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// Stress is one declarative storm: fleet generation, the chaos
// schedule, the round budget and the survival assertions. The spec
// decoder fills it from the `stress` section; Validate checks it with
// key-citing errors.
type Stress struct {
	// Fleet describes the generated node population.
	Fleet Fleet
	// Seed seeds the chaos stream (combined with each run's seed; see
	// StreamVersion for the draw-order contract).
	Seed int64
	// Rounds is the duration: every run executes at most this many
	// rounds, ending earlier only at quiescence (all fault-free nodes
	// decided).
	Rounds int
	// Events is the chaos schedule, applied in order.
	Events []Event
	// Assertions are the survival criteria evaluated into report
	// verdicts after the runs.
	Assertions []Assertion
}

// Fleet is the generated node population: a total size, an optional
// weighted template mix, and an optional partition into correlation
// groups (the zone/region analogue — contiguous ID blocks, the same
// Clustered-style partition the adversary layer uses).
type Fleet struct {
	// TotalNodes is the fleet size (the sweep's n).
	TotalNodes int
	// Groups partitions the fleet into this many contiguous correlation
	// groups; 0 means ungrouped (group-outage and partition events are
	// then invalid).
	Groups int
	// Templates is the weighted template mix; empty means one uniform
	// template with random inputs.
	Templates []Template
}

// Template is one weighted node archetype of the fleet.
type Template struct {
	// Name labels the template in errors and the timeline.
	Name string
	// Weight is the relative draw weight (> 0).
	Weight int
	// Input picks the template's input generator: "" or "random"
	// (uniform [0,1) from the input stream), "spread" (node position
	// i/(n−1)), "zero", "one", or "value:<v>".
	Input string
}

// Event is one entry of the chaos schedule. Kind selects the failure
// mode; the other fields parameterize it (Validate rejects fields that
// do not belong to the kind).
type Event struct {
	// Kind is the failure mode: "crash", "crash-storm", "byzantine",
	// "group-outage", "cascade", "partition" or "starve".
	Kind string
	// Round is when the event fires (windowed kinds start here). Rounds
	// are 1-based like the engine's; byzantine casts hold for the whole
	// run and must leave it 0.
	Round int
	// Duration is the window length in rounds (crash-storm, partition,
	// starve).
	Duration int
	// Rate is the per-node-per-round crash probability (crash-storm) or
	// the per-edge-per-round drop probability (starve), in (0, 1].
	Rate float64
	// Count sizes the victim set: nodes (crash, byzantine, cascade's
	// first wave) or groups (group-outage, partition without explicit
	// Groups).
	Count int
	// Groups lists explicit victim group IDs (group-outage, partition);
	// empty means Count groups drawn from the storm stream.
	Groups []int
	// Strategy is the Byzantine strategy name (byzantine): silent,
	// extremist, equivocate, noise, laggard or mimic.
	Strategy string
	// Args are the strategy parameters (same arity rules as the spec's
	// byzantine casts).
	Args []float64
	// Mode is the crash mode for crashing kinds: "clean" (default) or
	// "silent" (the final broadcast is suppressed).
	Mode string
	// Waves is the number of cascade waves (≥ 1).
	Waves int
	// Factor multiplies each cascade wave's size (> 0; default 2).
	Factor float64
	// Spread is the round gap between cascade waves (≥ 1 when Waves > 1).
	Spread int
}

// Assertion is one declarative survival criterion. Exactly one form is
// set: a bare Kind ("converged", "agreement"), a rounds bound
// (Kind "max_rounds" with Bound), or a survivor floor (Kind
// "survivors" with Expr, e.g. ">= n/2").
type Assertion struct {
	Kind  string
	Bound int
	Expr  string
}

// Name renders the assertion's canonical spelling for verdict rows.
func (a Assertion) Name() string {
	switch a.Kind {
	case "max_rounds":
		return fmt.Sprintf("max_rounds <= %d", a.Bound)
	case "survivors":
		return "survivors " + a.Expr
	}
	return a.Kind
}

// eventKinds lists the accepted event kinds.
const eventKinds = "crash, crash-storm, byzantine, group-outage, cascade, partition or starve"

// Validate checks the stress block; errors cite the offending key with
// the spec-level "stress." prefix.
func (s *Stress) Validate() error {
	if s.Fleet.TotalNodes < 1 {
		return fmt.Errorf("stress.fleet.total_nodes: fleet size %d < 1", s.Fleet.TotalNodes)
	}
	if s.Fleet.Groups < 0 || s.Fleet.Groups > s.Fleet.TotalNodes {
		return fmt.Errorf("stress.fleet.groups: %d groups over %d nodes", s.Fleet.Groups, s.Fleet.TotalNodes)
	}
	for i, t := range s.Fleet.Templates {
		path := fmt.Sprintf("stress.fleet.templates[%d].", i)
		if t.Weight < 1 {
			return fmt.Errorf("%sweight: %d < 1", path, t.Weight)
		}
		if err := validateInput(path+"input", t.Input); err != nil {
			return err
		}
	}
	if s.Rounds < 1 {
		return fmt.Errorf("stress.rounds: round budget %d < 1 (the storm needs a duration)", s.Rounds)
	}
	for i := range s.Events {
		if err := s.validateEvent(i); err != nil {
			return err
		}
	}
	for i, a := range s.Assertions {
		if err := a.validate(fmt.Sprintf("stress.assertions[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

// validateInput checks one template input generator spec.
func validateInput(key, input string) error {
	name, arg, hasArg := strings.Cut(input, ":")
	switch name {
	case "", "random", "spread", "zero", "one":
		if hasArg {
			return fmt.Errorf("%s: %s takes no argument (got %q)", key, name, input)
		}
	case "value":
		if _, err := strconv.ParseFloat(arg, 64); err != nil {
			return fmt.Errorf("%s: value argument %q is not a number", key, arg)
		}
	default:
		return fmt.Errorf("%s: unknown generator %q (want random, spread, zero, one or value:<v>)", key, input)
	}
	return nil
}

// validateEvent checks one chaos event against its kind's field set.
func (s *Stress) validateEvent(i int) error {
	e := &s.Events[i]
	path := fmt.Sprintf("stress.events[%d].", i)
	switch e.Mode {
	case "", "clean", "silent":
	default:
		return fmt.Errorf("%smode: unknown mode %q (want clean or silent)", path, e.Mode)
	}
	windowed := func() error {
		if e.Round < 1 {
			return fmt.Errorf("%sround: %s starts at round %d (rounds are 1-based)", path, e.Kind, e.Round)
		}
		if e.Duration < 1 {
			return fmt.Errorf("%sduration: %s needs a window of at least one round", path, e.Kind)
		}
		return nil
	}
	groupsEvent := func() error {
		if s.Fleet.Groups < 1 {
			return fmt.Errorf("%skind: %s needs stress.fleet.groups", path, e.Kind)
		}
		if len(e.Groups) > 0 {
			if e.Count != 0 {
				return fmt.Errorf("%scount: cannot combine with an explicit group list", path)
			}
			for j, g := range e.Groups {
				if g < 0 || g >= s.Fleet.Groups {
					return fmt.Errorf("%sgroups[%d]: group %d out of range (fleet has %d groups)", path, j, g, s.Fleet.Groups)
				}
			}
			return nil
		}
		if e.Count < 1 || e.Count > s.Fleet.Groups {
			return fmt.Errorf("%scount: %d groups out of %d", path, e.Count, s.Fleet.Groups)
		}
		return nil
	}
	switch e.Kind {
	case "crash":
		if e.Count < 1 {
			return fmt.Errorf("%scount: crash needs at least one victim", path)
		}
		if e.Round < 1 {
			return fmt.Errorf("%sround: crash fires at round %d (rounds are 1-based)", path, e.Round)
		}
	case "crash-storm":
		if err := windowed(); err != nil {
			return err
		}
		if !(e.Rate > 0 && e.Rate <= 1) {
			return fmt.Errorf("%srate: crash-storm rate %g outside (0, 1]", path, e.Rate)
		}
	case "byzantine":
		if e.Count < 1 {
			return fmt.Errorf("%scount: byzantine needs at least one node", path)
		}
		if e.Round != 0 {
			return fmt.Errorf("%sround: byzantine casts hold for the whole run (leave round unset)", path)
		}
		if err := validateStrategy(path, e.Strategy, e.Args); err != nil {
			return err
		}
	case "group-outage":
		if err := groupsEvent(); err != nil {
			return err
		}
		if e.Round < 1 {
			return fmt.Errorf("%sround: group-outage fires at round %d (rounds are 1-based)", path, e.Round)
		}
	case "cascade":
		if e.Count < 1 {
			return fmt.Errorf("%scount: cascade needs a first-wave size", path)
		}
		if e.Round < 1 {
			return fmt.Errorf("%sround: cascade starts at round %d (rounds are 1-based)", path, e.Round)
		}
		if e.Waves < 1 {
			return fmt.Errorf("%swaves: cascade needs at least one wave", path)
		}
		if e.Waves > 1 && e.Spread < 1 {
			return fmt.Errorf("%sspread: a multi-wave cascade needs a round gap between waves", path)
		}
		if e.Factor < 0 {
			return fmt.Errorf("%sfactor: cascade growth factor %g < 0", path, e.Factor)
		}
	case "partition":
		if err := groupsEvent(); err != nil {
			return err
		}
		if err := windowed(); err != nil {
			return err
		}
	case "starve":
		if err := windowed(); err != nil {
			return err
		}
		if !(e.Rate > 0 && e.Rate <= 1) {
			return fmt.Errorf("%srate: starve rate %g outside (0, 1]", path, e.Rate)
		}
	case "":
		return fmt.Errorf("%skind: required (want %s)", path, eventKinds)
	default:
		return fmt.Errorf("%skind: unknown event kind %q (want %s)", path, e.Kind, eventKinds)
	}
	return nil
}

// validateStrategy mirrors the arity rules of the spec format's
// Byzantine casts.
func validateStrategy(path, strategy string, args []float64) error {
	switch strategy {
	case "silent", "noise":
		if len(args) != 0 {
			return fmt.Errorf("%sargs: %s takes no arguments", path, strategy)
		}
	case "extremist", "laggard", "mimic":
		if len(args) != 1 {
			return fmt.Errorf("%sargs: %s wants exactly one argument", path, strategy)
		}
	case "equivocate":
		if len(args) != 0 && len(args) != 2 {
			return fmt.Errorf("%sargs: equivocate wants no arguments or [low, high]", path)
		}
	case "":
		return fmt.Errorf("%sstrategy: required", path)
	default:
		return fmt.Errorf("%sstrategy: unknown strategy %q (want silent, extremist, equivocate, noise, laggard or mimic)",
			path, strategy)
	}
	return nil
}

// validate checks one assertion.
func (a Assertion) validate(key string) error {
	switch a.Kind {
	case "converged", "agreement":
		return nil
	case "max_rounds":
		if a.Bound < 1 {
			return fmt.Errorf("%s: max_rounds bound %d < 1", key, a.Bound)
		}
		return nil
	case "survivors":
		_, err := parseSurvivorBound(a.Expr)
		if err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		return nil
	case "":
		return fmt.Errorf("%s: empty assertion (want converged, agreement, max_rounds or survivors)", key)
	}
	return fmt.Errorf("%s: unknown assertion %q (want converged, agreement, max_rounds or survivors)", key, a.Kind)
}

// parseSurvivorBound parses the survivors expression: ">=" followed by
// an integer literal or one of the symbolic per-n bounds.
func parseSurvivorBound(expr string) (func(n int) int, error) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(expr), ">=")
	if !ok {
		return nil, fmt.Errorf("survivors expression %q must start with \">=\"", expr)
	}
	switch rest = strings.TrimSpace(rest); rest {
	case "n/2":
		return func(n int) int { return n / 2 }, nil
	case "(n+1)/2":
		return func(n int) int { return (n + 1) / 2 }, nil
	case "(n-1)/2":
		return func(n int) int { return (n - 1) / 2 }, nil
	case "2n/3":
		return func(n int) int { return 2 * n / 3 }, nil
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v < 0 {
		return nil, fmt.Errorf("survivors bound %q is neither a non-negative integer, n/2, (n+1)/2, (n-1)/2 nor 2n/3", rest)
	}
	return func(int) int { return v }, nil
}
