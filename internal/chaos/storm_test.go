package chaos

import (
	"reflect"
	"sort"
	"testing"
)

// TestCompileStormDeterministic: a storm is a pure function of
// (stress block, run seed) — identical on replay, different across run
// seeds.
func TestCompileStormDeterministic(t *testing.T) {
	s := validStress()
	a, b := s.CompileStorm(17), s.CompileStorm(17)
	if !reflect.DeepEqual(a.Crashes, b.Crashes) || !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("same run seed compiled different storms")
	}
	if a.Survivors != b.Survivors {
		t.Fatalf("survivors %d vs %d on replay", a.Survivors, b.Survivors)
	}
	c := s.CompileStorm(18)
	if reflect.DeepEqual(a.Crashes, c.Crashes) {
		t.Error("different run seeds drew identical crash schedules")
	}
}

// TestCompileStormBookkeeping: victim sets never overlap, survivors
// count the unfaulted remainder, and the timeline is round-sorted.
func TestCompileStormBookkeeping(t *testing.T) {
	s := validStress()
	st := s.CompileStorm(5)
	n := s.Fleet.TotalNodes
	for node := range st.Crashes {
		if _, both := st.Byzantine[node]; both {
			t.Errorf("node %d is both crashed and Byzantine", node)
		}
	}
	if want := n - len(st.Crashes) - len(st.Byzantine); st.Survivors != want {
		t.Errorf("survivors = %d, want %d", st.Survivors, want)
	}
	if !sort.SliceIsSorted(st.Timeline, func(i, j int) bool { return st.Timeline[i].Round < st.Timeline[j].Round }) {
		t.Error("timeline not in round order")
	}
	if len(st.cuts) != 1 || len(st.starves) != 1 {
		t.Errorf("connectivity windows: %d cuts, %d starves, want 1 each", len(st.cuts), len(st.starves))
	}
}

// TestCascadeWaves: wave sizes follow count·factor^w and waves land
// spread rounds apart; a lethal cascade leaves the documented
// survivor count.
func TestCascadeWaves(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 10000},
		Rounds: 60,
		Events: []Event{{Kind: "cascade", Round: 5, Count: 500, Waves: 4, Factor: 2, Spread: 6, Mode: "silent"}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.CompileStorm(0)
	wantWaves := []struct{ round, nodes int }{{5, 500}, {11, 1000}, {17, 2000}, {23, 4000}}
	if len(st.Timeline) != len(wantWaves) {
		t.Fatalf("timeline has %d entries, want %d", len(st.Timeline), len(wantWaves))
	}
	for i, want := range wantWaves {
		e := st.Timeline[i]
		if e.Round != want.round || e.Nodes != want.nodes {
			t.Errorf("wave %d: round %d nodes %d, want round %d nodes %d", i, e.Round, e.Nodes, want.round, want.nodes)
		}
	}
	if st.Survivors != 10000-7500 {
		t.Errorf("survivors = %d, want 2500", st.Survivors)
	}
}

// TestGroupOutageContiguity: an outage crashes exactly the members of
// the drawn contiguous group blocks, nobody else.
func TestGroupOutageContiguity(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 100, Groups: 10},
		Rounds: 50,
		Events: []Event{{Kind: "group-outage", Round: 4, Groups: []int{2, 7}}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.CompileStorm(1)
	if len(st.Crashes) != 20 {
		t.Fatalf("outage crashed %d nodes, want 20 (two blocks of 10)", len(st.Crashes))
	}
	for node := range st.Crashes {
		g := node / 10
		if g != 2 && g != 7 {
			t.Errorf("node %d (group %d) crashed outside the victim groups", node, g)
		}
	}
}

// TestPickNodesExhaustion: asking for more victims than remain yields
// everyone, and later events see earlier events' victims as faulted.
func TestPickNodesExhaustion(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 10},
		Rounds: 20,
		Events: []Event{
			{Kind: "crash", Round: 1, Count: 8},
			{Kind: "crash", Round: 2, Count: 8},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.CompileStorm(0)
	if len(st.Crashes) != 10 {
		t.Fatalf("crashed %d of 10", len(st.Crashes))
	}
	if st.Timeline[1].Nodes != 2 {
		t.Errorf("second crash event claimed %d victims, want the 2 remaining", st.Timeline[1].Nodes)
	}
	if st.Survivors != 0 {
		t.Errorf("survivors = %d, want 0", st.Survivors)
	}
}
