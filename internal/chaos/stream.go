package chaos

// The chaos stream — the dedicated RNG stream every storm draw comes
// from. Like the er2 sampler's stream, it is an explicitly versioned
// contract: StreamVersion only changes when the draw sequence below
// changes, and committed storm specs embed a seed, so a spec replayed
// at the same seed reproduces the same fleet, the same victims and the
// same timeline byte for byte — on any platform, forever. The
// generator is splitmix64 (the same finalizer the engines already use
// for delivery shuffles); intn maps a draw by modulo, which is part of
// the contract (the bias at storm-sized n is irrelevant, stability is
// not).
//
// Draw order contract (v1):
//
//   - fleet stream  = stream(mix(stress.seed, saltFleet)): one intn
//     draw per node, ascending, for the weighted template pick —
//     consumed only when the fleet declares more than one template.
//   - storm stream  = stream(mix2(stress.seed, run seed, saltStorm)):
//     events in spec order. Victim picks are a partial Fisher–Yates
//     over the eligible (not yet faulted) nodes in ascending-ID order
//     (one intn per victim); a crash-storm draws one float64 per
//     eligible node per window round (rounds ascending, nodes
//     ascending); group picks are a partial Fisher–Yates over group
//     IDs; each starve event consumes one raw draw for its per-round
//     edge-drop stream.
//   - input stream  = stream(mix2(stress.seed, run seed, saltInputs)):
//     one float64 per random-template node, ascending — other template
//     kinds consume nothing.
//   - starve rounds = stream(mix(event seed, round)): one float64 per
//     surviving edge in sender-major order.
const StreamVersion = 1

// Stream salts: arbitrary odd constants that keep the per-purpose
// streams of one storm unrelated.
const (
	saltFleet  = 0x8f1e_37d5_29cb_a64d
	saltStorm  = 0x3b97_0e52_c481_7a1b
	saltInputs = 0xd2c6_54e9_1b3a_8f77
	saltStarve = 0x61a5_9d38_e70f_42c3
)

// stream is a splitmix64 sequence.
type stream struct{ z uint64 }

func newStream(seed uint64) *stream { return &stream{z: seed} }

// next advances the stream by one 64-bit draw.
func (s *stream) next() uint64 {
	s.z += 0x9e3779b97f4a7c15
	return finalize(s.z)
}

// finalize is the splitmix64 output permutation.
func finalize(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// intn draws a value in [0, n) by modulo (n > 0).
func (s *stream) intn(n int) int { return int(s.next() % uint64(n)) }

// float64 draws a value in [0, 1) with 53 significant bits.
func (s *stream) float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// mix folds a seed and a salt into a stream seed.
func mix(seed int64, salt uint64) uint64 { return finalize(uint64(seed) ^ salt) }

// mix2 folds the stress seed, one run's seed and a salt into a stream
// seed, so every Monte-Carlo run of a storm gets its own unrelated
// event realization while staying a pure function of (spec, run seed).
func mix2(seed, runSeed int64, salt uint64) uint64 {
	return finalize(finalize(uint64(seed)^salt) + uint64(runSeed)*0x9e3779b97f4a7c15)
}
