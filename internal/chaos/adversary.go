package chaos

import (
	"anondyn"
	"anondyn/internal/adversary"
	"anondyn/internal/network"
)

// WrapAdversary layers the storm's connectivity windows (partitions,
// starvation) over a base adversary. Storms without such windows
// return the base unchanged, so crash/Byzantine-only storms keep the
// base adversary's exact fast paths.
func (st *Storm) WrapAdversary(base anondyn.Adversary) anondyn.Adversary {
	if len(st.cuts) == 0 && len(st.starves) == 0 {
		return base
	}
	w := &stormAdversary{base: base, cuts: st.cuts, starves: st.starves}
	w.inPlace, _ = base.(adversary.InPlace)
	return w
}

// stormAdversary filters a base adversary's per-round edge set through
// the storm's active connectivity windows. It always implements the
// InPlace fast path: the base fills the engine-owned scratch set (or is
// copied into it), then one sender-major walk collects the surviving
// links and rebuilds the set — O(edges) per round in either
// representation, with the walk order (and hence every starvation draw)
// identical across the dense/CSR switch.
type stormAdversary struct {
	base    adversary.Adversary
	inPlace adversary.InPlace // non-nil when the base has the fast path
	cuts    []cutWindow
	starves []starveWindow
	keep    []uint64 // surviving-edge scratch, u<<32|v
}

// Name labels the wrapper in traces and logs.
func (a *stormAdversary) Name() string { return a.base.Name() + "+storm" }

// Edges is the allocating fallback path.
func (a *stormAdversary) Edges(t int, view adversary.View) *network.EdgeSet {
	e := a.base.Edges(t, view).Clone()
	a.filter(t, e)
	return e
}

// EdgesInto implements the zero-extra-allocation engine path.
func (a *stormAdversary) EdgesInto(t int, view adversary.View, dst *network.EdgeSet) {
	if a.inPlace != nil {
		a.inPlace.EdgesInto(t, view, dst)
	} else {
		dst.CopyFrom(a.base.Edges(t, view))
	}
	a.filter(t, dst)
}

// Oblivious forwards the base's state-independence promise — the
// windows themselves never consult the view.
func (a *stormAdversary) Oblivious() bool { return adversary.IsOblivious(a.base) }

// filter drops every link an active window suppresses: links crossing
// an active partition cut, then each survivor with the active starve
// windows' per-round drop draws (sender-major order; see
// StreamVersion). Rounds with no active window return untouched.
func (a *stormAdversary) filter(t int, dst *network.EdgeSet) {
	var cuts []cutWindow
	for _, w := range a.cuts {
		if t >= w.from && t < w.until {
			cuts = append(cuts, w)
		}
	}
	var rngs []*stream
	var rates []float64
	for _, w := range a.starves {
		if t >= w.from && t < w.until {
			rngs = append(rngs, newStream(mix(int64(w.seed), uint64(t)*saltStarve)))
			rates = append(rates, w.rate)
		}
	}
	if len(cuts) == 0 && len(rngs) == 0 {
		return
	}
	a.keep = a.keep[:0]
	dropped := false
	dst.ForEachEdge(func(u, v int) bool {
		for _, w := range cuts {
			if w.inCut[u] != w.inCut[v] {
				dropped = true
				return true
			}
		}
		for i, rng := range rngs {
			if rng.float64() < rates[i] {
				dropped = true
				return true
			}
		}
		a.keep = append(a.keep, uint64(u)<<32|uint64(uint32(v)))
		return true
	})
	if !dropped {
		return
	}
	dst.Reset()
	for _, p := range a.keep {
		dst.AddUnchecked(int(p>>32), int(uint32(p)))
	}
}
