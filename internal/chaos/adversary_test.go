package chaos

import (
	"testing"

	"anondyn"
	"anondyn/internal/adversary"
	"anondyn/internal/network"
)

// completeBase is a minimal non-InPlace complete-graph adversary, so
// the wrapper's allocating fallback path gets exercised too.
type completeBase struct{}

func (completeBase) Name() string { return "completebase" }
func (completeBase) Edges(_ int, view adversary.View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	e.FillComplete()
	return e
}

// TestWrapAdversaryPassthrough: a storm without connectivity windows
// returns the base adversary itself — no wrapper cost for crash-only
// storms.
func TestWrapAdversaryPassthrough(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 20},
		Rounds: 10,
		Events: []Event{{Kind: "crash", Round: 2, Count: 3}},
	}
	base := anondyn.Complete()
	if got := s.CompileStorm(0).WrapAdversary(base); got != base {
		t.Error("crash-only storm wrapped the adversary")
	}
}

// TestPartitionCutsCrossingEdges: during the window, every link
// crossing the cut is gone and every same-side link survives; outside
// the window the set is untouched.
func TestPartitionCutsCrossingEdges(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 40, Groups: 4},
		Rounds: 30,
		Events: []Event{{Kind: "partition", Round: 5, Duration: 3, Groups: []int{0}}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.CompileStorm(2)
	wrapped := st.WrapAdversary(anondyn.Complete())
	if wrapped.Name() != "complete+storm" {
		t.Errorf("wrapper name = %q", wrapped.Name())
	}
	view := adversary.SizeView(40)
	inCut := func(node int) bool { return node < 10 } // group 0 = IDs [0, 10)

	for _, round := range []int{4, 5, 7, 8} {
		e := wrapped.Edges(round, view)
		active := round >= 5 && round < 8
		e2 := network.NewEdgeSet(40)
		e2.FillComplete()
		want := e2.Len()
		if active {
			want -= 2 * 10 * 30 // both directions across the cut
		}
		if e.Len() != want {
			t.Errorf("round %d: %d edges, want %d", round, e.Len(), want)
		}
		e.ForEachEdge(func(u, v int) bool {
			if active && inCut(u) != inCut(v) {
				t.Errorf("round %d: cut-crossing edge %d→%d survived", round, u, v)
				return false
			}
			return true
		})
	}
}

// TestStarveDenseSparseParity: the wrapper's starvation draws walk
// edges in sender-major order in both representations, so the filtered
// set is identical across the dense/CSR switch — the determinism
// contract behind sharding large storms.
func TestStarveDenseSparseParity(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 60},
		Rounds: 20,
		Events: []Event{{Kind: "starve", Round: 1, Duration: 20, Rate: 0.4}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 4; round++ {
		// Fresh wrappers per representation: filter state is scratch.
		wd := s.CompileStorm(9).WrapAdversary(completeBase{}).(*stormAdversary)
		ws := s.CompileStorm(9).WrapAdversary(completeBase{}).(*stormAdversary)
		dense := network.NewEdgeSet(60)
		dense.FillComplete()
		wd.filter(round, dense)
		sparse := network.NewEdgeSetSparse(60)
		sparse.FillComplete()
		ws.filter(round, sparse)
		if dense.Len() != sparse.Len() {
			t.Fatalf("round %d: dense kept %d edges, sparse %d", round, dense.Len(), sparse.Len())
		}
		if dense.Len() == 60*59 {
			t.Errorf("round %d: starvation at rate 0.4 dropped nothing", round)
		}
		sparse.ForEachEdge(func(u, v int) bool {
			if !dense.Has(u, v) {
				t.Errorf("round %d: edge %d→%d in sparse result only", round, u, v)
				return false
			}
			return true
		})
	}
}

// TestStarveDeterministicPerRound: the same round refilters to the
// same set (each round's drop stream is self-seeded, not positional),
// and different rounds draw different sets.
func TestStarveDeterministicPerRound(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 30},
		Rounds: 20,
		Events: []Event{{Kind: "starve", Round: 1, Duration: 20, Rate: 0.3}},
	}
	w := s.CompileStorm(0).WrapAdversary(completeBase{})
	view := adversary.SizeView(30)
	a := w.Edges(3, view)
	b := w.Edges(5, view)
	c := w.Edges(3, view)
	if !a.Equal(c) {
		t.Error("round 3 refiltered to a different set")
	}
	if a.Equal(b) {
		t.Error("rounds 3 and 5 drew identical starvation")
	}
}

// TestWrapAdversaryInPlace: EdgesInto on an InPlace base matches the
// allocating path exactly.
func TestWrapAdversaryInPlace(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 25, Groups: 5},
		Rounds: 12,
		Events: []Event{{Kind: "partition", Round: 2, Duration: 6, Groups: []int{1, 3}}},
	}
	base := anondyn.Complete()
	if _, ok := base.(adversary.InPlace); !ok {
		t.Skip("complete adversary lost its InPlace fast path")
	}
	w := s.CompileStorm(4).WrapAdversary(base)
	view := adversary.SizeView(25)
	for round := 1; round <= 9; round++ {
		dst := network.NewEdgeSet(25)
		w.(adversary.InPlace).EdgesInto(round, view, dst)
		if want := w.Edges(round, view); !dst.Equal(want) {
			t.Errorf("round %d: EdgesInto differs from Edges", round)
		}
	}
	if !adversary.IsOblivious(w) {
		t.Error("wrapper hides the base's obliviousness")
	}
}
