package chaos

import (
	"fmt"

	"anondyn"
)

// Verdict is one assertion's pass/fail outcome — a row of the report's
// verdict block.
type Verdict struct {
	Assertion string `json:"assertion"`
	Pass      bool   `json:"pass"`
	Detail    string `json:"detail"`
}

// Eval evaluates the stress block's assertions against a completed
// sweep's aggregate rows. rows[i] aggregates per runs of cell i, run j
// of cell i seeded baseSeed + i·per + j — the Grid seed flattening —
// so survivor floors recompile each run's storm from the spec alone:
// verdicts derive from (spec, rows), which a dynagrid submit client
// holds just like a local run, and the two render byte-identically.
func Eval(s *Stress, baseSeed int64, per int, rows []anondyn.CellResult) []Verdict {
	if per < 1 {
		per = 1
	}
	runs, decided, violations := 0, 0, 0
	maxRounds := 0.0
	for _, r := range rows {
		runs += r.Runs
		decided += r.Decided
		violations += r.Violations
		if r.Rounds.Max > maxRounds {
			maxRounds = r.Rounds.Max
		}
	}
	minSurvivors := -1
	survivorFloor := func() int {
		if minSurvivors >= 0 {
			return minSurvivors
		}
		minSurvivors = s.Fleet.TotalNodes
		for i := range rows {
			for j := 0; j < per; j++ {
				st := s.CompileStorm(baseSeed + int64(i*per+j))
				if st.Survivors < minSurvivors {
					minSurvivors = st.Survivors
				}
			}
		}
		return minSurvivors
	}
	verdicts := make([]Verdict, 0, len(s.Assertions))
	for _, a := range s.Assertions {
		v := Verdict{Assertion: a.Name()}
		switch a.Kind {
		case "converged":
			v.Pass = decided == runs
			v.Detail = fmt.Sprintf("decided %d/%d runs", decided, runs)
		case "agreement":
			v.Pass = violations == 0
			v.Detail = fmt.Sprintf("%d eps-agreement violations", violations)
		case "max_rounds":
			switch {
			case decided < runs:
				v.Detail = fmt.Sprintf("%d runs never decided within the %d-round budget", runs-decided, s.Rounds)
			case maxRounds > float64(a.Bound):
				v.Detail = fmt.Sprintf("slowest run took %.0f rounds (bound %d)", maxRounds, a.Bound)
			default:
				v.Pass = true
				v.Detail = fmt.Sprintf("slowest run decided in %.0f rounds (bound %d)", maxRounds, a.Bound)
			}
		case "survivors":
			bound, _ := parseSurvivorBound(a.Expr) // validated at parse time
			floor, min := bound(s.Fleet.TotalNodes), survivorFloor()
			v.Pass = min >= floor
			v.Detail = fmt.Sprintf("min survivors %d of %d (bound %d)", min, s.Fleet.TotalNodes, floor)
		}
		verdicts = append(verdicts, v)
	}
	return verdicts
}
