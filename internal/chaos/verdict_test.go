package chaos

import (
	"testing"

	"anondyn"
)

// row builds a one-cell aggregate with the given outcome counts.
func row(runs, decided, violations int, maxRounds float64) anondyn.CellResult {
	r := anondyn.CellResult{N: 100}
	r.Runs = runs
	r.Decided = decided
	r.Violations = violations
	r.Rounds.Max = maxRounds
	return r
}

// TestEvalVerdicts: each assertion kind passes and fails on the
// documented evidence.
func TestEvalVerdicts(t *testing.T) {
	s := &Stress{
		Fleet:  Fleet{TotalNodes: 100},
		Rounds: 50,
		Events: []Event{{Kind: "crash", Round: 2, Count: 30}},
		Assertions: []Assertion{
			{Kind: "converged"},
			{Kind: "agreement"},
			{Kind: "max_rounds", Bound: 40},
			{Kind: "survivors", Expr: ">= n/2"},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	vs := Eval(s, 0, 3, []anondyn.CellResult{row(3, 3, 0, 22)})
	if len(vs) != 4 {
		t.Fatalf("got %d verdicts, want 4", len(vs))
	}
	for i, v := range vs {
		if !v.Pass {
			t.Errorf("healthy sweep: %s failed (%s)", vs[i].Assertion, v.Detail)
		}
	}
	// 30 crashes of 100 → 70 survivors ≥ 50: the floor passes.
	if vs[3].Assertion != "survivors >= n/2" {
		t.Errorf("survivors assertion named %q", vs[3].Assertion)
	}

	vs = Eval(s, 0, 3, []anondyn.CellResult{row(3, 2, 1, 48)})
	wantPass := []bool{false, false, false, true}
	for i, v := range vs {
		if v.Pass != wantPass[i] {
			t.Errorf("degraded sweep: %s pass=%v, want %v (%s)", v.Assertion, v.Pass, wantPass[i], v.Detail)
		}
	}

	// Decided but slow: max_rounds fails on the bound, not the budget.
	vs = Eval(s, 0, 3, []anondyn.CellResult{row(3, 3, 0, 45)})
	if vs[2].Pass {
		t.Errorf("max_rounds passed at 45 rounds against bound 40")
	}
}

// TestEvalSurvivorFloorAcrossRuns: the floor is the minimum over every
// run's recompiled storm — a rate-driven storm that kills more nodes
// in one run than another must report the worse run.
func TestEvalSurvivorFloorAcrossRuns(t *testing.T) {
	s := &Stress{
		Fleet:      Fleet{TotalNodes: 50},
		Rounds:     30,
		Events:     []Event{{Kind: "crash-storm", Round: 1, Duration: 10, Rate: 0.05}},
		Assertions: []Assertion{{Kind: "survivors", Expr: ">= 49"}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	per := 8
	min := 50
	for j := 0; j < per; j++ {
		if st := s.CompileStorm(int64(j)); st.Survivors < min {
			min = st.Survivors
		}
	}
	vs := Eval(s, 0, per, []anondyn.CellResult{row(per, per, 0, 10)})
	wantDetail := Verdict{
		Assertion: "survivors >= 49",
		Pass:      min >= 49,
		Detail:    vs[0].Detail,
	}
	if vs[0] != wantDetail {
		t.Errorf("verdict %+v, want pass=%v against floor %d", vs[0], wantDetail.Pass, min)
	}
	if vs[0].Detail == "" {
		t.Error("survivor verdict carries no detail")
	}
}
