package chaos

import "testing"

// TestStreamGolden pins the chaos stream's draw sequence — the
// StreamVersion v1 contract. If any of these values change, committed
// storm specs replay different storms: that is a contract break and
// requires a StreamVersion bump, not a test update.
func TestStreamGolden(t *testing.T) {
	if StreamVersion != 1 {
		t.Fatalf("StreamVersion = %d; these golden values pin v1", StreamVersion)
	}
	s := newStream(mix(42, saltStorm))
	wantNext := []uint64{0x70923fff0bdd0f6a, 0x71f250ee13b7113a, 0xc42b96d4261e75c4, 0xe301de944eac16e2}
	for i, want := range wantNext {
		if got := s.next(); got != want {
			t.Errorf("storm stream draw %d = %#016x, want %#016x", i, got, want)
		}
	}
	s2 := newStream(mix2(42, 7, saltStorm))
	wantMix2 := []uint64{0xb06d7c9a287a6830, 0x7d5d5013127efb68}
	for i, want := range wantMix2 {
		if got := s2.next(); got != want {
			t.Errorf("mix2 stream draw %d = %#016x, want %#016x", i, got, want)
		}
	}
	f := newStream(mix(1, saltFleet))
	wantFloat := []float64{0.93023630731952911, 0.6453360210446426, 0.78741600967010716}
	for i, want := range wantFloat {
		if got := f.float64(); got != want {
			t.Errorf("fleet stream float %d = %.17g, want %.17g", i, got, want)
		}
	}
	if got := newStream(mix(9, saltInputs)).intn(100); got != 70 {
		t.Errorf("input stream intn(100) = %d, want 70", got)
	}
}

// TestStreamIndependence: the four salts give one seed four unrelated
// streams, and different run seeds give different storm streams.
func TestStreamIndependence(t *testing.T) {
	seeds := map[string]uint64{
		"fleet":  mix(5, saltFleet),
		"storm":  mix(5, saltStorm),
		"inputs": mix(5, saltInputs),
		"starve": mix(5, saltStarve),
	}
	seen := map[uint64]string{}
	for name, s := range seeds {
		if prev, dup := seen[s]; dup {
			t.Errorf("salt %s collides with %s", name, prev)
		}
		seen[s] = name
	}
	if mix2(5, 0, saltStorm) == mix2(5, 1, saltStorm) {
		t.Error("storm stream seed ignores the run seed")
	}
	if mix2(5, 1, saltStorm) == mix2(6, 1, saltStorm) {
		t.Error("storm stream seed ignores the stress seed")
	}
}
