package chaos

import (
	"strings"
	"testing"
)

// validStress is a baseline stress block the validation tests perturb.
func validStress() *Stress {
	return &Stress{
		Fleet: Fleet{
			TotalNodes: 100,
			Groups:     5,
			Templates: []Template{
				{Name: "a", Weight: 3, Input: "random"},
				{Name: "b", Weight: 1, Input: "spread"},
			},
		},
		Seed:   11,
		Rounds: 50,
		Events: []Event{
			{Kind: "crash", Round: 3, Count: 4, Mode: "silent"},
			{Kind: "crash-storm", Round: 5, Duration: 3, Rate: 0.01},
			{Kind: "byzantine", Count: 2, Strategy: "extremist", Args: []float64{1}},
			{Kind: "group-outage", Round: 8, Count: 1},
			{Kind: "cascade", Round: 10, Count: 2, Waves: 3, Spread: 4, Factor: 2},
			{Kind: "partition", Round: 12, Duration: 5, Groups: []int{0, 2}},
			{Kind: "starve", Round: 20, Duration: 4, Rate: 0.3},
		},
		Assertions: []Assertion{
			{Kind: "converged"},
			{Kind: "agreement"},
			{Kind: "max_rounds", Bound: 50},
			{Kind: "survivors", Expr: ">= n/2"},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validStress().Validate(); err != nil {
		t.Fatalf("baseline stress block rejected: %v", err)
	}
}

// TestValidateRejects: every malformed block is rejected with an error
// citing the offending key.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Stress)
		wantKey string
	}{
		{"no fleet", func(s *Stress) { s.Fleet.TotalNodes = 0 }, "stress.fleet.total_nodes"},
		{"groups exceed nodes", func(s *Stress) { s.Fleet.Groups = 1000 }, "stress.fleet.groups"},
		{"zero template weight", func(s *Stress) { s.Fleet.Templates[1].Weight = 0 }, "stress.fleet.templates[1].weight"},
		{"bad input generator", func(s *Stress) { s.Fleet.Templates[0].Input = "gauss" }, "stress.fleet.templates[0].input"},
		{"bad value input", func(s *Stress) { s.Fleet.Templates[0].Input = "value:x" }, "stress.fleet.templates[0].input"},
		{"no duration", func(s *Stress) { s.Rounds = 0 }, "stress.rounds"},
		{"crash without victims", func(s *Stress) { s.Events[0].Count = 0 }, "stress.events[0].count"},
		{"crash at round zero", func(s *Stress) { s.Events[0].Round = 0 }, "stress.events[0].round"},
		{"bad crash mode", func(s *Stress) { s.Events[0].Mode = "loud" }, "stress.events[0].mode"},
		{"storm without window", func(s *Stress) { s.Events[1].Duration = 0 }, "stress.events[1].duration"},
		{"storm rate out of range", func(s *Stress) { s.Events[1].Rate = 1.5 }, "stress.events[1].rate"},
		{"byzantine mid-run", func(s *Stress) { s.Events[2].Round = 4 }, "stress.events[2].round"},
		{"unknown strategy", func(s *Stress) { s.Events[2].Strategy = "chaotic" }, "stress.events[2].strategy"},
		{"strategy arity", func(s *Stress) { s.Events[2].Strategy = "silent"; s.Events[2].Args = []float64{1} }, "stress.events[2].args"},
		{"outage without groups", func(s *Stress) { s.Fleet.Groups = 0 }, "stress.events[3].kind"},
		{"outage count and list", func(s *Stress) { s.Events[3].Groups = []int{1}; s.Events[3].Count = 1 }, "stress.events[3].count"},
		{"group out of range", func(s *Stress) { s.Events[5].Groups = []int{9} }, "stress.events[5].groups[0]"},
		{"cascade without spread", func(s *Stress) { s.Events[4].Spread = 0 }, "stress.events[4].spread"},
		{"unknown event kind", func(s *Stress) { s.Events[6].Kind = "meteor" }, "stress.events[6].kind"},
		{"unknown assertion", func(s *Stress) { s.Assertions[0].Kind = "victory" }, "stress.assertions[0]"},
		{"bad survivor expr", func(s *Stress) { s.Assertions[3].Expr = "at least half" }, "stress.assertions[3]"},
		{"max_rounds without bound", func(s *Stress) { s.Assertions[2].Bound = 0 }, "stress.assertions[2]"},
	}
	for _, tc := range cases {
		s := validStress()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantKey) {
			t.Errorf("%s: error %q does not cite %s", tc.name, err, tc.wantKey)
		}
	}
}

// TestAssertionNames pins the canonical verdict-row spellings.
func TestAssertionNames(t *testing.T) {
	cases := map[string]Assertion{
		"converged":        {Kind: "converged"},
		"agreement":        {Kind: "agreement"},
		"max_rounds <= 40": {Kind: "max_rounds", Bound: 40},
		"survivors >= n/2": {Kind: "survivors", Expr: ">= n/2"},
	}
	for want, a := range cases {
		if got := a.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// TestPlanFleet: template draws are weighted and seed-stable; groups
// are contiguous equal blocks.
func TestPlanFleet(t *testing.T) {
	s := validStress()
	s.Fleet.TotalNodes = 10000
	p := s.Plan()
	if p.N != 10000 || len(p.Template) != 10000 || len(p.Group) != 10000 {
		t.Fatalf("plan shape: N=%d templates=%d groups=%d", p.N, len(p.Template), len(p.Group))
	}
	counts := make([]int, len(s.Fleet.Templates))
	for _, ti := range p.Template {
		counts[ti]++
	}
	// Weight 3:1 — the draw should land near 7500/2500.
	if counts[0] < 7000 || counts[0] > 8000 {
		t.Errorf("weighted template draw: %v (weights 3:1 over 10000)", counts)
	}
	for i := 1; i < p.N; i++ {
		if p.Group[i] < p.Group[i-1] {
			t.Fatalf("groups not contiguous at node %d", i)
		}
	}
	if p.Group[0] != 0 || p.Group[p.N-1] != s.Fleet.Groups-1 {
		t.Errorf("group range [%d, %d], want [0, %d]", p.Group[0], p.Group[p.N-1], s.Fleet.Groups-1)
	}
	q := s.Plan()
	for i := range p.Template {
		if p.Template[i] != q.Template[i] {
			t.Fatal("plan is not a pure function of the stress seed")
		}
	}

	// A single template consumes no fleet draws and yields nil indices.
	s.Fleet.Templates = s.Fleet.Templates[:1]
	if p := s.Plan(); p.Template != nil {
		t.Error("single-template fleet allocated a template vector")
	}
}

// TestInputs: each generator kind produces its documented vector, and
// random draws are run-seed-dependent but reproducible.
func TestInputs(t *testing.T) {
	s := &Stress{Fleet: Fleet{TotalNodes: 4, Templates: []Template{{Name: "v", Weight: 1, Input: "value:0.25"}}}, Rounds: 10}
	for i, v := range s.Inputs(3) {
		if v != 0.25 {
			t.Errorf("value template node %d = %g", i, v)
		}
	}
	s.Fleet.Templates[0].Input = "spread"
	in := s.Inputs(3)
	if in[0] != 0 || in[3] != 1 {
		t.Errorf("spread endpoints = %g, %g", in[0], in[3])
	}
	s.Fleet.Templates[0].Input = "random"
	a, b, c := s.Inputs(3), s.Inputs(3), s.Inputs(4)
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
		if a[i] < 0 || a[i] >= 1 {
			t.Errorf("random input %d = %g outside [0,1)", i, a[i])
		}
	}
	if !same {
		t.Error("same run seed drew different inputs")
	}
	if !diff {
		t.Error("different run seeds drew identical inputs")
	}
}
