package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"anondyn"
)

// Plan is the fleet realization: which template and which correlation
// group every node belongs to. It is a pure function of the stress
// seed alone — the fleet is the same in every Monte-Carlo run; only
// the storm realization varies with the run seed.
type Plan struct {
	// N is the fleet size.
	N int
	// Template holds each node's template index; nil when the fleet
	// declares at most one template.
	Template []int
	// Group holds each node's correlation group; nil when ungrouped.
	// Groups are contiguous ID blocks (group g = IDs [g·n/G, (g+1)·n/G)),
	// the same Clustered-style partition the adversary layer uses.
	Group []int
}

// Plan materializes the fleet (template draws consume the fleet
// stream; see StreamVersion).
func (s *Stress) Plan() *Plan {
	n := s.Fleet.TotalNodes
	p := &Plan{N: n}
	if len(s.Fleet.Templates) > 1 {
		total := 0
		for _, t := range s.Fleet.Templates {
			total += t.Weight
		}
		rng := newStream(mix(s.Seed, saltFleet))
		p.Template = make([]int, n)
		for i := range p.Template {
			draw := rng.intn(total)
			for j, t := range s.Fleet.Templates {
				if draw -= t.Weight; draw < 0 {
					p.Template[i] = j
					break
				}
			}
		}
	}
	if g := s.Fleet.Groups; g > 0 {
		p.Group = make([]int, n)
		for i := range p.Group {
			p.Group[i] = i * g / n
		}
	}
	return p
}

// TimelineEntry is one rendered storm occurrence — a row of the
// report's storm timeline.
type TimelineEntry struct {
	Round  int    `json:"round"`
	Kind   string `json:"kind"`
	Nodes  int    `json:"nodes"`
	Detail string `json:"detail,omitempty"`
}

// Storm is one run's materialized chaos schedule: the crash schedule
// and Byzantine cast it installs on the scenario, the connectivity
// windows its adversary wrapper enforces, and the rendered timeline.
type Storm struct {
	// Crashes is the per-node crash schedule the events produced.
	Crashes map[int]anondyn.Crash
	// Byzantine is the per-node strategy cast.
	Byzantine map[int]anondyn.Strategy
	// Survivors counts the nodes no event faulted.
	Survivors int
	// Timeline lists every occurrence in ascending round order.
	Timeline []TimelineEntry

	n       int
	cuts    []cutWindow
	starves []starveWindow
}

// cutWindow suppresses every link crossing the cut during [from, until).
type cutWindow struct {
	from, until int
	inCut       []bool // per node
}

// starveWindow drops each surviving link with probability rate per
// round during [from, until), from its own seeded stream.
type starveWindow struct {
	from, until int
	rate        float64
	seed        uint64
}

// CompileStorm materializes the chaos schedule for one run. The storm
// is a pure function of (stress block, run seed) — see StreamVersion
// for the draw-order contract — so the scenario a worker assembles for
// global run k is identical on every machine.
func (s *Stress) CompileStorm(runSeed int64) *Storm {
	n := s.Fleet.TotalNodes
	plan := s.Plan()
	rng := newStream(mix2(s.Seed, runSeed, saltStorm))
	st := &Storm{
		n:         n,
		Crashes:   make(map[int]anondyn.Crash),
		Byzantine: make(map[int]anondyn.Strategy),
	}
	faulted := make([]bool, n)
	crash := func(node, round int, mode string) {
		faulted[node] = true
		if mode == "silent" {
			st.Crashes[node] = anondyn.CrashSilent(round)
		} else {
			st.Crashes[node] = anondyn.CrashAt(round)
		}
	}
	for i := range s.Events {
		e := &s.Events[i]
		switch e.Kind {
		case "crash":
			victims := pickNodes(rng, faulted, e.Count)
			for _, v := range victims {
				crash(v, e.Round, e.Mode)
			}
			st.note(e.Round, e.Kind, len(victims), "mode "+modeName(e.Mode))
		case "crash-storm":
			total := 0
			for r := e.Round; r < e.Round+e.Duration; r++ {
				for node := 0; node < n; node++ {
					if faulted[node] {
						continue
					}
					if rng.float64() < e.Rate {
						crash(node, r, e.Mode)
						total++
					}
				}
			}
			st.note(e.Round, e.Kind, total,
				fmt.Sprintf("rate %g over rounds %d-%d", e.Rate, e.Round, e.Round+e.Duration-1))
		case "byzantine":
			victims := pickNodes(rng, faulted, e.Count)
			for _, v := range victims {
				st.Byzantine[v] = buildStrategy(e, runSeed, v)
			}
			st.note(0, e.Kind, len(victims), "strategy "+e.Strategy)
		case "group-outage":
			groups := pickGroups(rng, s.Fleet.Groups, e)
			total := 0
			for node := 0; node < n; node++ {
				if faulted[node] || !containsGroup(groups, plan.Group[node]) {
					continue
				}
				crash(node, e.Round, e.Mode)
				total++
			}
			st.note(e.Round, e.Kind, total, fmt.Sprintf("groups %v", groups))
		case "cascade":
			size, round := e.Count, e.Round
			factor := e.Factor
			if factor == 0 {
				factor = 2
			}
			for w := 0; w < e.Waves; w++ {
				victims := pickNodes(rng, faulted, size)
				for _, v := range victims {
					crash(v, round, e.Mode)
				}
				st.note(round, e.Kind, len(victims), fmt.Sprintf("wave %d/%d", w+1, e.Waves))
				round += e.Spread
				size = int(math.Ceil(float64(size) * factor))
			}
		case "partition":
			groups := pickGroups(rng, s.Fleet.Groups, e)
			inCut := make([]bool, n)
			total := 0
			for node := 0; node < n; node++ {
				if containsGroup(groups, plan.Group[node]) {
					inCut[node] = true
					total++
				}
			}
			st.cuts = append(st.cuts, cutWindow{from: e.Round, until: e.Round + e.Duration, inCut: inCut})
			st.note(e.Round, e.Kind, total,
				fmt.Sprintf("groups %v cut off for rounds %d-%d", groups, e.Round, e.Round+e.Duration-1))
		case "starve":
			seed := rng.next()
			st.starves = append(st.starves, starveWindow{from: e.Round, until: e.Round + e.Duration, rate: e.Rate, seed: seed})
			st.note(e.Round, e.Kind, n,
				fmt.Sprintf("drop rate %g over rounds %d-%d", e.Rate, e.Round, e.Round+e.Duration-1))
		}
	}
	st.Survivors = n - len(st.Crashes) - len(st.Byzantine)
	sort.SliceStable(st.Timeline, func(i, j int) bool { return st.Timeline[i].Round < st.Timeline[j].Round })
	return st
}

// note appends one timeline entry.
func (st *Storm) note(round int, kind string, nodes int, detail string) {
	st.Timeline = append(st.Timeline, TimelineEntry{Round: round, Kind: kind, Nodes: nodes, Detail: detail})
}

func modeName(mode string) string {
	if mode == "" {
		return "clean"
	}
	return mode
}

// pickNodes draws up to count victims from the not-yet-faulted nodes —
// a partial Fisher–Yates over the eligible IDs in ascending order —
// and marks them faulted. Fewer eligible nodes than count yields them
// all.
func pickNodes(rng *stream, faulted []bool, count int) []int {
	eligible := make([]int, 0, len(faulted))
	for i, f := range faulted {
		if !f {
			eligible = append(eligible, i)
		}
	}
	if count > len(eligible) {
		count = len(eligible)
	}
	for i := 0; i < count; i++ {
		j := i + rng.intn(len(eligible)-i)
		eligible[i], eligible[j] = eligible[j], eligible[i]
		faulted[eligible[i]] = true
	}
	return eligible[:count]
}

// pickGroups resolves an event's victim groups: the explicit list, or
// Count groups drawn by partial Fisher–Yates over the group IDs.
// Returned ascending for stable timeline rendering.
func pickGroups(rng *stream, total int, e *Event) []int {
	if len(e.Groups) > 0 {
		out := append([]int(nil), e.Groups...)
		sort.Ints(out)
		return out
	}
	ids := make([]int, total)
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < e.Count; i++ {
		j := i + rng.intn(total-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	out := ids[:e.Count]
	sort.Ints(out)
	return out
}

func containsGroup(groups []int, g int) bool {
	for _, x := range groups {
		if x == g {
			return true
		}
	}
	return false
}

// buildStrategy constructs one Byzantine node's strategy, mirroring the
// spec format's cast semantics (noise seeds derive from run seed +
// node ID).
func buildStrategy(e *Event, runSeed int64, node int) anondyn.Strategy {
	arg := func(i int) float64 {
		if i < len(e.Args) {
			return e.Args[i]
		}
		return 0
	}
	switch e.Strategy {
	case "extremist":
		return anondyn.Extremist(arg(0))
	case "equivocate":
		low, high := 0.0, 1.0
		if len(e.Args) == 2 {
			low, high = arg(0), arg(1)
		}
		return anondyn.Equivocator(low, high)
	case "noise":
		return anondyn.RandomNoise(runSeed + int64(node))
	case "laggard":
		return anondyn.Laggard(arg(0))
	case "mimic":
		return anondyn.Mimic(int(arg(0)))
	default: // "silent" — validated at parse time
		return anondyn.Silent()
	}
}

// Inputs generates one run's input vector from the fleet templates:
// random-template nodes draw from the input stream, the other kinds
// are deterministic functions of the node position.
func (s *Stress) Inputs(runSeed int64) []float64 {
	n := s.Fleet.TotalNodes
	plan := s.Plan()
	rng := newStream(mix2(s.Seed, runSeed, saltInputs))
	out := make([]float64, n)
	for i := range out {
		input := ""
		if plan.Template != nil {
			input = s.Fleet.Templates[plan.Template[i]].Input
		} else if len(s.Fleet.Templates) == 1 {
			input = s.Fleet.Templates[0].Input
		}
		name, argStr, _ := strings.Cut(input, ":")
		switch name {
		case "", "random":
			out[i] = rng.float64()
		case "spread":
			if n > 1 {
				out[i] = float64(i) / float64(n-1)
			}
		case "zero":
			out[i] = 0
		case "one":
			out[i] = 1
		case "value":
			v, _ := strconv.ParseFloat(argStr, 64) // validated at parse time
			out[i] = v
		}
	}
	return out
}
