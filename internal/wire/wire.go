// Package wire gives the model's messages a concrete on-the-wire shape
// so the limited-bandwidth assumption (§II-A: one message of O(log n)
// bits per link per round) can be accounted for, and so the §VII
// bandwidth/convergence trade-off (experiment E8) can be measured in
// bytes rather than hand-waved.
//
// Encoding: a varint phase followed by the state value. Values are
// quantized to a fixed number of fractional bits (default 30, giving
// ~1e-9 resolution on [0,1] — far below every ε the experiments use);
// the quantized integer is varint-encoded. History entries, when
// present, repeat the same (phase, value) shape. Everything is
// deterministic and byte-order independent.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"anondyn/internal/core"
)

// FractionBits is the fixed-point resolution for state values in [0,1].
const FractionBits = 30

// scale is the fixed-point multiplier.
const scale = 1 << FractionBits

// ErrTruncated reports a message that ends mid-field.
var ErrTruncated = errors.New("wire: truncated message")

// quantize maps v ∈ [0,1] to its fixed-point code, clamping stray values
// (Byzantine senders may claim anything; the wire cannot carry more than
// the code space).
func quantize(v float64) uint64 {
	if math.IsNaN(v) || v <= 0 {
		return 0
	}
	if v >= 1 {
		return scale
	}
	return uint64(math.Round(v * scale))
}

// dequantize inverts quantize.
func dequantize(q uint64) float64 {
	if q > scale {
		q = scale
	}
	return float64(q) / scale
}

// Quantize rounds a value to exactly the precision the wire carries.
// Algorithms themselves work on float64; tests use Quantize to confirm
// that wire round-trips lose nothing beyond the declared resolution.
func Quantize(v float64) float64 { return dequantize(quantize(v)) }

// Encode serializes a message, appending to dst and returning the
// extended slice.
func Encode(dst []byte, m core.Message) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(m.Phase))
	dst = append(dst, buf[:n]...)
	n = binary.PutUvarint(buf[:], quantize(m.Value))
	dst = append(dst, buf[:n]...)
	n = binary.PutUvarint(buf[:], uint64(len(m.History)))
	dst = append(dst, buf[:n]...)
	for _, h := range m.History {
		n = binary.PutUvarint(buf[:], uint64(h.Phase))
		dst = append(dst, buf[:n]...)
		n = binary.PutUvarint(buf[:], quantize(h.Value))
		dst = append(dst, buf[:n]...)
	}
	return dst
}

// Decode parses one message from the front of src, returning the message
// and the number of bytes consumed.
func Decode(src []byte) (core.Message, int, error) {
	var m core.Message
	phase, off, err := uvarint(src, 0)
	if err != nil {
		return m, 0, fmt.Errorf("phase: %w", err)
	}
	val, off, err := uvarint(src, off)
	if err != nil {
		return m, 0, fmt.Errorf("value: %w", err)
	}
	count, off, err := uvarint(src, off)
	if err != nil {
		return m, 0, fmt.Errorf("history length: %w", err)
	}
	if count > uint64(len(src)) {
		// Each entry needs ≥ 2 bytes; a count beyond the remaining bytes
		// is corrupt and must not drive a giant allocation.
		return m, 0, fmt.Errorf("history length %d: %w", count, ErrTruncated)
	}
	m.Phase = int(phase)
	m.Value = dequantize(val)
	if count > 0 {
		m.History = make([]core.HistEntry, count)
		for i := range m.History {
			var hp, hv uint64
			hp, off, err = uvarint(src, off)
			if err != nil {
				return core.Message{}, 0, fmt.Errorf("history[%d] phase: %w", i, err)
			}
			hv, off, err = uvarint(src, off)
			if err != nil {
				return core.Message{}, 0, fmt.Errorf("history[%d] value: %w", i, err)
			}
			m.History[i] = core.HistEntry{Phase: int(hp), Value: dequantize(hv)}
		}
	}
	return m, off, nil
}

func uvarint(src []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return 0, 0, ErrTruncated
	}
	return v, off + n, nil
}

// Size returns the encoded length of a message in bytes without
// allocating.
func Size(m core.Message) int {
	s := uvarintLen(uint64(m.Phase)) + uvarintLen(quantize(m.Value)) + uvarintLen(uint64(len(m.History)))
	for _, h := range m.History {
		s += uvarintLen(uint64(h.Phase)) + uvarintLen(quantize(h.Value))
	}
	return s
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
