package wire

import (
	"testing"

	"anondyn/internal/core"
)

func BenchmarkEncodePlain(b *testing.B) {
	m := core.Message{Value: 0.73241, Phase: 17}
	buf := make([]byte, 0, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
	if len(buf) == 0 {
		b.Fatal("empty encoding")
	}
}

func BenchmarkEncodeHistory8(b *testing.B) {
	m := core.Message{Value: 0.7, Phase: 9}
	for q := 8; q >= 1; q-- {
		m.History = append(m.History, core.HistEntry{Value: float64(q) / 10, Phase: q})
	}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func BenchmarkDecodePlain(b *testing.B) {
	buf := Encode(nil, core.Message{Value: 0.73241, Phase: 17})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSize(b *testing.B) {
	m := core.Message{Value: 0.73241, Phase: 17, History: []core.HistEntry{{Value: 0.5, Phase: 16}}}
	b.ReportAllocs()
	total := 0
	for i := 0; i < b.N; i++ {
		total += Size(m)
	}
	if total == 0 {
		b.Fatal("zero size")
	}
}
