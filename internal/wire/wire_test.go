package wire

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anondyn/internal/core"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []core.Message{
		{},
		{Value: 0.5, Phase: 0},
		{Value: 1, Phase: 12345},
		{Value: 0.123456789, Phase: 3},
		{Value: 0.5, Phase: 2, History: []core.HistEntry{
			{Value: 0.25, Phase: 1}, {Value: 0, Phase: 0},
		}},
	}
	for _, m := range msgs {
		buf := Encode(nil, m)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", m, err)
		}
		if n != len(buf) {
			t.Errorf("%v: consumed %d of %d bytes", m, n, len(buf))
		}
		if got.Phase != m.Phase {
			t.Errorf("%v: phase %d → %d", m, m.Phase, got.Phase)
		}
		if math.Abs(got.Value-m.Value) > 1.0/(1<<FractionBits) {
			t.Errorf("%v: value error %g beyond resolution", m, math.Abs(got.Value-m.Value))
		}
		if len(got.History) != len(m.History) {
			t.Fatalf("%v: history length %d → %d", m, len(m.History), len(got.History))
		}
		for i := range m.History {
			if got.History[i].Phase != m.History[i].Phase {
				t.Errorf("history[%d] phase mismatch", i)
			}
			if math.Abs(got.History[i].Value-m.History[i].Value) > 1.0/(1<<FractionBits) {
				t.Errorf("history[%d] value error beyond resolution", i)
			}
		}
	}
}

func TestSizeMatchesEncoding(t *testing.T) {
	msgs := []core.Message{
		{},
		{Value: 1, Phase: 1 << 20},
		{Value: 0.999, Phase: 7, History: []core.HistEntry{{Value: 0.1, Phase: 6}}},
	}
	for _, m := range msgs {
		if got, want := Size(m), len(Encode(nil, m)); got != want {
			t.Errorf("Size(%v) = %d, encoded = %d", m, got, want)
		}
	}
}

func TestPlainMessageStaysSmall(t *testing.T) {
	// The O(log n)-bit claim: a history-free message is a handful of
	// bytes regardless of network size.
	m := core.Message{Value: 0.7324, Phase: 40}
	if s := Size(m); s > 8 {
		t.Errorf("plain message is %d bytes, want ≤ 8", s)
	}
}

func TestQuantizeClamps(t *testing.T) {
	if Quantize(-0.5) != 0 {
		t.Error("negative value not clamped to 0")
	}
	if Quantize(1.5) != 1 {
		t.Error("value > 1 not clamped to 1")
	}
	if Quantize(math.NaN()) != 0 {
		t.Error("NaN not clamped to 0")
	}
	if Quantize(0.5) != 0.5 {
		t.Error("0.5 should be exactly representable")
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Encode(nil, core.Message{Value: 0.5, Phase: 300, History: []core.HistEntry{{Value: 0.25, Phase: 1}}})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Decode(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeCorruptHistoryCount(t *testing.T) {
	// phase 0, value 0, history count huge — must error, not allocate.
	buf := []byte{0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, _, err := Decode(buf); err == nil {
		t.Error("absurd history count accepted")
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	buf := Encode(prefix, core.Message{Value: 0.5, Phase: 1})
	if len(buf) <= 3 || buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Error("Encode must append to dst")
	}
	if _, n, err := Decode(buf[3:]); err != nil || n != len(buf)-3 {
		t.Errorf("appended message decode failed: %v", err)
	}
}

// TestWireQuick: round trip over random messages preserves phase exactly
// and value within resolution; Size always agrees with Encode.
func TestWireQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}
	property := func(vRaw uint32, phase uint16, histRaw []uint16) bool {
		m := core.Message{
			Value: float64(vRaw) / float64(math.MaxUint32),
			Phase: int(phase),
		}
		for i, h := range histRaw {
			if i == 8 {
				break
			}
			m.History = append(m.History, core.HistEntry{
				Value: float64(h) / 65535,
				Phase: i,
			})
		}
		buf := Encode(nil, m)
		if len(buf) != Size(m) {
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if got.Phase != m.Phase || len(got.History) != len(m.History) {
			return false
		}
		return math.Abs(got.Value-m.Value) <= 1.0/(1<<FractionBits)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
