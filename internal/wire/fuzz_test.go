package wire

import (
	"math"
	"testing"

	"anondyn/internal/core"
)

// FuzzDecode hardens the wire decoder against arbitrary input: it must
// never panic, never allocate absurdly, and anything it accepts must
// re-encode to something it accepts again (decode∘encode fixpoint).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add(Encode(nil, core.Message{Value: 0.5, Phase: 3}))
	f.Add(Encode(nil, core.Message{Value: 1, Phase: 1 << 20, History: []core.HistEntry{
		{Value: 0.25, Phase: 2}, {Value: 0, Phase: 0},
	}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if math.IsNaN(m.Value) || m.Value < 0 || m.Value > 1 {
			t.Fatalf("decoded value %g outside [0,1]", m.Value)
		}
		// Round trip: the canonical re-encoding must decode to the same
		// message.
		buf := Encode(nil, m)
		m2, n2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(buf) || m2.Phase != m.Phase || m2.Value != m.Value || len(m2.History) != len(m.History) {
			t.Fatalf("fixpoint violated: %v → %v", m, m2)
		}
	})
}
