// Package harness is the worker-pool batch executor behind every
// Monte-Carlo workload in this repository: RunMany, the experiment
// sweeps, and the CLI batch modes all funnel through Run.
//
// The contract is determinism first: tasks are independent and seeded,
// workers execute them in whatever order scheduling allows, and the
// collector re-orders completions so the sink observes results in
// strict index order (0, 1, 2, …). The output of a batch is therefore
// byte-identical regardless of worker count or completion order.
//
// Aggregation is streaming: the sink consumes each result as soon as
// its turn comes and the harness retains nothing afterwards, so memory
// stays bounded by the in-flight window (worker count plus completion
// skew, or the hard Options.MaxPending cap) rather than the batch
// size. Retaining every result is an opt-in sink policy, not a harness
// property.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// maxCollectedErrors bounds how many per-task errors a batch retains
// verbatim; beyond it, only the count is reported.
const maxCollectedErrors = 16

// PoolObserver watches the lifecycle of one batch's worker pool — the
// utilization half of the metrics layer. Implementations must be safe
// for concurrent use: WorkerBusy fires from every worker goroutine.
// metrics.Collector satisfies it structurally; the harness declares its
// own copy so it depends on no other package.
type PoolObserver interface {
	// PoolStart reports the resolved pool size before any task runs.
	PoolStart(workers int)
	// WorkerBusy adjusts the busy-worker count: +1 as a worker picks up
	// a task, −1 as it finishes one.
	WorkerBusy(delta int)
}

// Options configures one batch.
type Options struct {
	// Workers is the pool size; values < 1 mean GOMAXPROCS. The pool
	// never exceeds the task count.
	Workers int
	// Retries is how many times a failing task is re-executed before
	// its error is recorded (0 = a single attempt).
	Retries int
	// OnProgress, when non-nil, is invoked after each task has been
	// delivered (success or failure), with the number delivered so far
	// and the batch size. Calls happen from one goroutine, in index
	// order — a progress bar needs no locking.
	OnProgress func(done, total int)
	// MaxPending bounds the collector's reorder window: at most this
	// many tasks may be dispatched beyond the next index the sink is
	// waiting for, so one slow task can hold back at most MaxPending−1
	// finished results instead of letting highly skewed per-task costs
	// grow the window with the batch size. 0 means unbounded. Values
	// below the worker count are raised to it, so bounding the window
	// never idles the pool.
	MaxPending int
	// Observer, when non-nil, receives pool-size and busy-worker
	// telemetry. Purely observational: it never affects scheduling,
	// ordering, or results.
	Observer PoolObserver
}

// workers resolves the effective pool size for n tasks.
func (o Options) workers(n int) int {
	w := o.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes tasks 0…n−1 on a worker pool and delivers each result
// to sink in strict index order from a single goroutine (sinks need no
// locking, and output is independent of worker count). task must be
// safe for concurrent calls with distinct indices; it is retried up to
// opts.Retries times on error. A task that exhausts its retries has
// its error collected — the batch keeps going — and its sink call is
// skipped. A sink error aborts the batch: no further sink calls, no
// new task dispatch; only already-dispatched tasks drain. Run returns
// all collected errors joined, or nil.
func Run[T any](n int, task func(i int) (T, error), sink func(i int, v T) error, opts Options) error {
	return RunPooled(n,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) (T, error) { return task(i) },
		sink, opts)
}

// RunPooled is Run with per-worker recyclable state: every worker calls
// newState once when it starts and hands the value to each task it
// executes. The state is what makes engine recycling possible — a
// worker's simulation engine, scratch buffers, or compiled scenario
// live across all the seeds that worker processes instead of being
// rebuilt per task. State is never shared between workers, so tasks
// may mutate it freely; determinism of the batch output additionally
// requires that a task's result not depend on which worker (and hence
// which state instance) executed it — true for engine recycling, where
// a Reset engine is indistinguishable from a fresh one.
//
// A newState error fails every task that worker would have run (the
// batch keeps going on the other workers, mirroring task errors).
func RunPooled[S, T any](n int, newState func() (S, error), task func(state S, i int) (T, error), sink func(i int, v T) error, opts Options) error {
	if n <= 0 {
		return nil
	}
	if sink == nil {
		sink = func(int, T) error { return nil }
	}

	type item struct {
		i   int
		v   T
		err error
	}
	workers := opts.workers(n)
	if opts.Observer != nil {
		opts.Observer.PoolStart(workers)
	}
	indices := make(chan int)
	done := make(chan item, workers)
	stop := make(chan struct{}) // closed on sink error: halt dispatch

	// The reorder window: dispatch acquires a slot per task, the
	// collector frees it when the task's result is consumed in order,
	// so dispatched-but-unconsumed tasks never exceed the window.
	var window chan struct{}
	if opts.MaxPending > 0 {
		size := opts.MaxPending
		if size < workers {
			size = workers
		}
		window = make(chan struct{}, size)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state, stateErr := newState()
			for i := range indices {
				if stateErr != nil {
					var zero T
					done <- item{i: i, v: zero, err: fmt.Errorf("worker state: %w", stateErr)}
					continue
				}
				if opts.Observer != nil {
					opts.Observer.WorkerBusy(1)
				}
				v, err := attempt(state, i, task, opts.Retries)
				if opts.Observer != nil {
					opts.Observer.WorkerBusy(-1)
				}
				done <- item{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		defer func() {
			close(indices)
			wg.Wait()
			close(done)
		}()
		for i := 0; i < n; i++ {
			if window != nil {
				select {
				case window <- struct{}{}:
				case <-stop:
					return
				}
			}
			select {
			case indices <- i:
			case <-stop:
				return
			}
		}
	}()

	// Collector: re-order completions so the sink sees index order.
	// The buffer holds only results that finished ahead of their turn,
	// so it stays small when task costs are comparable.
	pending := make(map[int]item)
	next := 0
	var taskErrs []error
	dropped := 0
	var sinkErr error
	for it := range done {
		pending[it.i] = it
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			switch {
			case cur.err != nil:
				if len(taskErrs) < maxCollectedErrors {
					taskErrs = append(taskErrs, fmt.Errorf("task %d: %w", cur.i, cur.err))
				} else {
					dropped++
				}
			case sinkErr == nil:
				if err := sink(cur.i, cur.v); err != nil {
					sinkErr = fmt.Errorf("sink at task %d: %w", cur.i, err)
					close(stop)
				}
			}
			next++
			if window != nil {
				<-window
			}
			if opts.OnProgress != nil {
				opts.OnProgress(next, n)
			}
		}
	}
	if dropped > 0 {
		taskErrs = append(taskErrs, fmt.Errorf("%d further task errors omitted", dropped))
	}
	if sinkErr != nil {
		taskErrs = append(taskErrs, sinkErr)
	}
	return errors.Join(taskErrs...)
}

// attempt runs one task with its bounded retry budget.
func attempt[S, T any](state S, i int, task func(state S, i int) (T, error), retries int) (T, error) {
	var (
		v   T
		err error
	)
	for try := 0; try <= retries; try++ {
		v, err = task(state, i)
		if err == nil {
			return v, nil
		}
	}
	return v, err
}
