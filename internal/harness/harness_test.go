package harness

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// collect runs a batch of n square tasks under the given worker count
// and returns the (index, value) pairs in sink-delivery order.
func collect(t *testing.T, n, workers int) []int {
	t.Helper()
	var got []int
	err := Run(n,
		func(i int) (int, error) {
			// Stagger completion so higher indices often finish first.
			time.Sleep(time.Duration((n-i)%7) * time.Microsecond)
			return i * i, nil
		},
		func(i, v int) error {
			if v != i*i {
				t.Errorf("task %d delivered %d", i, v)
			}
			got = append(got, i)
			return nil
		},
		Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestRunDeliversInOrder is the determinism contract: the sink sees
// index order whatever the pool size or completion order.
func TestRunDeliversInOrder(t *testing.T) {
	const n = 200
	want := collect(t, n, 1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), n + 5} {
		got := collect(t, n, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d delivered %v, want strict index order", workers, got)
		}
	}
	for i, idx := range want {
		if idx != i {
			t.Fatalf("delivery %d was index %d", i, idx)
		}
	}
}

func TestRunRetries(t *testing.T) {
	var mu sync.Mutex
	attempts := make(map[int]int)
	err := Run(8,
		func(i int) (int, error) {
			mu.Lock()
			attempts[i]++
			tries := attempts[i]
			mu.Unlock()
			if tries <= i%3 { // indices 1,2,4,5,7 fail their first tries
				return 0, fmt.Errorf("transient %d", i)
			}
			return i, nil
		},
		nil,
		Options{Workers: 4, Retries: 2})
	if err != nil {
		t.Fatalf("retries should have absorbed the transient failures: %v", err)
	}
	if attempts[2] != 3 {
		t.Errorf("task 2 ran %d times, want 3", attempts[2])
	}
}

func TestRunCollectsTaskErrors(t *testing.T) {
	var delivered []int
	err := Run(10,
		func(i int) (int, error) {
			if i%4 == 1 {
				return 0, errors.New("boom")
			}
			return i, nil
		},
		func(i, v int) error {
			delivered = append(delivered, i)
			return nil
		},
		Options{Workers: 3, Retries: 1})
	if err == nil {
		t.Fatal("failing tasks reported no error")
	}
	for _, i := range []int{1, 5, 9} {
		if !strings.Contains(err.Error(), fmt.Sprintf("task %d", i)) {
			t.Errorf("error %q does not mention task %d", err, i)
		}
	}
	if len(delivered) != 7 {
		t.Errorf("delivered %v, want the 7 surviving tasks", delivered)
	}
}

func TestRunBoundsCollectedErrors(t *testing.T) {
	err := Run(maxCollectedErrors+10,
		func(i int) (int, error) { return 0, errors.New("boom") },
		nil, Options{Workers: 4})
	if err == nil {
		t.Fatal("no error")
	}
	if got := strings.Count(err.Error(), "boom"); got != maxCollectedErrors {
		t.Errorf("retained %d verbatim errors, want %d", got, maxCollectedErrors)
	}
	if !strings.Contains(err.Error(), "10 further task errors omitted") {
		t.Errorf("error %q does not summarize the omitted tail", err)
	}
}

func TestRunSinkErrorStopsDeliveries(t *testing.T) {
	var delivered []int
	err := Run(10,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 2 {
				return errors.New("sink full")
			}
			delivered = append(delivered, i)
			return nil
		},
		Options{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "sink at task 2") {
		t.Fatalf("err = %v, want sink error", err)
	}
	if !reflect.DeepEqual(delivered, []int{0, 1}) {
		t.Errorf("delivered %v after sink failure, want [0 1]", delivered)
	}
}

// TestRunSinkErrorHaltsDispatch: after a sink failure no new tasks are
// handed to the pool — only the few already in flight drain.
func TestRunSinkErrorHaltsDispatch(t *testing.T) {
	const n = 100
	var mu sync.Mutex
	executed := 0
	err := Run(n,
		func(i int) (int, error) {
			mu.Lock()
			executed++
			mu.Unlock()
			return i, nil
		},
		func(i, v int) error { return errors.New("sink full") },
		Options{Workers: 1})
	if err == nil {
		t.Fatal("sink error not reported")
	}
	if executed > n/2 {
		t.Errorf("%d of %d tasks ran after the sink failed at task 0", executed, n)
	}
}

func TestRunProgress(t *testing.T) {
	var calls []int
	err := Run(5,
		func(i int) (int, error) { return i, nil },
		nil,
		Options{Workers: 3, OnProgress: func(done, total int) {
			if total != 5 {
				t.Errorf("total = %d", total)
			}
			calls = append(calls, done)
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(calls, []int{1, 2, 3, 4, 5}) {
		t.Errorf("progress calls = %v", calls)
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(0, func(i int) (int, error) { return 0, nil }, nil, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestRunConcurrentSinks exercises several batches with lock-free
// mutating sinks at once — under -race this verifies the single-
// goroutine sink guarantee.
func TestRunConcurrentSinks(t *testing.T) {
	var wg sync.WaitGroup
	for batch := 0; batch < 8; batch++ {
		wg.Add(1)
		go func(batch int) {
			defer wg.Done()
			sum := 0
			err := Run(50,
				func(i int) (int, error) { return batch*1000 + i, nil },
				func(i, v int) error { sum += v; return nil },
				Options{Workers: 4})
			if err != nil {
				t.Error(err)
			}
			if want := batch*1000*50 + 49*50/2; sum != want {
				t.Errorf("batch %d sum = %d, want %d", batch, sum, want)
			}
		}(batch)
	}
	wg.Wait()
}

// TestRunPooledStatePerWorker: every worker gets exactly one state
// instance, and tasks see their own worker's state only.
func TestRunPooledStatePerWorker(t *testing.T) {
	const n, workers = 64, 4
	var mu sync.Mutex
	states := 0
	type state struct{ id, tasks int }
	perState := make(map[*state]int)
	err := RunPooled(n,
		func() (*state, error) {
			mu.Lock()
			defer mu.Unlock()
			states++
			return &state{id: states}, nil
		},
		func(s *state, i int) (int, error) {
			s.tasks++ // would race if a state were shared between workers
			mu.Lock()
			perState[s] = s.tasks
			mu.Unlock()
			return i, nil
		},
		nil,
		Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if states != workers {
		t.Errorf("newState ran %d times for %d workers", states, workers)
	}
	total := 0
	for _, c := range perState {
		total += c
	}
	if total != n {
		t.Errorf("states saw %d tasks, want %d", total, n)
	}
}

// TestRunPooledStateError: a worker whose state fails to build fails its
// tasks with the state error; with every worker failing, the batch
// reports the error rather than hanging or succeeding.
func TestRunPooledStateError(t *testing.T) {
	boom := errors.New("no state for you")
	err := RunPooled(8,
		func() (int, error) { return 0, boom },
		func(_ int, i int) (int, error) { return i, nil },
		func(i, v int) error {
			t.Errorf("sink saw task %d despite state failure", i)
			return nil
		},
		Options{Workers: 2})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
}

// TestRunPooledOrderMatchesRun: RunPooled preserves the strict
// index-order sink contract whatever the worker count.
func TestRunPooledOrderMatchesRun(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var got []int
		err := RunPooled(40,
			func() (struct{}, error) { return struct{}{}, nil },
			func(_ struct{}, i int) (int, error) {
				time.Sleep(time.Duration((40-i)%5) * time.Microsecond)
				return i, nil
			},
			func(i, v int) error {
				got = append(got, v)
				return nil
			},
			Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if i != v {
				t.Fatalf("workers=%d: delivery %d carried %d", workers, i, v)
			}
		}
	}
}

// TestRunMaxPendingBoundsWindow pins the bounded-reorder contract:
// with task 0 stalled, dispatch may run at most MaxPending tasks ahead
// of the sink, however large the batch.
func TestRunMaxPendingBoundsWindow(t *testing.T) {
	const (
		n          = 128
		workers    = 4
		maxPending = 8
	)
	release := make(chan struct{})
	started := make(chan int, n)
	var got []int
	errc := make(chan error, 1)
	go func() {
		errc <- Run(n,
			func(i int) (int, error) {
				started <- i
				if i == 0 {
					<-release // stall the run everyone reorders behind
				}
				return i, nil
			},
			func(i, v int) error { got = append(got, v); return nil },
			Options{Workers: workers, MaxPending: maxPending})
	}()

	// Drain task starts until dispatch stalls on the full window. With
	// index 0 never consumed, no slot frees, so at most maxPending
	// tasks can ever start.
	seen := 0
	for timeout := time.After(5 * time.Second); ; {
		select {
		case <-started:
			seen++
			if seen > maxPending {
				close(release)
				t.Fatalf("%d tasks started with MaxPending=%d", seen, maxPending)
			}
		case <-timeout:
			t.Fatalf("pool stalled before filling the window (%d started)", seen)
		case <-time.After(50 * time.Millisecond):
			if seen == maxPending {
				close(release)
				if err := <-errc; err != nil {
					t.Fatal(err)
				}
				for i, v := range got {
					if v != i {
						t.Fatalf("delivery %d was index %d", i, v)
					}
				}
				if len(got) != n {
					t.Fatalf("delivered %d results, want %d", len(got), n)
				}
				return
			}
		}
	}
}

// TestRunMaxPendingBelowWorkers: a window smaller than the pool is
// raised to the pool size rather than starving it.
func TestRunMaxPendingBelowWorkers(t *testing.T) {
	got := 0
	err := Run(64,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error { got++; return nil },
		Options{Workers: 8, MaxPending: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 64 {
		t.Fatalf("delivered %d results, want 64", got)
	}
}

// TestRunMaxPendingSinkError: a bounded window must not deadlock the
// abort path when the sink fails mid-batch.
func TestRunMaxPendingSinkError(t *testing.T) {
	boom := errors.New("boom")
	err := Run(256,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 3 {
				return boom
			}
			return nil
		},
		Options{Workers: 4, MaxPending: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink error", err)
	}
}
