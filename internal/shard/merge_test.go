package shard

import (
	"math"
	"reflect"
	"testing"

	"anondyn"
	"anondyn/examples/specs"
	"anondyn/internal/spec"
	"anondyn/internal/transport"
)

// mergeFixture compiles the committed spec into cells and a 4-shard
// plan at 2 seeds per cell, with one synthetic record per run.
func mergeFixture(t *testing.T) (cells []anondyn.Cell, per int, shards []Shard, recs []transport.ShardRecord) {
	t.Helper()
	data, err := specs.Read("er-crash-sweep.yaml")
	if err != nil {
		t.Fatal(err)
	}
	_, grid, err := spec.Compile(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	cells, per = grid.Cells(), 2
	shards = Plan(len(cells), per, 4)
	if len(shards) != 4 {
		t.Fatalf("fixture plan has %d shards, want 4", len(shards))
	}
	recs = make([]transport.ShardRecord, len(cells)*per)
	for i := range recs {
		recs[i] = transport.ShardRecord{
			Run:          i,
			Decided:      i%3 != 0,
			Rounds:       5 + i,
			Bytes:        100 * i,
			OutRangeBits: math.Float64bits(float64(i) * 1e-4),
			Violation:    i == 5,
		}
	}
	return cells, per, shards, recs
}

// expectedRows folds the synthetic records in global run order — the
// single-process reference the merge must reproduce exactly.
func expectedRows(t *testing.T, cells []anondyn.Cell, per int, recs []transport.ShardRecord) []anondyn.CellResult {
	t.Helper()
	stats := make([]*anondyn.BatchStats, len(cells))
	for i, c := range cells {
		stats[i] = &anondyn.BatchStats{Eps: c.Eps}
	}
	for _, r := range recs {
		if err := stats[r.Run/per].ConsumeRecord(anondyn.RunRecord{
			Decided:   r.Decided,
			Rounds:    r.Rounds,
			Bytes:     r.Bytes,
			OutRange:  math.Float64frombits(r.OutRangeBits),
			Violation: r.Violation,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rows := make([]anondyn.CellResult, len(cells))
	for i, c := range cells {
		rows[i] = anondyn.CellResult{
			N: c.N, F: c.F, Eps: c.Eps,
			Algorithm:   c.Algorithm.String(),
			Adversary:   c.Adversary.Name,
			Variant:     c.Variant.Name,
			BatchReport: stats[i].Report(),
		}
	}
	return rows
}

// feed pushes shard idx's records into the merge.
func feed(t *testing.T, m *streamMerge, shards []Shard, recs []transport.ShardRecord, idx int) {
	t.Helper()
	for run := shards[idx].Lo; run < shards[idx].Hi; run++ {
		if err := m.fold(idx, recs[run]); err != nil {
			t.Fatalf("fold shard %d run %d: %v", idx, run, err)
		}
	}
}

// TestMergeOutOfOrderCompletion: shards committing in the order
// 3, 1, 0, 2 — overtaking shards buffer, the cursor advances through
// the committed backlog on commit(0), and the rows come out identical
// to the in-order fold, emitted in cell order along the way.
func TestMergeOutOfOrderCompletion(t *testing.T) {
	cells, per, shards, recs := mergeFixture(t)
	want := expectedRows(t, cells, per, recs)

	var emitted []int
	m := newStreamMerge(cells, per, shards, func(cell int, row anondyn.CellResult) {
		emitted = append(emitted, cell)
		if !reflect.DeepEqual(row, want[cell]) {
			t.Errorf("streamed row %d differs from reference", cell)
		}
	})
	for _, idx := range []int{3, 1, 0, 2} {
		feed(t, m, shards, recs, idx)
		if err := m.commit(idx); err != nil {
			t.Fatalf("commit %d: %v", idx, err)
		}
	}
	rows, err := m.rows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("out-of-order merge differs from in-order fold:\ngot  %+v\nwant %+v", rows, want)
	}
	wantOrder := make([]int, len(cells))
	for i := range wantOrder {
		wantOrder[i] = i
	}
	if !reflect.DeepEqual(emitted, wantOrder) {
		t.Errorf("rows emitted in order %v, want %v", emitted, wantOrder)
	}
}

// TestMergeRollbackCursorShard: a cursor shard that streamed part of
// its records and died must roll back to a clean slate — the rerun's
// records fold as if the first attempt never happened.
func TestMergeRollbackCursorShard(t *testing.T) {
	cells, per, shards, recs := mergeFixture(t)
	want := expectedRows(t, cells, per, recs)

	m := newStreamMerge(cells, per, shards, nil)
	// First attempt at shard 0 delivers one record, then the worker dies.
	if err := m.fold(0, recs[shards[0].Lo]); err != nil {
		t.Fatal(err)
	}
	m.rollback(0)
	// A buffered shard dies too; its records just drop.
	feed(t, m, shards, recs, 2)
	m.rollback(2)
	// Reruns deliver everything cleanly.
	for idx := range shards {
		feed(t, m, shards, recs, idx)
		if err := m.commit(idx); err != nil {
			t.Fatalf("commit %d: %v", idx, err)
		}
	}
	rows, err := m.rows()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("rows after rollback differ from reference:\ngot  %+v\nwant %+v", rows, want)
	}
}

// TestMergeRejectsCorruptStreams: double commits, records for
// committed shards, and out-of-sequence runs are protocol corruption,
// not recoverable states.
func TestMergeRejectsCorruptStreams(t *testing.T) {
	cells, per, shards, recs := mergeFixture(t)
	m := newStreamMerge(cells, per, shards, nil)
	feed(t, m, shards, recs, 0)
	if err := m.commit(0); err != nil {
		t.Fatal(err)
	}
	if err := m.commit(0); err == nil {
		t.Error("double commit accepted")
	}
	if err := m.fold(0, recs[shards[0].Lo]); err == nil {
		t.Error("record for a committed shard accepted")
	}
	if err := m.fold(1, recs[shards[1].Hi-1]); err == nil {
		t.Error("out-of-sequence cursor record accepted")
	}
	if _, err := m.rows(); err == nil {
		t.Error("rows() before completion succeeded")
	}
	// An incomplete cursor shard must not commit.
	m2 := newStreamMerge(cells, per, shards, nil)
	if err := m2.fold(0, recs[shards[0].Lo]); err != nil {
		t.Fatal(err)
	}
	if err := m2.commit(0); err == nil {
		t.Error("commit with missing records accepted")
	}
}
