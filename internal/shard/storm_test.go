package shard

import (
	"testing"
	"time"

	"anondyn"
	"anondyn/examples/specs"
	"anondyn/internal/spec"
	"anondyn/internal/transport"
)

// stormReference runs the committed storm spec locally and returns the
// spec bytes, the parsed sweep, the rows and the rendered verdicts —
// the reference every distributed storm run must match byte for byte.
func stormReference(t *testing.T, seeds int) (data []byte, sw *spec.Sweep, rows []anondyn.CellResult) {
	t.Helper()
	data, err := specs.Read("stress/correlated-group-outage.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sw, grid, err := spec.Compile(data, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err = grid.Run(anondyn.BatchOptions{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	return data, sw, rows
}

// TestStormDoubleRunIdentical: two same-seed local runs of the
// committed storm spec agree byte for byte — rows and verdicts.
func TestStormDoubleRunIdentical(t *testing.T) {
	_, swA, rowsA := stormReference(t, 0)
	_, swB, rowsB := stormReference(t, 0)
	assertParity(t, rowsA, rowsB)
	vA, vB := swA.Verdicts(rowsA), swB.Verdicts(rowsB)
	if len(vA) == 0 {
		t.Fatal("storm spec evaluated no verdicts")
	}
	for i := range vA {
		if vA[i] != vB[i] {
			t.Errorf("verdict %d differs across same-seed runs: %+v vs %+v", i, vA[i], vB[i])
		}
	}
	for _, v := range vA {
		if !v.Pass {
			t.Errorf("survivable committed spec failed %s (%s)", v.Assertion, v.Detail)
		}
	}
}

// TestStormShardedParity: the storm spec sharded over joined workers
// merges to rows byte-identical to the local run, and the client-side
// verdicts match because they derive from (spec, rows) alone.
func TestStormShardedParity(t *testing.T) {
	data, swLocal, local := stormReference(t, 6)
	cp := startPlane(t, PlaneOptions{})
	joinWorker(t, cp, WorkerOptions{})
	joinWorker(t, cp, WorkerOptions{})

	h, err := cp.Submit(data, SubmitOptions{SeedsPerCell: 6, Shards: 4, Name: "storm-parity"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, res.Rows, local)
	vLocal, vDist := swLocal.Verdicts(local), res.Sweep.Verdicts(res.Rows)
	if len(vDist) != len(vLocal) {
		t.Fatalf("distributed run evaluated %d verdicts, local %d", len(vDist), len(vLocal))
	}
	for i := range vDist {
		if vDist[i] != vLocal[i] {
			t.Errorf("verdict %d differs from local: %+v vs %+v", i, vDist[i], vLocal[i])
		}
	}
}

// TestStormWorkerKilledMidSweep: a worker dying mid-record-stream
// during a storm sweep requeues its shard — never a silent drop — and
// the finished rows still match the local reference byte for byte.
func TestStormWorkerKilledMidSweep(t *testing.T) {
	data, _, local := stormReference(t, 6)
	cp := startPlane(t, PlaneOptions{})

	w := joinWorker(t, cp, WorkerOptions{})
	w.failAfterRecords(2)

	h, err := cp.Submit(data, SubmitOptions{SeedsPerCell: 6, Shards: 4, Name: "storm-kill"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeues < 1 {
		t.Errorf("requeues = %d, want ≥ 1 after mid-storm kill", res.Requeues)
	}
	assertParity(t, res.Rows, local)
}

// TestPlaneStatusQuery: the -status frame pair reports the census and
// the queue — a sweep submitted to a workerless plane shows up queued,
// and after workers join and finish it the queue drains.
func TestPlaneStatusQuery(t *testing.T) {
	data, _, _ := stormReference(t, 2)
	cp := startPlane(t, PlaneOptions{Token: "s3cret"})

	h, err := cp.Submit(data, SubmitOptions{SeedsPerCell: 2, Shards: 2, Name: "storm-status"})
	if err != nil {
		t.Fatal(err)
	}

	st, err := transport.QueryPlaneStatus(cp.Addr(), "s3cret", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 0 || len(st.Sweeps) != 1 {
		t.Fatalf("status = %+v, want 0 workers and 1 sweep", st)
	}
	info := st.Sweeps[0]
	if info.ID != h.ID() || info.Name != "storm-status" || info.State != transport.SweepQueued {
		t.Errorf("queued sweep info = %+v", info)
	}
	if info.Total != h.Total() || info.Done != 0 {
		t.Errorf("queued sweep progress = %d/%d, want 0/%d", info.Done, info.Total, h.Total())
	}

	if _, err := transport.QueryPlaneStatus(cp.Addr(), "wrong", 5*time.Second); err == nil {
		t.Error("status query with a bad token succeeded")
	}

	joinWorker(t, cp, WorkerOptions{Token: "s3cret"})
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	st, err = transport.QueryPlaneStatus(cp.Addr(), "s3cret", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sweeps) != 0 {
		t.Errorf("finished sweep still listed: %+v", st.Sweeps)
	}
	if st.Workers != 1 {
		t.Errorf("census = %d workers, want 1", st.Workers)
	}
}
