package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"anondyn"
	"anondyn/internal/metrics"
	"anondyn/internal/spec"
	"anondyn/internal/transport"
)

// PlaneOptions configures a resident ControlPlane.
type PlaneOptions struct {
	// Addr is the listen address for worker joins and sweep
	// submissions ("host:port"; ":0" picks a port). Empty runs the
	// control plane without a listener — membership then comes from
	// AddWorker and sweeps from in-process Submit calls, which is how
	// the one-shot Run wrapper uses it.
	Addr string
	// Token is the shared secret every join and submit handshake must
	// present (constant-time compare); empty disables auth.
	Token string
	// IOTimeout bounds each frame exchange (for a record stream: the
	// gap between consecutive records). 0 means DefaultIOTimeout.
	IOTimeout time.Duration
	// DialRetries and RetryDelay govern reconnects to dial-out workers
	// added with AddWorker (joined workers own their reconnect loop).
	DialRetries int
	RetryDelay  time.Duration
	// MaxPending bounds each worker's per-shard reorder window.
	MaxPending int
	// Log, when non-nil, receives progress lines (Printf-style).
	Log func(format string, args ...any)
	// Metrics, when non-nil, aggregates every sweep's live telemetry
	// into one collector (per-shard rows keyed by sweep). Each sweep
	// additionally gets its own collector regardless.
	Metrics *metrics.Collector
	// MetricsEveryRuns is the telemetry cadence asked of each worker;
	// < 1 defaults to 16.
	MetricsEveryRuns int
	// AbortWhenEmpty fails active sweeps when the last worker is lost,
	// instead of holding them queued for the next join. One-shot runs
	// set it (a fixed fleet that is gone is gone); a resident service
	// leaves it unset and waits for workers to come back.
	AbortWhenEmpty bool
}

func (o *PlaneOptions) fill() {
	if o.IOTimeout <= 0 {
		o.IOTimeout = DefaultIOTimeout
	}
	if o.DialRetries < 1 {
		o.DialRetries = 3
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 200 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	if o.MetricsEveryRuns < 1 {
		o.MetricsEveryRuns = 16
	}
}

// SubmitOptions parameterizes one sweep submission.
type SubmitOptions struct {
	// SeedsPerCell, when > 0, overrides the spec's seeds_per_cell.
	SeedsPerCell int
	// Shards is the target shard count; < 1 sizes the plan from live
	// member capacity (twice the fleet's capacity shares, so a lost
	// worker's load spreads instead of doubling one peer).
	Shards int
	// Name labels the sweep in logs and status lines.
	Name string
	// OnRow, when non-nil, streams each cell's finished row as its last
	// run commits (in cell order). It runs under the control plane's
	// scheduling lock: keep it fast and never call back into the plane.
	OnRow func(cell int, row anondyn.CellResult)
}

// ControlPlane is the resident sweep service: workers join and leave
// at any time, sweeps queue against it concurrently, and every
// admitted sweep's records fold through a streaming merge whose output
// is byte-identical to a local Grid.Run. Shards are dispatched fair
// round-robin across active sweeps, so a long sweep cannot starve a
// short one.
type ControlPlane struct {
	opts PlaneOptions
	ln   net.Listener

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool // hard stop: members exit as soon as possible
	draining bool // graceful: no new joins/submits, finish what's queued
	sweeps   map[int]*sweep
	order    []*sweep // active sweeps in submission order (round-robin ring)
	rr       int      // round-robin cursor into order
	nextID   int
	members  map[int]*member
	nextMem  int
	live     int

	wg sync.WaitGroup // accept loop + member loops + submit sessions
}

// sweep is one queued/running sweep's state. All fields are guarded by
// the plane's mu except the immutables set at submit time.
type sweep struct {
	id       int
	name     string
	specData []byte
	parsed   *spec.Sweep
	shards   []Shard
	seedsPer int
	total    int

	pending  []int
	inflight int
	state    transport.SweepState
	requeues int
	runsBy   map[string]int

	merge   *streamMerge
	metrics *metrics.Collector

	err  error
	done chan struct{}
}

// member is one unit of the worker census: either a dial-out worker
// from a one-shot fleet list (redialed with the retry budget on
// failure) or a worker that joined over the listener (it owns its own
// reconnect loop, so a lost connection just unregisters it).
type member struct {
	id       int
	addr     string
	capacity int
	redial   bool
	cl       *transport.ShardClient
}

// NewControlPlane starts a control plane; with a non-empty Addr it
// listens immediately (call Serve to accept), otherwise it is purely
// in-process.
func NewControlPlane(opts PlaneOptions) (*ControlPlane, error) {
	opts.fill()
	cp := &ControlPlane{
		opts:    opts,
		sweeps:  make(map[int]*sweep),
		members: make(map[int]*member),
	}
	cp.cond = sync.NewCond(&cp.mu)
	if opts.Addr != "" {
		ln, err := net.Listen("tcp", opts.Addr)
		if err != nil {
			return nil, fmt.Errorf("shard: listen %s: %w", opts.Addr, err)
		}
		cp.ln = ln
	}
	return cp, nil
}

// Addr returns the listen address ("" without a listener).
func (cp *ControlPlane) Addr() string {
	if cp.ln == nil {
		return ""
	}
	return cp.ln.Addr().String()
}

// Workers returns the live member count.
func (cp *ControlPlane) Workers() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.live
}

// Serve accepts joins and submissions until Shutdown or Close. Only
// meaningful with a listener.
func (cp *ControlPlane) Serve() error {
	if cp.ln == nil {
		return errors.New("shard: control plane has no listener")
	}
	for {
		raw, err := cp.ln.Accept()
		if err != nil {
			cp.mu.Lock()
			stopped := cp.closed || cp.draining
			cp.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		cp.wg.Add(1)
		go func() {
			defer cp.wg.Done()
			cp.handleConn(raw)
		}()
	}
}

// handleConn demuxes one inbound connection into a worker join or a
// sweep submission.
func (cp *ControlPlane) handleConn(raw net.Conn) {
	acc, err := transport.AcceptControlPlane(raw, cp.opts.Token, cp.opts.IOTimeout)
	if err != nil {
		cp.opts.Log("shard: rejected connection from %s: %v", raw.RemoteAddr(), err)
		raw.Close()
		return
	}
	if acc.Worker != nil {
		m := &member{addr: raw.RemoteAddr().String(), capacity: acc.Worker.Capacity, cl: acc.Worker}
		if !cp.register(m) {
			acc.Worker.Stop()
			acc.Worker.Close()
			return
		}
		cp.opts.Log("shard: worker %s joined (capacity %d)", m.addr, m.capacity)
		cp.memberLoop(m)
		return
	}
	if acc.Status != nil {
		defer acc.Status.Close()
		if err := acc.Status.Send(cp.Snapshot()); err != nil {
			cp.opts.Log("shard: status query from %s failed: %v", raw.RemoteAddr(), err)
		}
		return
	}
	cp.handleSubmit(acc.Submit)
}

// Snapshot reports the live worker census and every active (queued or
// running) sweep in submission order — the payload behind dynagrid
// -status. Finished sweeps are not retained.
func (cp *ControlPlane) Snapshot() transport.PlaneStatus {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	st := transport.PlaneStatus{Workers: cp.live}
	for _, sw := range cp.order {
		st.Sweeps = append(st.Sweeps, transport.SweepStatusInfo{
			ID:       sw.id,
			Name:     sw.name,
			State:    sw.state,
			Done:     sw.merge.doneRuns(),
			Total:    sw.total,
			Requeues: sw.requeues,
		})
	}
	return st
}

// register adds a member to the census; false when the plane is
// shutting down.
func (cp *ControlPlane) register(m *member) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.closed || cp.draining {
		return false
	}
	m.id = cp.nextMem
	cp.nextMem++
	cp.members[m.id] = m
	cp.live++
	cp.cond.Broadcast()
	return true
}

// AddWorker registers a dial-out worker (one-shot fleet lists). The
// member counts as live immediately — the connection happens lazily on
// its first task, with the retry budget — so a Submit racing the dials
// never sees an empty fleet.
func (cp *ControlPlane) AddWorker(addr string) {
	m := &member{addr: addr, redial: true}
	if !cp.register(m) {
		return
	}
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		cp.memberLoop(m)
	}()
}

// unregister removes a member; losing the last one fails active sweeps
// when AbortWhenEmpty is set.
func (cp *ControlPlane) unregister(m *member) {
	if m.cl != nil {
		m.cl.Close()
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	delete(cp.members, m.id)
	cp.live--
	if cp.live == 0 && cp.opts.AbortWhenEmpty {
		for _, sw := range append([]*sweep(nil), cp.order...) {
			cp.failLocked(sw, fmt.Errorf("shard: all workers lost with %d shards unfinished (last: %s)",
				sw.merge.remaining(), m.addr))
		}
	}
	cp.cond.Broadcast()
}

// Submit compiles and enqueues one sweep, returning a handle to watch
// and wait on. The sweep starts as soon as the round-robin reaches it.
func (cp *ControlPlane) Submit(specData []byte, o SubmitOptions) (*SweepHandle, error) {
	parsed, grid, err := spec.Compile(specData, o.SeedsPerCell)
	if err != nil {
		return nil, err
	}
	cells := grid.Cells()
	per := grid.SeedsPerCell
	if per < 1 {
		per = 1
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.closed || cp.draining {
		return nil, errors.New("shard: control plane is shutting down")
	}
	want := o.Shards
	if want < 1 {
		want = cp.defaultShardsLocked()
	}
	shards := Plan(len(cells), per, want)
	if len(shards) == 0 {
		return nil, errors.New("shard: empty sweep (no cells)")
	}
	sw := &sweep{
		id:       cp.nextID,
		name:     o.Name,
		specData: specData,
		parsed:   parsed,
		shards:   shards,
		seedsPer: o.SeedsPerCell,
		total:    shards[len(shards)-1].Hi,
		pending:  make([]int, len(shards)),
		state:    transport.SweepQueued,
		runsBy:   make(map[string]int),
		merge:    newStreamMerge(cells, per, shards, o.OnRow),
		metrics:  metrics.NewCollector(),
		done:     make(chan struct{}),
	}
	for i := range sw.pending {
		sw.pending[i] = i
	}
	cp.nextID++
	cp.sweeps[sw.id] = sw
	cp.order = append(cp.order, sw)
	cp.opts.Log("shard: sweep %d (%s) queued: %d runs in %d shards", sw.id, sw.name, sw.total, len(shards))
	cp.cond.Broadcast()
	return &SweepHandle{cp: cp, sw: sw}, nil
}

// defaultShardsLocked sizes a plan from the live census: twice the
// fleet's capacity shares (a worker at the mean capacity is one share,
// a double-capacity worker two), so shard granularity tracks both
// fleet size and skew. Unknown capacities (dial-out members before
// first contact announce 0) count as one share; an empty census falls
// back to 4.
func (cp *ControlPlane) defaultShardsLocked() int {
	count, sum := 0, 0
	for _, m := range cp.members {
		count++
		sum += m.capacity
	}
	if count == 0 {
		return 4
	}
	if sum == 0 {
		return 2 * count
	}
	mean := float64(sum) / float64(count)
	shares := 0
	for _, m := range cp.members {
		s := int(math.Round(float64(m.capacity) / mean))
		if s < 1 {
			s = 1
		}
		shares += s
	}
	return 2 * shares
}

// nextTask blocks until a shard is available (fair round-robin across
// active sweeps), the plane is closed, or it is draining with nothing
// left; ok is false in the latter two cases.
func (cp *ControlPlane) nextTask() (sw *sweep, idx int, ok bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	for {
		if cp.closed {
			return nil, 0, false
		}
		if n := len(cp.order); n > 0 {
			for k := 0; k < n; k++ {
				cand := cp.order[(cp.rr+k)%n]
				if len(cand.pending) == 0 {
					continue
				}
				idx = cand.pending[0]
				cand.pending = cand.pending[1:]
				cand.inflight++
				cand.state = transport.SweepRunning
				cp.rr = (cp.rr + k + 1) % n
				return cand, idx, true
			}
		}
		if cp.draining && len(cp.order) == 0 {
			return nil, 0, false
		}
		cp.cond.Wait()
	}
}

// maxConsecutiveFailures is how many transport failures in a row a
// dial-out member may accumulate (with successful reconnects in
// between) before the plane abandons it.
const maxConsecutiveFailures = 3

// memberLoop drives one member: pull a shard, stream it, commit or
// requeue. For dial-out members a transport failure closes and redials
// with the retry budget; for joined members the connection is the
// membership, so a failure unregisters (the worker's own join loop
// brings it back).
func (cp *ControlPlane) memberLoop(m *member) {
	defer cp.unregister(m)
	defer func() {
		if m.cl != nil {
			m.cl.Stop()
			m.cl.Close()
		}
	}()
	failures := 0
	for {
		sw, idx, ok := cp.nextTask()
		if !ok {
			return
		}
		if m.cl == nil {
			cl, err := cp.dial(m.addr)
			if err != nil {
				cp.opts.Log("shard: worker %s unreachable: %v", m.addr, err)
				cp.requeue(sw, idx, false)
				return
			}
			m.cl = cl
			cp.mu.Lock()
			m.capacity = cl.Capacity
			cp.mu.Unlock()
		}
		sh := sw.shards[idx]
		task := transport.ShardTask{
			Shard:            sh.Index,
			Lo:               sh.Lo,
			Hi:               sh.Hi,
			SeedsPerCell:     sw.seedsPer,
			MaxPending:       cp.opts.MaxPending,
			MetricsEveryRuns: cp.opts.MetricsEveryRuns,
			Spec:             sw.specData,
		}
		count := 0
		err := m.cl.RunShard(task, func(r transport.ShardRecord) error {
			cp.mu.Lock()
			var ferr error
			if sw.state != transport.SweepFailed {
				ferr = sw.merge.fold(idx, r)
				if ferr != nil {
					cp.failLocked(sw, ferr)
				}
			}
			cp.mu.Unlock()
			if ferr != nil {
				// Keep draining the stream so the session stays framed;
				// the records of a failed sweep are read and dropped.
				return nil
			}
			count++
			sample := metrics.RunSample{Decided: r.Decided, Rounds: r.Rounds}
			sw.metrics.RunDone(sample)
			cp.opts.Metrics.RunDone(sample)
			return nil
		}, func(tm transport.ShardMetrics) {
			st := metrics.ShardStat{
				Sweep:     sw.id,
				Shard:     tm.Shard,
				Runs:      tm.Runs,
				Rounds:    tm.Rounds,
				Delivered: tm.Delivered,
			}
			sw.metrics.ShardProgress(st)
			cp.opts.Metrics.ShardProgress(st)
		})
		var shardErr *transport.ShardError
		switch {
		case err == nil:
			cp.finishShard(sw, idx, m.addr, count)
			failures = 0
		case errors.As(err, &shardErr):
			// Deterministic rejection: any worker would fail this sweep
			// the same way. Fail the sweep; the member (which spoke the
			// protocol cleanly) stays.
			cp.opts.Log("shard: sweep %d rejected by worker %s: %v", sw.id, m.addr, err)
			cp.failShard(sw, idx, shardErr)
		case errors.Is(err, transport.ErrWorkerLeft):
			// Graceful leave raced this task onto the wire: requeue
			// without charging anyone and let the member go.
			cp.opts.Log("shard: worker %s left, %v requeued", m.addr, sh)
			cp.requeue(sw, idx, true)
			return
		default:
			cp.opts.Log("shard: %v of sweep %d on worker %s: %v (requeued)", sh, sw.id, m.addr, err)
			cp.requeue(sw, idx, true)
			m.cl.Close()
			m.cl = nil
			failures++
			if !m.redial {
				return
			}
			if failures >= maxConsecutiveFailures {
				cp.opts.Log("shard: abandoning worker %s after %d consecutive failures", m.addr, failures)
				return
			}
		}
	}
}

// dial connects to a dial-out worker with the retry budget.
func (cp *ControlPlane) dial(addr string) (*transport.ShardClient, error) {
	var lastErr error
	for attempt := 0; attempt <= cp.opts.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(cp.opts.RetryDelay)
		}
		cl, err := transport.DialShard(addr, cp.opts.Token, cp.opts.IOTimeout)
		if err == nil {
			return cl, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// finishShard commits one completed shard into the sweep's merge and
// finishes the sweep when it was the last.
func (cp *ControlPlane) finishShard(sw *sweep, idx int, worker string, runs int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	sw.inflight--
	if sw.state == transport.SweepFailed {
		cp.cond.Broadcast()
		return
	}
	sw.runsBy[worker] += runs
	if err := sw.merge.commit(idx); err != nil {
		cp.failLocked(sw, err)
		return
	}
	if sw.merge.complete() {
		if _, err := sw.merge.rows(); err != nil {
			cp.failLocked(sw, err)
			return
		}
		sw.state = transport.SweepDone
		cp.removeFromOrderLocked(sw)
		close(sw.done)
		cp.opts.Log("shard: sweep %d (%s) done: %d runs, %d requeues", sw.id, sw.name, sw.total, sw.requeues)
	}
	cp.cond.Broadcast()
}

// requeue returns a dispatched shard to its sweep's queue after a
// transport failure or a worker leave, rolling back any provisional
// folds. counted=false skips the requeue counter (the shard never
// reached a worker, e.g. a dial failure).
func (cp *ControlPlane) requeue(sw *sweep, idx int, counted bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	sw.inflight--
	if sw.state == transport.SweepFailed {
		cp.cond.Broadcast()
		return
	}
	sw.merge.rollback(idx)
	if counted {
		sw.requeues++
	}
	sw.pending = append(sw.pending, idx)
	cp.cond.Broadcast()
}

// failShard fails a sweep on a worker's deterministic rejection.
func (cp *ControlPlane) failShard(sw *sweep, idx int, err error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	sw.inflight--
	sw.merge.rollback(idx)
	cp.failLocked(sw, err)
}

// failLocked transitions a sweep to failed: pending shards are
// dropped, waiters wake, in-flight streams drain into the void.
func (cp *ControlPlane) failLocked(sw *sweep, err error) {
	if sw.state == transport.SweepDone || sw.state == transport.SweepFailed {
		return
	}
	sw.state = transport.SweepFailed
	sw.err = err
	sw.pending = nil
	cp.removeFromOrderLocked(sw)
	close(sw.done)
	cp.opts.Log("shard: sweep %d (%s) failed: %v", sw.id, sw.name, err)
	cp.cond.Broadcast()
}

func (cp *ControlPlane) removeFromOrderLocked(sw *sweep) {
	for i, s := range cp.order {
		if s == sw {
			cp.order = append(cp.order[:i], cp.order[i+1:]...)
			if cp.rr > i {
				cp.rr--
			}
			if len(cp.order) > 0 {
				cp.rr %= len(cp.order)
			} else {
				cp.rr = 0
			}
			return
		}
	}
}

// handleSubmit serves one sweep client: enqueue, ack, push status
// twice a second, finish with rows or the failure. A client that
// disconnects mid-sweep does not cancel the sweep (its report is
// simply unobserved).
func (cp *ControlPlane) handleSubmit(s *transport.SubmitSession) {
	defer s.Close()
	h, err := cp.Submit(s.Req.Spec, SubmitOptions{
		SeedsPerCell: s.Req.SeedsPerCell,
		Shards:       s.Req.Shards,
		Name:         s.Req.Name,
	})
	if err != nil {
		s.Fail(0, err.Error()) //nolint:errcheck
		return
	}
	if err := s.Ack(h.ID(), h.Total()); err != nil {
		return
	}
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-h.Done():
			res, err := h.Wait()
			if err != nil {
				s.Fail(h.ID(), err.Error()) //nolint:errcheck
				return
			}
			s.Status(h.Status()) //nolint:errcheck
			rowsJSON, err := json.Marshal(res.Rows)
			if err != nil {
				s.Fail(h.ID(), err.Error()) //nolint:errcheck
				return
			}
			if err := s.Rows(h.ID(), rowsJSON); err != nil {
				cp.opts.Log("shard: sweep %d client gone before rows: %v", h.ID(), err)
			}
			return
		case <-tick.C:
			if err := s.Status(h.Status()); err != nil {
				cp.opts.Log("shard: sweep %d status push failed (client gone): %v", h.ID(), err)
				return
			}
		}
	}
}

// Shutdown drains gracefully: no new joins or submissions, queued
// sweeps finish, then members get stop frames and the plane closes.
func (cp *ControlPlane) Shutdown() {
	cp.mu.Lock()
	if cp.closed || cp.draining {
		cp.mu.Unlock()
		cp.wg.Wait()
		return
	}
	cp.draining = true
	cp.mu.Unlock()
	cp.cond.Broadcast()
	if cp.ln != nil {
		cp.ln.Close()
	}
	cp.wg.Wait()
}

// Close tears the plane down without waiting for queued sweeps:
// active sweeps fail, member connections drop.
func (cp *ControlPlane) Close() {
	cp.mu.Lock()
	if cp.closed {
		cp.mu.Unlock()
		return
	}
	cp.closed = true
	for _, sw := range append([]*sweep(nil), cp.order...) {
		cp.failLocked(sw, errors.New("shard: control plane closed"))
	}
	var conns []*transport.ShardClient
	for _, m := range cp.members {
		if m.cl != nil {
			conns = append(conns, m.cl)
		}
	}
	cp.mu.Unlock()
	cp.cond.Broadcast()
	if cp.ln != nil {
		cp.ln.Close()
	}
	for _, cl := range conns {
		cl.Close()
	}
	cp.wg.Wait()
}

// SweepHandle is a submitted sweep's watch-and-wait handle.
type SweepHandle struct {
	cp *ControlPlane
	sw *sweep
}

// ID returns the sweep's id on the plane.
func (h *SweepHandle) ID() int { return h.sw.id }

// Total returns the sweep's planned run count.
func (h *SweepHandle) Total() int { return h.sw.total }

// Done is closed when the sweep finishes (either way).
func (h *SweepHandle) Done() <-chan struct{} { return h.sw.done }

// Metrics returns the sweep's own collector (always non-nil): run and
// telemetry folds segregated from every other sweep on the plane.
func (h *SweepHandle) Metrics() *metrics.Collector { return h.sw.metrics }

// Status snapshots the sweep's progress. Done counts runs of committed
// shards only — a shard that streamed and was lost counts zero until
// its rerun commits.
func (h *SweepHandle) Status() transport.SweepStatus {
	cp := h.cp
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return transport.SweepStatus{
		Sweep:    h.sw.id,
		State:    h.sw.state,
		Done:     h.sw.merge.doneRuns(),
		Total:    h.sw.total,
		Requeues: h.sw.requeues,
		Workers:  cp.live,
	}
}

// Wait blocks until the sweep finishes and returns its result.
func (h *SweepHandle) Wait() (*Result, error) {
	<-h.sw.done
	cp := h.cp
	cp.mu.Lock()
	defer cp.mu.Unlock()
	sw := h.sw
	if sw.err != nil {
		return nil, sw.err
	}
	rows, err := sw.merge.rows()
	if err != nil {
		return nil, err
	}
	return &Result{
		Sweep:        sw.parsed,
		Rows:         rows,
		Shards:       sw.shards,
		Requeues:     sw.requeues,
		RunsByWorker: sw.runsBy,
	}, nil
}
