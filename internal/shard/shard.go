// Package shard distributes declarative sweeps across machines: it
// slices a committed spec file into shards — (spec, cell range, seed
// range) units over the Grid.RunEach flattening — dispatches them to
// long-lived worker processes over the transport package's shard
// protocol, requeues shards when a worker is lost, and merges the
// per-run records back in global run order, so the aggregate rows are
// byte-identical to a single-process Grid.Run with the same seeds.
//
// The determinism contract stacks three layers that each preserve
// order: every run is seeded and independent (the engine), each worker
// streams its shard's records through the harness ordered sink (the
// pool), and the coordinator folds whole shards in plan order (the
// merge). Worker count, shard count, and mid-sweep worker loss are all
// invisible in the output.
package shard

import (
	"fmt"
)

// Shard is one dispatch unit: a contiguous slice of a sweep's global
// run-index space (run i = seed BaseSeed+i of cell i/seedsPerCell),
// aligned so it reads as a cell range × seed range.
type Shard struct {
	// Index is the shard's position in the plan.
	Index int
	// CellLo, CellHi bound the covered cells [CellLo, CellHi).
	CellLo, CellHi int
	// SeedLo, SeedHi bound the per-cell seed offsets [SeedLo, SeedHi).
	// Multi-cell shards always cover every seed; single-cell shards may
	// cover a sub-range.
	SeedLo, SeedHi int
	// Lo, Hi is the equivalent global run-index range [Lo, Hi).
	Lo, Hi int
}

// Runs returns the number of runs the shard covers.
func (s Shard) Runs() int { return s.Hi - s.Lo }

func (s Shard) String() string {
	return fmt.Sprintf("shard %d: cells [%d,%d) × seeds [%d,%d) (runs [%d,%d))",
		s.Index, s.CellLo, s.CellHi, s.SeedLo, s.SeedHi, s.Lo, s.Hi)
}

// Plan slices a sweep of cells × per runs into at most want contiguous
// shards covering the run space exactly. With at least as many cells
// as shards, boundaries snap to cell boundaries (each shard is a cell
// range over all seeds); with more shards than cells, every cell is
// split into near-equal seed ranges. want < 1 plans one shard.
func Plan(cells, per, want int) []Shard {
	if cells < 1 || per < 1 {
		return nil
	}
	if want < 1 {
		want = 1
	}
	if want > cells*per {
		want = cells * per
	}
	var shards []Shard
	if want <= cells {
		for k := 0; k < want; k++ {
			c0, c1 := k*cells/want, (k+1)*cells/want
			shards = append(shards, Shard{
				Index:  k,
				CellLo: c0, CellHi: c1,
				SeedLo: 0, SeedHi: per,
				Lo: c0 * per, Hi: c1 * per,
			})
		}
		return shards
	}
	// More shards than cells: cell i gets k_i ∈ {base, base+1} seed
	// chunks; k_i ≤ ⌈want/cells⌉ ≤ per, so chunks are never empty.
	base, extra := want/cells, want%cells
	for c := 0; c < cells; c++ {
		k := base
		if c < extra {
			k++
		}
		for j := 0; j < k; j++ {
			s0, s1 := j*per/k, (j+1)*per/k
			shards = append(shards, Shard{
				Index:  len(shards),
				CellLo: c, CellHi: c + 1,
				SeedLo: s0, SeedHi: s1,
				Lo: c*per + s0, Hi: c*per + s1,
			})
		}
	}
	return shards
}
