package shard

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"anondyn"
	"anondyn/examples/specs"
	"anondyn/internal/spec"
)

// localReference runs the committed spec locally — the byte-identity
// reference every churn scenario is compared against.
func localReference(t *testing.T, seeds int) (data []byte, grid anondyn.Grid, rows []anondyn.CellResult) {
	t.Helper()
	data, err := specs.Read("er-crash-sweep.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := spec.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sw.SeedsPerCell = seeds
	if grid, err = sw.Grid(); err != nil {
		t.Fatal(err)
	}
	if rows, err = grid.Run(anondyn.BatchOptions{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	return data, grid, rows
}

// assertParity compares merged rows to the local reference, in both
// structural and serialized form (the contract is byte-identical
// report rows).
func assertParity(t *testing.T, got, want []anondyn.CellResult) {
	t.Helper()
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("merged rows differ from local reference:\ndist  %s\nlocal %s", gotJSON, wantJSON)
	}
}

// startPlane runs a listening control plane for workers to join.
func startPlane(t *testing.T, opts PlaneOptions) *ControlPlane {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.IOTimeout == 0 {
		opts.IOTimeout = 10 * time.Second
	}
	if opts.Log == nil {
		opts.Log = t.Logf
	}
	cp, err := NewControlPlane(opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := cp.Serve(); err != nil {
			t.Errorf("control plane serve: %v", err)
		}
	}()
	t.Cleanup(func() { cp.Close(); <-done })
	return cp
}

// joinWorker starts a listener-less worker joined to the plane, with a
// fast rejoin loop.
func joinWorker(t *testing.T, cp *ControlPlane, opts WorkerOptions) *Worker {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.Log == nil {
		opts.Log = t.Logf
	}
	opts.RejoinDelay = 20 * time.Millisecond
	w, err := NewWorker("", opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.JoinLoop(cp.Addr())
	}()
	t.Cleanup(func() { w.Close(); <-done })
	return w
}

// TestWorkerJoinsMidSweep: a sweep submitted to an empty plane sits
// queued (nothing to dispatch to), then completes the moment workers
// join — including one joining while the sweep is already running —
// with rows byte-identical to the local run.
func TestWorkerJoinsMidSweep(t *testing.T) {
	data, _, local := localReference(t, 6)
	cp := startPlane(t, PlaneOptions{})

	h, err := cp.Submit(data, SubmitOptions{SeedsPerCell: 6, Shards: 8, Name: "churn-join"})
	if err != nil {
		t.Fatal(err)
	}
	// No workers yet: the sweep must wait, not fail.
	time.Sleep(50 * time.Millisecond)
	if st := h.Status(); st.Done != 0 || st.Workers != 0 {
		t.Fatalf("sweep progressed with no workers: %+v", st)
	}

	joinWorker(t, cp, WorkerOptions{})
	go func() {
		// Second worker joins mid-run.
		time.Sleep(10 * time.Millisecond)
		joinWorker(t, cp, WorkerOptions{})
	}()

	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, res.Rows, local)
	total := 0
	for _, n := range res.RunsByWorker {
		total += n
	}
	if want := h.Total(); total != want {
		t.Errorf("runs across workers = %d, want %d", total, want)
	}
}

// TestJoinedWorkerKilledMidShard: a joined worker whose connection is
// severed in the middle of a record stream unregisters; its shard
// rolls back and requeues, and the worker's rejoin loop brings it back
// to finish the sweep. The merged rows carry no trace of the partial
// stream.
func TestJoinedWorkerKilledMidShard(t *testing.T) {
	data, _, local := localReference(t, 6)
	cp := startPlane(t, PlaneOptions{})

	w := joinWorker(t, cp, WorkerOptions{})
	w.failAfterRecords(2)

	h, err := cp.Submit(data, SubmitOptions{SeedsPerCell: 6, Shards: 4, Name: "churn-kill"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeues < 1 {
		t.Errorf("requeues = %d, want ≥ 1 after mid-shard kill", res.Requeues)
	}
	assertParity(t, res.Rows, local)
}

// TestGracefulLeaveRequeuesNothing: draining a worker between tasks
// announces the leave; the remaining worker finishes the sweep and the
// rows stay byte-identical.
func TestGracefulLeaveMidSweep(t *testing.T) {
	data, _, local := localReference(t, 8)
	cp := startPlane(t, PlaneOptions{})

	leaver := joinWorker(t, cp, WorkerOptions{})
	joinWorker(t, cp, WorkerOptions{})

	h, err := cp.Submit(data, SubmitOptions{SeedsPerCell: 8, Shards: 8, Name: "churn-leave"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	leaver.Drain()

	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, res.Rows, local)
}

// TestConcurrentSweepsIsolated: two sweeps submitted to one plane run
// concurrently over the same fleet under round-robin dispatch; each
// finishes with rows byte-identical to its own local run, and each
// handle's collector carries only its own sweep's telemetry.
func TestConcurrentSweepsIsolated(t *testing.T) {
	dataA, gridA, localA := localReference(t, 5)
	dataB, gridB, localB := localReference(t, 3)

	// Real listening workers, dial-out fleet: the one-shot topology.
	workers := make([]*Worker, 2)
	addrs := make([]string, 2)
	var wg sync.WaitGroup
	for i := range workers {
		w, err := NewWorker("127.0.0.1:0", WorkerOptions{Workers: 2, Log: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		workers[i], addrs[i] = w, w.Addr()
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Serve() //nolint:errcheck
		}()
	}
	defer wg.Wait()
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	cp, err := NewControlPlane(PlaneOptions{
		IOTimeout:      10 * time.Second,
		Log:            t.Logf,
		AbortWhenEmpty: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	hA, err := cp.Submit(dataA, SubmitOptions{SeedsPerCell: 5, Shards: 4, Name: "sweep-a"})
	if err != nil {
		t.Fatal(err)
	}
	hB, err := cp.Submit(dataB, SubmitOptions{SeedsPerCell: 3, Shards: 4, Name: "sweep-b"})
	if err != nil {
		t.Fatal(err)
	}
	if hA.ID() == hB.ID() {
		t.Fatal("sweeps share an id")
	}
	for _, a := range addrs {
		cp.AddWorker(a)
	}

	resA, err := hA.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := hB.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, resA.Rows, localA)
	assertParity(t, resB.Rows, localB)

	// Per-sweep telemetry: each collector counted exactly its own runs,
	// and its shard rows are tagged with its own sweep id.
	snapA, snapB := hA.Metrics().Snapshot(), hB.Metrics().Snapshot()
	if int(snapA.Runs) != gridA.Runs() {
		t.Errorf("sweep A collector has %d runs, want %d", snapA.Runs, gridA.Runs())
	}
	if int(snapB.Runs) != gridB.Runs() {
		t.Errorf("sweep B collector has %d runs, want %d", snapB.Runs, gridB.Runs())
	}
	for _, s := range snapA.Shards {
		if s.Sweep != hA.ID() {
			t.Errorf("sweep A collector carries shard telemetry of sweep %d", s.Sweep)
		}
	}
	for _, s := range snapB.Shards {
		if s.Sweep != hB.ID() {
			t.Errorf("sweep B collector carries shard telemetry of sweep %d", s.Sweep)
		}
	}
	if len(snapA.Shards) != len(resA.Shards) {
		t.Errorf("sweep A telemetry covers %d shards, want %d", len(snapA.Shards), len(resA.Shards))
	}
	if len(snapB.Shards) != len(resB.Shards) {
		t.Errorf("sweep B telemetry covers %d shards, want %d", len(snapB.Shards), len(resB.Shards))
	}
	cp.Shutdown()
}

// TestJoinBadTokenRejected: a worker presenting the wrong token is
// turned away without occupying a membership slot, and a correct-token
// worker joining afterwards serves the sweep normally.
func TestJoinBadTokenRejected(t *testing.T) {
	data, _, local := localReference(t, 3)
	cp := startPlane(t, PlaneOptions{Token: "s3cret"})

	bad, err := NewWorker("", WorkerOptions{Workers: 2, Token: "wrong", Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.Join(cp.Addr()); err == nil {
		t.Fatal("join with wrong token succeeded")
	} else if strings.Contains(err.Error(), "wrong") {
		t.Errorf("rejection echoes the presented token: %v", err)
	}
	if n := cp.Workers(); n != 0 {
		t.Fatalf("rejected worker occupies a slot: %d live members", n)
	}

	joinWorker(t, cp, WorkerOptions{Token: "s3cret"})
	h, err := cp.Submit(data, SubmitOptions{SeedsPerCell: 3, Shards: 2, Name: "churn-token"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, res.Rows, local)
}
