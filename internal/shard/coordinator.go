package shard

import (
	"errors"
	"time"

	"anondyn"
	"anondyn/internal/metrics"
	"anondyn/internal/spec"
)

// Options configures one coordinated sweep — the one-shot form: a
// fixed fleet of worker addresses, one spec, run to completion. It is
// a thin client of the ControlPlane (fleet members registered as
// dial-out workers, one sweep submitted, wait, drain), so the one-shot
// path and the resident service share every line of dispatch, merge,
// and requeue logic.
type Options struct {
	// Workers are the worker addresses (host:port). Required.
	Workers []string
	// Shards is the target shard count; < 1 sizes the plan from the
	// fleet (2 shards per worker) so a lost worker's load spreads
	// instead of doubling one peer.
	Shards int
	// SeedsPerCell, when > 0, overrides the spec's seeds_per_cell on
	// both sides of the wire.
	SeedsPerCell int
	// MaxPending bounds each worker's per-shard reorder window
	// (harness.Options.MaxPending; 0 = unbounded).
	MaxPending int
	// Token is the shared secret presented in every worker handshake;
	// empty disables auth (both sides must agree).
	Token string
	// IOTimeout bounds each frame exchange (for a record stream: the
	// gap between consecutive records). 0 means DefaultIOTimeout.
	IOTimeout time.Duration
	// DialRetries is how many extra connect attempts a worker gets
	// after a failure before the coordinator gives up on it (its queued
	// work moves to the surviving workers). Default 3.
	DialRetries int
	// RetryDelay is the pause between reconnect attempts; default
	// 200ms.
	RetryDelay time.Duration
	// Log, when non-nil, receives progress lines (Printf-style).
	Log func(format string, args ...any)
	// Metrics, when non-nil, aggregates the sweep's live telemetry: one
	// RunDone per record as it arrives off the wire, plus the workers'
	// interleaved per-shard progress frames (folded via ShardProgress).
	// Requeued shards may double-count their partial runs — this is
	// telemetry, not the merge, which stays all-or-nothing per shard.
	Metrics *metrics.Collector
	// MetricsEveryRuns is the telemetry cadence asked of each worker
	// (one frame per that many completed runs); < 1 with Metrics set
	// defaults to 16. Ignored when Metrics is nil.
	MetricsEveryRuns int
	// OnRow, when non-nil, streams each cell's finished row as its last
	// run commits (in cell order) — report output can render while the
	// sweep runs. Runs under the control plane's scheduling lock; keep
	// it fast.
	OnRow func(cell int, row anondyn.CellResult)
}

func (o *Options) fill() error {
	if len(o.Workers) == 0 {
		return errors.New("shard: no workers (pass at least one address)")
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = DefaultIOTimeout
	}
	if o.DialRetries < 1 {
		o.DialRetries = 3
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 200 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	if o.Metrics != nil && o.MetricsEveryRuns < 1 {
		o.MetricsEveryRuns = 16
	}
	return nil
}

// Result is one coordinated sweep's outcome.
type Result struct {
	// Sweep is the parsed spec (after any seeds override).
	Sweep *spec.Sweep
	// Rows are the aggregate cell rows, byte-identical to a local
	// Grid.Run of the same spec and seeds.
	Rows []anondyn.CellResult
	// Shards is the executed plan.
	Shards []Shard
	// Requeues counts shards re-dispatched after a worker loss.
	Requeues int
	// RunsByWorker maps worker address → completed runs.
	RunsByWorker map[string]int
}

// Run coordinates one sweep over a fixed fleet: spin up an in-process
// control plane with the fleet as dial-out members, submit the spec,
// wait, drain. Requeue-on-loss, streaming merge, and the determinism
// contract are all the ControlPlane's.
func Run(specData []byte, opts Options) (*Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	cp, err := NewControlPlane(PlaneOptions{
		Token:            opts.Token,
		IOTimeout:        opts.IOTimeout,
		DialRetries:      opts.DialRetries,
		RetryDelay:       opts.RetryDelay,
		MaxPending:       opts.MaxPending,
		Log:              opts.Log,
		Metrics:          opts.Metrics,
		MetricsEveryRuns: opts.MetricsEveryRuns,
		AbortWhenEmpty:   true, // a fixed fleet that is gone is gone
	})
	if err != nil {
		return nil, err
	}
	defer cp.Close()
	shards := opts.Shards
	if shards < 1 {
		shards = 2 * len(opts.Workers)
	}
	h, err := cp.Submit(specData, SubmitOptions{
		SeedsPerCell: opts.SeedsPerCell,
		Shards:       shards,
		Name:         "one-shot",
		OnRow:        opts.OnRow,
	})
	if err != nil {
		return nil, err
	}
	for _, addr := range opts.Workers {
		cp.AddWorker(addr)
	}
	res, err := h.Wait()
	if err != nil {
		return nil, err
	}
	cp.Shutdown()
	return res, nil
}
