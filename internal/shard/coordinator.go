package shard

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"anondyn"
	"anondyn/internal/metrics"
	"anondyn/internal/spec"
	"anondyn/internal/transport"
)

// Options configures one coordinated sweep.
type Options struct {
	// Workers are the worker addresses (host:port). Required.
	Workers []string
	// Shards is the target shard count; < 1 plans 2 shards per worker
	// so a lost worker's load spreads instead of doubling one peer.
	Shards int
	// SeedsPerCell, when > 0, overrides the spec's seeds_per_cell on
	// both sides of the wire.
	SeedsPerCell int
	// MaxPending bounds each worker's per-shard reorder window
	// (harness.Options.MaxPending; 0 = unbounded).
	MaxPending int
	// IOTimeout bounds each frame exchange (for a record stream: the
	// gap between consecutive records). 0 means DefaultIOTimeout.
	IOTimeout time.Duration
	// DialRetries is how many extra connect attempts a worker gets
	// after a failure before the coordinator gives up on it (its queued
	// work moves to the surviving workers). Default 3.
	DialRetries int
	// RetryDelay is the pause between reconnect attempts; default
	// 200ms.
	RetryDelay time.Duration
	// Log, when non-nil, receives progress lines (Printf-style).
	Log func(format string, args ...any)
	// Metrics, when non-nil, aggregates the sweep's live telemetry: one
	// RunDone per record as it arrives off the wire, plus the workers'
	// interleaved per-shard progress frames (folded via ShardProgress).
	// Requeued shards may double-count their partial runs — this is
	// telemetry, not the merge, which stays all-or-nothing per shard.
	Metrics *metrics.Collector
	// MetricsEveryRuns is the telemetry cadence asked of each worker
	// (one frame per that many completed runs); < 1 with Metrics set
	// defaults to 16. Ignored when Metrics is nil.
	MetricsEveryRuns int
}

func (o *Options) fill() error {
	if len(o.Workers) == 0 {
		return errors.New("shard: no workers (pass at least one address)")
	}
	if o.Shards < 1 {
		o.Shards = 2 * len(o.Workers)
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = DefaultIOTimeout
	}
	if o.DialRetries < 1 {
		o.DialRetries = 3
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 200 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	if o.Metrics != nil && o.MetricsEveryRuns < 1 {
		o.MetricsEveryRuns = 16
	}
	return nil
}

// Result is one coordinated sweep's outcome.
type Result struct {
	// Sweep is the parsed spec (after any seeds override).
	Sweep *spec.Sweep
	// Rows are the aggregate cell rows, byte-identical to a local
	// Grid.Run of the same spec and seeds.
	Rows []anondyn.CellResult
	// Shards is the executed plan.
	Shards []Shard
	// Requeues counts shards re-dispatched after a worker loss.
	Requeues int
	// RunsByWorker maps worker address → completed runs.
	RunsByWorker map[string]int
}

// Run coordinates one sweep: parse the spec, plan shards, dispatch
// them across the workers with requeue-on-loss, and merge the records
// into aggregate rows in global run order.
func Run(specData []byte, opts Options) (*Result, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	sw, grid, err := spec.Compile(specData, opts.SeedsPerCell)
	if err != nil {
		return nil, err
	}
	cells := grid.Cells()
	per := grid.SeedsPerCell
	if per < 1 {
		per = 1
	}
	shards := Plan(len(cells), per, opts.Shards)
	if len(shards) == 0 {
		return nil, errors.New("shard: empty sweep (no cells)")
	}

	c := &coordinator{
		opts:    opts,
		spec:    specData,
		shards:  shards,
		results: make([][]transport.ShardRecord, len(shards)),
		runs:    make(map[string]int, len(opts.Workers)),
	}
	c.queue.init(len(shards), len(opts.Workers))
	var wg sync.WaitGroup
	for _, addr := range opts.Workers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.workerLoop(addr)
		}(addr)
	}
	wg.Wait()
	if err := c.queue.err(); err != nil {
		return nil, err
	}

	rows, err := merge(cells, per, shards, c.results)
	if err != nil {
		return nil, err
	}
	return &Result{
		Sweep:        sw,
		Rows:         rows,
		Shards:       shards,
		Requeues:     c.requeues,
		RunsByWorker: c.runs,
	}, nil
}

// coordinator carries one Run's shared state.
type coordinator struct {
	opts   Options
	spec   []byte
	shards []Shard
	queue  shardQueue

	// results[i] is shard i's record buffer, written only by the
	// worker goroutine that owns the popped shard and read after every
	// goroutine has joined.
	results [][]transport.ShardRecord

	mu       sync.Mutex
	requeues int
	runs     map[string]int
}

// maxConsecutiveFailures is how many transport failures in a row a
// worker may accumulate (with successful reconnects in between) before
// the coordinator abandons it.
const maxConsecutiveFailures = 3

// workerLoop drives one worker: pop a shard, run it, commit or
// requeue. A worker that keeps failing is abandoned — its queued work
// drains through the survivors; losing the last worker aborts the
// sweep.
func (c *coordinator) workerLoop(addr string) {
	defer c.queue.workerExit(addr)
	var cl *transport.ShardClient
	defer func() {
		if cl != nil {
			cl.Stop()
			cl.Close()
		}
	}()
	failures := 0
	for {
		idx, ok := c.queue.pop()
		if !ok {
			return
		}
		if cl == nil {
			var err error
			cl, err = c.connect(addr)
			if err != nil {
				c.opts.Log("shard: worker %s unreachable: %v", addr, err)
				c.queue.requeue(idx)
				return
			}
		}
		sh := c.shards[idx]
		task := transport.ShardTask{
			Shard:        sh.Index,
			Lo:           sh.Lo,
			Hi:           sh.Hi,
			SeedsPerCell: c.opts.SeedsPerCell,
			MaxPending:   c.opts.MaxPending,
			Spec:         c.spec,
		}
		var onMetrics func(transport.ShardMetrics)
		if c.opts.Metrics != nil {
			task.MetricsEveryRuns = c.opts.MetricsEveryRuns
			onMetrics = func(m transport.ShardMetrics) {
				c.opts.Metrics.ShardProgress(metrics.ShardStat{
					Shard:     m.Shard,
					Runs:      m.Runs,
					Rounds:    m.Rounds,
					Delivered: m.Delivered,
				})
			}
		}
		recs := make([]transport.ShardRecord, 0, sh.Runs())
		err := cl.RunShard(task, func(r transport.ShardRecord) error {
			recs = append(recs, r)
			c.opts.Metrics.RunDone(metrics.RunSample{Decided: r.Decided, Rounds: r.Rounds})
			return nil
		}, onMetrics)
		var shardErr *transport.ShardError
		switch {
		case err == nil:
			c.results[idx] = recs
			c.mu.Lock()
			c.runs[addr] += len(recs)
			c.mu.Unlock()
			c.queue.done()
			failures = 0
		case errors.As(err, &shardErr):
			// Deterministic rejection: another worker would fail the
			// same way. Abort the sweep with the worker's report.
			c.queue.abort(shardErr)
			return
		default:
			// Transport failure: the shard reruns elsewhere (or here,
			// after a reconnect). Partial records are discarded — a
			// shard is all-or-nothing, which is what keeps the merge
			// deterministic.
			c.opts.Log("shard: %v on worker %s: %v (requeued)", sh, addr, err)
			c.mu.Lock()
			c.requeues++
			c.mu.Unlock()
			c.queue.requeue(idx)
			cl.Close()
			cl = nil
			failures++
			if failures >= maxConsecutiveFailures {
				c.opts.Log("shard: abandoning worker %s after %d consecutive failures", addr, failures)
				return
			}
		}
	}
}

// connect dials a worker with the retry budget.
func (c *coordinator) connect(addr string) (*transport.ShardClient, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.opts.RetryDelay)
		}
		cl, err := transport.DialShard(addr, c.opts.IOTimeout)
		if err == nil {
			return cl, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// merge folds whole shards in plan order — which is global run order,
// since shards partition [0, total) contiguously — into per-cell
// BatchStats, reproducing Grid.Run's fold operation for operation.
func merge(cells []anondyn.Cell, per int, shards []Shard, results [][]transport.ShardRecord) ([]anondyn.CellResult, error) {
	stats := make([]*anondyn.BatchStats, len(cells))
	for i, c := range cells {
		stats[i] = &anondyn.BatchStats{Eps: c.Eps}
	}
	next := 0
	for _, sh := range shards {
		recs := results[sh.Index]
		if len(recs) != sh.Runs() {
			return nil, fmt.Errorf("shard: %v delivered %d/%d records", sh, len(recs), sh.Runs())
		}
		for _, r := range recs {
			if r.Run != next {
				return nil, fmt.Errorf("shard: %v out of sequence: run %d, want %d", sh, r.Run, next)
			}
			if err := stats[r.Run/per].ConsumeRecord(anondyn.RunRecord{
				Decided:   r.Decided,
				Rounds:    r.Rounds,
				Bytes:     r.Bytes,
				OutRange:  math.Float64frombits(r.OutRangeBits),
				Violation: r.Violation,
			}); err != nil {
				return nil, err
			}
			next++
		}
	}
	rows := make([]anondyn.CellResult, len(cells))
	for i, c := range cells {
		rows[i] = anondyn.CellResult{
			N: c.N, F: c.F, Eps: c.Eps,
			Algorithm:   c.Algorithm.String(),
			Adversary:   c.Adversary.Name,
			Variant:     c.Variant.Name,
			BatchReport: stats[i].Report(),
		}
	}
	return rows, nil
}

// shardQueue is the dispatch ledger: pending shard indices, the count
// still outstanding, and the live-worker census that turns "all
// workers lost" into an abort instead of a hang.
type shardQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	pending   []int
	remaining int // shards not yet committed
	active    int // worker loops still running
	abortErr  error
}

func (q *shardQueue) init(shards, workers int) {
	q.cond = sync.NewCond(&q.mu)
	q.pending = make([]int, shards)
	for i := range q.pending {
		q.pending[i] = i
	}
	q.remaining = shards
	q.active = workers
}

// pop blocks until a shard is available, all work is committed, or the
// sweep aborted; ok is false in the latter two cases.
func (q *shardQueue) pop() (idx int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pending) == 0 && q.remaining > 0 && q.abortErr == nil {
		q.cond.Wait()
	}
	if q.abortErr != nil || q.remaining == 0 {
		return 0, false
	}
	idx = q.pending[0]
	q.pending = q.pending[1:]
	return idx, true
}

func (q *shardQueue) done() {
	q.mu.Lock()
	q.remaining--
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *shardQueue) requeue(idx int) {
	q.mu.Lock()
	q.pending = append(q.pending, idx)
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *shardQueue) abort(err error) {
	q.mu.Lock()
	if q.abortErr == nil {
		q.abortErr = err
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// workerExit records a worker loop ending; the last exit with work
// still unfinished aborts (every shard has lost its chance to run).
func (q *shardQueue) workerExit(addr string) {
	q.mu.Lock()
	q.active--
	if q.active == 0 && q.remaining > 0 && q.abortErr == nil {
		q.abortErr = fmt.Errorf("shard: all workers lost with %d shards unfinished (last: %s)", q.remaining, addr)
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *shardQueue) err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.abortErr
}
