package shard

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"anondyn"
	"anondyn/internal/metrics"
	"anondyn/internal/spec"
	"anondyn/internal/transport"
)

// WorkerOptions configures one sweep worker process.
type WorkerOptions struct {
	// Workers is the harness pool size each shard runs on (< 1 =
	// GOMAXPROCS) — also the capacity announced to coordinators.
	Workers int
	// IOTimeout bounds each frame write and the reads within a task
	// exchange; waiting for the next task is always unbounded. 0 means
	// DefaultIOTimeout.
	IOTimeout time.Duration
	// Log, when non-nil, receives progress lines (Printf-style).
	Log func(format string, args ...any)
	// Metrics, when non-nil, observes every shard this worker executes
	// (teed with the per-task telemetry collector) — the hook behind
	// `dynabench -serve -metrics`. Purely observational.
	Metrics metrics.Sink
}

// DefaultIOTimeout is the per-frame bound both ends of the shard
// protocol fall back to.
const DefaultIOTimeout = 2 * time.Minute

// Worker executes shards for any coordinator that connects: parse the
// shipped spec, compile the grid, run the shard's run range on the
// local harness pool, and stream records back in run order.
type Worker struct {
	ln   net.Listener
	opts WorkerOptions

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	// dropAfter is a test knob: when > 0, the connection serving the
	// current task is severed after that many further records — the
	// "worker restart mid-shard" the requeue path must survive. It
	// disarms after firing.
	dropAfter int
	// dropBeforeDone is a test knob: the connection serving the current
	// task is severed after its record stream completes but before the
	// done frame — the ambiguous ordering a coordinator must requeue,
	// never treat as a clean finish. It disarms after firing.
	dropBeforeDone bool
}

// NewWorker starts listening on addr (e.g. "127.0.0.1:0"); call Serve
// to accept coordinators.
func NewWorker(addr string, opts WorkerOptions) (*Worker, error) {
	if opts.IOTimeout <= 0 {
		opts.IOTimeout = DefaultIOTimeout
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shard: listen %s: %w", addr, err)
	}
	return &Worker{ln: ln, opts: opts, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the worker's listen address (useful with ":0").
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Close stops accepting and tears down every live connection; Serve
// returns nil.
func (w *Worker) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.ln.Close()
	for c := range w.conns {
		c.Close()
	}
}

// Serve accepts coordinator connections until Close, handling each on
// its own goroutine (shards within one connection run sequentially;
// parallelism lives in the per-shard harness pool).
func (w *Worker) Serve() error {
	for {
		raw, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !w.track(raw) {
			raw.Close()
			return nil
		}
		go func() {
			defer w.untrack(raw)
			w.handle(raw)
		}()
	}
}

func (w *Worker) track(raw net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[raw] = struct{}{}
	return true
}

func (w *Worker) untrack(raw net.Conn) {
	w.mu.Lock()
	delete(w.conns, raw)
	w.mu.Unlock()
	raw.Close()
}

// handle speaks one coordinator session.
func (w *Worker) handle(raw net.Conn) {
	capacity := w.opts.Workers
	if capacity < 1 {
		capacity = 0 // announced as "pool decides" (GOMAXPROCS)
	}
	srv, err := transport.AcceptShard(raw, capacity, w.opts.IOTimeout)
	if err != nil {
		w.opts.Log("shard worker: handshake from %s: %v", raw.RemoteAddr(), err)
		return
	}
	for {
		task, err := srv.Next()
		if err != nil {
			if !errors.Is(err, transport.ErrShutdown) {
				w.opts.Log("shard worker: session with %s: %v", raw.RemoteAddr(), err)
			}
			return
		}
		w.opts.Log("shard worker: shard %d (runs [%d,%d)) from %s", task.Shard, task.Lo, task.Hi, raw.RemoteAddr())
		if err := w.runTask(raw, srv, task); err != nil {
			w.opts.Log("shard worker: shard %d: %v", task.Shard, err)
			return // the connection is no longer trustworthy
		}
	}
}

// runTask executes one shard. A deterministic failure (bad spec,
// out-of-range slice, run error) is reported with a fail frame and the
// session continues; a transport failure returns an error and ends the
// session so the coordinator requeues.
//
// The record stream is gap-checked worker-side: a run that errors out
// of the harness is skipped by the ordered sink, so without the check
// the next record's index would jump and the coordinator would see a
// malformed stream — a transport-looking failure that requeues a
// deterministic error forever. Detecting the gap here turns it into a
// fail frame carrying the run's actual error.
func (w *Worker) runTask(raw net.Conn, srv *transport.ShardServer, task transport.ShardTask) error {
	_, grid, err := spec.Compile(task.Spec, task.SeedsPerCell)
	if err != nil {
		return srv.Fail(task.Shard, err.Error())
	}
	if task.Hi > grid.Runs() {
		return srv.Fail(task.Shard, fmt.Sprintf("slice [%d,%d) out of range for %d runs", task.Lo, task.Hi, grid.Runs()))
	}
	// The per-task collector feeds the coordinator's live telemetry; the
	// worker process's own sink (if any) rides along on the tee.
	var coll *metrics.Collector
	if task.MetricsEveryRuns > 0 {
		coll = metrics.NewCollector()
	}
	var batchSink metrics.Sink
	if coll != nil {
		batchSink = metrics.Tee(coll, w.opts.Metrics)
	} else {
		batchSink = w.opts.Metrics
	}
	// done is the records-shipped count — exact at frame time, unlike
	// the collector's own run counter, which increments after the
	// ordered sink (this callback) returns.
	telemetry := func(done int) transport.ShardMetrics {
		snap := coll.Snapshot()
		return transport.ShardMetrics{
			Shard:     task.Shard,
			Runs:      uint64(done),
			Rounds:    snap.Rounds,
			Delivered: snap.Delivered,
			Busy:      snap.Busy,
			Workers:   snap.Workers,
		}
	}
	var sendErr error
	count := 0
	next := task.Lo
	runErr := grid.RunSlice(task.Lo, task.Hi,
		anondyn.BatchOptions{Workers: w.opts.Workers, MaxPending: task.MaxPending, Metrics: batchSink},
		func(c anondyn.Cell, _, run int, _ int64, res *anondyn.Result) error {
			if run != next {
				return fmt.Errorf("record stream gap at run %d (want %d): an earlier run failed", run, next)
			}
			next++
			w.maybeDrop(raw)
			rec := anondyn.Record(res, c.Eps)
			if err := srv.WriteRecord(transport.ShardRecord{
				Run:          run,
				Decided:      rec.Decided,
				Rounds:       rec.Rounds,
				Bytes:        rec.Bytes,
				OutRangeBits: math.Float64bits(rec.OutRange),
				Violation:    rec.Violation,
			}); err != nil {
				sendErr = err
				return err
			}
			count++
			if coll != nil && count%task.MetricsEveryRuns == 0 && count < task.Runs() {
				if err := srv.WriteMetrics(telemetry(count)); err != nil {
					sendErr = err
					return err
				}
			}
			return nil
		})
	if sendErr != nil {
		return sendErr
	}
	if runErr != nil {
		return srv.Fail(task.Shard, runErr.Error())
	}
	if coll != nil {
		// Final sample so every task ships at least one telemetry frame.
		if err := srv.WriteMetrics(telemetry(count)); err != nil {
			return err
		}
	}
	if w.takeDropBeforeDone() {
		raw.Close()
		return errors.New("shard: dropped before done frame (test knob)")
	}
	return srv.Done(task.Shard, count)
}

// failAfterRecords arms the test knob: the connection serving the
// current task is severed after n further records.
func (w *Worker) failAfterRecords(n int) {
	w.mu.Lock()
	w.dropAfter = n
	w.mu.Unlock()
}

// failBeforeDone arms the test knob: the connection serving the current
// task is severed between its last record and the done frame.
func (w *Worker) failBeforeDone() {
	w.mu.Lock()
	w.dropBeforeDone = true
	w.mu.Unlock()
}

func (w *Worker) takeDropBeforeDone() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	fire := w.dropBeforeDone
	w.dropBeforeDone = false
	return fire
}

func (w *Worker) maybeDrop(raw net.Conn) {
	w.mu.Lock()
	if w.dropAfter <= 0 {
		w.mu.Unlock()
		return
	}
	w.dropAfter--
	fire := w.dropAfter == 0
	w.mu.Unlock()
	if fire {
		raw.Close()
	}
}
