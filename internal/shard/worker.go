package shard

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"anondyn"
	"anondyn/internal/metrics"
	"anondyn/internal/spec"
	"anondyn/internal/transport"
)

// WorkerOptions configures one sweep worker process.
type WorkerOptions struct {
	// Workers is the harness pool size each shard runs on (< 1 =
	// GOMAXPROCS) — also the capacity announced to coordinators.
	Workers int
	// Token is the shared secret verified in every coordinator
	// handshake and presented in every control-plane join; empty
	// disables auth (both sides must agree).
	Token string
	// IOTimeout bounds each frame write and the reads within a task
	// exchange; waiting for the next task is always unbounded. 0 means
	// DefaultIOTimeout.
	IOTimeout time.Duration
	// RejoinDelay is the pause between control-plane reconnect attempts
	// in JoinLoop; default 1s.
	RejoinDelay time.Duration
	// Log, when non-nil, receives progress lines (Printf-style).
	Log func(format string, args ...any)
	// Metrics, when non-nil, observes every shard this worker executes
	// (teed with the per-task telemetry collector) — the hook behind
	// `dynabench -serve -metrics`. Purely observational.
	Metrics metrics.Sink
}

// DefaultIOTimeout is the per-frame bound both ends of the shard
// protocol fall back to.
const DefaultIOTimeout = 2 * time.Minute

// Worker executes shards for any coordinator it is connected to —
// whether the coordinator dialed in (the listener) or the worker
// dialed out (Join/JoinLoop against a resident control plane): parse
// the shipped spec, compile the grid, run the shard's run range on the
// local harness pool, and stream records back in run order.
type Worker struct {
	ln   net.Listener // nil when the worker only joins out
	opts WorkerOptions

	mu       sync.Mutex
	closed   bool
	draining bool
	stop     chan struct{} // closed on Close/Drain: ends JoinLoop retries
	conns    map[net.Conn]struct{}
	joins    map[*joinState]struct{}

	// dropAfter is a test knob: when > 0, the connection serving the
	// current task is severed after that many further records — the
	// "worker restart mid-shard" the requeue path must survive. It
	// disarms after firing.
	dropAfter int
	// dropBeforeDone is a test knob: the connection serving the current
	// task is severed after its record stream completes but before the
	// done frame — the ambiguous ordering a coordinator must requeue,
	// never treat as a clean finish. It disarms after firing.
	dropBeforeDone bool
}

// NewWorker starts listening on addr (e.g. "127.0.0.1:0"); call Serve
// to accept coordinators. An empty addr skips the listener — the
// worker then only serves control planes it joins via Join/JoinLoop.
func NewWorker(addr string, opts WorkerOptions) (*Worker, error) {
	if opts.IOTimeout <= 0 {
		opts.IOTimeout = DefaultIOTimeout
	}
	if opts.RejoinDelay <= 0 {
		opts.RejoinDelay = time.Second
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	w := &Worker{
		opts:  opts,
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
		joins: make(map[*joinState]struct{}),
	}
	if addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("shard: listen %s: %w", addr, err)
		}
		w.ln = ln
	}
	return w, nil
}

// Addr returns the worker's listen address ("" without a listener).
func (w *Worker) Addr() string {
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Close stops accepting and tears down every live connection; Serve
// returns nil and JoinLoop stops retrying.
func (w *Worker) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	if !w.draining {
		w.draining = true
		close(w.stop)
	}
	if w.ln != nil {
		w.ln.Close()
	}
	for c := range w.conns {
		c.Close()
	}
}

// Drain announces a graceful departure from every joined control
// plane: idle sessions send a leave frame immediately, busy sessions
// finish their current shard first, and JoinLoop stops reconnecting.
// Listener sessions are unaffected — dialing coordinators own those
// lifecycles. Call Close afterwards to tear down what remains.
func (w *Worker) Drain() {
	w.mu.Lock()
	if w.draining {
		w.mu.Unlock()
		return
	}
	w.draining = true
	close(w.stop)
	joins := make([]*joinState, 0, len(w.joins))
	for js := range w.joins {
		joins = append(joins, js)
	}
	w.mu.Unlock()
	for _, js := range joins {
		js.leaveIfIdle()
	}
}

func (w *Worker) isDraining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// Serve accepts coordinator connections until Close, handling each on
// its own goroutine (shards within one connection run sequentially;
// parallelism lives in the per-shard harness pool).
func (w *Worker) Serve() error {
	if w.ln == nil {
		return errors.New("shard: worker has no listener (created with an empty address)")
	}
	for {
		raw, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !w.track(raw) {
			raw.Close()
			return nil
		}
		go func() {
			defer w.untrack(raw)
			w.handle(raw)
		}()
	}
}

func (w *Worker) track(raw net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[raw] = struct{}{}
	return true
}

func (w *Worker) untrack(raw net.Conn) {
	w.mu.Lock()
	delete(w.conns, raw)
	w.mu.Unlock()
	raw.Close()
}

// capacity is the pool size announced in handshakes (0 = "pool
// decides", GOMAXPROCS).
func (w *Worker) capacity() int {
	if w.opts.Workers < 1 {
		return 0
	}
	return w.opts.Workers
}

// handle speaks one coordinator session on an accepted connection.
func (w *Worker) handle(raw net.Conn) {
	srv, err := transport.AcceptShard(raw, w.capacity(), w.opts.Token, w.opts.IOTimeout)
	if err != nil {
		w.opts.Log("shard worker: handshake from %s: %v", raw.RemoteAddr(), err)
		return
	}
	w.session(raw, srv, nil)
}

// Join dials into a resident control plane, registers with the
// worker's capacity and token, and serves tasks until the session ends
// (control-plane shutdown, connection loss, or Drain). JoinLoop is the
// reconnecting form.
func (w *Worker) Join(cpAddr string) error {
	srv, err := transport.JoinControlPlane(cpAddr, w.capacity(), w.opts.Token, w.opts.IOTimeout)
	if err != nil {
		return err
	}
	raw := srv.Conn()
	if !w.track(raw) {
		raw.Close()
		return nil
	}
	defer w.untrack(raw)
	w.opts.Log("shard worker: joined control plane %s", cpAddr)
	js := &joinState{srv: srv, raw: raw}
	w.mu.Lock()
	w.joins[js] = struct{}{}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.joins, js)
		w.mu.Unlock()
	}()
	w.session(raw, srv, js)
	return nil
}

// JoinLoop runs Join against cpAddr, reconnecting with RejoinDelay
// backoff whenever the session ends, until Close or Drain. Connection
// failures are logged and retried — a control plane that is not up yet
// (or restarting) is an expected state, not an error.
func (w *Worker) JoinLoop(cpAddr string) {
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		if err := w.Join(cpAddr); err != nil {
			w.opts.Log("shard worker: control plane %s: %v (retrying in %v)", cpAddr, err, w.opts.RejoinDelay)
		}
		select {
		case <-w.stop:
			return
		case <-time.After(w.opts.RejoinDelay):
		}
	}
}

// session speaks the task → record-stream → done exchanges of one
// coordinator connection. js is non-nil for joined sessions, where it
// coordinates graceful leave with Drain.
func (w *Worker) session(raw net.Conn, srv *transport.ShardServer, js *joinState) {
	for {
		task, err := srv.Next()
		if err != nil {
			if js != nil && js.isLeft() {
				// Drain woke us after announcing the leave; give the
				// control plane a moment to observe it, then close.
				lingerClose(raw)
				return
			}
			if !errors.Is(err, transport.ErrShutdown) {
				w.opts.Log("shard worker: session with %s: %v", raw.RemoteAddr(), err)
			}
			return
		}
		if js != nil && !js.beginTask() {
			// Drain already announced the leave; the control plane
			// requeues this task via the leave it is about to read.
			return
		}
		w.opts.Log("shard worker: shard %d (runs [%d,%d)) from %s", task.Shard, task.Lo, task.Hi, raw.RemoteAddr())
		if err := w.runTask(raw, srv, task); err != nil {
			w.opts.Log("shard worker: shard %d: %v", task.Shard, err)
			return // the connection is no longer trustworthy
		}
		if js != nil && js.endTask(w.isDraining()) {
			w.opts.Log("shard worker: leaving control plane %s", raw.RemoteAddr())
			lingerClose(raw)
			return
		}
	}
}

// joinState coordinates one joined session's graceful leave: the leave
// frame must never interleave with a record stream, so it is sent
// either by Drain while the session is provably idle (blocked waiting
// for a task) or by the session loop itself between tasks.
type joinState struct {
	srv *transport.ShardServer
	raw net.Conn

	mu   sync.Mutex
	busy bool
	left bool
}

// beginTask marks the session busy; false when the leave was already
// announced (the task is abandoned for the control plane to requeue).
func (js *joinState) beginTask() bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.left {
		return false
	}
	js.busy = true
	return true
}

// endTask marks the session idle again and, when draining (or when
// Drain marked the session while it was busy), sends the leave frame;
// true means the session should close.
func (js *joinState) endTask(draining bool) bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.busy = false
	if !draining && !js.left {
		return false
	}
	js.left = true
	js.srv.Leave() //nolint:errcheck // best effort: a torn leave degrades to a requeue
	return true
}

// leaveIfIdle sends the leave frame now if the session is between
// tasks; a busy session is only marked, and announces the leave itself
// after its current shard. The leave write is safe while idle: the
// session goroutine only reads (blocked in Next), and begin/end are
// serialized through this mutex.
func (js *joinState) leaveIfIdle() {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.left {
		return
	}
	js.left = true
	if js.busy {
		return
	}
	js.srv.Leave() //nolint:errcheck // best effort: a torn leave degrades to a requeue
	// Wake the session goroutine out of its blocking Next (sole reader
	// of the connection); it observes left and winds the session down.
	js.raw.SetReadDeadline(time.Now()) //nolint:errcheck
}

// isLeft reports whether the leave was announced.
func (js *joinState) isLeft() bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.left
}

// lingerClose gives the peer a short window to observe the leave frame
// before the FIN: wait for it to close first (or 2s), then close.
func lingerClose(raw net.Conn) {
	raw.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	var buf [1]byte
	raw.Read(buf[:]) //nolint:errcheck
	raw.Close()
}

// runTask executes one shard. A deterministic failure (bad spec,
// out-of-range slice, run error) is reported with a fail frame and the
// session continues; a transport failure returns an error and ends the
// session so the coordinator requeues.
//
// The record stream is gap-checked worker-side: a run that errors out
// of the harness is skipped by the ordered sink, so without the check
// the next record's index would jump and the coordinator would see a
// malformed stream — a transport-looking failure that requeues a
// deterministic error forever. Detecting the gap here turns it into a
// fail frame carrying the run's actual error.
func (w *Worker) runTask(raw net.Conn, srv *transport.ShardServer, task transport.ShardTask) error {
	_, grid, err := spec.Compile(task.Spec, task.SeedsPerCell)
	if err != nil {
		return srv.Fail(task.Shard, err.Error())
	}
	if task.Hi > grid.Runs() {
		return srv.Fail(task.Shard, fmt.Sprintf("slice [%d,%d) out of range for %d runs", task.Lo, task.Hi, grid.Runs()))
	}
	// The per-task collector feeds the coordinator's live telemetry; the
	// worker process's own sink (if any) rides along on the tee.
	var coll *metrics.Collector
	if task.MetricsEveryRuns > 0 {
		coll = metrics.NewCollector()
	}
	var batchSink metrics.Sink
	if coll != nil {
		batchSink = metrics.Tee(coll, w.opts.Metrics)
	} else {
		batchSink = w.opts.Metrics
	}
	// done is the records-shipped count — exact at frame time, unlike
	// the collector's own run counter, which increments after the
	// ordered sink (this callback) returns.
	telemetry := func(done int) transport.ShardMetrics {
		snap := coll.Snapshot()
		return transport.ShardMetrics{
			Shard:     task.Shard,
			Runs:      uint64(done),
			Rounds:    snap.Rounds,
			Delivered: snap.Delivered,
			Busy:      snap.Busy,
			Workers:   snap.Workers,
		}
	}
	var sendErr error
	count := 0
	next := task.Lo
	runErr := grid.RunSlice(task.Lo, task.Hi,
		anondyn.BatchOptions{Workers: w.opts.Workers, MaxPending: task.MaxPending, Metrics: batchSink},
		func(c anondyn.Cell, _, run int, _ int64, res *anondyn.Result) error {
			if run != next {
				return fmt.Errorf("record stream gap at run %d (want %d): an earlier run failed", run, next)
			}
			next++
			w.maybeDrop(raw)
			rec := anondyn.Record(res, c.Eps)
			if err := srv.WriteRecord(transport.ShardRecord{
				Run:          run,
				Decided:      rec.Decided,
				Rounds:       rec.Rounds,
				Bytes:        rec.Bytes,
				OutRangeBits: math.Float64bits(rec.OutRange),
				Violation:    rec.Violation,
			}); err != nil {
				sendErr = err
				return err
			}
			count++
			if coll != nil && count%task.MetricsEveryRuns == 0 && count < task.Runs() {
				if err := srv.WriteMetrics(telemetry(count)); err != nil {
					sendErr = err
					return err
				}
			}
			return nil
		})
	if sendErr != nil {
		return sendErr
	}
	if runErr != nil {
		return srv.Fail(task.Shard, runErr.Error())
	}
	if coll != nil {
		// Final sample so every task ships at least one telemetry frame.
		if err := srv.WriteMetrics(telemetry(count)); err != nil {
			return err
		}
	}
	if w.takeDropBeforeDone() {
		raw.Close()
		return errors.New("shard: dropped before done frame (test knob)")
	}
	return srv.Done(task.Shard, count)
}

// failAfterRecords arms the test knob: the connection serving the
// current task is severed after n further records.
func (w *Worker) failAfterRecords(n int) {
	w.mu.Lock()
	w.dropAfter = n
	w.mu.Unlock()
}

// failBeforeDone arms the test knob: the connection serving the current
// task is severed between its last record and the done frame.
func (w *Worker) failBeforeDone() {
	w.mu.Lock()
	w.dropBeforeDone = true
	w.mu.Unlock()
}

func (w *Worker) takeDropBeforeDone() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	fire := w.dropBeforeDone
	w.dropBeforeDone = false
	return fire
}

func (w *Worker) maybeDrop(raw net.Conn) {
	w.mu.Lock()
	if w.dropAfter <= 0 {
		w.mu.Unlock()
		return
	}
	w.dropAfter--
	fire := w.dropAfter == 0
	w.mu.Unlock()
	if fire {
		raw.Close()
	}
}
