package shard

import (
	"fmt"
	"math"

	"anondyn"
	"anondyn/internal/transport"
)

// streamMerge folds shard record streams into per-cell BatchStats in
// global run order as records arrive off the wire, replacing the old
// buffer-whole-shards-then-merge pass. The output contract is
// unchanged: rows byte-identical to a single-process Grid.Run, which
// pins the float fold order to the global run order exactly.
//
// The re-sequencing window works on three tiers of shard:
//
//   - Committed shards (behind the cursor) are folded and immutable;
//     their done frames arrived and their cells' rows may already be
//     emitted.
//   - The cursor shard folds eagerly — each record goes straight into
//     its cell's BatchStats — but provisionally: the affected cell
//     range is value-snapshotted before the first fold, so a transport
//     failure rolls the fold back exactly and the shard requeues as if
//     nothing happened. (Accumulators only ever append, so restoring
//     the struct values restores the fold.)
//   - Shards ahead of the cursor buffer their records until the cursor
//     reaches them; out-of-order completion therefore costs memory for
//     the overtaking shards only, never correctness.
//
// The cursor crosses a shard boundary only once that shard's done
// frame has arrived (commit), which is what keeps the protocol's one
// ambiguous disconnect — every record streamed but no done frame —
// rollback-safe. Rows are emitted (via onRow) as soon as every run of
// their cell is committed, so reports stream while the sweep runs.
//
// streamMerge is not self-synchronizing; the ControlPlane serializes
// calls under its own lock.
type streamMerge struct {
	cells  []anondyn.Cell
	per    int
	shards []Shard

	stats []*anondyn.BatchStats
	out   []anondyn.CellResult

	cursor int // index into shards of the provisional shard
	next   int // global run cursor: stats cover exactly [0, next)

	// snap holds value-copies of the cursor shard's cell range
	// [snapLo, snapLo+len(snap)), taken before its first provisional
	// fold; nil when the cursor shard has no folds yet.
	snap   []anondyn.BatchStats
	snapLo int

	committed []bool
	nCommit   int
	buffered  map[int][]transport.ShardRecord

	committedRuns int // Σ runs of committed shards (status reporting)
	emitted       int // cells whose rows have been built (and emitted)
	onRow         func(cell int, row anondyn.CellResult)
}

// newStreamMerge prepares the merge for one planned sweep. onRow, when
// non-nil, receives each cell's finished row the moment its last run
// commits (in cell order); it runs under the control plane's lock and
// must be fast.
func newStreamMerge(cells []anondyn.Cell, per int, shards []Shard, onRow func(int, anondyn.CellResult)) *streamMerge {
	m := &streamMerge{
		cells:     cells,
		per:       per,
		shards:    shards,
		stats:     make([]*anondyn.BatchStats, len(cells)),
		out:       make([]anondyn.CellResult, 0, len(cells)),
		committed: make([]bool, len(shards)),
		buffered:  make(map[int][]transport.ShardRecord),
		onRow:     onRow,
	}
	for i, c := range cells {
		m.stats[i] = &anondyn.BatchStats{Eps: c.Eps}
	}
	return m
}

// fold takes one record of shard idx as it arrives off the wire:
// straight into the stats for the cursor shard, buffered for a shard
// ahead of it. Per-shard record order is already validated by the
// transport layer (strict ascending run indices).
func (m *streamMerge) fold(idx int, rec transport.ShardRecord) error {
	if idx == m.cursor {
		return m.foldCursor(rec)
	}
	if idx < m.cursor || m.committed[idx] {
		return fmt.Errorf("shard: record for run %d of already-committed %v", rec.Run, m.shards[idx])
	}
	m.buffered[idx] = append(m.buffered[idx], rec)
	return nil
}

func (m *streamMerge) foldCursor(rec transport.ShardRecord) error {
	sh := m.shards[m.cursor]
	if rec.Run != m.next {
		return fmt.Errorf("shard: %v out of sequence: run %d, want %d", sh, rec.Run, m.next)
	}
	if m.snap == nil {
		m.snapLo = sh.CellLo
		m.snap = make([]anondyn.BatchStats, sh.CellHi-sh.CellLo)
		for i := range m.snap {
			m.snap[i] = *m.stats[sh.CellLo+i]
		}
	}
	if err := m.stats[rec.Run/m.per].ConsumeRecord(anondyn.RunRecord{
		Decided:   rec.Decided,
		Rounds:    rec.Rounds,
		Bytes:     rec.Bytes,
		OutRange:  math.Float64frombits(rec.OutRangeBits),
		Violation: rec.Violation,
	}); err != nil {
		return err
	}
	m.next++
	return nil
}

// commit records shard idx's done frame. Committing the cursor shard
// seals its provisional folds and advances the cursor through every
// already-committed buffered shard behind it, emitting finished cells'
// rows along the way; committing a shard ahead of the cursor just
// marks it (its buffer folds when the cursor arrives).
func (m *streamMerge) commit(idx int) error {
	sh := m.shards[idx]
	if m.committed[idx] {
		return fmt.Errorf("shard: %v committed twice", sh)
	}
	m.committed[idx] = true
	m.nCommit++
	m.committedRuns += sh.Runs()
	if idx != m.cursor {
		return nil
	}
	if m.next != sh.Hi {
		return fmt.Errorf("shard: %v committed after %d/%d records", sh, m.next-sh.Lo, sh.Runs())
	}
	return m.advance()
}

// advance seals the (committed, fully folded) cursor shard and walks
// forward: buffered records of each next shard fold in, committed ones
// seal in turn, and the walk stops at the first shard still streaming.
func (m *streamMerge) advance() error {
	for {
		m.emitThrough(m.shards[m.cursor].Hi)
		m.snap = nil
		m.cursor++
		if m.cursor == len(m.shards) {
			return nil
		}
		for _, rec := range m.buffered[m.cursor] {
			if err := m.foldCursor(rec); err != nil {
				return err
			}
		}
		delete(m.buffered, m.cursor)
		if !m.committed[m.cursor] {
			return nil
		}
		if sh := m.shards[m.cursor]; m.next != sh.Hi {
			return fmt.Errorf("shard: %v committed with %d/%d records buffered", sh, m.next-sh.Lo, sh.Runs())
		}
	}
}

// emitThrough builds (and emits) rows for every cell wholly covered by
// the committed prefix [0, hi).
func (m *streamMerge) emitThrough(hi int) {
	for m.emitted < len(m.cells) && (m.emitted+1)*m.per <= hi {
		c := m.cells[m.emitted]
		row := anondyn.CellResult{
			N: c.N, F: c.F, Eps: c.Eps,
			Algorithm:   c.Algorithm.String(),
			Adversary:   c.Adversary.Name,
			Variant:     c.Variant.Name,
			BatchReport: m.stats[m.emitted].Report(),
		}
		m.out = append(m.out, row)
		if m.onRow != nil {
			m.onRow(m.emitted, row)
		}
		m.emitted++
	}
}

// rollback discards shard idx's uncommitted records after a transport
// failure, so the shard can requeue and rerun without a trace: a
// buffered shard's records are dropped; the cursor shard's provisional
// folds are undone by restoring the snapshot.
func (m *streamMerge) rollback(idx int) {
	if idx != m.cursor {
		delete(m.buffered, idx)
		return
	}
	if m.snap != nil {
		for i := range m.snap {
			*m.stats[m.snapLo+i] = m.snap[i]
		}
		m.snap = nil
	}
	m.next = m.shards[m.cursor].Lo
}

// complete reports whether every shard has committed.
func (m *streamMerge) complete() bool { return m.nCommit == len(m.shards) }

// remaining counts shards not yet committed.
func (m *streamMerge) remaining() int { return len(m.shards) - m.nCommit }

// doneRuns counts the runs of committed shards (status reporting;
// provisional cursor folds don't count until their done frame).
func (m *streamMerge) doneRuns() int { return m.committedRuns }

// rows returns the final aggregate rows; every shard must be
// committed.
func (m *streamMerge) rows() ([]anondyn.CellResult, error) {
	if !m.complete() || m.cursor != len(m.shards) || m.emitted != len(m.cells) {
		return nil, fmt.Errorf("shard: merge incomplete: %d/%d shards committed, %d/%d cells emitted",
			m.nCommit, len(m.shards), m.emitted, len(m.cells))
	}
	return m.out, nil
}
