package shard

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"anondyn"
	"anondyn/examples/specs"
	"anondyn/internal/metrics"
	"anondyn/internal/spec"
)

func TestPlanCoversRunSpace(t *testing.T) {
	cases := []struct{ cells, per, want int }{
		{1, 1, 1}, {1, 1, 8}, {4, 5, 1}, {4, 5, 2}, {4, 5, 4},
		{4, 5, 7}, {4, 5, 11}, {4, 5, 100}, {3, 1, 5}, {12, 200, 4},
		{5, 7, 6},
	}
	for _, tc := range cases {
		shards := Plan(tc.cells, tc.per, tc.want)
		total := tc.cells * tc.per
		if len(shards) == 0 {
			t.Fatalf("Plan(%d,%d,%d): empty plan", tc.cells, tc.per, tc.want)
		}
		wantLen := tc.want
		if wantLen < 1 {
			wantLen = 1
		}
		if wantLen > total {
			wantLen = total
		}
		if len(shards) != wantLen {
			t.Errorf("Plan(%d,%d,%d): %d shards, want %d", tc.cells, tc.per, tc.want, len(shards), wantLen)
		}
		next := 0
		for i, s := range shards {
			if s.Index != i {
				t.Errorf("Plan(%d,%d,%d): shard %d has Index %d", tc.cells, tc.per, tc.want, i, s.Index)
			}
			if s.Lo != next {
				t.Errorf("Plan(%d,%d,%d): shard %d starts at %d, want %d (gap or overlap)",
					tc.cells, tc.per, tc.want, i, s.Lo, next)
			}
			if s.Runs() < 1 {
				t.Errorf("Plan(%d,%d,%d): empty %v", tc.cells, tc.per, tc.want, s)
			}
			// The (cell range, seed range) reading must agree with the
			// run range.
			if s.CellHi-s.CellLo > 1 && (s.SeedLo != 0 || s.SeedHi != tc.per) {
				t.Errorf("Plan(%d,%d,%d): multi-cell %v covers partial seeds", tc.cells, tc.per, tc.want, s)
			}
			if lo := s.CellLo*tc.per + s.SeedLo; lo != s.Lo {
				t.Errorf("Plan(%d,%d,%d): %v cell/seed lo inconsistent", tc.cells, tc.per, tc.want, s)
			}
			if hi := (s.CellHi-1)*tc.per + s.SeedHi; hi != s.Hi {
				t.Errorf("Plan(%d,%d,%d): %v cell/seed hi inconsistent", tc.cells, tc.per, tc.want, s)
			}
			next = s.Hi
		}
		if next != total {
			t.Errorf("Plan(%d,%d,%d): covers %d runs, want %d", tc.cells, tc.per, tc.want, next, total)
		}
	}
}

// parityCase spins up in-process workers, runs the committed spec
// through the coordinator, and compares against a local Grid.Run.
func parityCase(t *testing.T, seeds, nWorkers, nShards int, arm func([]*Worker)) *Result {
	t.Helper()
	data, err := specs.Read("er-crash-sweep.yaml")
	if err != nil {
		t.Fatal(err)
	}

	// Local reference: same spec, same seeds override, same fold.
	sw, err := spec.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sw.SeedsPerCell = seeds
	grid, err := sw.Grid()
	if err != nil {
		t.Fatal(err)
	}
	localRows, err := grid.Run(anondyn.BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]*Worker, nWorkers)
	addrs := make([]string, nWorkers)
	var wg sync.WaitGroup
	for i := range workers {
		w, err := NewWorker("127.0.0.1:0", WorkerOptions{Workers: 2, Log: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		addrs[i] = w.Addr()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Serve(); err != nil {
				t.Errorf("worker serve: %v", err)
			}
		}()
	}
	defer wg.Wait()
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	if arm != nil {
		arm(workers)
	}

	res, err := Run(data, Options{
		Workers:      addrs,
		Shards:       nShards,
		SeedsPerCell: seeds,
		IOTimeout:    10 * time.Second,
		RetryDelay:   20 * time.Millisecond,
		Log:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res.Rows, localRows) {
		t.Errorf("distributed rows differ from local rows:\ndist  %+v\nlocal %+v", res.Rows, localRows)
	}
	// The contract is byte-identical report rows, so compare the
	// serialized form too.
	distJSON, err := json.Marshal(res.Rows)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(localRows)
	if err != nil {
		t.Fatal(err)
	}
	if string(distJSON) != string(localJSON) {
		t.Errorf("serialized rows differ:\ndist  %s\nlocal %s", distJSON, localJSON)
	}
	total := 0
	for _, n := range res.RunsByWorker {
		total += n
	}
	if want := grid.Runs(); total != want {
		t.Errorf("runs across workers = %d, want %d", total, want)
	}
	return res
}

func TestDistributedParityTwoWorkers(t *testing.T) {
	res := parityCase(t, 6, 2, 4, nil)
	if res.Requeues != 0 {
		t.Errorf("unexpected requeues: %d", res.Requeues)
	}
	if len(res.Shards) != 4 {
		t.Errorf("planned %d shards, want 4", len(res.Shards))
	}
}

func TestDistributedParityManyShards(t *testing.T) {
	// More shards than cells forces single-cell seed-range shards.
	parityCase(t, 6, 2, 9, nil)
}

func TestDistributedParityUnderWorkerRestart(t *testing.T) {
	res := parityCase(t, 6, 2, 4, func(ws []*Worker) {
		// Sever whichever connection is serving worker 0's current
		// task after 2 records: the shard must requeue and rerun
		// without a trace in the merged rows.
		ws[0].failAfterRecords(2)
	})
	if res.Requeues < 1 {
		t.Errorf("requeues = %d, want ≥ 1 after induced worker drop", res.Requeues)
	}
}

// TestDropBeforeDoneRequeues pins the protocol's one genuinely
// ambiguous disconnect: the worker has shipped every record but the
// connection dies before the done frame arrives. The coordinator must
// treat the shard as incomplete and requeue it — never fold a
// done-less stream into the results — and parityCase's row comparison
// proves the rerun leaves no trace.
func TestDropBeforeDoneRequeues(t *testing.T) {
	res := parityCase(t, 6, 2, 4, func(ws []*Worker) {
		ws[0].failBeforeDone()
	})
	if res.Requeues < 1 {
		t.Errorf("requeues = %d, want ≥ 1 after drop between records and done", res.Requeues)
	}
}

// TestCoordinatorLiveTelemetry: with Metrics set, the coordinator folds
// worker-side telemetry frames into the collector while the sweep runs,
// and the final per-shard Runs cover the whole run space.
func TestCoordinatorLiveTelemetry(t *testing.T) {
	data, err := specs.Read("er-crash-sweep.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := spec.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	sw.SeedsPerCell = 6
	grid, err := sw.Grid()
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]*Worker, 2)
	addrs := make([]string, len(workers))
	var wg sync.WaitGroup
	for i := range workers {
		w, err := NewWorker("127.0.0.1:0", WorkerOptions{Workers: 2, Log: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		addrs[i] = w.Addr()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Serve(); err != nil {
				t.Errorf("worker serve: %v", err)
			}
		}()
	}
	defer wg.Wait()
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	coll := metrics.NewCollector()
	res, err := Run(data, Options{
		Workers:          addrs,
		Shards:           4,
		SeedsPerCell:     6,
		IOTimeout:        10 * time.Second,
		RetryDelay:       20 * time.Millisecond,
		Metrics:          coll,
		MetricsEveryRuns: 2,
		Log:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := coll.Snapshot()
	total := grid.Runs()
	if int(snap.Runs) != total {
		t.Errorf("collector runs = %d, want %d", snap.Runs, total)
	}
	if len(snap.Shards) != len(res.Shards) {
		t.Errorf("telemetry covers %d shards, want %d", len(snap.Shards), len(res.Shards))
	}
	var shardRuns uint64
	for _, st := range snap.Shards {
		if st.Runs == 0 {
			t.Errorf("shard %d reported no runs", st.Shard)
		}
		if st.Rounds == 0 {
			t.Errorf("shard %d reported no rounds", st.Shard)
		}
		shardRuns += st.Runs
	}
	if int(shardRuns) != total {
		t.Errorf("per-shard runs sum to %d, want %d", shardRuns, total)
	}
	if snap.RunRounds == 0 {
		t.Error("collector saw no aggregate rounds")
	}
}

func TestAllWorkersLostAborts(t *testing.T) {
	data, err := specs.Read("er-crash-sweep.yaml")
	if err != nil {
		t.Fatal(err)
	}
	// Grab two ports that are closed by the time the coordinator dials.
	w, err := NewWorker("127.0.0.1:0", WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := w.Addr()
	w.Close()
	_, err = Run(data, Options{
		Workers:      []string{addr},
		SeedsPerCell: 1,
		DialRetries:  1,
		RetryDelay:   10 * time.Millisecond,
		IOTimeout:    time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("err = %v, want all-workers-lost abort", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run([]byte("ns: [3]"), Options{}); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := Run([]byte("nonsense: ["), Options{Workers: []string{"127.0.0.1:1"}}); err == nil {
		t.Error("bad spec accepted")
	}
}
