package adversary

import (
	"math"
	"math/rand"
	"testing"

	"anondyn/internal/network"
)

// TestProbabilisticDenseStreamPinned pins the legacy er adversary's RNG
// stream against an independent reference implementation of the dense
// draw: one uniform per ordered pair in (u, v) row-major order, link on
// u ≠ v when the uniform falls below p. Committed specs and pinned
// seeds reproduce these exact graphs, so this stream is a compatibility
// contract — any change to Probabilistic.EdgesInto that alters it must
// fail here. (The sparse sampler is a deliberately separate stream; see
// SparseProbabilistic.)
func TestProbabilisticDenseStreamPinned(t *testing.T) {
	const n, p, rounds = 23, 0.3, 16
	for _, seed := range []int64{1, 7, 424242} {
		a := mustAdv(NewProbabilistic(p, seed))
		ref := rand.New(rand.NewSource(seed))
		view := SizeView(n)
		for round := 0; round < rounds; round++ {
			want := network.NewEdgeSet(n)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u != v && ref.Float64() < p {
						want.Add(u, v)
					}
				}
			}
			if got := a.Edges(round, view); !got.Equal(want) {
				t.Fatalf("seed %d round %d: legacy er stream diverged from the pinned dense draw", seed, round)
			}
		}
	}
}

// TestSparseProbabilisticDeterministicPerSeed: equal (p, seed) pairs
// must render identical traces — the er2 stream is a versioned
// reproducibility contract — and distinct seeds must not.
func TestSparseProbabilisticDeterministicPerSeed(t *testing.T) {
	const n, p, rounds = 40, 0.15, 10
	a := mustAdv(NewSparseProbabilistic(p, 99))
	b := mustAdv(NewSparseProbabilistic(p, 99))
	c := mustAdv(NewSparseProbabilistic(p, 100))
	view := SizeView(n)
	diverged := false
	for round := 0; round < rounds; round++ {
		ea, eb, ec := a.Edges(round, view), b.Edges(round, view), c.Edges(round, view)
		if !ea.Equal(eb) {
			t.Fatalf("round %d: same seed drew different graphs", round)
		}
		if !ea.Equal(ec) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 99 and 100 rendered identical 10-round traces")
	}
}

// TestSparseMatchesDenseDistribution: the geometric-skip sampler must
// draw the same distribution as the dense reference — every ordered
// pair an independent Bernoulli(p). Each pair's hit count over R rounds
// is Binomial(R, p); a fixed seed keeps the check deterministic, and a
// 6σ band (plus the same band on the aggregate count for both samplers)
// would catch any systematic skew — an off-by-one in the skip length
// shifts the effective p for every pair at once.
func TestSparseMatchesDenseDistribution(t *testing.T) {
	const n, p, rounds = 12, 0.3, 400
	pairSD := math.Sqrt(rounds * p * (1 - p))
	for name, a := range map[string]Adversary{
		"er2": mustAdv(NewSparseProbabilistic(p, 5)),
		"er":  mustAdv(NewProbabilistic(p, 5)), // calibrates the bound against the reference
	} {
		view := SizeView(n)
		counts := make([][]int, n)
		for i := range counts {
			counts[i] = make([]int, n)
		}
		total := 0
		for round := 0; round < rounds; round++ {
			e := a.Edges(round, view)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u == v {
						if e.Has(u, v) {
							t.Fatalf("%s: self-loop (%d,%d) in round %d", name, u, v, round)
						}
						continue
					}
					if e.Has(u, v) {
						counts[u][v]++
						total++
					}
				}
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				if dev := math.Abs(float64(counts[u][v]) - rounds*p); dev > 6*pairSD {
					t.Errorf("%s: pair (%d,%d) hit %d/%d rounds, %0.1fσ from %g",
						name, u, v, counts[u][v], rounds, dev/pairSD, rounds*p)
				}
			}
		}
		trialsTotal := float64(rounds * n * (n - 1))
		totalSD := math.Sqrt(trialsTotal * p * (1 - p))
		if dev := math.Abs(float64(total) - trialsTotal*p); dev > 6*totalSD {
			t.Errorf("%s: %d edges total, %0.1fσ from %g", name, total, dev/totalSD, trialsTotal*p)
		}
	}
}

// TestSparseWordBoundarySizes drives the sampler at sizes straddling the
// 64-bit word boundary of the edge-set bitmaps: the flattened-index
// arithmetic and the Edges/EdgesInto twin streams must stay exact in
// the one-word, word+1 and multi-word regimes.
func TestSparseWordBoundarySizes(t *testing.T) {
	const p, rounds = 0.1, 12
	for _, n := range []int{64, 65, 128} {
		alloc := mustAdv(NewSparseProbabilistic(p, 3))
		inPlace := mustAdv(NewSparseProbabilistic(p, 3))
		view := SizeView(n)
		dst := network.Complete(n) // must be overwritten, not unioned
		sawEdge := false
		for round := 0; round < rounds; round++ {
			want := alloc.Edges(round, view)
			inPlace.EdgesInto(round, view, dst)
			if !dst.Equal(want) {
				t.Fatalf("n=%d round %d: EdgesInto diverged from Edges", n, round)
			}
			for _, e := range want.Edges() {
				sawEdge = true
				if e[0] == e[1] || e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
					t.Fatalf("n=%d round %d: bad edge %v", n, round, e)
				}
			}
		}
		if !sawEdge {
			t.Errorf("n=%d: no edges in %d rounds at p=%g", n, rounds, p)
		}
	}
}

// TestSparseProbabilisticExtremes: p=0 draws the empty graph, p=1 the
// complete graph, without consuming unbounded RNG.
func TestSparseProbabilisticExtremes(t *testing.T) {
	const n = 33
	view := SizeView(n)
	if e := mustAdv(NewSparseProbabilistic(0, 8)).Edges(0, view); len(e.Edges()) != 0 {
		t.Errorf("p=0 drew %d edges", len(e.Edges()))
	}
	if e := mustAdv(NewSparseProbabilistic(1, 8)).Edges(0, view); !e.Equal(network.Complete(n)) {
		t.Error("p=1 did not draw the complete graph")
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewSparseProbabilistic(bad, 1); err == nil {
			t.Errorf("p=%v accepted", bad)
		}
	}
}

// TestErNamePrecision: %g must keep sparse probabilities
// distinguishable — %.2f collapsed p=8/4097 and p=8/1025 onto the same
// "er(p=0.00)", colliding report columns and spec round-trips.
func TestErNamePrecision(t *testing.T) {
	n1 := mustAdv(NewProbabilistic(8.0/4097, 1)).Name()
	n2 := mustAdv(NewProbabilistic(8.0/1025, 1)).Name()
	if n1 == n2 {
		t.Errorf("er names collide for distinct sparse p: %q", n1)
	}
	s1 := mustAdv(NewSparseProbabilistic(8.0/4097, 1)).Name()
	s2 := mustAdv(NewSparseProbabilistic(8.0/1025, 1)).Name()
	if s1 == s2 {
		t.Errorf("er2 names collide for distinct sparse p: %q", s1)
	}
	if got, want := mustAdv(NewProbabilistic(0.25, 1)).Name(), "er(p=0.25)"; got != want {
		t.Errorf("er name %q, want %q", got, want)
	}
	if got, want := mustAdv(NewSparseProbabilistic(0.25, 1)).Name(), "er2(p=0.25)"; got != want {
		t.Errorf("er2 name %q, want %q", got, want)
	}
}

// TestObliviousMarkers pins which adversaries declare state-independence:
// every view-ignoring adversary must expose the seam (it is what lets
// the engines skip snapshots entirely), and the adaptive ones must not.
func TestObliviousMarkers(t *testing.T) {
	oblivious := map[string]Adversary{
		"complete":     NewComplete(),
		"static":       NewStatic("ring", network.Ring(9)),
		"periodic":     NewFig1(),
		"rotating":     mustAdv(NewRotating(2)),
		"randomDegree": mustAdv(NewRandomDegree(3, 2, 0.1, 1)),
		"er":           mustAdv(NewProbabilistic(0.4, 1)),
		"er2":          mustAdv(NewSparseProbabilistic(0.4, 1)),
		"split":        mustAdv(NewHalves(9)),
		"isolate":      mustAdv(NewIsolate(0)),
		"composeObliv": mustAdv(NewCompose(NewComplete(), mustAdv(NewRotating(2)))),
	}
	for name, a := range oblivious {
		if !IsOblivious(a) {
			t.Errorf("%s is not marked oblivious", name)
		}
	}
	adaptive := map[string]Adversary{
		"clustered":    mustAdv(NewClustered(3)),
		"starve":       mustAdv(NewStarve(2)),
		"chaseMin":     NewChaseMin(),
		"composeMixed": mustAdv(NewCompose(NewComplete(), mustAdv(NewStarve(2)))),
		"composeAdapt": mustAdv(NewCompose(NewChaseMin())),
	}
	for name, a := range adaptive {
		if IsOblivious(a) {
			t.Errorf("%s claims to be oblivious but reads the view", name)
		}
	}
}
