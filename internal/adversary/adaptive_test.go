package adversary

import (
	"testing"

	"anondyn/internal/core"
	"anondyn/internal/network"
)

// valueView is a test View with explicit per-node values.
type valueView []float64

func (v valueView) N() int { return len(v) }
func (v valueView) Snapshot(i int) core.Snapshot {
	return core.Snapshot{Value: v[i]}
}

func TestClusteredSplitsByValue(t *testing.T) {
	a, err := NewClustered(4)
	if err != nil {
		t.Fatal(err)
	}
	// Values interleave: low {0,2,4}, high {1,3,5} — clusters must be
	// value-sorted, not ID-sorted.
	view := valueView{0.1, 0.9, 0.2, 0.8, 0.15, 0.95}
	e := a.Edges(0, view) // round 0: (0+1)%4 != 0 → clustered
	lows := []int{0, 2, 4}
	highs := []int{1, 3, 5}
	for _, u := range lows {
		for _, v := range highs {
			if e.Has(u, v) || e.Has(v, u) {
				t.Errorf("cross-cluster link %d↔%d on a non-complete round", u, v)
			}
		}
	}
	for _, u := range lows {
		for _, v := range lows {
			if u != v && !e.Has(u, v) {
				t.Errorf("low cluster missing %d→%d", u, v)
			}
		}
	}
	// Round 3 ((3+1)%4==0) must be complete.
	e3 := a.Edges(3, view)
	if e3.Len() != 6*5 {
		t.Errorf("round 3 has %d edges, want complete 30", e3.Len())
	}
}

func TestClusteredPeriodOne(t *testing.T) {
	a, err := NewClustered(1)
	if err != nil {
		t.Fatal(err)
	}
	e := a.Edges(0, valueView{0.1, 0.9, 0.5})
	if e.Len() != 6 {
		t.Errorf("period 1 should be complete every round, got %d edges", e.Len())
	}
	if _, err := NewClustered(0); err == nil {
		t.Error("period 0 accepted")
	}
}

func TestStarveDegreeAndAffinity(t *testing.T) {
	a, err := NewStarve(2)
	if err != nil {
		t.Fatal(err)
	}
	view := valueView{0.0, 0.1, 0.2, 0.9, 1.0}
	e := a.Edges(0, view)
	for v := 0; v < 5; v++ {
		if got := e.InDegree(v); got != 2 {
			t.Errorf("InDegree(%d) = %d, want 2", v, got)
		}
	}
	// Node 0 (value 0.0) must hear its two closest peers 1 and 2, not 3
	// or 4.
	if !e.Has(1, 0) || !e.Has(2, 0) {
		t.Error("node 0 not fed by closest-valued peers")
	}
	if e.Has(3, 0) || e.Has(4, 0) {
		t.Error("node 0 fed by far-valued peers")
	}
	if _, err := NewStarve(0); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestStarveClampsDegree(t *testing.T) {
	a, _ := NewStarve(9)
	e := a.Edges(0, valueView{0.1, 0.2, 0.3})
	for v := 0; v < 3; v++ {
		if got := e.InDegree(v); got != 2 {
			t.Errorf("InDegree(%d) = %d, want clamped 2", v, got)
		}
	}
}

func TestCompose(t *testing.T) {
	ring := NewStatic("ring", network.Ring(4))
	empty := NewStatic("empty", network.NewEdgeSet(4))
	c, err := NewCompose(ring, empty)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Edges(0, SizeView(4)).Len(); got != 4 {
		t.Errorf("round 0: %d edges, want ring's 4", got)
	}
	if got := c.Edges(1, SizeView(4)).Len(); got != 0 {
		t.Errorf("round 1: %d edges, want 0", got)
	}
	if got := c.Edges(2, SizeView(4)).Len(); got != 4 {
		t.Errorf("round 2: %d edges, want 4 (cycled)", got)
	}
	if _, err := NewCompose(); err == nil {
		t.Error("empty composition accepted")
	}
	if name := c.Name(); name == "" {
		t.Error("empty composite name")
	}
}
