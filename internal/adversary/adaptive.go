package adversary

import (
	"fmt"
	"sort"

	"anondyn/internal/network"
)

// Clustered is an adaptive starving adversary: in every round it reads
// the nodes' current state values, groups the value-sorted lower half and
// upper half into two internally-complete clusters, and only every
// period-th round does it deliver any cross-cluster links (a complete
// round). Keeping low values with low values means intra-cluster
// averaging barely shrinks the global range, so essentially all progress
// toward ε-agreement happens on the sparse complete rounds — the
// worst-case shape rounds ≈ T · p_end of §VII (experiment E4).
//
// The trace satisfies (period, n−1)-dynaDegree (every window of `period`
// rounds contains a complete round) while windows shorter than the period
// can have degree as low as ⌊n/2⌋−1.
type Clustered struct {
	period int
}

// NewClustered builds the adversary; period ≥ 1 is the spacing of
// complete rounds (period = 1 degenerates to the complete adversary).
func NewClustered(period int) (*Clustered, error) {
	if period < 1 {
		return nil, fmt.Errorf("adversary: cluster period must be ≥ 1, got %d", period)
	}
	return &Clustered{period: period}, nil
}

// Name implements Adversary.
func (c *Clustered) Name() string { return fmt.Sprintf("clustered(T=%d)", c.period) }

// Period returns the spacing of complete rounds.
func (c *Clustered) Period() int { return c.period }

// Edges implements Adversary.
func (c *Clustered) Edges(t int, view View) *network.EdgeSet {
	n := view.N()
	if (t+1)%c.period == 0 {
		return network.Complete(n)
	}
	// Sort nodes by current value; crashed nodes sort with their last
	// value, which is harmless (they send nothing anyway).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = view.Snapshot(i).Value
	}
	sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
	half := (n + 1) / 2
	return network.GroupComplete(n, order[:half], order[half:])
}

// Starve is an adaptive adversary targeting DAC's convergence: it always
// lets each fault-free node hear from exactly D distinct neighbors per
// round, choosing as senders the D nodes whose values are *closest* to
// the receiver's own value. Quorums fill, phases advance — but each
// average moves the state as little as the degree bound permits. Used to
// probe how tight the rate-1/2 guarantee is (experiment E1's adversary
// axis).
type Starve struct {
	d int
}

// NewStarve builds the adversary with per-round in-degree d ≥ 1.
func NewStarve(d int) (*Starve, error) {
	if d < 1 {
		return nil, fmt.Errorf("adversary: starve degree must be ≥ 1, got %d", d)
	}
	return &Starve{d: d}, nil
}

// Name implements Adversary.
func (s *Starve) Name() string { return fmt.Sprintf("starve(d=%d)", s.d) }

// Edges implements Adversary.
func (s *Starve) Edges(t int, view View) *network.EdgeSet {
	n := view.N()
	d := s.d
	if d > n-1 {
		d = n - 1
	}
	e := network.NewEdgeSet(n)
	cand := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		vv := view.Snapshot(v).Value
		cand = cand[:0]
		for u := 0; u < n; u++ {
			if u != v {
				cand = append(cand, u)
			}
		}
		u := cand // closest-first by |value_u − value_v|, ties by ID
		sort.SliceStable(u, func(a, b int) bool {
			da := abs(view.Snapshot(u[a]).Value - vv)
			db := abs(view.Snapshot(u[b]).Value - vv)
			if da != db {
				return da < db
			}
			return u[a] < u[b]
		})
		for i := 0; i < d; i++ {
			e.Add(u[i], v)
		}
	}
	return e
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Compose interleaves a fixed cycle of sub-adversaries round-robin:
// round t is served by subs[t mod len(subs)].
type Compose struct {
	subs []Adversary
}

// NewCompose builds the round-robin composition of one or more
// adversaries.
func NewCompose(subs ...Adversary) (*Compose, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("adversary: compose needs at least one sub-adversary")
	}
	return &Compose{subs: subs}, nil
}

// Name implements Adversary.
func (c *Compose) Name() string {
	name := "compose("
	for i, s := range c.subs {
		if i > 0 {
			name += ","
		}
		name += s.Name()
	}
	return name + ")"
}

// Edges implements Adversary.
func (c *Compose) Edges(t int, view View) *network.EdgeSet {
	return c.subs[t%len(c.subs)].Edges(t, view)
}
