package adversary

import (
	"fmt"
	"sort"

	"anondyn/internal/network"
)

// Clustered is an adaptive starving adversary: in every round it reads
// the nodes' current state values, groups the value-sorted lower half and
// upper half into two internally-complete clusters, and only every
// period-th round does it deliver any cross-cluster links (a complete
// round). Keeping low values with low values means intra-cluster
// averaging barely shrinks the global range, so essentially all progress
// toward ε-agreement happens on the sparse complete rounds — the
// worst-case shape rounds ≈ T · p_end of §VII (experiment E4).
//
// The trace satisfies (period, n−1)-dynaDegree (every window of `period`
// rounds contains a complete round) while windows shorter than the period
// can have degree as low as ⌊n/2⌋−1.
type Clustered struct {
	period int

	// scratch reused across rounds by EdgesInto
	sorter valueSorter
	groups [2][]int
}

// valueSorter stably orders node IDs by their snapshot value. Held by
// pointer inside an adversary so sort.Stable sees a persistent
// interface value and the per-round sort allocates nothing.
type valueSorter struct {
	order []int
	vals  []float64
}

func (s *valueSorter) Len() int      { return len(s.order) }
func (s *valueSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }
func (s *valueSorter) Less(a, b int) bool {
	return s.vals[s.order[a]] < s.vals[s.order[b]]
}

// resize readies the scratch for n nodes.
func (s *valueSorter) resize(n int) {
	if cap(s.order) < n {
		s.order = make([]int, n)
		s.vals = make([]float64, n)
	}
	s.order = s.order[:n]
	s.vals = s.vals[:n]
}

// NewClustered builds the adversary; period ≥ 1 is the spacing of
// complete rounds (period = 1 degenerates to the complete adversary).
func NewClustered(period int) (*Clustered, error) {
	if period < 1 {
		return nil, fmt.Errorf("adversary: cluster period must be ≥ 1, got %d", period)
	}
	return &Clustered{period: period}, nil
}

// Name implements Adversary.
func (c *Clustered) Name() string { return fmt.Sprintf("clustered(T=%d)", c.period) }

// Period returns the spacing of complete rounds.
func (c *Clustered) Period() int { return c.period }

// Edges implements Adversary.
func (c *Clustered) Edges(t int, view View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	c.EdgesInto(t, view, e)
	return e
}

// EdgesInto implements InPlace.
func (c *Clustered) EdgesInto(t int, view View, dst *network.EdgeSet) {
	n := view.N()
	if (t+1)%c.period == 0 {
		dst.FillComplete()
		return
	}
	// Sort nodes by current value; crashed nodes sort with their last
	// value, which is harmless (they send nothing anyway).
	c.sorter.resize(n)
	for i := 0; i < n; i++ {
		c.sorter.order[i] = i
		c.sorter.vals[i] = view.Snapshot(i).Value
	}
	sort.Stable(&c.sorter)
	half := (n + 1) / 2
	c.groups[0], c.groups[1] = c.sorter.order[:half], c.sorter.order[half:]
	network.GroupCompleteInto(dst, c.groups[:]...)
}

// Starve is an adaptive adversary targeting DAC's convergence: it always
// lets each fault-free node hear from exactly D distinct neighbors per
// round, choosing as senders the D nodes whose values are *closest* to
// the receiver's own value. Quorums fill, phases advance — but each
// average moves the state as little as the degree bound permits. Used to
// probe how tight the rate-1/2 guarantee is (experiment E1's adversary
// axis).
type Starve struct {
	d int

	// scratch reused across rounds by EdgesInto
	sorter starveSorter
}

// starveSorter stably orders candidate senders by distance to the
// receiver's value (ties by node ID). dist is indexed by node ID.
type starveSorter struct {
	cand []int
	dist []float64
}

func (s *starveSorter) Len() int      { return len(s.cand) }
func (s *starveSorter) Swap(a, b int) { s.cand[a], s.cand[b] = s.cand[b], s.cand[a] }
func (s *starveSorter) Less(a, b int) bool {
	da, db := s.dist[s.cand[a]], s.dist[s.cand[b]]
	if da != db {
		return da < db
	}
	return s.cand[a] < s.cand[b]
}

// NewStarve builds the adversary with per-round in-degree d ≥ 1.
func NewStarve(d int) (*Starve, error) {
	if d < 1 {
		return nil, fmt.Errorf("adversary: starve degree must be ≥ 1, got %d", d)
	}
	return &Starve{d: d}, nil
}

// Name implements Adversary.
func (s *Starve) Name() string { return fmt.Sprintf("starve(d=%d)", s.d) }

// Edges implements Adversary.
func (s *Starve) Edges(t int, view View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	s.EdgesInto(t, view, e)
	return e
}

// EdgesInto implements InPlace.
func (s *Starve) EdgesInto(t int, view View, dst *network.EdgeSet) {
	n := view.N()
	d := s.d
	if d > n-1 {
		d = n - 1
	}
	dst.Reset()
	if cap(s.sorter.cand) < n {
		s.sorter.cand = make([]int, 0, n)
		s.sorter.dist = make([]float64, n)
	}
	s.sorter.dist = s.sorter.dist[:n]
	for v := 0; v < n; v++ {
		vv := view.Snapshot(v).Value
		s.sorter.cand = s.sorter.cand[:0]
		for u := 0; u < n; u++ {
			if u != v {
				s.sorter.cand = append(s.sorter.cand, u)
				s.sorter.dist[u] = abs(view.Snapshot(u).Value - vv)
			}
		}
		// closest-first by |value_u − value_v|, ties by ID
		sort.Stable(&s.sorter)
		for i := 0; i < d; i++ {
			dst.Add(s.sorter.cand[i], v)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Compose interleaves a fixed cycle of sub-adversaries round-robin:
// round t is served by subs[t mod len(subs)].
type Compose struct {
	subs []Adversary
}

// NewCompose builds the round-robin composition of one or more
// adversaries.
func NewCompose(subs ...Adversary) (*Compose, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("adversary: compose needs at least one sub-adversary")
	}
	return &Compose{subs: subs}, nil
}

// Name implements Adversary.
func (c *Compose) Name() string {
	name := "compose("
	for i, s := range c.subs {
		if i > 0 {
			name += ","
		}
		name += s.Name()
	}
	return name + ")"
}

// Edges implements Adversary.
func (c *Compose) Edges(t int, view View) *network.EdgeSet {
	return c.subs[t%len(c.subs)].Edges(t, view)
}

// EdgesInto implements InPlace, delegating to the round's sub-adversary
// (copying its Edges result when it lacks the fast path).
func (c *Compose) EdgesInto(t int, view View, dst *network.EdgeSet) {
	sub := c.subs[t%len(c.subs)]
	if ip, ok := sub.(InPlace); ok {
		ip.EdgesInto(t, view, dst)
		return
	}
	dst.CopyFrom(sub.Edges(t, view))
}

// Reseed implements Reseeder, forwarding the seed to every randomized
// sub-adversary.
func (c *Compose) Reseed(seed int64) {
	for _, sub := range c.subs {
		if r, ok := sub.(Reseeder); ok {
			r.Reseed(seed)
		}
	}
}

// Oblivious implements the state-independence seam: a composition is
// oblivious exactly when every sub-adversary is — one adaptive sub makes
// the whole cycle consult snapshots.
func (c *Compose) Oblivious() bool {
	for _, sub := range c.subs {
		if !IsOblivious(sub) {
			return false
		}
	}
	return true
}
