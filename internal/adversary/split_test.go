package adversary

import (
	"testing"

	"anondyn/internal/network"
)

func TestNewHalves(t *testing.T) {
	for _, n := range []int{4, 5, 7, 10} {
		a, err := NewHalves(n)
		if err != nil {
			t.Fatal(err)
		}
		e := a.Edges(0, SizeView(n))
		half := (n + 1) / 2
		// No cross links.
		for u := 0; u < half; u++ {
			for v := half; v < n; v++ {
				if e.Has(u, v) || e.Has(v, u) {
					t.Errorf("n=%d: cross link %d↔%d", n, u, v)
				}
			}
		}
		// Theorem 9's degree: the smaller half has ⌊n/2⌋ members, so its
		// nodes have exactly ⌊n/2⌋−1 in-neighbors — the worst case.
		tr := Render(a, n, 3)
		got := network.MaxDynaDegree(tr, allNodes(n), 1)
		if want := n/2 - 1; got != want {
			t.Errorf("n=%d: degree = %d, want %d", n, got, want)
		}
		// The whole point: degree < ⌊n/2⌋ (the Theorem 9 threshold).
		if got >= n/2 {
			t.Errorf("n=%d: split degree %d reaches the ⌊n/2⌋ threshold", n, got)
		}
	}
	if _, err := NewHalves(1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestNewSplitGroupsValidation(t *testing.T) {
	if _, err := NewSplitGroups(4, []int{0, 1}, []int{1, 2}); err == nil {
		t.Error("overlapping groups accepted")
	}
	if _, err := NewSplitGroups(4, []int{0, 5}); err == nil {
		t.Error("out-of-range node accepted")
	}
	a, err := NewSplitGroups(5, []int{0, 1}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	e := a.Edges(0, SizeView(5))
	if e.InDegree(4) != 0 || e.OutDegree(4) != 0 {
		t.Error("ungrouped node should be isolated")
	}
}

func TestByzSplitLayout(t *testing.T) {
	// n=15, f=3: groupSize = ⌊24/2⌋ = 12, overlap = 9 = 3f.
	l, err := NewByzSplitLayout(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.GroupA) != 12 || len(l.GroupB) != 12 {
		t.Errorf("group sizes %d/%d, want 12/12", len(l.GroupA), len(l.GroupB))
	}
	if len(l.Byzantine) != 3 {
		t.Errorf("byzantine count = %d, want 3", len(l.Byzantine))
	}
	// Byzantine nodes are the middle f: ⌊(15−3)/2⌋=6 … ⌊(15+3)/2⌋−1=8.
	for i, want := range []int{6, 7, 8} {
		if l.Byzantine[i] != want {
			t.Errorf("byzantine[%d] = %d, want %d", i, l.Byzantine[i], want)
		}
	}
	// Inputs: 0 for i<6, 1 for i≥9; Byzantine in between irrelevant.
	if l.Input(5) != 0 || l.Input(9) != 1 {
		t.Error("inputs wrong")
	}
	// Receivers: A-receivers are the input-0 fault-free nodes 0..5,
	// B-receivers 9..14.
	if len(l.AReceivers) != 6 || l.AReceivers[5] != 5 {
		t.Errorf("AReceivers = %v", l.AReceivers)
	}
	if len(l.BReceivers) != 6 || l.BReceivers[0] != 9 {
		t.Errorf("BReceivers = %v", l.BReceivers)
	}
	// Every fault-free node's per-round degree is exactly one below the
	// Theorem 10 threshold ⌊(n+3f)/2⌋ = 12.
	if l.MinFaultFreeDegree() != 11 {
		t.Errorf("degree = %d, want 11", l.MinFaultFreeDegree())
	}
	adv := l.Adversary()
	e := adv.Edges(0, SizeView(15))
	var ff []int
	for i := 0; i < 15; i++ {
		if !l.IsByzantine(i) {
			ff = append(ff, i)
		}
	}
	for _, v := range ff {
		if got := e.InDegree(v); got != 11 {
			t.Errorf("node %d in-degree = %d, want 11", v, got)
		}
	}
	// A-receivers hear only group A (ids < 12), B-receivers only ≥ 3.
	for _, v := range l.AReceivers {
		for _, u := range e.InNeighbors(v) {
			if u >= 12 {
				t.Errorf("A-receiver %d hears non-A node %d", v, u)
			}
		}
	}
	for _, v := range l.BReceivers {
		for _, u := range e.InNeighbors(v) {
			if u < 3 {
				t.Errorf("B-receiver %d hears non-B node %d", v, u)
			}
		}
	}
}

func TestByzSplitLayoutValidation(t *testing.T) {
	if _, err := NewByzSplitLayout(10, 0); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := NewByzSplitLayout(3, 1); err == nil {
		t.Error("n < 3f+1 accepted")
	}
	if _, err := NewByzSplitLayout(4, 1); err != nil {
		t.Errorf("n=3f+1 rejected: %v", err)
	}
}
