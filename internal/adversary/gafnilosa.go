package adversary

import (
	"fmt"

	"anondyn/internal/network"
)

// The Corollary 1 regime: in every round each node may miss ONE of the
// messages sent to it (Gafni & Losa, "Time is not a healer, but it sure
// makes hindsight 20:20" [18]). Both adversaries below satisfy
// (1, n−2)-dynaDegree — each receiver keeps at least n−2 distinct
// incoming links per round — yet suffice to make deterministic binary
// EXACT consensus impossible.

// Isolate is the complete graph minus one chosen node's outgoing links.
// Every receiver misses exactly one message per round (the victim's), so
// the victim's input value never propagates: a minimum-flooding
// algorithm leaves the victim deciding its own input while everyone else
// decides theirs — the executable Corollary 1 counterexample.
type Isolate struct {
	victim int
}

// NewIsolate builds the adversary suppressing one node's outgoing links.
func NewIsolate(victim int) (*Isolate, error) {
	if victim < 0 {
		return nil, fmt.Errorf("adversary: invalid victim %d", victim)
	}
	return &Isolate{victim: victim}, nil
}

// Name implements Adversary.
func (a *Isolate) Name() string { return fmt.Sprintf("isolate(%d)", a.victim) }

// Edges implements Adversary.
func (a *Isolate) Edges(t int, view View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	a.EdgesInto(t, view, e)
	return e
}

// EdgesInto implements InPlace.
func (a *Isolate) EdgesInto(t int, view View, dst *network.EdgeSet) {
	n := view.N()
	dst.FillComplete()
	if a.victim < n {
		for v := 0; v < n; v++ {
			dst.Remove(a.victim, v)
		}
	}
}

// Victim returns the suppressed node.
func (a *Isolate) Victim() int { return a.victim }

// Oblivious implements the state-independence seam.
func (a *Isolate) Oblivious() bool { return true }

// ChaseMin is the adaptive variant: each round it inspects the current
// state values and suppresses, for every receiver, the incoming link
// from one node currently holding the minimum value. Against flooding
// algorithms this pins the minimum to wherever it started even as the
// holder set would otherwise grow; against DAC it is just another
// (1, n−2) adversary the algorithm must (and does) survive.
type ChaseMin struct{}

// NewChaseMin builds the adaptive minimum-chasing adversary.
func NewChaseMin() ChaseMin { return ChaseMin{} }

// Name implements Adversary.
func (ChaseMin) Name() string { return "chaseMin" }

// Edges implements Adversary.
func (a ChaseMin) Edges(t int, view View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	a.EdgesInto(t, view, e)
	return e
}

// EdgesInto implements InPlace.
func (ChaseMin) EdgesInto(t int, view View, dst *network.EdgeSet) {
	n := view.N()
	dst.FillComplete()
	// Find the minimum holder with the smallest ID.
	minID, minVal := 0, view.Snapshot(0).Value
	for i := 1; i < n; i++ {
		if v := view.Snapshot(i).Value; v < minVal {
			minID, minVal = i, v
		}
	}
	for v := 0; v < n; v++ {
		dst.Remove(minID, v)
	}
}
