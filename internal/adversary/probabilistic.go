package adversary

import (
	"fmt"
	"math/rand"

	"anondyn/internal/network"
)

// Probabilistic is the §VII open-problem adversary: E(t) is an
// Erdős–Rényi directed graph where each of the n(n−1) links is present
// independently with probability p, freshly drawn every round. It makes
// no dynaDegree guarantee at any (T, D) — only a high-probability one —
// which is exactly why the paper asks what the optimal EXPECTED round
// complexity is (experiment E10 measures it for DAC).
type Probabilistic struct {
	p   float64
	rng *rand.Rand
}

// NewProbabilistic builds the adversary; p ∈ [0, 1] is the per-link
// per-round presence probability.
func NewProbabilistic(p float64, seed int64) (*Probabilistic, error) {
	if !(p >= 0 && p <= 1) { // rejects NaN too
		return nil, fmt.Errorf("adversary: link probability %g outside [0,1]", p)
	}
	return &Probabilistic{p: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name implements Adversary. %g keeps sparse probabilities
// distinguishable in reports and spec round-trips (%.2f collapsed
// p=8/4097 and p=8/1025 onto the same "er(p=0.00)").
func (a *Probabilistic) Name() string { return fmt.Sprintf("er(p=%g)", a.p) }

// Edges implements Adversary. The RNG stream advances with every call;
// replaying requires a fresh instance with the same seed, or a Reseed.
func (a *Probabilistic) Edges(t int, view View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	a.EdgesInto(t, view, e)
	return e
}

// EdgesInto implements InPlace; it consumes the RNG stream exactly as
// Edges does, so both paths draw identical graphs from the same seed.
//
// The dense one-uniform-per-pair draw below is a compatibility
// contract, not an oversight: committed specs and pinned seeds
// reproduce these exact graphs, so this stream must stay byte-stable
// (TestProbabilisticDenseStreamPinned asserts it against an
// independent reference). The sparse-native sampler lives in
// SparseProbabilistic (`er2:<p>`) as an explicitly versioned stream.
func (a *Probabilistic) EdgesInto(t int, view View, dst *network.EdgeSet) {
	n := view.N()
	dst.Reset()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && a.rng.Float64() < a.p {
				dst.Add(u, v)
			}
		}
	}
}

// Reseed implements Reseeder: the next Edges call behaves exactly like
// the first call of a fresh instance built with this seed.
func (a *Probabilistic) Reseed(seed int64) {
	a.rng = rand.New(rand.NewSource(seed))
}

// Oblivious implements the state-independence seam: E(t) never reads
// node snapshots.
func (a *Probabilistic) Oblivious() bool { return true }
