package adversary

import (
	"testing"

	"anondyn/internal/network"
)

func TestIsolateDegree(t *testing.T) {
	a, err := NewIsolate(2)
	if err != nil {
		t.Fatal(err)
	}
	n := 6
	e := a.Edges(0, SizeView(n))
	for v := 0; v < n; v++ {
		want := n - 2 // complete minus the victim's link (minus self)
		if v == 2 {
			want = n - 1 // the victim still hears everyone
		}
		if got := e.InDegree(v); got != want {
			t.Errorf("InDegree(%d) = %d, want %d", v, got, want)
		}
		if v != 2 && e.Has(2, v) {
			t.Errorf("victim's link 2→%d not suppressed", v)
		}
	}
	// The Corollary 1 regime: (1, n−2)-dynaDegree holds.
	tr := Render(a, n, 5)
	if !network.SatisfiesDynaDegree(tr, allNodes(n), 1, n-2) {
		t.Error("isolate must satisfy (1, n−2)-dynaDegree")
	}
	if network.SatisfiesDynaDegree(tr, allNodes(n), 1, n-1) {
		t.Error("isolate should not satisfy (1, n−1)")
	}
	if a.Victim() != 2 {
		t.Errorf("Victim = %d", a.Victim())
	}
	if _, err := NewIsolate(-1); err == nil {
		t.Error("negative victim accepted")
	}
}

func TestIsolateVictimBeyondN(t *testing.T) {
	a, err := NewIsolate(10)
	if err != nil {
		t.Fatal(err)
	}
	// Victim outside the node range: nothing to suppress.
	e := a.Edges(0, SizeView(4))
	if e.Len() != 12 {
		t.Errorf("edges = %d, want complete 12", e.Len())
	}
}

func TestChaseMinFollowsMinimum(t *testing.T) {
	a := NewChaseMin()
	view := valueView{0.5, 0.2, 0.9, 0.2}
	e := a.Edges(0, view)
	// Node 1 is the smallest-ID minimum holder: its out-links must be
	// gone, everyone else's intact.
	for v := 0; v < 4; v++ {
		if v != 1 && e.Has(1, v) {
			t.Errorf("min holder's link 1→%d survived", v)
		}
	}
	if !e.Has(3, 0) || !e.Has(2, 1) {
		t.Error("non-minimum links suppressed")
	}
	// If the minimum moves, the suppression follows.
	view2 := valueView{0.1, 0.2, 0.9, 0.2}
	e2 := a.Edges(1, view2)
	if e2.Has(0, 1) {
		t.Error("new min holder's links not suppressed")
	}
	if !e2.Has(1, 2) {
		t.Error("old holder still suppressed")
	}
}

func TestProbabilisticExtremes(t *testing.T) {
	n := 6
	p0, err := NewProbabilistic(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p0.Edges(0, SizeView(n)).Len(); got != 0 {
		t.Errorf("p=0 produced %d edges", got)
	}
	p1, err := NewProbabilistic(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p1.Edges(0, SizeView(n)).Len(); got != n*(n-1) {
		t.Errorf("p=1 produced %d edges, want %d", got, n*(n-1))
	}
	if _, err := NewProbabilistic(1.5, 1); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := NewProbabilistic(-0.1, 1); err == nil {
		t.Error("p<0 accepted")
	}
}

func TestProbabilisticDensityAndDeterminism(t *testing.T) {
	n, rounds, p := 10, 200, 0.3
	a1, _ := NewProbabilistic(p, 77)
	a2, _ := NewProbabilistic(p, 77)
	total := 0
	for r := 0; r < rounds; r++ {
		e1 := a1.Edges(r, SizeView(n))
		e2 := a2.Edges(r, SizeView(n))
		if !e1.Equal(e2) {
			t.Fatalf("round %d differs across same-seed instances", r)
		}
		total += e1.Len()
	}
	mean := float64(total) / float64(rounds)
	want := p * float64(n*(n-1))
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("mean edges/round = %.1f, want ≈ %.1f", mean, want)
	}
}
