package adversary

import (
	"fmt"

	"anondyn/internal/network"
)

// Impossibility constructions (§VI). These adversaries realize the
// executions used in the necessity proofs: they partition the nodes into
// groups that never exchange messages while still granting every
// fault-free node a dynaDegree just below the respective threshold.

// SplitGroups isolates two (or more) node groups from each other forever:
// within each group the graph is complete in every round, across groups
// there are no links. With groups of size ⌈n/2⌉ and ⌊n/2⌋ this is the
// Theorem 9 (part 1) adversary: it satisfies (1, ⌊n/2⌋−1)-dynaDegree, yet
// groups given different inputs can never ε-agree.
type SplitGroups struct {
	g    *network.EdgeSet
	name string
}

// NewSplitGroups builds the adversary for an explicit partition. Groups
// must be disjoint; membership is not required to cover all nodes (nodes
// in no group are completely isolated — they still hear themselves).
func NewSplitGroups(n int, groups ...[]int) (*SplitGroups, error) {
	seen := make(map[int]bool, n)
	for _, g := range groups {
		for _, v := range g {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("adversary: group node %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				return nil, fmt.Errorf("adversary: node %d appears in two groups", v)
			}
			seen[v] = true
		}
	}
	return &SplitGroups{
		g:    network.GroupComplete(n, groups...),
		name: fmt.Sprintf("split(%d groups)", len(groups)),
	}, nil
}

// NewHalves builds the canonical Theorem 9 split of [0,n) into
// [0, ⌈n/2⌉) and [⌈n/2⌉, n).
func NewHalves(n int) (*SplitGroups, error) {
	if n < 2 {
		return nil, fmt.Errorf("adversary: cannot split %d nodes", n)
	}
	half := (n + 1) / 2
	a := make([]int, 0, half)
	for i := 0; i < half; i++ {
		a = append(a, i)
	}
	b := make([]int, 0, n-half)
	for i := half; i < n; i++ {
		b = append(b, i)
	}
	return NewSplitGroups(n, a, b)
}

// Name implements Adversary.
func (s *SplitGroups) Name() string { return s.name }

// Edges implements Adversary. SplitGroups returns its prebuilt set by
// pointer and skips InPlace: the fallback path is already
// allocation-free and copy-free.
func (s *SplitGroups) Edges(t int, view View) *network.EdgeSet { return s.g }

// Oblivious implements the state-independence seam.
func (s *SplitGroups) Oblivious() bool { return true }

// ByzSplitLayout is the full Theorem 10 scenario: the node grouping, the
// Byzantine set, and the inputs that together force any terminating
// algorithm to violate agreement at (1, ⌊(n+3f)/2⌋−1)-dynaDegree.
//
// With nodes 0-indexed and groupSize = ⌊(n+3f)/2⌋:
//
//	group A  = [0, groupSize)
//	group B  = [n−groupSize, n)            (overlap with A of ~3f nodes)
//	Byzantine = [⌊(n−f)/2⌋, ⌊(n+f)/2⌋)     (the middle f nodes)
//	inputs    = 0 for i < ⌊(n−f)/2⌋, 1 for i ≥ ⌊(n+f)/2⌋
//
// Fault-free input-0 nodes receive only from group A, fault-free input-1
// nodes only from group B; the Byzantine nodes equivocate (input 0
// towards A-receivers, input 1 towards B-receivers — fault.SplitBrain).
type ByzSplitLayout struct {
	N, F      int
	GroupA    []int
	GroupB    []int
	Byzantine []int
	// AReceivers lists the fault-free nodes that hear only group A (the
	// input-0 nodes); BReceivers the fault-free nodes that hear only
	// group B (the input-1 nodes).
	AReceivers []int
	BReceivers []int
}

// NewByzSplitLayout computes the Theorem 10 layout. It requires n ≥ 3f+1
// (below that the impossibility is classical, [5][30]) and f ≥ 1.
func NewByzSplitLayout(n, f int) (*ByzSplitLayout, error) {
	if f < 1 {
		return nil, fmt.Errorf("adversary: byzantine split needs f ≥ 1, got %d", f)
	}
	if n < 3*f+1 {
		return nil, fmt.Errorf("adversary: byzantine split needs n ≥ 3f+1, got n=%d f=%d", n, f)
	}
	groupSize := (n + 3*f) / 2
	if groupSize > n {
		groupSize = n
	}
	l := &ByzSplitLayout{N: n, F: f}
	for i := 0; i < groupSize; i++ {
		l.GroupA = append(l.GroupA, i)
	}
	for i := n - groupSize; i < n; i++ {
		l.GroupB = append(l.GroupB, i)
	}
	loB, hiB := (n-f)/2, (n+f)/2
	for i := loB; i < hiB; i++ {
		l.Byzantine = append(l.Byzantine, i)
	}
	for i := 0; i < loB; i++ {
		l.AReceivers = append(l.AReceivers, i)
	}
	for i := hiB; i < n; i++ {
		l.BReceivers = append(l.BReceivers, i)
	}
	return l, nil
}

// Input returns the scenario input for node i: 0 for the low block, 1
// for the high block; Byzantine nodes get 0 (their input is irrelevant).
func (l *ByzSplitLayout) Input(i int) float64 {
	if i >= (l.N+l.F)/2 {
		return 1
	}
	return 0
}

// IsByzantine reports whether node i is Byzantine in the scenario.
func (l *ByzSplitLayout) IsByzantine(i int) bool {
	return i >= (l.N-l.F)/2 && i < (l.N+l.F)/2
}

// SendsToA reports whether receiver i hears group A (true) or group B
// (false). Byzantine receivers are wired to A arbitrarily.
func (l *ByzSplitLayout) SendsToA(i int) bool { return i < (l.N+l.F)/2 }

// Adversary returns the message adversary realizing the layout: every
// round, each A-receiver has incoming links from all of group A \ {self},
// each B-receiver from all of group B \ {self}.
func (l *ByzSplitLayout) Adversary() Adversary {
	e := network.NewEdgeSet(l.N)
	for v := 0; v < l.N; v++ {
		if l.SendsToA(v) {
			for _, u := range l.GroupA {
				e.Add(u, v)
			}
		} else {
			for _, u := range l.GroupB {
				e.Add(u, v)
			}
		}
	}
	return NewStatic(fmt.Sprintf("byzSplit(n=%d,f=%d)", l.N, l.F), e)
}

// MinFaultFreeDegree returns the per-round in-degree every fault-free
// node enjoys under the layout's adversary — ⌊(n+3f)/2⌋ − 1, exactly one
// below the Theorem 10 threshold.
func (l *ByzSplitLayout) MinFaultFreeDegree() int { return (l.N+3*l.F)/2 - 1 }
