package adversary

import (
	"fmt"
	"math"
	"math/rand"

	"anondyn/internal/network"
)

// sparseBernoulliInto turns on each ordered pair (u, v), u ≠ v, of an
// n-node graph independently with probability p, visiting ONLY the
// pairs that come up present: instead of one uniform per pair, it jumps
// from hit to hit over the flattened n² pair grid with geometric skips
// of expected length 1/p (the classical binomial-jump construction).
// A draw therefore costs O(pn²) RNG calls instead of n(n−1), which is
// what makes million-node sparse rounds affordable. Existing links in
// dst are kept (Add is idempotent), so callers layering extra links
// over a schedule can reuse it directly.
//
// The skip is drawn as ⌊E/λ⌋ with E ~ Exp(1) and λ = −log1p(−p): for
// E exponential, ⌊E/λ⌋ is exactly Geometric(p) — the same distribution
// as the textbook ⌊log(1−U)/log(1−p)⌋ inversion, but ExpFloat64's
// ziggurat needs no log call on the hot path, which matters when the
// sampler runs once per edge per round.
//
// Diagonal grid cells are sampled and dropped rather than excluded from
// the index space — each off-diagonal pair stays an independent
// Bernoulli(p) draw, and the mapping from grid index to (u, v) stays a
// division instead of a branchy triangular unrounding.
func sparseBernoulliInto(dst *network.EdgeSet, n int, p float64, rng *rand.Rand) {
	if p <= 0 {
		return
	}
	if p >= 1 {
		dst.FillComplete()
		return
	}
	invRate := -1 / math.Log1p(-p) // 1/λ > 0
	// rem counts the grid cells strictly after the current position;
	// comparing the skip against it in float64 sidesteps int overflow on
	// astronomically long skips (counts stay exact: n² < 2⁵³). (u, v) is
	// tracked incrementally instead of divided out of a flat index — a
	// skip shorter than n (the overwhelming case at p ≈ c/n) wraps the
	// column at most once, so the hot path is add-and-compare with no
	// integer division.
	rem := float64(n) * float64(n)
	u, v := 0, -1
	for {
		f := math.Floor(rng.ExpFloat64() * invRate)
		if f >= rem {
			return
		}
		k := int(f) + 1
		rem -= float64(k)
		v += k
		if v >= n {
			if v < 2*n {
				v -= n
				u++
			} else {
				u += v / n
				v %= n
			}
		}
		if u != v {
			dst.AddUnchecked(u, v)
		}
	}
}

// SparseProbabilistic is the sparse-native Erdős–Rényi adversary: the
// same graph distribution as Probabilistic — every directed link
// present independently with probability p, freshly drawn per round —
// rendered with geometric-skip sampling, so a round costs O(pn² + n/64)
// instead of n(n−1) uniform draws. At p = 8/n that turns the generation
// cost from quadratic into linear in n, which is what lets the bench
// density axis extend to n = 1025/4097.
//
// The RNG stream is an explicitly versioned contract, distinct from the
// legacy adversary's: for a fixed (p, seed) and call sequence,
// SparseProbabilistic always renders the same trace — across Reseed,
// across processes, and across future releases — but it is NOT the
// trace Probabilistic renders from that seed (the two consume different
// uniforms). The registry exposes it as `er2:<p>`; the legacy dense
// `er:<p>` stream stays byte-compatible so committed specs and pinned
// seeds keep reproducing.
type SparseProbabilistic struct {
	p   float64
	rng *rand.Rand
}

// NewSparseProbabilistic builds the adversary; p ∈ [0, 1] is the
// per-link per-round presence probability.
func NewSparseProbabilistic(p float64, seed int64) (*SparseProbabilistic, error) {
	if !(p >= 0 && p <= 1) { // rejects NaN too
		return nil, fmt.Errorf("adversary: link probability %g outside [0,1]", p)
	}
	return &SparseProbabilistic{p: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name implements Adversary. %g keeps sparse probabilities
// distinguishable (p=8/4097 must not collapse onto p=8/1025).
func (a *SparseProbabilistic) Name() string { return fmt.Sprintf("er2(p=%g)", a.p) }

// Edges implements Adversary. The RNG stream advances with every call;
// replaying requires a fresh instance with the same seed, or a Reseed.
func (a *SparseProbabilistic) Edges(t int, view View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	a.EdgesInto(t, view, e)
	return e
}

// EdgesInto implements InPlace; it consumes the RNG stream exactly as
// Edges does, so both paths draw identical graphs from the same seed.
func (a *SparseProbabilistic) EdgesInto(t int, view View, dst *network.EdgeSet) {
	dst.Reset()
	sparseBernoulliInto(dst, view.N(), a.p, a.rng)
}

// Reseed implements Reseeder: the next Edges call behaves exactly like
// the first call of a fresh instance built with this seed.
func (a *SparseProbabilistic) Reseed(seed int64) {
	a.rng = rand.New(rand.NewSource(seed))
}

// Oblivious implements the state-independence seam: E(t) never reads
// node snapshots.
func (a *SparseProbabilistic) Oblivious() bool { return true }
