package adversary

import (
	"fmt"
	"math/rand"

	"anondyn/internal/network"
)

// Oblivious adversaries: E(t) depends only on the round number (and a
// seed), never on node states.

// Complete delivers every link in every round — the benign extreme,
// (1, n−1)-dynaDegree.
type Complete struct{}

// NewComplete returns the complete-graph adversary.
func NewComplete() Complete { return Complete{} }

// Name implements Adversary.
func (Complete) Name() string { return "complete" }

// Edges implements Adversary.
func (Complete) Edges(t int, view View) *network.EdgeSet {
	return network.Complete(view.N())
}

// EdgesInto implements InPlace: a word-wise fill of the scratch set.
func (Complete) EdgesInto(t int, view View, dst *network.EdgeSet) {
	dst.FillComplete()
}

// Oblivious implements the state-independence seam.
func (Complete) Oblivious() bool { return true }

// Static replays one fixed graph every round.
type Static struct {
	g    *network.EdgeSet
	name string
}

// NewStatic wraps a fixed graph as an adversary.
func NewStatic(name string, g *network.EdgeSet) *Static {
	return &Static{g: g, name: name}
}

// Name implements Adversary.
func (s *Static) Name() string { return "static:" + s.name }

// Edges implements Adversary. Static deliberately does NOT implement
// InPlace: it returns its prebuilt set by pointer, which is already
// allocation-free and cheaper than any per-round copy into an
// engine-owned scratch set (the engine never mutates returned sets).
func (s *Static) Edges(t int, view View) *network.EdgeSet { return s.g }

// Oblivious implements the state-independence seam.
func (s *Static) Oblivious() bool { return true }

// Periodic cycles through a fixed schedule of edge sets:
// E(t) = sets[t mod len(sets)].
type Periodic struct {
	sets []*network.EdgeSet
	name string
}

// NewPeriodic builds a periodic adversary from a non-empty schedule.
func NewPeriodic(name string, sets ...*network.EdgeSet) (*Periodic, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("adversary: periodic schedule must be non-empty")
	}
	return &Periodic{sets: sets, name: name}, nil
}

// Name implements Adversary.
func (p *Periodic) Name() string { return "periodic:" + p.name }

// Edges implements Adversary. Like Static, Periodic returns prebuilt
// sets by pointer and skips InPlace: the fallback path is already
// allocation-free and copy-free.
func (p *Periodic) Edges(t int, view View) *network.EdgeSet {
	return p.sets[t%len(p.sets)]
}

// Period returns the schedule length.
func (p *Periodic) Period() int { return len(p.sets) }

// Oblivious implements the state-independence seam.
func (p *Periodic) Oblivious() bool { return true }

// NewFig1 reproduces the paper's Figure 1 on 3 nodes: odd rounds have no
// links at all, even rounds have {(0,1),(1,0),(1,2),(2,1)} (paper's
// 1-based {(1,2),(2,1),(2,3),(3,2)}). The resulting dynamic graph
// satisfies (2,1)-dynaDegree but not (1,1)-dynaDegree — pinned by tests.
func NewFig1() *Periodic {
	even := network.NewEdgeSet(3)
	even.Add(0, 1)
	even.Add(1, 0)
	even.Add(1, 2)
	even.Add(2, 1)
	odd := network.NewEdgeSet(3)
	p, err := NewPeriodic("fig1", even, odd)
	if err != nil {
		panic(err) // schedule is non-empty by construction
	}
	return p
}

// Rotating gives every node exactly D incoming links per round, from a
// window of neighbors that rotates every round, so consecutive rounds
// contribute distinct in-neighbor sets: (1, D)-dynaDegree with maximal
// churn of who the neighbors are.
type Rotating struct {
	d int
}

// NewRotating builds a rotating in-regular adversary with per-round
// in-degree d ≥ 1.
func NewRotating(d int) (*Rotating, error) {
	if d < 1 {
		return nil, fmt.Errorf("adversary: rotating degree must be ≥ 1, got %d", d)
	}
	return &Rotating{d: d}, nil
}

// Name implements Adversary.
func (r *Rotating) Name() string { return fmt.Sprintf("rotating(d=%d)", r.d) }

// Edges implements Adversary.
func (r *Rotating) Edges(t int, view View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	r.EdgesInto(t, view, e)
	return e
}

// EdgesInto implements InPlace.
func (r *Rotating) EdgesInto(t int, view View, dst *network.EdgeSet) {
	n := view.N()
	d := r.d
	if d > n-1 {
		d = n - 1
	}
	network.InRegularInto(dst, d, (t*d)%n)
}

// Oblivious implements the state-independence seam.
func (r *Rotating) Oblivious() bool { return true }

// RandomDegree spreads, for every node and every aligned block of B
// rounds, links from D distinct random in-neighbors across the block's
// rounds uniformly at random, and additionally turns every other
// possible link on with probability Extra per round. Within an aligned
// block every node therefore hears from ≥ D distinct neighbors, so the
// trace satisfies (2B−1, D)-dynaDegree for sliding windows (every window
// of 2B−1 rounds contains a full block; tests verify via the checker).
type RandomDegree struct {
	block int
	d     int
	extra float64
	rng   *rand.Rand

	blockIdx int
	schedule []*network.EdgeSet // the guaranteed links of the current block
}

// NewRandomDegree builds the adversary. block ≥ 1 is the guarantee block
// length; d is the distinct-in-neighbor guarantee per block; extra in
// [0,1] is the per-round probability of each additional link.
func NewRandomDegree(block, d int, extra float64, seed int64) (*RandomDegree, error) {
	if block < 1 {
		return nil, fmt.Errorf("adversary: block must be ≥ 1, got %d", block)
	}
	if d < 0 {
		return nil, fmt.Errorf("adversary: degree must be ≥ 0, got %d", d)
	}
	if extra < 0 || extra > 1 {
		return nil, fmt.Errorf("adversary: extra probability %g outside [0,1]", extra)
	}
	return &RandomDegree{block: block, d: d, extra: extra, rng: rand.New(rand.NewSource(seed)), blockIdx: -1}, nil
}

// Name implements Adversary.
func (r *RandomDegree) Name() string {
	return fmt.Sprintf("randomDegree(B=%d,D=%d,extra=%.2f)", r.block, r.d, r.extra)
}

// Edges implements Adversary. Calls must proceed in strictly increasing
// round order (the engine guarantees this): the RNG stream advances with
// every call. Re-running an execution requires a fresh instance with the
// same seed, a Reseed, or the trace package's replay adversary.
func (r *RandomDegree) Edges(t int, view View) *network.EdgeSet {
	e := network.NewEdgeSet(view.N())
	r.EdgesInto(t, view, e)
	return e
}

// EdgesInto implements InPlace. It consumes the RNG stream exactly as
// Edges does, so the two paths render identical traces from the same
// seed.
func (r *RandomDegree) EdgesInto(t int, view View, dst *network.EdgeSet) {
	n := view.N()
	d := r.d
	if d > n-1 {
		d = n - 1
	}
	if b := t / r.block; b != r.blockIdx {
		r.buildBlock(b, n, d)
	}
	dst.CopyFrom(r.schedule[t%r.block])
	// Extra links are layered with the geometric-skip sampler: same
	// per-pair Bernoulli(extra) distribution, O(extra·n²) draws instead of
	// n(n−1). This changed the RNG stream relative to the old dense
	// per-pair loop — RandomDegree's stream is not a pinned compatibility
	// contract the way the legacy `er` stream is (no committed spec pins
	// its graphs), only per-seed determinism of THIS implementation is.
	sparseBernoulliInto(dst, n, r.extra, r.rng)
}

// Oblivious implements the state-independence seam.
func (r *RandomDegree) Oblivious() bool { return true }

// Reseed implements Reseeder: the next Edges call behaves exactly like
// the first call of a fresh instance built with this seed.
func (r *RandomDegree) Reseed(seed int64) {
	r.rng = rand.New(rand.NewSource(seed))
	r.blockIdx = -1
}

func (r *RandomDegree) buildBlock(b, n, d int) {
	r.blockIdx = b
	if len(r.schedule) != r.block || (r.block > 0 && r.schedule[0].N() != n) {
		r.schedule = make([]*network.EdgeSet, r.block)
		for i := range r.schedule {
			// Auto representation: a block of d-regular rounds at large n
			// is exactly the regime where the n×n bit-matrix per block
			// round dominates memory — CSR holds d·n edges instead.
			r.schedule[i] = network.NewEdgeSetAuto(n)
		}
	} else {
		for _, s := range r.schedule {
			s.Reset()
		}
	}
	for v := 0; v < n; v++ {
		// d distinct in-neighbors for v, each scheduled in a random round
		// of the block.
		perm := r.rng.Perm(n)
		picked := 0
		for _, u := range perm {
			if u == v {
				continue
			}
			r.schedule[r.rng.Intn(r.block)].Add(u, v)
			picked++
			if picked == d {
				break
			}
		}
	}
}
