package adversary

import (
	"testing"

	"anondyn/internal/core"
	"anondyn/internal/network"
)

// driftView hands every node a distinct, round-varying value so adaptive
// adversaries exercise their sorting paths.
type driftView struct {
	n     int
	round int
}

func (v *driftView) N() int { return v.n }
func (v *driftView) Snapshot(i int) core.Snapshot {
	return core.Snapshot{
		Phase: v.round,
		Value: float64((i*7+v.round*3)%v.n) / float64(v.n),
	}
}

func mustAdv[A Adversary](a A, err error) A {
	if err != nil {
		panic(err)
	}
	return a
}

// inPlaceCases builds one instance per adversary for the Edges path and
// a twin for the EdgesInto path (randomized adversaries consume their
// RNG per call, so comparing paths needs independent equal-seed twins).
func inPlaceCases(t *testing.T) map[string][2]Adversary {
	t.Helper()
	pair := func(mk func() Adversary) [2]Adversary { return [2]Adversary{mk(), mk()} }
	return map[string][2]Adversary{
		"complete":     pair(func() Adversary { return NewComplete() }),
		"rotating":     pair(func() Adversary { return mustAdv(NewRotating(3)) }),
		"randomDegree": pair(func() Adversary { return mustAdv(NewRandomDegree(3, 2, 0.2, 42)) }),
		"er":           pair(func() Adversary { return mustAdv(NewProbabilistic(0.4, 7)) }),
		"er2":          pair(func() Adversary { return mustAdv(NewSparseProbabilistic(0.4, 7)) }),
		"clustered":    pair(func() Adversary { return mustAdv(NewClustered(4)) }),
		"starve":       pair(func() Adversary { return mustAdv(NewStarve(3)) }),
		"isolate":      pair(func() Adversary { return mustAdv(NewIsolate(4)) }),
		"chaseMin":     pair(func() Adversary { return NewChaseMin() }),
		"compose": pair(func() Adversary {
			// mixes an InPlace sub with a shared-graph (non-InPlace) sub,
			// exercising Compose's CopyFrom fallback.
			return mustAdv(NewCompose(NewStatic("ring", network.Ring(9)), mustAdv(NewRotating(2))))
		}),
	}
}

// caseN returns the network size a named case runs at.
func caseN(string) int { return 9 }

// TestFixedGraphAdversariesSkipInPlace: adversaries that return prebuilt
// sets by pointer must NOT implement InPlace — the fallback path is
// already allocation-free, and a scratch copy per round would be a
// strict regression. This pins the intent so a future blanket
// implementation re-introducing the copy fails loudly.
func TestFixedGraphAdversariesSkipInPlace(t *testing.T) {
	fixed := map[string]Adversary{
		"static":   NewStatic("ring", network.Ring(9)),
		"periodic": NewFig1(),
		"halves":   mustAdv(NewHalves(9)),
	}
	view := SizeView(9)
	for name, a := range fixed {
		if _, ok := a.(InPlace); ok {
			t.Errorf("%s implements InPlace; its shared-pointer Edges path is cheaper", name)
		}
		if name == "periodic" {
			continue // Fig1 is 3-node; pointer stability checked via the others
		}
		if a.Edges(0, view) != a.Edges(2, view) {
			// Static and SplitGroups must hand back the same set every
			// round — that stability is what justifies skipping InPlace.
			t.Errorf("%s returned distinct sets across rounds", name)
		}
	}
}

// TestEdgesIntoMatchesEdges: for every adversary in the package, the
// in-place fast path must render exactly the graphs the allocating path
// renders — round by round, including stale-scratch overwrites.
func TestEdgesIntoMatchesEdges(t *testing.T) {
	const rounds = 24
	for name, pair := range inPlaceCases(t) {
		t.Run(name, func(t *testing.T) {
			n := caseN(name)
			alloc, inPlace := pair[0], pair[1]
			ip, ok := inPlace.(InPlace)
			if !ok {
				t.Fatalf("%s does not implement InPlace", name)
			}
			dst := network.Complete(n) // non-empty: EdgesInto must overwrite, not union
			view := &driftView{n: n}
			for round := 0; round < rounds; round++ {
				view.round = round
				want := alloc.Edges(round, view)
				ip.EdgesInto(round, view, dst)
				if !dst.Equal(want) {
					t.Fatalf("round %d: EdgesInto %v, Edges %v", round, dst.Edges(), want.Edges())
				}
			}
		})
	}
}

// TestEdgesIntoSteadyStateAllocs: once warm, the fast path of the
// engine-facing adversaries must not allocate per round.
func TestEdgesIntoSteadyStateAllocs(t *testing.T) {
	for name, pair := range inPlaceCases(t) {
		if name == "randomDegree" {
			// Rebuilds its guarantee schedule at block boundaries (rand.Perm
			// allocates); allocation-free only within a block.
			continue
		}
		t.Run(name, func(t *testing.T) {
			n := caseN(name)
			ip := pair[1].(InPlace)
			dst := network.NewEdgeSet(n)
			view := &driftView{n: n}
			round := 0
			for ; round < 8; round++ { // warm the scratch
				view.round = round
				ip.EdgesInto(round, view, dst)
			}
			avg := testing.AllocsPerRun(50, func() {
				view.round = round
				ip.EdgesInto(round, view, dst)
				round++
			})
			if avg != 0 {
				t.Errorf("%s: %g allocs per EdgesInto, want 0", name, avg)
			}
		})
	}
}

// TestReseedMatchesFreshInstance: a reseeded randomized adversary must
// replay the stream of a fresh instance with the same seed.
func TestReseedMatchesFreshInstance(t *testing.T) {
	const n, rounds = 9, 12
	cases := map[string]struct {
		fresh func(seed int64) Adversary
	}{
		"er":           {func(seed int64) Adversary { return mustAdv(NewProbabilistic(0.4, seed)) }},
		"er2":          {func(seed int64) Adversary { return mustAdv(NewSparseProbabilistic(0.4, seed)) }},
		"randomDegree": {func(seed int64) Adversary { return mustAdv(NewRandomDegree(3, 2, 0.2, seed)) }},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			recycled := tc.fresh(1)
			view := &driftView{n: n}
			for _, seed := range []int64{5, 9} {
				recycled.(Reseeder).Reseed(seed)
				fresh := tc.fresh(seed)
				for round := 0; round < rounds; round++ {
					view.round = round
					a := recycled.Edges(round, view)
					b := fresh.Edges(round, view)
					if !a.Equal(b) {
						t.Fatalf("seed %d round %d: reseeded %v, fresh %v", seed, round, a.Edges(), b.Edges())
					}
				}
			}
		})
	}
}

// BenchmarkEdgesInto quantifies the fast path against the allocating
// path for the two adversaries the engine's zero-alloc budget targets.
func BenchmarkEdgesInto(b *testing.B) {
	const n = 25
	view := &driftView{n: n}
	for _, bc := range []struct {
		name string
		mk   func() Adversary
	}{
		{"complete", func() Adversary { return NewComplete() }},
		{"er", func() Adversary {
			a, err := NewProbabilistic(0.5, 1)
			if err != nil {
				b.Fatal(err)
			}
			return a
		}},
	} {
		b.Run(bc.name+"/edges", func(b *testing.B) {
			a := bc.mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.Edges(i, view)
			}
		})
		b.Run(bc.name+"/into", func(b *testing.B) {
			a := bc.mk().(InPlace)
			dst := network.NewEdgeSet(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.EdgesInto(i, view, dst)
			}
		})
	}
}
