// Package adversary implements dynamic message adversaries (§II-A): for
// every round the adversary chooses the set of directed links E(t) that
// deliver reliably; every other message is lost. Adversaries may be
// adaptive — the model lets them inspect nodes' internal states at the
// start of the round — which the View interface exposes.
package adversary

import (
	"anondyn/internal/core"
	"anondyn/internal/network"
)

// View is the read-only window an adversary gets into the execution at
// the start of a round.
type View interface {
	// N returns the network size.
	N() int
	// Snapshot returns node i's public state at the start of the round.
	Snapshot(i int) core.Snapshot
}

// Adversary chooses E(t) for every round t.
type Adversary interface {
	// Name identifies the adversary in traces, tables and logs.
	Name() string
	// Edges returns the reliable directed link set for round t. The
	// returned set must be over view.N() nodes; it may be shared across
	// calls only if the caller never mutates it (the engine does not).
	Edges(t int, view View) *network.EdgeSet
}

// InPlace is the optional zero-allocation extension of Adversary:
// EdgesInto overwrites dst — an engine-owned scratch set over view.N()
// nodes — with E(t) instead of allocating a fresh set. The engine
// probes for it once per execution and falls back to Edges for
// adversaries that do not implement it, so third-party adversaries keep
// working unchanged. Every adversary in this package that would
// otherwise allocate per round implements it; fixed-graph adversaries
// (Static, Periodic, SplitGroups, the trace replay) intentionally do
// not — they return prebuilt sets by pointer, which is cheaper than any
// copy into scratch.
type InPlace interface {
	Adversary
	EdgesInto(t int, view View, dst *network.EdgeSet)
}

// Reseeder is implemented by randomized adversaries (and Byzantine
// strategies) whose stream can be rewound to the deterministic state of
// a freshly constructed instance with the given seed. Compiled
// scenarios reseed per run so one instance can serve a whole
// Monte-Carlo batch without losing reproducibility.
type Reseeder interface {
	Reseed(seed int64)
}

// Oblivious is the optional state-independence seam: an adversary
// returning true promises that Edges/EdgesInto never consult the view's
// snapshots — E(t) is a function of the round number (and any internal
// seed) only. The engines exploit the promise by skipping the per-round
// state snapshot entirely when nothing else (a Byzantine strategy)
// reads the view, which removes the last O(n)-per-round cost that does
// not scale with the edge count. Obliviousness is a method rather than
// a bare marker interface so wrappers like Compose can answer
// per-instance.
type Oblivious interface {
	Adversary
	// Oblivious reports whether this instance ignores view snapshots.
	Oblivious() bool
}

// IsOblivious reports whether the adversary declares itself
// state-independent. Adversaries without the seam are conservatively
// treated as adaptive.
func IsOblivious(a Adversary) bool {
	o, ok := a.(Oblivious)
	return ok && o.Oblivious()
}

// staticView adapts a plain size (no state access) to View for
// adversaries evaluated outside an engine, e.g. when pre-rendering a
// trace for the dynaDegree checker.
type staticView int

func (v staticView) N() int                     { return int(v) }
func (v staticView) Snapshot(int) core.Snapshot { return core.Snapshot{} }

// SizeView returns a View with n nodes and zero-valued snapshots, for
// rendering oblivious adversaries outside a simulation.
func SizeView(n int) View { return staticView(n) }

// Render materializes the first `rounds` edge sets of an adversary into a
// network.Trace, e.g. to check its dynaDegree offline. Only meaningful
// for oblivious (state-independent) adversaries.
func Render(a Adversary, n, rounds int) network.Trace {
	tr := make(network.Trace, rounds)
	v := SizeView(n)
	for t := 0; t < rounds; t++ {
		tr[t] = a.Edges(t, v)
	}
	return tr
}
