package adversary

import (
	"strings"
	"testing"

	"anondyn/internal/network"
)

func allNodes(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func TestComplete(t *testing.T) {
	a := NewComplete()
	e := a.Edges(0, SizeView(5))
	if e.Len() != 20 {
		t.Errorf("Len = %d, want 20", e.Len())
	}
	if a.Name() != "complete" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestStatic(t *testing.T) {
	g := network.Ring(4)
	a := NewStatic("ring", g)
	if got := a.Edges(0, SizeView(4)); !got.Equal(g) {
		t.Error("static adversary altered the graph")
	}
	if got := a.Edges(99, SizeView(4)); !got.Equal(g) {
		t.Error("static adversary varies with round")
	}
	if !strings.Contains(a.Name(), "ring") {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestPeriodic(t *testing.T) {
	a, err := NewPeriodic("ab", network.Ring(3), network.NewEdgeSet(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Period() != 2 {
		t.Errorf("Period = %d, want 2", a.Period())
	}
	if got := a.Edges(0, SizeView(3)); got.Len() == 0 {
		t.Error("round 0 should be the ring")
	}
	if got := a.Edges(1, SizeView(3)); got.Len() != 0 {
		t.Error("round 1 should be empty")
	}
	if got := a.Edges(2, SizeView(3)); got.Len() == 0 {
		t.Error("round 2 should cycle back to the ring")
	}
	if _, err := NewPeriodic("empty"); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestFig1MatchesPaper(t *testing.T) {
	a := NewFig1()
	tr := Render(a, 3, 12)
	ff := allNodes(3)
	if !network.SatisfiesDynaDegree(tr, ff, 2, 1) {
		t.Error("Figure 1 must satisfy (2,1)-dynaDegree")
	}
	if network.SatisfiesDynaDegree(tr, ff, 1, 1) {
		t.Error("Figure 1 must not satisfy (1,1)-dynaDegree")
	}
	even := a.Edges(0, SizeView(3))
	// Paper (1-based): {(1,2),(2,1),(2,3),(3,2)} → 0-based edges below.
	for _, want := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !even.Has(want[0], want[1]) {
			t.Errorf("even round missing edge %v", want)
		}
	}
	if even.Len() != 4 {
		t.Errorf("even round has %d edges, want 4", even.Len())
	}
	if odd := a.Edges(1, SizeView(3)); odd.Len() != 0 {
		t.Error("odd round should be empty")
	}
}

func TestRotatingDegreeEveryRound(t *testing.T) {
	a, err := NewRotating(3)
	if err != nil {
		t.Fatal(err)
	}
	n := 7
	tr := Render(a, n, 20)
	for r, e := range tr {
		for v := 0; v < n; v++ {
			if got := e.InDegree(v); got != 3 {
				t.Fatalf("round %d: InDegree(%d) = %d, want 3", r, v, got)
			}
		}
	}
	// (1,3)-dynaDegree must hold by construction.
	if !network.SatisfiesDynaDegree(tr, allNodes(n), 1, 3) {
		t.Error("rotating(3) must satisfy (1,3)-dynaDegree")
	}
	// Rotation should accumulate all neighbors quickly: over 3 rounds a
	// node hears ≥ min(6, …) distinct senders — more than 3.
	if got := network.MaxDynaDegree(tr, allNodes(n), 3); got <= 3 {
		t.Errorf("3-round union degree = %d, want > 3 (not rotating)", got)
	}
	if _, err := NewRotating(0); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestRotatingClampsDegree(t *testing.T) {
	a, err := NewRotating(10)
	if err != nil {
		t.Fatal(err)
	}
	e := a.Edges(0, SizeView(4))
	for v := 0; v < 4; v++ {
		if got := e.InDegree(v); got != 3 {
			t.Errorf("InDegree(%d) = %d, want clamped 3", v, got)
		}
	}
}

func TestRandomDegreeGuarantee(t *testing.T) {
	block, d, n := 3, 4, 9
	a, err := NewRandomDegree(block, d, 0, 12345)
	if err != nil {
		t.Fatal(err)
	}
	tr := Render(a, n, 30)
	ff := allNodes(n)
	// Aligned blocks guarantee D distinct in-neighbors; sliding windows
	// of 2B−1 rounds contain a full block.
	for start := 0; start+block <= len(tr); start += block {
		for _, v := range ff {
			u := network.WindowUnion(tr, start, block)
			if got := u.InDegree(v); got < d {
				t.Fatalf("block %d node %d: degree %d < %d", start/block, v, got, d)
			}
		}
	}
	if !network.SatisfiesDynaDegree(tr, ff, 2*block-1, d) {
		t.Errorf("randomDegree must satisfy (2B−1, D)-dynaDegree")
	}
}

func TestRandomDegreeExtraEdges(t *testing.T) {
	a, err := NewRandomDegree(1, 1, 1.0, 1) // extra=1: complete every round
	if err != nil {
		t.Fatal(err)
	}
	e := a.Edges(0, SizeView(5))
	if e.Len() != 20 {
		t.Errorf("extra=1 should give the complete graph, got %d edges", e.Len())
	}
}

func TestRandomDegreeDeterministicPerSeed(t *testing.T) {
	a1, _ := NewRandomDegree(2, 3, 0.2, 99)
	a2, _ := NewRandomDegree(2, 3, 0.2, 99)
	for r := 0; r < 10; r++ {
		e1 := a1.Edges(r, SizeView(8))
		e2 := a2.Edges(r, SizeView(8))
		if !e1.Equal(e2) {
			t.Fatalf("round %d differs across same-seed instances", r)
		}
	}
}

func TestRandomDegreeValidation(t *testing.T) {
	if _, err := NewRandomDegree(0, 1, 0, 1); err == nil {
		t.Error("block 0 accepted")
	}
	if _, err := NewRandomDegree(1, -1, 0, 1); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := NewRandomDegree(1, 1, 1.5, 1); err == nil {
		t.Error("extra > 1 accepted")
	}
}
