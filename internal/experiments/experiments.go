// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md §4 (E1–E8), each regenerating the table
// recorded in EXPERIMENTS.md. The functions are deterministic (fixed
// seeds) and are shared by cmd/dynabench and the root benchmark suite.
//
// The paper is a theory paper — each experiment operationalizes one of
// its quantitative claims (convergence rates, resilience and dynaDegree
// thresholds, worst-case round counts, the §VII bandwidth trade-off) on
// the simulated anonymous dynamic network.
package experiments

import (
	"fmt"
	"math"

	"anondyn"
	"anondyn/internal/analysis"
)

// Registry maps experiment IDs to their runners, in presentation order:
// E1–E8 cover the paper's theorems, E9–E11 its Corollary 1 and the §VII
// open problems.
func Registry() []Experiment {
	core := []Experiment{
		{"E1", "DAC convergence rate and rounds (Theorem 3)", E1DACConvergence},
		{"E2", "Crash dynaDegree necessity (Theorem 9, part 1)", E2CrashDegreeNecessity},
		{"E3", "Crash resilience boundary n=2f vs 2f+1 (Theorem 9, part 2)", E3CrashResilienceBoundary},
		{"E4", "Worst-case rounds ≈ T·p_end (§VII)", E4RoundsVsT},
		{"E5", "DBAC convergence vs the 1−2⁻ⁿ bound (Theorem 7)", E5DBACConvergence},
		{"E6", "Byzantine split construction (Theorem 10)", E6ByzantineNecessity},
		{"E7", "DAC vs prior-work baselines", E7Baselines},
		{"E8", "Piggyback bandwidth/convergence trade-off (§VII)", E8BandwidthTradeoff},
	}
	reg := append(core, extensionRegistry()...)
	return append(reg, figureRegistry()...)
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func() *analysis.Table
}

// rateFloor is the range below which per-phase contraction ratios are
// numerically meaningless and excluded from rate estimates.
const rateFloor = 1e-6

// E1DACConvergence measures, for several network sizes and adversaries,
// the number of rounds to termination and the empirical per-phase
// contraction of range(V(p)). Theorem 3 predicts contraction ≤ 1/2 per
// phase; the complete graph should hit p_end rounds exactly.
func E1DACConvergence() *analysis.Table {
	const eps = 1e-3
	tb := analysis.NewTable(
		"E1: DAC convergence (ε=1e-3, p_end=10, f=⌊(n−1)/2⌋ crashes staggered)",
		"n", "f", "adversary", "rounds", "decided", "range", "worst ρ", "geo-mean ρ")
	for _, n := range []int{5, 7, 9, 15, 25} {
		f := (n - 1) / 2
		for _, mk := range []struct {
			name string
			adv  anondyn.Adversary
		}{
			{"complete", anondyn.Complete()},
			{fmt.Sprintf("rotating(%d)", anondyn.CrashDegree(n)), anondyn.Rotating(anondyn.CrashDegree(n))},
			{"clustered(T=4)", anondyn.Clustered(4)},
			{fmt.Sprintf("randDeg(B=4,D=%d)", anondyn.CrashDegree(n)), anondyn.RandomDegree(4, anondyn.CrashDegree(n), 0.05, 1000+int64(n))},
		} {
			crashes := make(map[int]anondyn.Crash, f)
			for i := 0; i < f; i++ {
				crashes[i*2+1] = anondyn.CrashAt(3 + 2*i) // odd IDs, staggered
			}
			tracker := anondyn.NewPhaseTracker()
			res, err := anondyn.Scenario{
				N: n, F: f, Eps: eps,
				Algorithm: anondyn.AlgoDAC,
				Inputs:    anondyn.SpreadInputs(n),
				Adversary: mk.adv,
				Crashes:   crashes,
				Tracker:   tracker,
				MaxRounds: 20000,
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("E1 %s n=%d: %v", mk.name, n, err))
			}
			tb.AddRowf(n, f, mk.name, res.Rounds, res.Decided, res.OutputRange(),
				tracker.WorstRatio(rateFloor), analysis.GeoMean(tracker.Ratios(rateFloor)))
		}
	}
	tb.AddNote("Theorem 3: ρ ≤ 1/2 per phase; complete graph terminates in exactly p_end rounds")
	return tb
}

// E2CrashDegreeNecessity realizes the Theorem 9 (part 1) construction:
// with (1, ⌊n/2⌋−1)-dynaDegree — two forever-isolated halves — the real
// DAC (quorum ⌊n/2⌋+1) can never terminate, and the hypothetical
// algorithm that settles for one less (quorum ⌊n/2⌋, i.e. "communicate
// with ⌊n/2⌋ nodes including yourself") terminates with outputs 0 and 1:
// ε-agreement is violated, exactly as the proof predicts.
func E2CrashDegreeNecessity() *analysis.Table {
	const eps = 1e-3
	tb := analysis.NewTable(
		"E2: Theorem 9 part 1 — split adversary at (1, ⌊n/2⌋−1)-dynaDegree, inputs 0|1",
		"n", "quorum", "variant", "decided", "rounds", "range", "ε-agreement")
	for _, n := range []int{6, 7, 11} {
		half := (n + 1) / 2
		for _, v := range []struct {
			name   string
			quorum int
		}{
			{"DAC (paper quorum)", 0},
			{"hypothetical (quorum−1)", n / 2},
		} {
			res, err := anondyn.Scenario{
				N: n, F: 0, Eps: eps,
				Algorithm:      anondyn.AlgoDAC,
				QuorumOverride: v.quorum,
				Unchecked:      true,
				Inputs:         anondyn.SplitInputs(n, half),
				Adversary:      anondyn.Halves(n),
				MaxRounds:      500,
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("E2 n=%d: %v", n, err))
			}
			quorum := v.quorum
			if quorum == 0 {
				quorum = n/2 + 1
			}
			tb.AddRowf(n, quorum, v.name, res.Decided, res.Rounds,
				res.OutputRange(), res.EpsAgreement(eps))
		}
	}
	tb.AddNote("paper quorum stalls (termination impossible); quorum−1 terminates but groups decide 0 vs 1")
	return tb
}

// E3CrashResilienceBoundary probes Theorem 9 (part 2): with n = 2f the
// f crashes leave only f survivors — one short of the ⌊n/2⌋+1 quorum —
// so DAC stalls; and any algorithm that terminates anyway (quorum f)
// splits. n = 2f+1 is the control: it must decide correctly.
func E3CrashResilienceBoundary() *analysis.Table {
	const eps = 1e-3
	tb := analysis.NewTable(
		"E3: Theorem 9 part 2 — resilience boundary under f early crashes",
		"n", "f", "variant", "decided", "rounds", "range", "valid", "ε-agreement")
	for _, f := range []int{2, 3} {
		type variant struct {
			name      string
			n         int
			quorum    int // 0 = paper
			adversary anondyn.Adversary
			splitIn   bool
		}
		variants := []variant{
			{"n=2f+1 control", 2*f + 1, 0, anondyn.Complete(), false},
			{"n=2f DAC", 2 * f, 0, anondyn.Complete(), false},
			{"n=2f eager(quorum=f)", 2 * f, f, anondyn.Halves(2 * f), true},
		}
		for _, v := range variants {
			crashes := make(map[int]anondyn.Crash, f)
			for i := 0; i < f; i++ {
				// Crash the top-ID nodes before they send anything.
				crashes[v.n-1-i] = anondyn.CrashSilent(0)
			}
			inputs := anondyn.SpreadInputs(v.n)
			if v.splitIn {
				inputs = anondyn.SplitInputs(v.n, v.n/2)
				// The eager variant isolates the two halves and crashes
				// nobody: the indistinguishability argument of the proof
				// (each half looks like "the other f crashed").
				crashes = nil
			}
			res, err := anondyn.Scenario{
				N: v.n, F: f, Eps: eps,
				Algorithm:      anondyn.AlgoDAC,
				QuorumOverride: v.quorum,
				Unchecked:      true,
				Inputs:         inputs,
				Adversary:      v.adversary,
				Crashes:        crashes,
				MaxRounds:      400,
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("E3 %s: %v", v.name, err))
			}
			tb.AddRowf(v.n, f, v.name, res.Decided, res.Rounds, res.OutputRange(),
				res.Valid(), res.EpsAgreement(eps))
		}
	}
	tb.AddNote("n=2f: survivors < quorum ⇒ stall; eager quorum=f terminates but halves decide 0 vs 1")
	return tb
}

// E4RoundsVsT runs DAC against the T-periodic starving adversary (T−1
// empty rounds, then one complete round): every phase needs a full
// period, so rounds ≈ T·p_end — the worst-case round complexity the
// paper states in §VII.
func E4RoundsVsT() *analysis.Table {
	const eps = 1e-3
	n := 9
	pEnd := anondyn.PEndDAC(eps)
	tb := analysis.NewTable(
		fmt.Sprintf("E4: DAC rounds vs T (n=%d, ε=1e-3, p_end=%d, T-periodic starve adversary)", n, pEnd),
		"T", "rounds", "T·p_end", "rounds/(T·p_end)", "decided")
	for _, T := range []int{1, 2, 4, 8, 16} {
		sets := make([]*anondyn.EdgeSet, T)
		for i := 0; i < T-1; i++ {
			sets[i] = anondyn.NewEdgeSet(n)
		}
		sets[T-1] = anondyn.CompleteGraph(n)
		res, err := anondyn.Scenario{
			N: n, F: 0, Eps: eps,
			Algorithm: anondyn.AlgoDAC,
			Inputs:    anondyn.SpreadInputs(n),
			Adversary: anondyn.Periodic(fmt.Sprintf("starve%d", T), sets...),
			MaxRounds: 20 * T * pEnd,
		}.Run()
		if err != nil {
			panic(fmt.Sprintf("E4 T=%d: %v", T, err))
		}
		tb.AddRowf(T, res.Rounds, T*pEnd, float64(res.Rounds)/float64(T*pEnd), res.Decided)
	}
	tb.AddNote("both algorithms complete in T·p_end rounds in the worst case (§VII)")
	return tb
}

// E5DBACConvergence measures DBAC under equivocating Byzantine nodes:
// phases needed to reach range ≤ ε versus the paper's per-phase bound
// 1−2⁻ⁿ (Theorem 7), whose p_end (Equation 6) is astronomically loose
// compared to observed behavior.
func E5DBACConvergence() *analysis.Table {
	const eps = 1e-3
	tb := analysis.NewTable(
		"E5: DBAC convergence (equivocating Byzantine, complete graph, ε=1e-3)",
		"n", "f", "rounds", "phases→ε", "worst ρ", "geo-mean ρ", "bound 1−2⁻ⁿ", "Eq.6 p_end", "valid")
	for _, nf := range []struct{ n, f int }{{6, 1}, {11, 2}, {16, 3}, {21, 4}} {
		n, f := nf.n, nf.f
		byz := make(map[int]anondyn.Strategy, f)
		for i := 0; i < f; i++ {
			byz[n/2+i] = anondyn.Equivocator(0, 1)
		}
		tracker := anondyn.NewPhaseTracker()
		const phaseBudget = 40
		res, err := anondyn.Scenario{
			N: n, F: f, Eps: eps,
			Algorithm:    anondyn.AlgoDBAC,
			PEndOverride: phaseBudget,
			Inputs:       anondyn.SpreadInputs(n),
			Adversary:    anondyn.Complete(),
			Byzantine:    byz,
			Tracker:      tracker,
			MaxRounds:    5000,
		}.Run()
		if err != nil {
			panic(fmt.Sprintf("E5 n=%d: %v", n, err))
		}
		tb.AddRowf(n, f, res.Rounds, tracker.PhasesToRange(eps),
			tracker.WorstRatio(rateFloor), analysis.GeoMean(tracker.Ratios(rateFloor)),
			1-math.Pow(2, -float64(n)), anondyn.PEndDBAC(eps, n), res.Valid())
	}
	tb.AddNote("observed contraction ≈ 1/2 per phase; the 1−2⁻ⁿ proof bound (and its Equation-6 p_end) is extremely conservative")
	return tb
}

// E6ByzantineNecessity realizes the full Theorem 10 construction: two
// 3f-overlapping groups at degree ⌊(n+3f)/2⌋−1, SplitBrain equivocators
// in the middle. Real DBAC stalls; the hypothetical quorum−1 algorithm
// terminates with group A on 0 and group B on 1.
func E6ByzantineNecessity() *analysis.Table {
	const eps = 1e-3
	tb := analysis.NewTable(
		"E6: Theorem 10 — Byzantine split at (1, ⌊(n+3f)/2⌋−1)-dynaDegree",
		"n", "f", "degree", "variant", "decided", "rounds", "range", "ε-agreement")
	for _, nf := range []struct{ n, f int }{{16, 3}, {11, 2}, {15, 3}} {
		n, f := nf.n, nf.f
		split, err := anondyn.NewByzSplit(n, f)
		if err != nil {
			panic(fmt.Sprintf("E6 n=%d f=%d: %v", n, f, err))
		}
		for _, v := range []struct {
			name   string
			quorum int
		}{
			{"DBAC (paper quorum)", 0},
			{"hypothetical (quorum−1)", anondyn.ByzDegree(n, f)},
		} {
			res, err := anondyn.Scenario{
				N: n, F: f, Eps: eps,
				Algorithm:      anondyn.AlgoDBAC,
				QuorumOverride: v.quorum,
				PEndOverride:   12,
				Unchecked:      true,
				Inputs:         split.Inputs(),
				Adversary:      split.Adversary(),
				Byzantine:      split.Byzantine(),
				MaxRounds:      300,
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("E6 %s: %v", v.name, err))
			}
			tb.AddRowf(n, f, split.Degree(), v.name, res.Decided, res.Rounds,
				res.OutputRange(), res.EpsAgreement(eps))
		}
	}
	tb.AddNote("SplitBrain Byzantine nodes show input 0 to group A and 1 to group B; anonymity makes the equivocation undetectable")
	return tb
}

// E7Baselines compares DAC with the prior-work baselines on identical
// adversaries: the reliable-channel algorithm breaks under splits, the
// mega-round strawman needs T as input and pays for it in rounds, and
// full information matches DAC's rate at unbounded message size.
func E7Baselines() *analysis.Table {
	const eps = 1e-3
	n := 7
	tb := analysis.NewTable(
		"E7: algorithm comparison (n=7, ε=1e-3, f=0 faults, identical adversaries)",
		"algorithm", "adversary", "decided", "rounds", "range", "ε-agreement", "avg bytes/msg")
	type algo struct {
		name  string
		a     anondyn.Algo
		megaT int
	}
	type advCase struct {
		name string
		mk   func() anondyn.Adversary
	}
	algos := []algo{
		{"DAC", anondyn.AlgoDAC, 0},
		{"MegaRound(T=2)", anondyn.AlgoMegaRound, 2},
		{"MegaRound(T=4)", anondyn.AlgoMegaRound, 4},
		{"FullInfo", anondyn.AlgoFullInfo, 0},
		{"RelIter", anondyn.AlgoReliableIterated, 0},
	}
	advs := []advCase{
		{"complete", func() anondyn.Adversary { return anondyn.Complete() }},
		{"rotating(3)", func() anondyn.Adversary { return anondyn.Rotating(3) }},
		{"periodic starve(2)", func() anondyn.Adversary {
			return anondyn.Periodic("starve2", anondyn.NewEdgeSet(n), anondyn.CompleteGraph(n))
		}},
		{"split halves", func() anondyn.Adversary { return anondyn.Halves(n) }},
	}
	for _, al := range algos {
		for _, ac := range advs {
			res, err := anondyn.Scenario{
				N: n, F: 0, Eps: eps,
				Algorithm:        al.a,
				MegaT:            al.megaT,
				Inputs:           anondyn.SpreadInputs(n),
				Adversary:        ac.mk(),
				MaxRounds:        800,
				AccountBandwidth: true,
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("E7 %s/%s: %v", al.name, ac.name, err))
			}
			avgBytes := 0.0
			if res.MessagesDelivered > 0 {
				avgBytes = float64(res.BytesDelivered) / float64(res.MessagesDelivered)
			}
			tb.AddRowf(al.name, ac.name, res.Decided, res.Rounds, res.OutputRange(),
				res.EpsAgreement(eps), avgBytes)
		}
	}
	tb.AddNote("split halves: DAC/MegaRound/FullInfo stall (correct refusal); RelIter 'decides' 0 and 1 — the motivating failure")
	tb.AddNote("MegaRound must be told T; DAC's jump rule needs no such knowledge (§II-B)")
	return tb
}

// E8BandwidthTradeoff sweeps the §VII piggyback window K on a skew-
// inducing adversary and reports rounds, message size, and how often a
// same-phase value could be used instead of an ahead-phase fallback.
func E8BandwidthTradeoff() *analysis.Table {
	const eps = 1e-3
	n, f := 11, 2
	tb := analysis.NewTable(
		"E8: DBAC piggyback window sweep (n=11, f=2, random-degree adversary, ε=1e-3)",
		"K", "rounds", "decided", "range", "avg bytes/msg", "worst ρ", "geo-mean ρ")
	for _, k := range []int{0, 1, 2, 4, 8} {
		byz := map[int]anondyn.Strategy{
			5: anondyn.Equivocator(0, 1),
			6: anondyn.RandomNoise(99),
		}
		tracker := anondyn.NewPhaseTracker()
		res, err := anondyn.Scenario{
			N: n, F: f, Eps: eps,
			Algorithm:        anondyn.AlgoDBACPiggyback,
			PiggybackWindow:  k,
			PEndOverride:     24,
			Inputs:           anondyn.SpreadInputs(n),
			Adversary:        anondyn.RandomDegree(3, anondyn.ByzDegree(n, f), 0.1, 2024),
			Byzantine:        byz,
			Tracker:          tracker,
			MaxRounds:        5000,
			AccountBandwidth: true,
		}.Run()
		if err != nil {
			panic(fmt.Sprintf("E8 K=%d: %v", k, err))
		}
		avgBytes := 0.0
		if res.MessagesDelivered > 0 {
			avgBytes = float64(res.BytesDelivered) / float64(res.MessagesDelivered)
		}
		tb.AddRowf(k, res.Rounds, res.Decided, res.OutputRange(), avgBytes,
			tracker.WorstRatio(rateFloor), analysis.GeoMean(tracker.Ratios(rateFloor)))
	}
	tb.AddNote("K trades message bytes for same-phase updates (§VII); with unlimited K this becomes the FullInfo simulation")
	return tb
}
