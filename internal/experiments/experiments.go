// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md §4 (E1–E8), each regenerating the table
// recorded in EXPERIMENTS.md. The functions are deterministic (fixed
// seeds) and are shared by cmd/dynabench and the root benchmark suite.
//
// The paper is a theory paper — each experiment operationalizes one of
// its quantitative claims (convergence rates, resilience and dynaDegree
// thresholds, worst-case round counts, the §VII bandwidth trade-off) on
// the simulated anonymous dynamic network. Every experiment's cell
// matrix is a committed spec file under examples/specs, compiled to an
// anondyn.Grid and executed on the batch worker pool; the Go side only
// attaches per-run collectors and renders the tables.
package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"anondyn"
	"anondyn/internal/analysis"
)

// Registry maps experiment IDs to their runners, in presentation order:
// E1–E8 cover the paper's theorems, E9–E11 its Corollary 1 and the §VII
// open problems.
func Registry() []Experiment {
	core := []Experiment{
		{"E1", "DAC convergence rate and rounds (Theorem 3)", E1DACConvergence},
		{"E2", "Crash dynaDegree necessity (Theorem 9, part 1)", E2CrashDegreeNecessity},
		{"E3", "Crash resilience boundary n=2f vs 2f+1 (Theorem 9, part 2)", E3CrashResilienceBoundary},
		{"E4", "Worst-case rounds ≈ T·p_end (§VII)", E4RoundsVsT},
		{"E5", "DBAC convergence vs the 1−2⁻ⁿ bound (Theorem 7)", E5DBACConvergence},
		{"E6", "Byzantine split construction (Theorem 10)", E6ByzantineNecessity},
		{"E7", "DAC vs prior-work baselines", E7Baselines},
		{"E8", "Piggyback bandwidth/convergence trade-off (§VII)", E8BandwidthTradeoff},
	}
	reg := append(core, extensionRegistry()...)
	return append(reg, figureRegistry()...)
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func() *analysis.Table
}

// rateFloor is the range below which per-phase contraction ratios are
// numerically meaningless and excluded from rate estimates.
const rateFloor = 1e-6

// E1DACConvergence measures, for several network sizes and adversaries,
// the number of rounds to termination and the empirical per-phase
// contraction of range(V(p)). Theorem 3 predicts contraction ≤ 1/2 per
// phase; the complete graph should hit p_end rounds exactly. Matrix:
// examples/specs/e1-dac-convergence.yaml.
func E1DACConvergence() *analysis.Table {
	g := sweepGrid("e1-dac-convergence.yaml")
	trackers := trackPhases(&g)
	tb := analysis.NewTable(
		"E1: DAC convergence (ε=1e-3, p_end=10, f=⌊(n−1)/2⌋ crashes staggered)",
		"n", "f", "adversary", "rounds", "decided", "range", "worst ρ", "geo-mean ρ")
	runSweep(g, func(c anondyn.Cell, run int, res *anondyn.Result) {
		tr := trackers[run]
		tb.AddRowf(c.N, c.F, c.Adversary.Name, res.Rounds, res.Decided, res.OutputRange(),
			tr.WorstRatio(rateFloor), analysis.GeoMean(tr.Ratios(rateFloor)))
	})
	tb.AddNote("Theorem 3: ρ ≤ 1/2 per phase; complete graph terminates in exactly p_end rounds")
	return tb
}

// E2CrashDegreeNecessity realizes the Theorem 9 (part 1) construction:
// with (1, ⌊n/2⌋−1)-dynaDegree — two forever-isolated halves — the real
// DAC (quorum ⌊n/2⌋+1) can never terminate, and the hypothetical
// algorithm that settles for one less (quorum ⌊n/2⌋, i.e. "communicate
// with ⌊n/2⌋ nodes including yourself") terminates with outputs 0 and 1:
// ε-agreement is violated, exactly as the proof predicts. Matrix:
// examples/specs/e2-crash-degree-necessity.yaml (a two-variant sweep).
func E2CrashDegreeNecessity() *analysis.Table {
	g := sweepGrid("e2-crash-degree-necessity.yaml")
	tb := analysis.NewTable(
		"E2: Theorem 9 part 1 — split adversary at (1, ⌊n/2⌋−1)-dynaDegree, inputs 0|1",
		"n", "quorum", "variant", "decided", "rounds", "range", "ε-agreement")
	runSweep(g, func(c anondyn.Cell, _ int, res *anondyn.Result) {
		// Read the effective quorum off the variant itself rather than
		// its display name.
		probe := anondyn.Scenario{N: c.N, F: c.F}
		if c.Variant.Apply != nil {
			c.Variant.Apply(&probe)
		}
		quorum := probe.QuorumOverride
		if quorum == 0 {
			quorum = c.N/2 + 1 // the paper quorum
		}
		tb.AddRowf(c.N, quorum, c.Variant.Name, res.Decided, res.Rounds,
			res.OutputRange(), res.EpsAgreement(c.Eps))
	})
	tb.AddNote("paper quorum stalls (termination impossible); quorum−1 terminates but groups decide 0 vs 1")
	return tb
}

// E3CrashResilienceBoundary probes Theorem 9 (part 2): with n = 2f the
// f crashes leave only f survivors — one short of the ⌊n/2⌋+1 quorum —
// so DAC stalls; and any algorithm that terminates anyway (quorum f)
// splits. n = 2f+1 is the control: it must decide correctly. Matrix:
// the three examples/specs/e3-resilience-*.yaml sweeps, interleaved per
// fault bound.
func E3CrashResilienceBoundary() *analysis.Table {
	tb := analysis.NewTable(
		"E3: Theorem 9 part 2 — resilience boundary under f early crashes",
		"n", "f", "variant", "decided", "rounds", "range", "valid", "ε-agreement")
	type row struct {
		c   anondyn.Cell
		res *anondyn.Result
	}
	variants := []struct {
		label string
		file  string
	}{
		{"n=2f+1 control", "e3-resilience-control.yaml"},
		{"n=2f DAC", "e3-resilience-boundary.yaml"},
		{"n=2f eager(quorum=f)", "e3-resilience-eager.yaml"},
	}
	rows := make([][]row, len(variants))
	for i, v := range variants {
		g := sweepGrid(v.file)
		runSweep(g, func(c anondyn.Cell, _ int, res *anondyn.Result) {
			rows[i] = append(rows[i], row{c: c, res: res})
		})
		// The three files are interleaved positionally below; a drifted
		// matrix must fail loudly, not pair wrong rows.
		if len(rows[i]) != len(rows[0]) {
			panic(fmt.Sprintf("E3: %s delivered %d runs, %s delivered %d — matrices out of step",
				variants[0].file, len(rows[0]), v.file, len(rows[i])))
		}
	}
	for j := range rows[0] { // one block per fault bound (f=2, f=3)
		for i, v := range variants {
			r := rows[i][j]
			tb.AddRowf(r.c.N, r.c.F, v.label, r.res.Decided, r.res.Rounds,
				r.res.OutputRange(), r.res.Valid(), r.res.EpsAgreement(r.c.Eps))
		}
	}
	tb.AddNote("n=2f: survivors < quorum ⇒ stall; eager quorum=f terminates but halves decide 0 vs 1")
	return tb
}

// E4RoundsVsT runs DAC against the T-periodic starving adversary (T−1
// empty rounds, then one complete round): every phase needs a full
// period, so rounds ≈ T·p_end — the worst-case round complexity the
// paper states in §VII. Matrix: examples/specs/e4-rounds-vs-t.yaml.
func E4RoundsVsT() *analysis.Table {
	g := sweepGrid("e4-rounds-vs-t.yaml")
	pEnd := anondyn.PEndDAC(1e-3)
	tb := analysis.NewTable(
		fmt.Sprintf("E4: DAC rounds vs T (n=9, ε=1e-3, p_end=%d, T-periodic starve adversary)", pEnd),
		"T", "rounds", "T·p_end", "rounds/(T·p_end)", "decided")
	runSweep(g, func(c anondyn.Cell, _ int, res *anondyn.Result) {
		_, arg, _ := strings.Cut(c.Adversary.Name, ":")
		period, err := strconv.Atoi(arg)
		if err != nil {
			panic(fmt.Sprintf("E4: adversary %q: %v", c.Adversary.Name, err))
		}
		tb.AddRowf(period, res.Rounds, period*pEnd,
			float64(res.Rounds)/float64(period*pEnd), res.Decided)
	})
	tb.AddNote("both algorithms complete in T·p_end rounds in the worst case (§VII)")
	return tb
}

// E5DBACConvergence measures DBAC under equivocating Byzantine nodes:
// phases needed to reach range ≤ ε versus the paper's per-phase bound
// 1−2⁻ⁿ (Theorem 7), whose p_end (Equation 6) is astronomically loose
// compared to observed behavior. Matrix:
// examples/specs/e5-dbac-convergence.yaml.
func E5DBACConvergence() *analysis.Table {
	g := sweepGrid("e5-dbac-convergence.yaml")
	trackers := trackPhases(&g)
	tb := analysis.NewTable(
		"E5: DBAC convergence (equivocating Byzantine, complete graph, ε=1e-3)",
		"n", "f", "rounds", "phases→ε", "worst ρ", "geo-mean ρ", "bound 1−2⁻ⁿ", "Eq.6 p_end", "valid")
	runSweep(g, func(c anondyn.Cell, run int, res *anondyn.Result) {
		tr := trackers[run]
		tb.AddRowf(c.N, c.F, res.Rounds, tr.PhasesToRange(c.Eps),
			tr.WorstRatio(rateFloor), analysis.GeoMean(tr.Ratios(rateFloor)),
			1-math.Pow(2, -float64(c.N)), anondyn.PEndDBAC(c.Eps, c.N), res.Valid())
	})
	tb.AddNote("observed contraction ≈ 1/2 per phase; the 1−2⁻ⁿ proof bound (and its Equation-6 p_end) is extremely conservative")
	return tb
}

// E6ByzantineNecessity realizes the full Theorem 10 construction: two
// 3f-overlapping groups at degree ⌊(n+3f)/2⌋−1, SplitBrain equivocators
// in the middle. Real DBAC stalls; the hypothetical quorum−1 algorithm
// terminates with group A on 0 and group B on 1. Matrix:
// examples/specs/e6-byzantine-split.yaml (construction: byzsplit).
func E6ByzantineNecessity() *analysis.Table {
	g := sweepGrid("e6-byzantine-split.yaml")
	tb := analysis.NewTable(
		"E6: Theorem 10 — Byzantine split at (1, ⌊(n+3f)/2⌋−1)-dynaDegree",
		"n", "f", "degree", "variant", "decided", "rounds", "range", "ε-agreement")
	runSweep(g, func(c anondyn.Cell, _ int, res *anondyn.Result) {
		split, err := anondyn.NewByzSplit(c.N, c.F)
		if err != nil {
			panic(fmt.Sprintf("E6 n=%d f=%d: %v", c.N, c.F, err))
		}
		tb.AddRowf(c.N, c.F, split.Degree(), c.Variant.Name, res.Decided, res.Rounds,
			res.OutputRange(), res.EpsAgreement(c.Eps))
	})
	tb.AddNote("SplitBrain Byzantine nodes show input 0 to group A and 1 to group B; anonymity makes the equivocation undetectable")
	return tb
}

// E7Baselines compares DAC with the prior-work baselines on identical
// adversaries: the reliable-channel algorithm breaks under splits, the
// mega-round strawman needs T as input and pays for it in rounds, and
// full information matches DAC's rate at unbounded message size.
// Matrix: examples/specs/e7-baselines.yaml (the variants axis swaps
// the algorithm per cell).
func E7Baselines() *analysis.Table {
	g := sweepGrid("e7-baselines.yaml")
	tb := analysis.NewTable(
		"E7: algorithm comparison (n=7, ε=1e-3, f=0 faults, identical adversaries)",
		"algorithm", "adversary", "decided", "rounds", "range", "ε-agreement", "avg bytes/msg")
	advLabels := map[string]string{
		"complete":       "complete",
		"rotating:3":     "rotating(3)",
		"starveperiod:2": "periodic starve(2)",
		"halves":         "split halves",
	}
	type row struct {
		c   anondyn.Cell
		res *anondyn.Result
	}
	per := g.SeedsPerCell
	if per < 1 {
		per = 1
	}
	nVars := len(g.Variants)
	if nVars == 0 {
		panic("E7: the committed spec lost its variants axis (the algorithm comparison)")
	}
	nAdvs := len(g.Cells()) / nVars
	rows := make([]row, len(g.Cells())*per)
	runSweep(g, func(c anondyn.Cell, run int, res *anondyn.Result) {
		rows[run] = row{c: c, res: res}
	})
	// The grid enumerates adversary-outer, variant-inner; the table
	// reads algorithm-outer like the paper's comparison.
	for v := 0; v < nVars; v++ {
		for a := 0; a < nAdvs; a++ {
			for s := 0; s < per; s++ {
				r := rows[(a*nVars+v)*per+s]
				avgBytes := 0.0
				if r.res.MessagesDelivered > 0 {
					avgBytes = float64(r.res.BytesDelivered) / float64(r.res.MessagesDelivered)
				}
				label, ok := advLabels[r.c.Adversary.Name]
				if !ok {
					label = r.c.Adversary.Name // spec gained an adversary the label map predates
				}
				tb.AddRowf(r.c.Variant.Name, label, r.res.Decided,
					r.res.Rounds, r.res.OutputRange(), r.res.EpsAgreement(r.c.Eps), avgBytes)
			}
		}
	}
	tb.AddNote("split halves: DAC/MegaRound/FullInfo stall (correct refusal); RelIter 'decides' 0 and 1 — the motivating failure")
	tb.AddNote("MegaRound must be told T; DAC's jump rule needs no such knowledge (§II-B)")
	return tb
}

// E8BandwidthTradeoff sweeps the §VII piggyback window K on a skew-
// inducing adversary and reports rounds, message size, and how often a
// same-phase value could be used instead of an ahead-phase fallback.
// Matrix: examples/specs/e8-piggyback-window.yaml (the variants axis
// sweeps K on a seed-pinned adversary).
func E8BandwidthTradeoff() *analysis.Table {
	g := sweepGrid("e8-piggyback-window.yaml")
	trackers := trackPhases(&g)
	tb := analysis.NewTable(
		"E8: DBAC piggyback window sweep (n=11, f=2, random-degree adversary, ε=1e-3)",
		"K", "rounds", "decided", "range", "avg bytes/msg", "worst ρ", "geo-mean ρ")
	runSweep(g, func(c anondyn.Cell, run int, res *anondyn.Result) {
		k, err := strconv.Atoi(strings.TrimPrefix(c.Variant.Name, "K="))
		if err != nil {
			panic(fmt.Sprintf("E8: variant %q: %v", c.Variant.Name, err))
		}
		tr := trackers[run]
		avgBytes := 0.0
		if res.MessagesDelivered > 0 {
			avgBytes = float64(res.BytesDelivered) / float64(res.MessagesDelivered)
		}
		tb.AddRowf(k, res.Rounds, res.Decided, res.OutputRange(), avgBytes,
			tr.WorstRatio(rateFloor), analysis.GeoMean(tr.Ratios(rateFloor)))
	})
	tb.AddNote("K trades message bytes for same-phase updates (§VII); with unlimited K this becomes the FullInfo simulation")
	return tb
}
