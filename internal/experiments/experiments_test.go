package experiments

import (
	"strconv"
	"strings"
	"testing"

	"anondyn/internal/analysis"
)

// The experiment functions are the reproduction's deliverable; these
// tests pin the *shape* of every table to the paper's claims, so a
// regression in any algorithm, adversary, or engine that changes a
// conclusion fails loudly.

func cellFloat(t *testing.T, tb *analysis.Table, row, col int) float64 {
	t.Helper()
	s := tb.Cell(row, col)
	if s == "+Inf" {
		return 1e300
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float: %v", row, col, s, err)
	}
	return v
}

func cellBool(t *testing.T, tb *analysis.Table, row, col int) bool {
	t.Helper()
	switch tb.Cell(row, col) {
	case "true":
		return true
	case "false":
		return false
	default:
		t.Fatalf("cell (%d,%d) = %q not a bool", row, col, tb.Cell(row, col))
		return false
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(reg))
	}
	for i, e := range reg {
		want := "E" + strconv.Itoa(i+1)
		if i >= 13 {
			want = "F" + strconv.Itoa(i-12) // figure experiments follow the tables
		}
		if e.ID != want {
			t.Errorf("registry[%d].ID = %s, want %s", i, e.ID, want)
		}
		if e.Run == nil || e.Desc == "" {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestE1Shape(t *testing.T) {
	tb := E1DACConvergence()
	if tb.Rows() != 20 { // 5 sizes × 4 adversaries
		t.Fatalf("rows = %d, want 20", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		adv := tb.Cell(r, 2)
		if !cellBool(t, tb, r, 4) {
			t.Errorf("row %d (%s): did not decide", r, adv)
		}
		// ε-agreement at ε = 1e-3.
		if rng := cellFloat(t, tb, r, 5); rng > 1e-3 {
			t.Errorf("row %d (%s): range %g > ε", r, adv, rng)
		}
		// Theorem 3: contraction never worse than 1/2 (small float slack).
		if rho := cellFloat(t, tb, r, 6); rho > 0.5+1e-9 {
			t.Errorf("row %d (%s): worst ρ = %g > 1/2", r, adv, rho)
		}
		// Complete graph: exactly p_end rounds.
		if strings.HasPrefix(adv, "complete") {
			if rounds := cellFloat(t, tb, r, 3); rounds != 10 {
				t.Errorf("row %d: complete graph took %g rounds, want p_end=10", r, rounds)
			}
		}
	}
}

func TestE2Shape(t *testing.T) {
	tb := E2CrashDegreeNecessity()
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		paper := strings.Contains(tb.Cell(r, 2), "paper")
		decided := cellBool(t, tb, r, 3)
		if paper && decided {
			t.Errorf("row %d: real DAC decided below the degree threshold", r)
		}
		if !paper {
			if !decided {
				t.Errorf("row %d: hypothetical algorithm failed to decide", r)
			}
			// The two groups decide 0 and 1: range 1, no ε-agreement.
			if rng := cellFloat(t, tb, r, 5); rng < 0.99 {
				t.Errorf("row %d: range %g, want ≈1 (disagreement)", r, rng)
			}
			if cellBool(t, tb, r, 6) {
				t.Errorf("row %d: ε-agreement unexpectedly holds", r)
			}
		}
	}
}

func TestE3Shape(t *testing.T) {
	tb := E3CrashResilienceBoundary()
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		variant := tb.Cell(r, 2)
		decided := cellBool(t, tb, r, 3)
		agree := cellBool(t, tb, r, 7)
		switch {
		case strings.Contains(variant, "control"):
			if !decided || !agree {
				t.Errorf("row %d: n=2f+1 control failed (decided=%v agree=%v)", r, decided, agree)
			}
		case strings.Contains(variant, "eager"):
			if !decided || agree {
				t.Errorf("row %d: eager variant (decided=%v agree=%v), want decided disagreement", r, decided, agree)
			}
		default: // n=2f with the paper quorum
			if decided {
				t.Errorf("row %d: DAC decided with n=2f and f crashes", r)
			}
		}
		// Validity must hold in every variant (it is agreement that breaks).
		if !cellBool(t, tb, r, 6) {
			t.Errorf("row %d: validity violated", r)
		}
	}
}

func TestE4Shape(t *testing.T) {
	tb := E4RoundsVsT()
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		if !cellBool(t, tb, r, 4) {
			t.Errorf("row %d: undecided", r)
		}
		// rounds = T·p_end exactly for the lockstep starve schedule.
		if ratio := cellFloat(t, tb, r, 3); ratio != 1 {
			t.Errorf("row %d: rounds/(T·p_end) = %g, want exactly 1", r, ratio)
		}
	}
}

func TestE5Shape(t *testing.T) {
	tb := E5DBACConvergence()
	if tb.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		if !cellBool(t, tb, r, 8) {
			t.Errorf("row %d: validity violated under Byzantine equivocation", r)
		}
		// Observed contraction must beat the paper's 1−2⁻ⁿ bound and in
		// fact sit near 1/2 on the complete graph.
		rho := cellFloat(t, tb, r, 4)
		bound := cellFloat(t, tb, r, 6)
		if rho > bound {
			t.Errorf("row %d: observed ρ %g exceeds the Theorem 7 bound %g", r, rho, bound)
		}
		if rho > 0.75 {
			t.Errorf("row %d: observed ρ %g far from the ≈1/2 expectation", r, rho)
		}
		// Phases to ε stays near log2(1/ε) = 10.
		if phases := cellFloat(t, tb, r, 3); phases < 1 || phases > 20 {
			t.Errorf("row %d: phases→ε = %g outside [1,20]", r, phases)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tb := E6ByzantineNecessity()
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		paper := strings.Contains(tb.Cell(r, 3), "paper")
		decided := cellBool(t, tb, r, 4)
		if paper && decided {
			t.Errorf("row %d: real DBAC decided below the degree threshold", r)
		}
		if !paper {
			if !decided {
				t.Errorf("row %d: hypothetical variant failed to decide", r)
			}
			if rng := cellFloat(t, tb, r, 6); rng < 0.99 {
				t.Errorf("row %d: range %g, want ≈1", r, rng)
			}
		}
	}
}

func TestE7Shape(t *testing.T) {
	tb := E7Baselines()
	if tb.Rows() != 20 { // 5 algorithms × 4 adversaries
		t.Fatalf("rows = %d, want 20", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		alg, adv := tb.Cell(r, 0), tb.Cell(r, 1)
		decided := cellBool(t, tb, r, 2)
		agree := cellBool(t, tb, r, 5)
		if adv == "split halves" {
			if alg == "RelIter" {
				// The motivating failure: terminates, disagrees.
				if !decided || agree {
					t.Errorf("RelIter on split: decided=%v agree=%v, want true,false", decided, agree)
				}
			} else if decided {
				t.Errorf("%s decided on the split adversary", alg)
			}
			continue
		}
		if !decided {
			t.Errorf("%s on %s: undecided", alg, adv)
		}
		if !agree {
			t.Errorf("%s on %s: ε-agreement violated", alg, adv)
		}
	}
	// DAC beats MegaRound in rounds on every shared (non-split)
	// adversary, and FullInfo pays in bytes.
	rounds := map[string]map[string]float64{}
	bytesPer := map[string]float64{}
	for r := 0; r < tb.Rows(); r++ {
		alg, adv := tb.Cell(r, 0), tb.Cell(r, 1)
		if rounds[alg] == nil {
			rounds[alg] = map[string]float64{}
		}
		rounds[alg][adv] = cellFloat(t, tb, r, 3)
		bytesPer[alg] = cellFloat(t, tb, r, 6)
	}
	for _, adv := range []string{"complete", "rotating(3)", "periodic starve(2)"} {
		if rounds["DAC"][adv] > rounds["MegaRound(T=4)"][adv] {
			t.Errorf("DAC slower than MegaRound(T=4) on %s", adv)
		}
	}
	if bytesPer["FullInfo"] < 3*bytesPer["DAC"] {
		t.Errorf("FullInfo bytes/msg %g not ≫ DAC's %g", bytesPer["FullInfo"], bytesPer["DAC"])
	}
}

func TestE8Shape(t *testing.T) {
	tb := E8BandwidthTradeoff()
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", tb.Rows())
	}
	prevBytes := 0.0
	for r := 0; r < tb.Rows(); r++ {
		if !cellBool(t, tb, r, 2) {
			t.Errorf("row %d: undecided", r)
		}
		// Message size must grow monotonically with K.
		b := cellFloat(t, tb, r, 4)
		if b < prevBytes {
			t.Errorf("row %d: bytes/msg %g decreased from %g", r, b, prevBytes)
		}
		prevBytes = b
		// Correctness (rate ≤ 1/2 territory) holds at every K.
		if rho := cellFloat(t, tb, r, 5); rho > 0.5+1e-9 {
			t.Errorf("row %d: worst ρ = %g", r, rho)
		}
	}
}
