package experiments

import (
	"fmt"

	"anondyn"
	"anondyn/internal/analysis"
)

// extensionRegistry returns the experiments covering Corollary 1 and the
// §VII open problems, appended to the core E1–E8 set.
func extensionRegistry() []Experiment {
	return []Experiment{
		{"E9", "Exact consensus impossibility at (1, n−2)-dynaDegree (Corollary 1)", E9ExactImpossibility},
		{"E10", "Expected rounds under the probabilistic adversary (§VII open problem)", E10ProbabilisticRounds},
		{"E11", "Per-link bandwidth budgets vs history-carrying algorithms (§VII)", E11BandwidthCaps},
		{"E12", "Jump-rule ablation: DAC with lines 5–8 removed (§IV change (i))", E12JumpAblation},
		{"E13", "Worst observed DBAC rate across attack families (§VII open problem)", E13RateProbe},
	}
}

// E9ExactImpossibility makes Corollary 1 executable. FloodMin solves
// binary exact consensus on the reliable complete graph, but under the
// isolate/chase-min adversaries — which keep (1, n−2)-dynaDegree by
// dropping exactly one incoming message per receiver per round — the
// minimum never propagates and exact agreement fails with ZERO faulty
// nodes. DAC, run under the very same adversaries (n−2 ≥ ⌊n/2⌋), solves
// approximate consensus: the feasibility gap between exact and
// approximate consensus in this model, realized.
func E9ExactImpossibility() *analysis.Table {
	const (
		n   = 7
		eps = 1e-3
	)
	tb := analysis.NewTable(
		"E9: Corollary 1 — exact vs approximate consensus at (1, n−2)-dynaDegree (n=7, node 0 has input 0, rest 1)",
		"algorithm", "adversary", "decided", "distinct outputs", "range", "agreement")
	type c struct {
		algo anondyn.Algo
		name string
		adv  anondyn.Adversary
	}
	cases := []c{
		{anondyn.AlgoFloodMin, "complete", anondyn.Complete()},
		{anondyn.AlgoFloodMin, "isolate(0)", anondyn.Isolate(0)},
		{anondyn.AlgoFloodMin, "chaseMin", anondyn.ChaseMin()},
		{anondyn.AlgoDAC, "isolate(0)", anondyn.Isolate(0)},
		{anondyn.AlgoDAC, "chaseMin", anondyn.ChaseMin()},
	}
	runCases(len(cases), func(i int) (*anondyn.Result, error) {
		tc := cases[i]
		res, err := anondyn.Scenario{
			N: n, F: 0, Eps: eps,
			Algorithm: tc.algo,
			Unchecked: true,
			Inputs:    anondyn.SplitInputs(n, 1), // node 0 → 0, rest → 1
			Adversary: tc.adv,
			MaxRounds: 500,
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("E9 %v/%s: %w", tc.algo, tc.name, err)
		}
		return res, nil
	}, func(i int, res *anondyn.Result) {
		tc := cases[i]
		distinct := countDistinct(res.Outputs)
		agreement := false
		if tc.algo == anondyn.AlgoFloodMin {
			agreement = res.Decided && distinct == 1 // exact agreement
		} else {
			agreement = res.Decided && res.EpsAgreement(eps)
		}
		tb.AddRowf(tc.algo.String(), tc.name, res.Decided, distinct, res.OutputRange(), agreement)
	})
	tb.AddNote("exact consensus: the adversary suppresses one message per receiver per round and the 0 never spreads")
	tb.AddNote("DAC under the same adversaries: n−2 = 5 ≥ ⌊n/2⌋ = 3, so approximate consensus remains solvable")
	return tb
}

func countDistinct(outputs map[int]float64) int {
	seen := make(map[float64]bool, len(outputs))
	for _, v := range outputs {
		seen[v] = true
	}
	return len(seen)
}

// E10ProbabilisticRounds measures DAC's rounds-to-output under the
// random per-round Erdős–Rényi adversary across link probabilities —
// the expected-round-complexity question §VII poses. Each cell
// aggregates 20 seeded runs; the whole p × seed matrix runs as one
// worker-pool batch with a streaming BatchStats aggregate per p.
func E10ProbabilisticRounds() *analysis.Table {
	const (
		n      = 9
		f      = 2
		eps    = 1e-3
		runs   = 20
		budget = 100000
	)
	tb := analysis.NewTable(
		fmt.Sprintf("E10: DAC under er(p), n=%d, f=%d crashes, ε=1e-3, %d seeds per p", n, f, runs),
		"p", "decided", "rounds mean", "rounds median", "rounds p95", "rounds max", "violations")
	ps := []float64{0.05, 0.1, 0.2, 0.4, 0.7, 1.0}
	stats := make([]*anondyn.BatchStats, len(ps))
	sinks := make([]anondyn.ResultSink, len(ps))
	for i := range ps {
		stats[i] = &anondyn.BatchStats{Eps: eps}
		sinks[i] = stats[i]
	}
	err := anondyn.RunManyStream(anondyn.Seeds(len(ps)*runs, 0),
		func(batchSeed int64) anondyn.Scenario {
			p := ps[int(batchSeed)/runs]
			seed := batchSeed % runs
			return anondyn.Scenario{
				N: n, F: f, Eps: eps,
				Algorithm: anondyn.AlgoDAC,
				Inputs:    anondyn.RandomInputs(n, 7000+seed),
				Adversary: anondyn.Probabilistic(p, 9000+seed),
				Crashes: map[int]anondyn.Crash{
					2: anondyn.CrashAt(4),
					5: anondyn.CrashAt(9),
				},
				MaxRounds: budget,
			}
		},
		anondyn.SinkFunc(func(index int, seed int64, res *anondyn.Result) error {
			return sinks[index/runs].Consume(index, seed, res)
		}),
		batchOptions())
	if err != nil {
		panic(fmt.Sprintf("E10: %v", err))
	}
	for i, p := range ps {
		s := stats[i].Rounds()
		tb.AddRowf(p, stats[i].DecidedAll(), s.Mean, s.Median, s.P95, s.Max, stats[i].Violations())
	}
	tb.AddNote("no (T,D) guarantee holds deterministically; termination is only probabilistic — yet safety (validity, ε-agreement) never breaks")
	return tb
}

// E11BandwidthCaps enforces a per-link byte budget (§VII's remark on
// bandwidth-constrained links): plain DAC/DBAC always fit; FullInfo's
// messages grow with the phase count until the link drops them, and the
// run stalls mid-convergence. A bounded piggyback window is the §VII
// compromise: pick K so the message fits the link.
func E11BandwidthCaps() *analysis.Table {
	const eps = 1e-3
	n, f := 11, 2
	tb := analysis.NewTable(
		"E11: per-link bandwidth budget (n=11, f=2 where applicable, rotating adversary, ε=1e-3)",
		"algorithm", "cap (bytes)", "decided", "rounds", "oversized drops", "range")
	type c struct {
		name string
		run  func(cap int) (*anondyn.Result, error)
	}
	mk := func(algo anondyn.Algo, window, ff int) func(cap int) (*anondyn.Result, error) {
		return func(cap int) (*anondyn.Result, error) {
			adv := anondyn.Rotating(anondyn.CrashDegree(n))
			pEnd := 0
			if algo == anondyn.AlgoDBAC || algo == anondyn.AlgoDBACPiggyback {
				adv = anondyn.Rotating(anondyn.ByzDegree(n, ff))
				pEnd = 14
			}
			return anondyn.Scenario{
				N: n, F: ff, Eps: eps,
				Algorithm:       algo,
				PiggybackWindow: window,
				PEndOverride:    pEnd,
				Inputs:          anondyn.SpreadInputs(n),
				Adversary:       adv,
				MaxRounds:       600,
				MaxMessageBytes: cap,
			}.Run()
		}
	}
	cases := []c{
		{"DAC", mk(anondyn.AlgoDAC, 0, 0)},
		{"DBAC", mk(anondyn.AlgoDBAC, 0, f)},
		{"DBAC+pb(K=2)", mk(anondyn.AlgoDBACPiggyback, 2, f)},
		{"DBAC+pb(K=8)", mk(anondyn.AlgoDBACPiggyback, 8, f)},
		{"FullInfo", mk(anondyn.AlgoFullInfo, 0, 0)},
	}
	limits := []int{0, 24}
	runCases(len(cases)*len(limits), func(i int) (*anondyn.Result, error) {
		tc, limit := cases[i/len(limits)], limits[i%len(limits)]
		res, err := tc.run(limit)
		if err != nil {
			return nil, fmt.Errorf("E11 %s cap=%d: %w", tc.name, limit, err)
		}
		return res, nil
	}, func(i int, res *anondyn.Result) {
		tc, limit := cases[i/len(limits)], limits[i%len(limits)]
		capLabel := "∞"
		if limit > 0 {
			capLabel = fmt.Sprintf("%d", limit)
		}
		tb.AddRowf(tc.name, capLabel, res.Decided, res.Rounds,
			res.MessagesOversized, res.OutputRange())
	})
	tb.AddNote("cap 24 bytes ≈ current state + 4 history entries; FullInfo outgrows it and stalls, bounded windows keep fitting")
	return tb
}

// E12JumpAblation removes the jump rule (Algorithm 1 lines 5–8) and
// re-runs the E1 adversaries. §IV introduces the rule so that nodes
// need not retransmit prior-phase states under message loss: without it,
// any adversary that staggers quorum arrivals strands slow nodes in
// phases that nobody broadcasts anymore. Lockstep adversaries (complete,
// rotating — every node advances every round) hide the defect; the
// randomized one exposes the deadlock.
func E12JumpAblation() *analysis.Table {
	const (
		n   = 9
		eps = 1e-3
	)
	tb := analysis.NewTable(
		"E12: jump-rule ablation (n=9, ε=1e-3, no faults)",
		"algorithm", "adversary", "decided", "rounds", "range", "ε-agreement")
	algos := []anondyn.Algo{anondyn.AlgoDAC, anondyn.AlgoDACNoJump}
	advs := []struct {
		name string
		mk   func() anondyn.Adversary
	}{
		{"complete", func() anondyn.Adversary { return anondyn.Complete() }},
		{"rotating(4)", func() anondyn.Adversary { return anondyn.Rotating(anondyn.CrashDegree(n)) }},
		{"randDeg(B=3,D=4)", func() anondyn.Adversary {
			return anondyn.RandomDegree(3, anondyn.CrashDegree(n), 0.05, 321)
		}},
	}
	runCases(len(algos)*len(advs), func(i int) (*anondyn.Result, error) {
		algo, ac := algos[i/len(advs)], advs[i%len(advs)]
		res, err := anondyn.Scenario{
			N: n, F: 0, Eps: eps,
			Algorithm: algo,
			Inputs:    anondyn.SpreadInputs(n),
			Adversary: ac.mk(),
			MaxRounds: 2000,
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("E12 %v/%s: %w", algo, ac.name, err)
		}
		return res, nil
	}, func(i int, res *anondyn.Result) {
		algo, ac := algos[i/len(advs)], advs[i%len(advs)]
		tb.AddRowf(algo.String(), ac.name, res.Decided, res.Rounds,
			res.OutputRange(), res.EpsAgreement(eps))
	})
	tb.AddNote("without the jump rule, staggered quorums strand slow nodes in abandoned phases: deadlock")
	return tb
}
