package experiments

import (
	"strings"
	"testing"
)

func TestF1Shape(t *testing.T) {
	tb := F1ConvergenceCurves()
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		alg, adv := tb.Cell(r, 0), tb.Cell(r, 2)
		// Every curve must actually reach ε.
		if rounds := cellFloat(t, tb, r, 3); rounds < 0 {
			t.Errorf("%s/%s: never reached ε", alg, adv)
		}
		if tb.Cell(r, 4) == "" {
			t.Errorf("%s/%s: empty sparkline", alg, adv)
		}
		if !strings.Contains(tb.Cell(r, 5), ":") {
			t.Errorf("%s/%s: empty sample series", alg, adv)
		}
	}
	// Note: hostile adversaries can reach a SMALL range in fewer rounds
	// than the complete graph (clustered halves converge internally and
	// merge to near-identical values at the mixing round), so there is
	// deliberately no cross-row round ordering assertion here — E1/E4
	// pin the phase-level guarantees.
}
