package experiments

import (
	"fmt"

	"anondyn"
	"anondyn/internal/analysis"
)

// E13RateProbe attacks the paper's third open problem — "what is the
// optimal convergence rate for Byzantine approximate consensus
// algorithms?" — empirically: it hunts for the worst per-phase
// contraction DBAC exhibits across hostile adversary × Byzantine-
// strategy combinations and many seeds. The gap between the worst
// observed ρ and the proven bound 1−2⁻ⁿ measures how much slack the
// Theorem 7 analysis leaves on these attack families.
func E13RateProbe() *analysis.Table {
	n, f := 11, 2
	tb := analysis.NewTable(
		fmt.Sprintf("E13: worst observed DBAC contraction ρ (n=%d, f=%d, 10 seeds per cell, 20-phase runs)", n, f),
		"adversary", "byzantine", "worst ρ", "geo-mean ρ", "all valid")

	type advCase struct {
		name string
		mk   func(seed int64) anondyn.Adversary
	}
	type byzCase struct {
		name string
		mk   func(seed int64) map[int]anondyn.Strategy
	}
	advs := []advCase{
		{"complete", func(int64) anondyn.Adversary { return anondyn.Complete() }},
		{"rotating(D)", func(int64) anondyn.Adversary { return anondyn.Rotating(anondyn.ByzDegree(n, f)) }},
		{"starve(D)", func(int64) anondyn.Adversary {
			return anondyn.Starve(anondyn.ByzDegree(n, f))
		}},
		{"randDeg(B=2,D)", func(seed int64) anondyn.Adversary {
			return anondyn.RandomDegree(2, anondyn.ByzDegree(n, f), 0.05, seed)
		}},
	}
	byzs := []byzCase{
		{"equivocators", func(int64) map[int]anondyn.Strategy {
			return map[int]anondyn.Strategy{3: anondyn.Equivocator(0, 1), 7: anondyn.Equivocator(1, 0)}
		}},
		{"extremist pair", func(int64) map[int]anondyn.Strategy {
			return map[int]anondyn.Strategy{0: anondyn.Extremist(0), 10: anondyn.Extremist(1)}
		}},
		{"noise", func(seed int64) map[int]anondyn.Strategy {
			return map[int]anondyn.Strategy{4: anondyn.RandomNoise(seed), 6: anondyn.RandomNoise(seed + 1)}
		}},
	}
	for _, ac := range advs {
		for _, bc := range byzs {
			worst := 0.0
			var ratios []float64
			allValid := true
			for seed := int64(0); seed < 10; seed++ {
				tracker := anondyn.NewPhaseTracker()
				res, err := anondyn.Scenario{
					N: n, F: f, Eps: 1e-6,
					Algorithm:    anondyn.AlgoDBAC,
					PEndOverride: 20,
					Inputs:       anondyn.RandomInputs(n, 500+seed),
					Adversary:    ac.mk(seed),
					Byzantine:    bc.mk(seed),
					Tracker:      tracker,
					RandomPorts:  true,
					Seed:         seed,
					MaxRounds:    4000,
				}.Run()
				if err != nil {
					panic(fmt.Sprintf("E13 %s/%s seed %d: %v", ac.name, bc.name, seed, err))
				}
				if !res.Valid() {
					allValid = false
				}
				if rho := tracker.WorstRatio(1e-9); rho > worst {
					worst = rho
				}
				ratios = append(ratios, tracker.Ratios(1e-9)...)
			}
			tb.AddRowf(ac.name, bc.name, worst, analysis.GeoMean(ratios), allValid)
		}
	}
	tb.AddNote("paper bound: 1−2⁻¹¹ ≈ 0.9995; worst observed stays ≈ 1/2 — the optimal-rate question (§VII) remains open but these attack families do not approach the bound")
	return tb
}
