package experiments

import (
	"fmt"

	"anondyn"
	"anondyn/internal/analysis"
)

// E13RateProbe attacks the paper's third open problem — "what is the
// optimal convergence rate for Byzantine approximate consensus
// algorithms?" — empirically: it hunts for the worst per-phase
// contraction DBAC exhibits across hostile adversary × Byzantine-
// strategy combinations and many seeds. The gap between the worst
// observed ρ and the proven bound 1−2⁻ⁿ measures how much slack the
// Theorem 7 analysis leaves on these attack families. The full
// cells × seeds matrix runs on the batch worker pool; the per-cell
// aggregation consumes each run's ratios as it streams in.
func E13RateProbe() *analysis.Table {
	n, f := 11, 2
	const seedsPerCell = 10
	tb := analysis.NewTable(
		fmt.Sprintf("E13: worst observed DBAC contraction ρ (n=%d, f=%d, %d seeds per cell, 20-phase runs)", n, f, seedsPerCell),
		"adversary", "byzantine", "worst ρ", "geo-mean ρ", "all valid")

	type advCase struct {
		name string
		mk   func(seed int64) anondyn.Adversary
	}
	type byzCase struct {
		name string
		mk   func(seed int64) map[int]anondyn.Strategy
	}
	advs := []advCase{
		{"complete", func(int64) anondyn.Adversary { return anondyn.Complete() }},
		{"rotating(D)", func(int64) anondyn.Adversary { return anondyn.Rotating(anondyn.ByzDegree(n, f)) }},
		{"starve(D)", func(int64) anondyn.Adversary {
			return anondyn.Starve(anondyn.ByzDegree(n, f))
		}},
		{"randDeg(B=2,D)", func(seed int64) anondyn.Adversary {
			return anondyn.RandomDegree(2, anondyn.ByzDegree(n, f), 0.05, seed)
		}},
	}
	byzs := []byzCase{
		{"equivocators", func(int64) map[int]anondyn.Strategy {
			return map[int]anondyn.Strategy{3: anondyn.Equivocator(0, 1), 7: anondyn.Equivocator(1, 0)}
		}},
		{"extremist pair", func(int64) map[int]anondyn.Strategy {
			return map[int]anondyn.Strategy{0: anondyn.Extremist(0), 10: anondyn.Extremist(1)}
		}},
		{"noise", func(seed int64) map[int]anondyn.Strategy {
			return map[int]anondyn.Strategy{4: anondyn.RandomNoise(seed), 6: anondyn.RandomNoise(seed + 1)}
		}},
	}

	type cell struct {
		adv advCase
		byz byzCase
	}
	var cells []cell
	for _, ac := range advs {
		for _, bc := range byzs {
			cells = append(cells, cell{ac, bc})
		}
	}

	// One tracker per run: trackers hold per-run RNG-free state, so the
	// batch keeps them in a slice indexed by batch position and reads
	// them back during the ordered sink pass.
	trackers := make([]*anondyn.PhaseTracker, len(cells)*seedsPerCell)
	type cellAgg struct {
		worst    float64
		ratios   []float64
		allValid bool
	}
	aggs := make([]cellAgg, len(cells))
	for i := range aggs {
		aggs[i].allValid = true
	}
	sink := anondyn.SinkFunc(func(index int, _ int64, res *anondyn.Result) error {
		agg := &aggs[index/seedsPerCell]
		if !res.Valid() {
			agg.allValid = false
		}
		tracker := trackers[index]
		if rho := tracker.WorstRatio(1e-9); rho > agg.worst {
			agg.worst = rho
		}
		agg.ratios = append(agg.ratios, tracker.Ratios(1e-9)...)
		return nil
	})
	batchSeeds := anondyn.Seeds(len(cells)*seedsPerCell, 0)
	err := anondyn.RunManyStream(batchSeeds, func(batchSeed int64) anondyn.Scenario {
		index := int(batchSeed)
		c := cells[index/seedsPerCell]
		seed := batchSeed % seedsPerCell
		tracker := anondyn.NewPhaseTracker()
		trackers[index] = tracker
		return anondyn.Scenario{
			N: n, F: f, Eps: 1e-6,
			Algorithm:    anondyn.AlgoDBAC,
			PEndOverride: 20,
			Inputs:       anondyn.RandomInputs(n, 500+seed),
			Adversary:    c.adv.mk(seed),
			Byzantine:    c.byz.mk(seed),
			Tracker:      tracker,
			RandomPorts:  true,
			Seed:         seed,
			MaxRounds:    4000,
		}
	}, sink, batchOptions())
	if err != nil {
		panic(fmt.Sprintf("E13: %v", err))
	}
	for i, c := range cells {
		tb.AddRowf(c.adv.name, c.byz.name, aggs[i].worst, analysis.GeoMean(aggs[i].ratios), aggs[i].allValid)
	}
	tb.AddNote("paper bound: 1−2⁻¹¹ ≈ 0.9995; worst observed stays ≈ 1/2 — the optimal-rate question (§VII) remains open but these attack families do not approach the bound")
	return tb
}
