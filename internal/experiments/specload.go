package experiments

import (
	"fmt"

	"anondyn"
	"anondyn/examples/specs"
	"anondyn/internal/spec"
)

// The experiment matrices live in committed spec files under
// examples/specs — the YAML is the source of truth for the cells an
// experiment runs; the Go side only attaches collectors and renders
// tables. Load failures panic: the files are embedded, parsed by the
// spec tests, and smoke-run by CI, so an error here is a programming
// error exactly like a failing scenario.

// sweepGrid loads one committed sweep definition.
func sweepGrid(file string) anondyn.Grid {
	data, err := specs.Read(file)
	if err != nil {
		panic(fmt.Sprintf("experiments: committed spec %s: %v", file, err))
	}
	sw, err := spec.Parse(data)
	if err != nil {
		panic(fmt.Sprintf("experiments: committed spec %s: %v", file, err))
	}
	g, err := sw.Grid()
	if err != nil {
		panic(fmt.Sprintf("experiments: committed spec %s: %v", file, err))
	}
	return g
}

// runSweep executes the grid on the experiment worker pool, handing
// every run to emit in deterministic order (cells in Cells() order,
// seeds ascending; run is the global batch index).
func runSweep(g anondyn.Grid, emit func(c anondyn.Cell, run int, res *anondyn.Result)) {
	err := g.RunEach(batchOptions(), func(c anondyn.Cell, _, run int, _ int64, res *anondyn.Result) error {
		emit(c, run, res)
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}

// trackPhases hooks a fresh PhaseTracker onto every run of the grid
// and returns them indexed by global run index — the bridge between
// the declarative matrix and the per-run V(p) reconstruction the
// convergence tables report.
func trackPhases(g *anondyn.Grid) []*anondyn.PhaseTracker {
	per := g.SeedsPerCell
	if per < 1 {
		per = 1
	}
	trackers := make([]*anondyn.PhaseTracker, len(g.Cells())*per)
	prev := g.Mutate
	base := g.BaseSeed
	g.Mutate = func(s *anondyn.Scenario, c anondyn.Cell, seed int64) {
		if prev != nil {
			prev(s, c, seed)
		}
		t := anondyn.NewPhaseTracker()
		trackers[seed-base] = t
		s.Tracker = t
	}
	return trackers
}
