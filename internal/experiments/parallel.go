package experiments

import (
	"fmt"

	"anondyn"
	"anondyn/internal/harness"
)

// Workers bounds every pool the experiments spawn — the case pools of
// runCases and the Monte-Carlo batches inside E10/E13; 0 means
// GOMAXPROCS. cmd/dynabench sets it from -workers so one flag governs
// the whole tree of pools.
var Workers int

// batchOptions returns the experiment-wide pool configuration.
func batchOptions() anondyn.BatchOptions { return anondyn.BatchOptions{Workers: Workers} }

// runCases executes the experiment's independent cases on the batch
// worker pool and hands each case's measurement to emit in case order,
// so the rendered table is identical to the sequential loop it
// replaces. Experiments treat scenario failures as programming errors,
// so any harness error panics, matching their sequential style.
func runCases[T any](n int, run func(i int) (T, error), emit func(i int, v T)) {
	err := harness.Run(n, run,
		func(i int, v T) error { emit(i, v); return nil },
		harness.Options{Workers: Workers})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}
