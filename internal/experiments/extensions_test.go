package experiments

import (
	"strings"
	"testing"
)

func TestRegistryIncludesExtensions(t *testing.T) {
	reg := Registry()
	if len(reg) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(reg))
	}
	ids := map[string]bool{}
	for _, e := range reg {
		ids[e.ID] = true
	}
	for _, want := range []string{"E9", "E10", "E11", "E12", "E13"} {
		if !ids[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestE12Shape(t *testing.T) {
	tb := E12JumpAblation()
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		alg, adv := tb.Cell(r, 0), tb.Cell(r, 1)
		decided := cellBool(t, tb, r, 2)
		if alg == "DAC" && !decided {
			t.Errorf("DAC undecided on %s", adv)
		}
		if alg == "DAC-nojump" {
			if strings.HasPrefix(adv, "randDeg") {
				if decided {
					t.Error("no-jump ablation decided under staggered quorums — the jump rule should be essential")
				}
			} else if !decided {
				t.Errorf("no-jump ablation undecided on lockstep adversary %s", adv)
			}
		}
	}
}

func TestE9Shape(t *testing.T) {
	tb := E9ExactImpossibility()
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		alg, adv := tb.Cell(r, 0), tb.Cell(r, 1)
		agreement := cellBool(t, tb, r, 5)
		switch {
		case alg == "FloodMin" && adv == "complete":
			if !agreement {
				t.Error("FloodMin must reach exact agreement on the reliable complete graph")
			}
			if d := cellFloat(t, tb, r, 3); d != 1 {
				t.Errorf("complete graph: %g distinct outputs, want 1", d)
			}
		case alg == "FloodMin":
			// Corollary 1: exact agreement fails under one-drop-per-
			// receiver adversaries.
			if agreement {
				t.Errorf("FloodMin agreed under %s — Corollary 1 violated", adv)
			}
			if d := cellFloat(t, tb, r, 3); d != 2 {
				t.Errorf("%s: %g distinct outputs, want 2", adv, d)
			}
		default: // DAC rows
			if !agreement {
				t.Errorf("DAC failed ε-agreement under %s — approximate consensus should survive", adv)
			}
		}
	}
}

func TestE10Shape(t *testing.T) {
	tb := E10ProbabilisticRounds()
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.Rows())
	}
	prevMean := 1e18
	for r := 0; r < tb.Rows(); r++ {
		if !cellBool(t, tb, r, 1) {
			t.Errorf("row %d: some seeds did not decide within budget", r)
		}
		// Safety never breaks even without a deterministic guarantee.
		if v := cellFloat(t, tb, r, 6); v != 0 {
			t.Errorf("row %d: %g safety violations", r, v)
		}
		// Expected rounds decrease with link probability.
		mean := cellFloat(t, tb, r, 2)
		if mean > prevMean {
			t.Errorf("row %d: mean rounds %g increased from %g as p grew", r, mean, prevMean)
		}
		prevMean = mean
	}
	// p=1 is the complete graph: exactly p_end rounds.
	if mean := cellFloat(t, tb, tb.Rows()-1, 2); mean != 10 {
		t.Errorf("p=1 mean rounds = %g, want 10", mean)
	}
}

func TestE11Shape(t *testing.T) {
	tb := E11BandwidthCaps()
	if tb.Rows() != 10 {
		t.Fatalf("rows = %d, want 10", tb.Rows())
	}
	for r := 0; r < tb.Rows(); r++ {
		alg, cap := tb.Cell(r, 0), tb.Cell(r, 1)
		decided := cellBool(t, tb, r, 2)
		drops := cellFloat(t, tb, r, 4)
		if cap == "∞" {
			if !decided || drops != 0 {
				t.Errorf("%s uncapped: decided=%v drops=%g", alg, decided, drops)
			}
			continue
		}
		switch alg {
		case "DAC", "DBAC", "DBAC+pb(K=2)":
			if !decided || drops != 0 {
				t.Errorf("%s under cap: decided=%v drops=%g, want fit", alg, decided, drops)
			}
		case "DBAC+pb(K=8)", "FullInfo":
			if decided {
				t.Errorf("%s under cap decided — messages should outgrow the link", alg)
			}
			if drops == 0 {
				t.Errorf("%s under cap: no oversized drops recorded", alg)
			}
		}
	}
}

func TestExtensionDescriptionsMentionPaperAnchors(t *testing.T) {
	for _, e := range extensionRegistry() {
		if !strings.Contains(e.Desc, "Corollary") && !strings.Contains(e.Desc, "§") {
			t.Errorf("%s description lacks a paper anchor: %q", e.ID, e.Desc)
		}
	}
}
