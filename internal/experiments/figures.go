package experiments

import (
	"fmt"

	"anondyn"
	"anondyn/internal/analysis"
)

// figureRegistry returns the figure-style experiments: round-resolution
// convergence curves rather than scalar tables.
func figureRegistry() []Experiment {
	return []Experiment{
		{"F1", "Convergence curves: range vs round per adversary (figure)", F1ConvergenceCurves},
	}
}

// F1ConvergenceCurves records the fault-free value range after every
// round for DAC and DBAC under increasingly hostile adversaries — the
// round-resolution picture behind the E1/E5 phase tables. Rendered as a
// log-scale sparkline per run plus sampled values.
func F1ConvergenceCurves() *analysis.Table {
	const eps = 1e-3
	tb := analysis.NewTable(
		"F1: range vs round (log-scale sparklines ▁=≤1e-6 … █=1; ε=1e-3)",
		"algorithm", "n", "adversary", "rounds→ε", "curve", "samples (round:range)")

	type runCase struct {
		algo    anondyn.Algo
		n, f    int
		advName string
		adv     anondyn.Adversary
		byz     map[int]anondyn.Strategy
		pEnd    int
	}
	n := 9
	cases := []runCase{
		{anondyn.AlgoDAC, n, 0, "complete", anondyn.Complete(), nil, 0},
		{anondyn.AlgoDAC, n, 0, "rotating(4)", anondyn.Rotating(4), nil, 0},
		{anondyn.AlgoDAC, n, 0, "clustered(T=6)", anondyn.Clustered(6), nil, 0},
		{anondyn.AlgoDAC, n, 0, "er(p=0.15)", anondyn.Probabilistic(0.15, 4242), nil, 0},
		{anondyn.AlgoDBAC, 11, 2, "rotating(8)+equivocate", anondyn.Rotating(8),
			map[int]anondyn.Strategy{3: anondyn.Equivocator(0, 1), 8: anondyn.Equivocator(0, 1)}, 14},
	}
	type curve struct {
		series *anondyn.RangeSeries
	}
	runCases(len(cases), func(i int) (curve, error) {
		tc := cases[i]
		series := anondyn.NewRangeSeries()
		res, err := anondyn.Scenario{
			N: tc.n, F: tc.f, Eps: eps,
			Algorithm:    tc.algo,
			PEndOverride: tc.pEnd,
			Inputs:       anondyn.SpreadInputs(tc.n),
			Adversary:    tc.adv,
			Byzantine:    tc.byz,
			Series:       series,
			MaxRounds:    4000,
		}.Run()
		if err != nil {
			return curve{}, fmt.Errorf("F1 %v/%s: %w", tc.algo, tc.advName, err)
		}
		if !res.Decided {
			return curve{}, fmt.Errorf("F1 %v/%s: undecided", tc.algo, tc.advName)
		}
		return curve{series: series}, nil
	}, func(i int, c curve) {
		tc := cases[i]
		stride := c.series.Len() / 8
		if stride < 1 {
			stride = 1
		}
		tb.AddRowf(tc.algo.String(), tc.n, tc.advName,
			c.series.RoundsToRange(eps), c.series.Sparkline(24, 1e-6), c.series.FormatSampled(stride))
	})
	tb.AddNote("curves contract geometrically; hostile schedules stretch the x-axis (rounds), never the contraction per phase")
	return tb
}
