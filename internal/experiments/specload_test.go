package experiments

import (
	"testing"

	"anondyn"
	"anondyn/examples/specs"
	"anondyn/internal/spec"
)

// TestCommittedSpecsCompile: every file under examples/specs parses
// and compiles to a runnable grid — the local half of the CI smoke
// job, so a committed scenario file cannot rot.
func TestCommittedSpecsCompile(t *testing.T) {
	names := specs.Names()
	if len(names) < 8 {
		t.Fatalf("only %d committed specs; the E1–E8 matrices alone need more", len(names))
	}
	for _, name := range names {
		data, err := specs.Read(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sw, err := spec.Parse(data)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sw.Name == "" || sw.Description == "" {
			t.Errorf("%s: committed specs must carry name and description", name)
		}
		g, err := sw.Grid()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(g.Cells()) == 0 {
			t.Errorf("%s: compiles to an empty grid", name)
		}
	}
}

// TestSweepGridSmoke: the one-seed smoke of the experiment loader —
// runs the cheapest committed matrix end to end.
func TestSweepGridSmoke(t *testing.T) {
	g := sweepGrid("e4-rounds-vs-t.yaml")
	ran := 0
	runSweep(g, func(_ anondyn.Cell, _ int, res *anondyn.Result) {
		ran++
		if !res.Decided {
			t.Error("E4 cell undecided")
		}
	})
	if ran != 5 {
		t.Errorf("ran %d cells, want 5", ran)
	}
}
