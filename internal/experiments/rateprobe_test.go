package experiments

import "testing"

func TestE13Shape(t *testing.T) {
	tb := E13RateProbe()
	if tb.Rows() != 12 { // 4 adversaries × 3 strategies
		t.Fatalf("rows = %d, want 12", tb.Rows())
	}
	const bound = 1 - 1.0/2048 // 1−2⁻¹¹ for n=11
	for r := 0; r < tb.Rows(); r++ {
		worst := cellFloat(t, tb, r, 2)
		if worst > bound {
			t.Errorf("row %d: worst ρ %g exceeds the Theorem 7 bound %g", r, worst, bound)
		}
		// The empirical core finding: no attack family pushes past 0.55.
		if worst > 0.55 {
			t.Errorf("row %d: worst ρ %g unexpectedly above ≈1/2 — update EXPERIMENTS.md if genuine", r, worst)
		}
		if !cellBool(t, tb, r, 4) {
			t.Errorf("row %d: validity violated", r)
		}
		geo := cellFloat(t, tb, r, 3)
		if geo > worst+1e-9 {
			t.Errorf("row %d: geo-mean %g exceeds worst %g", r, geo, worst)
		}
	}
}
