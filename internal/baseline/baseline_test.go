package baseline

import (
	"math"
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/sim"
)

func spread(n int) []float64 {
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i) / float64(n-1)
	}
	return in
}

func runScenario(t *testing.T, n int, procs []core.Process, adv adversary.Adversary, maxRounds int) *sim.Result {
	t.Helper()
	eng, err := sim.NewEngine(sim.Config{
		N: n, Procs: procs, Adversary: adv, MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}

func TestReliableIteratedOnCompleteGraph(t *testing.T) {
	n, eps := 7, 1e-3
	procs := make([]core.Process, n)
	for i := range procs {
		r, err := NewReliableIterated(n, spread(n)[i], eps)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = r
	}
	res := runScenario(t, n, procs, adversary.NewComplete(), 0)
	if !res.Decided {
		t.Fatal("undecided on the reliable complete graph")
	}
	if res.Rounds != core.PEndDAC(eps) {
		t.Errorf("rounds = %d, want %d", res.Rounds, core.PEndDAC(eps))
	}
	if !res.EpsAgreement(eps) || !res.Valid() {
		t.Error("correctness violated on its home turf")
	}
}

func TestReliableIteratedBreaksUnderSplit(t *testing.T) {
	// The motivating failure: no quorum discipline means the two halves
	// both happily "converge" to different values — DAC's raison d'être.
	n := 6
	halves, err := adversary.NewHalves(n)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]core.Process, n)
	for i := range procs {
		r, err := NewReliableIterated(n, spread(n)[i], 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = r
	}
	res := runScenario(t, n, procs, halves, 0)
	if !res.Decided {
		t.Fatal("reliable-iterated should terminate blindly")
	}
	if res.EpsAgreement(0.3) {
		t.Errorf("halves agreed (range %g) — split should break it", res.OutputRange())
	}
}

func TestBACReliableTrimsByzantine(t *testing.T) {
	n, f := 7, 2
	byz := map[int]fault.Strategy{
		0: fault.Extremist{Value: 1},
		6: fault.Extremist{Value: 0},
	}
	procs := make([]core.Process, n)
	for i := range procs {
		if _, isByz := byz[i]; isByz {
			continue
		}
		b, err := NewBACReliable(n, f, spread(n)[i], 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = b
	}
	eng, err := sim.NewEngine(sim.Config{
		N: n, F: f, Procs: procs, Byzantine: byz, Adversary: adversary.NewComplete(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if !res.Decided {
		t.Fatal("undecided")
	}
	if !res.Valid() {
		t.Errorf("Byzantine extremes dragged outputs outside the hull: %v", res.Outputs)
	}
	if !res.EpsAgreement(1e-2) {
		t.Errorf("range %g too wide", res.OutputRange())
	}
}

func TestBACReliableValidation(t *testing.T) {
	if _, err := NewBACReliable(6, 2, 0.5, 0.1); err == nil {
		t.Error("n < 3f+1 accepted")
	}
	if _, err := NewBACReliable(7, 2, 0.5, 0.1); err != nil {
		t.Errorf("n = 3f+1 rejected: %v", err)
	}
}

func TestMegaRoundKnowsT(t *testing.T) {
	// Fig-1-style periodic adversary with period 2 (empty odd rounds):
	// MegaRound with T=2 terminates; with T=1 it must stall forever (it
	// updates every round but half the rounds deliver nothing — it still
	// needs the quorum, which arrives only on even rounds; with T=1 the
	// quorum state resets every round... it can still collect on even
	// rounds — so instead use a schedule where messages for one node
	// alternate sources across rounds).
	n, eps := 5, 0.1
	procsT2 := make([]core.Process, n)
	for i := range procsT2 {
		m, err := NewMegaRound(n, 2, i, spread(n)[i], eps)
		if err != nil {
			t.Fatal(err)
		}
		procsT2[i] = m
	}
	// Adversary: rotating degree 2 but only ~half the needed senders per
	// round — over 2 rounds each node accumulates ≥ ⌊n/2⌋ distinct.
	rot, err := adversary.NewRotating(2)
	if err != nil {
		t.Fatal(err)
	}
	res := runScenario(t, n, procsT2, rot, 2000)
	if !res.Decided {
		t.Fatal("MegaRound(T=2) undecided under rotating(2)")
	}
	if !res.Valid() || !res.EpsAgreement(eps) {
		t.Error("MegaRound correctness violated")
	}
	// It needs ~T rounds per phase: strictly more rounds than DAC's
	// pEnd on the same adversary.
	if res.Rounds < 2*core.PEndDAC(eps) {
		t.Errorf("rounds = %d, expected ≥ T·pEnd = %d", res.Rounds, 2*core.PEndDAC(eps))
	}
}

func TestMegaRoundValidation(t *testing.T) {
	if _, err := NewMegaRound(5, 0, 0, 0.5, 0.1); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := NewMegaRound(5, 1, 5, 0.5, 0.1); err == nil {
		t.Error("selfPort out of range accepted")
	}
}

func TestFullInfoConvergesOnFig1(t *testing.T) {
	// Figure 1's network: 3 nodes, links only on even rounds. FullInfo
	// needs ⌊3/2⌋+1 = 2 distinct phase-p values; the middle node relays
	// full histories, so everyone terminates.
	n, eps := 3, 0.1
	procs := make([]core.Process, n)
	for i := range procs {
		fi, err := NewFullInfo(n, i, spread(n)[i], eps)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = fi
	}
	res := runScenario(t, n, procs, adversary.NewFig1(), 500)
	if !res.Decided {
		t.Fatal("FullInfo undecided on Figure 1")
	}
	if !res.Valid() || !res.EpsAgreement(eps) {
		t.Errorf("FullInfo correctness violated: range %g", res.OutputRange())
	}
}

func TestFullInfoHistoryGrows(t *testing.T) {
	fi, err := NewFullInfo(3, 0, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m0 := fi.Broadcast()
	if len(m0.History) != 1 {
		t.Fatalf("initial history = %d entries, want 1 (phase 0)", len(m0.History))
	}
	// Advance one phase: history must now carry both phases.
	fi.Deliver(core.Delivery{Port: 1, Msg: core.Message{Value: 0.5, Phase: 0}})
	if fi.Phase() != 1 {
		t.Fatal("setup: no advance")
	}
	m1 := fi.Broadcast()
	if len(m1.History) != 2 {
		t.Errorf("history after one phase = %d entries, want 2", len(m1.History))
	}
	// Bandwidth accounting sees the growth — this is the cost the §VII
	// trade-off is about.
}

func TestFullInfoIgnoresBehindSenders(t *testing.T) {
	fi, err := NewFullInfo(5, 0, 0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Jump-start to phase 1 via two deliveries.
	fi.Deliver(core.Delivery{Port: 1, Msg: core.Message{Value: 0.3, Phase: 0}})
	fi.Deliver(core.Delivery{Port: 2, Msg: core.Message{Value: 0.7, Phase: 0}})
	if fi.Phase() != 1 {
		t.Fatal("setup failed")
	}
	// A sender still at phase 0 with no phase-1 history: not countable.
	fi.Deliver(core.Delivery{Port: 3, Msg: core.Message{Value: 0.1, Phase: 0}})
	if fi.Phase() != 1 {
		t.Error("behind sender advanced the phase")
	}
	// A sender whose history CONTAINS phase 1 counts even though its
	// current phase is 3.
	fi.Deliver(core.Delivery{Port: 4, Msg: core.Message{
		Value: 0.9, Phase: 3,
		History: []core.HistEntry{{Value: 0.6, Phase: 1}, {Value: 0.4, Phase: 0}},
	}})
	fi.Deliver(core.Delivery{Port: 3, Msg: core.Message{Value: 0.6, Phase: 1}})
	if fi.Phase() != 2 {
		t.Errorf("phase = %d, want 2", fi.Phase())
	}
	if math.IsNaN(fi.Value()) {
		t.Error("NaN value")
	}
}
