// Package baseline implements the comparison algorithms the paper
// positions DAC/DBAC against (§I, §IV, §VII):
//
//   - ReliableIterated — classical crash-tolerant iterated averaging in
//     the style of Dolev et al. [13]: correct only when every round
//     reliably delivers a quorum, i.e. it assumes away the message
//     adversary.
//   - BACReliable — the reliable-channel Byzantine averaging algorithm
//     (Dolev-Lynch-Pinter-Stark-Weihl [14]) DBAC is inspired by.
//   - MegaRound — the "T-round mega-round" strawman from §II-B: it knows
//     T and batches T rounds of messages into one DAC-style update.
//   - FullInfo — the §VII unlimited-bandwidth simulation: piggyback the
//     entire state history so a receiver never misses a same-phase
//     value.
//
// All of them implement core.Process and run under the same engines and
// adversaries as DAC/DBAC, which is what experiment E7 exploits.
package baseline

import (
	"fmt"
	"sort"

	"anondyn/internal/core"
)

// ReliableIterated is round-synchronous iterated averaging: every round,
// average the extremes of all values received this round (plus own).
// Under a complete reliable graph its range halves per round; under a
// message adversary it has no quorum discipline at all, so it can
// converge to different values in different components — the motivating
// failure DAC fixes.
type ReliableIterated struct {
	n      int
	rounds int // decide after this many rounds (log2(1/ε) on reliable graphs)

	v     float64
	round int
	min   float64
	max   float64

	decided  bool
	decision float64
}

var _ core.Process = (*ReliableIterated)(nil)

// NewReliableIterated builds a node deciding after ⌈log₂(1/eps)⌉ rounds.
func NewReliableIterated(n int, input, eps float64) (*ReliableIterated, error) {
	if err := core.ValidateInput(input); err != nil {
		return nil, err
	}
	if err := core.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	return &ReliableIterated{
		n:      n,
		rounds: core.PEndDAC(eps),
		v:      input,
		min:    input,
		max:    input,
	}, nil
}

// Broadcast implements core.Process.
func (r *ReliableIterated) Broadcast() core.Message {
	return core.Message{Value: r.v, Phase: r.round}
}

// Deliver implements core.Process: track the extremes of this round's
// messages regardless of their phase tags (the algorithm trusts the
// synchronous reliable network to keep everyone in lock-step).
func (r *ReliableIterated) Deliver(d core.Delivery) {
	if d.Msg.Value < r.min {
		r.min = d.Msg.Value
	}
	if d.Msg.Value > r.max {
		r.max = d.Msg.Value
	}
}

// EndRound implements core.Process: average the extremes and advance.
func (r *ReliableIterated) EndRound() {
	r.v = (r.min + r.max) / 2
	r.round++
	r.min, r.max = r.v, r.v
	if !r.decided && r.round >= r.rounds {
		r.decided = true
		r.decision = r.v
	}
}

// Output implements core.Process.
func (r *ReliableIterated) Output() (float64, bool) { return r.decision, r.decided }

// Phase implements core.Process (round count doubles as phase).
func (r *ReliableIterated) Phase() int { return r.round }

// Value implements core.Process.
func (r *ReliableIterated) Value() float64 { return r.v }

// BACReliable is the reliable-channel Byzantine iterated averaging of
// [14]: collect the full round's values, discard the f lowest and f
// highest, and move to the midpoint of the surviving extremes. Sound for
// n ≥ 3f+1 on reliable complete graphs; it has no defense against a
// message adversary (it cannot tell "value trimmed" from "message
// dropped").
type BACReliable struct {
	n, f   int
	rounds int

	v     float64
	round int
	recv  []float64

	decided  bool
	decision float64
}

var _ core.Process = (*BACReliable)(nil)

// NewBACReliable builds a node deciding after ⌈log₂(1/eps)⌉ rounds.
func NewBACReliable(n, f int, input, eps float64) (*BACReliable, error) {
	if n < 3*f+1 {
		return nil, fmt.Errorf("baseline: BAC needs n ≥ 3f+1, got n=%d f=%d", n, f)
	}
	if err := core.ValidateInput(input); err != nil {
		return nil, err
	}
	if err := core.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	return &BACReliable{n: n, f: f, rounds: core.PEndDAC(eps), v: input}, nil
}

// Broadcast implements core.Process.
func (b *BACReliable) Broadcast() core.Message {
	return core.Message{Value: b.v, Phase: b.round}
}

// Deliver implements core.Process.
func (b *BACReliable) Deliver(d core.Delivery) { b.recv = append(b.recv, d.Msg.Value) }

// EndRound implements core.Process: trimmed-midpoint update.
func (b *BACReliable) EndRound() {
	vals := append(b.recv, b.v) // own value always present
	sort.Float64s(vals)
	if len(vals) > 2*b.f {
		vals = vals[b.f : len(vals)-b.f]
	}
	b.v = (vals[0] + vals[len(vals)-1]) / 2
	b.recv = b.recv[:0]
	b.round++
	if !b.decided && b.round >= b.rounds {
		b.decided = true
		b.decision = b.v
	}
}

// Output implements core.Process.
func (b *BACReliable) Output() (float64, bool) { return b.decision, b.decided }

// Phase implements core.Process.
func (b *BACReliable) Phase() int { return b.round }

// Value implements core.Process.
func (b *BACReliable) Value() float64 { return b.v }

// MegaRound is the §II-B strawman: it knows the stability parameter T,
// treats each aligned block of T rounds as one mega-round, collects the
// distinct-port values heard anywhere in the block, and performs a
// DAC-style midpoint update at the block boundary when a quorum of
// ⌊n/2⌋+1 distinct senders (self included) was heard. It needs T as an
// input — exactly what DAC's jump rule makes unnecessary — and it wastes
// most of each block when messages arrive early.
type MegaRound struct {
	n, t     int
	selfPort int
	pEnd     int
	v        float64
	phase    int
	round    int
	heard    []bool
	nheard   int
	min      float64
	max      float64

	decided  bool
	decision float64
}

var _ core.Process = (*MegaRound)(nil)

// NewMegaRound builds a node that knows block length t ≥ 1.
func NewMegaRound(n, t, selfPort int, input, eps float64) (*MegaRound, error) {
	if t < 1 {
		return nil, fmt.Errorf("baseline: mega-round T must be ≥ 1, got %d", t)
	}
	if selfPort < 0 || selfPort >= n {
		return nil, fmt.Errorf("baseline: self port %d out of range [0,%d)", selfPort, n)
	}
	if err := core.ValidateInput(input); err != nil {
		return nil, err
	}
	if err := core.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	m := &MegaRound{
		n: n, t: t,
		pEnd:  core.PEndDAC(eps),
		v:     input,
		heard: make([]bool, n),
		min:   input,
		max:   input,
	}
	m.heard[selfPort] = true
	m.nheard = 1
	m.selfPort = selfPort
	m.maybeDecide()
	return m, nil
}

// Broadcast implements core.Process.
func (m *MegaRound) Broadcast() core.Message { return core.Message{Value: m.v, Phase: m.phase} }

// Deliver implements core.Process: collect distinct-port values for the
// current mega-round, accepting only current-phase messages (the
// algorithm has no jump rule).
func (m *MegaRound) Deliver(d core.Delivery) {
	if d.Msg.Phase != m.phase || m.heard[d.Port] {
		return
	}
	m.heard[d.Port] = true
	m.nheard++
	if d.Msg.Value < m.min {
		m.min = d.Msg.Value
	}
	if d.Msg.Value > m.max {
		m.max = d.Msg.Value
	}
}

// EndRound implements core.Process: update at block boundaries.
func (m *MegaRound) EndRound() {
	m.round++
	if m.round%m.t != 0 {
		return
	}
	if m.phase < m.pEnd && m.nheard >= core.CrashQuorum(m.n) {
		m.v = (m.min + m.max) / 2
		m.phase++
	}
	for i := range m.heard {
		m.heard[i] = false
	}
	m.heard[m.selfPort] = true
	m.nheard = 1
	m.min, m.max = m.v, m.v
	m.maybeDecide()
}

// Output implements core.Process.
func (m *MegaRound) Output() (float64, bool) { return m.decision, m.decided }

// Phase implements core.Process.
func (m *MegaRound) Phase() int { return m.phase }

// Value implements core.Process.
func (m *MegaRound) Value() float64 { return m.v }

func (m *MegaRound) maybeDecide() {
	if !m.decided && m.phase >= m.pEnd {
		m.decided = true
		m.decision = m.v
	}
}
