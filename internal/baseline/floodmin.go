package baseline

import (
	"fmt"

	"anondyn/internal/core"
)

// FloodMin is the classical binary EXACT consensus algorithm: every
// round, broadcast the minimum input value seen so far; after R rounds,
// output it. On a reliably-complete synchronous graph R = f+1 rounds
// suffice (everyone hears every surviving value). It exists here to make
// Corollary 1 executable: under the (1, n−2)-dynaDegree adversary that
// keeps dropping one incoming message per receiver — the Gafni-Losa
// "time is not a healer" regime — the minimum can be suppressed forever
// and exact agreement fails even with zero faults, while DAC solves
// APPROXIMATE consensus under the very same adversary (experiment E9).
type FloodMin struct {
	rounds int
	v      float64
	round  int

	decided  bool
	decision float64
}

var _ core.Process = (*FloodMin)(nil)

// NewFloodMin builds a node deciding after `rounds` flooding rounds with
// a binary input (0 or 1).
func NewFloodMin(rounds int, input float64) (*FloodMin, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("baseline: floodmin needs ≥ 1 round, got %d", rounds)
	}
	if input != 0 && input != 1 {
		return nil, fmt.Errorf("baseline: floodmin input must be binary, got %g", input)
	}
	return &FloodMin{rounds: rounds, v: input}, nil
}

// Broadcast implements core.Process.
func (fm *FloodMin) Broadcast() core.Message {
	return core.Message{Value: fm.v, Phase: fm.round}
}

// Deliver implements core.Process: adopt any smaller value.
func (fm *FloodMin) Deliver(d core.Delivery) {
	if d.Msg.Value < fm.v {
		fm.v = d.Msg.Value
	}
}

// EndRound implements core.Process.
func (fm *FloodMin) EndRound() {
	fm.round++
	if !fm.decided && fm.round >= fm.rounds {
		fm.decided = true
		fm.decision = fm.v
	}
}

// Output implements core.Process.
func (fm *FloodMin) Output() (float64, bool) { return fm.decision, fm.decided }

// Phase implements core.Process (the round count).
func (fm *FloodMin) Phase() int { return fm.round }

// Value implements core.Process.
func (fm *FloodMin) Value() float64 { return fm.v }
