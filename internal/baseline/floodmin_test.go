package baseline

import (
	"testing"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
)

func floodProcs(t *testing.T, n, rounds int, inputs []float64) []core.Process {
	t.Helper()
	procs := make([]core.Process, n)
	for i := range procs {
		fm, err := NewFloodMin(rounds, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = fm
	}
	return procs
}

func TestFloodMinValidation(t *testing.T) {
	if _, err := NewFloodMin(0, 0); err == nil {
		t.Error("0 rounds accepted")
	}
	if _, err := NewFloodMin(3, 0.5); err == nil {
		t.Error("non-binary input accepted")
	}
	if _, err := NewFloodMin(3, 1); err != nil {
		t.Errorf("valid construction rejected: %v", err)
	}
}

func TestFloodMinExactAgreementOnCompleteGraph(t *testing.T) {
	n := 5
	inputs := []float64{1, 1, 0, 1, 1}
	res := runScenario(t, n, floodProcs(t, n, n, inputs), adversary.NewComplete(), 0)
	if !res.Decided {
		t.Fatal("undecided")
	}
	for node, v := range res.Outputs {
		if v != 0 {
			t.Errorf("node %d decided %g, want the global min 0", node, v)
		}
	}
	if res.Rounds != n {
		t.Errorf("rounds = %d, want %d", res.Rounds, n)
	}
}

func TestFloodMinBrokenByIsolate(t *testing.T) {
	// Corollary 1 in action: node 0 holds the only 0; the adversary
	// suppresses its outgoing links every round while every receiver
	// still has n−2 incoming neighbors. Node 0 decides 0, everyone else
	// decides 1 — exact agreement fails with zero faults.
	n := 6
	iso, err := adversary.NewIsolate(0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []float64{0, 1, 1, 1, 1, 1}
	res := runScenario(t, n, floodProcs(t, n, n, inputs), iso, 0)
	if !res.Decided {
		t.Fatal("undecided")
	}
	if res.Outputs[0] != 0 {
		t.Errorf("victim decided %g, want its own 0", res.Outputs[0])
	}
	for node := 1; node < n; node++ {
		if res.Outputs[node] != 1 {
			t.Errorf("node %d decided %g, want 1 (the 0 must not have leaked)", node, res.Outputs[node])
		}
	}
}

func TestFloodMinBrokenByChaseMin(t *testing.T) {
	n := 6
	inputs := []float64{1, 1, 1, 0, 1, 1} // the min starts at node 3
	res := runScenario(t, n, floodProcs(t, n, n, inputs), adversary.NewChaseMin(), 0)
	if !res.Decided {
		t.Fatal("undecided")
	}
	if res.Outputs[3] != 0 {
		t.Errorf("min holder decided %g, want 0", res.Outputs[3])
	}
	ones := 0
	for node, v := range res.Outputs {
		if node != 3 && v == 1 {
			ones++
		}
	}
	if ones != n-1 {
		t.Errorf("%d nodes decided 1, want %d (adaptive chase failed)", ones, n-1)
	}
}

func TestFloodMinValidityAlwaysBinary(t *testing.T) {
	// Whatever the adversary does, outputs must be actual inputs (exact
	// consensus validity).
	n := 5
	inputs := []float64{0, 1, 0, 1, 1}
	for _, adv := range []adversary.Adversary{
		adversary.NewComplete(),
		adversary.NewChaseMin(),
		mustRotating(t, 2),
	} {
		res := runScenario(t, n, floodProcs(t, n, n, inputs), adv, 0)
		for node, v := range res.Outputs {
			if v != 0 && v != 1 {
				t.Errorf("%s: node %d output %g not an input", adv.Name(), node, v)
			}
		}
	}
}

func mustRotating(t *testing.T, d int) adversary.Adversary {
	t.Helper()
	a, err := adversary.NewRotating(d)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
