package baseline

import (
	"fmt"

	"anondyn/internal/core"
)

// FullInfo is the §VII unlimited-bandwidth algorithm: every broadcast
// piggybacks the node's complete state history (its value in every phase
// so far), so a receiver in phase p can always extract a sender's
// phase-p value once the sender has ever been in phase p — simulating
// the reliable-channel algorithm of Dolev et al. [13] on top of the
// message adversary, with convergence rate 1/2 but messages that grow
// linearly with the phase count (the bandwidth cost E8 measures).
type FullInfo struct {
	n    int
	pEnd int

	v     float64
	phase int
	hist  []core.HistEntry // hist[q] = own state in phase q

	heard  []bool
	nheard int
	min    float64
	max    float64

	selfPort int

	decided  bool
	decision float64
}

var _ core.Process = (*FullInfo)(nil)

// NewFullInfo builds a full-information node.
func NewFullInfo(n, selfPort int, input, eps float64) (*FullInfo, error) {
	if selfPort < 0 || selfPort >= n {
		return nil, fmt.Errorf("baseline: self port %d out of range [0,%d)", selfPort, n)
	}
	if err := core.ValidateInput(input); err != nil {
		return nil, err
	}
	if err := core.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	f := &FullInfo{
		n:        n,
		pEnd:     core.PEndDAC(eps),
		v:        input,
		hist:     []core.HistEntry{{Value: input, Phase: 0}},
		heard:    make([]bool, n),
		min:      input,
		max:      input,
		selfPort: selfPort,
	}
	f.heard[selfPort] = true
	f.nheard = 1
	f.maybeDecide()
	return f, nil
}

// Broadcast implements core.Process: current state plus full history.
func (f *FullInfo) Broadcast() core.Message {
	hist := make([]core.HistEntry, len(f.hist))
	copy(hist, f.hist)
	return core.Message{Value: f.v, Phase: f.phase, History: hist}
}

// Deliver implements core.Process: count the sender's phase-p value when
// its history (or current state) contains one.
func (f *FullInfo) Deliver(d core.Delivery) {
	if f.heard[d.Port] {
		return
	}
	val, ok := f.phaseValue(d.Msg)
	if !ok {
		return // sender has never reached our phase yet
	}
	f.heard[d.Port] = true
	f.nheard++
	if val < f.min {
		f.min = val
	}
	if val > f.max {
		f.max = val
	}
	if f.phase < f.pEnd && f.nheard >= core.CrashQuorum(f.n) {
		f.v = (f.min + f.max) / 2
		f.phase++
		f.hist = append(f.hist, core.HistEntry{Value: f.v, Phase: f.phase})
		for i := range f.heard {
			f.heard[i] = false
		}
		f.heard[f.selfPort] = true
		f.nheard = 1
		f.min, f.max = f.v, f.v
	}
	f.maybeDecide()
}

// phaseValue extracts the sender's phase-f.phase state from a message.
func (f *FullInfo) phaseValue(m core.Message) (float64, bool) {
	if m.Phase == f.phase {
		return m.Value, true
	}
	if m.Phase < f.phase {
		return 0, false
	}
	for _, h := range m.History {
		if h.Phase == f.phase {
			return h.Value, true
		}
	}
	return 0, false
}

// EndRound implements core.Process.
func (f *FullInfo) EndRound() {}

// Output implements core.Process.
func (f *FullInfo) Output() (float64, bool) { return f.decision, f.decided }

// Phase implements core.Process.
func (f *FullInfo) Phase() int { return f.phase }

// Value implements core.Process.
func (f *FullInfo) Value() float64 { return f.v }

func (f *FullInfo) maybeDecide() {
	if !f.decided && f.phase >= f.pEnd {
		f.decided = true
		f.decision = f.v
	}
}
