package network

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEdgeSetBasics(t *testing.T) {
	e := NewEdgeSet(5)
	if e.N() != 5 {
		t.Fatalf("N = %d, want 5", e.N())
	}
	e.Add(0, 1)
	e.Add(3, 1)
	e.Add(1, 0)
	if !e.Has(0, 1) || !e.Has(3, 1) || !e.Has(1, 0) {
		t.Error("added edges missing")
	}
	if e.Has(1, 3) {
		t.Error("phantom edge (direction confusion?)")
	}
	if got := e.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	e.Remove(0, 1)
	if e.Has(0, 1) {
		t.Error("removed edge still present")
	}
	if got := e.Len(); got != 2 {
		t.Errorf("Len after remove = %d, want 2", got)
	}
}

func TestEdgeSetSelfLoopIgnored(t *testing.T) {
	e := NewEdgeSet(3)
	e.Add(1, 1)
	if e.Has(1, 1) || e.Len() != 0 {
		t.Error("self-loop stored (model forbids them)")
	}
}

func TestEdgeSetNeighbors(t *testing.T) {
	e := NewEdgeSet(6)
	e.Add(0, 3)
	e.Add(0, 5)
	e.Add(2, 3)
	e.Add(4, 3)
	if got, want := e.OutNeighbors(0), []int{3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("OutNeighbors(0) = %v, want %v", got, want)
	}
	if got, want := e.InNeighbors(3), []int{0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("InNeighbors(3) = %v, want %v", got, want)
	}
	if got := e.InDegree(3); got != 3 {
		t.Errorf("InDegree(3) = %d, want 3", got)
	}
	if got := e.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := e.InNeighbors(1); got != nil {
		t.Errorf("InNeighbors(1) = %v, want nil", got)
	}
}

func TestEdgeSetLargeN(t *testing.T) {
	// Cross the 64-bit word boundary.
	n := 130
	e := NewEdgeSet(n)
	e.Add(0, 64)
	e.Add(0, 127)
	e.Add(129, 64)
	if !e.Has(0, 64) || !e.Has(0, 127) || !e.Has(129, 64) {
		t.Error("edges across word boundaries lost")
	}
	if got := e.InDegree(64); got != 2 {
		t.Errorf("InDegree(64) = %d, want 2", got)
	}
	if got, want := e.OutNeighbors(0), []int{64, 127}; !reflect.DeepEqual(got, want) {
		t.Errorf("OutNeighbors(0) = %v, want %v", got, want)
	}
}

func TestEdgeSetCloneIsDeep(t *testing.T) {
	e := NewEdgeSet(4)
	e.Add(0, 1)
	c := e.Clone()
	c.Add(2, 3)
	if e.Has(2, 3) {
		t.Error("clone shares storage with original")
	}
	if !c.Has(0, 1) {
		t.Error("clone lost an edge")
	}
}

func TestEdgeSetUnionWith(t *testing.T) {
	a := NewEdgeSet(4)
	a.Add(0, 1)
	b := NewEdgeSet(4)
	b.Add(2, 3)
	b.Add(0, 1)
	a.UnionWith(b)
	if !a.Has(0, 1) || !a.Has(2, 3) {
		t.Error("union missing edges")
	}
	if a.Len() != 2 {
		t.Errorf("union Len = %d, want 2", a.Len())
	}
}

func TestEdgeSetEqual(t *testing.T) {
	a := NewEdgeSet(4)
	a.Add(0, 1)
	b := NewEdgeSet(4)
	if a.Equal(b) {
		t.Error("unequal sets compared equal")
	}
	b.Add(0, 1)
	if !a.Equal(b) {
		t.Error("equal sets compared unequal")
	}
	if a.Equal(nil) {
		t.Error("nil compared equal")
	}
	if a.Equal(NewEdgeSet(5)) {
		t.Error("different-size sets compared equal")
	}
}

func TestEdgeSetEdgesRoundTrip(t *testing.T) {
	e := NewEdgeSet(5)
	e.Add(4, 0)
	e.Add(1, 2)
	pairs := e.Edges()
	rebuilt := NewEdgeSet(5)
	for _, p := range pairs {
		rebuilt.Add(p[0], p[1])
	}
	if !e.Equal(rebuilt) {
		t.Error("Edges() round trip lost information")
	}
}

func TestEdgeSetPanicsOnRange(t *testing.T) {
	e := NewEdgeSet(3)
	mustPanic(t, func() { e.Add(0, 3) })
	mustPanic(t, func() { e.Add(-1, 0) })
	mustPanic(t, func() { e.Has(3, 0) })
	mustPanic(t, func() { NewEdgeSet(0) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

// TestEdgeSetQuick: the bitset representation agrees with a naive map
// under random edge insertions and deletions.
func TestEdgeSetQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	property := func(ops []uint16, nRaw uint8) bool {
		n := int(nRaw)%90 + 2
		e := NewEdgeSet(n)
		ref := make(map[[2]int]bool)
		for _, op := range ops {
			u := int(op) % n
			v := int(op>>4) % n
			if u == v {
				continue
			}
			if op&1 == 0 {
				e.Add(u, v)
				ref[[2]int{u, v}] = true
			} else {
				e.Remove(u, v)
				delete(ref, [2]int{u, v})
			}
		}
		if e.Len() != len(ref) {
			return false
		}
		for p := range ref {
			if !e.Has(p[0], p[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
