package network

import "fmt"

// Static topology generators. These build the "base" communication graph
// G(V, E) of §II-B — the capability graph when every link is reliable —
// which adversaries then thin out round by round.

// Complete returns the complete directed graph on n nodes (no self-loops).
func Complete(n int) *EdgeSet {
	e := NewEdgeSet(n)
	e.FillComplete()
	return e
}

// Ring returns the directed cycle 0→1→…→n−1→0.
func Ring(n int) *EdgeSet {
	e := NewEdgeSet(n)
	for u := 0; u < n; u++ {
		e.Add(u, (u+1)%n)
	}
	return e
}

// BidirectionalRing returns the cycle with links in both directions.
func BidirectionalRing(n int) *EdgeSet {
	e := NewEdgeSet(n)
	for u := 0; u < n; u++ {
		e.Add(u, (u+1)%n)
		e.Add((u+1)%n, u)
	}
	return e
}

// Star returns the graph where the hub exchanges links with every other
// node (hub→i and i→hub for all i ≠ hub).
func Star(n, hub int) *EdgeSet {
	if hub < 0 || hub >= n {
		panic(fmt.Sprintf("network: hub %d out of range [0,%d)", hub, n))
	}
	e := NewEdgeSet(n)
	for v := 0; v < n; v++ {
		if v != hub {
			e.Add(hub, v)
			e.Add(v, hub)
		}
	}
	return e
}

// InRegular returns a directed graph where every node has exactly d
// incoming links, from the d cyclically-preceding nodes shifted by
// offset. Varying offset between rounds makes the in-neighbor sets
// rotate, which is how the rotating adversaries guarantee distinctness
// across windows.
func InRegular(n, d, offset int) *EdgeSet {
	e := NewEdgeSet(n)
	InRegularInto(e, d, offset)
	return e
}

// InRegularInto overwrites e with the InRegular graph of its size
// without allocating.
func InRegularInto(e *EdgeSet, d, offset int) {
	n := e.N()
	if d < 0 || d > n-1 {
		panic(fmt.Sprintf("network: in-degree %d out of range [0,%d]", d, n-1))
	}
	e.Reset()
	for v := 0; v < n; v++ {
		added := 0
		for j := 1; added < d && j <= n; j++ {
			u := (v + offset + j) % n
			if u == v {
				continue
			}
			e.Add(u, v)
			added++
		}
	}
}

// GroupComplete returns the graph whose links are exactly the complete
// graphs within each listed group (no cross-group links). Used by the
// impossibility constructions of Theorems 9 and 10.
func GroupComplete(n int, groups ...[]int) *EdgeSet {
	e := NewEdgeSet(n)
	GroupCompleteInto(e, groups...)
	return e
}

// GroupCompleteInto overwrites e with the GroupComplete graph of its
// size. Callers passing a pre-built [][]int slice (`groups...`) incur no
// allocation.
func GroupCompleteInto(e *EdgeSet, groups ...[]int) {
	e.Reset()
	for _, g := range groups {
		for _, u := range g {
			for _, v := range g {
				if u != v {
					e.Add(u, v)
				}
			}
		}
	}
}
