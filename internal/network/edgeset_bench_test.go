package network

import (
	"fmt"
	"math/rand"
	"testing"
)

// The engine's hot loop calls InDegree/OutDegree per node per round and
// the dynaDegree checker scans incoming links over thousands of rounds,
// so the column-scan rewrite of InNeighbors/InDegree is benchmarked
// here against the workload sizes the experiments use.

func benchSizes() []int { return []int{9, 51, 129} }

func BenchmarkInDegree(b *testing.B) {
	for _, n := range benchSizes() {
		e := randomEdgeSet(n, 0.5, rand.New(rand.NewSource(7)))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			sum := 0
			for i := 0; i < b.N; i++ {
				for v := 0; v < n; v++ {
					sum += e.InDegree(v)
				}
			}
			if sum < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

func BenchmarkInNeighbors(b *testing.B) {
	for _, n := range benchSizes() {
		e := randomEdgeSet(n, 0.5, rand.New(rand.NewSource(7)))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for v := 0; v < n; v++ {
					if e.InNeighbors(v) == nil && n > 1 {
						b.Fatal("empty neighborhood in a dense graph")
					}
				}
			}
		})
	}
}

func BenchmarkFillComplete(b *testing.B) {
	for _, n := range benchSizes() {
		e := NewEdgeSet(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.FillComplete()
			}
		})
	}
}

func BenchmarkEdgeSetReset(b *testing.B) {
	e := Complete(129)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
	}
}
