package network

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomEdgeSet draws each link independently with probability p.
func randomEdgeSet(n int, p float64, rng *rand.Rand) *EdgeSet {
	e := NewEdgeSet(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				e.Add(u, v)
			}
		}
	}
	return e
}

func TestEdgeSetReset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := randomEdgeSet(67, 0.4, rng)
	if e.Len() == 0 {
		t.Fatal("random set came out empty")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Reset left %d links", e.Len())
	}
	if !e.Equal(NewEdgeSet(67)) {
		t.Fatal("Reset set differs from a fresh empty set")
	}
	// The set must remain fully usable after Reset.
	e.Add(3, 5)
	if !e.Has(3, 5) || e.Len() != 1 {
		t.Fatal("Add after Reset misbehaved")
	}
}

func TestEdgeSetCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randomEdgeSet(65, 0.3, rng)
	src.Remove(0, 64)
	dst := randomEdgeSet(65, 0.7, rng)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom did not reproduce the source")
	}
	// Copies are independent.
	dst.Add(0, 64)
	if src.Has(0, 64) {
		t.Fatal("CopyFrom aliased the source storage")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom across sizes did not panic")
		}
	}()
	dst.CopyFrom(NewEdgeSet(3))
}

func TestFillComplete(t *testing.T) {
	for _, n := range []int{1, 2, 3, 63, 64, 65, 128, 130} {
		e := NewEdgeSet(n)
		e.Add(0, n-1) // pre-existing garbage must be overwritten, not unioned
		e.FillComplete()
		want := n * (n - 1)
		if got := e.Len(); got != want {
			t.Fatalf("n=%d: FillComplete has %d links, want %d", n, got, want)
		}
		for u := 0; u < n; u++ {
			if e.Has(u, u) {
				t.Fatalf("n=%d: self-loop at %d", n, u)
			}
		}
	}
}

func TestInNeighborsInDegreeWordWise(t *testing.T) {
	// The strided column scan must agree with a per-edge reference on
	// sizes straddling word boundaries.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 63, 64, 65, 129} {
		e := randomEdgeSet(n, 0.35, rng)
		for v := 0; v < n; v++ {
			var want []int
			for u := 0; u < n; u++ {
				if e.Has(u, v) {
					want = append(want, u)
				}
			}
			got := e.InNeighbors(v)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d v=%d: InNeighbors %v, want %v", n, v, got, want)
			}
			if d := e.InDegree(v); d != len(want) {
				t.Fatalf("n=%d v=%d: InDegree %d, want %d", n, v, d, len(want))
			}
		}
	}
}

func TestInRegularIntoMatchesInRegular(t *testing.T) {
	e := NewEdgeSet(11)
	e.FillComplete() // stale content must vanish
	InRegularInto(e, 3, 5)
	if !e.Equal(InRegular(11, 3, 5)) {
		t.Fatal("InRegularInto differs from InRegular")
	}
}

func TestGroupCompleteIntoMatchesGroupComplete(t *testing.T) {
	groups := [][]int{{0, 2, 4}, {1, 3, 5, 6}}
	e := NewEdgeSet(8)
	e.FillComplete()
	GroupCompleteInto(e, groups...)
	if !e.Equal(GroupComplete(8, groups...)) {
		t.Fatal("GroupCompleteInto differs from GroupComplete")
	}
}
