package network

import (
	"math/rand"
	"reflect"
	"testing"
)

// inNeighborsBrute recomputes v's in-neighbors off the authoritative
// out-matrix via Has — the oracle every transposed-index query must
// match after any mutation sequence.
func inNeighborsBrute(e *EdgeSet, v int) []int {
	var res []int
	for u := 0; u < e.N(); u++ {
		if u != v && e.Has(u, v) {
			res = append(res, u)
		}
	}
	return res
}

func assertTransposeConsistent(t *testing.T, e *EdgeSet, context string) {
	t.Helper()
	for v := 0; v < e.N(); v++ {
		want := inNeighborsBrute(e, v)
		if got := e.InNeighbors(v); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: InNeighbors(%d) = %v, want %v", context, v, got, want)
		}
		if got := e.InNeighborsInto(v, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: InNeighborsInto(%d) = %v, want %v", context, v, got, want)
		}
		if got := e.InDegree(v); got != len(want) {
			t.Fatalf("%s: InDegree(%d) = %d, want %d", context, v, got, len(want))
		}
		acc := make([]uint64, MaskWords(e.N()))
		e.InBitsInto(v, acc)
		for _, u := range want {
			if acc[u/64]&(1<<(uint(u)%64)) == 0 {
				t.Fatalf("%s: InBitsInto(%d) missing bit %d", context, v, u)
			}
		}
	}
}

// TestTransposeConsistencyUnderMutation drives every mutator on sizes
// straddling the word boundary and checks the transposed in-index stays
// in lockstep with the out-matrix.
func TestTransposeConsistencyUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 63, 64, 65, 130} {
		e := NewEdgeSet(n)
		for i := 0; i < 4*n; i++ {
			e.Add(rng.Intn(n), rng.Intn(n))
		}
		assertTransposeConsistent(t, e, "after Add")
		for i := 0; i < n; i++ {
			e.Remove(rng.Intn(n), rng.Intn(n))
		}
		assertTransposeConsistent(t, e, "after Remove")

		other := NewEdgeSet(n)
		other.FillComplete()
		assertTransposeConsistent(t, other, "after FillComplete")
		for i := 0; i < 2*n; i++ {
			other.Remove(rng.Intn(n), rng.Intn(n))
		}
		e.UnionWith(other)
		assertTransposeConsistent(t, e, "after UnionWith")
		e.IntersectWith(other)
		assertTransposeConsistent(t, e, "after IntersectWith")

		c := e.Clone()
		assertTransposeConsistent(t, c, "after Clone")
		c.Reset()
		assertTransposeConsistent(t, c, "after Reset")
		if c.Len() != 0 {
			t.Fatalf("n=%d: Reset left %d links", n, c.Len())
		}
		c.CopyFrom(e)
		assertTransposeConsistent(t, c, "after CopyFrom")
		if !c.Equal(e) {
			t.Fatalf("n=%d: CopyFrom not equal", n)
		}
	}
}

// TestInNeighborsIntoReusesBuffer: a recycled buffer must be appended
// to from its start with no allocation once capacity suffices.
func TestInNeighborsIntoReusesBuffer(t *testing.T) {
	e := NewEdgeSet(70)
	for u := 0; u < 70; u++ {
		e.Add(u, 69)
	}
	buf := make([]int, 0, 70)
	buf = e.InNeighborsInto(69, buf[:0])
	if len(buf) != 69 {
		t.Fatalf("got %d in-neighbors, want 69", len(buf))
	}
	again := e.InNeighborsInto(69, buf[:0])
	if &again[0] != &buf[0] {
		t.Error("sufficient buffer was not reused")
	}
}

// TestOutMissing checks the word-wise suppressed-message core against a
// brute-force count, including the caller-handled self-bit convention.
func TestOutMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 5, 64, 65, 100} {
		e := NewEdgeSet(n)
		for i := 0; i < 3*n; i++ {
			e.Add(rng.Intn(n), rng.Intn(n))
		}
		mask := make([]uint64, MaskWords(n))
		inMask := make([]bool, n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				mask[v/64] |= 1 << (uint(v) % 64)
				inMask[v] = true
			}
		}
		for u := 0; u < n; u++ {
			want := 0
			for v := 0; v < n; v++ {
				if inMask[v] && !e.Has(u, v) {
					want++
				}
			}
			if got := e.OutMissing(u, mask); got != want {
				t.Fatalf("n=%d: OutMissing(%d) = %d, want %d", n, u, got, want)
			}
		}
	}
}

func TestOutMissingRejectsWrongMaskLength(t *testing.T) {
	e := NewEdgeSet(65)
	defer func() {
		if recover() == nil {
			t.Error("short mask must panic")
		}
	}()
	e.OutMissing(0, make([]uint64, 1))
}
