// Package network models the communication substrate of the anonymous
// dynamic network (§II-A): directed per-round edge sets chosen by the
// message adversary, receiver-local port numberings, dynamic-graph traces
// and the (T, D)-dynaDegree stability property (Definition 1).
package network

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// EdgeSet is one round's directed communication graph E(t) over nodes
// [0, n). The model has no self-loops (self-delivery is reliable and
// modeled inside the algorithms), so Add silently drops (u, u).
//
// Two representations share the one type. The dense default is a pair
// of bit matrices — a row per source node (out) and its transpose, a
// row per destination node (in) — kept in sync by every mutator, so
// word-wise iteration works in BOTH directions: the delivery core scans
// a receiver's in-row in O(n/64 + in-degree) instead of probing all n
// possible senders. Past SparseThreshold nodes the bit matrices
// outgrow the cache (and at n~10⁵ they would not fit memory at all), so
// NewEdgeSetSparse/NewEdgeSetAuto select a sparse CSR mode instead: a
// mutation log compacted lazily into sender-major and receiver-major
// adjacency lists (see csr.go). Every method except InRow works in
// either mode; IsSparse tells the engines which fused iteration to use.
type EdgeSet struct {
	n     int
	words int
	out   []uint64  // out[u*words + w]: bitmap of u's outgoing neighbors (dense mode)
	in    []uint64  // in[v*words + w]: bitmap of v's incoming neighbors (dense mode)
	csr   *csrState // sparse-mode state; nil means dense
}

// NewEdgeSet returns an empty edge set over n nodes. Both matrices
// share one backing array, so the transpose costs no extra allocation.
func NewEdgeSet(n int) *EdgeSet {
	if n < 1 {
		panic(fmt.Sprintf("network: invalid node count %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	backing := make([]uint64, 2*n*w)
	return &EdgeSet{n: n, words: w, out: backing[: n*w : n*w], in: backing[n*w:]}
}

// MaskWords returns the number of 64-bit words a node bitmap over n
// nodes occupies — the length callers must size mask arguments
// (OutMissing) to.
func MaskWords(n int) int { return (n + wordBits - 1) / wordBits }

// N returns the number of nodes.
func (e *EdgeSet) N() int { return e.n }

// Add inserts the directed link u→v. Self-loops are ignored; out-of-range
// endpoints panic (adversaries constructing edges out of range are bugs).
func (e *EdgeSet) Add(u, v int) {
	e.check(u)
	e.check(v)
	if u == v {
		return
	}
	if c := e.csr; c != nil {
		c.pairs = append(c.pairs, uint64(u)<<32|uint64(uint32(v)))
		c.dirty = true
		return
	}
	e.out[u*e.words+v/wordBits] |= 1 << (uint(v) % wordBits)
	e.in[v*e.words+u/wordBits] |= 1 << (uint(u) % wordBits)
}

// AddUnchecked is Add without the range validation and the self-loop
// drop: the caller guarantees 0 ≤ u,v < n and u ≠ v. It exists for bulk
// generators (the geometric-skip sampler) whose index arithmetic
// already establishes both invariants for every edge — revalidating per
// edge is measurable at sparse-bench scale. Everyone else wants Add.
func (e *EdgeSet) AddUnchecked(u, v int) {
	if c := e.csr; c != nil {
		c.pairs = append(c.pairs, uint64(u)<<32|uint64(uint32(v)))
		c.dirty = true
		return
	}
	e.out[u*e.words+v/wordBits] |= 1 << (uint(v) % wordBits)
	e.in[v*e.words+u/wordBits] |= 1 << (uint(u) % wordBits)
}

// Remove deletes the directed link u→v if present.
func (e *EdgeSet) Remove(u, v int) {
	e.check(u)
	e.check(v)
	if e.csr != nil {
		e.sparseRemove(u, v)
		return
	}
	e.out[u*e.words+v/wordBits] &^= 1 << (uint(v) % wordBits)
	e.in[v*e.words+u/wordBits] &^= 1 << (uint(u) % wordBits)
}

// Has reports whether the directed link u→v is present.
func (e *EdgeSet) Has(u, v int) bool {
	e.check(u)
	e.check(v)
	if e.csr != nil {
		return e.sparseHas(u, v)
	}
	return e.out[u*e.words+v/wordBits]&(1<<(uint(v)%wordBits)) != 0
}

// OutNeighbors returns u's outgoing neighbors in ascending order.
func (e *EdgeSet) OutNeighbors(u int) []int {
	e.check(u)
	if e.csr != nil {
		row := e.OutList(u)
		res := make([]int, len(row))
		for i, v := range row {
			res[i] = int(v)
		}
		return res
	}
	var res []int
	base := u * e.words
	for w := 0; w < e.words; w++ {
		bits := e.out[base+w]
		for bits != 0 {
			b := trailingZeros(bits)
			res = append(res, w*wordBits+b)
			bits &= bits - 1
		}
	}
	return res
}

// InNeighbors returns v's incoming neighbors in ascending order, by
// scanning v's transposed in-row word-wise.
func (e *EdgeSet) InNeighbors(v int) []int {
	return e.InNeighborsInto(v, nil)
}

// InNeighborsInto appends v's incoming neighbors to buf in ascending
// order and returns the extended slice. With a recycled buffer it
// allocates nothing: the scan walks v's in-row one word at a time and
// extracts set bits, so the cost is O(n/64 + in-degree) — this is the
// delivery core's sender gather.
func (e *EdgeSet) InNeighborsInto(v int, buf []int) []int {
	e.check(v)
	if e.csr != nil {
		for _, u := range e.InList(v) {
			buf = append(buf, int(u))
		}
		return buf
	}
	base := v * e.words
	for w := 0; w < e.words; w++ {
		bits := e.in[base+w]
		for bits != 0 {
			b := trailingZeros(bits)
			buf = append(buf, w*wordBits+b)
			bits &= bits - 1
		}
	}
	return buf
}

// InDegree returns the number of incoming links at v, word-wise.
func (e *EdgeSet) InDegree(v int) int {
	e.check(v)
	if e.csr != nil {
		return len(e.InList(v))
	}
	d := 0
	base := v * e.words
	for w := 0; w < e.words; w++ {
		d += popCount(e.in[base+w])
	}
	return d
}

// OutDegree returns the number of outgoing links at u.
func (e *EdgeSet) OutDegree(u int) int {
	e.check(u)
	if e.csr != nil {
		return len(e.OutList(u))
	}
	d := 0
	base := u * e.words
	for w := 0; w < e.words; w++ {
		d += popCount(e.out[base+w])
	}
	return d
}

// OutMissing counts the nodes in mask (a bitmap of MaskWords(n) words)
// that u has NO link towards — the word-wise core of the engines'
// suppressed-message accounting. The caller is responsible for masking
// out u itself when u is in mask: (u, u) is never a link, so it always
// counts as missing here.
func (e *EdgeSet) OutMissing(u int, mask []uint64) int {
	e.check(u)
	if len(mask) != e.words {
		panic(fmt.Sprintf("network: mask of %d words for %d-node set (want %d)", len(mask), e.n, e.words))
	}
	if e.csr != nil {
		// Nodes in the mask minus the out-neighbors that are in the mask.
		miss := 0
		for _, w := range mask {
			miss += popCount(w)
		}
		for _, v := range e.OutList(u) {
			if mask[int(v)/wordBits]&(1<<(uint(v)%wordBits)) != 0 {
				miss--
			}
		}
		return miss
	}
	base := u * e.words
	miss := 0
	for w := 0; w < e.words; w++ {
		miss += popCount(mask[w] &^ e.out[base+w])
	}
	return miss
}

// Len returns the total number of directed links.
func (e *EdgeSet) Len() int {
	if e.csr != nil {
		e.build()
		return int(e.csr.outStart[e.n])
	}
	total := 0
	for _, w := range e.out {
		total += popCount(w)
	}
	return total
}

// ForEachEdge calls fn for every link in sender-major, ascending-
// receiver order — the same order in either representation, so callers
// that fold the walk into randomized decisions (the chaos layer's storm
// filters) stay bit-identical across the dense/CSR switch. fn returning
// false stops the walk. The set must not be mutated during the walk.
func (e *EdgeSet) ForEachEdge(fn func(u, v int) bool) { e.forEachEdge(fn) }

// Clone returns a deep copy in the same representation.
func (e *EdgeSet) Clone() *EdgeSet {
	var c *EdgeSet
	if e.csr != nil {
		c = NewEdgeSetSparse(e.n)
	} else {
		c = NewEdgeSet(e.n)
	}
	c.CopyFrom(e)
	return c
}

// Reset removes every link, keeping the backing storage. It makes an
// engine-owned scratch set reusable round after round without
// allocating.
func (e *EdgeSet) Reset() {
	if e.csr != nil {
		e.sparseReset()
		return
	}
	clear(e.out)
	clear(e.in)
}

// CopyFrom overwrites e with other's links without allocating (beyond
// log growth in sparse mode). Both sets must share n; the
// representations may differ — e keeps its own.
func (e *EdgeSet) CopyFrom(other *EdgeSet) {
	if other.n != e.n {
		panic(fmt.Sprintf("network: copy between mismatched sizes %d and %d", e.n, other.n))
	}
	switch {
	case e.csr != nil && other.csr != nil:
		e.csr.pairs = append(e.csr.pairs[:0], other.csr.pairs...)
		e.csr.dirty = true
	case e.csr != nil:
		e.sparseLogFromDense(other)
	case other.csr != nil:
		clear(e.out)
		clear(e.in)
		other.forEachEdge(func(u, v int) bool {
			e.AddUnchecked(u, v)
			return true
		})
	default:
		copy(e.out, other.out)
		copy(e.in, other.in)
	}
}

// FillComplete overwrites e with the complete directed graph (every
// link except self-loops), word-wise — the zero-allocation counterpart
// of Complete(n). The complete graph is its own transpose, so both
// matrices get the same pattern. A sparse set converts to dense first:
// the complete graph IS dense, and logging n(n−1) pairs would defeat
// the representation.
func (e *EdgeSet) FillComplete() {
	if e.csr != nil {
		e.makeDense()
	}
	e.fillCompleteMatrix(e.out)
	e.fillCompleteMatrix(e.in)
}

func (e *EdgeSet) fillCompleteMatrix(m []uint64) {
	for i := range m {
		m[i] = ^uint64(0)
	}
	tail := ^uint64(0)
	if r := e.n % wordBits; r != 0 {
		tail = (uint64(1) << uint(r)) - 1
	}
	for u := 0; u < e.n; u++ {
		row := u * e.words
		m[row+e.words-1] &= tail
		m[row+u/wordBits] &^= 1 << (uint(u) % wordBits)
	}
}

// UnionWith merges other's links into e in place. Both sets must share
// n; the representations may differ.
func (e *EdgeSet) UnionWith(other *EdgeSet) {
	if other.n != e.n {
		panic(fmt.Sprintf("network: union of mismatched sizes %d and %d", e.n, other.n))
	}
	switch {
	case e.csr != nil && other.csr != nil:
		// The log admits duplicates (build dedups), so a union is an append.
		e.csr.pairs = append(e.csr.pairs, other.csr.pairs...)
		e.csr.dirty = true
	case e.csr != nil || other.csr != nil:
		other.forEachEdge(func(u, v int) bool {
			e.AddUnchecked(u, v)
			return true
		})
	default:
		for i, w := range other.out {
			e.out[i] |= w
		}
		for i, w := range other.in {
			e.in[i] |= w
		}
	}
}

// IntersectWith keeps only the links present in both sets, in place.
func (e *EdgeSet) IntersectWith(other *EdgeSet) {
	if other.n != e.n {
		panic(fmt.Sprintf("network: intersection of mismatched sizes %d and %d", e.n, other.n))
	}
	switch {
	case e.csr != nil:
		// Filter the log through other's membership; dedup happens at build.
		c := e.csr
		w := 0
		for _, p := range c.pairs {
			if other.Has(int(p>>32), int(uint32(p))) {
				c.pairs[w] = p
				w++
			}
		}
		c.pairs = c.pairs[:w]
		c.dirty = true
	case other.csr != nil:
		for u := 0; u < e.n; u++ {
			base := u * e.words
			for w := 0; w < e.words; w++ {
				bits := e.out[base+w]
				for bits != 0 {
					v := w*wordBits + trailingZeros(bits)
					bits &= bits - 1
					if !other.Has(u, v) {
						e.Remove(u, v)
					}
				}
			}
		}
	default:
		for i, w := range other.out {
			e.out[i] &= w
		}
		for i, w := range other.in {
			e.in[i] &= w
		}
	}
}

// Equal reports structural equality, regardless of representation.
func (e *EdgeSet) Equal(other *EdgeSet) bool {
	if other == nil || other.n != e.n {
		return false
	}
	if e.csr == nil && other.csr == nil {
		for i, w := range other.out {
			if e.out[i] != w {
				return false
			}
		}
		return true
	}
	// Mixed or sparse: same link count plus containment one way.
	if e.Len() != other.Len() {
		return false
	}
	equal := true
	e.forEachEdge(func(u, v int) bool {
		if !other.Has(u, v) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// Edges returns all directed links as (from, to) pairs in row order,
// useful for traces and tests.
func (e *EdgeSet) Edges() [][2]int {
	res := make([][2]int, 0, e.Len())
	e.forEachEdge(func(u, v int) bool {
		res = append(res, [2]int{u, v})
		return true
	})
	return res
}

// InRow exposes v's transposed in-row — the raw bitmap words of v's
// incoming neighbors, bit u of word w set iff u = 64w+b is a sender
// towards v. The slice aliases the set's backing storage and is valid
// only until the next mutation; callers must treat it as read-only.
// It exists for the simulation engines' fused gather, which turns the
// row's bits straight into deliveries without an intermediate neighbor
// list. Dense mode only — sparse callers use InList, the CSR row with
// the same ascending-sender iteration order.
func (e *EdgeSet) InRow(v int) []uint64 {
	if e.csr != nil {
		panic("network: InRow on a sparse EdgeSet (use InList)")
	}
	e.check(v)
	base := v * e.words
	return e.in[base : base+e.words : base+e.words]
}

// InBitsInto accumulates, into acc (length MaskWords(n)), the bitmap of
// v's incoming neighbors — a word-wise OR of v's transposed in-row.
// Used by the dynaDegree checker to union windows without allocating.
func (e *EdgeSet) InBitsInto(v int, acc []uint64) {
	e.check(v)
	if e.csr != nil {
		for _, u := range e.InList(v) {
			acc[int(u)/wordBits] |= 1 << (uint(u) % wordBits)
		}
		return
	}
	base := v * e.words
	for w := 0; w < e.words; w++ {
		acc[w] |= e.in[base+w]
	}
}

func (e *EdgeSet) check(v int) {
	if v < 0 || v >= e.n {
		panic(fmt.Sprintf("network: node %d out of range [0,%d)", v, e.n))
	}
}

func popCount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
