// Package network models the communication substrate of the anonymous
// dynamic network (§II-A): directed per-round edge sets chosen by the
// message adversary, receiver-local port numberings, dynamic-graph traces
// and the (T, D)-dynaDegree stability property (Definition 1).
package network

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// EdgeSet is one round's directed communication graph E(t) over nodes
// [0, n). The model has no self-loops (self-delivery is reliable and
// modeled inside the algorithms), so Add silently drops (u, u).
//
// The representation is a bitset row per source node; n is tiny compared
// to round counts in every experiment, and the dynaDegree checker unions
// thousands of these, so word-wise operations matter.
type EdgeSet struct {
	n     int
	words int
	out   []uint64 // out[u*words + w]: bitmap of u's outgoing neighbors
}

// NewEdgeSet returns an empty edge set over n nodes.
func NewEdgeSet(n int) *EdgeSet {
	if n < 1 {
		panic(fmt.Sprintf("network: invalid node count %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	return &EdgeSet{n: n, words: w, out: make([]uint64, n*w)}
}

// N returns the number of nodes.
func (e *EdgeSet) N() int { return e.n }

// Add inserts the directed link u→v. Self-loops are ignored; out-of-range
// endpoints panic (adversaries constructing edges out of range are bugs).
func (e *EdgeSet) Add(u, v int) {
	e.check(u)
	e.check(v)
	if u == v {
		return
	}
	e.out[u*e.words+v/wordBits] |= 1 << (uint(v) % wordBits)
}

// Remove deletes the directed link u→v if present.
func (e *EdgeSet) Remove(u, v int) {
	e.check(u)
	e.check(v)
	e.out[u*e.words+v/wordBits] &^= 1 << (uint(v) % wordBits)
}

// Has reports whether the directed link u→v is present.
func (e *EdgeSet) Has(u, v int) bool {
	e.check(u)
	e.check(v)
	return e.out[u*e.words+v/wordBits]&(1<<(uint(v)%wordBits)) != 0
}

// OutNeighbors returns u's outgoing neighbors in ascending order.
func (e *EdgeSet) OutNeighbors(u int) []int {
	e.check(u)
	var res []int
	base := u * e.words
	for w := 0; w < e.words; w++ {
		bits := e.out[base+w]
		for bits != 0 {
			b := trailingZeros(bits)
			res = append(res, w*wordBits+b)
			bits &= bits - 1
		}
	}
	return res
}

// InNeighbors returns v's incoming neighbors in ascending order. The
// scan is a strided column walk over row bitmaps with the (word, bit) of
// v precomputed, mirroring InBitsInto — not a per-row Has call.
func (e *EdgeSet) InNeighbors(v int) []int {
	e.check(v)
	word, bit := v/wordBits, uint64(1)<<(uint(v)%wordBits)
	var res []int
	for u, idx := 0, word; u < e.n; u, idx = u+1, idx+e.words {
		if e.out[idx]&bit != 0 {
			res = append(res, u)
		}
	}
	return res
}

// InDegree returns the number of incoming links at v, via the same
// strided column walk as InNeighbors.
func (e *EdgeSet) InDegree(v int) int {
	e.check(v)
	word, bit := v/wordBits, uint64(1)<<(uint(v)%wordBits)
	d := 0
	for idx, end := word, e.n*e.words; idx < end; idx += e.words {
		if e.out[idx]&bit != 0 {
			d++
		}
	}
	return d
}

// OutDegree returns the number of outgoing links at u.
func (e *EdgeSet) OutDegree(u int) int {
	e.check(u)
	d := 0
	base := u * e.words
	for w := 0; w < e.words; w++ {
		d += popCount(e.out[base+w])
	}
	return d
}

// Len returns the total number of directed links.
func (e *EdgeSet) Len() int {
	total := 0
	for _, w := range e.out {
		total += popCount(w)
	}
	return total
}

// Clone returns a deep copy.
func (e *EdgeSet) Clone() *EdgeSet {
	c := &EdgeSet{n: e.n, words: e.words, out: make([]uint64, len(e.out))}
	copy(c.out, e.out)
	return c
}

// Reset removes every link, keeping the backing storage. It makes an
// engine-owned scratch set reusable round after round without
// allocating.
func (e *EdgeSet) Reset() {
	clear(e.out)
}

// CopyFrom overwrites e with other's links without allocating. Both
// sets must share n.
func (e *EdgeSet) CopyFrom(other *EdgeSet) {
	if other.n != e.n {
		panic(fmt.Sprintf("network: copy between mismatched sizes %d and %d", e.n, other.n))
	}
	copy(e.out, other.out)
}

// FillComplete overwrites e with the complete directed graph (every
// link except self-loops), word-wise — the zero-allocation counterpart
// of Complete(n).
func (e *EdgeSet) FillComplete() {
	for i := range e.out {
		e.out[i] = ^uint64(0)
	}
	tail := ^uint64(0)
	if r := e.n % wordBits; r != 0 {
		tail = (uint64(1) << uint(r)) - 1
	}
	for u := 0; u < e.n; u++ {
		row := u * e.words
		e.out[row+e.words-1] &= tail
		e.out[row+u/wordBits] &^= 1 << (uint(u) % wordBits)
	}
}

// UnionWith merges other's links into e in place. Both sets must share n.
func (e *EdgeSet) UnionWith(other *EdgeSet) {
	if other.n != e.n {
		panic(fmt.Sprintf("network: union of mismatched sizes %d and %d", e.n, other.n))
	}
	for i, w := range other.out {
		e.out[i] |= w
	}
}

// IntersectWith keeps only the links present in both sets, in place.
func (e *EdgeSet) IntersectWith(other *EdgeSet) {
	if other.n != e.n {
		panic(fmt.Sprintf("network: intersection of mismatched sizes %d and %d", e.n, other.n))
	}
	for i, w := range other.out {
		e.out[i] &= w
	}
}

// Equal reports structural equality.
func (e *EdgeSet) Equal(other *EdgeSet) bool {
	if other == nil || other.n != e.n {
		return false
	}
	for i, w := range other.out {
		if e.out[i] != w {
			return false
		}
	}
	return true
}

// Edges returns all directed links as (from, to) pairs in row order,
// useful for traces and tests.
func (e *EdgeSet) Edges() [][2]int {
	res := make([][2]int, 0, e.Len())
	for u := 0; u < e.n; u++ {
		for _, v := range e.OutNeighbors(u) {
			res = append(res, [2]int{u, v})
		}
	}
	return res
}

// InBitsInto accumulates, into acc (length words), the bitmap of v's
// incoming neighbors. Used by the dynaDegree checker to union windows
// without allocating.
func (e *EdgeSet) InBitsInto(v int, acc []uint64) {
	e.check(v)
	word := v / wordBits
	bit := uint64(1) << (uint(v) % wordBits)
	for u := 0; u < e.n; u++ {
		if e.out[u*e.words+word]&bit != 0 {
			acc[u/wordBits] |= 1 << (uint(u) % wordBits)
		}
	}
}

func (e *EdgeSet) check(v int) {
	if v < 0 || v >= e.n {
		panic(fmt.Sprintf("network: node %d out of range [0,%d)", v, e.n))
	}
}

func popCount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
