package network

// Reachability and the prior stability properties of §II-B, so the
// paper's comparison between (T, D)-dynaDegree and earlier conditions is
// executable:
//
//   - rooted spanning tree ([10], [17], [38]): every round's graph has a
//     node that reaches all others;
//   - T-interval connectivity ([22]): every T-round window contains a
//     stable connected spanning subgraph (with bidirectional links; we
//     check the directed analogue on the intersection graph).
//
// Figure 1's schedule separates the notions: it satisfies
// (2,1)-dynaDegree yet has rootless (empty) rounds — pinned by tests.

// ReachableFrom returns the set of nodes reachable from start via
// directed links (including start itself), as a boolean vector.
func ReachableFrom(e *EdgeSet, start int) []bool {
	e.check(start)
	n := e.N()
	seen := make([]bool, n)
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range e.OutNeighbors(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// IsRoot reports whether node u reaches every other node.
func IsRoot(e *EdgeSet, u int) bool {
	seen := ReachableFrom(e, u)
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// Roots returns every node that reaches all others, ascending. An empty
// result means the round has no "coordinator" — allowed under
// (T, D)-dynaDegree, forbidden under the rooted-spanning-tree property.
func Roots(e *EdgeSet) []int {
	var roots []int
	for u := 0; u < e.N(); u++ {
		if IsRoot(e, u) {
			roots = append(roots, u)
		}
	}
	return roots
}

// HasRootedSpanningTree reports the per-round condition of [10],[17],[38]:
// some node reaches every other node in this round's graph.
func HasRootedSpanningTree(e *EdgeSet) bool {
	// A root must exist in every terminal strongly-connected component;
	// checking from node 0's reachable set first is a cheap heuristic,
	// but n is tiny here — test all candidates directly.
	for u := 0; u < e.N(); u++ {
		if IsRoot(e, u) {
			return true
		}
	}
	return false
}

// StronglyConnected reports whether every node reaches every other.
func StronglyConnected(e *EdgeSet) bool {
	n := e.N()
	if n == 1 {
		return true
	}
	// Forward reachability from 0 and reachability TO 0 (via the
	// transpose) suffice.
	fwd := ReachableFrom(e, 0)
	for _, s := range fwd {
		if !s {
			return false
		}
	}
	rev := reachableFromTranspose(e, 0)
	for _, s := range rev {
		if !s {
			return false
		}
	}
	return true
}

func reachableFromTranspose(e *EdgeSet, start int) []bool {
	n := e.N()
	seen := make([]bool, n)
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range e.InNeighbors(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// EveryRoundRooted reports whether every round of the trace satisfies
// the rooted-spanning-tree property.
func EveryRoundRooted(tr Trace) bool {
	for _, e := range tr {
		if !HasRootedSpanningTree(e) {
			return false
		}
	}
	return true
}

// TIntervalConnected reports the stability property of [22]: for every
// window of T consecutive rounds, the INTERSECTION of the window's
// graphs (the links stable throughout the window) is strongly connected.
// Kuhn et al. assume bidirectional links; on directed graphs strong
// connectivity of the stable subgraph is the natural analogue.
func TIntervalConnected(tr Trace, t int) bool {
	if t < 1 {
		panic("network: interval T must be ≥ 1")
	}
	if len(tr) < t {
		return true // vacuous, matching the dynaDegree checker
	}
	for start := 0; start+t <= len(tr); start++ {
		stable := tr[start].Clone()
		for r := start + 1; r < start+t; r++ {
			stable.IntersectWith(tr[r])
		}
		if !StronglyConnected(stable) {
			return false
		}
	}
	return true
}
