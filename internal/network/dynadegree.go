package network

// This file implements Definition 1, the (T, D)-dynaDegree stability
// property: a dynamic graph satisfies it when, for every window of T
// consecutive rounds, every fault-free node has incoming links from at
// least D distinct neighbors somewhere in the window.

// Trace is a finite prefix of a dynamic graph: Trace[t] = E(t).
type Trace []*EdgeSet

// AliveFunc reports whether a node had not crashed (and was following the
// protocol) when it broadcast in the given round. The "effective" checker
// uses it to ignore links whose sender was already silent — such a link
// exists in E(t) but delivers nothing, so it cannot contribute to the
// degree a fault-free node actually benefits from.
type AliveFunc func(round, node int) bool

// EveryoneAlive is the AliveFunc for fault-free executions.
func EveryoneAlive(round, node int) bool { return true }

// SatisfiesDynaDegree reports whether the trace satisfies
// (T, D)-dynaDegree for the given fault-free node set, counting raw links
// exactly as Definition 1 does (the incoming neighbor need not be
// fault-free — a link from a Byzantine node counts).
//
// Only windows that fit entirely inside the finite trace are checked; an
// empty window set (len(trace) < T) trivially satisfies the property.
func SatisfiesDynaDegree(trace Trace, faultFree []int, t, d int) bool {
	return worstWindowDegree(trace, faultFree, t, nil) >= d
}

// SatisfiesEffectiveDynaDegree is SatisfiesDynaDegree, but a link u→v in
// round r counts only if alive(r, u). This is the delivery-relevant
// variant used to reason about termination under crash faults.
func SatisfiesEffectiveDynaDegree(trace Trace, faultFree []int, t, d int, alive AliveFunc) bool {
	if alive == nil {
		alive = EveryoneAlive
	}
	return worstWindowDegree(trace, faultFree, t, alive) >= d
}

// MaxDynaDegree returns the largest D such that the trace satisfies
// (T, D)-dynaDegree for the given fault-free set, i.e. the minimum over
// all T-windows and all fault-free nodes of the distinct-in-neighbor
// count. A trace shorter than T yields n−1 (vacuous truth capped at the
// model maximum, since D ≤ n−1 by definition).
func MaxDynaDegree(trace Trace, faultFree []int, t int) int {
	return worstWindowDegree(trace, faultFree, t, nil)
}

// MinTForDegree returns the smallest window length T ≥ 1 for which the
// trace satisfies (T, D)-dynaDegree, or 0 when even T = len(trace) fails.
// Satisfaction is monotone in T (larger windows only add links), so a
// binary search over T is sound.
func MinTForDegree(trace Trace, faultFree []int, d int) int {
	if len(trace) == 0 {
		return 1
	}
	lo, hi := 1, len(trace)
	if worstWindowDegree(trace, faultFree, hi, nil) < d {
		return 0
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if worstWindowDegree(trace, faultFree, mid, nil) >= d {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// worstWindowDegree computes min over complete T-windows and fault-free
// nodes of the distinct (alive-filtered) in-neighbor count. When no
// complete window exists it returns n−1 (property is vacuous).
func worstWindowDegree(trace Trace, faultFree []int, t int, alive AliveFunc) int {
	if t < 1 {
		panic("network: dynaDegree window T must be ≥ 1")
	}
	if len(trace) == 0 || len(trace) < t {
		if len(trace) == 0 {
			return 0
		}
		return trace[0].N() - 1
	}
	n := trace[0].N()
	words := (n + wordBits - 1) / wordBits
	acc := make([]uint64, words)
	selfWord := make([]uint64, words)

	worst := n - 1
	for start := 0; start+t <= len(trace); start++ {
		for _, v := range faultFree {
			for i := range acc {
				acc[i] = 0
			}
			for r := start; r < start+t; r++ {
				if alive == nil {
					trace[r].InBitsInto(v, acc)
				} else {
					inBitsAlive(trace[r], v, r, alive, acc)
				}
			}
			// Self-loops never occur, but mask defensively so a buggy
			// adversary cannot inflate the degree with (v, v).
			for i := range selfWord {
				selfWord[i] = 0
			}
			selfWord[v/wordBits] = 1 << (uint(v) % wordBits)
			deg := 0
			for i := range acc {
				deg += popCount(acc[i] &^ selfWord[i])
			}
			if deg < worst {
				worst = deg
				if worst == 0 {
					return 0
				}
			}
		}
	}
	return worst
}

func inBitsAlive(e *EdgeSet, v, round int, alive AliveFunc, acc []uint64) {
	for u := 0; u < e.N(); u++ {
		if u != v && e.Has(u, v) && alive(round, u) {
			acc[u/wordBits] |= 1 << (uint(u) % wordBits)
		}
	}
}

// WindowUnion returns the static graph G_t of Definition 1: the union of
// E(start) … E(start+t−1).
func WindowUnion(trace Trace, start, t int) *EdgeSet {
	if start < 0 || t < 1 || start+t > len(trace) {
		panic("network: window out of trace bounds")
	}
	u := trace[start].Clone()
	for r := start + 1; r < start+t; r++ {
		u.UnionWith(trace[r])
	}
	return u
}
