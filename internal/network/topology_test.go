package network

import "testing"

func TestComplete(t *testing.T) {
	n := 5
	e := Complete(n)
	if got, want := e.Len(), n*(n-1); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	for v := 0; v < n; v++ {
		if e.InDegree(v) != n-1 {
			t.Errorf("InDegree(%d) = %d, want %d", v, e.InDegree(v), n-1)
		}
		if e.Has(v, v) {
			t.Errorf("self-loop at %d", v)
		}
	}
}

func TestRing(t *testing.T) {
	e := Ring(4)
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
	if !e.Has(3, 0) || !e.Has(0, 1) {
		t.Error("ring edges wrong")
	}
	if e.Has(1, 0) {
		t.Error("ring should be directed")
	}
}

func TestBidirectionalRing(t *testing.T) {
	e := BidirectionalRing(4)
	if e.Len() != 8 {
		t.Errorf("Len = %d, want 8", e.Len())
	}
	if !e.Has(1, 0) || !e.Has(0, 1) {
		t.Error("bidirectional ring missing a direction")
	}
}

func TestStar(t *testing.T) {
	e := Star(5, 2)
	if e.Len() != 8 {
		t.Errorf("Len = %d, want 8", e.Len())
	}
	for v := 0; v < 5; v++ {
		if v == 2 {
			continue
		}
		if !e.Has(2, v) || !e.Has(v, 2) {
			t.Errorf("star missing hub link for %d", v)
		}
	}
	mustPanic(t, func() { Star(5, 5) })
}

func TestInRegular(t *testing.T) {
	for _, tt := range []struct{ n, d, offset int }{
		{5, 2, 0}, {5, 2, 3}, {7, 3, 1}, {4, 3, 0}, {6, 1, 5}, {3, 2, 2},
	} {
		e := InRegular(tt.n, tt.d, tt.offset)
		for v := 0; v < tt.n; v++ {
			if got := e.InDegree(v); got != tt.d {
				t.Errorf("InRegular(%d,%d,%d): InDegree(%d) = %d, want %d",
					tt.n, tt.d, tt.offset, v, got, tt.d)
			}
			if e.Has(v, v) {
				t.Errorf("InRegular(%d,%d,%d): self-loop at %d", tt.n, tt.d, tt.offset, v)
			}
		}
	}
	mustPanic(t, func() { InRegular(5, 5, 0) })
	mustPanic(t, func() { InRegular(5, -1, 0) })
}

func TestInRegularRotationChangesNeighbors(t *testing.T) {
	// Consecutive offsets must rotate the in-neighbor sets; over n/d
	// rounds every node should accumulate all n−1 distinct neighbors.
	n, d := 7, 2
	tr := make(Trace, 4)
	for r := range tr {
		tr[r] = InRegular(n, d, (r*d)%n)
	}
	// 4 rounds × 2 fresh in-neighbors = 8 > 6, but overlaps cap at 6.
	if got := MaxDynaDegree(tr, allNodes(n), 4); got < 6 {
		t.Errorf("4-round union degree = %d, want n−1 = 6 (rotation too slow)", got)
	}
}

func TestGroupComplete(t *testing.T) {
	e := GroupComplete(6, []int{0, 1, 2}, []int{3, 4})
	if e.Len() != 6+2 {
		t.Errorf("Len = %d, want 8", e.Len())
	}
	if !e.Has(0, 2) || !e.Has(4, 3) {
		t.Error("intra-group edges missing")
	}
	if e.Has(2, 3) || e.Has(3, 0) {
		t.Error("cross-group edge present")
	}
	if e.InDegree(5) != 0 {
		t.Error("ungrouped node should be isolated")
	}
}
