package network

import (
	"math/rand"
	"testing"
)

// TestPortOfBijectivity: PortOf must agree with Port and invert Node on
// every numbering the package can build.
func TestPortOfBijectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	numberings := map[string]Numbering{
		"identity": IdentityNumbering(17),
		"random":   RandomNumbering(17, rng),
	}
	fromPerm, err := NumberingFromPerm([]int{2, 0, 1, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	numberings["fromPerm"] = fromPerm
	for name, p := range numberings {
		seen := make([]bool, p.N())
		for node := 0; node < p.N(); node++ {
			port := p.PortOf(node)
			if port != p.Port(node) {
				t.Fatalf("%s: PortOf(%d)=%d != Port=%d", name, node, port, p.Port(node))
			}
			if port < 0 || port >= p.N() {
				t.Fatalf("%s: PortOf(%d)=%d out of range", name, node, port)
			}
			if seen[port] {
				t.Fatalf("%s: port %d assigned twice", name, port)
			}
			seen[port] = true
			if back := p.Node(port); back != node {
				t.Fatalf("%s: Node(PortOf(%d)) = %d", name, node, back)
			}
		}
	}
}

// TestIsIdentityDetection: the cached identity flag must hold exactly
// for the identity bijection, however it was constructed.
func TestIsIdentityDetection(t *testing.T) {
	if !IdentityNumbering(9).IsIdentity() {
		t.Error("IdentityNumbering not flagged identity")
	}
	idPerm, err := NumberingFromPerm([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !idPerm.IsIdentity() {
		t.Error("identity perm via NumberingFromPerm not flagged")
	}
	swapped, err := NumberingFromPerm([]int{1, 0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if swapped.IsIdentity() {
		t.Error("non-identity perm flagged identity")
	}
	// A random numbering that happens to be the identity must be
	// detected too (n=1 always is).
	if !RandomNumbering(1, rand.New(rand.NewSource(1))).IsIdentity() {
		t.Error("n=1 random numbering is necessarily the identity")
	}
}
