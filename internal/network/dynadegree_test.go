package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fig1Trace builds the paper's Figure 1 schedule for `rounds` rounds:
// even rounds have links {(0,1),(1,0),(1,2),(2,1)}, odd rounds none.
// (Figure 1a shows round t odd = empty with 1-based indexing; only the
// alternation matters for the property.)
func fig1Trace(rounds int) Trace {
	even := NewEdgeSet(3)
	even.Add(0, 1)
	even.Add(1, 0)
	even.Add(1, 2)
	even.Add(2, 1)
	odd := NewEdgeSet(3)
	tr := make(Trace, rounds)
	for t := range tr {
		if t%2 == 0 {
			tr[t] = even
		} else {
			tr[t] = odd
		}
	}
	return tr
}

func allNodes(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func TestFig1DynaDegree(t *testing.T) {
	tr := fig1Trace(10)
	ff := allNodes(3)
	// The paper's example: (2,1)-dynaDegree holds, (1,1) does not.
	if !SatisfiesDynaDegree(tr, ff, 2, 1) {
		t.Error("(2,1)-dynaDegree should hold on Figure 1")
	}
	if SatisfiesDynaDegree(tr, ff, 1, 1) {
		t.Error("(1,1)-dynaDegree should fail on Figure 1 (odd rounds empty)")
	}
	// Node 1 has 2 in-neighbors on even rounds, nodes 0 and 2 only 1, so
	// (2,2) must fail.
	if SatisfiesDynaDegree(tr, ff, 2, 2) {
		t.Error("(2,2)-dynaDegree should fail on Figure 1")
	}
	if got := MaxDynaDegree(tr, ff, 2); got != 1 {
		t.Errorf("MaxDynaDegree(T=2) = %d, want 1", got)
	}
	if got := MaxDynaDegree(tr, ff, 1); got != 0 {
		t.Errorf("MaxDynaDegree(T=1) = %d, want 0", got)
	}
	if got := MinTForDegree(tr, ff, 1); got != 2 {
		t.Errorf("MinTForDegree(D=1) = %d, want 2", got)
	}
}

func TestDynaDegreeCompleteGraph(t *testing.T) {
	n := 6
	tr := Trace{Complete(n), Complete(n), Complete(n)}
	ff := allNodes(n)
	if !SatisfiesDynaDegree(tr, ff, 1, n-1) {
		t.Error("complete graph must satisfy (1, n−1)-dynaDegree")
	}
	if got := MaxDynaDegree(tr, ff, 1); got != n-1 {
		t.Errorf("MaxDynaDegree = %d, want %d", got, n-1)
	}
}

func TestDynaDegreeFaultFreeSubset(t *testing.T) {
	// Node 2 is isolated; the property over {0,1} must not care.
	n := 3
	e := NewEdgeSet(n)
	e.Add(0, 1)
	e.Add(1, 0)
	tr := Trace{e, e}
	if SatisfiesDynaDegree(tr, allNodes(n), 1, 1) {
		t.Error("isolated node 2 should break (1,1) over all nodes")
	}
	if !SatisfiesDynaDegree(tr, []int{0, 1}, 1, 1) {
		t.Error("(1,1) over fault-free {0,1} should hold")
	}
	// Links from a faulty node still count towards a fault-free node's
	// degree (Definition 1 counts any incoming neighbor).
	e2 := NewEdgeSet(n)
	e2.Add(2, 0)
	e2.Add(2, 1)
	tr2 := Trace{e2}
	if !SatisfiesDynaDegree(tr2, []int{0, 1}, 1, 1) {
		t.Error("links from node 2 must count for nodes 0,1")
	}
}

func TestEffectiveDynaDegree(t *testing.T) {
	// Node 2 is the only in-neighbor, but it "crashed" at round 1: the
	// raw property holds, the effective one fails from round 1 on.
	n := 3
	e := NewEdgeSet(n)
	e.Add(2, 0)
	e.Add(2, 1)
	e.Add(0, 1)
	tr := Trace{e, e, e}
	ff := []int{0, 1}
	alive := func(round, node int) bool { return node != 2 || round < 1 }
	if !SatisfiesDynaDegree(tr, ff, 1, 1) {
		t.Fatal("raw (1,1) should hold")
	}
	// Node 0's only in-neighbor is node 2; effectively it hears nobody
	// after round 0.
	if SatisfiesEffectiveDynaDegree(tr, ff, 1, 1, alive) {
		t.Error("effective (1,1) should fail once node 2 is dead")
	}
	if !SatisfiesEffectiveDynaDegree(tr, []int{1}, 1, 1, alive) {
		t.Error("node 1 still hears node 0: effective (1,1) over {1} should hold")
	}
	// nil alive must behave as EveryoneAlive.
	if !SatisfiesEffectiveDynaDegree(tr, ff, 1, 1, nil) {
		t.Error("nil alive should reduce to the raw property")
	}
}

func TestDynaDegreeShortTraceVacuous(t *testing.T) {
	tr := fig1Trace(1)
	ff := allNodes(3)
	// Window T=2 does not fit in a 1-round trace: vacuously true, max
	// degree capped at n−1.
	if !SatisfiesDynaDegree(tr, ff, 2, 2) {
		t.Error("no complete window: property must hold vacuously")
	}
	if got := MaxDynaDegree(tr, ff, 2); got != 2 {
		t.Errorf("vacuous MaxDynaDegree = %d, want n−1 = 2", got)
	}
	if got := MaxDynaDegree(Trace{}, ff, 1); got != 0 {
		t.Errorf("empty trace MaxDynaDegree = %d, want 0", got)
	}
}

func TestMinTForDegreeUnsatisfiable(t *testing.T) {
	n := 4
	empty := NewEdgeSet(n)
	tr := Trace{empty, empty, empty}
	if got := MinTForDegree(tr, allNodes(n), 1); got != 0 {
		t.Errorf("MinTForDegree on empty trace = %d, want 0", got)
	}
	if got := MinTForDegree(Trace{}, allNodes(n), 1); got != 1 {
		t.Errorf("MinTForDegree on zero-length trace = %d, want vacuous 1", got)
	}
}

func TestWindowUnion(t *testing.T) {
	a := NewEdgeSet(3)
	a.Add(0, 1)
	b := NewEdgeSet(3)
	b.Add(1, 2)
	tr := Trace{a, b}
	u := WindowUnion(tr, 0, 2)
	if !u.Has(0, 1) || !u.Has(1, 2) {
		t.Error("window union missing edges")
	}
	if u.Len() != 2 {
		t.Errorf("union Len = %d, want 2", u.Len())
	}
	mustPanic(t, func() { WindowUnion(tr, 1, 2) })
	mustPanic(t, func() { WindowUnion(tr, -1, 1) })
}

// TestDynaDegreeQuick: the word-wise checker agrees with a naive
// per-window recount on random traces, and satisfaction is monotone in
// T and antitone in D.
func TestDynaDegreeQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(3))}
	property := func(seed int64, nRaw, roundsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 2
		rounds := int(roundsRaw)%10 + 1
		tr := make(Trace, rounds)
		for r := range tr {
			e := NewEdgeSet(n)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u != v && rng.Float64() < 0.3 {
						e.Add(u, v)
					}
				}
			}
			tr[r] = e
		}
		ff := allNodes(n)
		for T := 1; T <= rounds; T++ {
			want := naiveWorstDegree(tr, ff, T)
			if got := MaxDynaDegree(tr, ff, T); got != want {
				t.Logf("n=%d rounds=%d T=%d: got %d want %d", n, rounds, T, got, want)
				return false
			}
			if T > 1 && MaxDynaDegree(tr, ff, T) < MaxDynaDegree(tr, ff, T-1) {
				t.Log("monotonicity in T violated")
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func naiveWorstDegree(tr Trace, ff []int, T int) int {
	if len(tr) < T {
		return tr[0].N() - 1
	}
	n := tr[0].N()
	worst := n - 1
	for start := 0; start+T <= len(tr); start++ {
		for _, v := range ff {
			in := make(map[int]bool)
			for r := start; r < start+T; r++ {
				for u := 0; u < n; u++ {
					if u != v && tr[r].Has(u, v) {
						in[u] = true
					}
				}
			}
			if len(in) < worst {
				worst = len(in)
			}
		}
	}
	return worst
}
