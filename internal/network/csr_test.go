package network

import (
	"math/rand"
	"testing"
)

// TestSparseDenseEquivalenceProperty drives a dense and a sparse
// EdgeSet through the same randomized mutation sequence — including
// duplicate adds, removals, resets, copies and set algebra against both
// representations — and asserts every observable agrees after each
// phase. This is the representation contract the engines rely on: a
// sparse set is indistinguishable from a dense one through the public
// API.
func TestSparseDenseEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(97)
		dense, sparse := NewEdgeSet(n), NewEdgeSetSparse(n)
		if sparse.IsSparse() == dense.IsSparse() {
			t.Fatal("representation flags must differ")
		}
		for step := 0; step < 30; step++ {
			switch op := rng.Intn(10); op {
			case 0: // burst of adds, duplicates included
				for k := 0; k < 1+rng.Intn(3*n); k++ {
					u, v := rng.Intn(n), rng.Intn(n)
					dense.Add(u, v)
					sparse.Add(u, v)
				}
			case 1: // remove a (maybe absent) link
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					dense.Remove(u, v)
					sparse.Remove(u, v)
				}
			case 2:
				dense.Reset()
				sparse.Reset()
			case 3:
				dense.FillComplete()
				sparse.FillComplete()
			case 4: // union with a random set, in the same and the other mode
				other := randomSet(rng, n, rng.Intn(2) == 0)
				dense.UnionWith(other)
				sparse.UnionWith(other)
			case 5: // intersect
				other := randomSet(rng, n, rng.Intn(2) == 0)
				dense.IntersectWith(other)
				sparse.IntersectWith(other)
			case 6: // cross-mode copy
				other := randomSet(rng, n, rng.Intn(2) == 0)
				dense.CopyFrom(other)
				sparse.CopyFrom(other)
			case 7: // clone and keep going on the clones
				dense, sparse = dense.Clone(), sparse.Clone()
			default: // more adds (bias toward content)
				for k := 0; k < 1+rng.Intn(n); k++ {
					u, v := rng.Intn(n), rng.Intn(n)
					if u != v {
						dense.AddUnchecked(u, v)
						sparse.AddUnchecked(u, v)
					}
				}
			}
			assertSame(t, dense, sparse, rng)
			if t.Failed() {
				t.Fatalf("diverged at trial %d step %d", trial, step)
			}
		}
	}
}

func randomSet(rng *rand.Rand, n int, sparseMode bool) *EdgeSet {
	var s *EdgeSet
	if sparseMode {
		s = NewEdgeSetSparse(n)
	} else {
		s = NewEdgeSet(n)
	}
	for k := 0; k < rng.Intn(2*n+1); k++ {
		s.Add(rng.Intn(n), rng.Intn(n))
	}
	return s
}

// assertSame checks every observable of the two sets against each other.
func assertSame(t *testing.T, dense, sparse *EdgeSet, rng *rand.Rand) {
	t.Helper()
	n := dense.N()
	if sparse.N() != n {
		t.Fatalf("n mismatch: %d vs %d", n, sparse.N())
	}
	if dl, sl := dense.Len(), sparse.Len(); dl != sl {
		t.Errorf("Len: dense %d, sparse %d", dl, sl)
		return
	}
	if !dense.Equal(sparse) || !sparse.Equal(dense) {
		t.Error("Equal disagrees across representations")
		return
	}
	mask := make([]uint64, MaskWords(n))
	for w := range mask {
		mask[w] = rng.Uint64()
	}
	if tail := n % 64; tail != 0 {
		mask[len(mask)-1] &= (1 << uint(tail)) - 1
	}
	accD := make([]uint64, MaskWords(n))
	accS := make([]uint64, MaskWords(n))
	for v := 0; v < n; v++ {
		if di, si := dense.InDegree(v), sparse.InDegree(v); di != si {
			t.Errorf("InDegree(%d): dense %d, sparse %d", v, di, si)
		}
		if do, so := dense.OutDegree(v), sparse.OutDegree(v); do != so {
			t.Errorf("OutDegree(%d): dense %d, sparse %d", v, do, so)
		}
		din := dense.InNeighborsInto(v, nil)
		sin := sparse.InNeighborsInto(v, nil)
		if !equalInts(din, sin) {
			t.Errorf("InNeighbors(%d): dense %v, sparse %v", v, din, sin)
		}
		if !equalInts(dense.OutNeighbors(v), sparse.OutNeighbors(v)) {
			t.Errorf("OutNeighbors(%d) differ", v)
		}
		if dm, sm := dense.OutMissing(v, mask), sparse.OutMissing(v, mask); dm != sm {
			t.Errorf("OutMissing(%d): dense %d, sparse %d", v, dm, sm)
		}
		clear(accD)
		clear(accS)
		dense.InBitsInto(v, accD)
		sparse.InBitsInto(v, accS)
		for w := range accD {
			if accD[w] != accS[w] {
				t.Errorf("InBitsInto(%d) word %d: %x vs %x", v, w, accD[w], accS[w])
			}
		}
		u := rng.Intn(n)
		if dh, sh := dense.Has(u, v), sparse.Has(u, v); dh != sh {
			t.Errorf("Has(%d,%d): dense %v, sparse %v", u, v, dh, sh)
		}
	}
	// CSR views agree with the bit rows, and Edges round-trips.
	de, se := dense.Edges(), sparse.Edges()
	if len(de) != len(se) {
		t.Errorf("Edges length: dense %d, sparse %d", len(de), len(se))
		return
	}
	for i := range de {
		if de[i] != se[i] {
			t.Errorf("Edges[%d]: dense %v, sparse %v", i, de[i], se[i])
			return
		}
	}
	if sparse.IsSparse() {
		starts, ids := sparse.InCSR()
		for v := 0; v < n; v++ {
			row := ids[starts[v]:starts[v+1]]
			din := dense.InNeighborsInto(v, nil)
			if len(row) != len(din) {
				t.Errorf("InCSR row %d length %d, want %d", v, len(row), len(din))
				continue
			}
			for i, u := range row {
				if int(u) != din[i] {
					t.Errorf("InCSR row %d entry %d: %d, want %d", v, i, u, din[i])
				}
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSparseResetKeepsZeroAllocRounds pins the headroom discipline: after
// warmup, a Reset + refill cycle at a steady edge count performs no
// allocations, including when a later round modestly exceeds the prior
// maximum (the log keeps 50% headroom over the high-water mark).
func TestSparseResetKeepsZeroAllocRounds(t *testing.T) {
	const n = 4096
	s := NewEdgeSetSparse(n)
	fill := func(edges int) {
		s.Reset()
		for k := 0; k < edges; k++ {
			u := (k * 2654435761) % n
			v := (u + 1 + k%(n-1)) % n
			s.AddUnchecked(u, v)
		}
		_ = s.Len() // force the build
	}
	fill(8 * n) // warmup establishes the watermark
	fill(8 * n)
	avg := testing.AllocsPerRun(20, func() { fill(8*n + 100) })
	if avg != 0 {
		t.Errorf("steady Reset+refill allocated %g times, want 0", avg)
	}
}

// TestFillCompleteConvertsSparse checks the representation change and
// that the converted set behaves like Complete(n).
func TestFillCompleteConvertsSparse(t *testing.T) {
	s := NewEdgeSetSparse(67)
	s.Add(1, 2)
	s.FillComplete()
	if s.IsSparse() {
		t.Fatal("FillComplete should convert to dense")
	}
	if got, want := s.Len(), 67*66; got != want {
		t.Fatalf("complete graph has %d links, want %d", got, want)
	}
	if s.Has(5, 5) {
		t.Fatal("self-loop present after FillComplete")
	}
}
