package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityNumbering(t *testing.T) {
	p := IdentityNumbering(5)
	for i := 0; i < 5; i++ {
		if p.Port(i) != i || p.Node(i) != i {
			t.Errorf("identity numbering broken at %d", i)
		}
	}
	if p.N() != 5 {
		t.Errorf("N = %d, want 5", p.N())
	}
}

func TestRandomNumberingIsBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(30) + 1
		p := RandomNumbering(n, rng)
		seen := make([]bool, n)
		for node := 0; node < n; node++ {
			port := p.Port(node)
			if port < 0 || port >= n {
				t.Fatalf("port %d out of range", port)
			}
			if seen[port] {
				t.Fatalf("port %d assigned twice", port)
			}
			seen[port] = true
			if p.Node(port) != node {
				t.Fatalf("inverse broken: Node(Port(%d)) = %d", node, p.Node(port))
			}
		}
	}
}

func TestNumberingFromPerm(t *testing.T) {
	p, err := NumberingFromPerm([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Port(0) != 2 || p.Node(2) != 0 {
		t.Error("explicit permutation not honored")
	}
	if _, err := NumberingFromPerm([]int{0, 0, 1}); err == nil {
		t.Error("duplicate port accepted")
	}
	if _, err := NumberingFromPerm([]int{0, 3, 1}); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestPortsCollections(t *testing.T) {
	ps := IdentityPorts(4)
	if len(ps) != 4 {
		t.Fatalf("len = %d, want 4", len(ps))
	}
	rng := rand.New(rand.NewSource(5))
	rp := RandomPorts(4, rng)
	if len(rp) != 4 {
		t.Fatalf("len = %d, want 4", len(rp))
	}
	for i, p := range rp {
		if p.N() != 4 {
			t.Errorf("numbering %d has N=%d", i, p.N())
		}
	}
}

// TestNumberingQuick: NumberingFromPerm accepts exactly the
// permutations, and Port/Node stay inverse.
func TestNumberingQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}
	property := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		p, err := NumberingFromPerm(perm)
		if err != nil {
			return false
		}
		for node := 0; node < n; node++ {
			if p.Node(p.Port(node)) != node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
