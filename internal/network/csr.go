package network

import (
	"fmt"
	"slices"
)

// SparseThreshold is the node count at which NewEdgeSetAuto switches
// from the dense bit-matrix representation to the sparse CSR one. The
// dense matrices cost 2·n·⌈n/64⌉ words regardless of how many links a
// round actually has: at n=4097 that is ~4.3 MB — past L2 on common
// parts, which is exactly where the measured per-edge round cost
// climbed from ~45 ns to ~73 ns — and at n=65537 it would be ~1 GB per
// set. The sparse representation costs O(n + edges) instead.
const SparseThreshold = 2048

// csrState is the sparse-mode representation behind an EdgeSet: a
// mutation log of packed (u,v) pairs plus lazily (re)built CSR views in
// both directions. The log is the source of truth — mutators only
// append to or filter it — and build() compacts it into sender-major
// (outStart/outList) and receiver-major (inStart/inList) adjacency the
// first time a reader needs one, deduplicating on the way (adversaries
// that layer extra links over a copied schedule may log one link
// twice; it must still deliver once).
type csrState struct {
	pairs []uint64 // mutation log, u<<32 | v per link (duplicates allowed)
	dirty bool     // log changed since the last build

	outStart []int32 // n+1 prefix offsets into outList
	outList  []int32 // receivers, ascending within each sender row
	inStart  []int32 // n+1 prefix offsets into inList
	inList   []int32 // senders, ascending within each receiver row

	cursor   []int32 // length-n scatter scratch for build
	maxPairs int     // high-water mark of the log, for headroom sizing
}

// NewEdgeSetSparse returns an empty edge set over n nodes in sparse CSR
// mode: no n×n bit-matrix is ever materialized, and storage scales with
// the number of links actually added. The full EdgeSet API works in
// either mode (except InRow, which is inherently a bitmap accessor);
// FillComplete converts the set to dense, because a complete graph is.
func NewEdgeSetSparse(n int) *EdgeSet {
	if n < 1 {
		panic(fmt.Sprintf("network: invalid node count %d", n))
	}
	return &EdgeSet{
		n:     n,
		words: MaskWords(n),
		csr: &csrState{
			outStart: make([]int32, n+1),
			inStart:  make([]int32, n+1),
			cursor:   make([]int32, n),
			dirty:    true,
		},
	}
}

// NewEdgeSetAuto picks the representation by size: dense bit matrices
// below SparseThreshold (word-wise iteration, O(1) Has), sparse CSR at
// and above it. Engine-owned per-round scratch sets use this, so the
// delivery core follows the representation that fits the cache at each
// scale.
func NewEdgeSetAuto(n int) *EdgeSet {
	if n >= SparseThreshold {
		return NewEdgeSetSparse(n)
	}
	return NewEdgeSet(n)
}

// IsSparse reports whether the set uses the sparse CSR representation.
func (e *EdgeSet) IsSparse() bool { return e.csr != nil }

// OutCSR exposes the sender-major CSR view: starts has n+1 prefix
// offsets and ids[starts[u]:starts[u+1]] lists u's receivers in
// ascending order. Sparse mode only; the slices alias internal storage,
// are valid until the next mutation, and must be treated as read-only.
func (e *EdgeSet) OutCSR() (starts, ids []int32) {
	c := e.mustSparse("OutCSR")
	e.build()
	return c.outStart, c.outList
}

// InCSR exposes the receiver-major CSR view: ids[starts[v]:starts[v+1]]
// lists v's senders in ascending order — the delivery core's gather
// rows. Same aliasing rules as OutCSR.
func (e *EdgeSet) InCSR() (starts, ids []int32) {
	c := e.mustSparse("InCSR")
	e.build()
	return c.inStart, c.inList
}

// InList returns v's senders in ascending order as a CSR row slice —
// the sparse counterpart of scanning InRow's bits. Sparse mode only;
// read-only, valid until the next mutation.
func (e *EdgeSet) InList(v int) []int32 {
	c := e.mustSparse("InList")
	e.check(v)
	e.build()
	return c.inList[c.inStart[v]:c.inStart[v+1]:c.inStart[v+1]]
}

// OutList returns u's receivers in ascending order as a CSR row slice.
// Sparse mode only; read-only, valid until the next mutation.
func (e *EdgeSet) OutList(u int) []int32 {
	c := e.mustSparse("OutList")
	e.check(u)
	e.build()
	return c.outList[c.outStart[u]:c.outStart[u+1]:c.outStart[u+1]]
}

func (e *EdgeSet) mustSparse(method string) *csrState {
	if e.csr == nil {
		panic("network: " + method + " on a dense EdgeSet")
	}
	return e.csr
}

// build compacts the mutation log into both CSR views: counting sort by
// sender, per-row ascending order, in-place dedup, then a second
// counting scatter for the transposed view. Cost O(n + log length);
// rows arrive already sorted from every in-place generator (they emit
// links in lexicographic or per-sender ascending order), so the sort is
// normally a verification scan.
func (e *EdgeSet) build() {
	c := e.csr
	if !c.dirty {
		return
	}
	c.dirty = false
	if len(c.pairs) > c.maxPairs {
		c.maxPairs = len(c.pairs)
	}
	n := e.n

	// Sender-major: count, prefix, scatter.
	clear(c.outStart)
	for _, p := range c.pairs {
		c.outStart[(p>>32)+1]++
	}
	for u := 0; u < n; u++ {
		c.outStart[u+1] += c.outStart[u]
	}
	copy(c.cursor, c.outStart[:n])
	c.outList = growInt32(c.outList, len(c.pairs))
	for _, p := range c.pairs {
		u := p >> 32
		c.outList[c.cursor[u]] = int32(uint32(p))
		c.cursor[u]++
	}

	// Sort each row if needed and dedup, compacting in place. The write
	// cursor never passes the read position within a row (w ≤ row start),
	// so the compaction is safe.
	w := int32(0)
	for u := 0; u < n; u++ {
		lo, hi := c.outStart[u], c.outStart[u+1]
		row := c.outList[lo:hi]
		if !sortedInt32(row) {
			slices.Sort(row)
		}
		c.outStart[u] = w
		prev := int32(-1)
		for _, v := range row {
			if v != prev {
				c.outList[w] = v
				w++
				prev = v
			}
		}
	}
	c.outStart[n] = w
	m := int(w)

	// Receiver-major transpose: senders land in ascending order because
	// the scatter walks senders in ascending order.
	clear(c.inStart)
	for _, v := range c.outList[:m] {
		c.inStart[v+1]++
	}
	for v := 0; v < n; v++ {
		c.inStart[v+1] += c.inStart[v]
	}
	copy(c.cursor, c.inStart[:n])
	c.inList = growInt32(c.inList, m)
	for u := 0; u < n; u++ {
		for _, v := range c.outList[c.outStart[u]:c.outStart[u+1]] {
			c.inList[c.cursor[v]] = int32(u)
			c.cursor[v]++
		}
	}
}

// sparseReset clears the log, keeping storage. The log slice is resized
// with 50% headroom over the all-time edge high-water mark, so a
// steady-state engine round that later sees a record edge count still
// appends without growing — the zero-alloc round budget depends on it.
func (e *EdgeSet) sparseReset() {
	c := e.csr
	if len(c.pairs) > c.maxPairs {
		c.maxPairs = len(c.pairs)
	}
	if want := c.maxPairs + c.maxPairs/2; cap(c.pairs) < want {
		c.pairs = make([]uint64, 0, want)
	} else {
		c.pairs = c.pairs[:0]
	}
	c.dirty = true
}

// sparseHas binary-searches u's out row.
func (e *EdgeSet) sparseHas(u, v int) bool {
	e.build()
	c := e.csr
	row := c.outList[c.outStart[u]:c.outStart[u+1]]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == int32(v)
}

// sparseRemove filters every occurrence of u→v out of the log.
func (e *EdgeSet) sparseRemove(u, v int) {
	c := e.csr
	pair := uint64(u)<<32 | uint64(uint32(v))
	w := 0
	for _, p := range c.pairs {
		if p != pair {
			c.pairs[w] = p
			w++
		}
	}
	if w != len(c.pairs) {
		c.pairs = c.pairs[:w]
		c.dirty = true
	}
}

// sparseLogFromDense rebuilds the log from a dense set's bit rows.
func (e *EdgeSet) sparseLogFromDense(other *EdgeSet) {
	c := e.csr
	c.pairs = c.pairs[:0]
	for u := 0; u < other.n; u++ {
		base := u * other.words
		for w := 0; w < other.words; w++ {
			bits := other.out[base+w]
			for bits != 0 {
				v := w*wordBits + trailingZeros(bits)
				bits &= bits - 1
				c.pairs = append(c.pairs, uint64(u)<<32|uint64(uint32(v)))
			}
		}
	}
	c.dirty = true
}

// makeDense converts a sparse set to the dense bit-matrix
// representation in place, allocating the 2·n·words backing. Used by
// FillComplete: a complete graph is dense by definition, so a sparse
// set asked to become one changes representation instead of logging
// n(n−1) pairs.
func (e *EdgeSet) makeDense() {
	if e.csr == nil {
		return
	}
	e.build()
	c := e.csr
	backing := make([]uint64, 2*e.n*e.words)
	e.out = backing[: e.n*e.words : e.n*e.words]
	e.in = backing[e.n*e.words:]
	for u := 0; u < e.n; u++ {
		for _, v := range c.outList[c.outStart[u]:c.outStart[u+1]] {
			e.out[u*e.words+int(v)/wordBits] |= 1 << (uint(v) % wordBits)
			e.in[int(v)*e.words+u/wordBits] |= 1 << (uint(u) % wordBits)
		}
	}
	e.csr = nil
}

// forEachEdge calls fn for every link in sender-major, ascending-
// receiver order — the representation-independent edge iterator Equal
// and Edges are built on. fn returning false stops the walk.
func (e *EdgeSet) forEachEdge(fn func(u, v int) bool) {
	if e.csr != nil {
		e.build()
		c := e.csr
		for u := 0; u < e.n; u++ {
			for _, v := range c.outList[c.outStart[u]:c.outStart[u+1]] {
				if !fn(u, int(v)) {
					return
				}
			}
		}
		return
	}
	for u := 0; u < e.n; u++ {
		base := u * e.words
		for w := 0; w < e.words; w++ {
			bits := e.out[base+w]
			for bits != 0 {
				v := w*wordBits + trailingZeros(bits)
				bits &= bits - 1
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// growInt32 returns a slice of length n, reusing buf's storage when it
// fits and reallocating with 25% headroom when it does not, so repeated
// builds at slowly growing edge counts settle into zero allocations.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n, n+n/4)
}

func sortedInt32(xs []int32) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
