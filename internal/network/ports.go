package network

import (
	"fmt"
	"math/rand"
)

// Numbering is one node's local port numbering: a bijection P_i from node
// IDs to ports {0, …, n−1} (§II-A; the paper uses 1…n, we use 0-based).
// The numbering is private to the node — two nodes may assign different
// ports to the same sender — and fixed for the whole execution, so a node
// can tell two senders apart and track repeated messages from one sender,
// but nodes can never translate ports into global identities.
type Numbering struct {
	toPort   []int // toPort[node] = port
	toNode   []int // toNode[port] = node
	identity bool  // toPort is the identity permutation (cached at build)
}

// IdentityNumbering maps node j to port j. Handy in tests; the algorithms
// must not behave differently under any other bijection (asserted by the
// permutation-invariance tests).
func IdentityNumbering(n int) Numbering {
	p := Numbering{toPort: make([]int, n), toNode: make([]int, n), identity: true}
	for i := 0; i < n; i++ {
		p.toPort[i] = i
		p.toNode[i] = i
	}
	return p
}

// RandomNumbering draws a uniformly random bijection using rng.
func RandomNumbering(n int, rng *rand.Rand) Numbering {
	perm := rng.Perm(n)
	p := Numbering{toPort: perm, toNode: make([]int, n)}
	for node, port := range perm {
		p.toNode[port] = node
	}
	p.identity = isIdentityPerm(perm)
	return p
}

func isIdentityPerm(perm []int) bool {
	for i, p := range perm {
		if p != i {
			return false
		}
	}
	return true
}

// NumberingFromPerm builds a numbering from an explicit permutation,
// where perm[node] = port. It validates bijectivity.
func NumberingFromPerm(perm []int) (Numbering, error) {
	n := len(perm)
	toNode := make([]int, n)
	seen := make([]bool, n)
	for node, port := range perm {
		if port < 0 || port >= n {
			return Numbering{}, fmt.Errorf("network: port %d out of range [0,%d)", port, n)
		}
		if seen[port] {
			return Numbering{}, fmt.Errorf("network: duplicate port %d", port)
		}
		seen[port] = true
		toNode[port] = node
	}
	toPort := make([]int, n)
	copy(toPort, perm)
	return Numbering{toPort: toPort, toNode: toNode, identity: isIdentityPerm(perm)}, nil
}

// N returns the size of the numbering.
func (p Numbering) N() int { return len(p.toPort) }

// Port returns the port this node uses for the given sender.
func (p Numbering) Port(node int) int { return p.toPort[node] }

// PortOf is the delivery core's sender→port lookup: identical to Port,
// named for the hot path where the engines map each gathered in-neighbor
// to its receiver-local port in O(1) off the dense toPort slice, keeping
// the whole gather at O(in-degree).
func (p Numbering) PortOf(node int) int { return p.toPort[node] }

// IsIdentity reports whether the numbering is the identity bijection
// (node j ↔ port j), cached at construction. The engines use it to skip
// the port-order sort: ascending-node in-neighbor iteration already IS
// ascending-port order under the identity numbering, which is the
// default for every simulation without explicit Ports.
func (p Numbering) IsIdentity() bool { return p.identity }

// Node returns the sender a port refers to. Only the simulation engine
// may call this — the algorithms themselves never learn the mapping.
func (p Numbering) Node(port int) int { return p.toNode[port] }

// Ports is the collection of every node's numbering for one execution.
type Ports []Numbering

// IdentityPorts gives every node the identity numbering. Numberings are
// immutable after construction, so all n entries share one — building
// the default ports costs O(n) instead of O(n²) and two allocations
// instead of 2n.
func IdentityPorts(n int) Ports {
	ps := make(Ports, n)
	id := IdentityNumbering(n)
	for i := range ps {
		ps[i] = id
	}
	return ps
}

// RandomPorts draws an independent random numbering per node.
func RandomPorts(n int, rng *rand.Rand) Ports {
	ps := make(Ports, n)
	for i := range ps {
		ps[i] = RandomNumbering(n, rng)
	}
	return ps
}
