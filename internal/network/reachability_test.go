package network

import (
	"reflect"
	"testing"
)

func TestReachableFrom(t *testing.T) {
	e := NewEdgeSet(4)
	e.Add(0, 1)
	e.Add(1, 2)
	got := ReachableFrom(e, 0)
	want := []bool{true, true, true, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReachableFrom(0) = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(ReachableFrom(e, 3), []bool{false, false, false, true}) {
		t.Error("isolated node should only reach itself")
	}
}

func TestRootsAndRootedSpanningTree(t *testing.T) {
	// A directed path 0→1→2: only 0 is a root.
	path := NewEdgeSet(3)
	path.Add(0, 1)
	path.Add(1, 2)
	if got := Roots(path); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Roots(path) = %v, want [0]", got)
	}
	if !HasRootedSpanningTree(path) {
		t.Error("path has a root")
	}
	// Two disjoint components: no root.
	split := NewEdgeSet(4)
	split.Add(0, 1)
	split.Add(2, 3)
	if HasRootedSpanningTree(split) {
		t.Error("disconnected graph has no root")
	}
	// The empty graph on >1 node: no root.
	if HasRootedSpanningTree(NewEdgeSet(3)) {
		t.Error("empty graph has no root")
	}
	// A single node is trivially a root of itself.
	if !HasRootedSpanningTree(NewEdgeSet(1)) {
		t.Error("singleton should be rooted")
	}
}

func TestStronglyConnected(t *testing.T) {
	if !StronglyConnected(Ring(5)) {
		t.Error("directed ring is strongly connected")
	}
	path := NewEdgeSet(3)
	path.Add(0, 1)
	path.Add(1, 2)
	if StronglyConnected(path) {
		t.Error("path is not strongly connected")
	}
	if !StronglyConnected(NewEdgeSet(1)) {
		t.Error("singleton is strongly connected")
	}
	if !StronglyConnected(Complete(4)) {
		t.Error("complete graph is strongly connected")
	}
}

func TestIntersectWith(t *testing.T) {
	a := NewEdgeSet(3)
	a.Add(0, 1)
	a.Add(1, 2)
	b := NewEdgeSet(3)
	b.Add(0, 1)
	b.Add(2, 0)
	a.IntersectWith(b)
	if !a.Has(0, 1) || a.Has(1, 2) || a.Has(2, 0) {
		t.Errorf("intersection wrong: %v", a.Edges())
	}
	mustPanic(t, func() { a.IntersectWith(NewEdgeSet(4)) })
}

// TestFig1SeparatesStabilityProperties is the executable §II-B
// comparison: Figure 1's dynamic graph satisfies (2,1)-dynaDegree but
// has rootless rounds (so the rooted-spanning-tree property of
// [10],[17],[38] fails) and is not even 1-interval connected (so the
// T-interval connectivity of [22] fails for every T — the empty odd
// rounds kill any stable spanning subgraph).
func TestFig1SeparatesStabilityProperties(t *testing.T) {
	tr := fig1Trace(8)
	ff := allNodes(3)
	if !SatisfiesDynaDegree(tr, ff, 2, 1) {
		t.Fatal("(2,1)-dynaDegree must hold")
	}
	if EveryRoundRooted(tr) {
		t.Error("odd rounds are empty: rooted-spanning-tree must fail")
	}
	// Even rounds alone ARE rooted (node 1 reaches 0 and 2).
	if !HasRootedSpanningTree(tr[0]) {
		t.Error("the even-round graph is rooted via node 1")
	}
	for _, T := range []int{1, 2, 4} {
		if TIntervalConnected(tr, T) {
			t.Errorf("%d-interval connectivity should fail (empty rounds)", T)
		}
	}
}

// TestRootedButLowDynaDegree shows the separation in the other
// direction: a star rotating its hub is rooted every round, yet gives
// leaf nodes only 1 incoming link per round — (1,1)-dynaDegree, far
// below the consensus threshold. Neither property subsumes the other.
func TestRootedButLowDynaDegree(t *testing.T) {
	n := 6
	tr := make(Trace, 4)
	for r := range tr {
		e := NewEdgeSet(n)
		hub := r % n
		for v := 0; v < n; v++ {
			if v != hub {
				e.Add(hub, v) // out-star: hub reaches everyone directly
			}
		}
		e.Add((hub+1)%n, hub) // one return link so the hub also hears someone
		tr[r] = e
	}
	if !EveryRoundRooted(tr) {
		t.Fatal("out-star is rooted at the hub")
	}
	if got := MaxDynaDegree(tr, allNodes(n), 1); got != 1 {
		t.Errorf("per-round dynaDegree = %d, want 1", got)
	}
}

func TestTIntervalConnectedStableGraph(t *testing.T) {
	// A static strongly-connected graph is T-interval connected for all T.
	tr := Trace{Ring(4), Ring(4), Ring(4)}
	for _, T := range []int{1, 2, 3} {
		if !TIntervalConnected(tr, T) {
			t.Errorf("static ring should be %d-interval connected", T)
		}
	}
	// Alternating between two edge-disjoint rings: each round is
	// strongly connected, but no link is stable across two rounds.
	a := Ring(4)
	b := NewEdgeSet(4)
	b.Add(0, 3)
	b.Add(3, 2)
	b.Add(2, 1)
	b.Add(1, 0)
	alt := Trace{a, b, a, b}
	if !TIntervalConnected(alt, 1) {
		t.Error("each round alone is strongly connected")
	}
	if TIntervalConnected(alt, 2) {
		t.Error("no stable subgraph across rounds: 2-interval must fail")
	}
	// Vacuous window.
	if !TIntervalConnected(Trace{a}, 2) {
		t.Error("window larger than trace is vacuous")
	}
	mustPanic(t, func() { TIntervalConnected(alt, 0) })
}
