// Package metrics is the observability spine of the reproduction: a
// Sink interface the engines, the hub transport, the batch harness and
// the shard coordinator all emit into, and a lock-cheap Collector that
// aggregates those emissions into snapshots (rounds/sec, deliveries per
// round, convergence progress, per-shard runs-completed, worker
// utilization) suitable for live NDJSON streaming.
//
// Two design rules keep metrics honest:
//
//   - Samples are deterministic. RoundSample and RunSample carry only
//     values derived from the execution itself — never wall-clock time —
//     so two runs of the same seed emit identical series. Every
//     wall-clock-derived quantity lives exclusively in the Timing
//     sub-struct of a Snapshot.
//
//   - Sinks never influence results. The engines treat the sink as a
//     pure tap: it cannot change code-path selection, delivery order, or
//     any Result field (pinned by the metrics-parity property tests).
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RoundSample is one engine (or hub) round, as seen at its end. All
// fields are deterministic functions of the execution.
type RoundSample struct {
	// Round is the zero-based round index within its run.
	Round int
	// Delivered counts messages delivered this round; Lost counts
	// messages the adversary suppressed (alive sender, eligible
	// receiver, no link).
	Delivered int
	Lost      int
	// Running counts the nodes still running at the end of the round
	// (fault-free and not yet crashed); Decided counts the non-Byzantine
	// nodes that have produced an output so far.
	Running int
	Decided int
	// Range is the spread max−min of the running nodes' values at the
	// end of the round — the convergence progress the paper's
	// ε-agreement bounds (zero when no node is running).
	Range float64
}

// RunSample is one completed execution, emitted by the batch layer as
// results are folded in deterministic run order.
type RunSample struct {
	// Decided reports whether every fault-free node produced an output
	// within the round budget.
	Decided bool
	// Rounds is the number of rounds the run executed.
	Rounds int
	// Delivered and Lost are the run's message totals.
	Delivered int
	Lost      int
}

// Sink receives metrics emissions. Implementations must be fast and
// allocation-free on RoundDone (it sits next to the engines' zero-alloc
// steady round) and safe for concurrent use when shared across batch
// workers. A nil Sink everywhere means metrics are off and cost nothing.
type Sink interface {
	// RoundDone fires after every synchronous round.
	RoundDone(RoundSample)
	// RunDone fires after every completed execution of a batch.
	RunDone(RunSample)
}

// ShardStat is one shard's live progress as aggregated by a sweep
// coordinator (local pool shards or remote dynagrid workers). Sweep
// segregates concurrent sweeps sharing one collector — a control plane
// running several sweeps folds all their telemetry into its global
// collector, and shard indices restart at 0 per sweep.
type ShardStat struct {
	Sweep     int    `json:"sweep"`
	Shard     int    `json:"shard"`
	Runs      uint64 `json:"runs"`
	Rounds    uint64 `json:"rounds"`
	Delivered uint64 `json:"delivered"`
}

// shardKey identifies one shard of one sweep in the collector's table.
type shardKey struct{ sweep, shard int }

// Timing segregates every wall-clock-derived quantity of a Snapshot.
// Nothing outside this struct may depend on real time: tests compare
// snapshots and sample series with Timing zeroed, and the determinism
// contract of the rest of the Snapshot is pinned by
// TestMetricsSeriesDeterminism.
type Timing struct {
	// ElapsedSec is the wall time since the Collector was created (or
	// last Reset).
	ElapsedSec float64 `json:"elapsed_sec"`
	// RoundsPerSec and RunsPerSec are cumulative rates over ElapsedSec.
	RoundsPerSec float64 `json:"rounds_per_sec"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	// Utilization is busy workers over pool size, 0 when no pool
	// reported in.
	Utilization float64 `json:"utilization"`
}

// Snapshot is one point-in-time aggregate view of a Collector. All
// fields except Timing are deterministic counters/gauges; gauges
// (Range, Running, Decided) hold the most recent sample's value, which
// under concurrent engines is a last-writer-wins race by design.
type Snapshot struct {
	// Rounds, Delivered, Lost accumulate over every RoundDone.
	Rounds    uint64 `json:"rounds"`
	Delivered uint64 `json:"delivered"`
	Lost      uint64 `json:"lost"`
	// Runs counts RunDone emissions; RunsDecided the subset that
	// decided; RunRounds their summed round counts.
	Runs        uint64 `json:"runs"`
	RunsDecided uint64 `json:"runs_decided"`
	RunRounds   uint64 `json:"run_rounds"`
	// Range, Running, Decided mirror the latest RoundSample.
	Range   float64 `json:"range"`
	Running int     `json:"running"`
	Decided int     `json:"decided"`
	// Workers is the reported pool size; Busy the workers currently
	// executing a run.
	Workers int `json:"workers"`
	Busy    int `json:"busy"`
	// Shards carries per-shard progress when a coordinator folds worker
	// telemetry in, sorted by shard index.
	Shards []ShardStat `json:"shards,omitempty"`
	Timing Timing      `json:"timing"`
}

// Collector is the lock-cheap Sink: every hot-path emission is a handful
// of atomic adds/stores (no locks, no allocation), so it can sit on the
// engines' zero-alloc steady round and be shared across a worker pool.
// The per-shard table, fed at coordinator frame rate rather than round
// rate, is the only mutex-guarded state. The zero value is NOT ready;
// use NewCollector (it stamps the wall-clock epoch Timing derives from).
type Collector struct {
	startNanos atomic.Int64

	rounds    atomic.Uint64
	delivered atomic.Uint64
	lost      atomic.Uint64

	runs        atomic.Uint64
	runsDecided atomic.Uint64
	runRounds   atomic.Uint64

	rangeBits atomic.Uint64
	running   atomic.Int64
	decided   atomic.Int64

	workers atomic.Int64
	busy    atomic.Int64

	mu     sync.Mutex
	shards map[shardKey]ShardStat
}

// NewCollector returns a Collector whose Timing epoch is now.
func NewCollector() *Collector {
	c := &Collector{}
	c.startNanos.Store(time.Now().UnixNano())
	return c
}

// RoundDone implements Sink. Safe on a nil receiver (no-op).
func (c *Collector) RoundDone(s RoundSample) {
	if c == nil {
		return
	}
	c.rounds.Add(1)
	c.delivered.Add(uint64(s.Delivered))
	c.lost.Add(uint64(s.Lost))
	c.rangeBits.Store(math.Float64bits(s.Range))
	c.running.Store(int64(s.Running))
	c.decided.Store(int64(s.Decided))
}

// RunDone implements Sink. Safe on a nil receiver (no-op).
func (c *Collector) RunDone(s RunSample) {
	if c == nil {
		return
	}
	c.runs.Add(1)
	if s.Decided {
		c.runsDecided.Add(1)
	}
	c.runRounds.Add(uint64(s.Rounds))
}

// PoolStart records the size of a worker pool that is about to feed
// this collector (harness.PoolObserver).
func (c *Collector) PoolStart(workers int) {
	if c == nil {
		return
	}
	c.workers.Store(int64(workers))
}

// WorkerBusy adjusts the busy-worker gauge by delta (+1 as a worker
// picks up a run, −1 as it finishes one; harness.PoolObserver).
func (c *Collector) WorkerBusy(delta int) {
	if c == nil {
		return
	}
	c.busy.Add(int64(delta))
}

// ShardProgress replaces one shard's live counters — absolute values,
// not deltas, so retransmitted or monotone worker frames fold
// idempotently. The (Sweep, Shard) pair keys the table, so concurrent
// sweeps never clobber each other's rows. Called at coordinator frame
// rate, never per round.
func (c *Collector) ShardProgress(s ShardStat) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.shards == nil {
		c.shards = make(map[shardKey]ShardStat)
	}
	c.shards[shardKey{s.Sweep, s.Shard}] = s
	c.mu.Unlock()
}

// Snapshot captures the current aggregate view.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Rounds:      c.rounds.Load(),
		Delivered:   c.delivered.Load(),
		Lost:        c.lost.Load(),
		Runs:        c.runs.Load(),
		RunsDecided: c.runsDecided.Load(),
		RunRounds:   c.runRounds.Load(),
		Range:       math.Float64frombits(c.rangeBits.Load()),
		Running:     int(c.running.Load()),
		Decided:     int(c.decided.Load()),
		Workers:     int(c.workers.Load()),
		Busy:        int(c.busy.Load()),
	}
	c.mu.Lock()
	if len(c.shards) > 0 {
		s.Shards = make([]ShardStat, 0, len(c.shards))
		for _, st := range c.shards {
			s.Shards = append(s.Shards, st)
		}
	}
	c.mu.Unlock()
	sort.Slice(s.Shards, func(i, j int) bool {
		if s.Shards[i].Sweep != s.Shards[j].Sweep {
			return s.Shards[i].Sweep < s.Shards[j].Sweep
		}
		return s.Shards[i].Shard < s.Shards[j].Shard
	})

	elapsed := time.Since(time.Unix(0, c.startNanos.Load())).Seconds()
	s.Timing.ElapsedSec = elapsed
	if elapsed > 0 {
		s.Timing.RoundsPerSec = float64(s.Rounds) / elapsed
		s.Timing.RunsPerSec = float64(s.Runs) / elapsed
	}
	if s.Workers > 0 {
		s.Timing.Utilization = float64(s.Busy) / float64(s.Workers)
	}
	return s
}

// SeriesSink records every sample it receives, in emission order — the
// test and offline-analysis sink. Not safe for concurrent use; attach
// it to single-worker (sequential) runs only.
type SeriesSink struct {
	RoundSamples []RoundSample
	RunSamples   []RunSample
}

// RoundDone implements Sink.
func (s *SeriesSink) RoundDone(r RoundSample) { s.RoundSamples = append(s.RoundSamples, r) }

// RunDone implements Sink.
func (s *SeriesSink) RunDone(r RunSample) { s.RunSamples = append(s.RunSamples, r) }

// Tee fans each emission out to every non-nil sink, in order.
func Tee(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeSink(live)
}

type teeSink []Sink

func (t teeSink) RoundDone(s RoundSample) {
	for _, sk := range t {
		sk.RoundDone(s)
	}
}

func (t teeSink) RunDone(s RunSample) {
	for _, sk := range t {
		sk.RunDone(s)
	}
}

// PoolStart and WorkerBusy forward to every sink that observes pools,
// so a Tee that includes a Collector still satisfies
// harness.PoolObserver structurally.
func (t teeSink) PoolStart(workers int) {
	for _, sk := range t {
		if po, ok := sk.(interface{ PoolStart(int) }); ok {
			po.PoolStart(workers)
		}
	}
}

func (t teeSink) WorkerBusy(delta int) {
	for _, sk := range t {
		if po, ok := sk.(interface{ WorkerBusy(int) }); ok {
			po.WorkerBusy(delta)
		}
	}
}

// Streamer periodically writes Collector snapshots as NDJSON (one JSON
// object per line) until closed; Close writes one final snapshot so
// short runs still produce at least one line.
type Streamer struct {
	c        *Collector
	w        io.WriteCloser
	stop     chan struct{}
	done     chan struct{}
	mu       sync.Mutex
	writeErr error
}

// StreamNDJSON starts streaming snapshots of c to w every interval (a
// non-positive interval defaults to one second). The caller must Close
// the returned Streamer; Close also closes w.
func StreamNDJSON(c *Collector, w io.WriteCloser, interval time.Duration) *Streamer {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Streamer{c: c, w: w, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.write()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

func (s *Streamer) write() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writeErr != nil {
		return
	}
	enc := json.NewEncoder(s.w)
	if err := enc.Encode(s.c.Snapshot()); err != nil {
		s.writeErr = err
	}
}

// Close stops the ticker, writes a final snapshot line, and closes the
// underlying writer. It returns the first write error, if any.
func (s *Streamer) Close() error {
	close(s.stop)
	<-s.done
	s.write()
	err := s.w.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writeErr != nil {
		return s.writeErr
	}
	return err
}

// Start is the CLI-facing assembly of a -metrics flag: for an empty
// target it returns a nil collector (attach freely — nil methods are
// no-ops — but prefer leaving sinks nil so the engines keep their
// fast paths) and a no-op closer; otherwise it creates a collector,
// opens the target, and streams NDJSON snapshots at the given interval
// until the closer runs.
func Start(target string, interval time.Duration) (*Collector, func() error, error) {
	if target == "" {
		return nil, func() error { return nil }, nil
	}
	w, err := Open(target)
	if err != nil {
		return nil, nil, err
	}
	c := NewCollector()
	s := StreamNDJSON(c, w, interval)
	return c, s.Close, nil
}

// Open resolves a -metrics destination: a "host:port" address dials
// TCP, anything else creates (truncates) a file at that path. The
// address form must split cleanly into a host and an all-digit port and
// contain no path separator, so "metrics.ndjson" and "out/m.json" are
// files while "127.0.0.1:9000" and "[::1]:9000" dial.
func Open(target string) (io.WriteCloser, error) {
	if isAddr(target) {
		return net.DialTimeout("tcp", target, 5*time.Second)
	}
	return os.Create(target)
}

func isAddr(s string) bool {
	if strings.ContainsAny(s, `/\`) {
		return false
	}
	_, port, err := net.SplitHostPort(s)
	if err != nil || port == "" {
		return false
	}
	for _, r := range port {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
