package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.RoundDone(RoundSample{Delivered: 3})
	c.RunDone(RunSample{Decided: true})
	c.PoolStart(4)
	c.WorkerBusy(1)
	c.ShardProgress(ShardStat{Shard: 1})
	if snap := c.Snapshot(); !reflect.DeepEqual(snap, Snapshot{}) {
		t.Errorf("nil collector snapshot = %+v, want zero", snap)
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	c.RoundDone(RoundSample{Round: 0, Delivered: 10, Lost: 2, Running: 9, Decided: 0, Range: 1})
	c.RoundDone(RoundSample{Round: 1, Delivered: 8, Lost: 4, Running: 9, Decided: 3, Range: 0.25})
	c.RunDone(RunSample{Decided: true, Rounds: 12})
	c.RunDone(RunSample{Decided: false, Rounds: 40})
	c.PoolStart(4)
	c.WorkerBusy(1)
	c.WorkerBusy(1)
	c.WorkerBusy(-1)

	s := c.Snapshot()
	if s.Rounds != 2 || s.Delivered != 18 || s.Lost != 6 {
		t.Errorf("round counters = %d/%d/%d, want 2/18/6", s.Rounds, s.Delivered, s.Lost)
	}
	if s.Runs != 2 || s.RunsDecided != 1 || s.RunRounds != 52 {
		t.Errorf("run counters = %d/%d/%d, want 2/1/52", s.Runs, s.RunsDecided, s.RunRounds)
	}
	// Gauges carry the latest sample.
	if s.Range != 0.25 || s.Running != 9 || s.Decided != 3 {
		t.Errorf("gauges = %g/%d/%d, want 0.25/9/3", s.Range, s.Running, s.Decided)
	}
	if s.Workers != 4 || s.Busy != 1 {
		t.Errorf("pool = %d busy of %d, want 1 of 4", s.Busy, s.Workers)
	}
	if u := s.Timing.Utilization; u != 0.25 {
		t.Errorf("utilization = %g, want 0.25", u)
	}
}

// TestShardProgressIdempotent: frames carry absolute values, so
// replaying one must not change the fold, and the snapshot's shard
// table is sorted by index.
func TestShardProgressIdempotent(t *testing.T) {
	c := NewCollector()
	c.ShardProgress(ShardStat{Shard: 2, Runs: 5, Rounds: 100})
	c.ShardProgress(ShardStat{Shard: 0, Runs: 3})
	c.ShardProgress(ShardStat{Shard: 2, Runs: 5, Rounds: 100}) // replayed
	c.ShardProgress(ShardStat{Shard: 2, Runs: 7, Rounds: 140}) // progressed

	got := c.Snapshot().Shards
	want := []ShardStat{{Shard: 0, Runs: 3}, {Shard: 2, Runs: 7, Rounds: 140}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shards = %+v, want %+v", got, want)
	}
}

// TestShardProgressSegregatesSweeps: concurrent sweeps share one
// collector without clobbering each other's shard rows — shard 0 of
// sweep 1 and shard 0 of sweep 2 are distinct keys, and the snapshot
// sorts by (sweep, shard).
func TestShardProgressSegregatesSweeps(t *testing.T) {
	c := NewCollector()
	c.ShardProgress(ShardStat{Sweep: 2, Shard: 0, Runs: 9})
	c.ShardProgress(ShardStat{Sweep: 1, Shard: 1, Runs: 4})
	c.ShardProgress(ShardStat{Sweep: 1, Shard: 0, Runs: 3})
	c.ShardProgress(ShardStat{Sweep: 2, Shard: 0, Runs: 11}) // progressed, same key

	got := c.Snapshot().Shards
	want := []ShardStat{
		{Sweep: 1, Shard: 0, Runs: 3},
		{Sweep: 1, Shard: 1, Runs: 4},
		{Sweep: 2, Shard: 0, Runs: 11},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shards = %+v, want %+v", got, want)
	}
}

// TestTee: nil sinks are filtered (0 live → nil, 1 live → the sink
// itself), fan-out reaches every sink, and the pool-observer methods
// forward through the tee so a teed Collector still tracks its pool.
func TestTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Error("all-nil tee is not nil")
	}
	c := NewCollector()
	if got := Tee(nil, c); got != Sink(c) {
		t.Errorf("single-sink tee = %T, want the collector itself", got)
	}

	ss := &SeriesSink{}
	teed := Tee(ss, c)
	teed.RoundDone(RoundSample{Delivered: 5})
	teed.RunDone(RunSample{Rounds: 9})
	if len(ss.RoundSamples) != 1 || len(ss.RunSamples) != 1 {
		t.Errorf("series sink missed emissions: %d/%d", len(ss.RoundSamples), len(ss.RunSamples))
	}
	if s := c.Snapshot(); s.Delivered != 5 || s.RunRounds != 9 {
		t.Errorf("collector missed emissions: %+v", s)
	}

	po, ok := teed.(interface {
		PoolStart(int)
		WorkerBusy(int)
	})
	if !ok {
		t.Fatal("tee does not forward pool observations")
	}
	po.PoolStart(3)
	po.WorkerBusy(2)
	if s := c.Snapshot(); s.Workers != 3 || s.Busy != 2 {
		t.Errorf("pool gauges = %d/%d, want 3/2", s.Workers, s.Busy)
	}
}

func TestIsAddr(t *testing.T) {
	for target, want := range map[string]bool{
		"127.0.0.1:9000":  true,
		"[::1]:9000":      true,
		"host:0":          true,
		"metrics.ndjson":  false,
		"out/m.json":      false,
		`out\m.json`:      false,
		"host:port":       false, // non-numeric port → a file name
		"localhost:":      false,
		"plainfile":       false,
		"127.0.0.1:90:00": false,
	} {
		if got := isAddr(target); got != want {
			t.Errorf("isAddr(%q) = %v, want %v", target, got, want)
		}
	}
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

// TestStreamerFinalSnapshot: Close always writes one final NDJSON line,
// so even a run shorter than the interval produces output.
func TestStreamerFinalSnapshot(t *testing.T) {
	c := NewCollector()
	c.RoundDone(RoundSample{Delivered: 7})
	var buf bytes.Buffer
	s := StreamNDJSON(c, nopCloser{&buf}, time.Hour)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("stream line is not JSON: %v (%q)", err, buf.String())
	}
	if snap.Delivered != 7 {
		t.Errorf("final snapshot delivered = %d, want 7", snap.Delivered)
	}
}

// TestStartFile: the CLI assembly writes NDJSON snapshots to a file
// target; an empty target is a no-op nil collector.
func TestStartFile(t *testing.T) {
	coll, closer, err := Start("", 0)
	if err != nil || coll != nil {
		t.Fatalf("empty target: coll=%v err=%v, want nil/nil", coll, err)
	}
	if err := closer(); err != nil {
		t.Fatalf("no-op closer: %v", err)
	}

	path := filepath.Join(t.TempDir(), "m.ndjson")
	coll, closer, err = Start(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	coll.RunDone(RunSample{Decided: true, Rounds: 4})
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not one JSON line: %v", err)
	}
	if snap.Runs != 1 || snap.RunsDecided != 1 {
		t.Errorf("snapshot = %+v, want 1 decided run", snap)
	}
}

// TestStartTCP: a host:port target dials and streams to the socket.
func TestStartTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	lines := make(chan string, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default:
			}
		}
	}()

	coll, closer, err := Start(ln.Addr().String(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	coll.RoundDone(RoundSample{Delivered: 11})
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	select {
	case line := <-lines:
		var snap Snapshot
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("socket line is not JSON: %v", err)
		}
		if snap.Delivered != 11 {
			t.Errorf("snapshot delivered = %d, want 11", snap.Delivered)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no snapshot arrived on the socket")
	}
}
