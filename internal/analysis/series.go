package analysis

import (
	"fmt"
	"math"
	"strings"

	"anondyn/internal/sim"
)

// RangeSeries records, per round, the range (max − min) of the running
// nodes' state values — the round-resolution convergence curve that the
// F1 figure plots. It implements both sim.Observer and sim.RoundObserver
// (the phase callbacks are no-ops; only the round hook feeds it).
type RangeSeries struct {
	ranges []float64
}

// NewRangeSeries returns an empty series.
func NewRangeSeries() *RangeSeries { return &RangeSeries{} }

// OnPhaseEnter implements sim.Observer (unused).
func (s *RangeSeries) OnPhaseEnter(node, from, to int, value float64, round int) {}

// OnDecide implements sim.Observer (unused).
func (s *RangeSeries) OnDecide(node int, value float64, round int) {}

// OnRoundEnd implements sim.RoundObserver. The dense view iterates the
// running nodes in ascending order with no per-round map traffic.
func (s *RangeSeries) OnRoundEnd(round int, values sim.RoundValues) {
	lo, hi := math.Inf(1), math.Inf(-1)
	running := 0
	values.Range(func(_ int, v float64) {
		running++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	})
	r := 0.0
	if running >= 2 {
		r = hi - lo
	}
	// Rounds arrive in order; pad defensively if one was skipped.
	for len(s.ranges) < round {
		s.ranges = append(s.ranges, math.NaN())
	}
	s.ranges = append(s.ranges, r)
}

// Len returns the number of recorded rounds.
func (s *RangeSeries) Len() int { return len(s.ranges) }

// At returns the range after the given round (NaN when unrecorded).
func (s *RangeSeries) At(round int) float64 {
	if round < 0 || round >= len(s.ranges) {
		return math.NaN()
	}
	return s.ranges[round]
}

// Series returns a copy of the per-round ranges.
func (s *RangeSeries) Series() []float64 {
	out := make([]float64, len(s.ranges))
	copy(out, s.ranges)
	return out
}

// RoundsToRange returns the first round after which the range is ≤ eps,
// or −1 if the series never got there.
func (s *RangeSeries) RoundsToRange(eps float64) int {
	for r, v := range s.ranges {
		if !math.IsNaN(v) && v <= eps {
			return r
		}
	}
	return -1
}

// Sparkline renders the series as a log-scale ASCII strip (one rune per
// bucket of rounds), for terminal-friendly "figures". floor is the
// range treated as fully converged (bottom of the scale).
func (s *RangeSeries) Sparkline(width int, floor float64) string {
	if width < 1 || len(s.ranges) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	if floor <= 0 {
		floor = 1e-9
	}
	logFloor := math.Log10(floor)
	logTop := 0.0 // ranges start at ≤ 1
	var b strings.Builder
	bucket := float64(len(s.ranges)) / float64(width)
	if bucket < 1 {
		bucket = 1
		width = len(s.ranges)
	}
	for i := 0; i < width; i++ {
		start := int(float64(i) * bucket)
		end := int(float64(i+1) * bucket)
		if end > len(s.ranges) {
			end = len(s.ranges)
		}
		if start >= end {
			break
		}
		worst := 0.0
		for _, v := range s.ranges[start:end] {
			if !math.IsNaN(v) && v > worst {
				worst = v
			}
		}
		frac := 0.0
		if worst > floor {
			frac = (math.Log10(worst) - logFloor) / (logTop - logFloor)
		}
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		b.WriteRune(levels[int(frac*float64(len(levels)-1)+0.5)])
	}
	return b.String()
}

// FormatSampled renders the series as "round:range" pairs at the given
// round stride, for the figure tables in EXPERIMENTS.md.
func (s *RangeSeries) FormatSampled(stride int) string {
	if stride < 1 {
		stride = 1
	}
	var parts []string
	for r := 0; r < len(s.ranges); r += stride {
		parts = append(parts, fmt.Sprintf("%d:%.3g", r, s.ranges[r]))
	}
	return strings.Join(parts, " ")
}
