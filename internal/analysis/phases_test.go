package analysis

import (
	"math"
	"testing"
)

func TestPhaseTrackerBasics(t *testing.T) {
	tr := NewPhaseTracker()
	tr.SetInput(0, 0.0)
	tr.SetInput(1, 1.0)
	tr.SetInput(2, 0.5)
	if got := tr.Range(0); got != 1.0 {
		t.Errorf("Range(0) = %g, want 1", got)
	}
	if got := tr.Count(0); got != 3 {
		t.Errorf("Count(0) = %d, want 3", got)
	}
	tr.OnPhaseEnter(0, 0, 1, 0.5, 3)
	tr.OnPhaseEnter(1, 0, 1, 0.75, 3)
	tr.OnPhaseEnter(2, 0, 1, 0.5, 4)
	if got := tr.Range(1); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("Range(1) = %g, want 0.25", got)
	}
	if tr.MaxPhase() != 1 {
		t.Errorf("MaxPhase = %d, want 1", tr.MaxPhase())
	}
	vals := tr.Values(1)
	if len(vals) != 3 || vals[0] != 0.5 || vals[2] != 0.75 {
		t.Errorf("Values(1) = %v", vals)
	}
}

func TestPhaseTrackerJumpFillsSkippedPhases(t *testing.T) {
	// Definition 6: a node jumping 1→4 contributes its landing value to
	// phases 2, 3 and 4.
	tr := NewPhaseTracker()
	tr.SetInput(0, 0.3)
	tr.OnPhaseEnter(0, 1, 4, 0.8, 7)
	for p := 2; p <= 4; p++ {
		if got := tr.Count(p); got != 1 {
			t.Errorf("Count(%d) = %d, want 1", p, got)
		}
		if got := tr.Values(p)[0]; got != 0.8 {
			t.Errorf("phase %d value = %g, want landing 0.8", p, got)
		}
	}
	if tr.Count(1) != 0 {
		t.Error("phase 1 polluted (from-phase must not be recorded)")
	}
}

func TestPhaseTrackerRatios(t *testing.T) {
	tr := NewPhaseTracker()
	// Phase 0 range 1.0, phase 1 range 0.5, phase 2 range 0.2.
	tr.SetInput(0, 0)
	tr.SetInput(1, 1)
	tr.OnPhaseEnter(0, 0, 1, 0.25, 1)
	tr.OnPhaseEnter(1, 0, 1, 0.75, 1)
	tr.OnPhaseEnter(0, 1, 2, 0.4, 2)
	tr.OnPhaseEnter(1, 1, 2, 0.6, 2)
	ratios := tr.Ratios(0)
	if len(ratios) != 2 {
		t.Fatalf("len(ratios) = %d, want 2", len(ratios))
	}
	if math.Abs(ratios[0]-0.5) > 1e-12 || math.Abs(ratios[1]-0.4) > 1e-12 {
		t.Errorf("ratios = %v, want [0.5 0.4]", ratios)
	}
	if got := tr.WorstRatio(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("WorstRatio = %g, want 0.5", got)
	}
}

func TestPhaseTrackerRatioFloor(t *testing.T) {
	tr := NewPhaseTracker()
	tr.SetInput(0, 0.5)
	tr.SetInput(1, 0.5) // zero initial range
	tr.OnPhaseEnter(0, 0, 1, 0.5, 1)
	tr.OnPhaseEnter(1, 0, 1, 0.5, 1)
	ratios := tr.Ratios(1e-9)
	if len(ratios) != 1 || !math.IsNaN(ratios[0]) {
		t.Errorf("ratios = %v, want [NaN] below the floor", ratios)
	}
	if got := tr.WorstRatio(1e-9); got != 0 {
		t.Errorf("WorstRatio with no meaningful phase = %g, want 0", got)
	}
}

func TestPhasesToRange(t *testing.T) {
	tr := NewPhaseTracker()
	tr.SetInput(0, 0)
	tr.SetInput(1, 1)
	tr.OnPhaseEnter(0, 0, 1, 0.4, 1)
	tr.OnPhaseEnter(1, 0, 1, 0.6, 1)
	tr.OnPhaseEnter(0, 1, 2, 0.5, 2)
	tr.OnPhaseEnter(1, 1, 2, 0.5, 2)
	if got := tr.PhasesToRange(0.25); got != 1 {
		t.Errorf("PhasesToRange(0.25) = %d, want 1", got)
	}
	if got := tr.PhasesToRange(0.0); got != 2 {
		t.Errorf("PhasesToRange(0) = %d, want 2", got)
	}
	if got := tr.PhasesToRange(-1); got != -1 {
		t.Errorf("PhasesToRange(-1) = %d, want -1 (never reached)", got)
	}
}

func TestPhaseTrackerSingleNodeRangeZero(t *testing.T) {
	tr := NewPhaseTracker()
	tr.SetInput(0, 0.7)
	if got := tr.Range(0); got != 0 {
		t.Errorf("|V(p)| = 1 range = %g, want 0", got)
	}
	if got := tr.Range(9); got != 0 {
		t.Errorf("empty phase range = %g, want 0", got)
	}
}

func TestPhaseTrackerOnDecideIsNoop(t *testing.T) {
	tr := NewPhaseTracker()
	tr.OnDecide(0, 0.5, 3)
	if tr.MaxPhase() != 0 || tr.Count(0) != 0 {
		t.Error("OnDecide mutated the tracker")
	}
}
