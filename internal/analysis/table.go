package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a small text/CSV table renderer for experiment outputs, so
// the benchmark harness prints the same rows EXPERIMENTS.md records.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v, floats with %.4g.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// AddNote appends a free-form footnote rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the rendered cell (row, col), empty when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.Columns) {
		return ""
	}
	return t.rows[row][col]
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Fprint(&b); err != nil {
		return fmt.Sprintf("table render error: %v", err)
	}
	return b.String()
}

// WriteCSV renders the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("analysis: csv header: %w", err)
	}
	for i, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("analysis: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
