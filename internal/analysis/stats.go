package analysis

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	StdDev float64 `json:"stddev"`
}

// Summarize computes descriptive statistics; an empty sample yields the
// zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	varsum := 0.0
	for _, v := range s {
		d := v - mean
		varsum += d * d
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		Median: Percentile(s, 50),
		P95:    Percentile(s, 95),
		StdDev: math.Sqrt(varsum / float64(len(s))),
	}
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// GeoMean returns the geometric mean of a positive sample, NaN-safe:
// non-positive or NaN entries are skipped. Returns 0 for an empty
// effective sample. Used to average per-phase contraction factors.
func GeoMean(sample []float64) float64 {
	logSum, n := 0.0, 0
	for _, v := range sample {
		if math.IsNaN(v) || v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
