package analysis

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("E0: demo", "n", "rounds", "range")
	tb.AddRowf(7, 14, 0.000488)
	tb.AddRowf(9, 16, 0.000244)
	tb.AddNote("adversary: rotating(d=⌊n/2⌋)")
	out := tb.String()
	if !strings.Contains(out, "E0: demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "rounds") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "0.000488") {
		t.Error("float cell missing")
	}
	if !strings.Contains(out, "note: adversary") {
		t.Error("note missing")
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", tb.Rows())
	}
	if got := tb.Cell(0, 0); got != "7" {
		t.Errorf("Cell(0,0) = %q, want 7", got)
	}
	if got := tb.Cell(9, 9); got != "" {
		t.Errorf("out-of-range cell = %q, want empty", got)
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxxx", "y")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// header, rule, row
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	// The 'bbbb' header must start at the same column as 'y'.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[2], "y") {
		t.Errorf("columns misaligned:\n%s", tb.String())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("1")
	if got := tb.Cell(0, 2); got != "" {
		t.Errorf("padded cell = %q", got)
	}
	// Must render without panicking.
	_ = tb.String()
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRowf(1, 2.5)
	tb.AddRow("a,b", `quote"me`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "x,y\n") {
		t.Errorf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Error("comma cell not quoted")
	}
}
