// Package analysis measures executions: it reconstructs the per-phase
// state multisets V(p) that the paper's convergence proofs reason about
// (Definitions 5–7), estimates convergence rates, summarizes sweeps, and
// renders result tables.
package analysis

import (
	"math"
	"sort"
)

// PhaseTracker implements sim.Observer and reconstructs V(p): the
// multiset of phase-p state values across nodes. A node's phase-p state
// is the value it holds while in phase p — constant within a phase for
// DAC/DBAC — and a node that jumps over phase p′ contributes its landing
// value to V(p′), exactly as Definition 6 prescribes.
type PhaseTracker struct {
	// values[p][node] = the node's phase-p state.
	values map[int]map[int]float64
	max    int
}

// NewPhaseTracker returns an empty tracker. Seed phase 0 with the inputs
// via SetInput before the run.
func NewPhaseTracker() *PhaseTracker {
	return &PhaseTracker{values: make(map[int]map[int]float64)}
}

// SetInput records a node's initial value as its phase-0 state.
func (t *PhaseTracker) SetInput(node int, v float64) { t.set(0, node, v) }

// OnPhaseEnter implements sim.Observer.
func (t *PhaseTracker) OnPhaseEnter(node, from, to int, value float64, round int) {
	// Skipped phases take the landing value (Definition 6).
	for p := from + 1; p <= to; p++ {
		t.set(p, node, value)
	}
}

// OnDecide implements sim.Observer.
func (t *PhaseTracker) OnDecide(node int, value float64, round int) {}

func (t *PhaseTracker) set(p, node int, v float64) {
	m := t.values[p]
	if m == nil {
		m = make(map[int]float64)
		t.values[p] = m
	}
	m[node] = v
	if p > t.max {
		t.max = p
	}
}

// MaxPhase returns the highest phase any node entered.
func (t *PhaseTracker) MaxPhase() int { return t.max }

// Count returns |V(p)|.
func (t *PhaseTracker) Count(p int) int { return len(t.values[p]) }

// Values returns V(p) sorted ascending (a fresh slice).
func (t *PhaseTracker) Values(p int) []float64 {
	m := t.values[p]
	vs := make([]float64, 0, len(m))
	for _, v := range m {
		vs = append(vs, v)
	}
	sort.Float64s(vs)
	return vs
}

// Range returns range(V(p)) = max − min, or 0 when |V(p)| < 2.
func (t *PhaseTracker) Range(p int) float64 {
	m := t.values[p]
	if len(m) < 2 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range m {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Ratios returns the per-phase contraction factors
// range(V(p+1))/range(V(p)) for p = 0 … MaxPhase−1. Phases whose range
// is already ≤ floor contribute NaN (the ratio is numerically
// meaningless below that resolution) and are skipped by WorstRatio.
func (t *PhaseTracker) Ratios(floor float64) []float64 {
	ratios := make([]float64, 0, t.max)
	for p := 0; p < t.max; p++ {
		r0, r1 := t.Range(p), t.Range(p+1)
		if r0 <= floor {
			ratios = append(ratios, math.NaN())
			continue
		}
		ratios = append(ratios, r1/r0)
	}
	return ratios
}

// WorstRatio returns the largest meaningful per-phase contraction factor
// — the empirical convergence rate ρ of Definition 7 — ignoring phases
// whose range is below floor. Returns 0 when no phase qualifies.
func (t *PhaseTracker) WorstRatio(floor float64) float64 {
	worst := 0.0
	for _, r := range t.Ratios(floor) {
		if !math.IsNaN(r) && r > worst {
			worst = r
		}
	}
	return worst
}

// PhasesToRange returns the first phase whose range is ≤ eps, or −1 if
// the tracked execution never got there.
func (t *PhaseTracker) PhasesToRange(eps float64) int {
	for p := 0; p <= t.max; p++ {
		if t.Count(p) > 0 && t.Range(p) <= eps {
			return p
		}
	}
	return -1
}
