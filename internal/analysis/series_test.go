package analysis

import (
	"math"
	"strings"
	"testing"

	"anondyn/internal/sim"
)

// roundValues adapts a node→value map to the dense view OnRoundEnd
// takes, for synthetic observer feeds.
func roundValues(n int, m map[int]float64) sim.RoundValues {
	values := make([]float64, n)
	running := make([]bool, n)
	for node, v := range m {
		values[node] = v
		running[node] = true
	}
	return sim.MakeRoundValues(values, running)
}

func feed(s *RangeSeries, ranges ...float64) {
	for round, r := range ranges {
		// Two synthetic nodes spanning the range.
		s.OnRoundEnd(round, roundValues(2, map[int]float64{0: 0.5 - r/2, 1: 0.5 + r/2}))
	}
}

func TestRangeSeriesBasics(t *testing.T) {
	s := NewRangeSeries()
	feed(s, 1, 0.5, 0.25, 0.01)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if got := s.At(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(1) = %g, want 0.5", got)
	}
	if !math.IsNaN(s.At(9)) || !math.IsNaN(s.At(-1)) {
		t.Error("out-of-range At should be NaN")
	}
	if got := s.RoundsToRange(0.25); got != 2 {
		t.Errorf("RoundsToRange(0.25) = %d, want 2", got)
	}
	if got := s.RoundsToRange(0.001); got != -1 {
		t.Errorf("RoundsToRange(0.001) = %d, want -1", got)
	}
	ser := s.Series()
	ser[0] = 99
	if s.At(0) == 99 {
		t.Error("Series must return a copy")
	}
}

func TestRangeSeriesSingleNodeRangeZero(t *testing.T) {
	s := NewRangeSeries()
	s.OnRoundEnd(0, roundValues(4, map[int]float64{3: 0.7}))
	if got := s.At(0); got != 0 {
		t.Errorf("single running node range = %g, want 0", got)
	}
}

func TestRangeSeriesSkippedRoundPadded(t *testing.T) {
	s := NewRangeSeries()
	s.OnRoundEnd(2, roundValues(2, map[int]float64{0: 0, 1: 1}))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !math.IsNaN(s.At(0)) || !math.IsNaN(s.At(1)) {
		t.Error("skipped rounds should be NaN")
	}
	if s.At(2) != 1 {
		t.Errorf("At(2) = %g", s.At(2))
	}
}

func TestSparkline(t *testing.T) {
	s := NewRangeSeries()
	feed(s, 1, 0.1, 0.01, 0.001, 0.0001, 0.00001)
	sp := s.Sparkline(6, 1e-6)
	if len([]rune(sp)) != 6 {
		t.Fatalf("sparkline %q has %d runes, want 6", sp, len([]rune(sp)))
	}
	runes := []rune(sp)
	// Monotone decreasing series → non-increasing glyph levels.
	levels := "▁▂▃▄▅▆▇█"
	prev := strings.IndexRune(levels, runes[0])
	for _, r := range runes[1:] {
		cur := strings.IndexRune(levels, r)
		if cur < 0 {
			t.Fatalf("unexpected rune %q", r)
		}
		if cur > prev {
			t.Errorf("sparkline %q not non-increasing", sp)
		}
		prev = cur
	}
	if s2 := NewRangeSeries(); s2.Sparkline(5, 1e-6) != "" {
		t.Error("empty series should render empty")
	}
}

func TestSparklineWiderThanSeries(t *testing.T) {
	s := NewRangeSeries()
	feed(s, 1, 0.5)
	sp := s.Sparkline(10, 1e-6)
	if got := len([]rune(sp)); got != 2 {
		t.Errorf("sparkline %q has %d runes, want clamped 2", sp, got)
	}
}

func TestFormatSampled(t *testing.T) {
	s := NewRangeSeries()
	feed(s, 1, 0.5, 0.25, 0.125)
	out := s.FormatSampled(2)
	if !strings.Contains(out, "0:1") || !strings.Contains(out, "2:0.25") {
		t.Errorf("FormatSampled = %q", out)
	}
	if strings.Contains(out, "1:0.5") {
		t.Errorf("stride ignored: %q", out)
	}
	if got := s.FormatSampled(0); !strings.Contains(got, "1:0.5") {
		t.Errorf("stride 0 should clamp to 1: %q", got)
	}
}
