package analysis

import (
	"math"
	"testing"
)

func TestAccumulatorMatchesSummarize(t *testing.T) {
	sample := []float64{4, 1, 9, 2.5, 7, 0.5, 3, 3, 8, 6}
	var acc Accumulator
	for _, v := range sample {
		acc.Add(v)
	}
	if got, want := acc.Summary(), Summarize(sample); got != want {
		t.Errorf("Summary() = %+v, want %+v", got, want)
	}
	if acc.N() != len(sample) || acc.Min() != 0.5 || acc.Max() != 9 {
		t.Errorf("running stats: n=%d min=%g max=%g", acc.N(), acc.Min(), acc.Max())
	}
	want := Summarize(sample)
	if math.Abs(acc.Mean()-want.Mean) > 1e-12 {
		t.Errorf("Mean() = %g, want %g", acc.Mean(), want.Mean)
	}
	if math.Abs(acc.StdDev()-want.StdDev) > 1e-9 {
		t.Errorf("StdDev() = %g, want %g", acc.StdDev(), want.StdDev)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.StdDev() != 0 {
		t.Error("zero-value accumulator not neutral")
	}
	if got := acc.Summary(); got != (Summary{}) {
		t.Errorf("empty Summary() = %+v", got)
	}
}

func TestAccumulatorNegativeAndSingle(t *testing.T) {
	var acc Accumulator
	acc.Add(-3)
	if acc.Min() != -3 || acc.Max() != -3 || acc.Mean() != -3 || acc.StdDev() != 0 {
		t.Errorf("single observation: min=%g max=%g mean=%g std=%g",
			acc.Min(), acc.Max(), acc.Mean(), acc.StdDev())
	}
}
