package analysis

import "math"

// Accumulator builds a Summary one observation at a time — the
// streaming counterpart of Summarize for batch sinks that must not
// retain whole results. Running count/min/max/mean/variance are kept
// in O(1) (Welford's algorithm) and can be read mid-batch; the raw
// float64 samples are also retained so Summary can report the exact
// quantiles Summarize would. Memory is one float64 per observation
// regardless of how heavy the observed objects were.
//
// The zero value is ready to use. Accumulator is not safe for
// concurrent use; the batch harness calls sinks from one goroutine.
type Accumulator struct {
	n        int
	min, max float64
	mean, m2 float64
	samples  []float64
}

// Add folds one observation in.
func (a *Accumulator) Add(v float64) {
	a.n++
	if a.n == 1 || v < a.min {
		a.min = v
	}
	if a.n == 1 || v > a.max {
		a.max = v
	}
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
	a.samples = append(a.samples, v)
}

// N returns the observation count so far.
func (a *Accumulator) N() int { return a.n }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the running population standard deviation (0 when
// empty).
func (a *Accumulator) StdDev() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// Summary returns the full descriptive statistics, computed with the
// same two-pass code as Summarize — an Accumulator fed a sample in any
// order yields exactly Summarize(sample).
func (a *Accumulator) Summary() Summary { return Summarize(a.samples) }
