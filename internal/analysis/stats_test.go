package analysis

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("N/Min/Max = %d/%g/%g", s.N, s.Min, s.Max)
	}
	if s.Mean != 2.5 {
		t.Errorf("Mean = %g, want 2.5", s.Mean)
	}
	if s.Median != 2.5 {
		t.Errorf("Median = %g, want 2.5", s.Median)
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(s.StdDev-wantStd) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", s.StdDev, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize sorted the caller's slice")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	for _, tt := range []struct {
		p, want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {105, 50},
	} {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("P%g = %g, want %g", tt.p, got, tt.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %g, want 4", got)
	}
	// NaNs and non-positives are skipped.
	if got := GeoMean([]float64{math.NaN(), 0, -1, 4}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with junk = %g, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", got)
	}
}
