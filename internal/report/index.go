package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"anondyn"
)

// IndexEntry summarizes one per-spec report for the combined -spec-dir
// index page: the spec's run title, the artifact it links to, and the
// aggregate counts shown in the index row.
type IndexEntry struct {
	// Title is the spec's run title (the per-spec page heading).
	Title string
	// Path is the per-spec report file; the index links to its base
	// name, since ForSpec fan-out keeps every artifact in the index
	// file's own directory.
	Path string
	// Cells are the spec's aggregate rows (only counts are rendered).
	Cells []anondyn.CellResult
}

// WriteIndex renders the combined index page for a directory batch:
// one row per spec linking the per-spec report, with cell, run,
// decided, and violation totals. Same self-contained-page contract as
// every other HTML report — no external fetches.
func WriteIndex(w io.Writer, title string, entries []IndexEntry) error {
	links := HTMLLinks{
		Caption: "sweeps",
		Header:  []string{"sweep", "cells", "runs", "decided", "violations"},
	}
	totalCells, totalRuns := 0, 0
	for _, e := range entries {
		runs, decided, violations := 0, 0, 0
		for _, c := range e.Cells {
			runs += c.Runs
			decided += c.Decided
			violations += c.Violations
		}
		totalCells += len(e.Cells)
		totalRuns += runs
		links.Rows = append(links.Rows, []string{
			e.Title,
			fmt.Sprint(len(e.Cells)),
			fmt.Sprint(runs),
			fmt.Sprintf("%d/%d", decided, runs),
			fmt.Sprint(violations),
		})
		links.Hrefs = append(links.Hrefs, filepath.Base(e.Path))
	}
	sub := fmt.Sprintf("%d sweeps · %d cells · %d runs", len(entries), totalCells, totalRuns)
	return WriteHTMLPage(w, title, sub, links)
}

// WriteIndexFile writes the combined index at path (the -report flag's
// own path; per-spec artifacts got derived names via ForSpec, so the
// base path is free to hold the directory's front page).
func WriteIndexFile(path, title string, entries []IndexEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteIndex(f, title, entries); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
