package report

import (
	"encoding/json"
	"fmt"
	"io"

	"anondyn"
	"anondyn/internal/spec"
)

// Sweep is the JSON envelope of one completed sweep — the exact shape
// dynabench and dynagrid used to assemble by hand, so existing
// consumers (notably the CI distributed-smoke job's `.cells` diff) keep
// working. Series is the one addition: per-cell convergence curves for
// the HTML report, omitted from JSON when absent.
type Sweep struct {
	Spec         string               `json:"spec,omitempty"`
	SeedsPerCell int                  `json:"seeds_per_cell"`
	BaseSeed     int64                `json:"base_seed"`
	Workers      int                  `json:"workers"`
	Cells        []anondyn.CellResult `json:"cells"`
	// Series holds cell i's range-per-round curve at Series[i] (first
	// seed of the cell; see Grid.SeriesPerCell). Populated only when the
	// target format wants it.
	Series [][]float64 `json:"series,omitempty"`
	// Title is the human heading (table caption, HTML page title); not
	// part of the JSON envelope.
	Title string `json:"-"`
	// Eps annotates the charts with the smallest ε of the sweep; not
	// part of the JSON envelope.
	Eps float64 `json:"-"`
}

// WriteJSON implements Document with the historical envelope bytes:
// two-space indent, trailing newline.
func (s *Sweep) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteCSV implements Document via the standard sweep table layout.
func (s *Sweep) WriteCSV(w io.Writer) error {
	return spec.Table(s.Title, s.Cells).WriteCSV(w)
}

// WriteHTML implements Document: one self-contained page with the
// aggregate table and, when Series is populated, one convergence chart
// per cell.
func (s *Sweep) WriteHTML(w io.Writer) error {
	blocks := []any{s.summaryTable()}
	for i, series := range s.Series {
		if i >= len(s.Cells) || len(series) == 0 {
			continue
		}
		c := s.Cells[i]
		caption := fmt.Sprintf("cell %d — n=%d f=%d ε=%g %s / %s", i, c.N, c.F, c.Eps, c.Algorithm, c.Adversary)
		if c.Variant != "" {
			caption += " / " + c.Variant
		}
		blocks = append(blocks, HTMLChart{Caption: caption, Series: series, Eps: c.Eps})
	}
	title := s.Title
	if title == "" {
		title = "sweep report"
	}
	sub := fmt.Sprintf("%d cells · %d seeds/cell · base seed %d", len(s.Cells), max(s.SeedsPerCell, 1), s.BaseSeed)
	return WriteHTMLPage(w, title, sub, blocks...)
}

// summaryTable mirrors spec.Table's column layout.
func (s *Sweep) summaryTable() HTMLTable {
	withVariants := false
	for _, r := range s.Cells {
		if r.Variant != "" {
			withVariants = true
			break
		}
	}
	header := []string{"n", "f", "eps", "algorithm", "adversary"}
	if withVariants {
		header = append(header, "variant")
	}
	header = append(header, "decided", "violations", "rounds mean", "rounds p95", "range max")
	tb := HTMLTable{Caption: "sweep summary", Header: header}
	for _, r := range s.Cells {
		row := []string{
			fmt.Sprint(r.N), fmt.Sprint(r.F), fmt.Sprintf("%g", r.Eps),
			r.Algorithm, r.Adversary,
		}
		if withVariants {
			row = append(row, r.Variant)
		}
		row = append(row,
			fmt.Sprintf("%d/%d", r.Decided, r.Runs),
			fmt.Sprint(r.Violations),
			fmt.Sprintf("%.1f", r.Rounds.Mean),
			fmt.Sprintf("%.0f", r.Rounds.P95),
			fmt.Sprintf("%.3g", r.OutputRange.Max),
		)
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}
