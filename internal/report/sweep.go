package report

import (
	"encoding/json"
	"fmt"
	"io"

	"anondyn"
	"anondyn/internal/analysis"
	"anondyn/internal/chaos"
	"anondyn/internal/spec"
)

// Sweep is the JSON envelope of one completed sweep — the exact shape
// dynabench and dynagrid used to assemble by hand, so existing
// consumers (notably the CI distributed-smoke job's `.cells` diff) keep
// working. Series is the one addition: per-cell convergence curves for
// the HTML report, omitted from JSON when absent.
type Sweep struct {
	Spec         string               `json:"spec,omitempty"`
	SeedsPerCell int                  `json:"seeds_per_cell"`
	BaseSeed     int64                `json:"base_seed"`
	Workers      int                  `json:"workers"`
	Cells        []anondyn.CellResult `json:"cells"`
	// Series holds cell i's range-per-round curve at Series[i] (first
	// seed of the cell; see Grid.SeriesPerCell). Populated only when the
	// target format wants it.
	Series [][]float64 `json:"series,omitempty"`
	// Verdicts are the stress assertions' pass/fail outcomes — present
	// only for sweeps with a stress section (see spec.Sweep.Verdicts).
	Verdicts []chaos.Verdict `json:"verdicts,omitempty"`
	// Storm is the first run's materialized storm timeline — present
	// only for sweeps with a stress section.
	Storm []chaos.TimelineEntry `json:"storm,omitempty"`
	// Title is the human heading (table caption, HTML page title); not
	// part of the JSON envelope.
	Title string `json:"-"`
	// Eps annotates the charts with the smallest ε of the sweep; not
	// part of the JSON envelope.
	Eps float64 `json:"-"`
}

// WriteJSON implements Document with the historical envelope bytes:
// two-space indent, trailing newline.
func (s *Sweep) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteCSV implements Document via the standard sweep table layout,
// followed by a verdict section for stress sweeps.
func (s *Sweep) WriteCSV(w io.Writer) error {
	if err := spec.Table(s.Title, s.Cells).WriteCSV(w); err != nil {
		return err
	}
	if len(s.Verdicts) == 0 {
		return nil
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	tb := analysis.NewTable("", "assertion", "verdict", "detail")
	for _, v := range s.Verdicts {
		tb.AddRow(v.Assertion, passFail(v.Pass), v.Detail)
	}
	return tb.WriteCSV(w)
}

// passFail renders a verdict outcome.
func passFail(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// FprintVerdicts prints storm verdicts in the CLI layout — one line
// per assertion after the sweep table. No-op without verdicts.
func FprintVerdicts(w io.Writer, vs []chaos.Verdict) error {
	for _, v := range vs {
		if _, err := fmt.Fprintf(w, "verdict %s  %-24s %s\n", passFail(v.Pass), v.Assertion, v.Detail); err != nil {
			return err
		}
	}
	return nil
}

// WriteHTML implements Document: one self-contained page with the
// aggregate table and, when Series is populated, one convergence chart
// per cell.
func (s *Sweep) WriteHTML(w io.Writer) error {
	blocks := []any{s.summaryTable()}
	if len(s.Verdicts) > 0 {
		blocks = append(blocks, s.verdictTable())
	}
	if len(s.Storm) > 0 {
		blocks = append(blocks, s.stormTable())
	}
	for i, series := range s.Series {
		if i >= len(s.Cells) || len(series) == 0 {
			continue
		}
		c := s.Cells[i]
		caption := fmt.Sprintf("cell %d — n=%d f=%d ε=%g %s / %s", i, c.N, c.F, c.Eps, c.Algorithm, c.Adversary)
		if c.Variant != "" {
			caption += " / " + c.Variant
		}
		blocks = append(blocks, HTMLChart{Caption: caption, Series: series, Eps: c.Eps})
	}
	title := s.Title
	if title == "" {
		title = "sweep report"
	}
	sub := fmt.Sprintf("%d cells · %d seeds/cell · base seed %d", len(s.Cells), max(s.SeedsPerCell, 1), s.BaseSeed)
	return WriteHTMLPage(w, title, sub, blocks...)
}

// verdictTable renders the stress assertions' outcomes — the block the
// CI chaos-smoke job greps for.
func (s *Sweep) verdictTable() HTMLTable {
	tb := HTMLTable{Caption: "storm verdicts", Header: []string{"assertion", "verdict", "detail"}}
	for _, v := range s.Verdicts {
		tb.Rows = append(tb.Rows, []string{v.Assertion, passFail(v.Pass), v.Detail})
	}
	return tb
}

// stormTable renders the first run's storm timeline.
func (s *Sweep) stormTable() HTMLTable {
	tb := HTMLTable{Caption: "storm timeline (first run)", Header: []string{"round", "event", "nodes", "detail"}}
	for _, e := range s.Storm {
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(e.Round), e.Kind, fmt.Sprint(e.Nodes), e.Detail})
	}
	return tb
}

// summaryTable mirrors spec.Table's column layout.
func (s *Sweep) summaryTable() HTMLTable {
	withVariants := false
	for _, r := range s.Cells {
		if r.Variant != "" {
			withVariants = true
			break
		}
	}
	header := []string{"n", "f", "eps", "algorithm", "adversary"}
	if withVariants {
		header = append(header, "variant")
	}
	header = append(header, "decided", "violations", "rounds mean", "rounds p95", "range max")
	tb := HTMLTable{Caption: "sweep summary", Header: header}
	for _, r := range s.Cells {
		row := []string{
			fmt.Sprint(r.N), fmt.Sprint(r.F), fmt.Sprintf("%g", r.Eps),
			r.Algorithm, r.Adversary,
		}
		if withVariants {
			row = append(row, r.Variant)
		}
		row = append(row,
			fmt.Sprintf("%d/%d", r.Decided, r.Runs),
			fmt.Sprint(r.Violations),
			fmt.Sprintf("%.1f", r.Rounds.Mean),
			fmt.Sprintf("%.0f", r.Rounds.P95),
			fmt.Sprintf("%.3g", r.OutputRange.Max),
		)
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}
