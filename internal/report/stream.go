package report

import (
	"encoding/csv"
	"io"

	"anondyn"
	"anondyn/internal/spec"
)

// RowStream writes a sweep's CSV rows as they commit, so a -report csv
// target fills while the sweep runs instead of materializing at the
// end. Rows must arrive in cell order (the control plane's streaming
// merge emits them exactly so); the accumulated bytes are identical to
// rendering the finished row set through spec.Table — both go through
// spec.RowCells — which keeps streamed and buffered CSV reports
// diffable.
type RowStream struct {
	cw           *csv.Writer
	withVariants bool
}

// NewRowStream writes the header row and returns the stream.
// withVariants picks the column layout and must be decided up front
// (from the compiled spec's cells), before any row exists.
func NewRowStream(w io.Writer, withVariants bool) (*RowStream, error) {
	s := &RowStream{cw: csv.NewWriter(w), withVariants: withVariants}
	if err := s.cw.Write(spec.Columns(withVariants)); err != nil {
		return nil, err
	}
	s.cw.Flush()
	return s, s.cw.Error()
}

// Row appends one committed cell row and flushes it to the underlying
// writer immediately (live tail-ability is the point).
func (s *RowStream) Row(r anondyn.CellResult) error {
	if err := s.cw.Write(spec.RowCells(r, s.withVariants)); err != nil {
		return err
	}
	s.cw.Flush()
	return s.cw.Error()
}
