// Package report is the shared -report grammar and rendering layer of
// the CLIs: one Target parser (stdout keywords and extension-dispatched
// paths), one JSON envelope for sweep results (byte-compatible with the
// envelopes dynabench and dynagrid used to write by hand), and a
// self-contained single-file HTML renderer — inline CSS, inline SVG, no
// external fetches — so a report artifact can be mailed, archived, or
// attached to CI without a web server.
package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Format selects a report rendering.
type Format int

// Supported formats. FormatNone is the zero value: reporting disabled.
const (
	FormatNone Format = iota
	FormatJSON
	FormatCSV
	FormatHTML
)

// String names the format for messages.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatCSV:
		return "csv"
	case FormatHTML:
		return "html"
	default:
		return "none"
	}
}

// Target is one parsed -report destination: a format plus an optional
// file path (empty = stdout).
type Target struct {
	Format Format
	// Path is the output file; "" writes to stdout.
	Path string
}

// ParseTarget resolves the -report flag grammar shared by the CLIs:
//
//	""            → reporting disabled
//	"csv"         → CSV to stdout
//	"json"        → JSON to stdout
//	"html"        → HTML to stdout
//	anything else → a file path, dispatched on extension:
//	                .csv → CSV, .html/.htm → HTML, else JSON
func ParseTarget(s string) Target {
	switch strings.ToLower(s) {
	case "":
		return Target{}
	case "csv":
		return Target{Format: FormatCSV}
	case "json":
		return Target{Format: FormatJSON}
	case "html":
		return Target{Format: FormatHTML}
	}
	t := Target{Format: FormatJSON, Path: s}
	switch strings.ToLower(filepath.Ext(s)) {
	case ".csv":
		t.Format = FormatCSV
	case ".html", ".htm":
		t.Format = FormatHTML
	}
	return t
}

// Enabled reports whether any report was requested.
func (t Target) Enabled() bool { return t.Format != FormatNone }

// Stdout reports whether the target writes to standard output.
func (t Target) Stdout() bool { return t.Enabled() && t.Path == "" }

// ForSpec derives a per-spec file target from this one — the -spec-dir
// form, where one -report flag yields one artifact per scenario file:
// "out.html" and "e3-resilience.yaml" become "out-e3-resilience.html".
// Stdout targets are returned unchanged (the documents just stream in
// directory order).
func (t Target) ForSpec(specPath string) Target {
	if !t.Enabled() || t.Path == "" {
		return t
	}
	stem := strings.TrimSuffix(filepath.Base(specPath), filepath.Ext(specPath))
	ext := filepath.Ext(t.Path)
	return Target{
		Format: t.Format,
		Path:   strings.TrimSuffix(t.Path, ext) + "-" + stem + ext,
	}
}

// Document is anything renderable to every report format. The sweep
// envelope below implements it; dynasim's batch report implements it
// with its own JSON shape.
type Document interface {
	WriteJSON(w io.Writer) error
	WriteCSV(w io.Writer) error
	WriteHTML(w io.Writer) error
}

// Write renders doc to the target: nothing for a disabled target,
// stdout for the keyword forms, a created file otherwise.
func (t Target) Write(doc Document) error {
	if !t.Enabled() {
		return nil
	}
	render := doc.WriteJSON
	switch t.Format {
	case FormatCSV:
		render = doc.WriteCSV
	case FormatHTML:
		render = doc.WriteHTML
	}
	if t.Path == "" {
		return render(os.Stdout)
	}
	f, err := os.Create(t.Path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", t.Path, err)
	}
	return f.Close()
}
