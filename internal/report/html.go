package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

// The HTML renderer produces ONE file with everything inlined — CSS in
// a <style> block, charts as inline SVG, no <script src>, <link>, <img>
// or fetch of any kind — so the artifact opens anywhere, forever. CI
// pins this property by grepping the output for external references.

// HTMLTable is one table block of a report page.
type HTMLTable struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// HTMLLinks is a table block whose first column renders as a link:
// Hrefs[i] is the target of Rows[i]'s first cell. It backs the
// -spec-dir combined index page, where each row links the per-spec
// report artifact sitting next to the index file.
type HTMLLinks struct {
	Caption string
	Header  []string
	Rows    [][]string
	Hrefs   []string
}

// HTMLChart is one log-scale line chart of a positive series — built
// for range-per-round convergence curves, where the interesting motion
// spans many decades. Eps, when > 0, draws the target threshold line.
type HTMLChart struct {
	Caption string
	Series  []float64
	Eps     float64
}

// pageStyle is the entire stylesheet, inlined into every page.
const pageStyle = `
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; padding: 0 1rem; color: #1a1a2e; background: #fcfcfd; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #3b5bdb; padding-bottom: .4rem; }
p.sub { color: #667; margin-top: -.5rem; }
table { border-collapse: collapse; margin: 1rem 0; font-variant-numeric: tabular-nums; }
caption { text-align: left; font-weight: 600; padding-bottom: .4rem; }
th, td { border: 1px solid #d5d9e2; padding: .25rem .6rem; text-align: right; }
th { background: #eef1f8; }
td:nth-child(4), td:nth-child(5), td:nth-child(6) { text-align: left; }
figure { margin: 1.4rem 0; }
figcaption { font-weight: 600; margin-bottom: .3rem; }
svg { background: #fff; border: 1px solid #d5d9e2; }
.axis { stroke: #aab; stroke-width: 1; }
.curve { stroke: #3b5bdb; stroke-width: 1.5; fill: none; }
.eps { stroke: #d9480f; stroke-width: 1; stroke-dasharray: 4 3; }
.lbl { font: 10px system-ui, sans-serif; fill: #667; }
`

// WriteHTMLPage renders one self-contained page: a title, an optional
// subtitle line, and a sequence of blocks (HTMLTable, HTMLChart, or a
// plain string rendered as a paragraph).
func WriteHTMLPage(w io.Writer, title, subtitle string, blocks ...any) error {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString("<style>")
	b.WriteString(pageStyle)
	b.WriteString("</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	if subtitle != "" {
		fmt.Fprintf(&b, "<p class=\"sub\">%s</p>\n", html.EscapeString(subtitle))
	}
	for _, blk := range blocks {
		switch v := blk.(type) {
		case HTMLTable:
			writeTable(&b, v)
		case HTMLLinks:
			writeLinkTable(&b, v)
		case HTMLChart:
			writeChart(&b, v)
		case string:
			fmt.Fprintf(&b, "<p>%s</p>\n", html.EscapeString(v))
		default:
			return fmt.Errorf("report: unsupported HTML block %T", blk)
		}
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeTable(b *strings.Builder, t HTMLTable) {
	b.WriteString("<table>\n")
	if t.Caption != "" {
		fmt.Fprintf(b, "<caption>%s</caption>\n", html.EscapeString(t.Caption))
	}
	b.WriteString("<thead><tr>")
	for _, h := range t.Header {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(h))
	}
	b.WriteString("</tr></thead>\n<tbody>\n")
	for _, row := range t.Rows {
		b.WriteString("<tr>")
		for _, cell := range row {
			fmt.Fprintf(b, "<td>%s</td>", html.EscapeString(cell))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody>\n</table>\n")
}

// writeLinkTable renders an HTMLLinks block: a plain table whose first
// cell of each row is an <a href>. Hrefs are relative paths, escaped
// like every other attribute; a row without one degrades to text.
func writeLinkTable(b *strings.Builder, t HTMLLinks) {
	b.WriteString("<table>\n")
	if t.Caption != "" {
		fmt.Fprintf(b, "<caption>%s</caption>\n", html.EscapeString(t.Caption))
	}
	b.WriteString("<thead><tr>")
	for _, h := range t.Header {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(h))
	}
	b.WriteString("</tr></thead>\n<tbody>\n")
	for i, row := range t.Rows {
		b.WriteString("<tr>")
		for j, cell := range row {
			if j == 0 && i < len(t.Hrefs) && t.Hrefs[i] != "" {
				fmt.Fprintf(b, "<td style=\"text-align:left\"><a href=\"%s\">%s</a></td>",
					html.EscapeString(t.Hrefs[i]), html.EscapeString(cell))
				continue
			}
			fmt.Fprintf(b, "<td>%s</td>", html.EscapeString(cell))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody>\n</table>\n")
}

// Chart geometry: fixed viewBox, margins for the axis labels.
const (
	chartW, chartH = 600.0, 140.0
	chartML        = 44.0 // left margin (y labels)
	chartMB        = 18.0 // bottom margin (x labels)
	chartFloor     = 1e-9 // log floor for zero/denormal ranges
)

func writeChart(b *strings.Builder, c HTMLChart) {
	b.WriteString("<figure>\n")
	if c.Caption != "" {
		fmt.Fprintf(b, "<figcaption>%s</figcaption>\n", html.EscapeString(c.Caption))
	}
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %g %g\" width=\"%g\" height=\"%g\" role=\"img\">\n",
		chartW, chartH, chartW, chartH)

	// Log-scale y over [floor, ceil]: ceil is the series max rounded up
	// to a decade, floor a decade below the positive minimum (or the
	// global floor).
	lo, hi := chartFloor, 1.0
	for _, v := range c.Series {
		if v > hi {
			hi = v
		}
	}
	posMin := math.Inf(1)
	for _, v := range c.Series {
		if v > 0 && v < posMin {
			posMin = v
		}
	}
	if !math.IsInf(posMin, 1) && posMin < 1 {
		lo = math.Pow(10, math.Floor(math.Log10(posMin)))
	}
	if c.Eps > 0 && c.Eps/10 < lo {
		lo = math.Pow(10, math.Floor(math.Log10(c.Eps/10)))
	}
	if lo < chartFloor {
		lo = chartFloor
	}
	hi = math.Pow(10, math.Ceil(math.Log10(hi)))
	logLo, logHi := math.Log10(lo), math.Log10(hi)

	y := func(v float64) float64 {
		if v < lo {
			v = lo
		}
		frac := (math.Log10(v) - logLo) / (logHi - logLo)
		return (chartH - chartMB) * (1 - frac)
	}
	x := func(i int) float64 {
		n := len(c.Series)
		if n <= 1 {
			return chartML
		}
		return chartML + (chartW-chartML-4)*float64(i)/float64(n-1)
	}

	// Axes and decade labels.
	fmt.Fprintf(b, "<line class=\"axis\" x1=\"%g\" y1=\"0\" x2=\"%g\" y2=\"%g\"/>\n",
		chartML, chartML, chartH-chartMB)
	fmt.Fprintf(b, "<line class=\"axis\" x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\"/>\n",
		chartML, chartH-chartMB, chartW, chartH-chartMB)
	decades := int(logHi - logLo)
	step := 1
	for decades/step > 6 {
		step++
	}
	for d := 0; d <= decades; d += step {
		v := math.Pow(10, logLo+float64(d))
		fmt.Fprintf(b, "<text class=\"lbl\" x=\"2\" y=\"%g\">%.0e</text>\n", y(v)+3, v)
	}
	fmt.Fprintf(b, "<text class=\"lbl\" x=\"%g\" y=\"%g\">round %d</text>\n",
		chartW-70, chartH-4, len(c.Series)-1)

	// ε threshold.
	if c.Eps > 0 && c.Eps >= lo && c.Eps <= hi {
		ey := y(c.Eps)
		fmt.Fprintf(b, "<line class=\"eps\" x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\"/>\n",
			chartML, ey, chartW, ey)
		fmt.Fprintf(b, "<text class=\"lbl\" x=\"%g\" y=\"%g\">ε=%g</text>\n", chartW-70, ey-3, c.Eps)
	}

	// The curve.
	var pts strings.Builder
	for i, v := range c.Series {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x(i), y(v))
	}
	fmt.Fprintf(b, "<polyline class=\"curve\" points=\"%s\"/>\n", pts.String())
	b.WriteString("</svg>\n</figure>\n")
}
