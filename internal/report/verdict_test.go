package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"anondyn/internal/chaos"
)

// stormSweep is the fixture with a verdict block and a storm timeline,
// the way a stress sweep's document arrives.
func stormSweep() *Sweep {
	s := fixtureSweep()
	s.Verdicts = []chaos.Verdict{
		{Assertion: "converged", Pass: true, Detail: "decided 3/3 runs"},
		{Assertion: "survivors >= n/2", Pass: false, Detail: "min survivors 2 of 9 (bound 4)"},
	}
	s.Storm = []chaos.TimelineEntry{
		{Round: 3, Kind: "crash", Nodes: 2, Detail: "mode silent"},
		{Round: 7, Kind: "partition", Nodes: 4, Detail: "groups [1] cut off for rounds 7-9"},
	}
	return s
}

// TestVerdictHTMLBlocks: the HTML artifact carries the "storm
// verdicts" table (the CI chaos-smoke grep target) with PASS/FAIL
// rows, plus the storm timeline.
func TestVerdictHTMLBlocks(t *testing.T) {
	var buf bytes.Buffer
	if err := stormSweep().WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"storm verdicts", "PASS", "FAIL",
		"survivors &gt;= n/2", "min survivors 2 of 9 (bound 4)",
		"storm timeline (first run)", "partition", "mode silent",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("storm HTML missing %q", want)
		}
	}
	if m := externalRef.FindString(page); m != "" {
		t.Errorf("storm HTML references external resources (%q)", m)
	}

	// A sweep without verdicts renders neither block.
	buf.Reset()
	if err := fixtureSweep().WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "storm verdicts") || strings.Contains(buf.String(), "storm timeline") {
		t.Error("verdict blocks rendered for a sweep without a stress section")
	}
}

// TestVerdictCSVSection: the CSV document appends an assertion table
// after a blank separator line.
func TestVerdictCSVSection(t *testing.T) {
	var buf bytes.Buffer
	if err := stormSweep().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\n\n") {
		t.Error("verdict section not separated from the sweep table")
	}
	for _, want := range []string{"assertion,verdict,detail", "converged,PASS,decided 3/3 runs", "survivors >= n/2,FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("storm CSV missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := fixtureSweep().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "assertion") {
		t.Error("verdict section rendered for a sweep without one")
	}
}

// TestVerdictJSONEnvelope: verdicts and storm ride in the envelope only
// when present (omitempty keeps plain sweeps byte-stable).
func TestVerdictJSONEnvelope(t *testing.T) {
	var buf bytes.Buffer
	if err := stormSweep().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"verdicts", "storm"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("storm envelope missing %q", key)
		}
	}
	buf.Reset()
	if err := fixtureSweep().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw = nil
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"verdicts", "storm"} {
		if _, ok := raw[key]; ok {
			t.Errorf("plain envelope leaks %q", key)
		}
	}
}

// TestFprintVerdicts pins the CLI verdict-line layout.
func TestFprintVerdicts(t *testing.T) {
	var buf bytes.Buffer
	if err := FprintVerdicts(&buf, stormSweep().Verdicts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d verdict lines, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "verdict PASS  converged") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "verdict FAIL  survivors >= n/2") {
		t.Errorf("line 1 = %q", lines[1])
	}
	buf.Reset()
	if err := FprintVerdicts(&buf, nil); err != nil || buf.Len() != 0 {
		t.Error("nil verdicts should print nothing")
	}
}
