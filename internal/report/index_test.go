package report

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"

	"anondyn"
)

func fixtureEntries() []IndexEntry {
	return []IndexEntry{
		{
			Title: "a-first.yaml: 2 cells × 3 seeds",
			Path:  "out-a-first.html",
			Cells: []anondyn.CellResult{
				{BatchReport: anondyn.BatchReport{Runs: 3, Decided: 3}},
				{BatchReport: anondyn.BatchReport{Runs: 3, Decided: 2, Violations: 1}},
			},
		},
		{
			Title: "b-second & <escaped>",
			Path:  "reports/out-b-second.html",
			Cells: []anondyn.CellResult{
				{BatchReport: anondyn.BatchReport{Runs: 5, Decided: 5}},
			},
		},
	}
}

// TestWriteIndexLinksAndTotals: the combined page links each per-spec
// artifact by base name and carries the aggregate counts.
func TestWriteIndexLinksAndTotals(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIndex(&buf, "sweep reports: examples/specs", fixtureEntries()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`<a href="out-a-first.html">`,
		`<a href="out-b-second.html">`, // base name, not the nested path
		"b-second &amp; &lt;escaped&gt;",
		"2 sweeps · 3 cells · 11 runs",
		"5/6", // a-first decided/runs
		"5/5", // b-second decided/runs
	} {
		if !strings.Contains(out, want) {
			t.Errorf("index missing %q:\n%s", want, out)
		}
	}
}

// indexExternalRef: the index page may link sibling report files with
// relative hrefs, but must stay fetch-free like every other artifact —
// no scripts, stylesheets, images, or absolute URLs.
var indexExternalRef = regexp.MustCompile(`src=|<script|<link|<img|url\(|https?://|href="/|href="[a-z]+:`)

func TestWriteIndexSelfContained(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIndex(&buf, "index", fixtureEntries()); err != nil {
		t.Fatal(err)
	}
	if m := indexExternalRef.FindString(buf.String()); m != "" {
		t.Errorf("index page carries external reference %q", m)
	}
}

// TestWriteIndexFileRoundTrip exercises the file form the -spec-dir
// batch uses (the -report path itself holds the index).
func TestWriteIndexFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/out.html"
	if err := WriteIndexFile(path, "t", fixtureEntries()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<a href=") {
		t.Error("written index has no links")
	}
}
