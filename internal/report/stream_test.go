package report

import (
	"bytes"
	"testing"

	"anondyn"
	"anondyn/internal/spec"
)

// TestRowStreamMatchesBufferedCSV: rows streamed one at a time must
// accumulate to the exact bytes of rendering the finished row set
// through spec.Table — the contract that keeps a CSV filled during the
// sweep diffable against one written after it.
func TestRowStreamMatchesBufferedCSV(t *testing.T) {
	rows := []anondyn.CellResult{
		{
			N: 9, F: 2, Eps: 1e-3, Algorithm: "dac", Adversary: "er:0.5",
			BatchReport: anondyn.BatchReport{Runs: 3, Decided: 3},
		},
		{
			N: 17, F: 4, Eps: 1e-4, Algorithm: "dbac", Adversary: "rotating:3",
			BatchReport: anondyn.BatchReport{Runs: 3, Decided: 2, Violations: 1},
		},
	}
	for _, withVariants := range []bool{false, true} {
		if withVariants {
			rows[0].Variant = "v0"
			rows[1].Variant = "v1"
		}
		var want bytes.Buffer
		if err := spec.Table("ignored", rows).WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		s, err := NewRowStream(&got, withVariants)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := s.Row(r); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("withVariants=%v: streamed CSV differs from buffered:\nstream:\n%s\nbuffer:\n%s",
				withVariants, got.Bytes(), want.Bytes())
		}
	}
}

// TestRowStreamFlushesPerRow: every Row call must reach the underlying
// writer immediately (a live tail of the file sees committed cells).
func TestRowStreamFlushesPerRow(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewRowStream(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("header not flushed at creation")
	}
	before := buf.Len()
	if err := s.Row(anondyn.CellResult{N: 5, Algorithm: "dac", Adversary: "complete"}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= before {
		t.Error("row not flushed immediately")
	}
}
