package report

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"

	"anondyn"
)

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		want Target
	}{
		{"", Target{}},
		{"csv", Target{Format: FormatCSV}},
		{"json", Target{Format: FormatJSON}},
		{"HTML", Target{Format: FormatHTML}},
		{"out.csv", Target{Format: FormatCSV, Path: "out.csv"}},
		{"out.html", Target{Format: FormatHTML, Path: "out.html"}},
		{"out.HTM", Target{Format: FormatHTML, Path: "out.HTM"}},
		{"out.json", Target{Format: FormatJSON, Path: "out.json"}},
		{"report", Target{Format: FormatJSON, Path: "report"}},
		{"dir/out.txt", Target{Format: FormatJSON, Path: "dir/out.txt"}},
	}
	for _, c := range cases {
		if got := ParseTarget(c.in); got != c.want {
			t.Errorf("ParseTarget(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if ParseTarget("").Enabled() {
		t.Error("empty target enabled")
	}
	if !ParseTarget("csv").Stdout() || ParseTarget("out.csv").Stdout() {
		t.Error("Stdout misclassifies keyword vs path targets")
	}
}

func TestForSpec(t *testing.T) {
	got := ParseTarget("out.html").ForSpec("examples/specs/e3-resilience.yaml")
	want := Target{Format: FormatHTML, Path: "out-e3-resilience.html"}
	if got != want {
		t.Errorf("ForSpec = %+v, want %+v", got, want)
	}
	// Stdout and disabled targets pass through unchanged.
	for _, in := range []string{"", "json"} {
		if got := ParseTarget(in).ForSpec("a.yaml"); got != ParseTarget(in) {
			t.Errorf("ForSpec(%q) = %+v, want unchanged", in, got)
		}
	}
}

func fixtureSweep() *Sweep {
	return &Sweep{
		Spec:         "fixture",
		SeedsPerCell: 3,
		BaseSeed:     42,
		Workers:      2,
		Cells: []anondyn.CellResult{{
			N: 9, F: 2, Eps: 1e-3,
			Algorithm:   "dac",
			Adversary:   "er:0.5",
			BatchReport: anondyn.BatchReport{Runs: 3, Decided: 3},
		}},
		Series: [][]float64{{1, 0.5, 0.1, 0.01, 0.0005}},
		Title:  "fixture sweep",
	}
}

// TestSweepJSONEnvelope pins the envelope keys the CI distributed-smoke
// job diffs on (and Series/Title staying out of it when unset).
func TestSweepJSONEnvelope(t *testing.T) {
	s := fixtureSweep()
	s.Series = nil
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"spec", "seeds_per_cell", "base_seed", "workers", "cells"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("envelope missing %q", key)
		}
	}
	for _, key := range []string{"series", "Title", "title", "Eps", "eps"} {
		if _, ok := raw[key]; ok {
			t.Errorf("envelope leaks %q", key)
		}
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("}\n")) {
		t.Error("envelope missing trailing newline")
	}
}

// externalRef matches anything that would make the HTML artifact fetch
// a remote or local resource — the self-containment contract CI greps
// for.
var externalRef = regexp.MustCompile(`src=|href=|<script|<link|<img|url\(|https?://`)

// TestHTMLSelfContained: the rendered page carries everything inline —
// no scripts, stylesheets, images, or fetches of any kind — and still
// contains the table and per-cell chart content.
func TestHTMLSelfContained(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureSweep().WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if m := externalRef.FindString(page); m != "" {
		t.Errorf("HTML report references external resources (%q)", m)
	}
	for _, want := range []string{"<!doctype html>", "<style>", "<table>", "<svg", "polyline", "fixture sweep", "er:0.5"} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	// The title is escaped.
	var esc bytes.Buffer
	s := fixtureSweep()
	s.Title = `<script>alert(1)</script>`
	if err := s.WriteHTML(&esc); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(esc.String(), "<script>") {
		t.Error("HTML report does not escape the title")
	}
}

// TestHTMLChartDegenerateSeries: flat, empty and zero-valued series
// must render without NaN coordinates.
func TestHTMLChartDegenerateSeries(t *testing.T) {
	for name, series := range map[string][]float64{
		"empty":  {},
		"single": {0.5},
		"zeros":  {0, 0, 0},
		"flat":   {1, 1, 1},
	} {
		var b strings.Builder
		writeChart(&b, HTMLChart{Caption: name, Series: series, Eps: 1e-3})
		if strings.Contains(b.String(), "NaN") {
			t.Errorf("%s series renders NaN coordinates:\n%s", name, b.String())
		}
	}
}

// TestTargetWriteFile: Write renders through the extension-dispatched
// format into the file.
func TestTargetWriteFile(t *testing.T) {
	dir := t.TempDir()
	doc := fixtureSweep()
	for _, name := range []string{"out.json", "out.csv", "out.html"} {
		target := ParseTarget(dir + "/" + name)
		if err := target.Write(doc); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := (Target{}).Write(doc); err != nil {
		t.Errorf("disabled target: %v", err)
	}
}
