package spec

import (
	"reflect"
	"strings"
	"testing"

	"anondyn"
)

const e2ish = `
# A necessity-style sweep exercising most of the format.
name: e2-like
description: split adversary at the crash threshold
ns: [6, 7, 11]
epss: [1e-3]
algorithms: [dac]
adversaries: [halves]
variants:
  - name: paper
  - name: hypothetical
    quorum: crashdeg
seeds_per_cell: 1
max_rounds: 500
inputs: "split:(n+1)/2"
unchecked: true
`

func TestParseYAMLSweep(t *testing.T) {
	sw, err := Parse([]byte(e2ish))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Name != "e2-like" || !sw.Unchecked || sw.MaxRounds != 500 {
		t.Errorf("decoded sweep = %+v", sw)
	}
	if len(sw.Variants) != 2 || sw.Variants[1].Quorum != "crashdeg" {
		t.Errorf("variants = %+v", sw.Variants)
	}
	if sw.Epss[0] != 1e-3 {
		t.Errorf("epss = %v", sw.Epss)
	}
	g, err := sw.Grid()
	if err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	if len(cells) != 6 { // 3 sizes × 2 variants
		t.Fatalf("%d cells, want 6", len(cells))
	}
	if cells[1].Variant.Name != "hypothetical" {
		t.Errorf("cell variant = %q", cells[1].Variant.Name)
	}
}

func TestParseJSONSweep(t *testing.T) {
	sw, err := Parse([]byte(`{
		"name": "json-sweep",
		"ns": [5, 7],
		"epss": [0.01],
		"algorithms": ["dac"],
		"adversaries": ["rotating:crashdeg"],
		"seeds_per_cell": 2,
		"base_seed": 100
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Name != "json-sweep" || sw.BaseSeed != 100 || sw.SeedsPerCell != 2 {
		t.Errorf("decoded sweep = %+v", sw)
	}
	if _, err := sw.Grid(); err != nil {
		t.Fatal(err)
	}
}

// TestParseErrorsCiteKeys pins the error contract: malformed input
// names the offending key or line.
func TestParseErrorsCiteKeys(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"malformed yaml", "ns: [5,", "line 1"},
		{"tab indent", "ns:\n\t- 5", "line 2"},
		{"non-mapping document", "- 5\n- 7", "document"},
		{"unknown key", "ns: [5]\nwibble: 3", "wibble"},
		{"unknown nested key", "ns: [5]\ncrashes:\n  nodes: odd\n  wobble: 1", "crashes.wobble"},
		{"unknown adversary", "ns: [5]\nadversaries: [warp]", `adversaries[0]`},
		{"bad adversary arg", "ns: [5]\nadversaries: [\"rotating:x\"]", "rotating:x"},
		{"unknown algorithm", "ns: [5]\nalgorithms: [paxos]", "algorithms[0]"},
		{"empty ns", "epss: [1e-3]", "ns"},
		{"ns wrong type", "ns: [five]", "ns[0]"},
		{"bad symbolic bound", "ns: [5]\nfs: [n*2]", "fs[0]"},
		{"bad quorum", "ns: [5]\nquorum: sometimes", "quorum"},
		{"bad inputs", "ns: [5]\ninputs: zigzag", "inputs"},
		{"bad crash selector", "ns: [5]\ncrashes:\n  nodes: sideways", "crashes.nodes"},
		{"crash rounds without list", "ns: [5]\ncrashes:\n  nodes: odd\n  rounds: [1]", "crashes.rounds"},
		{"bad strategy", "ns: [5]\nbyzantine:\n  - nodes: [1]\n    strategy: gossip", "byzantine[0].strategy"},
		{"strategy arg count", "ns: [5]\nbyzantine:\n  - nodes: [1]\n    strategy: extremist", "byzantine[0].args"},
		{"seed on unseeded strategy", "ns: [5]\nbyzantine:\n  - nodes: [1]\n    strategy: silent\n    seed: 3", "byzantine[0].seed"},
		{"unnamed second variant", "ns: [5]\nvariants:\n  - name: a\n  - quorum: 3", "variants[1].name"},
		{"unknown construction", "ns: [5]\nconstruction: teleport", "construction"},
		{"cells plus ns", "ns: [5]\ncells:\n  - n: 5\n    f: 1", "cells"},
		{"byzsplit infeasible", "cells:\n  - n: 5\n    f: 2\nconstruction: byzsplit", "n=5 f=2"},
		{"empty doc", "   ", "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw, err := Parse([]byte(tc.in))
			if err == nil {
				// Some failures only surface at Grid-compile time.
				_, err = sw.Grid()
			}
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not cite %q", err, tc.want)
			}
		})
	}
}

// TestSymbolicBoundsPairCells: a symbolic fs entry pairs each n with
// its derived f instead of crossing the axes.
func TestSymbolicBoundsPairCells(t *testing.T) {
	sw, err := Parse([]byte("ns: [5, 7, 9]\nfs: [\"(n-1)/2\"]\nalgorithms: [dac]"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := sw.Grid()
	if err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	if len(cells) != 3 {
		t.Fatalf("%d cells, want 3 (one per n)", len(cells))
	}
	for _, c := range cells {
		if c.F != (c.N-1)/2 {
			t.Errorf("cell n=%d has f=%d, want %d", c.N, c.F, (c.N-1)/2)
		}
	}
}

// TestExplicitCells: a cells list reproduces non-cross-product
// matrices in listed order.
func TestExplicitCells(t *testing.T) {
	sw, err := Parse([]byte("cells:\n  - n: 16\n    f: 3\n  - n: 11\n    f: 2\n  - n: 15\n    f: 3\nalgorithms: [dbac]\nunchecked: true"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := sw.Grid()
	if err != nil {
		t.Fatal(err)
	}
	var got []Pair
	for _, c := range g.Cells() {
		got = append(got, Pair{N: c.N, F: c.F})
	}
	want := []Pair{{16, 3}, {11, 2}, {15, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cells = %v, want %v", got, want)
	}
}

// TestCrashCompile: the declarative schedule materializes the same map
// the hand-rolled experiments built.
func TestCrashCompile(t *testing.T) {
	sw, err := Parse([]byte(`
ns: [9]
fs: ["(n-1)/2"]
inputs: spread
crashes:
  count: "f"
  nodes: odd
  round: 3
  stagger: 2
`))
	if err != nil {
		t.Fatal(err)
	}
	g, err := sw.Grid()
	if err != nil {
		t.Fatal(err)
	}
	s := anondyn.Scenario{}
	g.Mutate(&s, g.Cells()[0], 0)
	got := s.Crashes
	want := map[int]anondyn.Crash{
		1: anondyn.CrashAt(3),
		3: anondyn.CrashAt(5),
		5: anondyn.CrashAt(7),
		7: anondyn.CrashAt(9),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("crashes = %v, want %v", got, want)
	}
}

// TestByzantineCompile covers selector sizing and pinned noise seeds.
func TestByzantineCompile(t *testing.T) {
	sw, err := Parse([]byte(`
ns: [11]
fs: [2]
algorithms: [dbac]
byzantine:
  - count: "f"
    nodes: middle
    strategy: equivocate
  - nodes: [9]
    strategy: noise
    seed: 99
`))
	if err != nil {
		t.Fatal(err)
	}
	g, err := sw.Grid()
	if err != nil {
		t.Fatal(err)
	}
	s := anondyn.Scenario{}
	g.Mutate(&s, g.Cells()[0], 7)
	if len(s.Byzantine) != 3 {
		t.Fatalf("%d byzantine nodes, want 3 (middle f=2 + node 9): %v", len(s.Byzantine), s.Byzantine)
	}
	for _, node := range []int{5, 6, 9} {
		if _, ok := s.Byzantine[node]; !ok {
			t.Errorf("node %d missing from cast %v", node, s.Byzantine)
		}
	}
}

// TestGridRoundTrip is the Grid → spec → Grid contract: a declarative
// grid survives serialization with identical sweep rows.
func TestGridRoundTrip(t *testing.T) {
	g := anondyn.Grid{
		Ns:           []int{5, 7},
		Fs:           []int{0},
		Epss:         []float64{1e-3, 1e-2},
		Algorithms:   []anondyn.Algo{anondyn.AlgoDAC},
		SeedsPerCell: 3,
		BaseSeed:     42,
		MaxRounds:    3000,
	}
	for _, name := range []string{"complete", "er:0.6", "random:2,3"} {
		f, err := anondyn.ParseAdversaryFactory(name)
		if err != nil {
			t.Fatal(err)
		}
		g.Adversaries = append(g.Adversaries, f)
	}

	sw, err := FromGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	encoded := sw.Encode()
	sw2, err := Parse(encoded)
	if err != nil {
		t.Fatalf("re-parse of emitted spec failed: %v\n%s", err, encoded)
	}
	if !reflect.DeepEqual(sw, sw2) {
		t.Fatalf("sweep changed across encode/parse:\n%+v\n%+v\n%s", sw, sw2, encoded)
	}
	g2, err := sw2.Grid()
	if err != nil {
		t.Fatal(err)
	}

	rows, err := g.Run(anondyn.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := g2.Run(anondyn.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, rows2) {
		t.Errorf("round-tripped grid rows differ:\n%+v\n%+v", rows, rows2)
	}
}

// TestFromGridRejectsHooks: grids carrying funcs the format cannot
// express are refused rather than silently truncated.
func TestFromGridRejectsHooks(t *testing.T) {
	base := anondyn.Grid{Ns: []int{5}}
	for name, g := range map[string]anondyn.Grid{
		"skip":     {Ns: base.Ns, Skip: func(anondyn.Cell) bool { return false }},
		"mutate":   {Ns: base.Ns, Mutate: func(*anondyn.Scenario, anondyn.Cell, int64) {}},
		"inputs":   {Ns: base.Ns, Inputs: anondyn.RandomInputs},
		"variants": {Ns: base.Ns, Variants: []anondyn.Variant{{Name: "x"}}},
	} {
		if _, err := FromGrid(g); err == nil {
			t.Errorf("%s: hook-carrying grid serialized", name)
		}
	}
	custom := anondyn.Grid{Ns: []int{5}, Adversaries: []anondyn.AdversaryFactory{
		{Name: "bespoke", New: func(anondyn.Cell, int64) anondyn.Adversary { return anondyn.Complete() }},
	}}
	if _, err := FromGrid(custom); err == nil {
		t.Error("unregistered adversary factory serialized")
	}
}

// TestEncodeParsesBackWithFaults: the writer's block forms (crashes,
// byzantine, variants, cells) re-parse to the same sweep.
func TestEncodeParsesBackWithFaults(t *testing.T) {
	seed := int64(99)
	sw := &Sweep{
		Name:         "full",
		Description:  "writer coverage",
		Pairs:        []Pair{{11, 2}, {16, 3}},
		Epss:         []float64{1e-3},
		Algorithms:   []string{"dbac"},
		Adversaries:  []string{"rotating:byzdeg"},
		Variants:     []Variant{{Name: "K=0"}, {Name: "K=2", Overrides: Overrides{PiggybackWindow: 2}}},
		SeedsPerCell: 1,
		MaxRounds:    500,
		Inputs:       "spread",
		Overrides:    Overrides{PEnd: 14, Unchecked: true, hasUnchecked: true},
		Crashes:      &Crashes{NodeList: []int{1, 4}, Rounds: []int{3, 9}},
		Byzantine: []Cast{
			{Count: "f", Nodes: "middle", Strategy: "equivocate", Args: []float64{0, 1}},
			{NodeList: []int{9}, Strategy: "noise", Seed: &seed},
		},
	}
	if err := sw.validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	encoded := sw.Encode()
	got, err := Parse(encoded)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, encoded)
	}
	if !reflect.DeepEqual(sw, got) {
		t.Errorf("sweep changed across encode/parse:\nwant %+v\ngot  %+v\n%s", sw, got, encoded)
	}
}

// TestCellsOrderContract: explicit cells lists that the n-major sweep
// enumeration would reorder (or that repeat a cell) are rejected
// instead of silently rearranged.
func TestCellsOrderContract(t *testing.T) {
	parse := func(body string) error {
		sw, err := Parse([]byte("algorithms: [dac]\nunchecked: true\n" + body))
		if err != nil {
			return err
		}
		_, err = sw.Grid()
		return err
	}
	if err := parse("cells:\n  - n: 10\n    f: 1\n  - n: 8\n    f: 2\n  - n: 10\n    f: 3"); err == nil {
		t.Error("non-contiguous repeated n accepted")
	} else if !strings.Contains(err.Error(), "cells") {
		t.Errorf("error %q does not cite cells", err)
	}
	if err := parse("cells:\n  - n: 10\n    f: 1\n  - n: 10\n    f: 1"); err == nil {
		t.Error("duplicate cell accepted")
	}
	// Contiguous repeats of an n are fine.
	if err := parse("cells:\n  - n: 10\n    f: 1\n  - n: 10\n    f: 3\n  - n: 8\n    f: 2"); err != nil {
		t.Errorf("contiguous cells rejected: %v", err)
	}
}

// TestEncodeEscapedStrings: names needing quoting survive the
// encode/parse round trip byte-for-byte.
func TestEncodeEscapedStrings(t *testing.T) {
	sw := &Sweep{
		Name:        `quote "me", please`,
		Description: "colon: and # hash",
		Ns:          []int{5},
	}
	if err := sw.validate(); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(sw.Encode())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sw.Encode())
	}
	if got.Name != sw.Name || got.Description != sw.Description {
		t.Errorf("round trip changed strings: %+v", got)
	}
}
