package spec

import (
	"fmt"
	"strconv"
	"strings"

	"anondyn"
)

// Grid compiles the sweep into a runnable anondyn.Grid: axes resolve
// through the algorithm and adversary registries, explicit cells and
// symbolic fault bounds become an n/f pair filter, the variants axis
// becomes Grid.Variants, and the fault pattern (crashes, casts, the
// byzsplit construction) compiles onto Grid.Mutate. Errors cite the
// offending key.
func (s *Sweep) Grid() (anondyn.Grid, error) {
	g := anondyn.Grid{
		SeedsPerCell:     s.SeedsPerCell,
		BaseSeed:         s.BaseSeed,
		MaxRounds:        s.MaxRounds,
		AccountBandwidth: s.AccountBandwidth,
	}
	if err := s.compileAxes(&g); err != nil {
		return anondyn.Grid{}, err
	}
	if err := s.compileVariants(&g); err != nil {
		return anondyn.Grid{}, err
	}
	inputs, err := compileInputs(s.Inputs)
	if err != nil {
		return anondyn.Grid{}, err
	}
	g.Inputs = inputs
	g.Mutate = s.compileMutate()
	if s.Stress != nil {
		s.applyStress(&g)
	}
	if s.Construction == "byzsplit" {
		// Surface an infeasible layout as a spec error, not a run-time
		// panic: every cell must admit the Theorem 10 construction.
		for _, c := range g.Cells() {
			if _, err := anondyn.NewByzSplit(c.N, c.F); err != nil {
				return anondyn.Grid{}, fmt.Errorf("construction: cell n=%d f=%d: %w", c.N, c.F, err)
			}
		}
	}
	return g, nil
}

// compileAxes fills the n/f/ε/algorithm/adversary axes, expanding
// explicit cells and symbolic bounds into a pair filter.
func (s *Sweep) compileAxes(g *anondyn.Grid) error {
	pairs := s.Pairs
	if len(pairs) == 0 && len(s.Fs) == 1 && s.Fs[0].Expr != "" {
		// A symbolic bound pairs each n with its derived f.
		for _, n := range s.Ns {
			pairs = append(pairs, Pair{N: n, F: s.Fs[0].value(n)})
		}
	}
	if len(pairs) > 0 {
		// Distinct axis values in first-seen order plus a membership
		// filter reproduce the pair list under Cells() enumeration
		// (n outer, f inner). That reconstruction can only reorder a
		// list that repeats an n non-contiguously, so reject any list
		// whose declared order the sweep would not honor — a committed
		// artifact must run in the order it reads.
		seen := make(map[Pair]bool, len(pairs))
		var ns, fs []int
		for i, p := range pairs {
			if seen[p] {
				return fmt.Errorf("cells[%d]: duplicate cell n=%d f=%d", i, p.N, p.F)
			}
			seen[p] = true
			if !containsInt(ns, p.N) {
				ns = append(ns, p.N)
			}
			if !containsInt(fs, p.F) {
				fs = append(fs, p.F)
			}
		}
		var enumerated []Pair
		for _, n := range ns {
			for _, f := range fs {
				if seen[Pair{N: n, F: f}] {
					enumerated = append(enumerated, Pair{N: n, F: f})
				}
			}
		}
		for i := range pairs {
			if enumerated[i] != pairs[i] {
				return fmt.Errorf("cells: the sweep enumerates n-major (cell %d would run as n=%d f=%d, not n=%d f=%d); group cells by n in that order",
					i, enumerated[i].N, enumerated[i].F, pairs[i].N, pairs[i].F)
			}
		}
		g.Ns, g.Fs = ns, fs
		g.Skip = func(c anondyn.Cell) bool { return !seen[Pair{N: c.N, F: c.F}] }
	} else {
		g.Ns = s.Ns
		for _, b := range s.Fs {
			g.Fs = append(g.Fs, b.Lit)
		}
	}
	g.Epss = s.Epss
	for _, name := range s.Algorithms {
		a, err := anondyn.ParseAlgo(name)
		if err != nil {
			return fmt.Errorf("algorithms: %w", err)
		}
		g.Algorithms = append(g.Algorithms, a)
	}
	for _, spec := range s.Adversaries {
		f, err := anondyn.ParseAdversaryFactory(spec)
		if err != nil {
			return fmt.Errorf("adversaries: %w", err)
		}
		g.Adversaries = append(g.Adversaries, f)
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// compileVariants merges the sweep-wide overrides into each variant
// (variant fields win) and compiles the result onto the Grid's
// variants axis. With no variants axis, the sweep-wide overrides
// become one unnamed variant.
func (s *Sweep) compileVariants(g *anondyn.Grid) error {
	variants := s.Variants
	if len(variants) == 0 {
		if !s.Overrides.isZero() {
			variants = []Variant{{}}
		} else {
			return nil
		}
	}
	for _, v := range variants {
		merged := mergeOverrides(s.Overrides, v.Overrides)
		apply, err := compileOverrides(merged)
		if err != nil {
			return err
		}
		g.Variants = append(g.Variants, anondyn.Variant{Name: v.Name, Apply: apply})
	}
	return nil
}

// isZero reports whether no override is set.
func (o Overrides) isZero() bool {
	return !o.Unchecked && !o.hasUnchecked && o.Quorum == "" && o.PEnd == 0 &&
		o.PiggybackWindow == 0 && o.MegaT == 0 && o.MaxMessageBytes == 0 && o.Algorithm == ""
}

// mergeOverrides layers a variant's overrides on the sweep-wide base.
func mergeOverrides(base, v Overrides) Overrides {
	out := base
	if v.hasUnchecked {
		out.Unchecked = v.Unchecked
		out.hasUnchecked = true
	}
	if v.Quorum != "" {
		out.Quorum = v.Quorum
	}
	if v.PEnd != 0 {
		out.PEnd = v.PEnd
	}
	if v.PiggybackWindow != 0 {
		out.PiggybackWindow = v.PiggybackWindow
	}
	if v.MegaT != 0 {
		out.MegaT = v.MegaT
	}
	if v.MaxMessageBytes != 0 {
		out.MaxMessageBytes = v.MaxMessageBytes
	}
	if v.Algorithm != "" {
		out.Algorithm = v.Algorithm
	}
	return out
}

// compileOverrides turns one merged override block into a scenario
// hook. The quorum and algorithm symbols were validated at parse time.
func compileOverrides(o Overrides) (func(*anondyn.Scenario), error) {
	var algo anondyn.Algo
	if o.Algorithm != "" {
		a, err := anondyn.ParseAlgo(o.Algorithm)
		if err != nil {
			return nil, fmt.Errorf("algorithm: %w", err)
		}
		algo = a
	}
	quorum, err := compileQuorum(o.Quorum)
	if err != nil {
		return nil, err
	}
	return func(s *anondyn.Scenario) {
		if o.Unchecked {
			s.Unchecked = true
		}
		if quorum != nil {
			s.QuorumOverride = quorum(s)
		}
		if o.PEnd != 0 {
			s.PEndOverride = o.PEnd
		}
		if o.PiggybackWindow != 0 {
			s.PiggybackWindow = o.PiggybackWindow
		}
		if o.MegaT != 0 {
			s.MegaT = o.MegaT
		}
		if o.MaxMessageBytes != 0 {
			s.MaxMessageBytes = o.MaxMessageBytes
		}
		if algo != 0 {
			s.Algorithm = algo
		}
	}, nil
}

// compileQuorum resolves the quorum grammar against a run's scenario.
func compileQuorum(q string) (func(*anondyn.Scenario) int, error) {
	switch q {
	case "":
		return nil, nil
	case "crashdeg":
		return func(s *anondyn.Scenario) int { return anondyn.CrashDegree(s.N) }, nil
	case "byzdeg":
		return func(s *anondyn.Scenario) int { return anondyn.ByzDegree(s.N, s.F) }, nil
	case "f":
		return func(s *anondyn.Scenario) int { return s.F }, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil {
		return nil, fmt.Errorf("quorum: %q is neither an integer nor crashdeg/byzdeg/f", q)
	}
	return func(*anondyn.Scenario) int { return v }, nil
}

// compileInputs resolves the inputs grammar into a Grid input
// generator; "" and "random" keep the Grid default (seeded random
// inputs).
func compileInputs(spec string) (func(n int, seed int64) []float64, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "", "random":
		return nil, nil
	case "spread":
		return func(n int, _ int64) []float64 { return anondyn.SpreadInputs(n) }, nil
	case "split":
		split, err := compileSplit(arg)
		if err != nil {
			return nil, err
		}
		return func(n int, _ int64) []float64 { return anondyn.SplitInputs(n, split(n)) }, nil
	}
	return nil, fmt.Errorf("inputs: unknown generator %q", spec)
}

// compileSplit resolves the split point: n/2 by default, the ceiling
// (n+1)/2, or a literal.
func compileSplit(arg string) (func(n int) int, error) {
	switch arg {
	case "", "n/2":
		return func(n int) int { return n / 2 }, nil
	case "(n+1)/2":
		return func(n int) int { return (n + 1) / 2 }, nil
	}
	k, err := strconv.Atoi(arg)
	if err != nil {
		return nil, fmt.Errorf("inputs: split argument %q: %v", arg, err)
	}
	return func(int) int { return k }, nil
}

// compileMutate assembles the per-run fault hook: the byzsplit
// construction, then crash schedules, then Byzantine casts. Returns
// nil when the sweep declares none of them.
func (s *Sweep) compileMutate() func(*anondyn.Scenario, anondyn.Cell, int64) {
	if s.Construction == "" && s.Crashes == nil && len(s.Byzantine) == 0 {
		return nil
	}
	return func(sc *anondyn.Scenario, c anondyn.Cell, seed int64) {
		if s.Construction == "byzsplit" {
			split, err := anondyn.NewByzSplit(c.N, c.F)
			if err != nil {
				// Grid() validated every cell before the run started.
				panic(fmt.Sprintf("spec: byzsplit on validated cell n=%d f=%d: %v", c.N, c.F, err))
			}
			sc.Adversary = split.Adversary()
			sc.Byzantine = split.Byzantine()
			sc.Inputs = split.Inputs()
		}
		if s.Crashes != nil {
			sc.Crashes = s.Crashes.compile(c)
		}
		if len(s.Byzantine) > 0 {
			byz := make(map[int]anondyn.Strategy)
			for i := range s.Byzantine {
				s.Byzantine[i].compile(c, seed, byz)
			}
			sc.Byzantine = byz
		}
	}
}

// compile materializes the crash schedule for one cell.
func (c *Crashes) compile(cell anondyn.Cell) map[int]anondyn.Crash {
	nodes := c.victims(cell)
	crashes := make(map[int]anondyn.Crash, len(nodes))
	for i, node := range nodes {
		round := c.Round + i*c.Stagger
		if len(c.Rounds) > 0 {
			round = c.Rounds[i]
		}
		if c.Mode == "silent" {
			crashes[node] = anondyn.CrashSilent(round)
		} else {
			crashes[node] = anondyn.CrashAt(round)
		}
	}
	return crashes
}

// victims resolves the victim set for one cell, clipped to valid IDs.
func (c *Crashes) victims(cell anondyn.Cell) []int {
	if len(c.NodeList) > 0 {
		return c.NodeList
	}
	count := resolveCount(c.Count, cell)
	var nodes []int
	switch c.Nodes {
	case "odd":
		for id := 1; id < cell.N && len(nodes) < count; id += 2 {
			nodes = append(nodes, id)
		}
	case "even":
		for id := 0; id < cell.N && len(nodes) < count; id += 2 {
			nodes = append(nodes, id)
		}
	case "first":
		for id := 0; id < cell.N && len(nodes) < count; id++ {
			nodes = append(nodes, id)
		}
	case "top":
		for id := cell.N - 1; id >= 0 && len(nodes) < count; id-- {
			nodes = append(nodes, id)
		}
	}
	return nodes
}

// compile adds one cast's strategies into the run's Byzantine map.
func (c *Cast) compile(cell anondyn.Cell, seed int64, byz map[int]anondyn.Strategy) {
	nodes := c.NodeList
	if len(nodes) == 0 {
		count := resolveCount(c.Count, cell)
		switch c.Nodes {
		case "middle":
			for id := cell.N / 2; id < cell.N && len(nodes) < count; id++ {
				nodes = append(nodes, id)
			}
		case "first":
			for id := 0; id < cell.N && len(nodes) < count; id++ {
				nodes = append(nodes, id)
			}
		case "top":
			for id := cell.N - 1; id >= 0 && len(nodes) < count; id-- {
				nodes = append(nodes, id)
			}
		}
	}
	arg := func(i int) float64 {
		if i < len(c.Args) {
			return c.Args[i]
		}
		return 0
	}
	for _, node := range nodes {
		switch c.Strategy {
		case "silent":
			byz[node] = anondyn.Silent()
		case "extremist":
			byz[node] = anondyn.Extremist(arg(0))
		case "equivocate":
			low, high := 0.0, 1.0
			if len(c.Args) == 2 {
				low, high = arg(0), arg(1)
			}
			byz[node] = anondyn.Equivocator(low, high)
		case "noise":
			noiseSeed := seed + int64(node)
			if c.Seed != nil {
				noiseSeed = *c.Seed
			}
			byz[node] = anondyn.RandomNoise(noiseSeed)
		case "laggard":
			byz[node] = anondyn.Laggard(arg(0))
		case "mimic":
			byz[node] = anondyn.Mimic(int(arg(0)))
		}
	}
}

// resolveCount resolves the count grammar for one cell.
func resolveCount(count string, cell anondyn.Cell) int {
	switch count {
	case "", "f":
		return cell.F
	case "(n-1)/2":
		return (cell.N - 1) / 2
	}
	v, _ := strconv.Atoi(count) // validated at parse time
	return v
}
