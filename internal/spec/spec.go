// Package spec parses declarative sweep definitions — YAML or JSON
// scenario matrices — into anondyn.Grid values and emits Grids back
// out as files. A spec names its axes (ns/fs/epss/algorithms/
// adversaries, plus an optional variants axis of scenario overrides),
// the Monte-Carlo width and seeding, the round and bandwidth
// accounting knobs, and the fault pattern (crash schedules and
// Byzantine casts, compiled onto Grid.Mutate), so every experiment in
// the repository is a reviewable, diffable, CI-runnable artifact
// instead of a flag string or a hand-rolled loop. Validation errors
// cite the offending key.
package spec

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"anondyn"
	"anondyn/internal/chaos"
)

// Sweep is one declarative scenario matrix. The zero value of every
// field means "unset" and inherits the Grid default.
type Sweep struct {
	// Name labels the sweep in reports and errors.
	Name string
	// Description says what the sweep demonstrates.
	Description string

	// Ns are the network sizes. Either Ns (crossed with Fs) or Pairs
	// must be set.
	Ns []int
	// Fs are the fault bounds: literals or the symbolic per-n bounds
	// "(n-1)/2" (max crash f), "n/2" (the crash boundary), "(n-1)/5"
	// (max Byzantine f). A symbolic entry pairs each n with its derived
	// f instead of crossing the axes.
	Fs []Bound
	// Pairs lists explicit {n, f} cells for matrices that are not a
	// cross product (spec key "cells").
	Pairs []Pair
	// Epss are the ε values.
	Epss []float64
	// Algorithms are algorithm names in ParseAlgo spelling.
	Algorithms []string
	// Adversaries are factory specs in ParseAdversaryFactory grammar.
	Adversaries []string
	// Variants is the optional scenario-override axis.
	Variants []Variant

	// SeedsPerCell is the Monte-Carlo width per cell.
	SeedsPerCell int
	// BaseSeed offsets the global seed sequence.
	BaseSeed int64
	// MaxRounds caps each run.
	MaxRounds int
	// AccountBandwidth tallies wire bytes per run.
	AccountBandwidth bool
	// Inputs picks the input generator: "" (random), "random",
	// "spread", "split" and the parametric "split:<k>", "split:n/2",
	// "split:(n+1)/2".
	Inputs string
	// Construction swaps in a packaged impossibility construction:
	// "byzsplit" overrides each run's adversary, Byzantine cast and
	// inputs with the Theorem 10 layout for the cell's n and f.
	Construction string

	// Overrides are the sweep-wide scenario overrides; a variant's own
	// overrides take precedence per field.
	Overrides

	// Crashes schedules crash faults on every run.
	Crashes *Crashes
	// Byzantine assigns Byzantine casts on every run.
	Byzantine []Cast

	// Stress is the optional chaos section: a generated fleet, a
	// failure-storm schedule and survival assertions. It replaces the
	// ns/fs matrix (the fleet defines the single network size) and is
	// incompatible with the fault-pattern keys — the storm is the fault
	// pattern.
	Stress *chaos.Stress
}

// Pair is one explicit {n, f} cell.
type Pair struct {
	N int
	F int
}

// Bound is a fault-bound axis entry: a literal, or a symbolic per-n
// expression (Expr non-empty).
type Bound struct {
	Lit  int
	Expr string
}

// value resolves the bound for one network size.
func (b Bound) value(n int) int {
	switch b.Expr {
	case "":
		return b.Lit
	case "(n-1)/2":
		return (n - 1) / 2
	case "n/2":
		return n / 2
	case "(n-1)/5":
		return (n - 1) / 5
	}
	panic("spec: unchecked bound expression " + b.Expr) // validated at decode
}

// boundExprs lists the accepted symbolic fault bounds.
const boundExprs = `"(n-1)/2", "n/2" or "(n-1)/5"`

// Overrides are the declarative counterparts of the Scenario override
// fields — the knobs the necessity and trade-off experiments turn.
type Overrides struct {
	// Unchecked skips the n-vs-f resilience validation.
	Unchecked bool
	// Quorum replaces the algorithm's quorum: an integer literal or
	// the symbolic "crashdeg" (⌊n/2⌋), "byzdeg" (⌊(n+3f)/2⌋), "f".
	// Empty = the paper quorum.
	Quorum string
	// PEnd, when > 0, replaces the ε-derived output phase.
	PEnd int
	// PiggybackWindow is K for dbac-pb.
	PiggybackWindow int
	// MegaT is the block length for megaround.
	MegaT int
	// MaxMessageBytes, when > 0, is the per-link byte budget.
	MaxMessageBytes int
	// Algorithm, when set on a variant, replaces the cell's algorithm.
	Algorithm string

	hasUnchecked bool // distinguishes explicit false for merging
}

// Variant is one entry of the scenario-override axis.
type Variant struct {
	// Name labels the variant in cell results.
	Name string
	Overrides
}

// Crashes declares a crash schedule applied to every run of the
// sweep. Either Nodes (a named selector, sized by Count) or NodeList
// (explicit IDs) picks the victims.
type Crashes struct {
	// Count sizes the victim set for a named selector: an integer
	// literal, "f" (the cell's fault bound) or "(n-1)/2". Defaults to
	// "f".
	Count string
	// Nodes is a named victim selector: "odd" (IDs 1,3,5,…), "even",
	// "first" (0,1,2,…) or "top" (n−1, n−2, …).
	Nodes string
	// NodeList gives explicit victim IDs instead of a selector.
	NodeList []int
	// Mode is "clean" (default: crash at the end of the round) or
	// "silent" (the final broadcast is suppressed).
	Mode string
	// Round is the crash round of the first victim.
	Round int
	// Stagger offsets each subsequent victim's crash round (0 = all
	// crash at Round).
	Stagger int
	// Rounds gives explicit per-victim crash rounds matching NodeList.
	Rounds []int
}

// Cast assigns one Byzantine strategy to a set of nodes.
type Cast struct {
	// Count sizes the cast for a named selector (same grammar as
	// Crashes.Count).
	Count string
	// Nodes is a named selector: "middle" (n/2, n/2+1, …), "first" or
	// "top".
	Nodes string
	// NodeList gives explicit IDs instead of a selector.
	NodeList []int
	// Strategy is the strategy name: silent, extremist, equivocate,
	// noise, laggard or mimic.
	Strategy string
	// Args are the strategy parameters (extremist value, equivocate
	// low/high, laggard value, mimic target).
	Args []float64
	// Seed pins the noise strategy's seed; nil = run seed + node ID.
	Seed *int64
}

// Parse reads one sweep from YAML or JSON bytes (autodetected).
func Parse(data []byte) (*Sweep, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, fmt.Errorf("spec: empty document")
	}
	var (
		doc any
		err error
	)
	if strings.HasPrefix(trimmed, "{") {
		doc, err = parseJSON(data)
	} else {
		doc, err = parseYAML(data)
	}
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	sw, err := decodeSweep(doc)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := sw.validate(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return sw, nil
}

// ParseFile reads one sweep from a YAML or JSON file, prefixing errors
// with the path.
func ParseFile(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sw, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sw, nil
}

// parseJSON parses JSON into the same generic tree as parseYAML,
// keeping integers exact.
func parseJSON(data []byte) (any, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	return normalizeJSON(doc), nil
}

// normalizeJSON converts json.Number leaves into int64/float64.
func normalizeJSON(v any) any {
	switch v := v.(type) {
	case json.Number:
		if i, err := strconv.ParseInt(v.String(), 10, 64); err == nil {
			return i
		}
		f, _ := v.Float64()
		return f
	case []any:
		for i := range v {
			v[i] = normalizeJSON(v[i])
		}
		return v
	case map[string]any:
		for k := range v {
			v[k] = normalizeJSON(v[k])
		}
		return v
	default:
		return v
	}
}

// validate checks cross-field consistency after decoding; field-level
// syntax is checked during decode.
func (s *Sweep) validate() error {
	if s.Stress != nil {
		if err := s.validateStress(); err != nil {
			return err
		}
	} else if len(s.Ns) == 0 && len(s.Pairs) == 0 {
		return fmt.Errorf("ns: at least one network size is required (or set cells or stress)")
	}
	if len(s.Ns) > 0 && len(s.Pairs) > 0 {
		return fmt.Errorf("cells: cannot combine with ns (pick explicit cells or a cross product)")
	}
	if len(s.Pairs) > 0 && len(s.Fs) > 0 {
		return fmt.Errorf("cells: cannot combine with fs")
	}
	for i, n := range s.Ns {
		if n < 1 {
			return fmt.Errorf("ns[%d]: network size %d < 1", i, n)
		}
	}
	for i, p := range s.Pairs {
		if p.N < 1 {
			return fmt.Errorf("cells[%d].n: network size %d < 1", i, p.N)
		}
		if p.F < 0 {
			return fmt.Errorf("cells[%d].f: fault bound %d < 0", i, p.F)
		}
	}
	symbolic := false
	for _, b := range s.Fs {
		if b.Expr != "" {
			symbolic = true
		}
	}
	if symbolic && len(s.Fs) > 1 {
		return fmt.Errorf("fs: a symbolic bound must be the only fs entry (it pairs every n with its derived f)")
	}
	for i, name := range s.Algorithms {
		if _, err := anondyn.ParseAlgo(name); err != nil {
			return fmt.Errorf("algorithms[%d]: %w", i, err)
		}
	}
	for i, a := range s.Adversaries {
		if _, err := anondyn.ParseAdversaryFactory(a); err != nil {
			return fmt.Errorf("adversaries[%d]: %w", i, err)
		}
	}
	if len(s.Variants) > 1 {
		seen := make(map[string]bool, len(s.Variants))
		for i, v := range s.Variants {
			if v.Name == "" {
				return fmt.Errorf("variants[%d].name: every variant of a multi-variant axis needs a name", i)
			}
			if seen[v.Name] {
				return fmt.Errorf("variants[%d].name: duplicate variant %q", i, v.Name)
			}
			seen[v.Name] = true
		}
	}
	if err := s.Overrides.validate(""); err != nil {
		return err
	}
	for i, v := range s.Variants {
		if err := v.Overrides.validate(fmt.Sprintf("variants[%d].", i)); err != nil {
			return err
		}
	}
	switch s.Construction {
	case "", "byzsplit":
	default:
		return fmt.Errorf("construction: unknown construction %q (want byzsplit)", s.Construction)
	}
	if s.Crashes != nil {
		if err := s.Crashes.validate(); err != nil {
			return err
		}
	}
	for i, c := range s.Byzantine {
		if err := c.validate(fmt.Sprintf("byzantine[%d].", i)); err != nil {
			return err
		}
	}
	name, arg, hasArg := strings.Cut(s.Inputs, ":")
	switch name {
	case "", "random", "spread":
		if hasArg {
			return fmt.Errorf("inputs: %s takes no argument (got %q)", name, s.Inputs)
		}
	case "split":
		switch arg {
		case "", "n/2", "(n+1)/2":
		default:
			if _, err := strconv.Atoi(arg); err != nil {
				return fmt.Errorf("inputs: split argument %q is neither an integer, n/2 nor (n+1)/2", arg)
			}
		}
	default:
		return fmt.Errorf("inputs: unknown generator %q (want random, spread or split[:<k>|n/2|(n+1)/2])", s.Inputs)
	}
	return nil
}

// validate checks one override block; path prefixes the offending key.
func (o Overrides) validate(path string) error {
	switch o.Quorum {
	case "", "crashdeg", "byzdeg", "f":
	default:
		if _, err := strconv.Atoi(o.Quorum); err != nil {
			return fmt.Errorf("%squorum: %q is neither an integer nor crashdeg/byzdeg/f", path, o.Quorum)
		}
	}
	if o.Algorithm != "" {
		if path == "" {
			return fmt.Errorf("algorithm: use the algorithms axis at the top level (algorithm overrides belong to variants)")
		}
		if _, err := anondyn.ParseAlgo(o.Algorithm); err != nil {
			return fmt.Errorf("%salgorithm: %w", path, err)
		}
	}
	return nil
}

// validate checks one crash schedule.
func (c *Crashes) validate() error {
	if len(c.NodeList) > 0 {
		if c.Nodes != "" {
			return fmt.Errorf("crashes.nodes: cannot combine a named selector with an explicit node list")
		}
		if len(c.Rounds) > 0 && len(c.Rounds) != len(c.NodeList) {
			return fmt.Errorf("crashes.rounds: %d rounds for %d nodes", len(c.Rounds), len(c.NodeList))
		}
	} else {
		switch c.Nodes {
		case "odd", "even", "first", "top":
		case "":
			return fmt.Errorf("crashes.nodes: pick a selector (odd, even, first, top) or an explicit node list")
		default:
			return fmt.Errorf("crashes.nodes: unknown selector %q (want odd, even, first, top or a node list)", c.Nodes)
		}
		if len(c.Rounds) > 0 {
			return fmt.Errorf("crashes.rounds: explicit rounds need an explicit node list")
		}
	}
	if err := validateCount("crashes.count", c.Count); err != nil {
		return err
	}
	switch c.Mode {
	case "", "clean", "silent":
	default:
		return fmt.Errorf("crashes.mode: unknown mode %q (want clean or silent)", c.Mode)
	}
	return nil
}

// validate checks one Byzantine cast.
func (c *Cast) validate(path string) error {
	if len(c.NodeList) > 0 && c.Nodes != "" {
		return fmt.Errorf("%snodes: cannot combine a named selector with an explicit node list", path)
	}
	if len(c.NodeList) == 0 {
		switch c.Nodes {
		case "middle", "first", "top":
		case "":
			return fmt.Errorf("%snodes: pick a selector (middle, first, top) or an explicit node list", path)
		default:
			return fmt.Errorf("%snodes: unknown selector %q (want middle, first, top or a node list)", path, c.Nodes)
		}
	}
	if err := validateCount(path+"count", c.Count); err != nil {
		return err
	}
	switch c.Strategy {
	case "silent", "noise":
		if len(c.Args) != 0 {
			return fmt.Errorf("%sargs: %s takes no arguments", path, c.Strategy)
		}
	case "extremist", "laggard", "mimic":
		if len(c.Args) != 1 {
			return fmt.Errorf("%sargs: %s wants exactly one argument", path, c.Strategy)
		}
	case "equivocate":
		if len(c.Args) != 0 && len(c.Args) != 2 {
			return fmt.Errorf("%sargs: equivocate wants no arguments or [low, high]", path)
		}
	case "":
		return fmt.Errorf("%sstrategy: required", path)
	default:
		return fmt.Errorf("%sstrategy: unknown strategy %q (want silent, extremist, equivocate, noise, laggard or mimic)",
			path, c.Strategy)
	}
	if c.Seed != nil && c.Strategy != "noise" {
		return fmt.Errorf("%sseed: only the noise strategy is seeded", path)
	}
	return nil
}

// validateCount checks the count grammar shared by crashes and casts.
func validateCount(key, count string) error {
	switch count {
	case "", "f", "(n-1)/2":
		return nil
	}
	v, err := strconv.Atoi(count)
	if err != nil || v < 0 {
		return fmt.Errorf("%s: %q is neither a non-negative integer, \"f\" nor \"(n-1)/2\"", key, count)
	}
	return nil
}
