package spec

import (
	"fmt"
	"strconv"
	"strings"

	"anondyn"
)

// The emitter is the write half of the round-trip: FromGrid captures a
// declarative Grid as a Sweep, and Encode renders a Sweep as the YAML
// the parser reads back, so flag-driven CLI runs can be saved as
// reviewable spec files (dynabench/dynasim -save-spec).

// FromGrid captures a Grid built from declarative parts. Grids
// carrying hooks the file format cannot express — Skip, Mutate, a
// custom Inputs generator, or a Variants axis — are rejected: those
// come from spec files or code, which are already the artifact.
func FromGrid(g anondyn.Grid) (*Sweep, error) {
	switch {
	case g.Skip != nil:
		return nil, fmt.Errorf("spec: cannot serialize a Grid with a Skip hook")
	case g.Mutate != nil:
		return nil, fmt.Errorf("spec: cannot serialize a Grid with a Mutate hook")
	case g.Inputs != nil:
		return nil, fmt.Errorf("spec: cannot serialize a Grid with a custom Inputs generator")
	case len(g.Variants) > 0:
		return nil, fmt.Errorf("spec: cannot serialize a Grid with a Variants axis")
	}
	s := &Sweep{
		Ns:               g.Ns,
		Epss:             g.Epss,
		SeedsPerCell:     g.SeedsPerCell,
		BaseSeed:         g.BaseSeed,
		MaxRounds:        g.MaxRounds,
		AccountBandwidth: g.AccountBandwidth,
	}
	for _, f := range g.Fs {
		s.Fs = append(s.Fs, Bound{Lit: f})
	}
	for _, a := range g.Algorithms {
		name, err := algoSpecName(a)
		if err != nil {
			return nil, err
		}
		s.Algorithms = append(s.Algorithms, name)
	}
	for _, adv := range g.Adversaries {
		if _, err := anondyn.ParseAdversaryFactory(adv.Name); err != nil {
			return nil, fmt.Errorf("spec: adversary %q is not registry-resolvable: %w", adv.Name, err)
		}
		s.Adversaries = append(s.Adversaries, adv.Name)
	}
	return s, nil
}

// algoSpecName maps an algorithm back to its ParseAlgo spelling.
func algoSpecName(a anondyn.Algo) (string, error) {
	for _, name := range []string{
		"dac", "dbac", "dbac-pb", "megaround", "fullinfo", "reliter",
		"bacrel", "floodmin", "dac-nojump",
	} {
		if parsed, err := anondyn.ParseAlgo(name); err == nil && parsed == a {
			return name, nil
		}
	}
	return "", fmt.Errorf("spec: algorithm %v has no spec spelling", a)
}

// Encode renders the sweep as YAML in canonical key order. The output
// parses back to an equal Sweep (asserted by the round-trip tests).
func (s *Sweep) Encode() []byte {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	if s.Name != "" {
		w("name: %s", yamlString(s.Name))
	}
	if s.Description != "" {
		w("description: %s", yamlString(s.Description))
	}
	if len(s.Ns) > 0 {
		w("ns: %s", flowInts(s.Ns))
	}
	if len(s.Pairs) > 0 {
		w("cells:")
		for _, p := range s.Pairs {
			w("  - n: %d", p.N)
			w("    f: %d", p.F)
		}
	}
	if len(s.Fs) > 0 {
		items := make([]string, len(s.Fs))
		for i, f := range s.Fs {
			if f.Expr != "" {
				items[i] = yamlString(f.Expr)
			} else {
				items[i] = strconv.Itoa(f.Lit)
			}
		}
		w("fs: [%s]", strings.Join(items, ", "))
	}
	if len(s.Epss) > 0 {
		items := make([]string, len(s.Epss))
		for i, e := range s.Epss {
			items[i] = formatFloat(e)
		}
		w("epss: [%s]", strings.Join(items, ", "))
	}
	if len(s.Algorithms) > 0 {
		w("algorithms: [%s]", strings.Join(quoteAll(s.Algorithms), ", "))
	}
	if len(s.Adversaries) > 0 {
		w("adversaries: [%s]", strings.Join(quoteAll(s.Adversaries), ", "))
	}
	if len(s.Variants) > 0 {
		w("variants:")
		for _, v := range s.Variants {
			prefix := "  - "
			writeKV := func(key, val string) {
				w("%s%s: %s", prefix, key, val)
				prefix = "    "
			}
			if v.Name != "" {
				writeKV("name", yamlString(v.Name))
			}
			encodeOverrides(v.Overrides, writeKV)
			if prefix == "  - " {
				// A fully-default variant still needs a line to exist.
				w("  - name: \"\"")
			}
		}
	}
	if s.SeedsPerCell != 0 {
		w("seeds_per_cell: %d", s.SeedsPerCell)
	}
	if s.BaseSeed != 0 {
		w("base_seed: %d", s.BaseSeed)
	}
	if s.MaxRounds != 0 {
		w("max_rounds: %d", s.MaxRounds)
	}
	if s.AccountBandwidth {
		w("account_bandwidth: true")
	}
	if s.Inputs != "" {
		w("inputs: %s", yamlString(s.Inputs))
	}
	if s.Construction != "" {
		w("construction: %s", yamlString(s.Construction))
	}
	encodeOverrides(s.Overrides, func(key, val string) { w("%s: %s", key, val) })
	if c := s.Crashes; c != nil {
		w("crashes:")
		if c.Count != "" {
			w("  count: %s", countValue(c.Count))
		}
		if c.Nodes != "" {
			w("  nodes: %s", yamlString(c.Nodes))
		}
		if len(c.NodeList) > 0 {
			w("  nodes: %s", flowInts(c.NodeList))
		}
		if c.Mode != "" {
			w("  mode: %s", yamlString(c.Mode))
		}
		if c.Round != 0 {
			w("  round: %d", c.Round)
		}
		if c.Stagger != 0 {
			w("  stagger: %d", c.Stagger)
		}
		if len(c.Rounds) > 0 {
			w("  rounds: %s", flowInts(c.Rounds))
		}
	}
	if len(s.Byzantine) > 0 {
		w("byzantine:")
		for i := range s.Byzantine {
			c := &s.Byzantine[i]
			prefix := "  - "
			writeKV := func(key, val string) {
				w("%s%s: %s", prefix, key, val)
				prefix = "    "
			}
			if c.Count != "" {
				writeKV("count", countValue(c.Count))
			}
			if c.Nodes != "" {
				writeKV("nodes", yamlString(c.Nodes))
			}
			if len(c.NodeList) > 0 {
				writeKV("nodes", flowInts(c.NodeList))
			}
			writeKV("strategy", yamlString(c.Strategy))
			if len(c.Args) > 0 {
				items := make([]string, len(c.Args))
				for j, a := range c.Args {
					items[j] = formatFloat(a)
				}
				writeKV("args", "["+strings.Join(items, ", ")+"]")
			}
			if c.Seed != nil {
				writeKV("seed", strconv.FormatInt(*c.Seed, 10))
			}
		}
	}
	if s.Stress != nil {
		s.encodeStress(w)
	}
	return []byte(b.String())
}

// encodeOverrides writes the set override keys through writeKV.
func encodeOverrides(o Overrides, writeKV func(key, val string)) {
	if o.Algorithm != "" {
		writeKV("algorithm", yamlString(o.Algorithm))
	}
	if o.hasUnchecked || o.Unchecked {
		writeKV("unchecked", strconv.FormatBool(o.Unchecked))
	}
	if o.Quorum != "" {
		writeKV("quorum", countValue(o.Quorum))
	}
	if o.PEnd != 0 {
		writeKV("p_end", strconv.Itoa(o.PEnd))
	}
	if o.PiggybackWindow != 0 {
		writeKV("piggyback_window", strconv.Itoa(o.PiggybackWindow))
	}
	if o.MegaT != 0 {
		writeKV("mega_t", strconv.Itoa(o.MegaT))
	}
	if o.MaxMessageBytes != 0 {
		writeKV("max_message_bytes", strconv.Itoa(o.MaxMessageBytes))
	}
}

// countValue emits an int-or-symbol value: integers bare, symbols
// quoted.
func countValue(s string) string {
	if _, err := strconv.Atoi(s); err == nil {
		return s
	}
	return yamlString(s)
}

// yamlString quotes a string whenever the bare spelling could re-parse
// as something else.
func yamlString(s string) string {
	bare := s != "" &&
		!strings.ContainsAny(s, "\"'#:[]{},\n") &&
		s != "true" && s != "false" && s != "null" && s != "~" &&
		!strings.HasPrefix(s, "- ") && s != "-" &&
		strings.TrimSpace(s) == s
	if bare {
		if _, err := strconv.ParseFloat(s, 64); err == nil {
			bare = false
		}
	}
	if bare {
		return s
	}
	return strconv.Quote(s)
}

func flowInts(xs []int) string {
	items := make([]string, len(xs))
	for i, x := range xs {
		items[i] = strconv.Itoa(x)
	}
	return "[" + strings.Join(items, ", ") + "]"
}

// formatFloat keeps the shortest round-trippable spelling.
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0" // keep floats parsing as floats
	}
	return s
}

// quoteAll YAML-quotes every element as needed.
func quoteAll(items []string) []string {
	out := make([]string, len(items))
	for i, s := range items {
		out[i] = yamlString(s)
	}
	return out
}
