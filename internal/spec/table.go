package spec

import (
	"fmt"
	"path/filepath"

	"anondyn"
	"anondyn/internal/analysis"
)

// Load parses a spec file and compiles it to a runnable grid, with an
// optional seeds-per-cell override (> 0; the CLI -seeds flag and the
// CI one-seed smoke) — the shared front half of every CLI spec run.
func Load(path string, seedsOverride int) (*Sweep, anondyn.Grid, error) {
	sw, err := ParseFile(path)
	if err != nil {
		return nil, anondyn.Grid{}, err
	}
	grid, err := compile(sw, seedsOverride)
	if err != nil {
		return nil, anondyn.Grid{}, fmt.Errorf("%s: %w", path, err)
	}
	return sw, grid, nil
}

// Compile parses a sweep from raw bytes and compiles it with an
// optional seeds-per-cell override — the wire-side counterpart of
// Load. Both ends of the shard protocol derive their grid through this
// one path, so a coordinator and its workers agree on the flattened
// run space (cells × seeds and their order) by construction.
func Compile(data []byte, seedsOverride int) (*Sweep, anondyn.Grid, error) {
	sw, err := Parse(data)
	if err != nil {
		return nil, anondyn.Grid{}, err
	}
	grid, err := compile(sw, seedsOverride)
	if err != nil {
		return nil, anondyn.Grid{}, err
	}
	return sw, grid, nil
}

// compile applies the seeds override and builds the grid.
func compile(sw *Sweep, seedsOverride int) (anondyn.Grid, error) {
	if seedsOverride > 0 {
		sw.SeedsPerCell = seedsOverride
	}
	return sw.Grid()
}

// RunTitle formats the standard sweep heading the CLIs print above
// the row table; path names unnamed sweeps.
func (s *Sweep) RunTitle(path string, cells int) string {
	name := s.Name
	if name == "" {
		name = filepath.Base(path)
	}
	per := s.SeedsPerCell
	if per < 1 {
		per = 1
	}
	return fmt.Sprintf("%s: %d cells × %d seeds", name, cells, per)
}

// Table renders sweep rows in the standard CLI layout — one aggregate
// row per cell, with a variant column only when the sweep declares a
// variants axis — so dynabench and dynasim print identical tables for
// identical sweeps.
func Table(title string, rows []anondyn.CellResult) *analysis.Table {
	withVariants := false
	for _, r := range rows {
		if r.Variant != "" {
			withVariants = true
			break
		}
	}
	columns := []string{"n", "f", "eps", "algorithm", "adversary"}
	if withVariants {
		columns = append(columns, "variant")
	}
	columns = append(columns, "decided", "violations", "rounds mean", "rounds p95", "range max")
	tb := analysis.NewTable(title, columns...)
	for _, r := range rows {
		cells := []any{r.N, r.F, r.Eps, r.Algorithm, r.Adversary}
		if withVariants {
			cells = append(cells, r.Variant)
		}
		cells = append(cells,
			fmt.Sprintf("%d/%d", r.Decided, r.Runs), r.Violations,
			r.Rounds.Mean, r.Rounds.P95, r.OutputRange.Max)
		tb.AddRowf(cells...)
	}
	return tb
}
