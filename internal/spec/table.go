package spec

import (
	"fmt"
	"path/filepath"

	"anondyn"
	"anondyn/internal/analysis"
)

// Load parses a spec file and compiles it to a runnable grid, with an
// optional seeds-per-cell override (> 0; the CLI -seeds flag and the
// CI one-seed smoke) — the shared front half of every CLI spec run.
func Load(path string, seedsOverride int) (*Sweep, anondyn.Grid, error) {
	sw, err := ParseFile(path)
	if err != nil {
		return nil, anondyn.Grid{}, err
	}
	grid, err := compile(sw, seedsOverride)
	if err != nil {
		return nil, anondyn.Grid{}, fmt.Errorf("%s: %w", path, err)
	}
	return sw, grid, nil
}

// Compile parses a sweep from raw bytes and compiles it with an
// optional seeds-per-cell override — the wire-side counterpart of
// Load. Both ends of the shard protocol derive their grid through this
// one path, so a coordinator and its workers agree on the flattened
// run space (cells × seeds and their order) by construction.
func Compile(data []byte, seedsOverride int) (*Sweep, anondyn.Grid, error) {
	sw, err := Parse(data)
	if err != nil {
		return nil, anondyn.Grid{}, err
	}
	grid, err := compile(sw, seedsOverride)
	if err != nil {
		return nil, anondyn.Grid{}, err
	}
	return sw, grid, nil
}

// compile applies the seeds override and builds the grid.
func compile(sw *Sweep, seedsOverride int) (anondyn.Grid, error) {
	if seedsOverride > 0 {
		sw.SeedsPerCell = seedsOverride
	}
	return sw.Grid()
}

// RunTitle formats the standard sweep heading the CLIs print above
// the row table; path names unnamed sweeps.
func (s *Sweep) RunTitle(path string, cells int) string {
	name := s.Name
	if name == "" {
		name = filepath.Base(path)
	}
	per := s.SeedsPerCell
	if per < 1 {
		per = 1
	}
	return fmt.Sprintf("%s: %d cells × %d seeds", name, cells, per)
}

// Columns returns the standard sweep table column set; the variant
// column appears only when the sweep declares a variants axis.
func Columns(withVariants bool) []string {
	columns := []string{"n", "f", "eps", "algorithm", "adversary"}
	if withVariants {
		columns = append(columns, "variant")
	}
	return append(columns, "decided", "violations", "rounds mean", "rounds p95", "range max")
}

// RowCells renders one aggregate row in the standard layout. It is the
// single formatting path behind both the buffered Table and the
// streaming CSV writer (report.RowStream), so a row streamed as it
// commits is byte-identical to the same row rendered after the sweep.
func RowCells(r anondyn.CellResult, withVariants bool) []string {
	g := func(v float64) string { return fmt.Sprintf("%.4g", v) }
	cells := []string{fmt.Sprint(r.N), fmt.Sprint(r.F), g(r.Eps), r.Algorithm, r.Adversary}
	if withVariants {
		cells = append(cells, r.Variant)
	}
	return append(cells,
		fmt.Sprintf("%d/%d", r.Decided, r.Runs), fmt.Sprint(r.Violations),
		g(r.Rounds.Mean), g(r.Rounds.P95), g(r.OutputRange.Max))
}

// HasVariants reports whether any row carries a variant name (the
// column-layout switch shared by Table and the streaming writers).
func HasVariants(rows []anondyn.CellResult) bool {
	for _, r := range rows {
		if r.Variant != "" {
			return true
		}
	}
	return false
}

// CellsDeclareVariants is HasVariants over compiled cells — streaming
// writers must pick the column layout before any row exists, so they
// ask the grid instead of the rows.
func CellsDeclareVariants(cells []anondyn.Cell) bool {
	for _, c := range cells {
		if c.Variant.Name != "" {
			return true
		}
	}
	return false
}

// Table renders sweep rows in the standard CLI layout — one aggregate
// row per cell, with a variant column only when the sweep declares a
// variants axis — so dynabench and dynasim print identical tables for
// identical sweeps.
func Table(title string, rows []anondyn.CellResult) *analysis.Table {
	withVariants := HasVariants(rows)
	tb := analysis.NewTable(title, Columns(withVariants)...)
	for _, r := range rows {
		tb.AddRow(RowCells(r, withVariants)...)
	}
	return tb
}
