package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Sweep files are YAML for humans and JSON for machines; this file is
// the YAML half. It parses the block-structured subset the spec format
// needs — nested mappings, block sequences ("- " items, including
// compact mapping items), flow sequences ([a, b, c]), scalars with the
// usual int/float/bool/null coercions, quotes, and # comments — into
// the same generic tree (map[string]any / []any / scalars) that
// encoding/json produces, so one decoder serves both syntaxes.
// Anchors, multi-document streams, flow mappings, and block scalars
// are out of scope and reported as errors.

// yamlError is a parse failure with its 1-based source line.
type yamlError struct {
	line int
	msg  string
}

func (e *yamlError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func yamlErrf(line int, format string, args ...any) error {
	return &yamlError{line: line, msg: fmt.Sprintf(format, args...)}
}

// yamlLine is one significant source line.
type yamlLine struct {
	indent  int
	content string // comment-stripped, trailing-space-trimmed
	num     int    // 1-based source line
}

// parseYAML parses one YAML document into the generic tree.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAML(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, nil
	}
	p := &yamlParser{lines: lines}
	doc, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, yamlErrf(p.lines[p.pos].num, "content outside the document structure (indentation?)")
	}
	return doc, nil
}

// splitYAML tokenizes the input into significant lines.
func splitYAML(data []byte) ([]yamlLine, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		if strings.HasPrefix(strings.TrimLeft(raw, " "), "\t") {
			return nil, yamlErrf(num, "tab in indentation (YAML indents with spaces)")
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		content := stripComment(raw[indent:])
		content = strings.TrimRight(content, " ")
		if content == "" {
			continue
		}
		if strings.HasPrefix(content, "---") || strings.HasPrefix(content, "%") {
			return nil, yamlErrf(num, "multi-document streams and directives are not supported")
		}
		lines = append(lines, yamlLine{indent: indent, content: content, num: num})
	}
	return lines, nil
}

// stripComment removes a trailing # comment, respecting quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' {
				return strings.TrimRight(s[:i], " ")
			}
		}
	}
	return s
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses the mapping or sequence whose entries sit exactly
// at the given indent, consuming lines until a shallower indent.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, yamlErrf(0, "unexpected end of input")
	}
	if strings.HasPrefix(p.lines[p.pos].content, "- ") || p.lines[p.pos].content == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

// parseMapping parses consecutive "key: value" lines at one indent.
func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := make(map[string]any)
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, yamlErrf(line.num, "unexpected indentation")
		}
		if strings.HasPrefix(line.content, "- ") || line.content == "-" {
			return nil, yamlErrf(line.num, "sequence item in a mapping block")
		}
		key, rest, err := splitKey(line)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, yamlErrf(line.num, "duplicate key %q", key)
		}
		p.pos++
		if rest != "" {
			v, err := parseFlowOrScalar(rest, line.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// Block value: the nested structure on the following deeper
		// lines, or null when the key ends the document / its block.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		m[key] = nil
	}
	return m, nil
}

// parseSequence parses consecutive "- item" lines at one indent.
func (p *yamlParser) parseSequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, yamlErrf(line.num, "unexpected indentation")
		}
		if !strings.HasPrefix(line.content, "- ") && line.content != "-" {
			return nil, yamlErrf(line.num, "expected a \"- \" sequence item")
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(line.content, "-"), " ")
		itemIndent := line.indent + 2 // nested lines of a compact item
		if rest == "" {
			// "-" alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= line.indent {
				seq = append(seq, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if key, valueRest, err := splitKey(yamlLine{content: rest, num: line.num}); err == nil {
			// Compact mapping item: "- key: value" plus continuation
			// lines indented past the dash.
			item, err := p.parseCompactItem(key, valueRest, line.num, itemIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, item)
			continue
		}
		p.pos++
		v, err := parseFlowOrScalar(rest, line.num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// parseCompactItem parses one "- key: value" item and its continuation
// mapping lines at itemIndent.
func (p *yamlParser) parseCompactItem(key, rest string, num, itemIndent int) (any, error) {
	m := make(map[string]any)
	p.pos++
	if rest != "" {
		v, err := parseFlowOrScalar(rest, num)
		if err != nil {
			return nil, err
		}
		m[key] = v
	} else if p.pos < len(p.lines) && p.lines[p.pos].indent > itemIndent {
		v, err := p.parseBlock(p.lines[p.pos].indent)
		if err != nil {
			return nil, err
		}
		m[key] = v
	} else {
		m[key] = nil
	}
	for p.pos < len(p.lines) && p.lines[p.pos].indent == itemIndent &&
		!strings.HasPrefix(p.lines[p.pos].content, "- ") && p.lines[p.pos].content != "-" {
		line := p.lines[p.pos]
		k, r, err := splitKey(line)
		if err != nil {
			return nil, err
		}
		if _, dup := m[k]; dup {
			return nil, yamlErrf(line.num, "duplicate key %q", k)
		}
		p.pos++
		if r != "" {
			v, err := parseFlowOrScalar(r, line.num)
			if err != nil {
				return nil, err
			}
			m[k] = v
			continue
		}
		if p.pos < len(p.lines) && p.lines[p.pos].indent > itemIndent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[k] = v
			continue
		}
		m[k] = nil
	}
	return m, nil
}

// splitKey splits "key: value" (or "key:") into its parts.
func splitKey(line yamlLine) (key, rest string, err error) {
	content := line.content
	// The key may be quoted; otherwise it runs to the first ": " or a
	// trailing ":".
	if strings.HasPrefix(content, "\"") || strings.HasPrefix(content, "'") {
		quote := content[0]
		end := strings.IndexByte(content[1:], quote)
		if end < 0 {
			return "", "", yamlErrf(line.num, "unterminated quoted key")
		}
		key = content[1 : 1+end]
		content = strings.TrimLeft(content[2+end:], " ")
		if !strings.HasPrefix(content, ":") {
			return "", "", yamlErrf(line.num, "expected ':' after quoted key")
		}
		return key, strings.TrimLeft(content[1:], " "), nil
	}
	if idx := strings.Index(content, ": "); idx >= 0 {
		return content[:idx], strings.TrimLeft(content[idx+2:], " "), nil
	}
	if strings.HasSuffix(content, ":") {
		return strings.TrimSuffix(content, ":"), "", nil
	}
	return "", "", yamlErrf(line.num, "expected \"key: value\", got %q", content)
}

// parseFlowOrScalar parses an inline value: a flow sequence or a
// scalar.
func parseFlowOrScalar(s string, num int) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, yamlErrf(num, "unterminated flow sequence %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		items, err := splitFlow(inner, num)
		if err != nil {
			return nil, err
		}
		seq := make([]any, 0, len(items))
		for _, item := range items {
			item = strings.TrimSpace(item)
			if item == "" {
				return nil, yamlErrf(num, "empty item in flow sequence (trailing comma?)")
			}
			v, err := parseScalar(item, num)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, yamlErrf(num, "flow mappings ({...}) are not supported; use block form")
	}
	return parseScalar(s, num)
}

// splitFlow splits a flow sequence body on commas, respecting quotes
// and backslash escapes inside double quotes (nested flow sequences
// are not supported).
func splitFlow(s string, num int) ([]string, error) {
	var (
		items    []string
		start    int
		inSingle bool
		inDouble bool
		escaped  bool
	)
	for i, r := range s {
		if escaped {
			escaped = false
			continue
		}
		switch {
		case r == '\\' && inDouble:
			escaped = true
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == '[' && !inSingle && !inDouble:
			return nil, yamlErrf(num, "nested flow sequences are not supported")
		case r == ',' && !inSingle && !inDouble:
			items = append(items, s[start:i])
			start = i + 1
		}
	}
	if inSingle || inDouble {
		return nil, yamlErrf(num, "unterminated quote in flow sequence")
	}
	return append(items, s[start:]), nil
}

// parseScalar coerces one scalar token: quoted strings stay strings
// (double quotes resolve backslash escapes, single quotes are
// verbatim); otherwise null/bool/int/float, falling back to the raw
// string.
func parseScalar(s string, num int) (any, error) {
	if len(s) >= 2 {
		if s[0] == '"' && s[len(s)-1] == '"' {
			unquoted, err := strconv.Unquote(s)
			if err != nil {
				return nil, yamlErrf(num, "bad escape in quoted scalar %s", s)
			}
			return unquoted, nil
		}
		if s[0] == '\'' && s[len(s)-1] == '\'' {
			return s[1 : len(s)-1], nil
		}
	}
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		return nil, yamlErrf(num, "unterminated quoted scalar %q", s)
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
