package spec

import (
	"reflect"
	"strings"
	"testing"

	"anondyn"
)

const stressYAML = `
name: storm-test
description: stress section coverage
epss: [1e-3]
algorithms: [dac]
adversaries: [complete]
seeds_per_cell: 2
unchecked: true
stress:
  fleet:
    total_nodes: 40
    groups: 4
    templates:
      - name: worker
        weight: 3
        input: random
      - name: beacon
        weight: 1
        input: "value:0.5"
  seed: 9
  rounds: 80
  events:
    - kind: crash
      round: 3
      count: 2
      mode: silent
    - kind: partition
      round: 6
      duration: 4
      groups: [1]
    - kind: starve
      round: 12
      duration: 5
      rate: 0.25
  assertions:
    - converged
    - agreement
    - max_rounds: 80
    - survivors: ">= n/2"
`

// TestParseStress: the stress section decodes field for field.
func TestParseStress(t *testing.T) {
	sw, err := Parse([]byte(stressYAML))
	if err != nil {
		t.Fatal(err)
	}
	st := sw.Stress
	if st == nil {
		t.Fatal("stress section dropped")
	}
	if st.Fleet.TotalNodes != 40 || st.Fleet.Groups != 4 {
		t.Errorf("fleet = %+v", st.Fleet)
	}
	if len(st.Fleet.Templates) != 2 || st.Fleet.Templates[0].Weight != 3 || st.Fleet.Templates[1].Input != "value:0.5" {
		t.Errorf("templates = %+v", st.Fleet.Templates)
	}
	if st.Seed != 9 || st.Rounds != 80 {
		t.Errorf("seed %d rounds %d", st.Seed, st.Rounds)
	}
	if len(st.Events) != 3 || st.Events[1].Kind != "partition" || !reflect.DeepEqual(st.Events[1].Groups, []int{1}) {
		t.Errorf("events = %+v", st.Events)
	}
	if st.Events[2].Rate != 0.25 {
		t.Errorf("starve rate = %g", st.Events[2].Rate)
	}
	wantAsserts := []string{"converged", "agreement", "max_rounds <= 80", "survivors >= n/2"}
	for i, a := range st.Assertions {
		if a.Name() != wantAsserts[i] {
			t.Errorf("assertion %d = %q, want %q", i, a.Name(), wantAsserts[i])
		}
	}
}

// TestStressCompile: the stress grid carries the fleet size, the round
// budget and a Mutate that installs the storm; two compiles of the
// same run assemble identical scenarios.
func TestStressCompile(t *testing.T) {
	sw, g, err := Compile([]byte(stressYAML), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Ns; len(got) != 1 || got[0] != 40 {
		t.Errorf("grid ns = %v, want [40]", got)
	}
	if g.MaxRounds != 80 {
		t.Errorf("grid max rounds = %d, want 80", g.MaxRounds)
	}
	cells := g.Cells()
	if len(cells) != 1 {
		t.Fatalf("%d cells, want 1", len(cells))
	}
	if g.Mutate == nil || g.Inputs == nil {
		t.Fatal("stress compile left Mutate/Inputs unset")
	}
	st := sw.Stress.CompileStorm(sw.BaseSeed)
	if len(st.Crashes) != 2 {
		t.Errorf("first run crashes %d nodes, want 2", len(st.Crashes))
	}

	// The timeline the report embeds is the first run's.
	tl := sw.StormTimeline()
	if len(tl) != 3 || tl[0].Kind != "crash" {
		t.Errorf("timeline = %+v", tl)
	}
}

// TestStressRoundTrip: Encode renders the stress section back to YAML
// that parses to the identical block.
func TestStressRoundTrip(t *testing.T) {
	sw, err := Parse([]byte(stressYAML))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(sw.Encode())
	if err != nil {
		t.Fatalf("re-parse of encoded spec: %v\n%s", err, sw.Encode())
	}
	if !reflect.DeepEqual(sw.Stress, again.Stress) {
		t.Errorf("stress block changed across encode/parse:\nfirst  %+v\nsecond %+v", sw.Stress, again.Stress)
	}
}

// TestStressErrorsCiteKeys: malformed stress specs fail with the
// offending key in the error.
func TestStressErrorsCiteKeys(t *testing.T) {
	cases := []struct {
		name, yaml, wantKey string
	}{
		{
			"unknown stress key",
			"name: x\nstress:\n  fleet:\n    total_nodes: 10\n  rounds: 5\n  intensity: 3\n",
			"stress.intensity",
		},
		{
			"unknown fleet key",
			"name: x\nstress:\n  fleet:\n    total_nodes: 10\n    zones: 2\n  rounds: 5\n",
			"stress.fleet.zones",
		},
		{
			"unknown event key",
			"name: x\nstress:\n  fleet:\n    total_nodes: 10\n  rounds: 5\n  events:\n    - kind: crash\n      round: 1\n      count: 1\n      blast: 4\n",
			"stress.events[0].blast",
		},
		{
			"missing fleet",
			"name: x\nstress:\n  rounds: 5\n",
			"stress.fleet",
		},
		{
			"bad assertion mapping",
			"name: x\nstress:\n  fleet:\n    total_nodes: 10\n  rounds: 5\n  assertions:\n    - quorum: 3\n",
			"stress.assertions[0]",
		},
		{
			"ns conflicts with stress",
			"name: x\nns: [5]\nstress:\n  fleet:\n    total_nodes: 10\n  rounds: 5\n",
			"ns",
		},
		{
			"max_rounds conflicts with stress",
			"name: x\nmax_rounds: 100\nstress:\n  fleet:\n    total_nodes: 10\n  rounds: 5\n",
			"max_rounds",
		},
		{
			"crashes conflict with stress",
			"name: x\ncrashes:\n  count: 1\nstress:\n  fleet:\n    total_nodes: 10\n  rounds: 5\n",
			"crashes",
		},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.yaml))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantKey) {
			t.Errorf("%s: error %q does not cite %s", tc.name, err, tc.wantKey)
		}
	}
}

// TestVerdictsNilWithoutStress: ordinary sweeps carry no verdict block.
func TestVerdictsNilWithoutStress(t *testing.T) {
	sw, err := Parse([]byte("name: plain\nns: [5]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if vs := sw.Verdicts([]anondyn.CellResult{{N: 5}}); vs != nil {
		t.Errorf("plain sweep produced verdicts: %+v", vs)
	}
	if tl := sw.StormTimeline(); tl != nil {
		t.Errorf("plain sweep produced a storm timeline: %+v", tl)
	}
}

// TestStressRunEndToEnd: a tiny storm sweep runs through the Grid and
// its verdicts evaluate — twice, byte-identically.
func TestStressRunEndToEnd(t *testing.T) {
	run := func() ([]anondyn.CellResult, string) {
		sw, g, err := Compile([]byte(stressYAML), 0)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := g.Run(anondyn.BatchOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, v := range sw.Verdicts(rows) {
			b.WriteString(v.Assertion + "=" + v.Detail + "\n")
		}
		return rows, b.String()
	}
	rowsA, verdictsA := run()
	rowsB, verdictsB := run()
	if !reflect.DeepEqual(rowsA, rowsB) {
		t.Error("same-seed storm runs produced different rows")
	}
	if verdictsA != verdictsB {
		t.Errorf("same-seed storm runs produced different verdicts:\n%s\nvs\n%s", verdictsA, verdictsB)
	}
	if len(verdictsA) == 0 {
		t.Error("storm run produced no verdicts")
	}
}
