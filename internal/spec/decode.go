package spec

import (
	"fmt"
	"strconv"
)

// The decoder walks the generic tree (map[string]any / []any /
// scalars) produced by either syntax and fills a Sweep, rejecting
// unknown keys and wrong-typed values with errors that cite the
// offending key path ("byzantine[1].strategy: …").

// field reads and consumes one key of a mapping; the bool reports
// presence.
type object struct {
	m    map[string]any
	path string // "" at the top level, "crashes." etc. below
}

func asObject(v any, path string) (object, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return object{}, fmt.Errorf("%s: expected a mapping, got %s", pathLabel(path), typeName(v))
	}
	return object{m: m, path: path}, nil
}

func (o object) take(key string) (any, bool) {
	v, ok := o.m[key]
	if ok {
		delete(o.m, key)
	}
	return v, ok
}

// finish rejects any keys the decoder did not consume.
func (o object) finish() error {
	for key := range o.m {
		return fmt.Errorf("%s%s: unknown key", o.path, key)
	}
	return nil
}

func pathLabel(path string) string {
	if path == "" {
		return "document"
	}
	return path[:len(path)-1] // drop the trailing "."
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "a bool"
	case int64:
		return "an integer"
	case float64:
		return "a float"
	case string:
		return "a string"
	case []any:
		return "a sequence"
	case map[string]any:
		return "a mapping"
	}
	return fmt.Sprintf("%T", v)
}

// Typed scalar readers. Each consumes o.m[key] when present and
// reports a cited error on a type mismatch.

func (o object) str(key string, dst *string) error {
	v, ok := o.take(key)
	if !ok {
		return nil
	}
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("%s%s: expected a string, got %s", o.path, key, typeName(v))
	}
	*dst = s
	return nil
}

func (o object) boolean(key string, dst *bool) (present bool, err error) {
	v, ok := o.take(key)
	if !ok {
		return false, nil
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("%s%s: expected true/false, got %s", o.path, key, typeName(v))
	}
	*dst = b
	return true, nil
}

func (o object) integer(key string, dst *int) error {
	v, ok := o.take(key)
	if !ok {
		return nil
	}
	i, err := toInt(v)
	if err != nil {
		return fmt.Errorf("%s%s: %w", o.path, key, err)
	}
	*dst = i
	return nil
}

func (o object) int64(key string, dst *int64) error {
	v, ok := o.take(key)
	if !ok {
		return nil
	}
	i, ok := v.(int64)
	if !ok {
		return fmt.Errorf("%s%s: expected an integer, got %s", o.path, key, typeName(v))
	}
	*dst = i
	return nil
}

// intOrString reads a key that accepts both forms (count, quorum, fs
// entries), normalizing integers to their decimal spelling.
func (o object) intOrString(key string, dst *string) error {
	v, ok := o.take(key)
	if !ok {
		return nil
	}
	switch v := v.(type) {
	case int64:
		*dst = strconv.FormatInt(v, 10)
	case string:
		*dst = v
	default:
		return fmt.Errorf("%s%s: expected an integer or a string, got %s", o.path, key, typeName(v))
	}
	return nil
}

func toInt(v any) (int, error) {
	i, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("expected an integer, got %s", typeName(v))
	}
	return int(i), nil
}

func toFloat(v any) (float64, error) {
	switch v := v.(type) {
	case int64:
		return float64(v), nil
	case float64:
		return v, nil
	}
	return 0, fmt.Errorf("expected a number, got %s", typeName(v))
}

func (o object) seq(key string) ([]any, bool, error) {
	v, ok := o.take(key)
	if !ok {
		return nil, false, nil
	}
	seq, ok := v.([]any)
	if !ok {
		return nil, false, fmt.Errorf("%s%s: expected a sequence, got %s", o.path, key, typeName(v))
	}
	return seq, true, nil
}

func (o object) ints(key string, dst *[]int) error {
	seq, ok, err := o.seq(key)
	if err != nil || !ok {
		return err
	}
	out := make([]int, len(seq))
	for i, v := range seq {
		if out[i], err = toInt(v); err != nil {
			return fmt.Errorf("%s%s[%d]: %w", o.path, key, i, err)
		}
	}
	*dst = out
	return nil
}

func (o object) floats(key string, dst *[]float64) error {
	seq, ok, err := o.seq(key)
	if err != nil || !ok {
		return err
	}
	out := make([]float64, len(seq))
	for i, v := range seq {
		if out[i], err = toFloat(v); err != nil {
			return fmt.Errorf("%s%s[%d]: %w", o.path, key, i, err)
		}
	}
	*dst = out
	return nil
}

func (o object) strings(key string, dst *[]string) error {
	seq, ok, err := o.seq(key)
	if err != nil || !ok {
		return err
	}
	out := make([]string, len(seq))
	for i, v := range seq {
		s, isStr := v.(string)
		if !isStr {
			return fmt.Errorf("%s%s[%d]: expected a string, got %s", o.path, key, i, typeName(v))
		}
		out[i] = s
	}
	*dst = out
	return nil
}

// decodeSweep fills a Sweep from the parsed document.
func decodeSweep(doc any) (*Sweep, error) {
	o, err := asObject(doc, "")
	if err != nil {
		return nil, err
	}
	s := &Sweep{}
	if err := o.str("name", &s.Name); err != nil {
		return nil, err
	}
	if err := o.str("description", &s.Description); err != nil {
		return nil, err
	}
	if err := o.ints("ns", &s.Ns); err != nil {
		return nil, err
	}
	if err := decodeBounds(o, &s.Fs); err != nil {
		return nil, err
	}
	if err := decodePairs(o, &s.Pairs); err != nil {
		return nil, err
	}
	if err := o.floats("epss", &s.Epss); err != nil {
		return nil, err
	}
	if err := o.strings("algorithms", &s.Algorithms); err != nil {
		return nil, err
	}
	if err := o.strings("adversaries", &s.Adversaries); err != nil {
		return nil, err
	}
	if err := decodeVariants(o, &s.Variants); err != nil {
		return nil, err
	}
	if err := o.integer("seeds_per_cell", &s.SeedsPerCell); err != nil {
		return nil, err
	}
	if err := o.int64("base_seed", &s.BaseSeed); err != nil {
		return nil, err
	}
	if err := o.integer("max_rounds", &s.MaxRounds); err != nil {
		return nil, err
	}
	if _, err := o.boolean("account_bandwidth", &s.AccountBandwidth); err != nil {
		return nil, err
	}
	if err := o.str("inputs", &s.Inputs); err != nil {
		return nil, err
	}
	if err := o.str("construction", &s.Construction); err != nil {
		return nil, err
	}
	if err := decodeOverrides(o, &s.Overrides); err != nil {
		return nil, err
	}
	if err := decodeCrashes(o, &s.Crashes); err != nil {
		return nil, err
	}
	if err := decodeCasts(o, &s.Byzantine); err != nil {
		return nil, err
	}
	if err := decodeStress(o, &s.Stress); err != nil {
		return nil, err
	}
	return s, o.finish()
}

// decodeBounds reads the fs axis: integers or symbolic strings.
func decodeBounds(o object, dst *[]Bound) error {
	seq, ok, err := o.seq("fs")
	if err != nil || !ok {
		return err
	}
	out := make([]Bound, len(seq))
	for i, v := range seq {
		switch v := v.(type) {
		case int64:
			out[i] = Bound{Lit: int(v)}
		case string:
			switch v {
			case "(n-1)/2", "n/2", "(n-1)/5":
				out[i] = Bound{Expr: v}
			default:
				return fmt.Errorf("fs[%d]: unknown symbolic bound %q (want an integer, %s)", i, v, boundExprs)
			}
		default:
			return fmt.Errorf("fs[%d]: expected an integer or %s, got %s", i, boundExprs, typeName(v))
		}
	}
	*dst = out
	return nil
}

// decodePairs reads the explicit cells list.
func decodePairs(o object, dst *[]Pair) error {
	seq, ok, err := o.seq("cells")
	if err != nil || !ok {
		return err
	}
	out := make([]Pair, len(seq))
	for i, v := range seq {
		cell, err := asObject(v, fmt.Sprintf("cells[%d].", i))
		if err != nil {
			return err
		}
		nv, ok := cell.take("n")
		if !ok {
			return fmt.Errorf("cells[%d].n: required", i)
		}
		if out[i].N, err = toInt(nv); err != nil {
			return fmt.Errorf("cells[%d].n: %w", i, err)
		}
		if err := cell.integer("f", &out[i].F); err != nil {
			return err
		}
		if err := cell.finish(); err != nil {
			return err
		}
	}
	*dst = out
	return nil
}

// decodeVariants reads the variants axis.
func decodeVariants(o object, dst *[]Variant) error {
	seq, ok, err := o.seq("variants")
	if err != nil || !ok {
		return err
	}
	out := make([]Variant, len(seq))
	for i, v := range seq {
		vo, err := asObject(v, fmt.Sprintf("variants[%d].", i))
		if err != nil {
			return err
		}
		if err := vo.str("name", &out[i].Name); err != nil {
			return err
		}
		if err := decodeOverrides(vo, &out[i].Overrides); err != nil {
			return err
		}
		if err := vo.finish(); err != nil {
			return err
		}
	}
	*dst = out
	return nil
}

// decodeOverrides reads the scenario-override keys shared by the top
// level and each variant.
func decodeOverrides(o object, dst *Overrides) error {
	if present, err := o.boolean("unchecked", &dst.Unchecked); err != nil {
		return err
	} else if present {
		dst.hasUnchecked = true
	}
	if err := o.intOrString("quorum", &dst.Quorum); err != nil {
		return err
	}
	if err := o.integer("p_end", &dst.PEnd); err != nil {
		return err
	}
	if err := o.integer("piggyback_window", &dst.PiggybackWindow); err != nil {
		return err
	}
	if err := o.integer("mega_t", &dst.MegaT); err != nil {
		return err
	}
	if err := o.integer("max_message_bytes", &dst.MaxMessageBytes); err != nil {
		return err
	}
	return o.str("algorithm", &dst.Algorithm)
}

// decodeCrashes reads the crash schedule block.
func decodeCrashes(o object, dst **Crashes) error {
	v, ok := o.take("crashes")
	if !ok {
		return nil
	}
	co, err := asObject(v, "crashes.")
	if err != nil {
		return err
	}
	c := &Crashes{}
	if err := co.intOrString("count", &c.Count); err != nil {
		return err
	}
	if err := decodeNodes(co, &c.Nodes, &c.NodeList); err != nil {
		return err
	}
	if err := co.str("mode", &c.Mode); err != nil {
		return err
	}
	if err := co.integer("round", &c.Round); err != nil {
		return err
	}
	if err := co.integer("stagger", &c.Stagger); err != nil {
		return err
	}
	if err := co.ints("rounds", &c.Rounds); err != nil {
		return err
	}
	if err := co.finish(); err != nil {
		return err
	}
	*dst = c
	return nil
}

// decodeCasts reads the byzantine cast list.
func decodeCasts(o object, dst *[]Cast) error {
	seq, ok, err := o.seq("byzantine")
	if err != nil || !ok {
		return err
	}
	out := make([]Cast, len(seq))
	for i := range seq {
		co, err := asObject(seq[i], fmt.Sprintf("byzantine[%d].", i))
		if err != nil {
			return err
		}
		c := &out[i]
		if err := co.intOrString("count", &c.Count); err != nil {
			return err
		}
		if err := decodeNodes(co, &c.Nodes, &c.NodeList); err != nil {
			return err
		}
		if err := co.str("strategy", &c.Strategy); err != nil {
			return err
		}
		if err := co.floats("args", &c.Args); err != nil {
			return err
		}
		if v, ok := co.take("seed"); ok {
			seed, isInt := v.(int64)
			if !isInt {
				return fmt.Errorf("%sseed: expected an integer, got %s", co.path, typeName(v))
			}
			c.Seed = &seed
		}
		if err := co.finish(); err != nil {
			return err
		}
	}
	*dst = out
	return nil
}

// decodeNodes reads a "nodes" key that is either a named selector
// string or an explicit ID list.
func decodeNodes(o object, sel *string, list *[]int) error {
	v, ok := o.take("nodes")
	if !ok {
		return nil
	}
	switch v := v.(type) {
	case string:
		*sel = v
		return nil
	case []any:
		out := make([]int, len(v))
		for i, item := range v {
			n, err := toInt(item)
			if err != nil {
				return fmt.Errorf("%snodes[%d]: %w", o.path, i, err)
			}
			out[i] = n
		}
		*list = out
		return nil
	default:
		return fmt.Errorf("%snodes: expected a selector name or a node list, got %s", o.path, typeName(v))
	}
}
