package spec

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLTree(t *testing.T) {
	doc, err := parseYAML([]byte(`
# header comment
name: demo          # trailing comment
count: 12
rate: 1e-3
on: true
off: false
nothing: null
text: "quoted: with colon"
single: 'single # not a comment'
list: [1, 2.5, hi, "x, y"]
empty: []
nested:
  inner: 3
  deeper:
    leaf: ok
items:
  - plain
  - n: 5
    f: 2
  - nested:
      a: 1
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":    "demo",
		"count":   int64(12),
		"rate":    1e-3,
		"on":      true,
		"off":     false,
		"nothing": nil,
		"text":    "quoted: with colon",
		"single":  "single # not a comment",
		"list":    []any{int64(1), 2.5, "hi", "x, y"},
		"empty":   []any{},
		"nested": map[string]any{
			"inner":  int64(3),
			"deeper": map[string]any{"leaf": "ok"},
		},
		"items": []any{
			"plain",
			map[string]any{"n": int64(5), "f": int64(2)},
			map[string]any{"nested": map[string]any{"a": int64(1)}},
		},
	}
	if !reflect.DeepEqual(doc, want) {
		t.Errorf("parsed tree:\n%#v\nwant:\n%#v", doc, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"tab", "a:\n\tb: 1", "tab"},
		{"flow mapping", "a: {b: 1}", "flow mapping"},
		{"unterminated flow", "a: [1, 2", "unterminated"},
		{"unterminated quote", `a: "oops`, "unterminated"},
		{"bare word line", "a: 1\njust words here continue", "key"},
		{"multi-doc", "---\na: 1", "multi-document"},
		{"duplicate key", "a: 1\na: 2", "duplicate"},
		{"nested flow", "a: [[1], 2]", "nested flow"},
		{"half indent", "a:\n    b: 1\n  c: 2", "indent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestQuotedScalarEscapes: double-quoted scalars resolve escapes on
// the way in, matching what the emitter writes with strconv.Quote.
func TestQuotedScalarEscapes(t *testing.T) {
	doc, err := parseYAML([]byte("name: \"say \\\"hi\\\"\"\nlist: [\"a, b\", \"c\\\\d\"]"))
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	if m["name"] != `say "hi"` {
		t.Errorf("name = %q", m["name"])
	}
	if list := m["list"].([]any); list[0] != "a, b" || list[1] != `c\d` {
		t.Errorf("list = %v", list)
	}
	if _, err := parseYAML([]byte(`name: "bad \q escape"`)); err == nil {
		t.Error("invalid escape accepted")
	}
}

// TestTabAndTrailingCommaDiagnostics: tabs inside content are legal
// (only indentation tabs are rejected), and a trailing flow comma gets
// a syntax error rather than a wrong-typed-element one.
func TestTabAndTrailingCommaDiagnostics(t *testing.T) {
	doc, err := parseYAML([]byte("description: \"a\tb\""))
	if err != nil {
		t.Fatalf("tab inside a scalar rejected: %v", err)
	}
	if doc.(map[string]any)["description"] != "a\tb" {
		t.Errorf("tab scalar = %q", doc.(map[string]any)["description"])
	}
	if _, err := parseYAML([]byte("ns: [5, 7,]")); err == nil || !strings.Contains(err.Error(), "trailing comma") {
		t.Errorf("trailing comma error = %v", err)
	}
}
