package spec

import (
	"fmt"
	"strings"

	"anondyn"
	"anondyn/internal/chaos"
)

// The stress section is the spec grammar of the chaos layer
// (internal/chaos): a generated fleet, a failure-storm schedule and
// survival assertions. A stress sweep replaces the ns/fs matrix — the
// fleet defines the single network size, the events define the fault
// load, and the declared assertions compile into report verdicts after
// the runs.

// validateStress checks the stress section and rejects every top-level
// key the storm subsumes — a spec either declares a matrix or a storm,
// never both.
func (s *Sweep) validateStress() error {
	switch {
	case len(s.Ns) > 0:
		return fmt.Errorf("ns: cannot combine with stress (stress.fleet.total_nodes defines the network size)")
	case len(s.Pairs) > 0:
		return fmt.Errorf("cells: cannot combine with stress (stress.fleet.total_nodes defines the network size)")
	case len(s.Fs) > 0:
		return fmt.Errorf("fs: cannot combine with stress (the storm's events define the fault load)")
	case s.Crashes != nil:
		return fmt.Errorf("crashes: cannot combine with stress (declare crash events in stress.events)")
	case len(s.Byzantine) > 0:
		return fmt.Errorf("byzantine: cannot combine with stress (declare byzantine events in stress.events)")
	case s.Construction != "":
		return fmt.Errorf("construction: cannot combine with stress")
	case s.Inputs != "":
		return fmt.Errorf("inputs: cannot combine with stress (inputs belong to the fleet templates)")
	case s.MaxRounds != 0:
		return fmt.Errorf("max_rounds: cannot combine with stress (stress.rounds is the storm duration)")
	case len(s.Variants) > 0:
		return fmt.Errorf("variants: cannot combine with stress")
	}
	return s.Stress.Validate()
}

// applyStress compiles the stress section onto the Grid: the fleet
// becomes the single-n axis, the round budget becomes the cap (runs
// still end early at quiescence), the fleet templates become the input
// generator, and Mutate installs each run's materialized storm — the
// crash schedule, the Byzantine cast and the connectivity wrapper over
// the cell's adversary.
func (s *Sweep) applyStress(g *anondyn.Grid) {
	st := s.Stress
	g.Ns = []int{st.Fleet.TotalNodes}
	g.MaxRounds = st.Rounds
	g.Inputs = func(_ int, seed int64) []float64 { return st.Inputs(seed) }
	g.Mutate = func(sc *anondyn.Scenario, _ anondyn.Cell, seed int64) {
		storm := st.CompileStorm(seed)
		sc.Crashes = storm.Crashes
		sc.Byzantine = storm.Byzantine
		sc.Adversary = storm.WrapAdversary(sc.Adversary)
	}
}

// Verdicts evaluates the stress assertions against a completed sweep's
// aggregate rows. The rows (plus the spec itself) are all the evidence
// needed, so a dynagrid submit client computes the same verdicts as a
// local run — the merged report is byte-identical either way. Nil for
// sweeps without a stress section.
func (s *Sweep) Verdicts(rows []anondyn.CellResult) []chaos.Verdict {
	if s.Stress == nil {
		return nil
	}
	per := s.SeedsPerCell
	if per < 1 {
		per = 1
	}
	return chaos.Eval(s.Stress, s.BaseSeed, per, rows)
}

// StormTimeline renders the first run's materialized storm — the
// report's timeline exhibit. Nil for sweeps without a stress section.
func (s *Sweep) StormTimeline() []chaos.TimelineEntry {
	if s.Stress == nil {
		return nil
	}
	return s.Stress.CompileStorm(s.BaseSeed).Timeline
}

// float reads one float-typed key (integers widen).
func (o object) float(key string, dst *float64) error {
	v, ok := o.take(key)
	if !ok {
		return nil
	}
	f, err := toFloat(v)
	if err != nil {
		return fmt.Errorf("%s%s: %w", o.path, key, err)
	}
	*dst = f
	return nil
}

// decodeStress reads the optional stress section.
func decodeStress(o object, dst **chaos.Stress) error {
	v, ok := o.take("stress")
	if !ok {
		return nil
	}
	so, err := asObject(v, "stress.")
	if err != nil {
		return err
	}
	st := &chaos.Stress{}
	if err := decodeFleet(so, &st.Fleet); err != nil {
		return err
	}
	if err := so.int64("seed", &st.Seed); err != nil {
		return err
	}
	if err := so.integer("rounds", &st.Rounds); err != nil {
		return err
	}
	if err := decodeEvents(so, &st.Events); err != nil {
		return err
	}
	if err := decodeAssertions(so, &st.Assertions); err != nil {
		return err
	}
	if err := so.finish(); err != nil {
		return err
	}
	*dst = st
	return nil
}

// decodeFleet reads the fleet block.
func decodeFleet(o object, dst *chaos.Fleet) error {
	v, ok := o.take("fleet")
	if !ok {
		return fmt.Errorf("stress.fleet: required (the storm needs a fleet)")
	}
	fo, err := asObject(v, "stress.fleet.")
	if err != nil {
		return err
	}
	if err := fo.integer("total_nodes", &dst.TotalNodes); err != nil {
		return err
	}
	if err := fo.integer("groups", &dst.Groups); err != nil {
		return err
	}
	seq, ok, err := fo.seq("templates")
	if err != nil {
		return err
	}
	if ok {
		dst.Templates = make([]chaos.Template, len(seq))
		for i, item := range seq {
			to, err := asObject(item, fmt.Sprintf("stress.fleet.templates[%d].", i))
			if err != nil {
				return err
			}
			t := &dst.Templates[i]
			t.Weight = 1
			if err := to.str("name", &t.Name); err != nil {
				return err
			}
			if err := to.integer("weight", &t.Weight); err != nil {
				return err
			}
			if err := to.str("input", &t.Input); err != nil {
				return err
			}
			if err := to.finish(); err != nil {
				return err
			}
		}
	}
	return fo.finish()
}

// decodeEvents reads the chaos schedule.
func decodeEvents(o object, dst *[]chaos.Event) error {
	seq, ok, err := o.seq("events")
	if err != nil || !ok {
		return err
	}
	out := make([]chaos.Event, len(seq))
	for i, item := range seq {
		eo, err := asObject(item, fmt.Sprintf("stress.events[%d].", i))
		if err != nil {
			return err
		}
		e := &out[i]
		if err := eo.str("kind", &e.Kind); err != nil {
			return err
		}
		if err := eo.integer("round", &e.Round); err != nil {
			return err
		}
		if err := eo.integer("duration", &e.Duration); err != nil {
			return err
		}
		if err := eo.float("rate", &e.Rate); err != nil {
			return err
		}
		if err := eo.integer("count", &e.Count); err != nil {
			return err
		}
		if err := eo.ints("groups", &e.Groups); err != nil {
			return err
		}
		if err := eo.str("strategy", &e.Strategy); err != nil {
			return err
		}
		if err := eo.floats("args", &e.Args); err != nil {
			return err
		}
		if err := eo.str("mode", &e.Mode); err != nil {
			return err
		}
		if err := eo.integer("waves", &e.Waves); err != nil {
			return err
		}
		if err := eo.float("factor", &e.Factor); err != nil {
			return err
		}
		if err := eo.integer("spread", &e.Spread); err != nil {
			return err
		}
		if err := eo.finish(); err != nil {
			return err
		}
	}
	*dst = out
	return nil
}

// decodeAssertions reads the assertion list: bare strings ("converged",
// "agreement") or single-key mappings ("max_rounds: 400",
// "survivors: \">= n/2\"").
func decodeAssertions(o object, dst *[]chaos.Assertion) error {
	seq, ok, err := o.seq("assertions")
	if err != nil || !ok {
		return err
	}
	out := make([]chaos.Assertion, len(seq))
	for i, item := range seq {
		key := fmt.Sprintf("stress.assertions[%d]", i)
		switch v := item.(type) {
		case string:
			out[i] = chaos.Assertion{Kind: v}
		case map[string]any:
			ao := object{m: v, path: key + "."}
			if bound, ok := ao.take("max_rounds"); ok {
				b, err := toInt(bound)
				if err != nil {
					return fmt.Errorf("%s.max_rounds: %w", key, err)
				}
				out[i] = chaos.Assertion{Kind: "max_rounds", Bound: b}
			} else if expr, ok := ao.take("survivors"); ok {
				s, isStr := expr.(string)
				if !isStr {
					return fmt.Errorf("%s.survivors: expected an expression string, got %s", key, typeName(expr))
				}
				out[i] = chaos.Assertion{Kind: "survivors", Expr: s}
			} else {
				return fmt.Errorf("%s: expected max_rounds or survivors", key)
			}
			if err := ao.finish(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%s: expected an assertion name or a bound mapping, got %s", key, typeName(item))
		}
	}
	*dst = out
	return nil
}

// encodeStress renders the stress section in canonical key order (the
// write half of the round-trip).
func (s *Sweep) encodeStress(w func(format string, args ...any)) {
	st := s.Stress
	w("stress:")
	w("  fleet:")
	w("    total_nodes: %d", st.Fleet.TotalNodes)
	if st.Fleet.Groups != 0 {
		w("    groups: %d", st.Fleet.Groups)
	}
	if len(st.Fleet.Templates) > 0 {
		w("    templates:")
		for _, t := range st.Fleet.Templates {
			prefix := "      - "
			writeKV := func(key, val string) {
				w("%s%s: %s", prefix, key, val)
				prefix = "        "
			}
			if t.Name != "" {
				writeKV("name", yamlString(t.Name))
			}
			writeKV("weight", fmt.Sprint(t.Weight))
			if t.Input != "" {
				writeKV("input", yamlString(t.Input))
			}
		}
	}
	if st.Seed != 0 {
		w("  seed: %d", st.Seed)
	}
	w("  rounds: %d", st.Rounds)
	if len(st.Events) > 0 {
		w("  events:")
		for i := range st.Events {
			e := &st.Events[i]
			prefix := "    - "
			writeKV := func(key, val string) {
				w("%s%s: %s", prefix, key, val)
				prefix = "      "
			}
			writeKV("kind", yamlString(e.Kind))
			if e.Round != 0 {
				writeKV("round", fmt.Sprint(e.Round))
			}
			if e.Duration != 0 {
				writeKV("duration", fmt.Sprint(e.Duration))
			}
			if e.Rate != 0 {
				writeKV("rate", formatFloat(e.Rate))
			}
			if e.Count != 0 {
				writeKV("count", fmt.Sprint(e.Count))
			}
			if len(e.Groups) > 0 {
				writeKV("groups", flowInts(e.Groups))
			}
			if e.Strategy != "" {
				writeKV("strategy", yamlString(e.Strategy))
			}
			if len(e.Args) > 0 {
				items := make([]string, len(e.Args))
				for j, a := range e.Args {
					items[j] = formatFloat(a)
				}
				writeKV("args", "["+strings.Join(items, ", ")+"]")
			}
			if e.Mode != "" {
				writeKV("mode", yamlString(e.Mode))
			}
			if e.Waves != 0 {
				writeKV("waves", fmt.Sprint(e.Waves))
			}
			if e.Factor != 0 {
				writeKV("factor", formatFloat(e.Factor))
			}
			if e.Spread != 0 {
				writeKV("spread", fmt.Sprint(e.Spread))
			}
		}
	}
	if len(st.Assertions) > 0 {
		w("  assertions:")
		for _, a := range st.Assertions {
			switch a.Kind {
			case "max_rounds":
				w("    - max_rounds: %d", a.Bound)
			case "survivors":
				w("    - survivors: %q", a.Expr)
			default:
				w("    - %s", a.Kind)
			}
		}
	}
}
