package transport

import (
	"fmt"
	"net"
	"time"
)

// The control-plane half of the v4 shard protocol. A resident
// coordinator (dynagrid -serve-coordinator) listens on one port and
// demultiplexes inbound connections by their first frame:
//
//   - join: an elastic worker registering itself (capacity + token).
//     After the welcome, the control plane drives the connection in the
//     client role — the same task → record-stream → done exchanges a
//     dialed worker speaks, just with the TCP roles inverted.
//   - submit: a sweep client enqueueing a spec. The control plane acks
//     with a sweep id, pushes status frames as the sweep progresses,
//     and finishes with a rows (or fail) frame.
//   - hello: a legacy one-shot coordinator dialing a listening worker
//     (not accepted by the control plane — workers answer hello).

// SweepState names a queued sweep's lifecycle phase in status frames.
type SweepState int

// Sweep lifecycle phases.
const (
	SweepQueued SweepState = iota
	SweepRunning
	SweepDone
	SweepFailed
)

// String names the state for logs and status lines.
func (s SweepState) String() string {
	switch s {
	case SweepQueued:
		return "queued"
	case SweepRunning:
		return "running"
	case SweepDone:
		return "done"
	case SweepFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// SweepStatus is one progress push from the control plane to a sweep
// client: Done counts committed runs (whole shards folded into the
// merge — requeued partial streams never count), Workers the live
// member census at frame time.
type SweepStatus struct {
	Sweep    int
	State    SweepState
	Done     int
	Total    int
	Requeues int
	Workers  int
}

// SubmitRequest is one sweep submission: the spec document plus the
// per-sweep overrides that used to be coordinator flags.
type SubmitRequest struct {
	// SeedsPerCell, when > 0, overrides the spec's seeds_per_cell.
	SeedsPerCell int
	// Shards is the requested shard count; 0 lets the control plane
	// size the plan from live member capacity.
	Shards int
	// Name labels the sweep in logs and status lines (usually the spec
	// file's base name).
	Name string
	// Spec is the sweep document, shipped verbatim.
	Spec []byte
}

// JoinControlPlane dials a resident control plane and registers as an
// elastic worker: join (version, capacity, token) → welcome. The
// returned ShardServer speaks the exact worker-side session a listening
// worker speaks — the control plane sends tasks, the worker streams
// records.
func JoinControlPlane(addr string, capacity int, token string, timeout time.Duration) (*ShardServer, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial control plane %s: %w", addr, err)
	}
	s := &ShardServer{raw: raw, c: newConn(raw), timeout: timeout}
	s.deadline()
	if err := s.c.writeFrame(frameShardJoin, protocolVersion, uint64(capacity)); err != nil {
		raw.Close()
		return nil, err
	}
	if err := s.c.writeBytes([]byte(token)); err != nil {
		raw.Close()
		return nil, err
	}
	if err := s.c.flush(); err != nil {
		raw.Close()
		return nil, err
	}
	ft, err := s.c.readType()
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("transport: join %s rejected: %w", addr, err)
	}
	switch ft {
	case frameShardWelcome:
	case frameShardErr:
		if _, err := s.c.readUvarint(); err != nil {
			raw.Close()
			return nil, err
		}
		msg, err := s.c.readBytes(maxShardErrText)
		if err != nil {
			raw.Close()
			return nil, err
		}
		raw.Close()
		return nil, fmt.Errorf("transport: control plane %s rejected join: %s", addr, msg)
	default:
		raw.Close()
		return nil, fmt.Errorf("%w: got 0x%02x, want welcome", ErrBadType, ft)
	}
	ver, err := s.c.readUvarint()
	if err != nil {
		raw.Close()
		return nil, err
	}
	if ver != protocolVersion {
		raw.Close()
		return nil, fmt.Errorf("%w: control plane speaks v%d, worker v%d", ErrVersion, ver, protocolVersion)
	}
	return s, nil
}

// Accepted is the control plane's classification of one inbound
// connection: exactly one of Worker, Submit and Status is non-nil.
type Accepted struct {
	// Worker is set for a join: the control plane's client-role handle
	// on the newly registered worker, with Capacity filled from the
	// join frame.
	Worker *ShardClient
	// Submit is set for a sweep submission; the request is already
	// parsed and authenticated.
	Submit *SubmitSession
	// Status is set for a read-only status query (dynagrid -status);
	// already authenticated. The handler answers once and closes.
	Status *StatusSession
}

// AcceptControlPlane performs the control-plane side of one inbound
// connection: read the role-naming first frame, authenticate it
// (constant-time token compare), and return the typed session. A
// rejected handshake (bad version, bad token, malformed frame) returns
// an error after best-effort sending the reason; the caller closes the
// connection and no membership or queue slot is consumed.
func AcceptControlPlane(raw net.Conn, token string, timeout time.Duration) (*Accepted, error) {
	c := newConn(raw)
	if timeout > 0 {
		raw.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
	}
	ft, err := c.readType()
	if err != nil {
		return nil, err
	}
	reject := func(cause error, msg string) (*Accepted, error) {
		// Best-effort diagnostic (never echoing the presented token),
		// then the caller closes the connection.
		if err := c.writeFrame(frameShardErr, 0); err == nil {
			if err := c.writeBytes([]byte(msg)); err == nil {
				c.flush() //nolint:errcheck
			}
		}
		return nil, cause
	}
	switch ft {
	case frameShardJoin:
		ver, err := c.readUvarint()
		if err != nil {
			return nil, err
		}
		capU, err := c.readUvarint()
		if err != nil {
			return nil, err
		}
		got, err := c.readBytes(maxTokenBytes)
		if err != nil {
			return nil, err
		}
		if ver != protocolVersion {
			return reject(fmt.Errorf("%w: worker speaks v%d, control plane v%d", ErrVersion, ver, protocolVersion),
				fmt.Sprintf("version mismatch: worker v%d, control plane v%d", ver, protocolVersion))
		}
		if err := checkToken(token, got); err != nil {
			return reject(err, "bad token")
		}
		if err := c.writeFrame(frameShardWelcome, protocolVersion); err != nil {
			return nil, err
		}
		if err := c.flush(); err != nil {
			return nil, err
		}
		return &Accepted{Worker: &ShardClient{raw: raw, c: c, timeout: timeout, Capacity: int(capU)}}, nil
	case frameSubmit:
		ver, err := c.readUvarint()
		if err != nil {
			return nil, err
		}
		seeds, err := c.readUvarint()
		if err != nil {
			return nil, err
		}
		shards, err := c.readUvarint()
		if err != nil {
			return nil, err
		}
		got, err := c.readBytes(maxTokenBytes)
		if err != nil {
			return nil, err
		}
		name, err := c.readBytes(maxSweepName)
		if err != nil {
			return nil, err
		}
		specData, err := c.readBytes(maxSpecBytes)
		if err != nil {
			return nil, err
		}
		if ver != protocolVersion {
			return reject(fmt.Errorf("%w: client speaks v%d, control plane v%d", ErrVersion, ver, protocolVersion),
				fmt.Sprintf("version mismatch: client v%d, control plane v%d", ver, protocolVersion))
		}
		if err := checkToken(token, got); err != nil {
			return reject(err, "bad token")
		}
		return &Accepted{Submit: &SubmitSession{
			raw: raw, c: c, timeout: timeout,
			Req: SubmitRequest{
				SeedsPerCell: int(seeds),
				Shards:       int(shards),
				Name:         string(name),
				Spec:         specData,
			},
		}}, nil
	case frameStatusReq:
		ver, err := c.readUvarint()
		if err != nil {
			return nil, err
		}
		got, err := c.readBytes(maxTokenBytes)
		if err != nil {
			return nil, err
		}
		if ver != protocolVersion {
			return reject(fmt.Errorf("%w: client speaks v%d, control plane v%d", ErrVersion, ver, protocolVersion),
				fmt.Sprintf("version mismatch: client v%d, control plane v%d", ver, protocolVersion))
		}
		if err := checkToken(token, got); err != nil {
			return reject(err, "bad token")
		}
		return &Accepted{Status: &StatusSession{raw: raw, c: c, timeout: timeout}}, nil
	default:
		return reject(fmt.Errorf("%w: got 0x%02x, want join, submit or status", ErrBadType, ft),
			"expected join, submit or status")
	}
}

// SweepStatusInfo is one sweep's row of a control-plane status
// snapshot.
type SweepStatusInfo struct {
	ID       int
	Name     string
	State    SweepState
	Done     int
	Total    int
	Requeues int
}

// PlaneStatus is a control plane's point-in-time self-description: the
// live member census and every non-archived sweep in submission order.
type PlaneStatus struct {
	Workers int
	Sweeps  []SweepStatusInfo
}

// StatusSession is the control plane's end of one status-query
// connection: answer once with Send, then close.
type StatusSession struct {
	raw     net.Conn
	c       *conn
	timeout time.Duration
}

// Send answers the query with one info frame.
func (s *StatusSession) Send(st PlaneStatus) error {
	if s.timeout > 0 {
		s.raw.SetDeadline(time.Now().Add(s.timeout)) //nolint:errcheck
	}
	if err := s.c.writeFrame(frameStatusInfo, uint64(st.Workers), uint64(len(st.Sweeps))); err != nil {
		return err
	}
	for _, sw := range st.Sweeps {
		for _, f := range []uint64{uint64(sw.ID), uint64(sw.State), uint64(sw.Done), uint64(sw.Total), uint64(sw.Requeues)} {
			if err := s.c.writeUvarint(f); err != nil {
				return err
			}
		}
		name := sw.Name
		if len(name) > maxSweepName {
			name = name[:maxSweepName]
		}
		if err := s.c.writeBytes([]byte(name)); err != nil {
			return err
		}
	}
	return s.c.flush()
}

// Close releases the connection.
func (s *StatusSession) Close() { s.raw.Close() }

// QueryPlaneStatus dials a control plane and fetches one status
// snapshot — the read-only introspection behind dynagrid -status.
func QueryPlaneStatus(addr, token string, timeout time.Duration) (*PlaneStatus, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial control plane %s: %w", addr, err)
	}
	defer raw.Close()
	c := newConn(raw)
	if timeout > 0 {
		raw.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
	}
	if err := c.writeFrame(frameStatusReq, protocolVersion); err != nil {
		return nil, err
	}
	if err := c.writeBytes([]byte(token)); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	ft, err := c.readType()
	if err != nil {
		return nil, err
	}
	switch ft {
	case frameStatusInfo:
	case frameShardErr:
		if _, err := c.readUvarint(); err != nil {
			return nil, err
		}
		msg, err := c.readBytes(maxShardErrText)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("transport: control plane %s rejected status query: %s", addr, msg)
	default:
		return nil, fmt.Errorf("%w: got 0x%02x, want status info", ErrBadType, ft)
	}
	workers, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	count, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	if count > maxStatusSweeps {
		return nil, fmt.Errorf("%w: status frame lists %d sweeps (limit %d)", ErrBadFrame, count, maxStatusSweeps)
	}
	st := &PlaneStatus{Workers: int(workers)}
	for i := uint64(0); i < count; i++ {
		var f [5]uint64
		for j := range f {
			v, err := c.readUvarint()
			if err != nil {
				return nil, err
			}
			f[j] = v
		}
		name, err := c.readBytes(maxSweepName)
		if err != nil {
			return nil, err
		}
		st.Sweeps = append(st.Sweeps, SweepStatusInfo{
			ID: int(f[0]), State: SweepState(f[1]),
			Done: int(f[2]), Total: int(f[3]), Requeues: int(f[4]),
			Name: string(name),
		})
	}
	return st, nil
}

// maxStatusSweeps bounds a status frame's sweep list (sanity cap far
// above any real queue).
const maxStatusSweeps = 1 << 16

// SubmitSession is the control plane's end of one sweep-client
// connection. The request is parsed; the control plane answers with
// Ack, pushes Status frames as the sweep progresses, and finishes with
// Rows or Fail. All writes happen from one goroutine (the session's
// handler).
type SubmitSession struct {
	raw     net.Conn
	c       *conn
	timeout time.Duration

	// Req is the authenticated submission.
	Req SubmitRequest
}

func (s *SubmitSession) deadline() {
	if s.timeout > 0 {
		s.raw.SetDeadline(time.Now().Add(s.timeout)) //nolint:errcheck
	}
}

// Ack confirms the submission with the assigned sweep id and the total
// run count of the planned sweep.
func (s *SubmitSession) Ack(id, total int) error {
	s.deadline()
	if err := s.c.writeFrame(frameSubmitOK, uint64(id), uint64(total)); err != nil {
		return err
	}
	return s.c.flush()
}

// Status pushes one progress frame.
func (s *SubmitSession) Status(st SweepStatus) error {
	s.deadline()
	if err := s.c.writeFrame(frameSweepStatus, uint64(st.Sweep), uint64(st.State),
		uint64(st.Done), uint64(st.Total), uint64(st.Requeues), uint64(st.Workers)); err != nil {
		return err
	}
	return s.c.flush()
}

// Rows finishes the session with the sweep's aggregate rows, shipped as
// the JSON the client folds into its report envelope (byte-identical to
// a local Grid.Run's rows).
func (s *SubmitSession) Rows(id int, rowsJSON []byte) error {
	if len(rowsJSON) > maxRowsBytes {
		return fmt.Errorf("transport: rows of %d bytes exceed limit %d", len(rowsJSON), maxRowsBytes)
	}
	s.deadline()
	if err := s.c.writeFrame(frameSweepRows, uint64(id)); err != nil {
		return err
	}
	if err := s.c.writeBytes(rowsJSON); err != nil {
		return err
	}
	return s.c.flush()
}

// Fail finishes the session with the sweep's error.
func (s *SubmitSession) Fail(id int, msg string) error {
	if len(msg) > maxShardErrText {
		msg = msg[:maxShardErrText]
	}
	s.deadline()
	if err := s.c.writeFrame(frameSweepFail, uint64(id)); err != nil {
		return err
	}
	if err := s.c.writeBytes([]byte(msg)); err != nil {
		return err
	}
	return s.c.flush()
}

// Close releases the connection.
func (s *SubmitSession) Close() { s.raw.Close() }

// SweepError is the control plane's report that a submitted sweep
// failed (bad spec, deterministic worker rejection, abort).
type SweepError struct {
	Sweep int
	Msg   string
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("transport: sweep %d failed on control plane: %s", e.Sweep, e.Msg)
}

// SubmitSweep dials a control plane, submits one sweep, and blocks
// until it completes, returning the aggregate rows as JSON. onStatus,
// when non-nil, receives every status push. timeout bounds each frame
// exchange — the control plane pushes status at least once a second
// while the sweep runs, so a stalled control plane surfaces as a read
// timeout rather than a hang.
func SubmitSweep(addr, token string, req SubmitRequest, timeout time.Duration, onStatus func(SweepStatus)) ([]byte, error) {
	if len(req.Spec) > maxSpecBytes {
		return nil, fmt.Errorf("transport: spec of %d bytes exceeds limit %d", len(req.Spec), maxSpecBytes)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial control plane %s: %w", addr, err)
	}
	defer raw.Close()
	c := newConn(raw)
	deadline := func() {
		if timeout > 0 {
			raw.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
		}
	}
	deadline()
	if err := c.writeFrame(frameSubmit, protocolVersion,
		uint64(req.SeedsPerCell), uint64(req.Shards)); err != nil {
		return nil, err
	}
	if err := c.writeBytes([]byte(token)); err != nil {
		return nil, err
	}
	name := req.Name
	if len(name) > maxSweepName {
		name = name[:maxSweepName]
	}
	if err := c.writeBytes([]byte(name)); err != nil {
		return nil, err
	}
	if err := c.writeBytes(req.Spec); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	id := -1
	for {
		deadline() // refreshed per frame; status pushes keep the link live
		ft, err := c.readType()
		if err != nil {
			return nil, err
		}
		switch ft {
		case frameSubmitOK:
			idU, err := c.readUvarint()
			if err != nil {
				return nil, err
			}
			if _, err := c.readUvarint(); err != nil { // total runs
				return nil, err
			}
			id = int(idU)
		case frameSweepStatus:
			var f [6]uint64
			for i := range f {
				v, err := c.readUvarint()
				if err != nil {
					return nil, err
				}
				f[i] = v
			}
			if onStatus != nil {
				onStatus(SweepStatus{
					Sweep: int(f[0]), State: SweepState(f[1]),
					Done: int(f[2]), Total: int(f[3]),
					Requeues: int(f[4]), Workers: int(f[5]),
				})
			}
		case frameSweepRows:
			idU, err := c.readUvarint()
			if err != nil {
				return nil, err
			}
			if int(idU) != id {
				return nil, fmt.Errorf("%w: rows for sweep %d, want %d", ErrBadFrame, idU, id)
			}
			return c.readBytes(maxRowsBytes)
		case frameSweepFail:
			idU, err := c.readUvarint()
			if err != nil {
				return nil, err
			}
			msg, err := c.readBytes(maxShardErrText)
			if err != nil {
				return nil, err
			}
			return nil, &SweepError{Sweep: int(idU), Msg: string(msg)}
		case frameShardErr:
			// Pre-ack rejection (bad token, version mismatch).
			if _, err := c.readUvarint(); err != nil {
				return nil, err
			}
			msg, err := c.readBytes(maxShardErrText)
			if err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("transport: control plane %s rejected submit: %s", addr, msg)
		default:
			return nil, fmt.Errorf("%w: 0x%02x awaiting sweep result", ErrBadType, ft)
		}
	}
}
