package transport

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/network"
	"anondyn/internal/sim"
)

type netConn = net.Conn

func netDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// runDistributed spins a hub plus n client goroutines over loopback TCP
// and returns both sides' results.
func runDistributed(t *testing.T, n int, hubCfg HubConfig,
	newProc func(node int) func(n, selfPort int) (core.Process, error)) (*HubResult, []*ClientResult) {
	t.Helper()
	hub, err := NewHub("127.0.0.1:0", hubCfg)
	if err != nil {
		t.Fatal(err)
	}
	var (
		hubRes *HubResult
		hubErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		hubRes, hubErr = hub.Serve()
	}()

	// Connection order defines hub-side node IDs, so concurrent dials
	// permute which client becomes which node; the test process
	// factories therefore derive everything (including inputs) from the
	// selfPort the hub hands out, never from the loop index.
	clients := make([]*ClientResult, n)
	clientErrs := make([]error, n)
	var cwg sync.WaitGroup
	for i := 0; i < n; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			clients[i], clientErrs[i] = RunClient(hub.Addr(), ClientConfig{
				NewProcess: newProc(i),
				IOTimeout:  10 * time.Second,
			})
		}(i)
	}
	cwg.Wait()
	wg.Wait()
	if hubErr != nil {
		t.Fatalf("hub: %v", hubErr)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	return hubRes, clients
}

func TestDistributedDACCompleteGraph(t *testing.T) {
	n, eps := 7, 1e-3
	// Inputs are delivered per client; since connection order is
	// nondeterministic, every client derives its input from the self
	// port the hub hands it (identity numbering ⇒ selfPort = node ID).
	newProc := func(client int) func(n, selfPort int) (core.Process, error) {
		return func(n, selfPort int) (core.Process, error) {
			input := float64(selfPort) / float64(n-1)
			return core.NewDAC(n, selfPort, input, eps)
		}
	}
	hubRes, clients := runDistributed(t, n, HubConfig{
		N:         n,
		Adversary: adversary.NewComplete(),
		IOTimeout: 10 * time.Second,
	}, newProc)

	if !hubRes.Decided {
		t.Fatalf("hub: undecided after %d rounds", hubRes.Rounds)
	}
	if hubRes.Rounds != core.PEndDAC(eps) {
		t.Errorf("rounds = %d, want %d (complete graph)", hubRes.Rounds, core.PEndDAC(eps))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, cr := range clients {
		if !cr.Decided {
			t.Fatalf("client (port %d) undecided", cr.SelfPort)
		}
		lo = math.Min(lo, cr.Output)
		hi = math.Max(hi, cr.Output)
	}
	if hi-lo > eps {
		t.Errorf("client output range %g > ε", hi-lo)
	}
	// Hub-side and client-side outputs agree.
	for id, out := range hubRes.Outputs {
		if out < lo-1e-9 || out > hi+1e-9 {
			t.Errorf("hub output for node %d (%g) outside client range", id, out)
		}
	}
}

func TestDistributedDACRotatingAdversary(t *testing.T) {
	n, eps := 7, 1e-2
	rot, err := adversary.NewRotating(3)
	if err != nil {
		t.Fatal(err)
	}
	newProc := func(client int) func(n, selfPort int) (core.Process, error) {
		return func(n, selfPort int) (core.Process, error) {
			return core.NewDAC(n, selfPort, float64(selfPort)/float64(n-1), eps)
		}
	}
	hubRes, _ := runDistributed(t, n, HubConfig{
		N:         n,
		Adversary: rot,
		MaxRounds: 500,
		IOTimeout: 10 * time.Second,
	}, newProc)
	if !hubRes.Decided {
		t.Fatalf("undecided under rotating(3) after %d rounds", hubRes.Rounds)
	}
	// The hub's trace must provide the degree the adversary promises.
	ff := make([]int, n)
	for i := range ff {
		ff[i] = i
	}
	if !network.SatisfiesDynaDegree(hubRes.Trace, ff, 1, 3) {
		t.Error("recorded trace lost the (1,3) guarantee")
	}
}

func TestDistributedMatchesSimulation(t *testing.T) {
	// The same deterministic scenario through the TCP stack and through
	// the in-process engine must produce identical outputs.
	n, eps := 5, 1e-3
	newProc := func(client int) func(n, selfPort int) (core.Process, error) {
		return func(n, selfPort int) (core.Process, error) {
			return core.NewDAC(n, selfPort, float64(selfPort)/float64(n-1), eps)
		}
	}
	hubRes, _ := runDistributed(t, n, HubConfig{
		N:         n,
		Adversary: adversary.NewComplete(),
		IOTimeout: 10 * time.Second,
	}, newProc)

	procs := make([]core.Process, n)
	for i := 0; i < n; i++ {
		d, err := core.NewDAC(n, i, float64(i)/float64(n-1), eps)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = d
	}
	eng, err := sim.NewEngine(sim.Config{N: n, Procs: procs, Adversary: adversary.NewComplete()})
	if err != nil {
		t.Fatal(err)
	}
	simRes := eng.Run()
	if hubRes.Rounds != simRes.Rounds {
		t.Errorf("rounds: tcp %d, sim %d", hubRes.Rounds, simRes.Rounds)
	}
	for id, want := range simRes.Outputs {
		got, ok := hubRes.Outputs[id]
		if !ok {
			t.Errorf("node %d missing from tcp outputs", id)
			continue
		}
		// Status frames quantize to 30 fractional bits.
		if math.Abs(got-want) > 1.0/(1<<29) {
			t.Errorf("node %d: tcp %g, sim %g", id, got, want)
		}
	}
}

func TestHubValidation(t *testing.T) {
	if _, err := NewHub("127.0.0.1:0", HubConfig{N: 0, Adversary: adversary.NewComplete()}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewHub("127.0.0.1:0", HubConfig{N: 3}); err == nil {
		t.Error("nil adversary accepted")
	}
	if _, err := NewHub("127.0.0.1:0", HubConfig{
		N: 3, Adversary: adversary.NewComplete(), Ports: network.IdentityPorts(2),
	}); err == nil {
		t.Error("mismatched ports accepted")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := RunClient("127.0.0.1:1", ClientConfig{}); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestClientVersionMismatch(t *testing.T) {
	// A fake hub that answers the hello with a wrong version.
	hub, err := NewHub("127.0.0.1:0", HubConfig{N: 1, Adversary: adversary.NewComplete()})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	go func() {
		raw, err := hub.ln.Accept()
		if err != nil {
			return
		}
		defer raw.Close()
		c := newConn(raw)
		c.readType()                        //nolint:errcheck
		c.readUvarint()                     //nolint:errcheck
		c.writeFrame(frameConfig, 99, 1, 0) //nolint:errcheck
		c.flush()                           //nolint:errcheck
	}()
	_, err = RunClient(hub.Addr(), ClientConfig{
		NewProcess: func(n, selfPort int) (core.Process, error) {
			return core.NewDAC(n, selfPort, 0.5, 0.1)
		},
		IOTimeout: 5 * time.Second,
	})
	if !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

// dialWait dials with brief retries (the hub's accept loop may not be
// scheduled yet).
func dialWait(addr string) (netConn, error) {
	var lastErr error
	for i := 0; i < 50; i++ {
		c, err := netDial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, lastErr
}

func TestHubFailsCleanlyOnMidRoundDisconnect(t *testing.T) {
	// One real node plus one that vanishes after the handshake: the hub
	// must error out of Serve, and the surviving client must get a
	// connection error rather than hang.
	hub, err := NewHub("127.0.0.1:0", HubConfig{
		N:         2,
		Adversary: adversary.NewComplete(),
		IOTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hubDone := make(chan error, 1)
	go func() {
		_, err := hub.Serve()
		hubDone <- err
	}()

	// The deserter: handshake, then slam the connection.
	raw, err := dialWait(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	if err := c.writeFrame(frameHello, protocolVersion); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.readType(); err != nil { // config frame
		t.Fatal(err)
	}

	clientDone := make(chan error, 1)
	go func() {
		_, err := RunClient(hub.Addr(), ClientConfig{
			NewProcess: func(n, selfPort int) (core.Process, error) {
				return core.NewDAC(n, selfPort, 0.5, 0.1)
			},
			IOTimeout: 5 * time.Second,
		})
		clientDone <- err
	}()
	time.Sleep(100 * time.Millisecond)
	raw.Close() // desert mid-execution

	select {
	case err := <-hubDone:
		if err == nil {
			t.Error("hub succeeded despite a deserting node")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hub hung on a deserting node")
	}
	select {
	case err := <-clientDone:
		if err == nil {
			t.Error("surviving client claims success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("surviving client hung")
	}
}

func TestHubTimeoutOnSilentNode(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0", HubConfig{
		N:         1,
		Adversary: adversary.NewComplete(),
		IOTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	done := make(chan error, 1)
	go func() {
		_, err := hub.Serve()
		done <- err
	}()
	// Connect but never speak.
	raw, err := dialWait(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("hub succeeded against a silent node")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hub hung on a silent node despite IOTimeout")
	}
}
