package transport

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// acceptOne runs AcceptControlPlane on one inbound connection and
// returns the classification (closing the conn on rejection).
func acceptOne(t *testing.T, ln net.Listener, token string) (*Accepted, error) {
	t.Helper()
	raw, err := ln.Accept()
	if err != nil {
		return nil, err
	}
	acc, err := AcceptControlPlane(raw, token, 5*time.Second)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return acc, nil
}

// TestJoinHandshakeRoundTrip: a worker joining the control plane gets
// the same task → record → done session a dialed worker speaks, with
// the capacity announcement intact.
func TestJoinHandshakeRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acceptResult struct {
		acc *Accepted
		err error
	}
	accCh := make(chan acceptResult, 1)
	go func() {
		acc, err := acceptOne(t, ln, "s3cret")
		accCh <- acceptResult{acc, err}
	}()

	srv, err := JoinControlPlane(ln.Addr().String(), 6, "s3cret", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := <-accCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.acc.Worker == nil || res.acc.Submit != nil {
		t.Fatalf("accept classified %+v, want a worker", res.acc)
	}
	cl := res.acc.Worker
	defer cl.Close()
	if cl.Capacity != 6 {
		t.Errorf("joined capacity = %d, want 6", cl.Capacity)
	}

	// The inverted connection speaks the ordinary shard session.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		task, err := srv.Next()
		if err != nil {
			t.Errorf("worker next: %v", err)
			return
		}
		for i := task.Lo; i < task.Hi; i++ {
			if err := srv.WriteRecord(ShardRecord{Run: i, Rounds: 2 * i}); err != nil {
				t.Errorf("worker record: %v", err)
				return
			}
		}
		if err := srv.Done(task.Shard, task.Runs()); err != nil {
			t.Errorf("worker done: %v", err)
		}
	}()
	var got []ShardRecord
	err = cl.RunShard(ShardTask{Shard: 2, Lo: 3, Hi: 6, Spec: []byte("ns: [3]")},
		func(r ShardRecord) error { got = append(got, r); return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Run != 3 || got[2].Rounds != 10 {
		t.Errorf("records over joined conn = %+v", got)
	}
	wg.Wait()
}

// TestJoinRejectsBadToken: a wrong token is refused before any
// membership state exists, and the worker gets a diagnostic that never
// echoes the secret.
func TestJoinRejectsBadToken(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := acceptOne(t, ln, "right")
		errCh <- err
	}()
	_, err = JoinControlPlane(ln.Addr().String(), 1, "wrong", 5*time.Second)
	if err == nil {
		t.Fatal("join with a bad token succeeded")
	}
	if !strings.Contains(err.Error(), "bad token") {
		t.Errorf("worker-side err = %v, want the bad-token diagnostic", err)
	}
	if strings.Contains(err.Error(), "right") || strings.Contains(err.Error(), "wrong") {
		t.Errorf("diagnostic %q echoes a token", err)
	}
	if err := <-errCh; !errors.Is(err, ErrAuth) {
		t.Errorf("control-plane err = %v, want ErrAuth", err)
	}
}

// TestWorkerLeaveSurfacesAsErrWorkerLeft: a leave frame racing a task
// onto the wire turns into ErrWorkerLeft on the control-plane side so
// the shard can be requeued without a failure charge.
func TestWorkerLeaveSurfacesAsErrWorkerLeft(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acceptResult struct {
		acc *Accepted
		err error
	}
	accCh := make(chan acceptResult, 1)
	go func() {
		acc, err := acceptOne(t, ln, "")
		accCh <- acceptResult{acc, err}
	}()
	srv, err := JoinControlPlane(ln.Addr().String(), 1, "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := <-accCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	cl := res.acc.Worker
	defer cl.Close()

	if err := srv.Leave(); err != nil {
		t.Fatal(err)
	}
	err = cl.RunShard(ShardTask{Shard: 0, Lo: 0, Hi: 2, Spec: []byte("{}")},
		func(ShardRecord) error { return nil }, nil)
	if !errors.Is(err, ErrWorkerLeft) {
		t.Errorf("err = %v, want ErrWorkerLeft", err)
	}
}

// TestSubmitSweepRoundTrip: submit → ack → status pushes → rows, with
// the request fields and rows surviving the wire intact.
func TestSubmitSweepRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rows := []byte(`[{"n":4,"f":1}]`)
	go func() {
		acc, err := acceptOne(t, ln, "tok")
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		if acc.Submit == nil {
			t.Error("submit classified as worker")
			return
		}
		s := acc.Submit
		defer s.Close()
		req := s.Req
		if req.SeedsPerCell != 2 || req.Shards != 7 || req.Name != "er-crash" || string(req.Spec) != "ns: [4]" {
			t.Errorf("request = %+v", req)
		}
		if err := s.Ack(3, 40); err != nil {
			t.Errorf("ack: %v", err)
			return
		}
		st := SweepStatus{Sweep: 3, State: SweepRunning, Done: 10, Total: 40, Requeues: 1, Workers: 2}
		if err := s.Status(st); err != nil {
			t.Errorf("status: %v", err)
			return
		}
		if err := s.Rows(3, rows); err != nil {
			t.Errorf("rows: %v", err)
		}
	}()

	var seen []SweepStatus
	got, err := SubmitSweep(ln.Addr().String(), "tok", SubmitRequest{
		SeedsPerCell: 2, Shards: 7, Name: "er-crash", Spec: []byte("ns: [4]"),
	}, 5*time.Second, func(st SweepStatus) { seen = append(seen, st) })
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(rows) {
		t.Errorf("rows = %s, want %s", got, rows)
	}
	if len(seen) != 1 || seen[0].Done != 10 || seen[0].State != SweepRunning || seen[0].Workers != 2 {
		t.Errorf("status pushes = %+v", seen)
	}
}

// TestSubmitSweepFailPropagates: a control-plane-side sweep failure
// arrives as a *SweepError carrying the id and message.
func TestSubmitSweepFailPropagates(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		acc, err := acceptOne(t, ln, "")
		if err != nil || acc.Submit == nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer acc.Submit.Close()
		acc.Submit.Ack(5, 8)                            //nolint:errcheck
		acc.Submit.Fail(5, "spec: unknown algorithm")   //nolint:errcheck
	}()
	_, err = SubmitSweep(ln.Addr().String(), "", SubmitRequest{Spec: []byte("x")}, 5*time.Second, nil)
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SweepError", err)
	}
	if se.Sweep != 5 || !strings.Contains(se.Msg, "unknown algorithm") {
		t.Errorf("sweep error = %+v", se)
	}
}

// TestSubmitRejectsBadToken: submissions authenticate exactly like
// joins.
func TestSubmitRejectsBadToken(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := acceptOne(t, ln, "right")
		errCh <- err
	}()
	_, err = SubmitSweep(ln.Addr().String(), "wrong", SubmitRequest{Spec: []byte("x")}, 5*time.Second, nil)
	if err == nil || !strings.Contains(err.Error(), "bad token") {
		t.Errorf("client err = %v, want bad-token rejection", err)
	}
	if err := <-errCh; !errors.Is(err, ErrAuth) {
		t.Errorf("control-plane err = %v, want ErrAuth", err)
	}
}
