package transport

import (
	"errors"
	"fmt"
	"math"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
)

// echoWorker accepts one connection and answers every task with a
// synthetic record stream (run index i → rounds=i, range=i/10) followed
// by done, until the stop frame.
func echoWorker(t *testing.T, ln net.Listener, capacity int) {
	t.Helper()
	raw, err := ln.Accept()
	if err != nil {
		return
	}
	defer raw.Close()
	srv, err := AcceptShard(raw, capacity, "", 5*time.Second)
	if err != nil {
		t.Errorf("worker handshake: %v", err)
		return
	}
	for {
		task, err := srv.Next()
		if errors.Is(err, ErrShutdown) {
			return
		}
		if err != nil {
			t.Errorf("worker next: %v", err)
			return
		}
		for i := task.Lo; i < task.Hi; i++ {
			rec := ShardRecord{
				Run:          i,
				Decided:      i%2 == 0,
				Rounds:       i,
				Bytes:        3 * i,
				OutRangeBits: math.Float64bits(float64(i) / 10),
				Violation:    i%3 == 0,
			}
			if err := srv.WriteRecord(rec); err != nil {
				t.Errorf("worker record: %v", err)
				return
			}
		}
		if err := srv.Done(task.Shard, task.Runs()); err != nil {
			t.Errorf("worker done: %v", err)
			return
		}
	}
}

func TestShardProtocolRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		echoWorker(t, ln, 4)
	}()

	cl, err := DialShard(ln.Addr().String(), "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Capacity != 4 {
		t.Errorf("capacity = %d, want 4", cl.Capacity)
	}
	for _, task := range []ShardTask{
		{Shard: 0, Lo: 0, Hi: 5, SeedsPerCell: 2, MaxPending: 8, Spec: []byte("ns: [3]")},
		{Shard: 1, Lo: 5, Hi: 7, Spec: []byte("{}")},
	} {
		var got []ShardRecord
		if err := cl.RunShard(task, func(r ShardRecord) error {
			got = append(got, r)
			return nil
		}, nil); err != nil {
			t.Fatalf("shard %d: %v", task.Shard, err)
		}
		if len(got) != task.Runs() {
			t.Fatalf("shard %d: %d records, want %d", task.Shard, len(got), task.Runs())
		}
		for j, r := range got {
			i := task.Lo + j
			want := ShardRecord{
				Run: i, Decided: i%2 == 0, Rounds: i, Bytes: 3 * i,
				OutRangeBits: math.Float64bits(float64(i) / 10), Violation: i%3 == 0,
			}
			if r != want {
				t.Errorf("record %d = %+v, want %+v", i, r, want)
			}
		}
	}
	cl.Stop()
	wg.Wait()
}

// TestShardMetricsFramesRoundTrip: v3 telemetry frames interleave with
// the record stream without perturbing it, the task's cadence field
// round-trips, and a client that passes a nil onMetrics skips the
// frames silently.
func TestShardMetricsFramesRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serve := func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		defer raw.Close()
		srv, err := AcceptShard(raw, 2, "", 5*time.Second)
		if err != nil {
			t.Errorf("worker handshake: %v", err)
			return
		}
		task, err := srv.Next()
		if err != nil {
			return
		}
		if task.MetricsEveryRuns != 2 {
			t.Errorf("task cadence = %d, want 2", task.MetricsEveryRuns)
		}
		for i := task.Lo; i < task.Hi; i++ {
			if err := srv.WriteRecord(ShardRecord{Run: i, Rounds: i}); err != nil {
				t.Errorf("worker record: %v", err)
				return
			}
			done := i - task.Lo + 1
			if done%task.MetricsEveryRuns == 0 {
				if err := srv.WriteMetrics(ShardMetrics{
					Shard: task.Shard, Runs: uint64(done), Rounds: uint64(100 * done),
					Delivered: 7, Busy: 1, Workers: 2,
				}); err != nil {
					t.Errorf("worker metrics: %v", err)
					return
				}
			}
		}
		if err := srv.Done(task.Shard, task.Runs()); err != nil {
			t.Errorf("worker done: %v", err)
		}
	}
	go serve()

	cl, err := DialShard(ln.Addr().String(), "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	task := ShardTask{Shard: 3, Lo: 0, Hi: 5, MetricsEveryRuns: 2, Spec: []byte("ns: [3]")}
	var recs []ShardRecord
	var frames []ShardMetrics
	err = cl.RunShard(task, func(r ShardRecord) error {
		recs = append(recs, r)
		return nil
	}, func(m ShardMetrics) { frames = append(frames, m) })
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("%d records, want 5 (metrics frames must not consume run indices)", len(recs))
	}
	want := []ShardMetrics{
		{Shard: 3, Runs: 2, Rounds: 200, Delivered: 7, Busy: 1, Workers: 2},
		{Shard: 3, Runs: 4, Rounds: 400, Delivered: 7, Busy: 1, Workers: 2},
	}
	if !reflect.DeepEqual(frames, want) {
		t.Errorf("metrics frames = %+v, want %+v", frames, want)
	}

	// Same exchange with a nil onMetrics: the frames are read and
	// discarded, the record stream is untouched.
	go serve()
	cl2, err := DialShard(ln.Addr().String(), "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	n := 0
	if err := cl2.RunShard(task, func(ShardRecord) error { n++; return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("%d records with nil onMetrics, want 5", n)
	}
}

// TestShardRecordGapRejected: the coordinator's record stream is
// strictly sequential — a worker that skips a run index (the symptom of
// a silently dropped run) is a malformed stream, never a clean merge.
func TestShardRecordGapRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		defer raw.Close()
		srv, err := AcceptShard(raw, 1, "", 5*time.Second)
		if err != nil {
			return
		}
		task, err := srv.Next()
		if err != nil {
			return
		}
		srv.WriteRecord(ShardRecord{Run: task.Lo})     //nolint:errcheck
		srv.WriteRecord(ShardRecord{Run: task.Lo + 2}) //nolint:errcheck // the gap
		srv.Done(task.Shard, task.Runs())              //nolint:errcheck
	}()
	cl, err := DialShard(ln.Addr().String(), "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.RunShard(ShardTask{Shard: 0, Lo: 0, Hi: 3, Spec: []byte("ns: [3]")},
		func(ShardRecord) error { return nil }, nil)
	if !errors.Is(err, ErrBadFrame) {
		t.Errorf("err = %v, want ErrBadFrame for a gapped record stream", err)
	}
}

func TestShardServerRejectsVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer raw.Close()
		_, err = AcceptShard(raw, 1, "", 2*time.Second)
		errCh <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := newConn(raw)
	if err := c.writeFrame(frameShardHello, 99); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrVersion) {
		t.Errorf("worker err = %v, want ErrVersion", err)
	}
}

func TestShardFailReportsDeterministicError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		defer raw.Close()
		srv, err := AcceptShard(raw, 1, "", 5*time.Second)
		if err != nil {
			return
		}
		task, err := srv.Next()
		if err != nil {
			return
		}
		srv.Fail(task.Shard, "spec: empty document") //nolint:errcheck
	}()
	cl, err := DialShard(ln.Addr().String(), "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.RunShard(ShardTask{Shard: 7, Lo: 0, Hi: 3, Spec: []byte("")}, func(ShardRecord) error { return nil }, nil)
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError", err)
	}
	if se.Shard != 7 || !strings.Contains(se.Msg, "empty document") {
		t.Errorf("shard error = %+v", se)
	}
}

// TestHubReleasesSlotOnBadHandshake: a bad-version connect must not
// consume one of the n seats — a good node arriving afterwards still
// brings the hub to n and the execution completes.
func TestHubReleasesSlotOnBadHandshake(t *testing.T) {
	var logMu sync.Mutex
	var logged []string
	hub, err := NewHub("127.0.0.1:0", HubConfig{
		N:         2,
		Adversary: adversary.NewComplete(),
		IOTimeout: 5 * time.Second,
		Log: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hubDone := make(chan error, 1)
	go func() {
		_, err := hub.Serve()
		hubDone <- err
	}()

	// The impostor: wrong protocol version. The hub must reject it and
	// keep the slot free.
	raw, err := dialWait(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	if err := c.writeFrame(frameHello, protocolVersion+41); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	// The hub closes the rejected connection; observe it.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := c.readType(); err == nil {
		t.Fatal("hub answered a bad-version hello instead of rejecting it")
	}
	raw.Close()

	// A second impostor that disconnects before completing the
	// handshake must not burn the slot either.
	raw2, err := dialWait(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw2.Close()

	// The genuine nodes still bring the hub to n=2 and the execution
	// finishes.
	results := make([]*ClientResult, 2)
	clientErrs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], clientErrs[i] = RunClient(hub.Addr(), ClientConfig{
				NewProcess: func(n, selfPort int) (core.Process, error) {
					return core.NewDAC(n, selfPort, float64(selfPort), 0.1)
				},
				IOTimeout: 5 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i := range results {
		if clientErrs[i] != nil {
			t.Fatalf("good client %d after bad handshakes: %v", i, clientErrs[i])
		}
		if !results[i].Decided {
			t.Errorf("good client %d undecided", i)
		}
	}
	select {
	case err := <-hubDone:
		if err != nil {
			t.Errorf("hub: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not finish")
	}
	// Both rejections must have been logged — a silently waiting hub is
	// undiagnosable from the operator's side.
	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) != 2 {
		t.Errorf("logged %d rejections, want 2: %q", len(logged), logged)
	}
	for _, line := range logged {
		if !strings.Contains(line, "rejected") {
			t.Errorf("log line %q does not mention the rejection", line)
		}
	}
}

// TestHubAbortsAfterRepeatedRejections: a stale node in a restart loop
// must eventually abort the hub instead of spinning reject/accept
// forever.
func TestHubAbortsAfterRepeatedRejections(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0", HubConfig{
		N:         1,
		Adversary: adversary.NewComplete(),
		IOTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hubDone := make(chan error, 1)
	go func() {
		_, err := hub.Serve()
		hubDone <- err
	}()
	for i := 0; i < maxHandshakeRejections; i++ {
		raw, err := dialWait(hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c := newConn(raw)
		if err := c.writeFrame(frameHello, protocolVersion+1); err != nil {
			t.Fatal(err)
		}
		if err := c.flush(); err != nil {
			t.Fatal(err)
		}
		raw.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		c.readType()                                         //nolint:errcheck // wait for the hub to drop us
		raw.Close()
	}
	select {
	case err := <-hubDone:
		if err == nil || !errors.Is(err, ErrVersion) {
			t.Errorf("hub err = %v, want rejection-cap abort wrapping ErrVersion", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hub kept accepting past the rejection cap")
	}
}
