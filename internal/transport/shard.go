package transport

import (
	"crypto/subtle"
	"fmt"
	"net"
	"time"
)

// The shard protocol is the second client of this package's framing: a
// sweep coordinator (cmd/dynagrid) dials long-lived worker processes
// (dynabench -serve) and ships them shards — (spec, run-range) slices
// of a declarative sweep — to execute on their local harness pools.
// Workers stream one fixed-size record per run back in strict run
// order (the ordered-sink contract travels over the wire unchanged),
// so the coordinator can re-sequence shards into a result byte-equal
// to a single-process Grid.Run.
//
// Per connection: one hello/ready handshake, then any number of
// task → record-stream → done exchanges, ended by a stop frame.

// Limits on variable-length shard payloads.
const (
	maxSpecBytes    = 1 << 20 // a committed sweep file
	maxShardErrText = 1 << 12 // a worker's failure report
	maxTokenBytes   = 1 << 10 // a shared-secret auth token
	maxSweepName    = 1 << 10 // a submitted sweep's display name
	maxRowsBytes    = 1 << 24 // a completed sweep's aggregate rows (JSON)
)

// checkToken is the constant-time shared-secret comparison every v4
// handshake runs. Both sides must agree on the token (often the empty
// string: auth disabled); the compare is constant-time in the token
// contents so a listening port does not leak the secret byte-by-byte.
func checkToken(want string, got []byte) error {
	if subtle.ConstantTimeCompare([]byte(want), got) != 1 {
		return ErrAuth
	}
	return nil
}

// ShardTask names one unit of dispatch: a contiguous range of a
// sweep's global run indices (run i is seed BaseSeed+i of cell
// i/seedsPerCell, the Grid.RunEach flattening).
type ShardTask struct {
	// Shard is the task's position in the coordinator's plan.
	Shard int
	// Lo and Hi bound the global run-index range [Lo, Hi).
	Lo, Hi int
	// SeedsPerCell, when > 0, overrides the spec's seeds_per_cell —
	// both sides must agree on the flattening, so the override rides
	// with every task.
	SeedsPerCell int
	// MaxPending bounds the worker's reorder window for this shard
	// (harness.Options.MaxPending; 0 = unbounded).
	MaxPending int
	// MetricsEveryRuns, when > 0, asks the worker to interleave one
	// telemetry frame into the record stream every that-many completed
	// runs (plus one final frame before done). 0 = no telemetry (v2
	// behavior). Telemetry frames never carry result data, so the
	// coordinator's merge is unaffected by the cadence.
	MetricsEveryRuns int
	// Spec is the sweep document (YAML or JSON), shipped verbatim so
	// workers need no filesystem access.
	Spec []byte
}

// Runs returns the number of runs the task covers.
func (t ShardTask) Runs() int { return t.Hi - t.Lo }

// ShardRecord is the per-run result a worker streams back: exactly the
// fields a BatchStats fold consumes, with the output range shipped as
// IEEE bits so the merge is bit-exact.
type ShardRecord struct {
	// Run is the global run index (Lo ≤ Run < Hi, strictly ascending
	// within a shard).
	Run int
	// Decided reports whether every fault-free node decided.
	Decided bool
	// Rounds is the executed round count.
	Rounds int
	// Bytes is the delivered wire volume (0 unless the sweep accounts
	// bandwidth).
	Bytes int
	// OutRangeBits is math.Float64bits of the fault-free output range,
	// meaningful only when Decided.
	OutRangeBits uint64
	// Violation reports a validity or ε-agreement break, evaluated
	// worker-side against the cell's ε.
	Violation bool
}

// ShardMetrics is one live telemetry sample from a worker (v3): the
// worker's cumulative progress on the shard plus a point-in-time view
// of its pool. Purely observational — the coordinator folds it into a
// metrics collector and never lets it influence the merge.
type ShardMetrics struct {
	// Shard is the task the sample belongs to.
	Shard int
	// Runs and Rounds are the worker's cumulative completed runs and
	// simulated rounds for this shard.
	Runs, Rounds uint64
	// Delivered is the cumulative delivered-message count.
	Delivered uint64
	// Busy and Workers are the worker pool's busy count and size at
	// sample time.
	Busy, Workers int
}

// ShardError is a worker's deterministic rejection of a task (bad spec,
// out-of-range shard). Retrying it on another worker would fail the
// same way, so coordinators abort instead of requeueing.
type ShardError struct {
	Shard int
	Msg   string
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("transport: shard %d failed on worker: %s", e.Shard, e.Msg)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ShardClient is the coordinator's end of one worker connection.
type ShardClient struct {
	raw     net.Conn
	c       *conn
	timeout time.Duration

	// Capacity is the worker-pool size the worker announced in the
	// handshake — a dispatch-weighting hint.
	Capacity int
}

// DialShard connects to a worker and performs the hello/ready
// handshake, presenting the shared-secret token (empty = auth
// disabled; both sides must agree). timeout bounds every subsequent
// frame exchange (for a record stream: the gap between consecutive
// records); 0 = none.
func DialShard(addr, token string, timeout time.Duration) (*ShardClient, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial worker %s: %w", addr, err)
	}
	s := &ShardClient{raw: raw, c: newConn(raw), timeout: timeout}
	s.deadline()
	if err := s.c.writeFrame(frameShardHello, protocolVersion); err != nil {
		raw.Close()
		return nil, err
	}
	if err := s.c.writeBytes([]byte(token)); err != nil {
		raw.Close()
		return nil, err
	}
	if err := s.c.flush(); err != nil {
		raw.Close()
		return nil, err
	}
	ft, err := s.c.readType()
	if err != nil {
		raw.Close()
		return nil, err
	}
	if ft != frameShardReady {
		raw.Close()
		return nil, fmt.Errorf("%w: got 0x%02x, want shard ready", ErrBadType, ft)
	}
	ver, err := s.c.readUvarint()
	if err != nil {
		raw.Close()
		return nil, err
	}
	if ver != protocolVersion {
		raw.Close()
		return nil, fmt.Errorf("%w: worker speaks v%d, coordinator v%d", ErrVersion, ver, protocolVersion)
	}
	capU, err := s.c.readUvarint()
	if err != nil {
		raw.Close()
		return nil, err
	}
	s.Capacity = int(capU)
	return s, nil
}

func (s *ShardClient) deadline() {
	if s.timeout > 0 {
		s.raw.SetDeadline(time.Now().Add(s.timeout)) //nolint:errcheck
	}
}

// RunShard ships one task and streams its records — validated to be in
// strict run order and complete — to onRecord, returning once the
// worker's done frame arrives. onMetrics, when non-nil, receives any
// telemetry frames the worker interleaves (nil drains them silently);
// telemetry never advances the record cursor. A *ShardError return
// means the worker rejected the task deterministically; any other
// error is a transport failure and the shard may be requeued elsewhere.
func (s *ShardClient) RunShard(task ShardTask, onRecord func(ShardRecord) error, onMetrics func(ShardMetrics)) error {
	if len(task.Spec) > maxSpecBytes {
		return fmt.Errorf("transport: spec of %d bytes exceeds limit %d", len(task.Spec), maxSpecBytes)
	}
	s.deadline()
	if err := s.c.writeFrame(frameShardTask,
		uint64(task.Shard), uint64(task.Lo), uint64(task.Hi),
		uint64(task.SeedsPerCell), uint64(task.MaxPending),
		uint64(task.MetricsEveryRuns)); err != nil {
		return err
	}
	if err := s.c.writeBytes(task.Spec); err != nil {
		return err
	}
	if err := s.c.flush(); err != nil {
		return err
	}
	next := task.Lo
	for {
		s.deadline() // refreshed per frame: bounds the gap between records
		ft, err := s.c.readType()
		if err != nil {
			return err
		}
		switch ft {
		case frameShardRecord:
			rec, err := s.readRecordBody()
			if err != nil {
				return err
			}
			if rec.Run != next {
				return fmt.Errorf("%w: record for run %d, want %d", ErrBadFrame, rec.Run, next)
			}
			next++
			if err := onRecord(rec); err != nil {
				return err
			}
		case frameShardDone:
			idx, err := s.c.readUvarint()
			if err != nil {
				return err
			}
			count, err := s.c.readUvarint()
			if err != nil {
				return err
			}
			if int(idx) != task.Shard || int(count) != next-task.Lo || next != task.Hi {
				return fmt.Errorf("%w: done(shard=%d, count=%d) after %d/%d records of shard %d",
					ErrBadFrame, idx, count, next-task.Lo, task.Runs(), task.Shard)
			}
			return nil
		case frameShardErr:
			idx, err := s.c.readUvarint()
			if err != nil {
				return err
			}
			msg, err := s.c.readBytes(maxShardErrText)
			if err != nil {
				return err
			}
			return &ShardError{Shard: int(idx), Msg: string(msg)}
		case frameShardMetrics:
			m, err := s.readMetricsBody()
			if err != nil {
				return err
			}
			if onMetrics != nil {
				onMetrics(m)
			}
		case frameShardLeave:
			// The worker announced a graceful leave between tasks; this
			// task was written after its announcement crossed the wire.
			// The caller requeues the shard without charging a failure.
			return ErrWorkerLeft
		default:
			return fmt.Errorf("%w: 0x%02x during shard %d", ErrBadType, ft, task.Shard)
		}
	}
}

func (s *ShardClient) readRecordBody() (ShardRecord, error) {
	var fields [6]uint64
	for i := range fields {
		v, err := s.c.readUvarint()
		if err != nil {
			return ShardRecord{}, err
		}
		fields[i] = v
	}
	return ShardRecord{
		Run:          int(fields[0]),
		Decided:      fields[1] == 1,
		Rounds:       int(fields[2]),
		Bytes:        int(fields[3]),
		OutRangeBits: fields[4],
		Violation:    fields[5] == 1,
	}, nil
}

func (s *ShardClient) readMetricsBody() (ShardMetrics, error) {
	var fields [6]uint64
	for i := range fields {
		v, err := s.c.readUvarint()
		if err != nil {
			return ShardMetrics{}, err
		}
		fields[i] = v
	}
	return ShardMetrics{
		Shard:     int(fields[0]),
		Runs:      fields[1],
		Rounds:    fields[2],
		Delivered: fields[3],
		Busy:      int(fields[4]),
		Workers:   int(fields[5]),
	}, nil
}

// Stop ends the session politely; the worker goes back to accepting
// coordinators. Close just tears the connection down.
func (s *ShardClient) Stop() {
	s.deadline()
	if err := s.c.writeFrame(frameStop); err == nil {
		s.c.flush() //nolint:errcheck // best effort during shutdown
	}
}

// Close releases the connection.
func (s *ShardClient) Close() { s.raw.Close() }

// ShardServer is the worker's end of one coordinator connection.
type ShardServer struct {
	raw     net.Conn
	c       *conn
	timeout time.Duration
}

// AcceptShard performs the worker-side handshake on an accepted
// connection, announcing the worker's pool capacity and verifying the
// shared-secret token (constant-time). A rejected handshake returns
// before the ready frame, so the dialing coordinator holds nothing —
// the connection is simply closed by the caller and no worker slot is
// consumed. timeout bounds each write and the reads within a task
// exchange; waiting for the next task is unbounded (coordinators
// legitimately idle a worker while others drain the queue).
func AcceptShard(raw net.Conn, capacity int, token string, timeout time.Duration) (*ShardServer, error) {
	s := &ShardServer{raw: raw, c: newConn(raw), timeout: timeout}
	s.deadline()
	ft, err := s.c.readType()
	if err != nil {
		return nil, err
	}
	if ft != frameShardHello {
		return nil, fmt.Errorf("%w: got 0x%02x, want shard hello", ErrBadType, ft)
	}
	ver, err := s.c.readUvarint()
	if err != nil {
		return nil, err
	}
	if ver != protocolVersion {
		return nil, fmt.Errorf("%w: coordinator speaks v%d, worker v%d", ErrVersion, ver, protocolVersion)
	}
	got, err := s.c.readBytes(maxTokenBytes)
	if err != nil {
		return nil, err
	}
	if err := checkToken(token, got); err != nil {
		return nil, err
	}
	if err := s.c.writeFrame(frameShardReady, protocolVersion, uint64(capacity)); err != nil {
		return nil, err
	}
	return s, s.c.flush()
}

// Conn exposes the underlying connection so a joining worker can track
// it for teardown (JoinControlPlane dials internally, unlike the
// accept path where the caller owns the net.Conn).
func (s *ShardServer) Conn() net.Conn { return s.raw }

func (s *ShardServer) deadline() {
	if s.timeout > 0 {
		s.raw.SetDeadline(time.Now().Add(s.timeout)) //nolint:errcheck
	}
}

// Next blocks for the next task. ErrShutdown means the coordinator
// ended the session (stop frame or disconnect) and the connection is
// done.
func (s *ShardServer) Next() (ShardTask, error) {
	s.raw.SetDeadline(time.Time{}) //nolint:errcheck // idle between tasks is fine
	ft, err := s.c.readType()
	if err != nil {
		return ShardTask{}, err
	}
	switch ft {
	case frameStop:
		return ShardTask{}, ErrShutdown
	case frameShardTask:
	default:
		return ShardTask{}, fmt.Errorf("%w: got 0x%02x, want shard task", ErrBadType, ft)
	}
	s.deadline()
	var fields [6]uint64
	for i := range fields {
		v, err := s.c.readUvarint()
		if err != nil {
			return ShardTask{}, err
		}
		fields[i] = v
	}
	specData, err := s.c.readBytes(maxSpecBytes)
	if err != nil {
		return ShardTask{}, err
	}
	task := ShardTask{
		Shard:            int(fields[0]),
		Lo:               int(fields[1]),
		Hi:               int(fields[2]),
		SeedsPerCell:     int(fields[3]),
		MaxPending:       int(fields[4]),
		MetricsEveryRuns: int(fields[5]),
		Spec:             specData,
	}
	if task.Lo > task.Hi {
		return ShardTask{}, fmt.Errorf("%w: shard range [%d,%d)", ErrBadFrame, task.Lo, task.Hi)
	}
	return task, nil
}

// WriteRecord streams one run's result; records must be written in
// ascending run order.
func (s *ShardServer) WriteRecord(rec ShardRecord) error {
	s.deadline()
	if err := s.c.writeFrame(frameShardRecord,
		uint64(rec.Run), b2u(rec.Decided), uint64(rec.Rounds),
		uint64(rec.Bytes), rec.OutRangeBits, b2u(rec.Violation)); err != nil {
		return err
	}
	return s.c.flush()
}

// WriteMetrics interleaves one telemetry frame into the record stream.
// Safe at any point of a task exchange before Done/Fail; the cadence is
// the task's MetricsEveryRuns and callers should not exceed it.
func (s *ShardServer) WriteMetrics(m ShardMetrics) error {
	s.deadline()
	if err := s.c.writeFrame(frameShardMetrics,
		uint64(m.Shard), m.Runs, m.Rounds, m.Delivered,
		uint64(m.Busy), uint64(m.Workers)); err != nil {
		return err
	}
	return s.c.flush()
}

// Leave announces a graceful departure to the control plane: the
// worker is between tasks and will close the connection. The control
// plane requeues any task it raced onto the wire without charging the
// worker a failure.
func (s *ShardServer) Leave() error {
	s.deadline()
	if err := s.c.writeFrame(frameShardLeave); err != nil {
		return err
	}
	return s.c.flush()
}

// Done closes out one task.
func (s *ShardServer) Done(shard, count int) error {
	s.deadline()
	if err := s.c.writeFrame(frameShardDone, uint64(shard), uint64(count)); err != nil {
		return err
	}
	return s.c.flush()
}

// Fail reports a deterministic task failure (the coordinator aborts the
// sweep rather than requeueing).
func (s *ShardServer) Fail(shard int, msg string) error {
	if len(msg) > maxShardErrText {
		msg = msg[:maxShardErrText]
	}
	s.deadline()
	if err := s.c.writeFrame(frameShardErr, uint64(shard)); err != nil {
		return err
	}
	if err := s.c.writeBytes([]byte(msg)); err != nil {
		return err
	}
	return s.c.flush()
}
