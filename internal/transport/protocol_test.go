package transport

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"anondyn/internal/core"
)

// pipeConn builds a conn over an in-memory buffer for frame round trips.
func pipeConn() (*conn, *bytes.Buffer) {
	var buf bytes.Buffer
	return newConn(&buf), &buf
}

func TestFrameRoundTrip(t *testing.T) {
	c, _ := pipeConn()
	if err := c.writeFrame(frameRoundStart, 42); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	ft, err := c.readType()
	if err != nil {
		t.Fatal(err)
	}
	if ft != frameRoundStart {
		t.Errorf("type = 0x%02x", ft)
	}
	v, err := c.readUvarint()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("field = %d", v)
	}
}

func TestMessageFrameRoundTrip(t *testing.T) {
	c, _ := pipeConn()
	want := core.Message{Value: 0.625, Phase: 9, History: []core.HistEntry{{Value: 0.5, Phase: 8}}}
	if err := c.writeMessage(want); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	got, err := c.readMessage()
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != want.Phase || got.Value != want.Value || len(got.History) != 1 {
		t.Errorf("round trip: %v → %v", want, got)
	}
}

func TestStatusRoundTrip(t *testing.T) {
	c, _ := pipeConn()
	want := Status{Phase: 7, Value: 0.375, Decided: true, Output: 0.5}
	if err := c.writeStatus(want); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	ft, err := c.readType()
	if err != nil {
		t.Fatal(err)
	}
	if ft != frameStatus {
		t.Fatalf("type = 0x%02x", ft)
	}
	got, err := c.readStatusBody()
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != want.Phase || got.Decided != want.Decided {
		t.Errorf("status %+v → %+v", want, got)
	}
	if math.Abs(got.Value-want.Value) > 1.0/(1<<29) || math.Abs(got.Output-want.Output) > 1.0/(1<<29) {
		t.Errorf("quantization error too large: %+v → %+v", want, got)
	}
}

func TestReadBytesLimit(t *testing.T) {
	c, _ := pipeConn()
	if err := c.writeBytes(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.readBytes(50); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized payload: err = %v, want ErrBadFrame", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(frameDeliver)
	c := newConn(&buf)
	if _, err := c.readType(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.readUvarint(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated frame: err = %v, want ErrBadFrame", err)
	}
	// Empty stream → clean shutdown error.
	c2 := newConn(&bytes.Buffer{})
	if _, err := c2.readType(); !errors.Is(err, ErrShutdown) {
		t.Errorf("EOF: err = %v, want ErrShutdown", err)
	}
}

func TestQuantClamps(t *testing.T) {
	if quant(-1) != 0 || quant(2) != 1<<30 {
		t.Error("quant does not clamp")
	}
	if dequant(1<<31) != 1 {
		t.Error("dequant does not clamp")
	}
	for _, v := range []float64{0, 0.25, 0.5, 1} {
		if got := dequant(quant(v)); got != v {
			t.Errorf("round trip %g → %g", v, got)
		}
	}
}

func TestMessageFrameCorrupt(t *testing.T) {
	var buf bytes.Buffer
	c := newConn(&buf)
	// Length says 3 bytes of message, but the payload is garbage that
	// decodes short.
	buf.Write([]byte{3, 0x80, 0x80, 0x80})
	if _, err := c.readMessage(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("corrupt message: err = %v, want ErrBadFrame", err)
	}
}
